"""Profiling substrate tests: comm profile, call graphs, call stacks."""

import networkx as nx
import pytest

from repro.profiling import (
    CommProfiler,
    average_depth,
    build_callgraph,
    callgraph_signature,
    distinct_stacks,
    encode_phase,
    frame_function,
    graph_similarity,
    graphs_equivalent,
    group_by_stack,
    phase_indicator,
    stack_digest,
    stack_histogram,
)
from repro.simmpi import run_app


def two_site_app(ctx):
    s = ctx.alloc(1, ctx.DOUBLE)
    r = ctx.alloc(1, ctx.DOUBLE)
    ctx.set_phase("input")
    yield from ctx.Bcast(s.addr, 1, ctx.DOUBLE, 0, ctx.WORLD)
    ctx.set_phase("compute")
    for _ in range(3):
        yield from ctx.Allreduce(s.addr, r.addr, 1, ctx.DOUBLE, ctx.SUM, ctx.WORLD)
    return 0


class TestCommProfiler:
    @pytest.fixture(scope="class")
    def profile(self):
        prof = CommProfiler()
        run_app(two_site_app, 3, instruments=[prof])
        return prof.profile

    def test_collective_mix(self, profile):
        assert profile.collective_mix() == {"Bcast": 3, "Allreduce": 9}

    def test_site_keys(self, profile):
        keys = profile.site_keys()
        assert len(keys) == 2
        assert {k[0] for k in keys} == {"Bcast", "Allreduce"}

    def test_invocation_counts(self, profile):
        (allreduce_key,) = [k for k in profile.site_keys() if k[0] == "Allreduce"]
        assert profile.n_invocations(0, allreduce_key) == 3

    def test_comm_group_and_root_resolved(self, profile):
        bcasts = [c for c in profile.calls if c.name == "Bcast"]
        assert all(c.comm_group == (0, 1, 2) for c in bcasts)
        assert all(c.root_world == 0 for c in bcasts)

    def test_phases_recorded(self, profile):
        assert {c.phase for c in profile.calls} == {"input", "compute"}

    def test_collective_sequence_identical_across_ranks(self, profile):
        seqs = {profile.collective_sequence(r) for r in range(3)}
        assert len(seqs) == 1


class TestCallgraph:
    def test_build_and_equivalence(self):
        stacks = [("main@a.py:1", "solve@a.py:9", "reduce@a.py:20")] * 3
        g1 = build_callgraph(stacks)
        g2 = build_callgraph(stacks)
        assert graphs_equivalent(g1, g2)
        assert g1["main@a.py"]["solve@a.py"]["count"] == 3

    def test_count_difference_breaks_equivalence(self):
        s = ("main@a.py:1", "f@a.py:2")
        assert not graphs_equivalent(build_callgraph([s]), build_callgraph([s, s]))

    def test_similarity_bounds(self):
        a = build_callgraph([("m@x:1", "f@x:2")])
        b = build_callgraph([("m@x:1", "g@x:3")])
        assert graph_similarity(a, a) == 1.0
        assert graph_similarity(a, b) == 0.0
        assert graphs_equivalent(nx.DiGraph(), nx.DiGraph())

    def test_frame_function_strips_lineno(self):
        assert frame_function("solve@a.py:123") == "solve@a.py"

    def test_signature_is_hashable(self):
        sig = callgraph_signature(build_callgraph([("m@x:1", "f@x:2")]))
        hash(sig)


class TestCallstack:
    def test_group_by_stack(self):
        s1 = ("m@x:1", "f@x:2")
        s2 = ("m@x:1", "g@x:3")
        groups = group_by_stack([(0, s1), (1, s2), (2, s1)])
        assert groups[s1] == [0, 2]
        assert groups[s2] == [1]

    def test_distinct_and_depth(self):
        stacks = [("a@x:1",), ("a@x:1", "b@x:2"), ("a@x:1",)]
        assert distinct_stacks(stacks) == 2
        assert average_depth(stacks) == pytest.approx(4 / 3)
        assert average_depth([]) == 0.0

    def test_digest_stable_and_distinct(self):
        s1 = ("m@x:1", "f@x:2")
        s2 = ("m@x:1", "f@x:3")
        assert stack_digest(s1) == stack_digest(s1)
        assert stack_digest(s1) != stack_digest(s2)

    def test_histogram(self):
        s = ("m@x:1",)
        assert stack_histogram([s, s])[s] == 2


class TestPhases:
    def test_encode_order(self):
        assert encode_phase("input") < encode_phase("init") < encode_phase("compute") < encode_phase("end")

    def test_unknown_phase_maps_last(self):
        assert encode_phase("whatever") == 4

    def test_indicator(self):
        ind = phase_indicator("init")
        assert ind == {"input": 0, "init": 1, "compute": 0, "end": 0}


class TestProfileApplication:
    def test_profile_of_lu(self, lu_app, lu_profile):
        assert lu_profile.app_name == "lu"
        assert lu_profile.nranks == lu_app.nranks
        assert lu_profile.total_injection_points() > 0
        assert lu_profile.golden_steps > 0
        assert len(lu_profile.golden_results) == lu_app.nranks

    def test_summaries_consistent_with_comm_profile(self, lu_profile):
        for (rank, key), s in lu_profile.summaries.items():
            assert s.n_invocations == lu_profile.comm.n_invocations(rank, key)
            assert s.n_diff_stacks <= s.n_invocations

    def test_callgraphs_per_rank(self, lu_profile):
        assert set(lu_profile.callgraphs) == set(range(lu_profile.nranks))

    def test_sites_of_rank_sorted(self, lu_profile):
        sites = lu_profile.sites_of_rank(0)
        keys = [s.site_key for s in sites]
        assert keys == sorted(keys)
