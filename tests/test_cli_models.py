"""CLI plumbing for the fault-model layer: ``--fault-model``,
``--scenario``, the verify routing for model mutants, and the exit-2
operator-error hygiene around all of them."""

import json

import pytest

from repro.cli import main
from repro.injection import parse_scenario, serialize_scenario

ARGS = ["--app", "is", "--problem-class", "T", "--tests", "2", "--max-points", "2"]


@pytest.fixture()
def scenario_file(tmp_path):
    scen = parse_scenario({
        "version": 1, "name": "cli-drop",
        "tasks": [{"t": 0, "model": "msg_drop", "rank": 0}],
    })
    path = tmp_path / "scen.json"
    path.write_text(serialize_scenario(scen))
    return str(path)


class TestFaultModelFlag:
    def test_wire_model_campaign_runs(self, capsys):
        assert main(["campaign", *ARGS, "--fault-model", "msg_dup"]) == 0
        assert "response types" in capsys.readouterr().out

    def test_unknown_model_is_exit_2(self, capsys):
        assert main(["campaign", *ARGS, "--fault-model", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown fault model" in err and "bitflip" in err
        assert len(err.strip().splitlines()) == 1  # one line, no traceback

    def test_scenario_is_not_a_model_name(self, capsys):
        assert main(["campaign", *ARGS, "--fault-model", "scenario"]) == 2
        assert "unknown fault model" in capsys.readouterr().err

    def test_model_plus_static_prune_is_exit_2(self, capsys):
        assert main(["campaign", *ARGS, "--fault-model", "multibit", "--static-prune"]) == 2
        assert "bitflip" in capsys.readouterr().err


class TestScenarioFlag:
    def test_scenario_campaign_runs(self, scenario_file, capsys):
        assert main(["campaign", *ARGS, "--scenario", scenario_file]) == 0
        out = capsys.readouterr().out
        assert "response types" in out
        assert "INF_LOOP" in out

    def test_malformed_scenario_is_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"version": 1, "name": "x", "tasks": [{"model": "gamma"}]}')
        assert main(["campaign", *ARGS, "--scenario", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "bad.json" in err
        assert len(err.strip().splitlines()) == 1

    def test_missing_scenario_file_is_exit_2(self, tmp_path, capsys):
        assert main(["campaign", *ARGS, "--scenario", str(tmp_path / "gone.json")]) == 2
        assert "cannot read scenario file" in capsys.readouterr().err

    def test_scenario_plus_static_prune_is_exit_2(self, scenario_file, capsys):
        assert main(["campaign", *ARGS, "--scenario", scenario_file, "--static-prune"]) == 2
        assert "--static-prune" in capsys.readouterr().err

    def test_scenario_plus_fault_model_is_exit_2(self, scenario_file, capsys):
        assert main(
            ["campaign", *ARGS, "--scenario", scenario_file, "--fault-model", "msg_drop"]
        ) == 2
        assert "mutually exclusive" in capsys.readouterr().err


class TestVerifyRouting:
    def test_model_mutants_are_listed(self, capsys):
        assert main(["verify", "--list-mutants"]) == 0
        out = capsys.readouterr().out
        for name in ("wire_drop_retries", "wire_reorder_fifo", "stall_under_deadline"):
            assert name in out

    def test_model_mutant_detected(self, capsys):
        assert main(["verify", "--mutant", "wire_reorder_fifo", "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["ok"] is True
        assert summary["phases"]["models"]["detected"] is True
        assert "msg_reorder" in summary["phases"]["models"]["failed_witnesses"]

    def test_models_phase_runs_in_full_verify(self, capsys):
        assert main([
            "verify", "--json", "--skip-sanitize", "--skip-replay",
            "--skip-campaign", "--skip-snapshot", "--draws", "1",
        ]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["phases"]["models"]["ok"] is True
        assert len(summary["phases"]["models"]["witnesses"]) == 10
