"""Unit-layout versioning: site-major ordering, digest stability, and
checkpoint compatibility across the ``--snapshot`` default flip.

Three facts are pinned here:

* ``"s1"`` (site-major) orders one-unit-per-point batches by static call
  site, which is what the snapshot engine amortises over;
* ``"p1"`` digests are byte-identical to digests computed before the
  layout tag existed, so every pre-existing checkpoint still resumes;
* a p1 <-> s1 mismatch fails loudly, and the error says the layout (and
  the flag that selects it) instead of a bare digest diff.
"""

import pytest

from repro.exec.checkpoint import CheckpointMismatch, CheckpointStore, campaign_digest
from repro.exec.sharding import LAYOUTS, make_units
from repro.injection import enumerate_points
from repro.injection.space import InjectionPoint


def _points():
    # Two sites interleaved across point indices, multiple invocations.
    return [
        InjectionPoint(0, "Allreduce", "a.py:10", 0),
        InjectionPoint(0, "Barrier", "a.py:20", 0),
        InjectionPoint(0, "Allreduce", "a.py:10", 1),
        InjectionPoint(0, "Barrier", "a.py:20", 1),
    ]


def test_site_major_groups_sites_consecutively():
    units = make_units(4, 3, points=_points(), layout="s1")
    # One unit per point (all 3 tests), ordered site-major.
    assert [u.unit_id for u in units] == [
        "p0:t0-3", "p2:t0-3", "p1:t0-3", "p3:t0-3",
    ]
    assert all(u.n_tests == 3 for u in units)


def test_site_major_partitions_every_test_exactly_once():
    units = make_units(4, 5, points=_points(), layout="s1")
    seen = {(u.point_index, t) for u in units for t in range(u.test_start, u.test_stop)}
    assert seen == {(p, t) for p in range(4) for t in range(5)}


def test_point_major_default_is_unchanged():
    assert make_units(3, 10, unit_tests=3) == make_units(3, 10, unit_tests=3, layout="p1")


def test_s1_requires_points():
    with pytest.raises(ValueError, match="points"):
        make_units(4, 3, layout="s1")
    with pytest.raises(ValueError, match="4 entries"):
        make_units(3, 3, points=_points(), layout="s1")


def test_unknown_layout_rejected():
    with pytest.raises(ValueError, match="unknown unit layout"):
        make_units(1, 1, layout="zz")
    assert LAYOUTS == ("p1", "s1")


@pytest.fixture(scope="module")
def digest_inputs(lu_app, lu_profile):
    return dict(
        app=lu_app,
        seed=7,
        tests_per_point=4,
        param_policy="all",
        unit_tests=1,
        points=enumerate_points(lu_profile)[:3],
    )


def test_p1_digest_identical_to_pre_layout_digest(digest_inputs):
    """The classic layout must not change any existing digest — that is
    the whole backward-compatibility story for old checkpoints/DBs."""
    assert campaign_digest(**digest_inputs) == campaign_digest(
        **digest_inputs, layout="p1"
    )


def test_s1_digest_differs(digest_inputs):
    assert campaign_digest(**digest_inputs, layout="s1") != campaign_digest(
        **digest_inputs
    )


def test_pre_layout_checkpoint_resumes_under_p1(tmp_path, digest_inputs):
    """A stream written before the layout tag existed (header has no
    ``layout`` key) resumes cleanly under the classic layout."""
    digest = campaign_digest(**digest_inputs)
    import pickle

    with (tmp_path / "units.pkl").open("wb") as fh:
        pickle.dump({"digest": digest, "format": 1}, fh)  # pre-layout header
        pickle.dump({"type": "unit", "unit_id": "p0:t0-1", "tests": []}, fh)

    store = CheckpointStore(tmp_path, digest, layout="p1")
    completed = store.load(resume=True)
    store.close()
    assert set(completed) == {"p0:t0-1"}


def test_layout_mismatch_error_names_the_layout(tmp_path, digest_inputs):
    """Resuming a p1 checkpoint with snapshot serving on (s1) must fail
    with a message pointing at --snapshot/--no-snapshot, not a bare
    digest mismatch."""
    p1_digest = campaign_digest(**digest_inputs)
    store = CheckpointStore(tmp_path, p1_digest, layout="p1")
    store.load(resume=False)
    store.record("p0:t0-1", [])
    store.close()

    s1_digest = campaign_digest(**digest_inputs, layout="s1")
    with pytest.raises(CheckpointMismatch, match="--snapshot/--no-snapshot"):
        CheckpointStore(tmp_path, s1_digest, layout="s1").load(resume=True)


def test_plain_digest_mismatch_keeps_generic_hint(tmp_path, digest_inputs):
    digest = campaign_digest(**digest_inputs)
    store = CheckpointStore(tmp_path, digest, layout="p1")
    store.load(resume=False)
    store.close()
    with pytest.raises(CheckpointMismatch, match="delete it or run without --resume"):
        CheckpointStore(tmp_path, "deadbeef", layout="p1").load(resume=True)
