"""Checkpoint store: digests, round trips, torn tails, mismatches."""

import pickle

import pytest

from repro.apps import make_app
from repro.exec.checkpoint import CheckpointMismatch, CheckpointStore, campaign_digest
from repro.injection import FaultSpec, InjectionPoint, Outcome
from repro.injection import TestResult as InjectionTestResult
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(scope="module")
def app():
    return make_app("lu", "T")


def _points(n=2):
    return [InjectionPoint(0, "Allreduce", f"f.py:{i}", 0) for i in range(n)]


def _tests(point, n=3):
    return [
        InjectionTestResult(FaultSpec(point, "count", None), Outcome.SUCCESS, None)
        for _ in range(n)
    ]


def _digest(app, **over):
    kwargs = dict(
        seed=0, tests_per_point=8, param_policy="buffer", unit_tests=2,
        points=_points(), algorithms=None,
    )
    kwargs.update(over)
    return campaign_digest(app, **kwargs)


def test_digest_sensitive_to_every_config_axis(app):
    base = _digest(app)
    assert _digest(app) == base  # stable
    assert _digest(app, seed=1) != base
    assert _digest(app, tests_per_point=9) != base
    assert _digest(app, param_policy="all") != base
    assert _digest(app, unit_tests=4) != base
    assert _digest(app, points=_points(3)) != base
    assert _digest(app, algorithms={"bcast": "chain"}) != base
    assert _digest(app, code_version="0.0.0") != base


def test_round_trip_preserves_tests_and_metrics(tmp_path, app):
    digest = _digest(app)
    point = _points()[0]
    store = CheckpointStore(tmp_path / "ck", digest)
    assert store.load(resume=False) == {}
    reg = MetricsRegistry()
    reg.counter("campaign.tests").inc(3)
    store.record("p0:t0-2", _tests(point, 2), reg)
    store.record("p0:t2-4", _tests(point, 2), None)
    store.close()

    again = CheckpointStore(tmp_path / "ck", digest)
    loaded = again.load(resume=True)
    again.close()
    assert set(loaded) == {"p0:t0-2", "p0:t2-4"}
    tests, metrics = loaded["p0:t0-2"]
    assert [t.outcome for t in tests] == [Outcome.SUCCESS, Outcome.SUCCESS]
    assert metrics.counter("campaign.tests").value == 3
    assert loaded["p0:t2-4"][1] is None


def test_torn_final_record_is_dropped(tmp_path, app):
    digest = _digest(app)
    point = _points()[0]
    store = CheckpointStore(tmp_path / "ck", digest)
    store.load(resume=False)
    store.record("p0:t0-2", _tests(point, 2), None)
    store.record("p0:t2-4", _tests(point, 2), None)
    store.close()
    path = tmp_path / "ck" / "units.pkl"
    data = path.read_bytes()
    path.write_bytes(data[:-7])  # tear the last record mid-write

    again = CheckpointStore(tmp_path / "ck", digest)
    loaded = again.load(resume=True)
    again.close()
    assert set(loaded) == {"p0:t0-2"}


def test_resume_with_wrong_digest_raises(tmp_path, app):
    store = CheckpointStore(tmp_path / "ck", _digest(app))
    store.load(resume=False)
    store.record("p0:t0-2", _tests(_points()[0], 2), None)
    store.close()

    other = CheckpointStore(tmp_path / "ck", _digest(app, seed=99))
    with pytest.raises(CheckpointMismatch):
        other.load(resume=True)


def test_fresh_start_discards_existing_checkpoint(tmp_path, app):
    store = CheckpointStore(tmp_path / "ck", _digest(app))
    store.load(resume=False)
    store.record("p0:t0-2", _tests(_points()[0], 2), None)
    store.close()

    # Different digest but resume=False: old stream is overwritten.
    fresh = CheckpointStore(tmp_path / "ck", _digest(app, seed=99))
    assert fresh.load(resume=False) == {}
    fresh.close()
    with (tmp_path / "ck" / "units.pkl").open("rb") as fh:
        header = pickle.load(fh)
    assert header["digest"] == _digest(app, seed=99)


def test_manifest_written_atomically(tmp_path, app):
    digest = _digest(app)
    store = CheckpointStore(tmp_path / "ck", digest, flush_every=1)
    store.load(resume=False)
    store.record("p0:t0-2", _tests(_points()[0], 2), None)
    store.write_manifest(total_units=4, complete=False)
    store.close()
    import json

    manifest = json.loads((tmp_path / "ck" / "manifest.json").read_text())
    assert manifest["digest"] == digest
    assert manifest["completed"] == ["p0:t0-2"]
    assert manifest["total_units"] == 4
    assert manifest["complete"] is False
    assert not (tmp_path / "ck" / "manifest.json.tmp").exists()


def test_truncate_mid_record_resumes_from_durable_prefix(tmp_path, app):
    """Crash-consistency: chop a resumed stream *in the middle* of its
    final record (not just the tail bytes) — every earlier unit, which
    was fsynced at record() time, must survive."""
    digest = _digest(app)
    point = _points()[0]
    store = CheckpointStore(tmp_path / "ck", digest)
    store.load(resume=False)
    sizes = []
    path = tmp_path / "ck" / "units.pkl"
    for uid in ("p0:t0-2", "p0:t2-4", "p1:t0-2"):
        store.record(uid, _tests(point, 2), None)
        sizes.append(path.stat().st_size)
    store.close()

    # Cut halfway into the third record's bytes.
    cut = sizes[1] + (sizes[2] - sizes[1]) // 2
    path.write_bytes(path.read_bytes()[:cut])

    again = CheckpointStore(tmp_path / "ck", digest)
    loaded = again.load(resume=True)
    again.close()
    assert set(loaded) == {"p0:t0-2", "p0:t2-4"}


def test_record_fsyncs_the_stream(tmp_path, app, monkeypatch):
    """Each completed unit is pushed to stable storage, not just to the
    OS page cache."""
    import os

    synced = []
    real_fsync = os.fsync
    monkeypatch.setattr(os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd)))
    store = CheckpointStore(tmp_path / "ck", _digest(app), flush_every=100)
    store.load(resume=False)
    before = len(synced)
    store.record("p0:t0-2", _tests(_points()[0], 2), None)
    store.close()
    assert len(synced) > before


def test_manifest_records_quarantined_units(tmp_path, app):
    import json

    store = CheckpointStore(tmp_path / "ck", _digest(app))
    store.load(resume=False)
    store.record("p0:t0-2", _tests(_points()[0], 2), None)
    store.write_manifest(total_units=4, complete=False, quarantined=["p1:t0-2"])
    store.close()
    manifest = json.loads((tmp_path / "ck" / "manifest.json").read_text())
    assert manifest["quarantined"] == ["p1:t0-2"]
    assert "p1:t0-2" not in manifest["completed"]


def test_closed_property(tmp_path, app):
    store = CheckpointStore(tmp_path / "ck", _digest(app))
    assert store.closed
    store.load(resume=False)
    assert not store.closed
    store.close()
    assert store.closed
    store.close()  # idempotent
