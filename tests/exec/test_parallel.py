"""Parallel engine: bit-identical sharded execution + resume semantics."""

import pytest

from repro.exec.parallel import ParallelCampaign
from repro.injection import Campaign, enumerate_points
from repro.obs.metrics import MetricsRegistry


def campaign_signature(result):
    """Everything the determinism guarantee covers: point order, per-test
    fault specs, outcomes, injection records, and derived rates."""
    sig = []
    for point, pr in result.points.items():
        sig.append(
            (
                point,
                [
                    (
                        t.spec.point,
                        t.spec.param,
                        t.spec.bit,
                        t.outcome,
                        None if t.record is None else (t.record.bit, t.record.skipped),
                    )
                    for t in pr.tests
                ],
                pr.error_rate,
            )
        )
    return sig


@pytest.fixture(scope="module")
def lu_points(lu_profile):
    return enumerate_points(lu_profile)[:4]


@pytest.fixture(scope="module")
def serial_result(lu_app, lu_profile, lu_points):
    return Campaign(
        lu_app, lu_profile, tests_per_point=6, param_policy="all", seed=11
    ).run(lu_points)


class TestDeterminism:
    def test_jobs4_bit_identical_to_jobs1(self, lu_app, lu_profile, lu_points, serial_result):
        """The headline guarantee: a 4-worker NPB campaign reproduces the
        serial run exactly — outcomes, error rates, per-test FaultSpecs."""
        parallel = Campaign(
            lu_app, lu_profile, tests_per_point=6, param_policy="all", seed=11, jobs=4
        ).run(lu_points)
        assert campaign_signature(parallel) == campaign_signature(serial_result)
        assert parallel.outcome_histogram() == serial_result.outcome_histogram()

    def test_unit_size_does_not_change_results(self, lu_app, lu_profile, lu_points, serial_result):
        for unit_tests in (1, 2, 6):
            engine = ParallelCampaign(
                lu_app, lu_profile, tests_per_point=6, param_policy="all",
                seed=11, jobs=2, unit_tests=unit_tests,
            )
            assert campaign_signature(engine.run(lu_points)) == campaign_signature(
                serial_result
            )

    def test_parallel_metrics_match_serial(self, lu_app, lu_profile, lu_points):
        serial, parallel = MetricsRegistry(), MetricsRegistry()
        Campaign(
            lu_app, lu_profile, tests_per_point=6, param_policy="all", seed=11,
            metrics=serial,
        ).run(lu_points)
        Campaign(
            lu_app, lu_profile, tests_per_point=6, param_policy="all", seed=11,
            metrics=parallel, jobs=3,
        ).run(lu_points)
        s, p = serial.to_dict()["counters"], parallel.to_dict()["counters"]
        campaign_keys = {k for k in s if k.startswith("campaign.")}
        assert campaign_keys == {k for k in p if k.startswith("campaign.")}
        assert all(s[k] == p[k] for k in campaign_keys)

    def test_progress_reports_tests_and_throttles(self, lu_app, lu_profile, lu_points):
        seen = []
        Campaign(
            lu_app, lu_profile, tests_per_point=6, param_policy="all", seed=11,
            jobs=2, progress=lambda done, total: seen.append((done, total)),
            progress_every=4,
        ).run(lu_points)
        total = 4 * 6
        assert seen[-1] == (total, total)
        assert all(t == total for _, t in seen)
        done = [d for d, _ in seen]
        assert done == sorted(done)
        # Throttled: far fewer updates than completed units (12 units here).
        assert len(seen) <= 5


class TestResume:
    def test_interrupted_campaign_resumes_to_identical_result(
        self, tmp_path, lu_app, lu_profile, lu_points, serial_result
    ):
        """Kill a campaign mid-way; the resumed run must skip the
        completed units and still produce the exact serial result."""
        ckdir = tmp_path / "ck"

        class Killed(RuntimeError):
            pass

        def killer(done_tests, total_tests):
            if done_tests >= total_tests // 2:
                raise Killed(f"simulated crash at {done_tests}/{total_tests}")

        first = MetricsRegistry()
        with pytest.raises(Killed):
            Campaign(
                lu_app, lu_profile, tests_per_point=6, param_policy="all", seed=11,
                checkpoint_dir=ckdir, progress=killer, metrics=first,
            ).run(lu_points)
        units_before_crash = first.to_dict()["counters"]["exec.units"]
        assert units_before_crash > 0

        second = MetricsRegistry()
        resumed = Campaign(
            lu_app, lu_profile, tests_per_point=6, param_policy="all", seed=11,
            checkpoint_dir=ckdir, resume=True, metrics=second,
        ).run(lu_points)
        assert campaign_signature(resumed) == campaign_signature(serial_result)
        counters = second.to_dict()["counters"]
        # The resumed run replayed the persisted units instead of re-running.
        assert counters["exec.units_resumed"] >= units_before_crash
        # Site-major layout (snapshot serving, the default): one unit per
        # point carrying all 6 tests.
        assert counters["exec.units"] + counters["exec.units_resumed"] == 4
        # Merged metrics still add up to the full campaign.
        assert counters["campaign.tests"] == 4 * 6

    def test_resume_with_parallel_workers(self, tmp_path, lu_app, lu_profile, lu_points, serial_result):
        ckdir = tmp_path / "ck"
        engine = ParallelCampaign(
            lu_app, lu_profile, tests_per_point=6, param_policy="all", seed=11,
            jobs=1, checkpoint_dir=ckdir, unit_tests=2,
        )
        # Complete only the first 5 units by faking an interrupt.
        boom = RuntimeError("stop")
        count = [0]

        def stop_after(done, total):
            count[0] += 1
            if count[0] >= 5:
                raise boom

        engine.progress = stop_after
        with pytest.raises(RuntimeError):
            engine.run(lu_points)

        # Resume under a different worker count — unit layout is stable.
        # (Same explicit unit_tests: that selects the classic p1 layout,
        # and the digest covers it.)
        resumed = ParallelCampaign(
            lu_app, lu_profile, tests_per_point=6, param_policy="all", seed=11,
            jobs=4, checkpoint_dir=ckdir, unit_tests=2, resume=True,
        ).run(lu_points)
        assert campaign_signature(resumed) == campaign_signature(serial_result)

    def test_resume_of_complete_checkpoint_runs_nothing(
        self, tmp_path, lu_app, lu_profile, lu_points, serial_result
    ):
        ckdir = tmp_path / "ck"
        Campaign(
            lu_app, lu_profile, tests_per_point=6, param_policy="all", seed=11,
            jobs=2, checkpoint_dir=ckdir,
        ).run(lu_points)
        registry = MetricsRegistry()
        replayed = Campaign(
            lu_app, lu_profile, tests_per_point=6, param_policy="all", seed=11,
            checkpoint_dir=ckdir, resume=True, metrics=registry,
        ).run(lu_points)
        assert campaign_signature(replayed) == campaign_signature(serial_result)
        counters = registry.to_dict()["counters"]
        assert "exec.units" not in counters  # nothing executed
        assert counters["campaign.tests"] == 4 * 6

    def test_config_change_refuses_stale_checkpoint(self, tmp_path, lu_app, lu_profile, lu_points):
        from repro.exec import CheckpointMismatch

        ckdir = tmp_path / "ck"
        Campaign(
            lu_app, lu_profile, tests_per_point=6, param_policy="all", seed=11,
            checkpoint_dir=ckdir,
        ).run(lu_points)
        with pytest.raises(CheckpointMismatch):
            Campaign(
                lu_app, lu_profile, tests_per_point=6, param_policy="all", seed=12,
                checkpoint_dir=ckdir, resume=True,
            ).run(lu_points)


def test_campaign_rejects_bad_jobs(lu_app, lu_profile):
    with pytest.raises(ValueError):
        Campaign(lu_app, lu_profile, jobs=0)
    with pytest.raises(ValueError):
        Campaign(lu_app, lu_profile, progress_every=0)
