"""Work-unit layout: deterministic, worker-count independent, complete."""

import pytest

from repro.exec.sharding import (
    WorkUnit,
    default_unit_tests,
    make_units,
    units_of_point,
)


def test_units_partition_every_test_exactly_once():
    units = make_units(5, 13, unit_tests=4)
    seen = set()
    for u in units:
        for t in range(u.test_start, u.test_stop):
            key = (u.point_index, t)
            assert key not in seen
            seen.add(key)
    assert seen == {(p, t) for p in range(5) for t in range(13)}


def test_layout_is_deterministic_and_ordered():
    a = make_units(3, 10, unit_tests=3)
    b = make_units(3, 10, unit_tests=3)
    assert a == b
    assert a == sorted(a)  # canonical order: point-major, then test range


def test_unit_ids_are_stable_keys():
    units = make_units(2, 5, unit_tests=2)
    assert [u.unit_id for u in units] == [
        "p0:t0-2", "p0:t2-4", "p0:t4-5",
        "p1:t0-2", "p1:t2-4", "p1:t4-5",
    ]


def test_default_unit_tests_bounds():
    assert default_unit_tests(1) == 1
    assert default_unit_tests(4) == 1
    assert default_unit_tests(100) == 25
    # Never zero, even for degenerate campaigns.
    assert default_unit_tests(0) == 1


def test_n_tests_and_grouping():
    units = make_units(2, 7, unit_tests=3)
    assert sum(u.n_tests for u in units) == 14
    grouped = units_of_point(units)
    assert set(grouped) == {0, 1}
    for pi, group in grouped.items():
        assert [u.point_index for u in group] == [pi] * len(group)
        assert group == sorted(group, key=lambda u: u.test_start)


def test_zero_points_or_tests_yield_no_units():
    assert make_units(0, 10) == []
    assert make_units(3, 0) == []


def test_invalid_arguments_rejected():
    with pytest.raises(ValueError):
        make_units(-1, 10)
    with pytest.raises(ValueError):
        make_units(1, -1)
    with pytest.raises(ValueError):
        make_units(1, 10, unit_tests=0)


def test_workunit_accessors():
    u = WorkUnit(3, 4, 9)
    assert u.n_tests == 5
    assert u.unit_id == "p3:t4-9"
