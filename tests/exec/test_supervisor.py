"""Chaos tests: the supervised pool under worker death, wedge, and crash.

Harness faults are injected through the ``FASTFIT_CHAOS_*`` environment
hooks read inside worker processes (see
:mod:`repro.exec.supervisor`); with the Linux ``fork`` start method the
monkeypatched environment propagates into freshly spawned workers.
"""

import json

import pytest

from repro.exec.parallel import ParallelCampaign
from repro.exec.sharding import make_units
from repro.exec.supervisor import SupervisorConfig, UnitFailedError
from repro.injection import Campaign, Outcome, enumerate_points
from repro.obs.events import Tracer
from repro.obs.metrics import MetricsRegistry


def campaign_signature(result):
    sig = []
    for point, pr in result.points.items():
        sig.append(
            (
                point,
                [
                    (
                        t.spec.point,
                        t.spec.param,
                        t.spec.bit,
                        t.outcome,
                        None if t.record is None else (t.record.bit, t.record.skipped),
                    )
                    for t in pr.tests
                ],
                pr.error_rate,
            )
        )
    return sig


@pytest.fixture(scope="module")
def lu_points(lu_profile):
    return enumerate_points(lu_profile)[:4]


@pytest.fixture(scope="module")
def serial_result(lu_app, lu_profile, lu_points):
    return Campaign(
        lu_app, lu_profile, tests_per_point=6, param_policy="all", seed=11
    ).run(lu_points)


def _engine(lu_app, lu_profile, **kwargs):
    kwargs.setdefault("tests_per_point", 6)
    kwargs.setdefault("param_policy", "all")
    kwargs.setdefault("seed", 11)
    kwargs.setdefault("jobs", 2)
    # Explicit unit_tests pins the classic point-major layout so the
    # FASTFIT_CHAOS_UNITS ids below stay stable regardless of the
    # snapshot default (which would otherwise select site-major units).
    kwargs.setdefault("unit_tests", 2)
    return ParallelCampaign(lu_app, lu_profile, **kwargs)


class TestSupervisorConfig:
    def test_defaults(self):
        cfg = SupervisorConfig()
        assert cfg.unit_timeout is None
        assert cfg.max_retries == 2
        assert cfg.quarantine is True

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(unit_timeout=0),
            dict(unit_timeout=-1.0),
            dict(max_retries=-1),
            dict(backoff_base=-0.1),
            dict(poll_interval=0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SupervisorConfig(**kwargs)

    def test_backoff_is_capped_exponential(self):
        cfg = SupervisorConfig(backoff_base=0.1, backoff_factor=2.0, backoff_max=0.3)
        assert cfg.backoff(1) == pytest.approx(0.1)
        assert cfg.backoff(2) == pytest.approx(0.2)
        assert cfg.backoff(3) == pytest.approx(0.3)  # capped
        assert cfg.backoff(10) == pytest.approx(0.3)


class TestWorkerDeath:
    def test_killed_worker_is_retried_and_campaign_completes(
        self, monkeypatch, lu_app, lu_profile, lu_points, serial_result
    ):
        """A worker that os._exit()s mid-unit loses nothing: the unit is
        re-dispatched and the final result is bit-identical to serial."""
        monkeypatch.setenv("FASTFIT_CHAOS_MODE", "exit")
        monkeypatch.setenv("FASTFIT_CHAOS_UNITS", "p0:t0-2,p2:t2-4")
        monkeypatch.setenv("FASTFIT_CHAOS_ATTEMPTS", "1")
        metrics = MetricsRegistry()
        engine = _engine(lu_app, lu_profile, metrics=metrics)
        result = engine.run(lu_points)
        assert campaign_signature(result) == campaign_signature(serial_result)
        counters = metrics.to_dict()["counters"]
        assert counters["exec.worker_deaths"] == 2
        assert counters["exec.retries"] == 2
        assert "exec.quarantined" not in counters
        assert engine.quarantined == []

    def test_in_worker_crash_is_retried_without_killing_the_slot(
        self, monkeypatch, lu_app, lu_profile, lu_points, serial_result
    ):
        """A Python-level crash in the worker is reported over the pipe —
        the process survives, only the unit is retried."""
        monkeypatch.setenv("FASTFIT_CHAOS_MODE", "raise")
        monkeypatch.setenv("FASTFIT_CHAOS_UNITS", "p1:t0-2")
        monkeypatch.setenv("FASTFIT_CHAOS_ATTEMPTS", "1")
        metrics = MetricsRegistry()
        result = _engine(lu_app, lu_profile, metrics=metrics).run(lu_points)
        assert campaign_signature(result) == campaign_signature(serial_result)
        counters = metrics.to_dict()["counters"]
        assert counters["exec.retries"] == 1
        assert "exec.worker_deaths" not in counters

    def test_wedged_worker_is_killed_at_the_deadline(
        self, monkeypatch, lu_app, lu_profile, lu_points, serial_result
    ):
        """A worker hanging inside a unit blows the wall-clock deadline,
        is killed, and the unit succeeds on retry."""
        monkeypatch.setenv("FASTFIT_CHAOS_MODE", "hang")
        monkeypatch.setenv("FASTFIT_CHAOS_UNITS", "p3:t4-6")
        monkeypatch.setenv("FASTFIT_CHAOS_ATTEMPTS", "1")
        metrics = MetricsRegistry()
        engine = _engine(
            lu_app, lu_profile, metrics=metrics, unit_timeout=3.0
        )
        result = engine.run(lu_points)
        assert campaign_signature(result) == campaign_signature(serial_result)
        counters = metrics.to_dict()["counters"]
        assert counters["exec.worker_deaths"] == 1
        assert counters["exec.retries"] == 1


class TestQuarantine:
    def test_persistently_crashing_unit_is_quarantined(
        self, monkeypatch, lu_app, lu_profile, lu_points, serial_result
    ):
        """A unit that kills its worker every time is recorded as
        synthetic TOOL_ERROR results; everything else is untouched."""
        monkeypatch.setenv("FASTFIT_CHAOS_MODE", "exit")
        monkeypatch.setenv("FASTFIT_CHAOS_UNITS", "p1:t2-4")
        monkeypatch.setenv("FASTFIT_CHAOS_ATTEMPTS", "all")
        metrics = MetricsRegistry()
        tracer = Tracer()
        engine = _engine(
            lu_app, lu_profile, metrics=metrics, max_retries=1, tracer=tracer
        )
        result = engine.run(lu_points)

        assert engine.quarantined == ["p1:t2-4"]
        assert result.n_tests() == len(lu_points) * 6
        assert result.tool_error_count() == 2
        quarantined_pr = result.points[lu_points[1]]
        bad = [t for t in quarantined_pr.tests if t.outcome is Outcome.TOOL_ERROR]
        assert len(bad) == 2
        assert all("quarantined" in t.detail for t in bad)
        assert all(t.record is None for t in bad)

        # The synthetic specs still name the injections that were
        # abandoned — same deterministic derivation as a real worker.
        reference = serial_result.points[lu_points[1]].tests
        for synth, real in zip(quarantined_pr.tests, reference):
            assert synth.spec.point == real.spec.point
            assert synth.spec.param == real.spec.param

        # Every *other* point is bit-identical to the serial run.
        for i, point in enumerate(lu_points):
            if i == 1:
                continue
            assert [t.outcome for t in result.points[point].tests] == [
                t.outcome for t in serial_result.points[point].tests
            ]

        counters = metrics.to_dict()["counters"]
        assert counters["exec.quarantined"] == 1
        assert counters["exec.retries"] == 1
        assert counters["exec.worker_deaths"] == 2
        assert counters["campaign.outcome.TOOL_ERROR"] == 2

        retry_events = tracer.events("unit_retry")
        quarantine_events = tracer.events("unit_quarantined")
        assert len(retry_events) == 1
        assert len(quarantine_events) == 1
        assert quarantine_events[0].data["unit"] == "p1:t2-4"

    def test_tool_errors_excluded_from_paper_metrics(
        self, monkeypatch, lu_app, lu_profile, lu_points, serial_result
    ):
        """TOOL_ERROR never appears in the six-class histogram, never
        wins majority_outcome, and drops out of error_rate entirely."""
        monkeypatch.setenv("FASTFIT_CHAOS_MODE", "exit")
        monkeypatch.setenv("FASTFIT_CHAOS_UNITS", "p0:t0-2,p0:t2-4,p0:t4-6")
        monkeypatch.setenv("FASTFIT_CHAOS_ATTEMPTS", "all")
        engine = _engine(lu_app, lu_profile, max_retries=0)
        result = engine.run(lu_points)

        hist = result.outcome_histogram()
        assert Outcome.TOOL_ERROR not in hist
        assert sum(hist.values()) == (len(lu_points) - 1) * 6
        assert result.tool_error_count() == 6

        pr = result.points[lu_points[0]]
        assert pr.n_tool_errors == 6
        assert pr.error_rate == 0.0  # no application responses at all
        assert pr.majority_outcome() in list(hist)

    def test_quarantine_disabled_aborts_the_campaign(
        self, monkeypatch, lu_app, lu_profile, lu_points
    ):
        monkeypatch.setenv("FASTFIT_CHAOS_MODE", "raise")
        monkeypatch.setenv("FASTFIT_CHAOS_UNITS", "p0:t0-2")
        monkeypatch.setenv("FASTFIT_CHAOS_ATTEMPTS", "all")
        engine = _engine(lu_app, lu_profile, max_retries=0, quarantine=False)
        with pytest.raises(UnitFailedError) as err:
            engine.run(lu_points)
        assert err.value.unit_id == "p0:t0-2"


class TestQuarantineResume:
    def test_quarantined_unit_is_retried_on_resume(
        self, monkeypatch, tmp_path, lu_app, lu_profile, lu_points, serial_result
    ):
        """Quarantined units are deliberately not checkpointed: a resumed
        campaign (with the fault gone) heals to the full serial result."""
        monkeypatch.setenv("FASTFIT_CHAOS_MODE", "exit")
        monkeypatch.setenv("FASTFIT_CHAOS_UNITS", "p2:t0-2")
        monkeypatch.setenv("FASTFIT_CHAOS_ATTEMPTS", "all")
        ckpt = tmp_path / "ckpt"
        first = _engine(
            lu_app, lu_profile, max_retries=0, checkpoint_dir=ckpt
        )
        first.run(lu_points)
        assert first.quarantined == ["p2:t0-2"]

        manifest = json.loads((ckpt / "manifest.json").read_text())
        assert manifest["quarantined"] == ["p2:t0-2"]
        assert manifest["complete"] is False
        assert "p2:t0-2" not in manifest["completed"]

        # The environmental fault clears; resume retries only that unit.
        monkeypatch.delenv("FASTFIT_CHAOS_MODE")
        metrics = MetricsRegistry()
        second = _engine(
            lu_app, lu_profile, checkpoint_dir=ckpt, resume=True, metrics=metrics
        )
        healed = second.run(lu_points)
        assert second.quarantined == []
        assert campaign_signature(healed) == campaign_signature(serial_result)
        counters = metrics.to_dict()["counters"]
        n_units = len(make_units(len(lu_points), 6))
        assert counters["exec.units_resumed"] == n_units - 1
        assert counters["exec.units"] == 1
        manifest = json.loads((ckpt / "manifest.json").read_text())
        assert manifest["complete"] is True
        assert manifest["quarantined"] == []


class TestKeyboardInterrupt:
    def test_interrupt_flushes_checkpoint_and_reraises(
        self, tmp_path, lu_app, lu_profile, lu_points
    ):
        """Ctrl-C mid-campaign: the pool is torn down, the manifest is
        flushed, and the checkpoint resumes cleanly afterwards."""
        ckpt = tmp_path / "ckpt"
        fired = []

        def interrupt_after_first(done, total):
            fired.append(done)
            if len(fired) == 1:
                raise KeyboardInterrupt

        engine = _engine(
            lu_app, lu_profile, checkpoint_dir=ckpt,
            progress=interrupt_after_first, progress_every=1,
        )
        with pytest.raises(KeyboardInterrupt):
            engine.run(lu_points)

        manifest = json.loads((ckpt / "manifest.json").read_text())
        assert manifest["complete"] is False
        assert manifest["n_completed"] >= 1

        resumed = _engine(
            lu_app, lu_profile, checkpoint_dir=ckpt, resume=True
        ).run(lu_points)
        assert resumed.n_tests() == len(lu_points) * 6
        manifest = json.loads((ckpt / "manifest.json").read_text())
        assert manifest["complete"] is True
