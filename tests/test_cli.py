"""CLI tests (the ``fastfit`` entry point)."""

import json

import pytest

from repro.cli import build_parser, main


def test_apps_lists_all_workloads(capsys):
    assert main(["apps"]) == 0
    out = capsys.readouterr().out
    for name in ("is", "ft", "mg", "lu", "lammps"):
        assert name in out
    assert "class" in out


def test_profile_command(capsys):
    assert main(["profile", "--app", "lu", "--problem-class", "T"]) == 0
    out = capsys.readouterr().out
    assert "injection points" in out
    assert "collective mix" in out
    assert "Allreduce" in out


def test_prune_command(capsys):
    assert main(["prune", "--app", "ft", "--problem-class", "T"]) == 0
    out = capsys.readouterr().out
    assert "MPI (semantic)" in out
    assert "%" in out


def test_campaign_command(capsys):
    assert (
        main(
            [
                "campaign",
                "--app",
                "lu",
                "--problem-class",
                "T",
                "--tests",
                "3",
                "--max-points",
                "4",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "response types" in out
    assert "SUCCESS" in out
    assert "error-rate levels" in out


def test_learn_command(capsys):
    assert (
        main(
            [
                "learn",
                "--app",
                "lu",
                "--problem-class",
                "T",
                "--tests",
                "3",
                "--threshold",
                "0.3",
                "--batch-size",
                "4",
                "--policy",
                "all",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "tested" in out and "predicted" in out


def test_study_command_no_ml(capsys):
    assert (
        main(
            [
                "study",
                "--app",
                "mg",
                "--problem-class",
                "T",
                "--tests",
                "2",
                "--no-ml",
                "--policy",
                "buffer",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "Total" in out
    assert "NA" in out


def test_unknown_app_rejected():
    with pytest.raises(SystemExit):
        main(["profile", "--app", "hpl"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_parser_has_all_subcommands():
    parser = build_parser()
    text = parser.format_help()
    for cmd in ("apps", "profile", "prune", "campaign", "learn", "study", "trace", "stats"):
        assert cmd in text


def test_verbosity_flags_accepted_everywhere():
    parser = build_parser()
    for argv in (["apps", "-v"], ["apps", "-q"], ["apps", "-vv"]):
        args = parser.parse_args(argv)
        assert args.command == "apps"


def test_trace_smoke(capsys):
    assert (
        main(
            ["trace", "--app", "lu", "--problem-class", "T", "--point", "0", "--limit", "20"]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "outcome:" in out
    assert "coll_enter" in out or "send" in out


def test_trace_json_is_valid_jsonl(capsys):
    assert (
        main(
            ["trace", "--app", "lu", "--problem-class", "T", "--point", "0", "--json"]
        )
        == 0
    )
    lines = [ln for ln in capsys.readouterr().out.splitlines() if ln.strip()]
    records = [json.loads(ln) for ln in lines]
    types = {r.get("type") for r in records}
    assert "meta" in types and "event" in types and "result" in types
    events = [r for r in records if r.get("type") == "event"]
    assert events and all("seq" in e and "kind" in e and "rank" in e for e in events)


def test_trace_inf_loop_prints_wait_for_graph(capsys):
    """Pinned deterministic INF_LOOP: lu/T representative #20, test 7
    (seed 2015) corrupts Bcast's root on rank 3 and hangs the job."""
    assert (
        main(
            [
                "trace",
                "--app", "lu",
                "--problem-class", "T",
                "--point", "20",
                "--policy", "all",
                "--test", "7",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "INF_LOOP" in out
    assert "wait-for graph" in out
    assert "waits on recv(comm=" in out
    assert "tag" in out


def test_trace_point_out_of_range():
    assert (
        main(["trace", "--app", "lu", "--problem-class", "T", "--point", "9999"]) == 2
    )


def test_trace_rejects_unknown_param(capsys):
    assert (
        main(
            ["trace", "--app", "lu", "--problem-class", "T", "--point", "0",
             "--param", "notaparam"]
        )
        == 2
    )
    err = capsys.readouterr().err
    assert "notaparam" in err and "sendbuf" in err


def test_stats_smoke(capsys):
    assert (
        main(
            [
                "stats",
                "--app", "is",
                "--problem-class", "T",
                "--tests", "2",
                "--max-points", "4",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "phase" in out
    assert "tests/sec" in out
    assert "SUCCESS" in out


def test_stats_json_export(capsys):
    assert (
        main(
            [
                "stats",
                "--app", "is",
                "--problem-class", "T",
                "--tests", "2",
                "--max-points", "4",
                "--json",
            ]
        )
        == 0
    )
    data = json.loads(capsys.readouterr().out)
    assert data["counters"]["campaign.tests"] > 0
    assert "phase.campaign_s" in data["timers"]


class TestErrorHygiene:
    """Operator errors exit with code 2 and one line on stderr — no
    tracebacks, no partial output."""

    def test_resume_without_checkpoint_dir(self, capsys):
        assert main(["campaign", "--app", "lu", "--resume"]) == 2
        assert "--resume requires --checkpoint-dir" in capsys.readouterr().err

    def test_bad_jobs(self, capsys):
        assert main(["campaign", "--app", "lu", "--jobs", "0"]) == 2
        assert "--jobs must be >= 1" in capsys.readouterr().err

    def test_bad_unit_timeout(self, capsys):
        assert main(["campaign", "--app", "lu", "--unit-timeout", "0"]) == 2
        assert "--unit-timeout must be > 0" in capsys.readouterr().err

    def test_bad_max_retries(self, capsys):
        assert main(["campaign", "--app", "lu", "--max-retries", "-1"]) == 2
        assert "--max-retries must be >= 0" in capsys.readouterr().err

    def test_checkpoint_mismatch_is_one_line(self, tmp_path, capsys):
        """A foreign checkpoint directory produces exit 2 and a single
        explanatory line, not a traceback."""
        import pickle

        ck = tmp_path / "ck"
        ck.mkdir()
        with (ck / "units.pkl").open("wb") as fh:
            pickle.dump({"digest": "not-this-campaign", "format": 1}, fh)
        rc = main(
            [
                "campaign", "--app", "lu", "--tests", "2", "--max-points", "1",
                "--checkpoint-dir", str(ck), "--resume",
            ]
        )
        err = capsys.readouterr().err
        assert rc == 2
        assert "different campaign" in err
        assert "Traceback" not in err


def test_supervision_flags_reach_the_tool():
    from repro.cli import _tool

    parser = build_parser()
    args = parser.parse_args(
        [
            "campaign", "--app", "lu", "--unit-timeout", "30",
            "--max-retries", "5", "--no-quarantine", "--jobs", "2",
        ]
    )
    ff = _tool(args)
    assert ff.unit_timeout == 30.0
    assert ff.max_retries == 5
    assert ff.quarantine is False
    assert ff.jobs == 2
