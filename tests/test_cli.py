"""CLI tests (the ``fastfit`` entry point)."""

import pytest

from repro.cli import build_parser, main


def test_apps_lists_all_workloads(capsys):
    assert main(["apps"]) == 0
    out = capsys.readouterr().out
    for name in ("is", "ft", "mg", "lu", "lammps"):
        assert name in out
    assert "class" in out


def test_profile_command(capsys):
    assert main(["profile", "--app", "lu", "--problem-class", "T"]) == 0
    out = capsys.readouterr().out
    assert "injection points" in out
    assert "collective mix" in out
    assert "Allreduce" in out


def test_prune_command(capsys):
    assert main(["prune", "--app", "ft", "--problem-class", "T"]) == 0
    out = capsys.readouterr().out
    assert "MPI (semantic)" in out
    assert "%" in out


def test_campaign_command(capsys):
    assert (
        main(
            [
                "campaign",
                "--app",
                "lu",
                "--problem-class",
                "T",
                "--tests",
                "3",
                "--max-points",
                "4",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "response types" in out
    assert "SUCCESS" in out
    assert "error-rate levels" in out


def test_learn_command(capsys):
    assert (
        main(
            [
                "learn",
                "--app",
                "lu",
                "--problem-class",
                "T",
                "--tests",
                "3",
                "--threshold",
                "0.3",
                "--batch-size",
                "4",
                "--policy",
                "all",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "tested" in out and "predicted" in out


def test_study_command_no_ml(capsys):
    assert (
        main(
            [
                "study",
                "--app",
                "mg",
                "--problem-class",
                "T",
                "--tests",
                "2",
                "--no-ml",
                "--policy",
                "buffer",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "Total" in out
    assert "NA" in out


def test_unknown_app_rejected():
    with pytest.raises(SystemExit):
        main(["profile", "--app", "hpl"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_parser_has_all_subcommands():
    parser = build_parser()
    text = parser.format_help()
    for cmd in ("apps", "profile", "prune", "campaign", "learn", "study"):
        assert cmd in text
