"""MG kernel behavioural tests."""

import pytest

from repro.apps import MGKernel
from repro.simmpi import AppError, run_app


@pytest.fixture(scope="module")
def results():
    app = MGKernel.from_problem_class("T")
    return app, run_app(app.main, app.nranks).results


def test_converges_within_cycle_budget(results):
    app, res = results
    assert res[0]["cycles"] < app.params["max_cycles"]


def test_final_norm_below_initial(results):
    _, res = results
    assert res[0]["final_norm"] < 1.0


def test_all_ranks_agree_on_cycles_and_sum(results):
    _, res = results
    assert len({r["cycles"] for r in res}) == 1
    assert len({round(r["solution_sum"], 9) for r in res}) == 1


def test_solution_is_positive_bump(results):
    """-u'' = sin(pi x) + noise has a positive bump solution; its sum
    must be positive and finite."""
    _, res = results
    assert 0 < res[0]["solution_sum"] < 1e6


def test_too_many_levels_detected():
    app = MGKernel.from_problem_class("T")
    bad = MGKernel(app.nranks, **{**app.params, "levels": 12})
    with pytest.raises(AppError):
        run_app(bad.main, bad.nranks)


def test_works_on_non_power_of_two_ranks():
    app = MGKernel.from_problem_class("T")
    odd = MGKernel(3, **app.params)
    res = run_app(odd.main, 3)
    assert res.results[0]["cycles"] < app.params["max_cycles"]
