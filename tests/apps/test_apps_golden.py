"""Golden-run behaviour common to every workload."""

import pytest

from repro.apps import APPLICATIONS, NPB_NAMES, make_app, signatures_match
from repro.simmpi import run_app

ALL_NAMES = sorted(APPLICATIONS)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_clean_run_completes(name):
    app = make_app(name, "T")
    res = run_app(app.main, app.nranks)
    assert len(res.results) == app.nranks
    assert all(r is not None for r in res.results)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_runs_are_deterministic(name):
    app = make_app(name, "T")
    a = run_app(app.main, app.nranks)
    b = run_app(app.main, app.nranks)
    assert a.results == b.results
    assert a.steps == b.steps


@pytest.mark.parametrize("name", ALL_NAMES)
def test_golden_matches_itself(name):
    app = make_app(name, "T")
    res = run_app(app.main, app.nranks)
    assert app.compare(res.results, res.results)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_compare_detects_gross_change(name):
    app = make_app(name, "T")
    res = run_app(app.main, app.nranks)
    import copy

    mutated = copy.deepcopy(res.results)

    def bump(value):
        if isinstance(value, dict):
            k = sorted(value)[0]
            value[k] = bump(value[k])
            return value
        if isinstance(value, (int, float)):
            return value * 3 + 1e6
        if isinstance(value, tuple):
            return bump(list(value))
        if isinstance(value, list) and value:
            value[0] = bump(value[0])
            return value
        return value

    mutated[0] = bump(mutated[0])
    assert not app.compare(res.results, mutated)


def test_npb_names_registered():
    assert set(NPB_NAMES) <= set(APPLICATIONS)


def test_unknown_app_raises():
    with pytest.raises(KeyError):
        make_app("hpl")


def test_unknown_class_raises():
    with pytest.raises(ValueError):
        make_app("lu", "Z")


def test_signatures_match_tolerance():
    assert signatures_match({"x": 1.0}, {"x": 1.0 + 1e-12}, rtol=1e-9)
    assert not signatures_match({"x": 1.0}, {"x": 1.1}, rtol=1e-9)
    assert not signatures_match({"x": 1.0}, {"x": float("nan")}, rtol=1e-9)
    assert not signatures_match({"x": 1.0}, {"y": 1.0}, rtol=1e-9)
    assert signatures_match([1, "a", (2.0,)], [1, "a", (2.0,)], rtol=0)
    assert not signatures_match([1, 2], [1], rtol=0)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_class_params_cover_all_classes(name):
    cls = APPLICATIONS[name]
    for klass in ("T", "S", "A"):
        params = cls.class_params(klass)
        assert params["nranks"] >= 2 or klass == "T"


@pytest.mark.parametrize("name", ALL_NAMES)
def test_describe_mentions_name_and_ranks(name):
    app = make_app(name, "T")
    desc = app.describe()
    assert name in desc
    assert "nranks" in desc
