"""IS kernel behavioural tests."""

import numpy as np
import pytest

from repro.apps import ISKernel
from repro.simmpi import AppError, run_app


@pytest.fixture(scope="module")
def results():
    app = ISKernel.from_problem_class("T")
    return app, run_app(app.main, app.nranks).results


def test_all_keys_accounted_for(results):
    app, res = results
    total = sum(r["count"] for r in res)
    assert total == app.nranks * app.params["keys_per_rank"]


def test_ranks_hold_disjoint_ordered_buckets(results):
    app, res = results
    # Rank signatures: each rank's keys sum is nonnegative and the
    # per-rank xor/sum pair differs (overwhelmingly likely).
    sums = [r["sum"] for r in res]
    assert all(s >= 0 for s in sums)


def test_signature_fields(results):
    _, res = results
    for r in res:
        assert set(r) == {"count", "sum", "xor"}


def test_implausible_config_detected():
    """The config guard (check_config) rejects a corrupt input deck."""
    app = ISKernel.from_problem_class("T")
    bad = ISKernel(app.nranks, **{**app.params, "iterations": 100000})
    with pytest.raises(AppError):
        run_app(bad.main, bad.nranks)


def test_keys_within_max_key():
    app = ISKernel.from_problem_class("T")
    rng = np.random.default_rng(app.params["seed"] * 7919)
    keys = rng.integers(0, app.params["max_key"], size=app.params["keys_per_rank"], dtype=np.int32)
    assert keys.max() < app.params["max_key"]
    assert keys.min() >= 0
