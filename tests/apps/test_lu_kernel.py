"""LU kernel behavioural tests."""

import numpy as np
import pytest

from repro.apps import LUKernel
from repro.simmpi import AppError, run_app


@pytest.fixture(scope="module")
def results():
    app = LUKernel.from_problem_class("T")
    return app, run_app(app.main, app.nranks).results


def test_five_norm_components(results):
    _, res = results
    assert len(res[0]["norms"]) == 5
    assert all(np.isfinite(n) for n in res[0]["norms"])


def test_norms_identical_across_ranks(results):
    _, res = results
    for r in res[1:]:
        assert r["norms"] == pytest.approx(res[0]["norms"])


def test_checksum_identical_across_ranks(results):
    _, res = results
    assert len({round(r["checksum"], 9) for r in res}) == 1


def test_ssor_reduces_residual():
    """More iterations must not increase the residual (SSOR converges
    for this diagonally dominant system)."""
    app = LUKernel.from_problem_class("T")
    short = LUKernel(app.nranks, **{**app.params, "iterations": 2})
    long = LUKernel(app.nranks, **{**app.params, "iterations": 16})
    rs = run_app(short.main, short.nranks).results[0]["norms"]
    rl = run_app(long.main, long.nranks).results[0]["norms"]
    assert sum(rl) < sum(rs)


def test_implausible_config_detected():
    app = LUKernel.from_problem_class("T")
    bad = LUKernel(app.nranks, **{**app.params, "iterations": 100_000})
    with pytest.raises(AppError):
        run_app(bad.main, bad.nranks)


def test_single_rank_pipeline_degenerates_gracefully():
    app = LUKernel.from_problem_class("T")
    solo = LUKernel(1, **app.params)
    res = run_app(solo.main, 1)
    assert np.isfinite(res.results[0]["checksum"])
