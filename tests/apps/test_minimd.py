"""Mini-LAMMPS behavioural tests: physics and MPI usage profile."""

import numpy as np
import pytest

from repro.apps import MiniMD
from repro.apps.lammps.domain import Domain
from repro.apps.lammps.force import kinetic_energy, lj_forces
from repro.apps.lammps.integrate import init_velocities
from repro.profiling import profile_application
from repro.simmpi import run_app


@pytest.fixture(scope="module")
def app():
    return MiniMD.from_problem_class("T")


@pytest.fixture(scope="module")
def results(app):
    return run_app(app.main, app.nranks).results


def test_energy_is_negative_bound_state(results):
    # A cold LJ lattice has negative total energy.
    assert results[0]["energy"] < 0


def test_energy_identical_across_ranks(results):
    energies = {round(r["energy"], 9) for r in results}
    assert len(energies) == 1


def test_atom_count_conserved(app, results):
    cx, cy, cz = app.params["cells"]
    assert sum(r["natoms"] for r in results) == cx * cy * cz * app.nranks


def test_temperature_reasonable(app, results):
    t = results[0]["temperature"]
    assert 0 < t < 3 * app.params["temperature"]


def test_allreduce_dominates_collectives(app):
    """The paper: >84 % of LAMMPS collectives are MPI_Allreduce."""
    profile = profile_application(app)
    mix = profile.comm.collective_mix()
    total = sum(mix.values())
    assert mix["Allreduce"] / total > 0.75


def test_errhal_fraction_substantial(app):
    """The paper: ~40 % of LAMMPS allreduces are error handling."""
    from repro.ml.features import stack_is_errhal

    profile = profile_application(app)
    allreduce = [c for c in profile.comm.calls if c.name == "Allreduce"]
    errhal = [c for c in allreduce if stack_is_errhal(c.stack)]
    frac = len(errhal) / len(allreduce)
    assert 0.2 < frac < 0.7


# -- physics units ------------------------------------------------------


def test_lj_force_is_zero_at_minimum():
    pos = np.array([[0.0, 0.0, 0.0], [2 ** (1 / 6), 0.0, 0.0]])
    forces, pe = lj_forces(pos, np.zeros((0, 3)), 2.5, 100.0, 100.0)
    np.testing.assert_allclose(forces, 0.0, atol=1e-12)
    assert pe == pytest.approx(-1.0)


def test_lj_forces_newtons_third_law():
    rng = np.random.default_rng(1)
    pos = rng.random((10, 3)) * 3.0
    forces, _ = lj_forces(pos, np.zeros((0, 3)), 2.5, 100.0, 100.0)
    np.testing.assert_allclose(forces.sum(axis=0), 0.0, atol=1e-9)


def test_lj_repulsive_inside_minimum():
    pos = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
    forces, pe = lj_forces(pos, np.zeros((0, 3)), 2.5, 100.0, 100.0)
    assert forces[0, 0] < 0 < forces[1, 0]
    assert pe == pytest.approx(0.0, abs=1e-12)


def test_kinetic_energy():
    vel = np.array([[1.0, 0.0, 0.0], [0.0, 2.0, 0.0]])
    assert kinetic_energy(vel) == pytest.approx(0.5 * (1 + 4))


def test_init_velocities_zero_momentum():
    v = init_velocities(np.random.default_rng(0), 50, 0.7)
    np.testing.assert_allclose(v.mean(axis=0), 0.0, atol=1e-12)


def test_domain_owner_offsets():
    d = Domain(rank=1, nranks=4, slab_w=3.0, ly=6.0, lz=6.0)
    x = np.array([4.0, 1.0, 7.0, 10.5])
    np.testing.assert_array_equal(d.owner_offsets(x), [0, -1, 1, 2])


def test_domain_wrap_periodic():
    d = Domain(rank=0, nranks=2, slab_w=3.0, ly=6.0, lz=6.0)
    pos = np.array([[-1.0, 7.0, 5.0]])
    wrapped = d.wrap(pos)
    np.testing.assert_allclose(wrapped, [[5.0, 1.0, 5.0]])


def test_domain_face_masks():
    d = Domain(rank=1, nranks=4, slab_w=3.0, ly=6.0, lz=6.0)
    x = np.array([3.1, 4.5, 5.9])
    np.testing.assert_array_equal(d.near_left(x, 0.5), [True, False, False])
    np.testing.assert_array_equal(d.near_right(x, 0.5), [False, False, True])
