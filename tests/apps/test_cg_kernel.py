"""CG extension-kernel behavioural tests."""

import numpy as np
import pytest

from repro.apps import CGKernel
from repro.profiling import profile_application
from repro.simmpi import AppError, run_app


@pytest.fixture(scope="module")
def app():
    return CGKernel.from_problem_class("T")


@pytest.fixture(scope="module")
def results(app):
    return run_app(app.main, app.nranks).results


def test_converges(results):
    assert results[0]["rnorm"] < 1e-6


def test_solution_only_at_root(results):
    assert results[0]["x_sum"] is not None
    for r in results[1:]:
        assert r["x_sum"] is None


def test_rnorm_identical_across_ranks(results):
    assert len({r["rnorm"] for r in results}) == 1


def test_solution_solves_system(app, results):
    """Independently verify A x = b from the gathered solution."""
    p = app.params
    n = p["n_per_rank"] * app.nranks
    rng = np.random.default_rng(p["seed"])
    base = rng.standard_normal((n, n)) / np.sqrt(n)
    a = base @ base.T + p["shift"] * np.eye(n)
    b = np.sin(np.arange(n) * 0.7) + 1.0
    x = np.linalg.solve(a, b)
    assert results[0]["x_sum"] == pytest.approx(float(x.sum()), rel=1e-6)


def test_uses_extension_collectives(app):
    profile = profile_application(app)
    mix = profile.comm.collective_mix()
    assert mix.get("Reduce_scatter", 0) > 0
    assert mix.get("Gatherv", 0) > 0
    assert mix["Allreduce"] > mix["Reduce_scatter"]


def test_implausible_config_detected(app):
    bad = CGKernel(app.nranks, **{**app.params, "iterations": 100_000})
    with pytest.raises(AppError):
        run_app(bad.main, bad.nranks)


def test_cg_registered():
    from repro.apps import APPLICATIONS, NPB_NAMES

    assert "cg" in APPLICATIONS
    assert "cg" not in NPB_NAMES  # extension workload, not a paper one
