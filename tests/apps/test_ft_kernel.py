"""FT kernel behavioural tests."""

import numpy as np
import pytest

from repro.apps import FTKernel
from repro.simmpi import AppError, run_app


@pytest.fixture(scope="module")
def results():
    app = FTKernel.from_problem_class("T")
    return app, run_app(app.main, app.nranks).results


def test_energy_agrees_across_ranks(results):
    _, res = results
    energies = {round(r["energy"], 6) for r in res}
    assert len(energies) == 1


def test_checksums_only_at_root(results):
    app, res = results
    assert len(res[0]["checksums"]) == app.params["iterations"]
    for r in res[1:]:
        assert r["checksums"] == []


def test_checksums_finite(results):
    _, res = results
    for re_, im in res[0]["checksums"]:
        assert np.isfinite(re_) and np.isfinite(im)


def test_energy_roughly_preserved(results):
    """The evolution factor only damps, so energy stays bounded by the
    initial random field's energy (|u|^2 ~ 2/3 per element on average)."""
    app, res = results
    n_elements = app.params["nx"] * app.params["ny"]
    assert 0 < res[0]["energy"] < 2.0 * n_elements


def test_indivisible_grid_detected():
    app = FTKernel.from_problem_class("T")
    bad = FTKernel(3, **app.params)  # 16 % 3 != 0
    with pytest.raises(AppError):
        run_app(bad.main, bad.nranks)


def test_transpose_roundtrip_is_lossless():
    """Two fault-free iterations keep the field finite and the energy
    history consistent with pure damping (monotone non-increasing)."""
    app = FTKernel.from_problem_class("T")
    res = run_app(app.main, app.nranks).results
    mags = [abs(complex(re_, im)) for re_, im in res[0]["checksums"]]
    assert all(np.isfinite(m) for m in mags)
