"""DB-backed campaign equivalence, stated through replay fingerprints:
serial, parallel (``--jobs 4``), and killed-then-resumed campaigns must
leave byte-identical result sets in the database — and those rows must
agree with the in-memory TestResult stream."""

import pytest

from repro.injection import Campaign, enumerate_points
from repro.store import CampaignDB
from repro.verify.replay import fingerprint

TESTS_PER_POINT = 6
SEED = 17


def stream_signature(result):
    """Canonical content hash of the full TestResult stream (the same
    construction tests/verify/test_serial_parallel_equiv.py pins)."""
    sig = []
    for point, pr in sorted(result.points.items()):
        sig.append(
            (
                repr(point),
                [
                    (
                        repr(t.spec.point),
                        t.spec.param,
                        t.spec.bit,
                        t.outcome.name,
                        None if t.record is None else (t.record.bit, t.record.skipped),
                        t.detail,
                    )
                    for t in pr.tests
                ],
                pr.error_rate,
            )
        )
    return fingerprint(sig)


def db_signature(db_path):
    """Canonical content hash of the stored result set: every per-test
    row in (point, test) order, independent of ids and sharding."""
    with CampaignDB(db_path) as db:
        row = db.campaign()
        assert row is not None, f"no campaign recorded in {db_path}"
        rows = [
            (
                r["point_index"], r["test_index"], r["rank"], r["collective"],
                r["site"], r["invocation"], r["param"], r["bit"],
                r["outcome"], r["injected"], r["detail"],
            )
            for r in db.results(row["id"])
        ]
    assert rows, f"empty result set in {db_path}"
    return fingerprint(rows)


@pytest.fixture(scope="module")
def points(lu_profile):
    return enumerate_points(lu_profile)[:5]


def run_campaign(lu_app, lu_profile, points, **kwargs):
    return Campaign(
        lu_app, lu_profile, tests_per_point=TESTS_PER_POINT,
        param_policy="all", seed=SEED, **kwargs,
    ).run(points)


@pytest.fixture(scope="module")
def serial(tmp_path_factory, lu_app, lu_profile, points):
    """The uninterrupted single-worker DB-backed reference run."""
    db = tmp_path_factory.mktemp("serial") / "c.sqlite"
    result = run_campaign(lu_app, lu_profile, points, db_path=db)
    return result, db


def test_db_rows_match_in_memory_stream(serial, lu_app, lu_profile, points):
    """The stored rows are the stream: same outcomes per (point, test),
    and the plain no-store campaign fingerprints identically."""
    result, db = serial
    plain = run_campaign(lu_app, lu_profile, points)
    assert stream_signature(result) == stream_signature(plain)

    with CampaignDB(db) as cdb:
        row = cdb.campaign()
        assert row["complete"] == 1
        hist = cdb.outcome_histogram(row["id"])
    counted = {}
    for t in result.all_tests():
        counted[t.outcome.name] = counted.get(t.outcome.name, 0) + 1
    assert hist == counted


def test_parallel_jobs4_db_bit_identical(serial, lu_app, lu_profile, points, tmp_path):
    result, db = serial
    db4 = tmp_path / "jobs4.sqlite"
    result4 = run_campaign(lu_app, lu_profile, points, db_path=db4, jobs=4)
    assert stream_signature(result4) == stream_signature(result)
    assert db_signature(db4) == db_signature(db)


def test_killed_then_resumed_db_bit_identical(
    serial, lu_app, lu_profile, points, tmp_path
):
    """Crash the campaign halfway via the progress callback, resume from
    the database: both the merged stream and the stored result set must
    equal the uninterrupted run's, byte for byte."""
    result, db = serial
    dbk = tmp_path / "killed.sqlite"

    class Killed(RuntimeError):
        pass

    def killer(done, total):
        if done >= total // 2:
            raise Killed(f"{done}/{total}")

    with pytest.raises(Killed):
        run_campaign(lu_app, lu_profile, points, db_path=dbk, progress=killer)

    # the durable prefix is already queryable, campaign marked incomplete
    with CampaignDB(dbk) as cdb:
        row = cdb.campaign()
        assert row["complete"] == 0
        partial = len(list(cdb.results(row["id"])))
    assert 0 < partial < len(points) * TESTS_PER_POINT

    resumed = run_campaign(
        lu_app, lu_profile, points, db_path=dbk, resume=True
    )
    assert stream_signature(resumed) == stream_signature(result)
    assert db_signature(dbk) == db_signature(db)
    with CampaignDB(dbk) as cdb:
        assert cdb.campaign()["complete"] == 1


def test_resume_of_complete_campaign_runs_nothing(serial, lu_app, lu_profile, points):
    """Resuming a finished campaign replays from the database only —
    and still reproduces the identical stream."""
    result, db = serial
    replayed = run_campaign(lu_app, lu_profile, points, db_path=db, resume=True)
    assert stream_signature(replayed) == stream_signature(result)
    assert db_signature(db) == db_signature(db)
