"""Store durability: torn writes roll back whole units, lock contention
surfaces as a clean :class:`CampaignStoreError`, never corruption."""

import sqlite3

import pytest

from repro.injection import FaultSpec, InjectionPoint, Outcome
from repro.injection import TestResult as InjectionTestResult
from repro.store import CampaignDB, CampaignStoreError

DIGEST = "f" * 64


def make_tests(point_index=0, n=3):
    point = InjectionPoint(0, "allreduce", f"f.py:{point_index}", 0)
    return [
        InjectionTestResult(FaultSpec(point, "sendbuf", i), Outcome.SUCCESS, None)
        for i in range(n)
    ]


class PoisonMetrics:
    """Pickles explosively — fails *inside* record_unit's transaction,
    after the units INSERT already executed."""

    def __reduce__(self):
        raise RuntimeError("simulated torn write")


def test_torn_write_rolls_back_whole_unit(tmp_path):
    """A failure mid-record must lose exactly that unit: the durable
    prefix survives, the database stays consistent and writable."""
    with CampaignDB(tmp_path / "c.sqlite") as db:
        cid = db.create_campaign(DIGEST, app="lu")
        db.record_unit(cid, "p0:t0-3", make_tests(0))

        with pytest.raises(RuntimeError, match="torn write"):
            db.record_unit(cid, "p1:t0-3", make_tests(1), metrics=PoisonMetrics())

        # the interrupted unit vanished entirely -- no units row, no
        # results rows, and the connection is out of the transaction
        assert not db.conn.in_transaction
        assert set(db.load_units(cid)) == {"p0:t0-3"}
        assert db.outcome_histogram(cid) == {"SUCCESS": 3}

        # the store keeps working: the retried unit lands cleanly
        db.record_unit(cid, "p1:t0-3", make_tests(1))
        assert set(db.load_units(cid)) == {"p0:t0-3", "p1:t0-3"}
        assert db.outcome_histogram(cid) == {"SUCCESS": 6}


def test_torn_write_survives_reopen(tmp_path):
    """Same scenario, but checked through a fresh connection — what a
    resume after a crash actually sees."""
    path = tmp_path / "c.sqlite"
    db = CampaignDB(path).open()
    cid = db.create_campaign(DIGEST, app="lu")
    db.record_unit(cid, "p0:t0-3", make_tests(0))
    with pytest.raises(RuntimeError):
        db.record_unit(cid, "p1:t0-3", make_tests(1), metrics=PoisonMetrics())
    db.close()

    with CampaignDB(path) as again:
        cid = again.campaign_id(DIGEST)
        assert set(again.load_units(cid)) == {"p0:t0-3"}


@pytest.fixture
def blocked(tmp_path):
    """A campaign DB plus a second connection holding the write lock."""
    path = tmp_path / "c.sqlite"
    db = CampaignDB(path, timeout=0.2).open()
    cid = db.create_campaign(DIGEST, app="lu")
    blocker = sqlite3.connect(path, timeout=0.2, isolation_level=None)
    blocker.execute("BEGIN IMMEDIATE")
    yield db, cid, blocker
    blocker.close()
    db.close()


def test_locked_db_record_raises_store_error(blocked):
    db, cid, blocker = blocked
    with pytest.raises(CampaignStoreError, match="locked"):
        db.record_unit(cid, "p0:t0-3", make_tests())
    # nothing half-written
    assert not db.conn.in_transaction
    assert db.load_units(cid) == {}

    blocker.execute("ROLLBACK")
    db.record_unit(cid, "p0:t0-3", make_tests())
    assert set(db.load_units(cid)) == {"p0:t0-3"}


def test_locked_db_create_campaign_raises_store_error(blocked):
    db, _, _ = blocked
    with pytest.raises(CampaignStoreError, match="locked"):
        db.create_campaign("e" * 64, app="lu")


def test_reads_proceed_under_write_lock(blocked):
    """WAL keeps readers unblocked while a writer holds the lock."""
    db, cid, _ = blocked
    assert db.load_units(cid) == {}
    assert db.campaign(DIGEST)["app"] == "lu"
