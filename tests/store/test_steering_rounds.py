"""Store coverage for the steering_rounds table and the v3 migration."""

import json
import sqlite3

import pytest

from repro.store.db import CampaignDB, CampaignStoreError
from repro.store.schema import SCHEMA_VERSION


def _open_with_campaign(path):
    db = CampaignDB(path).open()
    cid = db.create_campaign("digest-steer", app="lu", seed=7)
    return db, cid


class TestSteeringRoundsRoundtrip:
    def test_roundtrip(self, tmp_path):
        db, cid = _open_with_campaign(tmp_path / "c.sqlite")
        db.record_steering_round(
            cid, 0, point_indices=[4, 1, 9], tests_planned=36, tests_run=30,
            budget_used=30,
        )
        db.record_steering_round(
            cid, 1, point_indices=[2, 7], tests_planned=24, tests_run=24,
            budget_used=54, accuracy=0.75, mean_uncertainty=0.5,
            stop_reason="accuracy",
        )
        rows = db.steering_rounds(cid)
        assert [r["round"] for r in rows] == [0, 1]
        first, second = rows
        assert json.loads(first["point_indices"]) == [4, 1, 9]
        assert first["n_points"] == 3
        assert first["tests_saved"] == 6
        assert first["accuracy"] is None
        assert first["mean_uncertainty"] is None
        assert first["stop_reason"] == ""
        assert second["budget_used"] == 54
        assert second["accuracy"] == 0.75
        assert second["stop_reason"] == "accuracy"
        db.close()

    def test_rerecord_is_idempotent(self, tmp_path):
        # A resumed driver re-records replayed rounds; the final value
        # (with its stop_reason) must win without duplicating rows.
        db, cid = _open_with_campaign(tmp_path / "c.sqlite")
        db.record_steering_round(
            cid, 0, point_indices=[1], tests_planned=12, tests_run=12,
            budget_used=12,
        )
        db.record_steering_round(
            cid, 0, point_indices=[1], tests_planned=12, tests_run=12,
            budget_used=12, stop_reason="budget",
        )
        rows = db.steering_rounds(cid)
        assert len(rows) == 1
        assert rows[0]["stop_reason"] == "budget"
        db.close()

    def test_cascade_delete_with_campaign(self, tmp_path):
        path = tmp_path / "c.sqlite"
        db, cid = _open_with_campaign(path)
        db.record_steering_round(
            cid, 0, point_indices=[0], tests_planned=4, tests_run=4,
            budget_used=4,
        )
        # fresh=True re-creates the campaign row; the cascade must take
        # the steering rounds with the old row.
        new_cid = db.create_campaign("digest-steer", fresh=True)
        assert db.steering_rounds(cid) == []
        assert db.steering_rounds(new_cid) == []
        db.close()


def _fabricate_old_version(path, version: int):
    """Downgrade a fresh database to an older schema on disk."""
    db = CampaignDB(path).open()
    db.close()
    conn = sqlite3.connect(path)
    conn.execute("DROP TABLE steering_rounds")
    if version < 2:
        conn.execute("ALTER TABLE results DROP COLUMN model")
    conn.execute(
        "UPDATE schema_meta SET value = ? WHERE key = 'schema_version'",
        (str(version),),
    )
    conn.commit()
    conn.close()


class TestMigration:
    @pytest.mark.parametrize("old_version", [1, 2])
    def test_migrates_in_place(self, tmp_path, old_version):
        path = tmp_path / "old.sqlite"
        _fabricate_old_version(path, old_version)
        db = CampaignDB(path).open()
        row = db.conn.execute(
            "SELECT value FROM schema_meta WHERE key = 'schema_version'"
        ).fetchone()
        assert int(row["value"]) == SCHEMA_VERSION == 3
        # v2 artefact: results.model exists again.
        cols = [r["name"] for r in db.conn.execute("PRAGMA table_info(results)")]
        assert "model" in cols
        # v3 artefact: steering_rounds usable.
        cid = db.create_campaign("migrated")
        db.record_steering_round(
            cid, 0, point_indices=[0], tests_planned=1, tests_run=1,
            budget_used=1,
        )
        assert len(db.steering_rounds(cid)) == 1
        db.close()

    def test_newer_schema_is_rejected(self, tmp_path):
        path = tmp_path / "future.sqlite"
        db = CampaignDB(path).open()
        db.conn.execute(
            "UPDATE schema_meta SET value = ? WHERE key = 'schema_version'",
            (str(SCHEMA_VERSION + 1),),
        )
        db.close()
        with pytest.raises(CampaignStoreError, match="schema version"):
            CampaignDB(path).open()
