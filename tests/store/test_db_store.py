"""CampaignDB / DBCheckpointStore unit tests (no campaign runs)."""


import pytest

from repro.injection import FaultSpec, InjectionPoint, Outcome
from repro.injection import TestResult as InjectionTestResult
from repro.store import CampaignDB, CampaignStoreError, DBCheckpointStore

DIGEST = "d" * 64

CAMPAIGN_INFO = dict(
    app="lu",
    nranks=4,
    seed=7,
    tests_per_point=3,
    param_policy="all",
    unit_tests=3,
    algorithms={"allreduce": "ring"},
    code_version="test",
    n_points=2,
    total_units=2,
)


def make_tests(point_index=0, n=3, outcome=Outcome.SUCCESS):
    point = InjectionPoint(
        rank=0, collective="allreduce", site=f"site{point_index}", invocation=0
    )
    return [
        InjectionTestResult(
            spec=FaultSpec(point=point, param="sendbuf", bit=i),
            outcome=outcome,
            record=None,
            detail=f"test {i}",
        )
        for i in range(n)
    ]


@pytest.fixture
def db(tmp_path):
    with CampaignDB(tmp_path / "c.sqlite") as db:
        yield db


def test_open_creates_schema(db):
    tables = {
        row["name"]
        for row in db.conn.execute("SELECT name FROM sqlite_master WHERE type='table'")
    }
    assert {
        "schema_meta", "campaigns", "units", "results",
        "point_tallies", "quarantine", "metrics_snapshots", "progress",
    } <= tables


def test_schema_version_mismatch_rejected(tmp_path):
    path = tmp_path / "c.sqlite"
    with CampaignDB(path) as db:
        db.conn.execute(
            "UPDATE schema_meta SET value = '999' WHERE key = 'schema_version'"
        )
    with pytest.raises(CampaignStoreError, match="schema version"):
        CampaignDB(path).open()


def test_open_non_database_file_is_store_error(tmp_path):
    path = tmp_path / "garbage.sqlite"
    path.write_bytes(b"this is not a sqlite file, not even close to one..")
    with pytest.raises(CampaignStoreError, match="cannot open"):
        CampaignDB(path).open()


def test_create_campaign_is_get_or_create(db):
    cid = db.create_campaign(DIGEST, **CAMPAIGN_INFO)
    assert db.create_campaign(DIGEST, **CAMPAIGN_INFO) == cid
    assert db.campaign_id(DIGEST) == cid
    row = db.campaign(DIGEST)
    assert row["app"] == "lu"
    assert row["complete"] == 0


def test_fresh_drops_prior_campaign_data(db):
    cid = db.create_campaign(DIGEST, **CAMPAIGN_INFO)
    db.record_unit(cid, "p0:t0-3", make_tests())
    assert len(db.load_units(cid)) == 1
    cid2 = db.create_campaign(DIGEST, fresh=True, **CAMPAIGN_INFO)
    assert db.load_units(cid2) == {}
    # cascade cleared the old results rows too
    assert db.conn.execute("SELECT COUNT(*) AS n FROM results").fetchone()["n"] == 0


def test_digest_prefix_lookup(db):
    db.create_campaign(DIGEST, **CAMPAIGN_INFO)
    assert db.campaign(DIGEST[:12])["digest"] == DIGEST
    assert db.campaign("nope") is None
    db.create_campaign("d" * 63 + "e", **CAMPAIGN_INFO)
    with pytest.raises(CampaignStoreError, match="ambiguous"):
        db.campaign(DIGEST[:12])


def test_record_unit_roundtrip(db):
    cid = db.create_campaign(DIGEST, **CAMPAIGN_INFO)
    tests = make_tests(point_index=1, n=3, outcome=Outcome.WRONG_ANS)
    db.record_unit(cid, "p1:t0-3", tests)

    loaded, metrics = db.load_units(cid)["p1:t0-3"]
    assert metrics is None
    assert [t.outcome for t in loaded] == [t.outcome for t in tests]
    assert [t.spec.bit for t in loaded] == [0, 1, 2]

    rows = list(db.results(cid))
    assert [(r["point_index"], r["test_index"]) for r in rows] == [
        (1, 0), (1, 1), (1, 2),
    ]
    assert all(r["collective"] == "allreduce" for r in rows)
    assert all(r["bit"] is None for r in rows)  # record=None -> no flip landed
    assert db.outcome_histogram(cid) == {"WRONG_ANS": 3}


def test_record_unit_test_index_offsets_from_unit_start(db):
    cid = db.create_campaign(DIGEST, **CAMPAIGN_INFO)
    db.record_unit(cid, "p0:t6-9", make_tests())
    assert [r["test_index"] for r in db.results(cid)] == [6, 7, 8]


def test_point_tallies_roundtrip(db):
    cid = db.create_campaign(DIGEST, **CAMPAIGN_INFO)
    db.record_point_tallies(
        cid,
        [
            (0, 0, "allreduce", "siteA", 0, "SUCCESS", 5),
            (0, 0, "allreduce", "siteA", 0, "INF_LOOP", 1),
            (1, 2, "bcast", "siteB", 1, "SUCCESS", 6),
        ],
    )
    rows = db.point_tallies(cid)
    assert [(r["point_index"], r["outcome"], r["n"]) for r in rows] == [
        (0, "INF_LOOP", 1),
        (0, "SUCCESS", 5),
        (1, "SUCCESS", 6),
    ]
    # record replaces, not appends
    db.record_point_tallies(cid, [(0, 0, "allreduce", "siteA", 0, "SUCCESS", 9)])
    assert len(db.point_tallies(cid)) == 1


def test_metrics_snapshot_roundtrip(db):
    from repro.obs.metrics import MetricsRegistry

    reg = MetricsRegistry()
    reg.counter("exec.retries").inc(3)
    cid = db.create_campaign(DIGEST, **CAMPAIGN_INFO)
    db.record_metrics(cid, "final", reg)
    snap = db.metrics_snapshot(cid, "final")
    assert snap["counters"]["exec.retries"] == 3
    assert db.metrics_snapshot(cid, "missing") is None


def test_update_campaign_prunes_stale_quarantine(db):
    cid = db.create_campaign(DIGEST, **CAMPAIGN_INFO)
    db.record_quarantine(cid, "p0:t0-3", "unit timeout")
    db.record_quarantine(cid, "p1:t0-3", "worker died")
    # p0 succeeded on retry: the manifest keeps only p1 quarantined
    db.update_campaign(
        cid,
        complete=True,
        quarantined=["p1:t0-3"],
        quarantine_reasons={"p1:t0-3": "worker died"},
    )
    rows = db.quarantine_records(cid)
    assert [(r["unit_id"], r["reason"]) for r in rows] == [("p1:t0-3", "worker died")]
    assert db.campaign(DIGEST)["complete"] == 1


class TestDBCheckpointStore:
    def test_lifecycle_and_resume(self, tmp_path):
        path = tmp_path / "c.sqlite"
        store = DBCheckpointStore(path, DIGEST, campaign_info=CAMPAIGN_INFO)
        assert store.load(resume=False) == {}
        store.record("p0:t0-3", make_tests())
        store.write_manifest(total_units=2, complete=False)
        store.close()
        assert store.closed

        again = DBCheckpointStore(path, DIGEST, campaign_info=CAMPAIGN_INFO)
        known = again.load(resume=True)
        assert set(known) == {"p0:t0-3"}
        again.record("p1:t0-3", make_tests(point_index=1))
        again.write_manifest(total_units=2, complete=True)
        again.close()

        with CampaignDB(path) as db:
            row = db.campaign(DIGEST)
            assert row["complete"] == 1
            assert row["total_units"] == 2

    def test_fresh_load_drops_previous_attempt(self, tmp_path):
        path = tmp_path / "c.sqlite"
        store = DBCheckpointStore(path, DIGEST, campaign_info=CAMPAIGN_INFO)
        store.load(resume=False)
        store.record("p0:t0-3", make_tests())
        store.close()

        fresh = DBCheckpointStore(path, DIGEST, campaign_info=CAMPAIGN_INFO)
        assert fresh.load(resume=False) == {}
        fresh.close()

    def test_quarantined_unit_not_persisted_as_completed(self, tmp_path):
        """Quarantine rows are forensic metadata: a resume must retry the
        unit, so it never appears in the completed set."""
        path = tmp_path / "c.sqlite"
        store = DBCheckpointStore(path, DIGEST, campaign_info=CAMPAIGN_INFO)
        store.load(resume=False)
        store.record("p0:t0-3", make_tests())
        store.record_quarantine("p1:t0-3", "unit timeout after 2 retries")
        store.write_manifest(total_units=2, complete=False, quarantined=["p1:t0-3"])
        store.close()

        again = DBCheckpointStore(path, DIGEST, campaign_info=CAMPAIGN_INFO)
        assert set(again.load(resume=True)) == {"p0:t0-3"}
        with CampaignDB(path) as db:
            rows = db.quarantine_records(again.campaign_id)
            assert [(r["unit_id"], r["reason"]) for r in rows] == [
                ("p1:t0-3", "unit timeout after 2 retries")
            ]
        again.close()

    def test_progress_sink_writes_rows(self, tmp_path):
        from repro.obs.progress import ProgressTracker

        path = tmp_path / "c.sqlite"
        store = DBCheckpointStore(path, DIGEST, campaign_info=CAMPAIGN_INFO)
        store.load(resume=False)
        tracker = ProgressTracker(6, 2, sinks=[store.progress_sink()])
        tracker.unit_done(make_tests())
        tracker.unit_done(make_tests(point_index=1))
        tracker.finish()
        rows = CampaignDB(path).open().progress_rows(store.campaign_id)
        assert [r["seq"] for r in rows] == [1, 2]
        assert rows[-1]["done_tests"] == 6
        store.close()

    def test_record_before_load_is_an_error(self, tmp_path):
        store = DBCheckpointStore(tmp_path / "c.sqlite", DIGEST)
        with pytest.raises(RuntimeError, match="load"):
            store.record("p0:t0-3", make_tests())


def test_many_campaigns_share_one_file(tmp_path):
    path = tmp_path / "c.sqlite"
    with CampaignDB(path) as db:
        a = db.create_campaign("a" * 64, **CAMPAIGN_INFO)
        b = db.create_campaign("b" * 64, **CAMPAIGN_INFO)
        db.record_unit(a, "p0:t0-3", make_tests())
        db.record_unit(b, "p0:t0-3", make_tests(outcome=Outcome.SEG_FAULT))
        assert db.outcome_histogram(a) == {"SUCCESS": 3}
        assert db.outcome_histogram(b) == {"SEG_FAULT": 3}
        assert len(db.campaigns()) == 2
