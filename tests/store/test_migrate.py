"""Pickle-checkpoint -> SQLite migration (``fastfit migrate``)."""

import pickle

import pytest

from repro.injection import Campaign, enumerate_points
from repro.store import CampaignDB, MigrationError, migrate_checkpoint

TESTS_PER_POINT = 4
SEED = 11


@pytest.fixture(scope="module")
def points(lu_profile):
    return enumerate_points(lu_profile)[:4]


@pytest.fixture(scope="module")
def checkpoint(tmp_path_factory, lu_app, lu_profile, points):
    """A completed pickle checkpoint plus its campaign result."""
    ckdir = tmp_path_factory.mktemp("migrate") / "ck"
    result = Campaign(
        lu_app, lu_profile, tests_per_point=TESTS_PER_POINT,
        param_policy="all", seed=SEED, checkpoint_dir=ckdir,
    ).run(points)
    return ckdir, result


def test_migrate_roundtrip(checkpoint, tmp_path):
    ckdir, result = checkpoint
    db_path = tmp_path / "c.sqlite"
    summary = migrate_checkpoint(ckdir, db_path)
    assert summary["complete"] is True
    assert summary["tests"] == len(result.all_tests())

    with CampaignDB(db_path) as db:
        row = db.campaign(summary["digest"])
        assert row["complete"] == 1
        assert summary["units"] == len(db.load_units(row["id"]))
        hist = db.outcome_histogram(row["id"])
    counted = {}
    for t in result.all_tests():
        counted[t.outcome.name] = counted.get(t.outcome.name, 0) + 1
    assert hist == counted


def test_migrate_duplicate_digest_needs_overwrite(checkpoint, tmp_path):
    ckdir, _ = checkpoint
    db_path = tmp_path / "c.sqlite"
    first = migrate_checkpoint(ckdir, db_path)
    with pytest.raises(MigrationError, match="--overwrite"):
        migrate_checkpoint(ckdir, db_path)
    again = migrate_checkpoint(ckdir, db_path, overwrite=True)
    assert again["digest"] == first["digest"]
    assert again["units"] == first["units"]


def test_migrate_tolerates_torn_tail(checkpoint, tmp_path):
    """A unit stream truncated mid-record migrates its durable prefix."""
    ckdir, _ = checkpoint
    torn = tmp_path / "ck"
    torn.mkdir()
    src = (ckdir / "units.pkl").read_bytes()
    (torn / "units.pkl").write_bytes(src[:-20])

    summary = migrate_checkpoint(torn, tmp_path / "c.sqlite")
    full = migrate_checkpoint(ckdir, tmp_path / "full.sqlite")
    assert summary["units"] == full["units"] - 1
    # no manifest in the torn copy: the campaign stays incomplete
    assert summary["complete"] is False


def test_migrate_missing_checkpoint_is_migration_error(tmp_path):
    with pytest.raises(MigrationError, match="no checkpoint"):
        migrate_checkpoint(tmp_path / "nowhere", tmp_path / "c.sqlite")


def test_migrate_headerless_stream_rejected(tmp_path):
    ck = tmp_path / "ck"
    ck.mkdir()
    with (ck / "units.pkl").open("wb") as fh:
        pickle.dump({"not": "a header"}, fh)
    with pytest.raises(MigrationError):
        migrate_checkpoint(ck, tmp_path / "c.sqlite")
