"""Property-based fuzzing of the v-variant collectives' edge cases:
zero counts, maximal displacements (blocks packed right up to the end of
the buffer), and single-rank communicators — each example diffed against
the pure-numpy reference model.

``derandomize=True`` keeps tier-1 deterministic; the RNG-driven
conformance sweep covers the randomised exploration.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.simmpi import run_app
from repro.verify.reference import (
    ref_allgatherv,
    ref_alltoallv,
    ref_alltoallw,
    ref_scatterv,
)

ARENA = 1 << 16
SETTINGS = settings(max_examples=25, deadline=None, derandomize=True)

sizes = st.integers(min_value=1, max_value=4)
counts = st.integers(min_value=0, max_value=3)  # zero-heavy on purpose


def pack_layout(draw, block_sizes):
    """Place blocks in a drawn permutation with drawn gaps; the last
    block ends exactly at the buffer end (maximal displacement)."""
    order = draw(st.permutations(range(len(block_sizes))))
    displs = [0] * len(block_sizes)
    cursor = 0
    for slot in order:
        cursor += draw(st.integers(min_value=0, max_value=2))  # leading gap
        displs[slot] = cursor
        cursor += block_sizes[slot]
    return displs, max(cursor, 1)


def sentinel(n):
    return (np.arange(n, dtype=np.int32) % 23) - 50


@SETTINGS
@given(data=st.data())
def test_alltoallv_matches_reference(data):
    n = data.draw(sizes, label="nranks")
    sendcounts = [[data.draw(counts) for _ in range(n)] for _ in range(n)]
    recvcounts = [[sendcounts[src][dst] for src in range(n)] for dst in range(n)]
    sdispls, ssizes = zip(*(pack_layout(data.draw, sendcounts[r]) for r in range(n)))
    rdispls, rsizes = zip(*(pack_layout(data.draw, recvcounts[r]) for r in range(n)))

    sendimgs = [
        np.arange(r * 100, r * 100 + ssizes[r], dtype=np.int32) for r in range(n)
    ]
    recvimgs = [sentinel(rsizes[r]) for r in range(n)]

    def app(ctx):
        r = ctx.rank
        sbuf = ctx.alloc(len(sendimgs[r]), ctx.INT)
        rbuf = ctx.alloc(len(recvimgs[r]), ctx.INT)
        sbuf.view[:] = sendimgs[r]
        rbuf.view[:] = recvimgs[r]
        yield from ctx.Alltoallv(
            sbuf.addr, sendcounts[r], sdispls[r],
            rbuf.addr, recvcounts[r], rdispls[r], ctx.INT, ctx.WORLD,
        )
        return np.array(rbuf.view)

    got = run_app(app, n, arena_size=ARENA, sanitize=True)
    assert got.sanitizer.violations == []
    expected = ref_alltoallv(
        sendimgs, recvimgs, sendcounts, sdispls, recvcounts, rdispls
    )
    for r in range(n):
        assert np.array_equal(got.results[r], expected[r]), f"rank {r}"


@SETTINGS
@given(data=st.data())
def test_allgatherv_matches_reference(data):
    n = data.draw(sizes, label="nranks")
    block = [data.draw(counts) for _ in range(n)]
    displs, bufsize = pack_layout(data.draw, block)

    sendimgs = [np.arange(r * 10, r * 10 + max(block[r], 1), dtype=np.int32) for r in range(n)]
    recvimgs = [sentinel(bufsize) for _ in range(n)]

    def app(ctx):
        r = ctx.rank
        sbuf = ctx.alloc(len(sendimgs[r]), ctx.INT)
        rbuf = ctx.alloc(bufsize, ctx.INT)
        sbuf.view[:] = sendimgs[r]
        rbuf.view[:] = recvimgs[r]
        yield from ctx.Allgatherv(
            sbuf.addr, block[r], rbuf.addr, block, displs, ctx.INT, ctx.WORLD
        )
        return np.array(rbuf.view)

    got = run_app(app, n, arena_size=ARENA, sanitize=True)
    assert got.sanitizer.violations == []
    expected = ref_allgatherv(sendimgs, recvimgs, block, displs)
    for r in range(n):
        assert np.array_equal(got.results[r], expected[r]), f"rank {r}"


@SETTINGS
@given(data=st.data())
def test_scatterv_matches_reference(data):
    n = data.draw(sizes, label="nranks")
    root = data.draw(st.integers(min_value=0, max_value=n - 1))
    block = [data.draw(counts) for _ in range(n)]
    displs, bufsize = pack_layout(data.draw, block)

    rootsend = np.arange(1000, 1000 + bufsize, dtype=np.int32)
    recvimgs = [sentinel(max(block[r], 1)) for r in range(n)]

    def app(ctx):
        r = ctx.rank
        sbuf = ctx.alloc(bufsize, ctx.INT)
        rbuf = ctx.alloc(len(recvimgs[r]), ctx.INT)
        sbuf.view[:] = rootsend
        rbuf.view[:] = recvimgs[r]
        yield from ctx.Scatterv(
            sbuf.addr, block, displs, rbuf.addr, block[r], ctx.INT, root, ctx.WORLD
        )
        return np.array(rbuf.view)

    got = run_app(app, n, arena_size=ARENA, sanitize=True)
    assert got.sanitizer.violations == []
    expected = ref_scatterv(rootsend, recvimgs, block, displs, root)
    for r in range(n):
        assert np.array_equal(got.results[r], expected[r]), f"rank {r}"


@SETTINGS
@given(data=st.data())
def test_alltoallw_mixed_types_matches_reference(data):
    """Byte-displacement semantics with per-pair datatypes: the type of
    the (src, dst) transfer is drawn per pair, sizes on both sides agree
    by construction, counts include zero, and single-rank communicators
    exercise the pure self-copy path."""
    n = data.draw(sizes, label="nranks")
    cnt = [[data.draw(counts) for _ in range(n)] for _ in range(n)]
    # t[src][dst]: element size of the pair's datatype (INT=4, DOUBLE=8).
    esize = [[data.draw(st.sampled_from([4, 8])) for _ in range(n)] for _ in range(n)]

    sbytes_per_peer = [[cnt[s][d] * esize[s][d] for d in range(n)] for s in range(n)]
    rbytes_per_peer = [[cnt[s][d] * esize[s][d] for s in range(n)] for d in range(n)]
    sdispls, ssizes = zip(*(pack_layout(data.draw, sbytes_per_peer[r]) for r in range(n)))
    rdispls, rsizes = zip(*(pack_layout(data.draw, rbytes_per_peer[r]) for r in range(n)))

    sendbytes = [
        (np.arange(ssizes[r], dtype=np.int64) * 7 + r * 31).astype(np.uint8)
        for r in range(n)
    ]
    recvbytes = [np.full(rsizes[r], 255, dtype=np.uint8) for r in range(n)]

    def app(ctx):
        r = ctx.rank
        handle = {4: ctx.INT, 8: ctx.DOUBLE}
        sbuf = ctx.alloc(len(sendbytes[r]), ctx.BYTE)
        rbuf = ctx.alloc(len(recvbytes[r]), ctx.BYTE)
        sbuf.view[:] = sendbytes[r]
        rbuf.view[:] = recvbytes[r]
        stypes = [handle[esize[r][d]] for d in range(n)]
        rtypes = [handle[esize[s][r]] for s in range(n)]
        yield from ctx.Alltoallw(
            sbuf.addr, cnt[r], list(sdispls[r]), stypes,
            rbuf.addr, [cnt[s][r] for s in range(n)], list(rdispls[r]), rtypes,
            ctx.WORLD,
        )
        return np.array(rbuf.view)

    got = run_app(app, n, arena_size=ARENA, sanitize=True)
    assert got.sanitizer.violations == []
    expected = ref_alltoallw(
        sendbytes, recvbytes,
        sendcounts=cnt, sdispls=sdispls, sendsizes=esize,
        recvcounts=[[cnt[s][d] for s in range(n)] for d in range(n)],
        rdispls=rdispls,
        recvsizes=[[esize[s][d] for s in range(n)] for d in range(n)],
    )
    for r in range(n):
        assert np.array_equal(got.results[r], expected[r]), f"rank {r}"
