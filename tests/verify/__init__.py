"""Tests for the repro.verify subsystem: reference semantics, differential
conformance, sanitizers, deterministic replay, mutant self-tests, and the
campaign-level regression pins that ride along."""
