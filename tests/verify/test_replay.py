"""Deterministic replay: record a run's scheduling decisions, replay it,
and prove the logs and results are bit-identical — then prove the diff
machinery actually notices a divergence.
"""

import numpy as np
import pytest

from repro.verify import ReplayLog, record_run, replay_run
from repro.verify.replay import fingerprint


def ring_app(ctx):
    """Mixed pt2pt + collective traffic so the log has every entry kind."""
    buf = ctx.alloc(4, ctx.DOUBLE)
    buf.view[:] = [ctx.rank + 0.5] * 4
    peer = (ctx.rank + 1) % ctx.size
    src = (ctx.rank - 1) % ctx.size
    req = ctx.Irecv(buf.addr, 4, ctx.DOUBLE, src, 1, ctx.WORLD)
    out = ctx.alloc(4, ctx.DOUBLE)
    out.view[:] = buf.view
    yield from ctx.Send(out.addr, 4, ctx.DOUBLE, peer, 1, ctx.WORLD)
    yield from ctx.Wait(req)
    yield from ctx.Allreduce(buf.addr, out.addr, 4, ctx.DOUBLE, ctx.SUM, ctx.WORLD)
    return np.array(out.view)


class TestRecordReplay:
    def test_replay_is_bit_identical(self):
        result, log = record_run(ring_app, 4)
        assert log.entries and log.steps == result.steps
        report = replay_run(ring_app, 4, log)
        assert report.identical, report.detail
        assert report.first_divergence is None
        assert "bit-identical" in report.detail

    def test_log_contains_every_decision_kind(self):
        def blocker(ctx):
            """Rank 0 receives before rank 1 has sent, so the log shows a
            block ('B') resolved by a send-side match ('M'); the reply
            travels the other way and is found already queued ('R')."""
            buf = ctx.alloc(1, ctx.INT)
            if ctx.rank == 0:
                yield from ctx.Recv(buf.addr, 1, ctx.INT, 1, 0, ctx.WORLD)
                yield from ctx.Send(buf.addr, 1, ctx.INT, 1, 1, ctx.WORLD)
            else:
                buf.view[0] = 42
                yield from ctx.Send(buf.addr, 1, ctx.INT, 0, 0, ctx.WORLD)
                yield from ctx.Recv(buf.addr, 1, ctx.INT, 0, 1, ctx.WORLD)
            return int(buf.view[0])

        _, log = record_run(blocker, 2)
        tags = {entry[0] for entry in log.entries}
        assert {"B", "M", "R", "S", "D"} <= tags
        assert replay_run(blocker, 2, log).identical

    def test_json_roundtrip(self):
        _, log = record_run(ring_app, 3)
        restored = ReplayLog.from_json(log.to_json())
        assert restored == log
        assert replay_run(ring_app, 3, restored).identical


class TestDivergenceDetection:
    def test_tampered_entry_pinpointed(self):
        _, log = record_run(ring_app, 4)
        bad = ReplayLog(
            nranks=log.nranks,
            entries=list(log.entries),
            steps=log.steps,
            results_fingerprint=log.results_fingerprint,
        )
        bad.entries[5] = ("M", 999, 0, 0, 0, 0, 0)
        report = replay_run(ring_app, 4, bad)
        assert not report.identical
        assert report.first_divergence == 5
        assert "decision 5" in report.detail

    def test_different_app_diverges(self):
        def other(ctx):
            buf = ctx.alloc(4, ctx.DOUBLE)
            buf.view[:] = [float(ctx.rank)] * 4
            yield from ctx.Allreduce(buf.addr, buf.addr, 4, ctx.DOUBLE, ctx.MAX, ctx.WORLD)
            return np.array(buf.view)

        _, log = record_run(ring_app, 4)
        report = replay_run(other, 4, log)
        assert not report.identical
        assert report.first_divergence is not None

    def test_truncated_log_diverges_at_end(self):
        _, log = record_run(ring_app, 2)
        short = ReplayLog(log.nranks, log.entries[:-2], log.steps, log.results_fingerprint)
        report = replay_run(ring_app, 2, short)
        assert not report.entries_match
        assert report.first_divergence == len(short.entries)


class TestFingerprint:
    def test_equal_structures_hash_equal(self):
        a = {"x": [1, 2.5, np.arange(4)], "y": (True, None)}
        b = {"x": [1, 2.5, np.arange(4)], "y": (True, None)}
        assert fingerprint(a) == fingerprint(b)

    @pytest.mark.parametrize(
        "left,right",
        [
            ([1, 2], [2, 1]),
            (1, 1.0),
            (np.zeros(3, dtype=np.float32), np.zeros(3, dtype=np.float64)),
            (np.zeros((2, 3)), np.zeros((3, 2))),
            ("1", 1),
            (0.0, -0.0),  # IEEE bits differ, and so must the hash
        ],
    )
    def test_distinguishes(self, left, right):
        assert fingerprint(left) != fingerprint(right)
