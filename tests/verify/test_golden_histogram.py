"""Golden campaign regression: a small fixed-seed LU campaign at 8 ranks
must reproduce its pinned per-outcome histogram bit-for-bit.

Any change to fault-target selection, RNG derivation, collective
scheduling, outcome classification, or the LU kernel itself shows up
here as a histogram delta.  If a change is *intentional*, re-derive the
constants with the recipe below and update the pins in the same commit:

    app = LUKernel(8, rows_per_rank=4, ncols=32, iterations=4, omega=1.2, seed=99)
    profile = profile_application(app)
    points = enumerate_points(profile)[::9][:8]
    result = Campaign(app, profile, tests_per_point=10,
                      param_policy="all", seed=2026).run(points)
"""

import pytest

from repro.apps.npb.lu_kernel import LUKernel
from repro.injection import Campaign, enumerate_points
from repro.injection.outcome import Outcome
from repro.profiling import profile_application

POINT_STRIDE = 9
N_POINTS = 8
TESTS_PER_POINT = 10
CAMPAIGN_SEED = 2026

GOLDEN_HISTOGRAM = {
    Outcome.SUCCESS: 26,
    Outcome.APP_DETECTED: 0,
    Outcome.MPI_ERR: 12,
    Outcome.SEG_FAULT: 35,
    Outcome.WRONG_ANS: 7,
    Outcome.INF_LOOP: 0,
}
GOLDEN_ERROR_RATES = [0.6, 0.7, 0.8, 0.8, 0.5, 0.8, 0.4, 0.8]


@pytest.fixture(scope="module")
def golden_campaign():
    app = LUKernel(8, rows_per_rank=4, ncols=32, iterations=4, omega=1.2, seed=99)
    profile = profile_application(app)
    points = enumerate_points(profile)[::POINT_STRIDE][:N_POINTS]
    assert len(points) == N_POINTS
    campaign = Campaign(
        app, profile, tests_per_point=TESTS_PER_POINT,
        param_policy="all", seed=CAMPAIGN_SEED,
    )
    return campaign.run(points)


class TestGoldenHistogram:
    def test_outcome_histogram_is_pinned(self, golden_campaign):
        got = golden_campaign.outcome_histogram()
        assert got == GOLDEN_HISTOGRAM, (
            f"histogram drifted: {({o.name: c for o, c in got.items()})}"
        )

    def test_no_tool_errors(self, golden_campaign):
        assert golden_campaign.tool_error_count() == 0

    def test_per_point_error_rates_pinned(self, golden_campaign):
        got = [round(r, 6) for r in golden_campaign.error_rates()]
        assert got == GOLDEN_ERROR_RATES

    def test_total_test_volume(self, golden_campaign):
        total = sum(pr.n_tests for pr in golden_campaign.points.values())
        assert total == N_POINTS * TESTS_PER_POINT
        assert sum(GOLDEN_HISTOGRAM.values()) == total
