"""The full differential conformance sweep: every collective algorithm
variant, fuzzed against the pure-numpy reference model.

This is the acceptance-criteria run — 200 RNG-driven draws per
collective, all 16 collectives, sanitizers armed — so it is module-
scoped and shared by the assertions below.
"""

import pytest

from repro.verify import FUZZED_COLLECTIVES, run_conformance

DRAWS = 200
SEED = 2026


@pytest.fixture(scope="module")
def full_sweep():
    return run_conformance(seed=SEED, draws_per_collective=DRAWS)


class TestFullSweep:
    def test_every_driver_matches_the_reference(self, full_sweep):
        assert full_sweep.ok, full_sweep.describe()

    def test_covers_all_sixteen_collectives(self, full_sweep):
        assert len(FUZZED_COLLECTIVES) == 16
        assert set(full_sweep.reports) == set(FUZZED_COLLECTIVES)

    def test_draw_volume_meets_floor(self, full_sweep):
        for name, rep in full_sweep.reports.items():
            assert rep.cases >= DRAWS, f"{name}: only {rep.cases} cases"
        # Bcast fuzzes both algorithm variants per draw.
        assert full_sweep.reports["Bcast"].cases == 2 * DRAWS
        # Allreduce fuzzes reduce_bcast always, recursive_doubling when
        # the drawn size is a power of two.
        assert full_sweep.reports["Allreduce"].cases > DRAWS

    def test_checks_count_individual_buffer_comparisons(self, full_sweep):
        assert full_sweep.total_checks > full_sweep.total_cases
        d = full_sweep.to_dict()
        assert d["ok"] is True
        assert d["total_cases"] == full_sweep.total_cases
        assert set(d["collectives"]) == set(FUZZED_COLLECTIVES)


class TestHarness:
    def test_unknown_collective_rejected(self):
        with pytest.raises(ValueError, match="unknown collective"):
            run_conformance(draws_per_collective=1, collectives=["Allreduce", "Bogus"])

    def test_same_seed_reproduces_case_for_case(self):
        a = run_conformance(seed=7, draws_per_collective=5, collectives=["Alltoallv"])
        b = run_conformance(seed=7, draws_per_collective=5, collectives=["Alltoallv"])
        assert a.to_dict() == b.to_dict()

    def test_subset_runs_only_requested(self):
        rep = run_conformance(seed=1, draws_per_collective=3, collectives=["Scan"])
        assert list(rep.reports) == ["Scan"]
        assert rep.ok

    def test_progress_callback_sees_each_collective(self):
        seen = []
        run_conformance(
            seed=1,
            draws_per_collective=2,
            collectives=["Bcast", "Barrier"],
            progress=lambda name, rep: seen.append((name, rep.cases)),
        )
        assert [name for name, _ in seen] == ["Bcast", "Barrier"]
        assert all(cases > 0 for _, cases in seen)
