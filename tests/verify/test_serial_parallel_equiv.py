"""Serial <-> parallel equivalence, stated through the replay
fingerprint: the full TestResult stream of a campaign is a pure function
of (app, points, config), whatever the worker count — and a campaign
interrupted mid-flight resumes to the same stream.
"""

import pytest

from repro.injection import Campaign, enumerate_points
from repro.verify.replay import fingerprint

TESTS_PER_POINT = 6
SEED = 17


def stream_signature(result):
    """Canonical content hash of the full TestResult stream."""
    sig = []
    for point, pr in sorted(result.points.items()):
        sig.append(
            (
                repr(point),
                [
                    (
                        repr(t.spec.point),
                        t.spec.param,
                        t.spec.bit,
                        t.outcome.name,
                        None if t.record is None else (t.record.bit, t.record.skipped),
                        t.detail,
                    )
                    for t in pr.tests
                ],
                pr.error_rate,
            )
        )
    return fingerprint(sig)


@pytest.fixture(scope="module")
def points(lu_profile):
    return enumerate_points(lu_profile)[:5]


@pytest.fixture(scope="module")
def serial_signature(lu_app, lu_profile, points):
    result = Campaign(
        lu_app, lu_profile, tests_per_point=TESTS_PER_POINT,
        param_policy="all", seed=SEED,
    ).run(points)
    return stream_signature(result)


@pytest.mark.parametrize("jobs", [1, 2, 4])
def test_jobs_sweep_bit_identical(lu_app, lu_profile, points, serial_signature, jobs):
    result = Campaign(
        lu_app, lu_profile, tests_per_point=TESTS_PER_POINT,
        param_policy="all", seed=SEED, jobs=jobs,
    ).run(points)
    assert stream_signature(result) == serial_signature


def test_resume_mid_campaign_bit_identical(
    tmp_path, lu_app, lu_profile, points, serial_signature
):
    """Crash the campaign halfway via the progress callback, then resume
    from the checkpoint: the merged stream must equal the uninterrupted
    run's, byte for byte."""
    ckdir = tmp_path / "ck"

    class Killed(RuntimeError):
        pass

    def killer(done, total):
        if done >= total // 2:
            raise Killed(f"{done}/{total}")

    with pytest.raises(Killed):
        Campaign(
            lu_app, lu_profile, tests_per_point=TESTS_PER_POINT,
            param_policy="all", seed=SEED,
            checkpoint_dir=ckdir, progress=killer,
        ).run(points)

    resumed = Campaign(
        lu_app, lu_profile, tests_per_point=TESTS_PER_POINT,
        param_policy="all", seed=SEED,
        checkpoint_dir=ckdir, resume=True,
    ).run(points)
    assert stream_signature(resumed) == serial_signature
