"""Hand-computed unit checks of the pure-numpy reference model.

The conformance harness trusts these functions as its oracle, so each
one gets at least one case small enough to verify by eye.
"""

import numpy as np
import pytest

from repro.simmpi.ops import ReduceOp
from repro.verify.reference import (
    fold,
    ref_allgather,
    ref_allgatherv,
    ref_allreduce,
    ref_alltoall,
    ref_alltoallv,
    ref_alltoallw,
    ref_bcast,
    ref_exscan,
    ref_gather,
    ref_gatherv,
    ref_reduce,
    ref_reduce_scatter_block,
    ref_scan,
    ref_scatter,
    ref_scatterv,
)

TAKELEFT = ReduceOp("FF_TAKELEFT", lambda a, b: a, commutative=False)
TAKERIGHT = ReduceOp("FF_TAKERIGHT", lambda a, b: b, commutative=False)
SUM = ReduceOp("SUM", np.add)

I4 = np.dtype("<i4")


def arr(*vals, dtype=I4):
    return np.array(vals, dtype=dtype)


class TestFold:
    def test_canonical_order_with_noncommutative_ops(self):
        """A left fold of [r0, r1, r2] keeps r0 under TAKELEFT and ends
        at r2 under TAKERIGHT — any other fold order breaks one of them."""
        operands = [arr(10), arr(20), arr(30)]
        assert fold(TAKELEFT, operands, I4)[0] == 10
        assert fold(TAKERIGHT, operands, I4)[0] == 30

    def test_dtype_reapplied_every_combine(self):
        """int8 SUM must wrap at every step, exactly as ReduceOp.apply
        does on the wire — not accumulate in a wider type."""
        i1 = np.dtype("<i1")
        operands = [arr(120, dtype=i1), arr(120, dtype=i1), arr(120, dtype=i1)]
        # 120 + 120 wraps to -16; -16 + 120 = 104.
        assert fold(SUM, operands, i1)[0] == np.int8(104)

    def test_zero_operands_rejected(self):
        with pytest.raises(ValueError):
            fold(SUM, [], I4)


class TestDataMovement:
    def test_bcast_copies_root_everywhere(self):
        bufs = [arr(1, 2), arr(3, 4), arr(5, 6)]
        out = ref_bcast(bufs, root=1)
        assert all(np.array_equal(o, arr(3, 4)) for o in out)
        # Inputs must not be aliased into the output.
        out[0][0] = 99
        assert bufs[1][0] == 3

    def test_scatter_gather_roundtrip(self):
        rootsend = arr(0, 1, 2, 3, 4, 5)
        sentinels = [arr(-1, -1, -1) for _ in range(3)]
        scattered = ref_scatter(rootsend, sentinels, count=2, root=0)
        assert [list(s[:2]) for s in scattered] == [[0, 1], [2, 3], [4, 5]]
        # Elements beyond count keep the sentinel.
        assert all(s[2] == -1 for s in scattered)
        gathered = ref_gather(scattered, [arr(*[-1] * 6) for _ in range(3)], 2, root=2)
        assert list(gathered[2]) == [0, 1, 2, 3, 4, 5]
        # Non-root receive buffers are untouched.
        assert list(gathered[0]) == [-1] * 6

    def test_alltoall_is_block_transpose(self):
        sends = [arr(0, 1, 2), arr(10, 11, 12), arr(20, 21, 22)]  # count=1, one block per dst
        recvs = [arr(-1, -1, -1) for _ in range(3)]
        out = ref_alltoall(sends, recvs, count=1)
        for dst in range(3):
            assert list(out[dst]) == [sends[src][dst] for src in range(3)]

    def test_allgather_concatenates_on_every_rank(self):
        sends = [arr(7), arr(8)]
        out = ref_allgather(sends, [arr(-1, -1) for _ in range(2)], count=1)
        assert all(list(o) == [7, 8] for o in out)


class TestVVariants:
    def test_gatherv_lands_at_displacements(self):
        sends = [arr(1, 2), arr(3), arr()]
        recvs = [arr(*[-1] * 8) for _ in range(3)]
        out = ref_gatherv(sends, recvs, counts=[2, 1, 0], displs=[5, 0, 3], root=1)
        assert list(out[1]) == [3, -1, -1, -1, -1, 1, 2, -1]
        assert list(out[0]) == [-1] * 8

    def test_scatterv_zero_count_rank_untouched(self):
        rootsend = arr(*range(10))
        recvs = [arr(-1, -1, -1) for _ in range(3)]
        out = ref_scatterv(rootsend, recvs, counts=[2, 0, 3], displs=[4, 0, 7], root=0)
        assert list(out[0][:2]) == [4, 5]
        assert list(out[1]) == [-1, -1, -1]
        assert list(out[2]) == [7, 8, 9]

    def test_allgatherv_preserves_gaps(self):
        """Displacement gaps between blocks must keep their sentinel —
        that is how stray writes are caught."""
        sends = [arr(1), arr(2)]
        recvs = [arr(-1, -1, -1, -1) for _ in range(2)]
        out = ref_allgatherv(sends, recvs, counts=[1, 1], displs=[0, 3])
        assert all(list(o) == [1, -1, -1, 2] for o in out)

    def test_alltoallv_routes_src_dst_pairs(self):
        sends = [arr(*range(0, 6)), arr(*range(10, 16))]
        recvs = [arr(*[-1] * 6) for _ in range(2)]
        out = ref_alltoallv(
            sends,
            recvs,
            sendcounts=[[1, 2], [0, 3]],
            sdispls=[[0, 2], [0, 1]],
            recvcounts=[[1, 0], [2, 3]],
            rdispls=[[5, 0], [0, 2]],
        )
        # dst 0: 1 elem from src0 sdispl 0 -> rdispl 5; 0 elems from src1.
        assert list(out[0]) == [-1, -1, -1, -1, -1, 0]
        # dst 1: 2 elems from src0 @ sdispl 2 -> rdispl 0; 3 from src1 @ 1 -> 2.
        assert list(out[1]) == [2, 3, 11, 12, 13, -1]

    def test_alltoallw_works_in_bytes_and_checks_volume(self):
        sends = [np.arange(8, dtype=np.uint8), np.arange(100, 108, dtype=np.uint8)]
        recvs = [np.full(8, 255, dtype=np.uint8) for _ in range(2)]
        out = ref_alltoallw(
            sends,
            recvs,
            sendcounts=[[1, 1], [1, 1]],
            sdispls=[[0, 4], [0, 4]],
            sendsizes=[[4, 4], [4, 4]],
            recvcounts=[[1, 1], [1, 1]],
            rdispls=[[0, 4], [0, 4]],
            recvsizes=[[4, 4], [4, 4]],
        )
        assert list(out[0]) == [0, 1, 2, 3, 100, 101, 102, 103]
        assert list(out[1]) == [4, 5, 6, 7, 104, 105, 106, 107]
        with pytest.raises(AssertionError):
            ref_alltoallw(
                sends, recvs,
                sendcounts=[[1, 1], [1, 1]], sdispls=[[0, 4], [0, 4]],
                sendsizes=[[4, 4], [4, 4]],
                recvcounts=[[2, 1], [1, 1]], rdispls=[[0, 4], [0, 4]],
                recvsizes=[[4, 4], [4, 4]],
            )


class TestReductions:
    def test_reduce_writes_only_root(self):
        sends = [arr(1, 10), arr(2, 20), arr(3, 30)]
        recvs = [arr(-1, -1) for _ in range(3)]
        out = ref_reduce(sends, recvs, SUM, I4, root=2)
        assert list(out[2]) == [6, 60]
        assert list(out[0]) == [-1, -1] and list(out[1]) == [-1, -1]

    def test_allreduce_noncommutative_keeps_rank_order(self):
        sends = [arr(5), arr(6), arr(7), arr(8)]
        recvs = [arr(-1) for _ in range(4)]
        assert [o[0] for o in ref_allreduce(sends, recvs, TAKELEFT, I4)] == [5] * 4
        assert [o[0] for o in ref_allreduce(sends, recvs, TAKERIGHT, I4)] == [8] * 4

    def test_reduce_scatter_block_keeps_own_block(self):
        sends = [arr(1, 2, 3, 4), arr(10, 20, 30, 40)]
        recvs = [arr(-1, -1, -1) for _ in range(2)]
        out = ref_reduce_scatter_block(sends, recvs, SUM, I4, recvcount=2)
        assert list(out[0][:2]) == [11, 22] and out[0][2] == -1
        assert list(out[1][:2]) == [33, 44]

    def test_scan_inclusive_prefixes(self):
        sends = [arr(1), arr(2), arr(3)]
        out = ref_scan(sends, [arr(-1) for _ in range(3)], SUM, I4)
        assert [o[0] for o in out] == [1, 3, 6]
        out = ref_scan(sends, [arr(-1) for _ in range(3)], TAKERIGHT, I4)
        assert [o[0] for o in out] == [1, 2, 3]

    def test_exscan_rank0_untouched(self):
        sends = [arr(1), arr(2), arr(3)]
        out = ref_exscan(sends, [arr(-7) for _ in range(3)], SUM, I4)
        assert out[0][0] == -7  # MPI leaves rank 0's recvbuf undefined; we pin "unwritten"
        assert [out[1][0], out[2][0]] == [1, 3]
