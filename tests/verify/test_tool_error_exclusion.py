"""Mutant-style pin: ``TOOL_ERROR`` is a harness verdict, not one of the
paper's six application responses, and must stay excluded from every
paper-facing surface — OUTCOME_ORDER, histograms, error rates (numerator
AND denominator), majority outcomes, and ML training labels.

Each assertion here is chosen so that re-including TOOL_ERROR anywhere
flips it.
"""

import numpy as np
import pytest

from repro.injection.campaign import CampaignResult, PointResult
from repro.injection.outcome import OUTCOME_ORDER, Outcome
from repro.injection.runner import TestResult as InjectionTestResult
from repro.injection.space import FaultSpec, InjectionPoint

POINT = InjectionPoint(rank=0, collective="Allreduce", site="app.py:1", invocation=0)


def make_point_result(*outcomes):
    pr = PointResult(POINT)
    for outcome in outcomes:
        pr.add(InjectionTestResult(FaultSpec(POINT, "count", 0), outcome, None))
    return pr


class TestTaxonomy:
    def test_outcome_order_is_the_six_table_i_responses(self):
        assert Outcome.TOOL_ERROR not in OUTCOME_ORDER
        assert len(OUTCOME_ORDER) == 6
        assert OUTCOME_ORDER[0] is Outcome.SUCCESS

    def test_tool_error_is_neither_response_nor_error(self):
        assert not Outcome.TOOL_ERROR.is_application_response
        assert not Outcome.TOOL_ERROR.is_error
        assert Outcome.SEG_FAULT.is_error and Outcome.SEG_FAULT.is_application_response

    def test_tool_error_has_no_label_index(self):
        with pytest.raises(ValueError):
            OUTCOME_ORDER.index(Outcome.TOOL_ERROR)


class TestErrorRate:
    def test_excluded_from_numerator_and_denominator(self):
        pr = make_point_result(
            Outcome.SUCCESS, Outcome.SUCCESS, Outcome.MPI_ERR, Outcome.TOOL_ERROR
        )
        assert pr.error_rate == pytest.approx(1 / 3)  # not 1/4, not 2/4

    def test_denominator_shrinks_with_tool_errors(self):
        pr = make_point_result(
            Outcome.TOOL_ERROR, Outcome.TOOL_ERROR, Outcome.TOOL_ERROR, Outcome.SEG_FAULT
        )
        assert pr.error_rate == 1.0  # the one real response was an error

    def test_all_tool_errors_is_not_an_error_rate(self):
        pr = make_point_result(Outcome.TOOL_ERROR, Outcome.TOOL_ERROR)
        assert pr.error_rate == 0.0
        assert pr.n_tool_errors == 2


class TestMajorityOutcome:
    def test_tool_error_plurality_never_wins(self):
        pr = make_point_result(
            Outcome.TOOL_ERROR, Outcome.TOOL_ERROR, Outcome.TOOL_ERROR, Outcome.WRONG_ANS
        )
        assert pr.majority_outcome() is Outcome.WRONG_ANS

    def test_degenerate_point_reports_success_by_absence(self):
        pr = make_point_result(Outcome.TOOL_ERROR)
        assert pr.majority_outcome() is Outcome.SUCCESS


class TestCampaignSurfaces:
    @pytest.fixture()
    def result(self):
        result = CampaignResult("app", 4, "all")
        result.points[POINT] = make_point_result(
            Outcome.SUCCESS, Outcome.SEG_FAULT, Outcome.TOOL_ERROR, Outcome.TOOL_ERROR
        )
        return result

    def test_histogram_keys_are_exactly_outcome_order(self, result):
        hist = result.outcome_histogram()
        assert set(hist) == set(OUTCOME_ORDER)
        assert sum(hist.values()) == 2  # the two TOOL_ERROR tests vanished
        assert result.tool_error_count() == 2

    def test_by_param_excludes_tool_error(self, result):
        for histogram in result.by_param().values():
            assert Outcome.TOOL_ERROR not in histogram

    def test_ml_labels_cover_outcome_order_only(self, result):
        from repro.ml.dataset import outcome_labels

        points, y = outcome_labels(result)
        assert points == [POINT]
        assert y.dtype == np.int64
        assert all(0 <= label < len(OUTCOME_ORDER) for label in y)
        # This point's majority is SEG_FAULT (SUCCESS ties break first,
        # but 1 SUCCESS vs 1 SEG_FAULT ties at 1 -> Table I order wins).
        assert OUTCOME_ORDER[y[0]] in (Outcome.SUCCESS, Outcome.SEG_FAULT)
