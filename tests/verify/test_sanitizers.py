"""Sanitizer tripwires: each violation kind has a minimal reproducer,
and the clean suite (every registered app, golden) reports nothing.
"""

import pytest

from repro.simmpi import SegmentationFault, run_app
from repro.simmpi.memory import Memory
from repro.simmpi.sanitize import VIOLATION_KINDS, Sanitizer, SanitizerViolation
from repro.verify import sanitize_sweep


def kinds(result):
    assert result.sanitizer is not None
    return sorted({v.kind for v in result.sanitizer.violations})


def orphan_send_app(ctx):
    """Rank 0 eagerly sends a message nobody ever receives."""
    buf = ctx.alloc(2, ctx.INT)
    if ctx.rank == 0:
        buf.view[:] = [1, 2]
        yield from ctx.Send(buf.addr, 2, ctx.INT, 1, 77, ctx.WORLD)
    yield from ctx.Barrier(ctx.WORLD)
    return ctx.rank


class TestUnmatchedMessage:
    def test_orphan_send_flagged_at_teardown(self):
        result = run_app(orphan_send_app, 2, sanitize=True)
        assert kinds(result) == ["unmatched_message"]
        v = result.sanitizer.violations[0]
        assert v.rank == 0 and v.data["dst"] == 1 and v.data["tag"] == 77

    def test_clean_run_records_nothing(self):
        def app(ctx):
            buf = ctx.alloc(1, ctx.INT)
            buf.view[0] = ctx.rank
            yield from ctx.Allreduce(buf.addr, buf.addr, 1, ctx.INT, ctx.SUM, ctx.WORLD)
            return int(buf.view[0])

        result = run_app(app, 3, sanitize=True)
        assert result.sanitizer.violations == []
        assert result.results == [3, 3, 3]


class TestRequestLeak:
    def test_unwaited_irecv_flagged(self):
        def app(ctx):
            buf = ctx.alloc(1, ctx.INT)
            if ctx.rank == 1:
                ctx.Irecv(buf.addr, 1, ctx.INT, 0, 5, ctx.WORLD)  # never waited
            yield from ctx.Barrier(ctx.WORLD)
            return None

        result = run_app(app, 2, sanitize=True)
        assert kinds(result) == ["request_leak"]
        v = result.sanitizer.violations[0]
        assert v.rank == 1 and v.data["kind_"] == "recv"


class TestMemoryTripwires:
    def test_oob_access_recorded_before_segfault(self):
        """The tripwire fires even though the access raises, so the
        evidence survives the simulated crash."""
        san = Sanitizer()
        mem = Memory(rank=3, size=64, sanitizer=san)
        seg = mem.alloc(16)
        with pytest.raises(SegmentationFault):
            mem.read(seg.addr, 4096)
        assert [v.kind for v in san.violations] == ["oob_access"]
        assert san.violations[0].rank == 3

    def test_buffer_overlap_succeeds_but_records(self):
        """An in-arena write crossing into the neighbouring allocation
        keeps heap-smash semantics (it succeeds) and is recorded."""
        san = Sanitizer()
        mem = Memory(rank=0, size=256, sanitizer=san)
        a = mem.alloc(8, "a")
        b = mem.alloc(8, "b")
        mem.write(a.addr, bytes(range(24)))  # 8 own + smash into b
        assert [v.kind for v in san.violations] == ["buffer_overlap"]
        assert mem.read(b.addr, 1) != b"\x00"  # the smash really landed


class TestSizeMismatch:
    def test_short_recv_and_indivisible_payload(self):
        """Root broadcasts 3 INTs (12 bytes); a non-root posted 2
        DOUBLEs (16 bytes).  12 < 16 -> short_recv, and 12 % 8 != 0 ->
        size_indivisible: both tripwires fire on the receiver."""

        def app(ctx):
            if ctx.rank == 0:
                buf = ctx.alloc(3, ctx.INT)
                buf.view[:] = [1, 2, 3]
                yield from ctx.Bcast(buf.addr, 3, ctx.INT, 0, ctx.WORLD)
            else:
                buf = ctx.alloc(2, ctx.DOUBLE)
                yield from ctx.Bcast(buf.addr, 2, ctx.DOUBLE, 0, ctx.WORLD)
            return None

        result = run_app(app, 2, sanitize=True)
        assert kinds(result) == ["short_recv", "size_indivisible"]
        assert all(v.rank == 1 for v in result.sanitizer.violations)


class TestStrictMode:
    def test_strict_raises_at_first_finding(self):
        with pytest.raises(SanitizerViolation, match="unmatched_message"):
            run_app(orphan_send_app, 2, sanitize=Sanitizer(strict=True))

    def test_violation_is_not_an_application_response(self):
        """SanitizerViolation must not be classifiable as one of the
        paper's outcomes — it derives from AssertionError, not
        SimMPIError."""
        from repro.simmpi.errors import SimMPIError

        assert not issubclass(SanitizerViolation, SimMPIError)


class TestSweep:
    def test_every_registered_app_is_clean(self):
        """The false-positive contract: all golden workloads, sanitizers
        armed, zero findings."""
        results = sanitize_sweep()
        assert len(results) >= 6
        for entry in results:
            assert entry.ok, entry.describe()
            assert entry.steps > 0

    def test_by_kind_and_describe(self):
        san = Sanitizer()
        san.record("oob_access", 0, addr=1)
        san.record("oob_access", 1, addr=2)
        san.record("short_recv", 2, got=4, expected=8)
        assert san.by_kind() == {"oob_access": 2, "short_recv": 1}
        assert len(san) == 3
        assert "3 violation(s)" in san.describe()
        assert all(k in VIOLATION_KINDS for k in san.by_kind())
