"""The harness must be able to fail: each seeded mutant installs a
realistic defect that the conformance sweep is required to catch, and
removing the mutant must restore a clean pass.
"""

import importlib

import pytest

from repro.verify import MUTANTS, run_conformance, seeded_mutant

DRAWS = 15  # enough draws that every mutant's trigger conditions occur


@pytest.mark.parametrize("name", sorted(MUTANTS))
def test_mutant_is_caught_then_cured(name):
    mutant = MUTANTS[name]
    broken = run_conformance(
        seed=5, draws_per_collective=DRAWS, collectives=list(mutant.detected_by),
        mutant=name,
    )
    assert not broken.ok, f"{name} survived the sweep undetected"
    for coll in mutant.detected_by:
        rep = broken.reports[coll]
        assert rep.failures or rep.suppressed, f"{name} not caught by {coll}"
    # The context manager restored the originals: the same sweep is clean.
    cured = run_conformance(
        seed=5, draws_per_collective=DRAWS, collectives=list(mutant.detected_by)
    )
    assert cured.ok, cured.describe()


def test_patched_attributes_are_restored_exactly():
    for name, mutant in MUTANTS.items():
        originals = {
            (mod, attr): getattr(importlib.import_module(mod), attr)
            for mod, attr, _ in mutant.patches
        }
        with seeded_mutant(name):
            for (mod, attr), orig in originals.items():
                assert getattr(importlib.import_module(mod), attr) is not orig
        for (mod, attr), orig in originals.items():
            assert getattr(importlib.import_module(mod), attr) is orig


def test_restores_even_when_body_raises():
    mutant = MUTANTS["bcast_shifted_root"]
    mod, attr, _ = mutant.patches[0]
    original = getattr(importlib.import_module(mod), attr)
    with pytest.raises(RuntimeError):
        with seeded_mutant("bcast_shifted_root"):
            raise RuntimeError("boom")
    assert getattr(importlib.import_module(mod), attr) is original


def test_unknown_mutant_rejected():
    with pytest.raises(ValueError, match="unknown mutant"):
        with seeded_mutant("nonexistent"):
            pass  # pragma: no cover


def test_mutants_declare_detection_surface():
    from repro.verify import FUZZED_COLLECTIVES

    for mutant in MUTANTS.values():
        assert mutant.detected_by, mutant.name
        assert set(mutant.detected_by) <= set(FUZZED_COLLECTIVES)
