"""Self-test of the fault-model conformance layer: every witness
observes its expected Table-I response, and every seeded delivery-layer
mutant breaks exactly the witnesses that claim to detect it.

This is the Table-I precedence pin for the composable models: a rank
stalled past the deadline is ``INF_LOOP`` (not a crash), a crash
mid-collective is ``MPI_ERR``, an absorbed duplicate is ``SUCCESS``.
"""

import pytest

from repro.injection import wire
from repro.verify import (
    MODEL_MUTANTS,
    WITNESSES,
    model_conformance,
    run_witness,
    seeded_model_mutant,
)


@pytest.mark.parametrize("name", sorted(WITNESSES))
def test_witness_observes_expected_response(name):
    result = run_witness(WITNESSES[name], seed=0)
    assert result.ok, result.describe()


def test_precedence_pins():
    """The Table-I claims spelled out, independent of the sweep."""
    assert run_witness(WITNESSES["rank_stall"]).got == "INF_LOOP"
    assert run_witness(WITNESSES["rank_crash"]).got == "MPI_ERR"
    assert run_witness(WITNESSES["msg_dup"]).got == "SUCCESS"
    assert run_witness(WITNESSES["msg_drop"]).got == "INF_LOOP"


def test_clean_sweep_is_ok():
    report = model_conformance(seed=0)
    assert report.ok
    assert {r.witness for r in report.results} == set(WITNESSES)
    assert "all expected responses observed" in report.describe()


@pytest.mark.parametrize("name", sorted(MODEL_MUTANTS))
def test_mutant_is_detected(name):
    report = model_conformance(seed=0, mutant=name)
    failed = {r.witness for r in report.failures}
    assert set(MODEL_MUTANTS[name].detected_by) <= failed, (
        f"mutant {name} escaped: only {sorted(failed)} failed"
    )


def test_mutant_patches_are_restored():
    originals = {
        attr: getattr(wire, attr)
        for m in MODEL_MUTANTS.values()
        for _, attr, _ in m.patches
    }
    for name in MODEL_MUTANTS:
        with seeded_model_mutant(name):
            pass
    for attr, original in originals.items():
        assert getattr(wire, attr) is original


def test_unknown_mutant_rejected():
    with pytest.raises(ValueError, match="unknown model mutant"):
        with seeded_model_mutant("nope"):
            pass  # pragma: no cover
