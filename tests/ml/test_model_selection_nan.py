"""Regression: unseen classes must not leak NaN out of EvaluationResult.

When a label never appears in any test split, its mean recall is
undefined.  ``as_dict`` must omit the class entirely (instead of
emitting NaN into downstream aggregation), and computing the mean must
not raise a mean-of-empty RuntimeWarning under warnings-as-errors.
"""

import warnings

import numpy as np

from repro.ml.model_selection import evaluate_model


class MajorityModel:
    """Predicts the majority training label — enough to drive splits."""

    def fit(self, X, y):
        self.label = int(np.bincount(y).argmax())
        return self

    def predict(self, X):
        return np.full(len(X), self.label, dtype=np.int64)


def test_unseen_class_is_omitted_not_nan():
    # Three declared labels but class 2 never occurs in the data, so no
    # split can ever see it.
    X = np.random.default_rng(0).normal(size=(20, 3))
    y = np.array([0, 1] * 10, dtype=np.int64)
    names = ("low", "high", "never")
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        result = evaluate_model(lambda rep: MajorityModel(), X, y, names, seed=1)
    assert np.isnan(result.per_class[2])
    d = result.as_dict()
    assert "never" not in d
    assert set(d) <= {"low", "high"}
    for v in d.values():
        assert not np.isnan(v)
        assert 0.0 <= v <= 1.0


def test_all_classes_seen_keeps_every_entry():
    X = np.random.default_rng(0).normal(size=(24, 3))
    y = np.array([0, 1, 2] * 8, dtype=np.int64)
    names = ("a", "b", "c")
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        result = evaluate_model(lambda rep: MajorityModel(), X, y, names, seed=1)
    d = result.as_dict()
    assert set(d) == {"a", "b", "c"}


def test_degenerate_single_point_evaluation():
    # n = 1 yields no usable split at all: zero repeats, all-NaN
    # per_class, empty dict — and still no warnings.
    X = np.zeros((1, 2))
    y = np.zeros(1, dtype=np.int64)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        result = evaluate_model(lambda rep: MajorityModel(), X, y, ("only",))
    assert result.repeats == 0
    assert result.as_dict() == {}
