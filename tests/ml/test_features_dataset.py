"""Feature extraction and dataset assembly tests."""

import numpy as np
import pytest

from repro.analysis import QUARTILE_LEVELS
from repro.injection import enumerate_points
from repro.ml import (
    FEATURE_NAMES,
    build_level_dataset,
    build_outcome_dataset,
    features_matrix,
    merge_datasets,
    point_features,
    stack_is_errhal,
)
from repro.ml.features import encode_type, invocation_stack


class TestFeatures:
    def test_vector_shape_and_names(self, lammps_profile):
        point = enumerate_points(lammps_profile)[0]
        vec = point_features(lammps_profile, point)
        assert vec.shape == (len(FEATURE_NAMES),)

    def test_errhal_detected_by_convention(self, lammps_profile):
        points = enumerate_points(lammps_profile)
        feats = features_matrix(lammps_profile, points)
        errhal_col = feats[:, FEATURE_NAMES.index("ErrHal")]
        assert 0 < errhal_col.mean() < 1  # both kinds present

    def test_stack_is_errhal(self):
        assert stack_is_errhal(("main@a.py:1", "check_atoms@t.py:5"))
        assert not stack_is_errhal(("main@a.py:1", "thermo@t.py:5"))

    def test_phase_feature_varies(self, lammps_profile):
        feats = features_matrix(lammps_profile, enumerate_points(lammps_profile))
        phases = set(feats[:, FEATURE_NAMES.index("Phase")])
        assert len(phases) >= 3  # input, init, compute, end

    def test_type_encodes_root_role(self, lammps_profile):
        points = enumerate_points(lammps_profile)
        bcast_root = next(
            p for p in points if p.collective == "Bcast" and p.rank == 0
        )
        bcast_nonroot = next(
            p for p in points if p.collective == "Bcast" and p.rank == 1
        )
        assert encode_type(lammps_profile, bcast_root) == encode_type(
            lammps_profile, bcast_nonroot
        ) + 1

    def test_invocation_stack_missing_raises(self, lammps_profile):
        point = enumerate_points(lammps_profile)[0]
        summary = lammps_profile.summary(point.rank, point.site_key)
        with pytest.raises(KeyError):
            invocation_stack(summary, 10_000)

    def test_empty_matrix(self, lammps_profile):
        assert features_matrix(lammps_profile, []).shape == (0, len(FEATURE_NAMES))


class TestDatasets:
    def test_outcome_dataset(self, lu_profile, lu_small_campaign):
        ds = build_outcome_dataset(lu_profile, lu_small_campaign)
        assert len(ds) == len(lu_small_campaign.points)
        assert ds.X.shape == (len(ds), len(FEATURE_NAMES))
        assert all(0 <= label < 6 for label in ds.y)
        assert ds.label_names[0] == "SUCCESS"

    def test_level_dataset(self, lu_profile, lu_small_campaign):
        ds = build_level_dataset(lu_profile, lu_small_campaign, QUARTILE_LEVELS)
        assert all(0 <= label < 4 for label in ds.y)
        assert ds.label_names == ("low", "medium-low", "medium-high", "high")

    def test_subset(self, lu_profile, lu_small_campaign):
        ds = build_outcome_dataset(lu_profile, lu_small_campaign)
        sub = ds.subset(np.array([0, 1]))
        assert len(sub) == 2
        assert sub.points == ds.points[:2]

    def test_merge(self, lu_profile, lu_small_campaign):
        ds = build_outcome_dataset(lu_profile, lu_small_campaign)
        merged = merge_datasets([ds, ds])
        assert len(merged) == 2 * len(ds)

    def test_merge_incompatible_raises(self, lu_profile, lu_small_campaign):
        a = build_outcome_dataset(lu_profile, lu_small_campaign)
        b = build_level_dataset(lu_profile, lu_small_campaign, QUARTILE_LEVELS)
        with pytest.raises(ValueError):
            merge_datasets([a, b])

    def test_merge_empty_raises(self):
        with pytest.raises(ValueError):
            merge_datasets([])
