"""Random-forest tests."""

import numpy as np
import pytest

from repro.ml import RandomForestClassifier


@pytest.fixture(scope="module")
def blobs():
    rng = np.random.default_rng(11)
    centres = np.array([[0.0, 0.0], [4.0, 4.0], [0.0, 4.0]])
    X = np.vstack([c + rng.normal(0, 0.5, size=(40, 2)) for c in centres])
    y = np.repeat(np.arange(3), 40)
    return X, y


def test_forest_fits_separable_blobs(blobs):
    X, y = blobs
    rf = RandomForestClassifier(n_estimators=15, seed=0).fit(X, y)
    assert (rf.predict(X) == y).mean() > 0.95


def test_forest_deterministic_given_seed(blobs):
    X, y = blobs
    a = RandomForestClassifier(n_estimators=8, seed=5).fit(X, y).predict(X)
    b = RandomForestClassifier(n_estimators=8, seed=5).fit(X, y).predict(X)
    np.testing.assert_array_equal(a, b)


def test_different_seeds_differ_internally(blobs):
    X, y = blobs
    a = RandomForestClassifier(n_estimators=4, seed=1).fit(X, y)
    b = RandomForestClassifier(n_estimators=4, seed=2).fit(X, y)
    # Structures differ even if predictions often coincide.
    ra = a.trees[0].render(["f0", "f1"], ["a", "b", "c"])
    rb = b.trees[0].render(["f0", "f1"], ["a", "b", "c"])
    assert ra != rb


def test_predict_proba_shape_and_normalisation(blobs):
    X, y = blobs
    rf = RandomForestClassifier(n_estimators=10, seed=0).fit(X, y)
    proba = rf.predict_proba(X[:7])
    assert proba.shape == (7, 3)
    np.testing.assert_allclose(proba.sum(axis=1), 1.0, rtol=1e-9)


def test_majority_vote_matches_argmax_votes(blobs):
    X, y = blobs
    rf = RandomForestClassifier(n_estimators=9, seed=3).fit(X, y)
    preds = rf.predict(X[:20])
    assert set(preds) <= {0, 1, 2}


def test_feature_importances_average(blobs):
    X, y = blobs
    rf = RandomForestClassifier(n_estimators=6, seed=0).fit(X, y)
    imp = rf.feature_importances_
    assert imp.shape == (2,)
    assert imp.sum() == pytest.approx(1.0, abs=1e-6)


def test_single_class_degenerates_gracefully():
    X = np.random.default_rng(0).random((20, 3))
    y = np.zeros(20, dtype=int)
    rf = RandomForestClassifier(n_estimators=5, seed=0).fit(X, y)
    assert set(rf.predict(X)) == {0}


def test_unfitted_raises():
    with pytest.raises(RuntimeError):
        RandomForestClassifier().predict(np.zeros((1, 2)))
    with pytest.raises(RuntimeError):
        RandomForestClassifier().predict_proba(np.zeros((1, 2)))
