"""Metrics, model-selection protocol, and Eq. 1 correlation tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    RandomForestClassifier,
    TABLE4_FEATURES,
    accuracy,
    confusion_matrix,
    correlation_table,
    eq1_correlation,
    evaluate_model,
    per_class_accuracy,
    train_test_split,
)


class TestMetrics:
    def test_accuracy(self):
        assert accuracy([0, 1, 1], [0, 1, 0]) == pytest.approx(2 / 3)
        assert accuracy([], []) == 0.0

    def test_confusion_matrix(self):
        cm = confusion_matrix([0, 0, 1, 2], [0, 1, 1, 2], 3)
        assert cm[0, 0] == 1 and cm[0, 1] == 1 and cm[1, 1] == 1 and cm[2, 2] == 1

    def test_per_class_accuracy_with_missing_class(self):
        pca = per_class_accuracy([0, 0, 1], [0, 1, 1], 3)
        assert pca[0] == pytest.approx(0.5)
        assert pca[1] == pytest.approx(1.0)
        assert np.isnan(pca[2])


class TestSplit:
    def test_split_partitions(self):
        rng = np.random.default_rng(0)
        train, test = train_test_split(rng, 20, 0.5)
        assert len(train) + len(test) == 20
        assert set(train) & set(test) == set()

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(np.random.default_rng(0), 10, 1.5)

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(min_value=2, max_value=200), frac=st.floats(0.1, 0.9))
    def test_split_sizes(self, n, frac):
        train, test = train_test_split(np.random.default_rng(1), n, frac)
        assert len(test) == max(1, int(round(n * frac)))


class TestEvaluate:
    def test_repeated_evaluation_on_learnable_data(self):
        rng = np.random.default_rng(2)
        X = rng.random((120, 3))
        y = (X[:, 0] > 0.5).astype(int)
        result = evaluate_model(
            lambda rep: RandomForestClassifier(n_estimators=8, seed=rep),
            X,
            y,
            ("neg", "pos"),
            repeats=5,
        )
        assert result.repeats == 5
        assert result.overall_accuracy > 0.85
        assert result.as_dict()["pos"] > 0.8


class TestEq1:
    def test_perfect_positive_is_one(self):
        x = np.arange(10.0)
        assert eq1_correlation(x, 2 * x + 3) == pytest.approx(1.0)

    def test_perfect_negative_is_zero(self):
        x = np.arange(10.0)
        assert eq1_correlation(x, -x) == pytest.approx(0.0)

    def test_constant_is_neutral(self):
        assert eq1_correlation(np.ones(5), np.arange(5.0)) == 0.5

    def test_short_series_neutral(self):
        assert eq1_correlation(np.array([1.0]), np.array([2.0])) == 0.5

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_always_in_unit_interval(self, seed):
        rng = np.random.default_rng(seed)
        x, y = rng.random(20), rng.random(20)
        assert 0.0 <= eq1_correlation(x, y) <= 1.0

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        x, y = rng.random(15), rng.random(15)
        assert eq1_correlation(x, y) == pytest.approx(eq1_correlation(y, x))


class TestTable4:
    def test_correlation_table_structure(self, lu_profile, lu_small_campaign):
        table = correlation_table(lu_profile, lu_small_campaign)
        assert tuple(table) == TABLE4_FEATURES
        assert all(0.0 <= v <= 1.0 for v in table.values())

    def test_errhdl_and_non_errhdl_mirror(self, lammps_profile, lammps_buffer_campaign):
        """ErrHdl and Non-ErrHdl are complementary indicators, so their
        Eq. 1 correlations mirror around 0.5."""
        table = correlation_table(lammps_profile, lammps_buffer_campaign)
        assert table["ErrHdl"] + table["Non-ErrHdl"] == pytest.approx(1.0, abs=1e-9)
