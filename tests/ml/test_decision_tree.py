"""Decision-tree tests (unit + hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import DecisionTreeClassifier, gini


class TestGini:
    def test_pure_is_zero(self):
        assert gini(np.array([10.0, 0.0])) == 0.0

    def test_uniform_binary_is_half(self):
        assert gini(np.array([5.0, 5.0])) == pytest.approx(0.5)

    def test_empty_is_zero(self):
        assert gini(np.array([0.0, 0.0])) == 0.0


class TestDecisionTree:
    def test_learns_threshold_rule(self):
        X = np.array([[x] for x in range(20)], dtype=float)
        y = (X[:, 0] >= 10).astype(int)
        tree = DecisionTreeClassifier().fit(X, y)
        assert list(tree.predict(X)) == list(y)
        assert tree.root.feature == 0
        assert 9 <= tree.root.threshold <= 10

    def test_learns_xor_with_depth(self):
        X = np.array([[a, b] for a in (0, 1) for b in (0, 1)] * 5, dtype=float)
        y = np.array([int(a != b) for a, b in X.astype(int)])
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert (tree.predict(X) == y).all()

    def test_max_depth_zero_is_majority_class(self):
        X = np.random.default_rng(0).random((30, 3))
        y = np.array([0] * 20 + [1] * 10)
        tree = DecisionTreeClassifier(max_depth=0).fit(X, y)
        assert set(tree.predict(X)) == {0}

    def test_min_samples_leaf(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 0, 1])
        tree = DecisionTreeClassifier(min_samples_leaf=2).fit(X, y)
        # The lone positive cannot get its own leaf.
        def leaves(node):
            if node.is_leaf:
                return [node]
            return leaves(node.left) + leaves(node.right)

        assert all(leaf.n_samples >= 2 for leaf in leaves(tree.root))

    def test_predict_proba_rows_sum_to_one(self):
        rng = np.random.default_rng(3)
        X = rng.random((40, 4))
        y = rng.integers(0, 3, size=40)
        tree = DecisionTreeClassifier().fit(X, y)
        proba = tree.predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_feature_importances_focus_on_signal(self):
        rng = np.random.default_rng(5)
        X = rng.random((100, 3))
        y = (X[:, 1] > 0.5).astype(int)  # only feature 1 matters
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.feature_importances_[1] > 0.8

    def test_render_contains_features_and_classes(self):
        X = np.array([[x] for x in range(10)], dtype=float)
        y = (X[:, 0] >= 5).astype(int)
        tree = DecisionTreeClassifier().fit(X, y)
        text = tree.render(["nInv"], ["low", "high"])
        assert "nInv" in text and "low" in text and "high" in text

    def test_empty_fit_raises(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((0, 2)), np.zeros(0, dtype=int))

    def test_mismatched_shapes_raise(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((3, 2)), np.zeros(2, dtype=int))

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict(np.zeros((1, 2)))


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=60),
    d=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_tree_fits_training_data_when_unconstrained(n, d, seed):
    """With unlimited depth and distinct rows, training accuracy is 1."""
    rng = np.random.default_rng(seed)
    X = rng.random((n, d))
    y = rng.integers(0, 3, size=n)
    tree = DecisionTreeClassifier(max_depth=64).fit(X, y)
    # Rows are almost surely distinct in float space.
    assert (tree.predict(X) == y).mean() == pytest.approx(1.0)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_predictions_are_valid_classes(seed):
    rng = np.random.default_rng(seed)
    X = rng.random((30, 3))
    y = rng.integers(0, 4, size=30)
    tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
    preds = tree.predict(rng.random((10, 3)))
    assert set(preds) <= set(range(4))
