"""Determinism and invariants of the random-forest learner.

The adaptive driver retrains a forest every round and steers the whole
campaign off its ``predict_proba`` — a nondeterministic fit would break
the bit-identical-trajectory guarantee, so repeated fits are pinned to
exact equality here.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.random_forest import RandomForestClassifier

SETTINGS = dict(max_examples=15, deadline=None, derandomize=True)


def _dataset():
    # Balanced, cleanly separable on feature 0: every bootstrap sample
    # contains both classes with overwhelming probability, so every tree
    # splits and per-tree importances are well defined.
    rng = np.random.default_rng(0)
    X = rng.normal(size=(40, 6))
    y = (X[:, 0] > 0).astype(np.int64)
    return X, y


class TestBitIdenticalFits:
    def test_repeated_fit_identical_predictions(self):
        X, y = _dataset()
        a = RandomForestClassifier(n_estimators=16, seed=5).fit(X, y)
        b = RandomForestClassifier(n_estimators=16, seed=5).fit(X, y)
        probe = np.random.default_rng(1).normal(size=(25, 6))
        assert np.array_equal(a.predict_proba(probe), b.predict_proba(probe))
        assert np.array_equal(a.predict(probe), b.predict(probe))
        assert np.array_equal(a.feature_importances_, b.feature_importances_)

    def test_different_seeds_differ(self):
        X, y = _dataset()
        a = RandomForestClassifier(n_estimators=16, seed=5).fit(X, y)
        b = RandomForestClassifier(n_estimators=16, seed=6).fit(X, y)
        probe = np.random.default_rng(1).normal(size=(50, 6))
        assert not np.array_equal(a.predict_proba(probe), b.predict_proba(probe))

    @settings(**SETTINGS)
    @given(seed=st.integers(0, 2**31))
    def test_fit_is_pure_function_of_seed(self, seed):
        X, y = _dataset()
        a = RandomForestClassifier(n_estimators=8, seed=seed).fit(X, y)
        b = RandomForestClassifier(n_estimators=8, seed=seed).fit(X, y)
        assert np.array_equal(a.predict_proba(X), b.predict_proba(X))

    def test_fit_does_not_disturb_global_rng(self):
        # The forest must draw only from its own default_rng(seed) —
        # never from np.random's global state.
        X, y = _dataset()
        np.random.seed(1234)
        before = np.random.get_state()[1][:10].copy()
        RandomForestClassifier(n_estimators=8, seed=0).fit(X, y)
        assert np.array_equal(np.random.get_state()[1][:10], before)


class TestFeatureImportances:
    def test_importances_sum_to_one(self):
        X, y = _dataset()
        model = RandomForestClassifier(n_estimators=16, seed=3).fit(X, y)
        imp = model.feature_importances_
        assert imp.shape == (6,)
        assert np.all(imp >= 0)
        assert imp.sum() == pytest.approx(1.0)

    def test_informative_feature_dominates(self):
        X, y = _dataset()
        model = RandomForestClassifier(n_estimators=16, seed=3).fit(X, y)
        imp = model.feature_importances_
        assert np.argmax(imp) == 0
        assert imp[0] > 0.5


class TestProbaInvariants:
    def test_rows_sum_to_one(self):
        X, y = _dataset()
        model = RandomForestClassifier(n_estimators=16, seed=3).fit(X, y)
        proba = model.predict_proba(X)
        assert proba.shape == (40, 2)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_trees_missing_a_class_still_predict(self):
        # Regression: with a rare top class, some bootstrap samples miss
        # it entirely; those trees keep their narrower leaf histograms
        # while the forest aligns everyone to the full label set.  This
        # used to crash predict_proba with a broadcast error.
        rng = np.random.default_rng(2)
        X = rng.normal(size=(30, 4))
        y = np.zeros(30, dtype=np.int64)
        y[X[:, 0] > 0] = 1
        y[-1] = 2  # one single sample of the top class
        model = RandomForestClassifier(n_estimators=32, seed=0).fit(X, y)
        proba = model.predict_proba(X)
        assert proba.shape == (30, 3)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)
        pred = model.predict(X)
        assert set(np.unique(pred)) <= {0, 1, 2}
