"""MetricsRegistry.merge: the fold used by the parallel campaign engine."""

import pytest

from repro.obs.metrics import Histogram, MetricsRegistry, Timer


def test_counters_add():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("campaign.tests").inc(5)
    b.counter("campaign.tests").inc(3)
    b.counter("campaign.outcome.SUCCESS").inc(2)
    a.merge(b)
    assert a.counter("campaign.tests").value == 8
    # Metrics only present in the other registry are created on merge.
    assert a.counter("campaign.outcome.SUCCESS").value == 2
    # The source registry is untouched.
    assert b.counter("campaign.tests").value == 3


def test_gauges_last_write_wins():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.gauge("campaign.progress").set(0.25)
    b.gauge("campaign.progress").set(0.75)
    a.merge(b)
    assert a.gauge("campaign.progress").value == 0.75


def test_timers_fold_like_sequential_recording():
    a, b = MetricsRegistry(), MetricsRegistry()
    for d in (1.0, 3.0):
        a.timer("exec.unit_s").record(d)
    for d in (0.5, 2.0, 10.0):
        b.timer("exec.unit_s").record(d)

    sequential = Timer()
    for d in (1.0, 3.0, 0.5, 2.0, 10.0):
        sequential.record(d)

    a.merge(b)
    merged = a.timer("exec.unit_s")
    assert merged.to_dict() == sequential.to_dict()


def test_timer_unit_mismatch_rejected():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.timer("sim.run", unit="s").record(1.0)
    b.timer("sim.run", unit="steps").record(100)
    with pytest.raises(ValueError, match="steps"):
        a.merge(b)


def test_empty_timer_merge_keeps_min_sentinel():
    a = Timer()
    a.record(2.0)
    a.merge(Timer())
    assert (a.count, a.min, a.max) == (1, 2.0, 2.0)


def test_histograms_fold_aggregates_and_samples():
    a, b = MetricsRegistry(), MetricsRegistry()
    for v in (0.1, 0.9):
        a.histogram("campaign.point_error_rate").observe(v)
    for v in (0.0, 0.5):
        b.histogram("campaign.point_error_rate").observe(v)

    sequential = Histogram()
    for v in (0.1, 0.9, 0.0, 0.5):
        sequential.observe(v)

    a.merge(b)
    merged = a.histogram("campaign.point_error_rate")
    assert merged.to_dict() == sequential.to_dict()
    assert merged.quantile(1.0) == 0.9


def test_merge_into_empty_registry_is_a_copy():
    src = MetricsRegistry()
    src.counter("campaign.tests").inc(7)
    src.gauge("g").set(1.5)
    src.timer("t").record(0.3)
    src.histogram("h").observe(4.0)

    dst = MetricsRegistry()
    dst.merge(src)
    assert dst.to_dict() == src.to_dict()


def test_merge_many_worker_snapshots_matches_serial():
    """The engine's actual usage: N worker registries folded into one."""
    serial = MetricsRegistry()
    parent = MetricsRegistry()
    for worker in range(4):
        snap = MetricsRegistry()
        for i in range(worker + 1):
            for reg in (serial, snap):
                reg.counter("campaign.tests").inc()
                reg.timer("exec.unit_s").record(0.1 * (worker + i + 1))
                reg.histogram("rate").observe(i / 10)
        parent.merge(snap)
    assert parent.to_dict() == serial.to_dict()
