"""Metrics-registry unit tests."""

import json

import pytest

from repro.obs import MetricsRegistry
from repro.obs.metrics import Counter, Gauge, Histogram, Timer


def test_counter_increments_and_rejects_negatives():
    c = Counter()
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_last_value_wins():
    g = Gauge()
    g.set(3)
    g.set(1.5)
    assert g.value == 1.5


def test_timer_arithmetic():
    t = Timer()
    t.record(2.0)
    t.record(4.0)
    assert t.count == 2
    assert t.total == 6.0
    assert t.mean == 3.0
    assert t.min == 2.0 and t.max == 4.0
    with pytest.raises(ValueError):
        t.record(-0.1)


def test_timer_context_manager_records_elapsed():
    t = Timer()
    with t.time():
        pass
    assert t.count == 1 and t.total >= 0.0


def test_timer_to_dict_empty_is_finite():
    d = Timer().to_dict()
    assert d["count"] == 0 and d["mean"] == 0.0 and d["min"] == 0.0


def test_histogram_summary_and_quantiles():
    h = Histogram()
    for v in range(1, 101):
        h.observe(v)
    assert h.count == 100
    assert h.mean == pytest.approx(50.5)
    assert h.min == 1 and h.max == 100
    assert h.quantile(0.0) == 1
    assert h.quantile(1.0) == 100
    assert 45 <= h.quantile(0.5) <= 56
    with pytest.raises(ValueError):
        h.quantile(1.5)


def test_histogram_sample_window_is_bounded():
    h = Histogram()
    for v in range(10_000):
        h.observe(v)
    assert h.count == 10_000  # exact counts survive
    assert len(h._sample) <= 1024  # quantile window bounded


def test_registry_get_or_create_identity():
    m = MetricsRegistry()
    assert m.counter("a.b") is m.counter("a.b")
    assert m.gauge("g") is m.gauge("g")
    assert m.timer("t") is m.timer("t")
    assert m.histogram("h") is m.histogram("h")


def test_registry_time_shorthand():
    m = MetricsRegistry()
    with m.time("phase.x_s"):
        pass
    assert m.timer("phase.x_s").count == 1


def test_registry_export_roundtrips_through_json():
    m = MetricsRegistry()
    m.counter("campaign.tests").inc(12)
    m.gauge("prune.reduction").set(0.97)
    m.timer("phase.profile_s").record(0.5)
    m.histogram("campaign.point_error_rate").observe(0.25)
    d = json.loads(m.to_json())
    assert d == m.to_dict()
    assert d["counters"]["campaign.tests"] == 12
    assert d["gauges"]["prune.reduction"] == 0.97
    assert d["timers"]["phase.profile_s"]["count"] == 1
    assert d["histograms"]["campaign.point_error_rate"]["mean"] == 0.25
