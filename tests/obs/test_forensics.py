"""Failure-forensics tests: wait-for graphs and fault descriptions."""

import pytest

from repro.injection.injector import InjectionRecord
from repro.obs import Tracer, build_wait_for_graph, describe_fault, failure_detail
from repro.simmpi import DeadlockError, run_app
from repro.simmpi.errors import StepBudgetExceeded


def _deadlock_from(app, nranks, **kwargs):
    with pytest.raises(DeadlockError) as info:
        run_app(app, nranks, **kwargs)
    return info.value


def test_cross_recv_deadlock_graph():
    """Two ranks each waiting on the other: a 0 -> 1 -> 0 wait cycle."""

    def app(ctx):
        buf = ctx.alloc(1, ctx.INT)
        peer = 1 - ctx.rank
        yield from ctx.Recv(buf.addr, 1, ctx.INT, peer, 0, ctx.WORLD)

    exc = _deadlock_from(app, 2)
    graph = build_wait_for_graph(exc)
    assert graph.blocked_ranks == [0, 1]
    edges = {e.rank: e for e in graph.edges}
    assert edges[0].waits_on == 1 and edges[1].waits_on == 0
    assert edges[0].comm == "MPI_COMM_WORLD"
    assert "blocked" in edges[0].reason
    assert sorted(graph.cycle) == [0, 1]
    text = graph.describe()
    assert "rank 0 waits on recv(comm=MPI_COMM_WORLD" in text
    assert "wait cycle:" in text


def test_source_finished_without_sending():
    def app(ctx):
        if ctx.rank == 0:
            return None  # finishes immediately, sends nothing
        buf = ctx.alloc(1, ctx.INT)
        yield from ctx.Recv(buf.addr, 1, ctx.INT, 0, 0, ctx.WORLD)

    graph = build_wait_for_graph(_deadlock_from(app, 2))
    assert graph.blocked_ranks == [1]
    assert "finished without a matching send" in graph.edges[0].reason
    assert graph.cycle == []


def test_near_miss_tag_is_reported():
    """A message queued under a different tag is named in the reason."""

    def app(ctx):
        buf = ctx.alloc(1, ctx.INT)
        if ctx.rank == 0:
            yield from ctx.Send(buf.addr, 1, ctx.INT, 1, 7, ctx.WORLD)
            return None
        yield from ctx.Recv(buf.addr, 1, ctx.INT, 0, 9, ctx.WORLD)

    graph = build_wait_for_graph(_deadlock_from(app, 2))
    (edge,) = graph.edges
    assert edge.rank == 1 and edge.space == "p2p"
    assert "queued with tag 0x7" in edge.reason
    assert "0x9" in edge.reason


def test_graph_to_dict_and_summary():
    def app(ctx):
        buf = ctx.alloc(1, ctx.INT)
        peer = 1 - ctx.rank
        yield from ctx.Recv(buf.addr, 1, ctx.INT, peer, 0, ctx.WORLD)

    graph = build_wait_for_graph(_deadlock_from(app, 2))
    d = graph.to_dict()
    assert {e["rank"] for e in d["edges"]} == {0, 1}
    assert set(d["edges"][0]) == {
        "rank", "waits_on", "comm", "src", "dst", "tag", "space", "reason"
    }
    assert "rank 0<-src 1@MPI_COMM_WORLD" in graph.summary()


def test_bare_exception_yields_empty_graph():
    graph = build_wait_for_graph(DeadlockError({0: "recv(...)"}))
    assert graph.edges == [] and graph.cycle == []


def test_traced_deadlock_emits_blocked_events():
    def app(ctx):
        buf = ctx.alloc(1, ctx.INT)
        peer = 1 - ctx.rank
        yield from ctx.Recv(buf.addr, 1, ctx.INT, peer, 0, ctx.WORLD)

    tracer = Tracer()
    _deadlock_from(app, 2, tracer=tracer)
    blocked = tracer.events("rank_blocked")
    assert {e.rank for e in blocked} == {0, 1}
    assert len(tracer.events("alloc")) == 2


def test_describe_fault_formats():
    rec = InjectionRecord(
        "count", "scalar", 30, collective="Bcast", site="lu.py:85",
        invocation=0, before="64", after="1073741888",
    )
    desc = describe_fault(rec)
    assert desc == "bit 30 of scalar 'count' in Bcast@lu.py:85#inv0 (64 -> 1073741888)"

    skipped = InjectionRecord("sendbuf", "buffer", -1, skipped=True,
                              collective="Alltoallv", site="x.py:1", invocation=2)
    assert "skipped (empty target)" in describe_fault(skipped)
    assert describe_fault(None) == ""


def test_failure_detail_couples_fault_and_evidence():
    def app(ctx):
        buf = ctx.alloc(1, ctx.INT)
        if ctx.rank == 1:
            yield from ctx.Recv(buf.addr, 1, ctx.INT, 0, 0, ctx.WORLD)

    exc = _deadlock_from(app, 2)
    rec = InjectionRecord("root", "scalar", 3, collective="Bcast",
                          site="a.py:1", invocation=0, before="0", after="8")
    detail = failure_detail(exc, rec)
    assert detail.startswith("deadlock: rank 1<-src 0@MPI_COMM_WORLD")
    assert "fault: bit 3 of scalar 'root'" in detail


def test_failure_detail_step_budget():
    def app(ctx):
        from repro.simmpi.fiber import Progress

        while True:
            yield Progress()

    with pytest.raises(StepBudgetExceeded) as info:
        run_app(app, 1, step_budget=100)
    detail = failure_detail(info.value)
    assert "runaway execution" in detail


def test_campaign_details_populated_for_failures(lu_small_campaign):
    """Every non-SUCCESS test result carries a non-empty detail string."""
    from repro.injection import Outcome

    non_success = [
        t for t in lu_small_campaign.all_tests() if t.outcome is not Outcome.SUCCESS
    ]
    assert non_success, "campaign produced only successes; fixture too small"
    assert all(t.detail for t in non_success)
    samples = lu_small_campaign.detail_samples()
    assert samples and all(samples.values())
