"""Progress telemetry: snapshots, sinks, and the tracker's cadence."""

import io
import json

import pytest

from repro.injection import FaultSpec, InjectionPoint, Outcome
from repro.injection import TestResult as InjectionTestResult
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import (
    JsonlProgressSink,
    ProgressSink,
    ProgressSnapshot,
    ProgressTracker,
)


def make_tests(n=3, outcome=Outcome.SUCCESS):
    point = InjectionPoint(0, "allreduce", "f.py:1", 0)
    return [
        InjectionTestResult(FaultSpec(point, "sendbuf", i), outcome, None)
        for i in range(n)
    ]


class CapturingSink:
    def __init__(self):
        self.snaps = []
        self.closed = False

    def emit(self, snap):
        self.snaps.append(snap)

    def close(self):
        self.closed = True


def test_sinks_satisfy_the_protocol():
    assert isinstance(CapturingSink(), ProgressSink)
    assert isinstance(JsonlProgressSink(io.StringIO()), ProgressSink)


def test_snapshot_json_roundtrip():
    snap = ProgressSnapshot(
        seq=1, ts=123.0, elapsed_s=2.5, done_tests=10, total_tests=40,
        done_units=2, total_units=8, tests_per_sec=4.0, eta_s=7.5,
        outcomes={"SUCCESS": 9, "INF_LOOP": 1},
    )
    data = json.loads(snap.to_json())
    assert data["done_tests"] == 10
    assert data["outcomes"] == {"INF_LOOP": 1, "SUCCESS": 9}
    assert snap.fraction == 0.25


def test_tracker_emits_per_unit_and_final():
    sink = CapturingSink()
    tracker = ProgressTracker(9, 3, sinks=[sink])
    tracker.unit_done(make_tests())
    tracker.unit_done(make_tests())
    tracker.unit_done(make_tests())
    tracker.finish()
    assert [s.seq for s in sink.snaps] == [1, 2, 3]
    assert sink.snaps[-1].done_tests == 9
    assert sink.snaps[-1].done_units == 3
    assert sink.closed


def test_tracker_rate_limits_to_every_units():
    sink = CapturingSink()
    tracker = ProgressTracker(9, 3, sinks=[sink], every_units=2)
    tracker.unit_done(make_tests())  # 1: held
    tracker.unit_done(make_tests())  # 2: emitted
    tracker.unit_done(make_tests())  # 3: held
    assert len(sink.snaps) == 1
    tracker.finish()  # pending unit flushed
    assert len(sink.snaps) == 2
    assert sink.snaps[-1].done_units == 3


def test_tracker_always_leaves_at_least_one_snapshot():
    """Even a fully-resumed campaign (zero fresh units) gets a final
    snapshot, so the report timeline is never empty."""
    sink = CapturingSink()
    tracker = ProgressTracker(6, 2, sinks=[sink])
    tracker.seed(make_tests())
    tracker.seed(make_tests())
    tracker.finish()
    assert len(sink.snaps) == 1
    assert sink.snaps[0].done_tests == 6


def test_seeded_units_count_done_but_not_throughput():
    sink = CapturingSink()
    tracker = ProgressTracker(6, 2, sinks=[sink])
    tracker.seed(make_tests())
    tracker._start -= 10.0  # pretend 10s elapsed
    tracker.unit_done(make_tests())
    snap = sink.snaps[-1]
    assert snap.done_tests == 6
    # only the 3 fresh tests enter the rate
    assert snap.tests_per_sec == pytest.approx(0.3, rel=0.2)
    assert snap.outcomes == {"SUCCESS": 6}


def test_quarantined_units_tracked():
    sink = CapturingSink()
    tracker = ProgressTracker(6, 2, sinks=[sink])
    tracker.unit_done(make_tests())
    tracker.unit_quarantined(make_tests(outcome=Outcome.TOOL_ERROR))
    snap = sink.snaps[-1]
    assert snap.quarantined == 1
    assert snap.outcomes.get("TOOL_ERROR") == 3


def test_tracker_reads_supervision_counters():
    metrics = MetricsRegistry()
    metrics.counter("exec.worker_deaths").inc(2)
    metrics.counter("exec.retries").inc(5)
    tracker = ProgressTracker(3, 1, metrics=metrics)
    snap = tracker.snapshot()
    assert snap.worker_deaths == 2
    assert snap.retries == 5


def test_eta_shrinks_to_none_at_completion():
    tracker = ProgressTracker(3, 1)
    tracker._start -= 1.0
    tracker.unit_done(make_tests())
    assert tracker.snapshot().eta_s is None


def test_jsonl_sink_writes_parseable_lines(tmp_path):
    path = tmp_path / "prog.jsonl"
    sink = JsonlProgressSink(path)
    tracker = ProgressTracker(6, 2, sinks=[sink])
    tracker.unit_done(make_tests())
    tracker.unit_done(make_tests())
    tracker.finish()
    lines = path.read_text().strip().splitlines()
    records = [json.loads(ln) for ln in lines]
    assert [r["seq"] for r in records] == [1, 2]
    assert records[-1]["done_tests"] == 6


def test_jsonl_sink_does_not_close_borrowed_streams():
    stream = io.StringIO()
    sink = JsonlProgressSink(stream)
    sink.emit(
        ProgressSnapshot(
            seq=1, ts=0.0, elapsed_s=0.0, done_tests=0, total_tests=1,
            done_units=0, total_units=1, tests_per_sec=0.0, eta_s=None,
        )
    )
    sink.close()
    assert not stream.closed
    assert json.loads(stream.getvalue())["seq"] == 1


def test_bad_every_units_rejected():
    with pytest.raises(ValueError, match="every_units"):
        ProgressTracker(1, 1, every_units=0)
