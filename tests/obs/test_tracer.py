"""Ring-buffer tracer unit tests."""

import pytest

from repro.obs import DEFAULT_CAPACITY, TraceEvent, Tracer, format_event


def test_emit_records_in_order():
    t = Tracer()
    t.emit("send", 0, ctx=1, src=0, dst=1, tag=0)
    t.emit("recv", 1, ctx=1, src=0, dst=1, tag=0)
    t.emit("match", 1, ctx=1, src=0, dst=1, tag=0, nbytes=8)
    assert [e.kind for e in t] == ["send", "recv", "match"]
    assert [e.seq for e in t] == [0, 1, 2]
    assert len(t) == 3 and t.emitted == 3 and t.dropped == 0


def test_ring_bounds_memory_and_keeps_newest():
    t = Tracer(capacity=10)
    for i in range(25):
        t.emit("alloc", 0, nbytes=i)
    assert len(t) == 10
    assert t.emitted == 25
    assert t.dropped == 15
    # The newest window survives, in order.
    assert [e.data["nbytes"] for e in t] == list(range(15, 25))
    assert [e.seq for e in t] == list(range(15, 25))


def test_capacity_validation():
    with pytest.raises(ValueError):
        Tracer(capacity=0)


def test_disabled_tracer_emits_nothing():
    t = Tracer(enabled=False)
    t.emit("send", 0)
    assert len(t) == 0 and t.emitted == 0
    t.enabled = True
    t.emit("send", 0)
    assert len(t) == 1


def test_events_filter_by_kind():
    t = Tracer()
    for kind in ("send", "recv", "send", "match"):
        t.emit(kind, 0)
    assert [e.kind for e in t.events("send")] == ["send", "send"]
    assert [e.kind for e in t.events("send", "match")] == ["send", "send", "match"]
    assert len(t.events()) == 4


def test_clear_resets_counters():
    t = Tracer(capacity=4)
    for _ in range(9):
        t.emit("send", 0)
    t.clear()
    assert len(t) == 0 and t.emitted == 0 and t.dropped == 0
    t.emit("recv", 2)
    assert next(iter(t)).seq == 0


def test_default_capacity_is_bounded():
    assert Tracer().capacity == DEFAULT_CAPACITY


def test_to_dict_is_flat_and_json_safe():
    e = TraceEvent(7, "match", 3, {"ctx": 1, "src": 0, "dst": 3, "tag": 5})
    d = e.to_dict()
    assert d == {"seq": 7, "kind": "match", "rank": 3, "ctx": 1, "src": 0, "dst": 3, "tag": 5}


def test_format_event_shapes():
    match = TraceEvent(0, "match", 1, {"ctx": 9, "src": 0, "dst": 1, "tag": 0x42, "nbytes": 16})
    line = format_event(match)
    assert "match" in line and "ctx=9" in line and "0x42" in line and "nbytes=16" in line

    enter = TraceEvent(1, "coll_enter", 0, {"name": "Bcast", "site": "a.py:3", "invocation": 2, "phase": "compute"})
    line = format_event(enter)
    assert "Bcast@a.py:3#inv2" in line and "phase=compute" in line

    exit_ = TraceEvent(2, "coll_exit", 0, {"name": "Bcast", "site": "a.py:3", "invocation": 2})
    assert "phase" not in format_event(exit_)

    fired = TraceEvent(3, "fault_fired", 2, {
        "collective": "Reduce", "site": "b.py:9", "invocation": 0,
        "param": "count", "bit": 30, "before": "64", "after": "1073741888",
    })
    line = format_event(fired)
    assert "Reduce@b.py:9#inv0" in line and "param=count" in line and "64 -> 1073741888" in line


def test_format_supervision_events():
    t = Tracer()
    t.emit("unit_retry", -1, unit="p1:t0-2", attempt=1, reason="worker process died mid-unit")
    t.emit("unit_quarantined", -1, unit="p1:t0-2", attempt=3, reason="worker crashed: boom")
    retry, quarantined = t.events()
    line = format_event(retry)
    assert "unit_retry" in line and "unit=p1:t0-2" in line and "attempt=1" in line
    line = format_event(quarantined)
    assert "unit_quarantined" in line and "reason=worker crashed: boom" in line


def test_supervision_kinds_registered():
    from repro.obs.events import EVENT_KINDS

    assert "unit_retry" in EVENT_KINDS
    assert "unit_quarantined" in EVENT_KINDS
