"""Pointer-like handle space tests."""

import pytest

from repro.simmpi.errors import MPIError, SegmentationFault
from repro.simmpi.handles import OBJECT_EXTENT, HandleSpace


@pytest.fixture()
def space():
    s = HandleSpace("op", base=0x1000)
    s.register("first")
    s.register("second")
    return s


def test_register_and_resolve(space):
    handles = space.handles()
    assert space.resolve(handles[0]) == "first"
    assert space.resolve(handles[1]) == "second"


def test_len_and_objects(space):
    assert len(space) == 2
    assert space.objects() == ["first", "second"]


def test_adjacent_objects_one_bit_apart(space):
    h0, h1 = space.handles()
    assert h1 - h0 == OBJECT_EXTENT
    # OBJECT_EXTENT is a power of two, so when the low bits of h0 are
    # clear the pair differs in a single bit — the aliasing channel.
    assert bin(h0 ^ h1).count("1") == 1


def test_interior_offset_is_mpi_err(space):
    h0 = space.handles()[0]
    with pytest.raises(MPIError) as exc:
        space.resolve(h0 + 4)
    assert exc.value.errclass == "MPI_ERR_OP"


def test_far_pointer_is_segfault(space):
    with pytest.raises(SegmentationFault):
        space.resolve(0xDEAD0000)


def test_below_base_is_segfault(space):
    with pytest.raises(SegmentationFault):
        space.resolve(0x1000 - OBJECT_EXTENT)


def test_contains(space):
    h0 = space.handles()[0]
    assert space.contains(h0)
    assert not space.contains(h0 + 1)


def test_rank_attached_to_errors(space):
    h0 = space.handles()[0]
    with pytest.raises(MPIError) as exc:
        space.resolve(h0 + 4, rank=3)
    assert exc.value.rank == 3
