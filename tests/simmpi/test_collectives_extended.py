"""Correctness tests for the extended collectives: Scan, Exscan,
Reduce_scatter, Gatherv, Scatterv, Allgatherv."""

import numpy as np
import pytest

from repro.simmpi import run_app

SIZES = [1, 2, 3, 4, 7, 8]


def run(app_fn, nranks):
    return run_app(app_fn, nranks).results


@pytest.mark.parametrize("nranks", SIZES)
def test_scan_inclusive_prefix(nranks):
    def app(ctx):
        s = ctx.alloc(3, ctx.DOUBLE)
        r = ctx.alloc(3, ctx.DOUBLE)
        s.view[:] = [ctx.rank + 1, 1.0, 2.0 * ctx.rank]
        yield from ctx.Scan(s.addr, r.addr, 3, ctx.DOUBLE, ctx.SUM, ctx.WORLD)
        return list(r.view)

    for rank, res in enumerate(run(app, nranks)):
        expect = [
            sum(k + 1 for k in range(rank + 1)),
            rank + 1,
            sum(2.0 * k for k in range(rank + 1)),
        ]
        assert res == pytest.approx(expect)


@pytest.mark.parametrize("nranks", SIZES)
def test_exscan_exclusive_prefix(nranks):
    def app(ctx):
        s = ctx.alloc(1, ctx.LONG)
        r = ctx.alloc(1, ctx.LONG)
        s.view[0] = ctx.rank + 1
        r.view[0] = -999  # sentinel: rank 0's recvbuf stays undefined
        yield from ctx.Exscan(s.addr, r.addr, 1, ctx.LONG, ctx.SUM, ctx.WORLD)
        return int(r.view[0])

    results = run(app, nranks)
    assert results[0] == -999
    for rank in range(1, nranks):
        assert results[rank] == sum(k + 1 for k in range(rank))


@pytest.mark.parametrize("nranks", SIZES)
def test_scan_max(nranks):
    def app(ctx):
        s = ctx.alloc(1, ctx.DOUBLE)
        r = ctx.alloc(1, ctx.DOUBLE)
        s.view[0] = float((ctx.rank * 7) % 5)
        yield from ctx.Scan(s.addr, r.addr, 1, ctx.DOUBLE, ctx.MAX, ctx.WORLD)
        return float(r.view[0])

    vals = [float((r * 7) % 5) for r in range(nranks)]
    for rank, res in enumerate(run(app, nranks)):
        assert res == max(vals[: rank + 1])


@pytest.mark.parametrize("nranks", SIZES)
def test_reduce_scatter_block(nranks):
    def app(ctx):
        n = ctx.size
        s = ctx.alloc(2 * n, ctx.DOUBLE)
        r = ctx.alloc(2, ctx.DOUBLE)
        s.view[:] = [ctx.rank + j for j in range(2 * n)]
        yield from ctx.Reduce_scatter(s.addr, r.addr, 2, ctx.DOUBLE, ctx.SUM, ctx.WORLD)
        return list(r.view)

    contributions = np.array(
        [[r + j for j in range(2 * nranks)] for r in range(nranks)], dtype=float
    )
    totals = contributions.sum(axis=0)
    for rank, res in enumerate(run(app, nranks)):
        assert res == pytest.approx(list(totals[2 * rank : 2 * rank + 2]))


@pytest.mark.parametrize("nranks", SIZES)
def test_gatherv_variable_blocks(nranks):
    def app(ctx):
        n = ctx.size
        mine = ctx.rank + 1
        s = ctx.alloc(mine, ctx.INT)
        s.view[:] = ctx.rank
        counts = np.array([r + 1 for r in range(n)], dtype=np.int64)
        displs = np.zeros(n, dtype=np.int64)
        displs[1:] = np.cumsum(counts)[:-1]
        r = ctx.alloc(int(counts.sum()), ctx.INT)
        yield from ctx.Gatherv(s.addr, mine, r.addr, counts, displs, ctx.INT, 0, ctx.WORLD)
        return list(r.view) if ctx.rank == 0 else None

    results = run(app, nranks)
    expect = [src for src in range(nranks) for _ in range(src + 1)]
    assert results[0] == expect


@pytest.mark.parametrize("nranks", SIZES)
def test_scatterv_variable_blocks(nranks):
    def app(ctx):
        n = ctx.size
        counts = np.array([r + 1 for r in range(n)], dtype=np.int64)
        displs = np.zeros(n, dtype=np.int64)
        displs[1:] = np.cumsum(counts)[:-1]
        s = ctx.alloc(int(counts.sum()), ctx.INT)
        if ctx.rank == 0:
            s.view[:] = [src for src in range(n) for _ in range(src + 1)]
        mine = ctx.rank + 1
        r = ctx.alloc(mine, ctx.INT)
        yield from ctx.Scatterv(s.addr, counts, displs, r.addr, mine, ctx.INT, 0, ctx.WORLD)
        return list(r.view)

    for rank, res in enumerate(run(app, nranks)):
        assert res == [rank] * (rank + 1)


@pytest.mark.parametrize("nranks", SIZES)
def test_allgatherv_variable_blocks(nranks):
    def app(ctx):
        n = ctx.size
        mine = ctx.rank + 1
        s = ctx.alloc(mine, ctx.INT)
        s.view[:] = ctx.rank * 10
        counts = np.array([r + 1 for r in range(n)], dtype=np.int64)
        displs = np.zeros(n, dtype=np.int64)
        displs[1:] = np.cumsum(counts)[:-1]
        r = ctx.alloc(int(counts.sum()), ctx.INT)
        yield from ctx.Allgatherv(s.addr, mine, r.addr, counts, displs, ctx.INT, ctx.WORLD)
        return list(r.view)

    expect = [src * 10 for src in range(nranks) for _ in range(src + 1)]
    for res in run(app, nranks):
        assert res == expect


def test_scan_matches_numpy_cumsum_property():
    rng = np.random.default_rng(5)
    data = rng.standard_normal((6, 8))

    def app(ctx):
        s = ctx.alloc(8, ctx.DOUBLE)
        r = ctx.alloc(8, ctx.DOUBLE)
        s.view[:] = data[ctx.rank]
        yield from ctx.Scan(s.addr, r.addr, 8, ctx.DOUBLE, ctx.SUM, ctx.WORLD)
        return r.view.copy()

    rows = run(app, 6)
    np.testing.assert_allclose(np.vstack(rows), np.cumsum(data, axis=0), rtol=1e-12)


def test_reduce_scatter_equals_allreduce_slice():
    rng = np.random.default_rng(6)
    data = rng.standard_normal((4, 12))

    def app(ctx):
        s = ctx.alloc(12, ctx.DOUBLE)
        r1 = ctx.alloc(3, ctx.DOUBLE)
        r2 = ctx.alloc(12, ctx.DOUBLE)
        s.view[:] = data[ctx.rank]
        yield from ctx.Reduce_scatter(s.addr, r1.addr, 3, ctx.DOUBLE, ctx.SUM, ctx.WORLD)
        yield from ctx.Allreduce(s.addr, r2.addr, 12, ctx.DOUBLE, ctx.SUM, ctx.WORLD)
        return r1.view.copy(), r2.view.copy()

    for rank, (r1, r2) in enumerate(run(app, 4)):
        np.testing.assert_allclose(r1, r2[3 * rank : 3 * rank + 3], rtol=1e-12)


def test_extended_collectives_are_instrumented():
    from repro.simmpi import CollectiveCall, Instrument

    seen = []

    class Spy(Instrument):
        def on_collective(self, ctx, call: CollectiveCall):
            if call.rank == 0:
                seen.append(call.name)

    def app(ctx):
        n = ctx.size
        s = ctx.alloc(2 * n, ctx.DOUBLE)
        r = ctx.alloc(2 * n, ctx.DOUBLE)
        counts = np.full(n, 2, dtype=np.int64)
        displs = np.arange(n, dtype=np.int64) * 2
        yield from ctx.Scan(s.addr, r.addr, 2, ctx.DOUBLE, ctx.SUM, ctx.WORLD)
        yield from ctx.Exscan(s.addr, r.addr, 2, ctx.DOUBLE, ctx.SUM, ctx.WORLD)
        yield from ctx.Reduce_scatter(s.addr, r.addr, 2, ctx.DOUBLE, ctx.SUM, ctx.WORLD)
        yield from ctx.Gatherv(s.addr, 2, r.addr, counts, displs, ctx.DOUBLE, 0, ctx.WORLD)
        yield from ctx.Scatterv(s.addr, counts, displs, r.addr, 2, ctx.DOUBLE, 0, ctx.WORLD)
        yield from ctx.Allgatherv(s.addr, 2, r.addr, counts, displs, ctx.DOUBLE, ctx.WORLD)

    run_app(app, 3, instruments=[Spy()])
    assert seen == ["Scan", "Exscan", "Reduce_scatter", "Gatherv", "Scatterv", "Allgatherv"]
