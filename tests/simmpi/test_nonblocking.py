"""Nonblocking point-to-point (Isend/Irecv/Wait/Waitall) tests."""

import pytest

from repro.simmpi import MPIError, Request, run_app


def test_isend_completes_immediately():
    def app(ctx):
        buf = ctx.alloc(2, ctx.INT)
        if ctx.rank == 0:
            buf.view[:] = [1, 2]
            req = yield from ctx.Isend(buf.addr, 2, ctx.INT, 1, 0, ctx.WORLD)
            assert req.complete and req.is_send
            return None
        r = ctx.alloc(2, ctx.INT)
        yield from ctx.Recv(r.addr, 2, ctx.INT, 0, 0, ctx.WORLD)
        return list(r.view)

    assert run_app(app, 2).results[1] == [1, 2]


def test_irecv_wait_roundtrip():
    def app(ctx):
        s = ctx.alloc(3, ctx.DOUBLE)
        r = ctx.alloc(3, ctx.DOUBLE)
        s.view[:] = [ctx.rank, ctx.rank + 0.5, -1.0]
        peer = (ctx.rank + 1) % ctx.size
        src = (ctx.rank - 1) % ctx.size
        req = ctx.Irecv(r.addr, 3, ctx.DOUBLE, src, 4, ctx.WORLD)
        assert isinstance(req, Request) and not req.complete
        yield from ctx.Send(s.addr, 3, ctx.DOUBLE, peer, 4, ctx.WORLD)
        n = yield from ctx.Wait(req)
        assert n == 3 and req.complete
        return float(r.view[0])

    results = run_app(app, 4).results
    assert results == [3.0, 0.0, 1.0, 2.0]


def test_wait_is_idempotent():
    def app(ctx):
        s = ctx.alloc(1, ctx.INT)
        r = ctx.alloc(1, ctx.INT)
        s.view[0] = 7
        if ctx.rank == 0:
            yield from ctx.Send(s.addr, 1, ctx.INT, 1, 0, ctx.WORLD)
            return 0
        req = ctx.Irecv(r.addr, 1, ctx.INT, 0, 0, ctx.WORLD)
        a = yield from ctx.Wait(req)
        b = yield from ctx.Wait(req)  # second wait: no further recv
        return (a, b, int(r.view[0]))

    assert run_app(app, 2).results[1] == (1, 1, 7)


def test_waitall_multiple_sources():
    def app(ctx):
        if ctx.rank == 0:
            bufs = [ctx.alloc(1, ctx.INT) for _ in range(ctx.size - 1)]
            reqs = [
                ctx.Irecv(bufs[i].addr, 1, ctx.INT, i + 1, 9, ctx.WORLD)
                for i in range(ctx.size - 1)
            ]
            counts = yield from ctx.Waitall(reqs)
            assert counts == [1] * (ctx.size - 1)
            return [int(b.view[0]) for b in bufs]
        s = ctx.alloc(1, ctx.INT)
        s.view[0] = ctx.rank * 11
        yield from ctx.Send(s.addr, 1, ctx.INT, 0, 9, ctx.WORLD)
        return None

    assert run_app(app, 4).results[0] == [11, 22, 33]


def test_irecv_truncation_detected_at_wait():
    def app(ctx):
        buf = ctx.alloc(8, ctx.INT)
        if ctx.rank == 0:
            yield from ctx.Send(buf.addr, 8, ctx.INT, 1, 0, ctx.WORLD)
            return None
        req = ctx.Irecv(buf.addr, 2, ctx.INT, 0, 0, ctx.WORLD)
        yield from ctx.Wait(req)

    with pytest.raises(MPIError) as exc:
        run_app(app, 2)
    assert exc.value.errclass == "MPI_ERR_TRUNCATE"
