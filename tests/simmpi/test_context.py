"""Context API tests: stack capture, sites, invocations, phases, p2p."""

import pytest

from repro.simmpi import AppError, CollectiveCall, Instrument, MPIError, run_app


class Recorder(Instrument):
    def __init__(self):
        self.calls: list[CollectiveCall] = []
        self.completed: list[str] = []
        self.p2p: list[tuple] = []

    def on_collective(self, ctx, call):
        self.calls.append(call)

    def on_complete(self, ctx, call):
        self.completed.append(call.name)

    def on_p2p(self, ctx, kind, src, dst, tag, nbytes):
        self.p2p.append((ctx.rank, kind, src, dst, tag, nbytes))


def helper_reduce(ctx, s, r):
    yield from ctx.Allreduce(s.addr, r.addr, 1, ctx.DOUBLE, ctx.SUM, ctx.WORLD)


def outer_helper(ctx, s, r):
    yield from helper_reduce(ctx, s, r)


def test_stack_capture_reflects_call_chain():
    rec = Recorder()

    def app(ctx):
        s = ctx.alloc(1, ctx.DOUBLE)
        r = ctx.alloc(1, ctx.DOUBLE)
        yield from outer_helper(ctx, s, r)
        return None

    run_app(app, 2, instruments=[rec])
    call = rec.calls[0]
    funcs = [f.split("@")[0] for f in call.stack]
    assert funcs == ["app", "outer_helper", "helper_reduce"]
    assert call.site.startswith("test_context.py:")


def test_distinct_call_sites_have_distinct_ids():
    rec = Recorder()

    def app(ctx):
        s = ctx.alloc(1, ctx.DOUBLE)
        r = ctx.alloc(1, ctx.DOUBLE)
        yield from ctx.Allreduce(s.addr, r.addr, 1, ctx.DOUBLE, ctx.SUM, ctx.WORLD)
        yield from ctx.Allreduce(s.addr, r.addr, 1, ctx.DOUBLE, ctx.SUM, ctx.WORLD)

    run_app(app, 1, instruments=[rec])
    sites = {c.site for c in rec.calls}
    assert len(sites) == 2
    assert all(c.invocation == 0 for c in rec.calls)


def test_invocation_counter_per_site():
    rec = Recorder()

    def app(ctx):
        s = ctx.alloc(1, ctx.DOUBLE)
        r = ctx.alloc(1, ctx.DOUBLE)
        for _ in range(3):
            yield from helper_reduce(ctx, s, r)

    run_app(app, 1, instruments=[rec])
    assert [c.invocation for c in rec.calls] == [0, 1, 2]
    assert len({c.site for c in rec.calls}) == 1


def test_seq_counts_all_collectives():
    rec = Recorder()

    def app(ctx):
        s = ctx.alloc(1, ctx.DOUBLE)
        r = ctx.alloc(1, ctx.DOUBLE)
        yield from ctx.Allreduce(s.addr, r.addr, 1, ctx.DOUBLE, ctx.SUM, ctx.WORLD)
        yield from ctx.Barrier(ctx.WORLD)
        yield from ctx.Bcast(s.addr, 1, ctx.DOUBLE, 0, ctx.WORLD)

    run_app(app, 2, instruments=[rec])
    rank0 = [c for c in rec.calls if c.rank == 0]
    assert [c.seq for c in rank0] == [0, 1, 2]


def test_phase_recorded_at_call():
    rec = Recorder()

    def app(ctx):
        s = ctx.alloc(1, ctx.DOUBLE)
        r = ctx.alloc(1, ctx.DOUBLE)
        ctx.set_phase("input")
        yield from helper_reduce(ctx, s, r)
        ctx.set_phase("compute")
        yield from helper_reduce(ctx, s, r)
        ctx.set_phase("end")
        yield from helper_reduce(ctx, s, r)

    run_app(app, 1, instruments=[rec])
    assert [c.phase for c in rec.calls] == ["input", "compute", "end"]


def test_unknown_phase_rejected():
    def app(ctx):
        ctx.set_phase("warmup")
        yield from ctx.Barrier(ctx.WORLD)

    from repro.simmpi import FiberCrashed

    with pytest.raises(FiberCrashed):
        run_app(app, 1)


def test_on_complete_fires_after_success():
    rec = Recorder()

    def app(ctx):
        yield from ctx.Barrier(ctx.WORLD)

    run_app(app, 2, instruments=[rec])
    assert rec.completed.count("Barrier") == 2


def test_app_error_propagates():
    def app(ctx):
        yield from ctx.Barrier(ctx.WORLD)
        ctx.app_error("custom failure")

    with pytest.raises(AppError):
        run_app(app, 2)


def test_p2p_send_recv_roundtrip_and_instrumented():
    rec = Recorder()

    def app(ctx):
        buf = ctx.alloc(4, ctx.INT)
        if ctx.rank == 0:
            buf.view[:] = [9, 8, 7, 6]
            yield from ctx.Send(buf.addr, 4, ctx.INT, 1, 42, ctx.WORLD)
            return None
        n = yield from ctx.Recv(buf.addr, 4, ctx.INT, 0, 42, ctx.WORLD)
        return (n, list(buf.view))

    results = run_app(app, 2, instruments=[rec]).results
    assert results[1] == (4, [9, 8, 7, 6])
    kinds = {(r, k) for r, k, *_ in rec.p2p}
    assert (0, "send") in kinds and (1, "recv") in kinds


def test_p2p_truncation_is_mpi_err():
    def app(ctx):
        buf = ctx.alloc(8, ctx.INT)
        if ctx.rank == 0:
            yield from ctx.Send(buf.addr, 8, ctx.INT, 1, 0, ctx.WORLD)
        else:
            yield from ctx.Recv(buf.addr, 2, ctx.INT, 0, 0, ctx.WORLD)

    with pytest.raises(MPIError) as exc:
        run_app(app, 2)
    assert exc.value.errclass == "MPI_ERR_TRUNCATE"


def test_sendrecv():
    def app(ctx):
        s = ctx.alloc(1, ctx.INT)
        r = ctx.alloc(1, ctx.INT)
        s.view[0] = ctx.rank
        peer = (ctx.rank + 1) % ctx.size
        src = (ctx.rank - 1) % ctx.size
        yield from ctx.Sendrecv(s.addr, 1, peer, r.addr, 1, src, ctx.INT, 5, ctx.WORLD)
        return int(r.view[0])

    results = run_app(app, 4).results
    assert results == [3, 0, 1, 2]


def test_comm_rank_and_size_helpers():
    def app(ctx):
        sub = yield from ctx.Comm_split(ctx.WORLD, ctx.rank % 2)
        return (ctx.comm_rank(sub), ctx.comm_size(sub))
        yield  # pragma: no cover

    results = run_app(app, 4).results
    assert results == [(0, 2), (0, 2), (1, 2), (1, 2)]


def test_instrument_can_mutate_args():
    class CountDoubler(Instrument):
        def on_collective(self, ctx, call):
            if call.name == "Bcast":
                call.args["count"] = 0  # neutralise the broadcast

    def app(ctx):
        b = ctx.alloc(2, ctx.DOUBLE)
        if ctx.rank == 0:
            b.view[:] = [5.0, 5.0]
        yield from ctx.Bcast(b.addr, 2, ctx.DOUBLE, 0, ctx.WORLD)
        return list(b.view)

    results = run_app(app, 2, instruments=[CountDoubler()]).results
    assert results[1] == [0.0, 0.0]  # nothing was transferred
