"""Fault-manifestation semantics: the failure modes FastFIT relies on.

These tests pin down how each kind of parameter corruption propagates —
the behaviours DESIGN.md claims the per-rank schedule expansion and
pointer-like handles buy us.
"""

import pytest

from repro.simmpi import (
    DeadlockError,
    MPIError,
    SegmentationFault,
    run_app,
)


def test_mismatched_root_deadlocks():
    """One rank believing in a different broadcast root hangs the job."""

    def app(ctx):
        b = ctx.alloc(4, ctx.DOUBLE)
        root = 1 if ctx.rank == 2 else 0
        yield from ctx.Bcast(b.addr, 4, ctx.DOUBLE, root, ctx.WORLD)

    with pytest.raises(DeadlockError):
        run_app(app, 4, step_budget=100_000)


def test_comm_aliasing_deadlocks():
    """A rank whose comm handle aliases another live communicator joins
    the wrong context; the original collective never completes."""

    def app(ctx):
        other = yield from ctx.Comm_dup(ctx.WORLD)
        s = ctx.alloc(1, ctx.DOUBLE)
        r = ctx.alloc(1, ctx.DOUBLE)
        comm = other if ctx.rank == 1 else ctx.WORLD
        yield from ctx.Allreduce(s.addr, r.addr, 1, ctx.DOUBLE, ctx.SUM, comm)

    with pytest.raises(DeadlockError):
        run_app(app, 4, step_budget=100_000)


def test_diverged_invocation_counts_deadlock():
    """A rank that skips one collective can never re-synchronise (the
    per-comm sequence numbers diverge)."""

    def app(ctx):
        s = ctx.alloc(1, ctx.DOUBLE)
        r = ctx.alloc(1, ctx.DOUBLE)
        if ctx.rank != 0:
            yield from ctx.Allreduce(s.addr, r.addr, 1, ctx.DOUBLE, ctx.SUM, ctx.WORLD)
        yield from ctx.Allreduce(s.addr, r.addr, 1, ctx.DOUBLE, ctx.SUM, ctx.WORLD)
        yield from ctx.Barrier(ctx.WORLD)

    with pytest.raises(DeadlockError):
        run_app(app, 3, step_budget=100_000)


def test_moderately_corrupted_count_heap_smashes():
    """A slightly-too-large count on the root reads past its buffer into
    a neighbouring allocation — silent corruption, not a crash."""

    def app(ctx):
        src = ctx.alloc(4, ctx.LONG)
        neighbour = ctx.alloc(4, ctx.LONG)
        dst = ctx.alloc(8, ctx.LONG)
        src.view[:] = [1, 2, 3, 4]
        neighbour.view[:] = [100, 200, 300, 400]
        count = 8 if ctx.rank == 0 else 8  # root sends 8, incl. neighbour
        yield from ctx.Bcast(
            (src if ctx.rank == 0 else dst).addr, count, ctx.LONG, 0, ctx.WORLD
        )
        return list(dst.view) if ctx.rank != 0 else None

    results = run_app(app, 2).results
    leaked = results[1]
    assert leaked[:4] == [1, 2, 3, 4]
    # Alignment padding puts the neighbour right after src: data leaks.
    assert 100 in leaked or 0 in leaked


def test_recv_overflow_within_arena_corrupts_silently():
    """A receiver whose local count is oversized writes past its buffer
    into a neighbour (heap smash), corrupting unrelated data."""

    def app(ctx):
        dst = ctx.alloc(2, ctx.LONG)
        victim = ctx.alloc(2, ctx.LONG)
        victim.view[:] = [7, 7]
        src = ctx.alloc(8, ctx.LONG)
        src.view[:] = range(8)
        if ctx.rank == 0:
            yield from ctx.Bcast(src.addr, 8, ctx.LONG, 0, ctx.WORLD)
        else:
            yield from ctx.Bcast(dst.addr, 8, ctx.LONG, 0, ctx.WORLD)
        return list(victim.view)

    results = run_app(app, 2).results
    assert results[1] != [7, 7]  # victim was overwritten


def test_dtype_aliasing_changes_element_size():
    """A datatype handle aliased to a *different valid* datatype changes
    the message size: the peers disagree and the receiver truncates."""

    def app(ctx):
        b = ctx.alloc(8, ctx.DOUBLE)
        dt = ctx.DOUBLE if ctx.rank == 0 else ctx.FLOAT
        yield from ctx.Bcast(b.addr, 8, dt, 0, ctx.WORLD)

    with pytest.raises(MPIError) as exc:
        run_app(app, 2)
    assert exc.value.errclass == "MPI_ERR_TRUNCATE"


def test_oob_displacement_segfaults():
    import numpy as np

    def app(ctx):
        n = ctx.size
        s = ctx.alloc(n, ctx.INT)
        r = ctx.alloc(n, ctx.INT)
        counts = np.ones(n, dtype=np.int64)
        displs = np.arange(n, dtype=np.int64)
        if ctx.rank == 0:
            displs[1] = 1 << 50  # corrupted displacement
        yield from ctx.Alltoallv(s.addr, counts, displs, r.addr, counts, displs, ctx.INT, ctx.WORLD)

    with pytest.raises(SegmentationFault):
        run_app(app, 4)
