"""Collective-algorithm selection tests: all variants agree on results."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simmpi import SimMPI, run_app

ALGO_SETS = [
    None,
    {"bcast": "chain"},
    {"allreduce": "reduce_bcast"},
    {"bcast": "chain", "allreduce": "reduce_bcast"},
]


def mixed_app(ctx):
    s = ctx.alloc(5, ctx.DOUBLE)
    r = ctx.alloc(5, ctx.DOUBLE)
    s.view[:] = np.arange(5) * (ctx.rank + 1)
    yield from ctx.Allreduce(s.addr, r.addr, 5, ctx.DOUBLE, ctx.SUM, ctx.WORLD)
    yield from ctx.Bcast(r.addr, 5, ctx.DOUBLE, ctx.size - 1, ctx.WORLD)
    return list(r.view)


@pytest.mark.parametrize("algorithms", ALGO_SETS)
@pytest.mark.parametrize("nranks", [1, 2, 3, 5, 8])
def test_all_algorithms_agree(algorithms, nranks):
    baseline = run_app(mixed_app, nranks).results
    variant = run_app(mixed_app, nranks, algorithms=algorithms).results
    assert variant == baseline


def test_forced_recursive_doubling_on_pow2():
    res = run_app(mixed_app, 4, algorithms={"allreduce": "recursive_doubling"})
    assert res.results[0] == res.results[3]


def test_forced_recursive_doubling_rejects_non_pow2():
    from repro.simmpi import FiberCrashed

    with pytest.raises(FiberCrashed):
        run_app(mixed_app, 3, algorithms={"allreduce": "recursive_doubling"})


def test_unknown_algorithm_rejected():
    with pytest.raises(ValueError):
        SimMPI(2, algorithms={"bcast": "telepathy"})
    with pytest.raises(ValueError):
        SimMPI(2, algorithms={"gather": "binomial"})


def test_chain_uses_different_edges():
    """The chain and binomial broadcasts move the same data over
    different communication edges (same message count, different
    pattern)."""
    from repro.simmpi.fiber import Send
    from repro.simmpi.scheduler import Scheduler

    def edges_of(algorithms):
        sent = set()

        class SpyScheduler(Scheduler):
            def _handle_send(self, call: Send) -> None:
                sent.add((call.src, call.dst))
                super()._handle_send(call)

        import repro.simmpi.runtime as rt

        original = rt.Scheduler
        rt.Scheduler = SpyScheduler
        try:
            run_app(bcast_only, 8, algorithms=algorithms)
        finally:
            rt.Scheduler = original
        return sent

    def bcast_only(ctx):
        buf = ctx.alloc(2, ctx.DOUBLE)
        yield from ctx.Bcast(buf.addr, 2, ctx.DOUBLE, 0, ctx.WORLD)

    binomial = edges_of(None)
    chain = edges_of({"bcast": "chain"})
    assert chain == {(r, r + 1) for r in range(7)}
    assert binomial != chain


@settings(max_examples=20, deadline=None)
@given(
    nranks=st.integers(min_value=1, max_value=8),
    root=st.integers(min_value=0, max_value=7),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_chain_bcast_matches_binomial(nranks, root, seed):
    root %= nranks
    payload = np.random.default_rng(seed).standard_normal(6)

    def app(ctx):
        buf = ctx.alloc(6, ctx.DOUBLE)
        if ctx.rank == root:
            buf.view[:] = payload
        yield from ctx.Bcast(buf.addr, 6, ctx.DOUBLE, root, ctx.WORLD)
        return buf.view.copy()

    for algos in (None, {"bcast": "chain"}):
        for res in run_app(app, nranks, algorithms=algos).results:
            np.testing.assert_array_equal(res, payload)
