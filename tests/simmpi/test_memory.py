"""Simulated-memory unit and property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simmpi.datatypes import make_datatype_space
from repro.simmpi.errors import SegmentationFault
from repro.simmpi.memory import ARENA_BASE, Memory


@pytest.fixture()
def mem():
    return Memory(rank=0, size=1 << 16)


@pytest.fixture()
def double():
    reg, names = make_datatype_space()
    return reg.resolve(names["MPI_DOUBLE"])


def test_alloc_and_rw_roundtrip(mem):
    seg = mem.alloc(64, "buf")
    mem.write(seg.addr, bytes(range(64)))
    assert mem.read(seg.addr, 64) == bytes(range(64))


def test_alloc_alignment(mem):
    a = mem.alloc(3)
    b = mem.alloc(5)
    assert b.addr % 16 == 0
    assert b.addr >= a.end


def test_read_out_of_arena_segfaults(mem):
    with pytest.raises(SegmentationFault):
        mem.read(ARENA_BASE + (1 << 16), 8)
    with pytest.raises(SegmentationFault):
        mem.read(ARENA_BASE - 8, 8)


def test_negative_length_segfaults(mem):
    with pytest.raises(SegmentationFault):
        mem.read(ARENA_BASE, -1)


def test_huge_read_segfaults_without_allocating(mem):
    with pytest.raises(SegmentationFault):
        mem.read(ARENA_BASE, 1 << 60)


def test_heap_smash_corrupts_neighbour(mem):
    a = mem.alloc(16, "a")
    b = mem.alloc(16, "b")
    mem.write(b.addr, b"\x00" * 16)
    # Overrun a into b: within the arena, so it silently succeeds.
    gap = b.addr - a.addr
    mem.write(a.addr, b"\xff" * (gap + 4))
    assert mem.read(b.addr, 4) == b"\xff" * 4


def test_arena_exhaustion_raises_memoryerror(mem):
    with pytest.raises(MemoryError):
        mem.alloc((1 << 16) + 1)


def test_array_view_is_live(mem, double):
    ref = mem.alloc_array(8, double, "arr")
    ref.view[:] = np.arange(8)
    raw = np.frombuffer(mem.read(ref.addr, 64), dtype=np.float64)
    assert list(raw) == list(range(8))


def test_segment_of(mem):
    seg = mem.alloc(32, "x")
    assert mem.segment_of(seg.addr) == seg
    assert mem.segment_of(seg.addr + 31) == seg
    assert mem.segment_of(seg.addr + 64) is None


def test_flip_bit_flips_exactly_one_bit(mem):
    seg = mem.alloc(4)
    mem.write(seg.addr, b"\x00\x00\x00\x00")
    mem.flip_bit(seg.addr, 11)  # byte 1, bit 3
    data = mem.read(seg.addr, 4)
    assert data == bytes([0, 8, 0, 0])


def test_flip_bit_out_of_arena_segfaults(mem):
    with pytest.raises(SegmentationFault):
        mem.flip_bit(ARENA_BASE + (1 << 16), 0)


@settings(max_examples=50, deadline=None)
@given(
    offset=st.integers(min_value=0, max_value=255),
    bit=st.integers(min_value=0, max_value=2047),
)
def test_double_flip_restores(offset, bit):
    mem = Memory(rank=0, size=4096)
    seg = mem.alloc(256 + 64)
    original = bytes((i * 37 + offset) % 256 for i in range(256))
    mem.write(seg.addr, original)
    mem.flip_bit(seg.addr, bit)
    mem.flip_bit(seg.addr, bit)
    assert mem.read(seg.addr, 256) == original


class TestAllocCap:
    """The per-rank allocation cap: the resource guard that maps a
    corrupted size onto the simulated segfault path."""

    def test_over_cap_allocation_segfaults(self):
        mem = Memory(rank=3, size=1 << 16, alloc_cap=1 << 10)
        with pytest.raises(SegmentationFault) as err:
            mem.alloc((1 << 10) + 1, "huge")
        assert err.value.rank == 3
        assert err.value.nbytes == (1 << 10) + 1

    def test_cap_sized_allocation_succeeds(self):
        mem = Memory(rank=0, size=1 << 16, alloc_cap=1 << 10)
        seg = mem.alloc(1 << 10, "exact")
        assert seg.nbytes == 1 << 10

    def test_no_cap_keeps_arena_exhaustion_semantics(self):
        mem = Memory(rank=0, size=1 << 12)
        with pytest.raises(MemoryError):
            mem.alloc((1 << 12) + 1)

    def test_capped_arena_exhaustion_still_memoryerror(self):
        """Under-cap requests that overrun the arena stay MemoryError —
        the cap only guards single oversized requests."""
        mem = Memory(rank=0, size=1 << 12, alloc_cap=1 << 11)
        mem.alloc(1 << 11)
        mem.alloc(1 << 11)
        with pytest.raises(MemoryError):
            mem.alloc(1 << 11)

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            Memory(rank=0, size=1 << 12, alloc_cap=0)
