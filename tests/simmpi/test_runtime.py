"""Runtime-level tests: determinism, single-use, budgets."""

import pytest

from repro.simmpi import SimMPI, StepBudgetExceeded, run_app


def simple_app(ctx):
    s = ctx.alloc(4, ctx.DOUBLE)
    r = ctx.alloc(4, ctx.DOUBLE)
    s.view[:] = [ctx.rank] * 4
    yield from ctx.Allreduce(s.addr, r.addr, 4, ctx.DOUBLE, ctx.SUM, ctx.WORLD)
    return list(r.view)


def test_run_returns_per_rank_results():
    res = run_app(simple_app, 4)
    assert len(res.results) == 4
    assert res.results[0] == [6.0] * 4


def test_runs_are_deterministic():
    a = run_app(simple_app, 4)
    b = run_app(simple_app, 4)
    assert a.results == b.results
    assert a.steps == b.steps


def test_runtime_is_single_use():
    rt = SimMPI(2)
    rt.run(simple_app)
    with pytest.raises(RuntimeError):
        rt.run(simple_app)


def test_zero_ranks_rejected():
    with pytest.raises(ValueError):
        SimMPI(0)


def test_step_budget_enforced():
    def spinner(ctx):
        while True:
            yield from ctx.progress()

    with pytest.raises(StepBudgetExceeded):
        run_app(spinner, 1, step_budget=500)


def test_handle_layout_identical_across_runtimes():
    """Golden and injected runs must see the same handle values."""
    a = SimMPI(4)
    b = SimMPI(4)
    assert a.type_handles == b.type_handles
    assert a.op_handles == b.op_handles
    assert a.world_handle == b.world_handle


def test_contexts_expose_named_handles():
    rt = SimMPI(2)

    def app(ctx):
        assert ctx.DOUBLE in ctx.runtime.type_handles.values()
        assert ctx.SUM in ctx.runtime.op_handles.values()
        assert ctx.WORLD == ctx.runtime.world_handle
        yield from ctx.Barrier(ctx.WORLD)
        return True

    assert all(rt.run(app).results)
