"""Scheduler, fiber, and message-matching tests."""

import pytest

from repro.simmpi.errors import DeadlockError, FiberCrashed, StepBudgetExceeded
from repro.simmpi.fiber import Fiber, Progress, Recv, Send
from repro.simmpi.scheduler import Scheduler


def make_fibers(*gen_fns):
    return [Fiber(i, fn()) for i, fn in enumerate(gen_fns)]


def test_simple_send_recv():
    def sender():
        yield Send(1, 0, 1, 0, b"hello")
        return "sent"

    def receiver():
        payload = yield Recv(1, 0, 1, 0)
        return payload

    results = Scheduler(make_fibers(sender, receiver)).run()
    assert results == ["sent", b"hello"]


def test_recv_before_send_blocks_then_resumes():
    def receiver():
        payload = yield Recv(1, 1, 0, 0)
        return payload

    def sender():
        yield Progress()
        yield Progress()
        yield Send(1, 1, 0, 0, b"late")
        return None

    results = Scheduler(make_fibers(receiver, sender)).run()
    assert results[0] == b"late"


def test_fifo_ordering_per_match_key():
    def sender():
        yield Send(1, 0, 1, 5, b"first")
        yield Send(1, 0, 1, 5, b"second")
        return None

    def receiver():
        a = yield Recv(1, 0, 1, 5)
        b = yield Recv(1, 0, 1, 5)
        return (a, b)

    results = Scheduler(make_fibers(sender, receiver)).run()
    assert results[1] == (b"first", b"second")


def test_tag_mismatch_deadlocks():
    def sender():
        yield Send(1, 0, 1, 1, b"x")
        return None

    def receiver():
        yield Recv(1, 0, 1, 2)  # wrong tag: never satisfied

    with pytest.raises(DeadlockError) as exc:
        Scheduler(make_fibers(sender, receiver)).run()
    assert 1 in exc.value.blocked


def test_context_isolation():
    """The same (src, dst, tag) in a different context never matches."""

    def sender():
        yield Send(99, 0, 1, 0, b"other context")
        return None

    def receiver():
        yield Recv(1, 0, 1, 0)

    with pytest.raises(DeadlockError):
        Scheduler(make_fibers(sender, receiver)).run()


def test_step_budget_exceeded():
    def spinner():
        while True:
            yield Progress()

    with pytest.raises(StepBudgetExceeded):
        Scheduler(make_fibers(spinner), step_budget=100).run()


def test_progress_weight_counts():
    def heavy():
        yield Progress(weight=1000)
        return None

    with pytest.raises(StepBudgetExceeded):
        Scheduler(make_fibers(heavy), step_budget=10).run()


def test_crash_wrapped_as_fibercrashed():
    def crasher():
        yield Progress()
        raise ValueError("boom")

    with pytest.raises(FiberCrashed) as exc:
        Scheduler(make_fibers(crasher)).run()
    assert isinstance(exc.value.original, ValueError)
    assert exc.value.rank == 0


def test_round_robin_determinism():
    trace = []

    def make(tagged):
        def fn():
            trace.append(tagged)
            yield Progress()
            trace.append(tagged)
            return tagged

        return fn

    Scheduler(make_fibers(make("a"), make("b"), make("c"))).run()
    assert trace == ["a", "b", "c", "a", "b", "c"]


def test_empty_results_for_immediate_return():
    def quick():
        return 42
        yield  # pragma: no cover - makes it a generator

    results = Scheduler(make_fibers(quick)).run()
    assert results == [42]
