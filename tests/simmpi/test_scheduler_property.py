"""Property-based scheduler tests: random message programs.

The scheduler's contract: any program whose sends and receives form a
perfect matching per (context, src, dst, tag) key completes; any
unmatched receive deadlocks deterministically.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simmpi import DeadlockError, run_app
from repro.simmpi.fiber import Fiber, Progress, Recv, Send
from repro.simmpi.scheduler import Scheduler

SETTINGS = dict(max_examples=40, deadline=None)


@settings(**SETTINGS)
@given(
    nranks=st.integers(min_value=2, max_value=8),
    rounds=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_random_permutation_exchanges_complete(nranks, rounds, seed):
    """Each round, ranks exchange along a random permutation: every
    send has exactly one matching recv, so the program must complete."""
    rng = np.random.default_rng(seed)
    perms = [rng.permutation(nranks) for _ in range(rounds)]

    def make(rank):
        def fiber():
            for rnd, perm in enumerate(perms):
                dst = int(perm[rank])
                src = int(np.argwhere(perm == rank)[0][0])
                yield Send(1, rank, dst, rnd, bytes([rank]))
                payload = yield Recv(1, src, rank, rnd)
                assert payload == bytes([src])
            return rank

        return fiber

    fibers = [Fiber(r, make(r)()) for r in range(nranks)]
    results = Scheduler(fibers).run()
    assert results == list(range(nranks))


@settings(**SETTINGS)
@given(
    nranks=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_one_missing_send_always_deadlocks(nranks, seed):
    """Dropping a single send from a perfect matching must deadlock."""
    rng = np.random.default_rng(seed)
    dropped = int(rng.integers(0, nranks))

    def make(rank):
        def fiber():
            dst = (rank + 1) % nranks
            src = (rank - 1) % nranks
            if rank != dropped:
                yield Send(1, rank, dst, 0, b"x")
            yield Recv(1, src, rank, 0)

        return fiber

    fibers = [Fiber(r, make(r)()) for r in range(nranks)]
    try:
        Scheduler(fibers).run()
        raised = False
    except DeadlockError as exc:
        raised = True
        # The starved receiver is the dropped rank's right neighbour.
        assert (dropped + 1) % nranks in exc.blocked
    assert raised


@settings(**SETTINGS)
@given(
    nranks=st.integers(min_value=1, max_value=8),
    weights=st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=8),
)
def test_step_accounting_exact(nranks, weights):
    """The scheduler's step counter equals the total yielded weight."""

    def app(ctx):
        for w in weights:
            yield from ctx.progress(w)
        return True

    res = run_app(app, nranks)
    assert res.steps == nranks * sum(weights)


@settings(**SETTINGS)
@given(
    nranks=st.integers(min_value=2, max_value=8),
    nmsgs=st.integers(min_value=1, max_value=12),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_fifo_order_preserved_under_interleaving(nranks, nmsgs, seed):
    """Messages between one pair arrive in send order regardless of how
    other ranks' traffic interleaves."""
    rng = np.random.default_rng(seed)
    noise = int(rng.integers(0, 5))

    def make(rank):
        def fiber():
            if rank == 0:
                for i in range(nmsgs):
                    for _ in range(noise):
                        yield Progress()
                    yield Send(1, 0, 1, 3, i.to_bytes(2, "little"))
                return None
            if rank == 1:
                seen = []
                for _ in range(nmsgs):
                    payload = yield Recv(1, 0, 1, 3)
                    seen.append(int.from_bytes(payload, "little"))
                return seen
            for _ in range(noise):
                yield Progress()
            return None

        return fiber

    fibers = [Fiber(r, make(r)()) for r in range(nranks)]
    results = Scheduler(fibers).run()
    assert results[1] == list(range(nmsgs))
