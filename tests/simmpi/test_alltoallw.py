"""Alltoallw correctness and fault-surface tests."""

import numpy as np
import pytest

from repro.injection import FaultInjector, FaultSpec, InjectionPoint, param_kind
from repro.profiling import CommProfiler
from repro.simmpi import MPIError, SegmentationFault, run_app

SIZES = [1, 2, 3, 4, 6]


def mixed_type_app(ctx):
    """Each peer pair exchanges a different datatype (INT to even peers,
    DOUBLE to odd) — the alltoallw use case."""
    n = ctx.size
    # Layout: per peer, 2 elements; byte displacements reflect the type.
    stypes = [ctx.INT if j % 2 == 0 else ctx.DOUBLE for j in range(n)]
    rtypes = [ctx.INT if ctx.rank % 2 == 0 else ctx.DOUBLE for _ in range(n)]
    sizes = [4 if j % 2 == 0 else 8 for j in range(n)]
    my_in_size = 4 if ctx.rank % 2 == 0 else 8

    sbuf = ctx.alloc(sum(sizes) * 2, ctx.BYTE, "w.sbuf")
    rbuf = ctx.alloc(my_in_size * 2 * n, ctx.BYTE, "w.rbuf")
    sdispls = np.zeros(n, dtype=np.int64)
    for j in range(1, n):
        sdispls[j] = sdispls[j - 1] + 2 * sizes[j - 1]
    rdispls = np.arange(n, dtype=np.int64) * (2 * my_in_size)
    counts = np.full(n, 2, dtype=np.int64)

    # Fill each peer's block with rank-tagged values in its datatype.
    for j in range(n):
        raw = sbuf.view[int(sdispls[j]) : int(sdispls[j]) + 2 * sizes[j]]
        if j % 2 == 0:
            raw.view(np.int32)[:] = [ctx.rank * 100 + j, ctx.rank * 100 + j + 50]
        else:
            raw.view(np.float64)[:] = [ctx.rank + 0.25, j + 0.5]

    yield from ctx.Alltoallw(
        sbuf.addr, counts, sdispls, stypes, rbuf.addr, counts, rdispls, rtypes, ctx.WORLD
    )

    out = []
    for src in range(n):
        raw = rbuf.view[int(rdispls[src]) : int(rdispls[src]) + 2 * my_in_size]
        if ctx.rank % 2 == 0:
            out.append([int(v) for v in raw.view(np.int32)])
        else:
            out.append([float(v) for v in raw.view(np.float64)])
    return out


@pytest.mark.parametrize("nranks", SIZES)
def test_alltoallw_mixed_types(nranks):
    results = run_app(mixed_type_app, nranks).results
    for rank in range(nranks):
        for src in range(nranks):
            got = results[rank][src]
            if rank % 2 == 0:
                assert got == [src * 100 + rank, src * 100 + rank + 50]
            else:
                assert got == pytest.approx([src + 0.25, rank + 0.5])


def test_alltoallw_is_profiled():
    prof = CommProfiler()
    run_app(mixed_type_app, 3, instruments=[prof])
    assert prof.profile.collective_mix() == {"Alltoallw": 3}


def test_alltoallw_type_mismatch_truncates():
    """A peer pair disagreeing on the element size → truncation error."""

    def app(ctx):
        n = ctx.size
        counts = np.full(n, 2, dtype=np.int64)
        displs = np.arange(n, dtype=np.int64) * 16
        big = [ctx.DOUBLE] * n
        small = [ctx.INT] * n
        sbuf = ctx.alloc(16 * n, ctx.BYTE)
        rbuf = ctx.alloc(16 * n, ctx.BYTE)
        stypes = big if ctx.rank == 0 else small
        yield from ctx.Alltoallw(
            sbuf.addr, counts, displs, stypes, rbuf.addr, counts, displs, small, ctx.WORLD
        )

    with pytest.raises(MPIError) as exc:
        run_app(app, 2)
    assert exc.value.errclass == "MPI_ERR_TRUNCATE"


def _first_point(nranks=2):
    prof = CommProfiler()
    run_app(mixed_type_app, nranks, instruments=[prof])
    call = next(c for c in prof.profile.calls if c.rank == 0)
    return InjectionPoint(0, call.name, call.site, call.invocation)


class TestAlltoallwInjection:
    def test_handle_vector_param_kind(self):
        assert param_kind("sendtypes") == "handle_vector"
        assert param_kind("recvtypes") == "handle_vector"

    def test_flipped_type_handle_segfaults(self):
        point = _first_point()
        spec = FaultSpec(point, "sendtypes", 40)  # element 0, bit 40
        injector = FaultInjector(spec, np.random.default_rng(0))
        with pytest.raises(SegmentationFault):
            run_app(mixed_type_app, 2, instruments=[injector])
        assert injector.fired and injector.record.kind == "handle_vector"

    def test_buffer_fault_on_alltoallw(self):
        point = _first_point()
        spec = FaultSpec(point, "sendbuf", 3)
        injector = FaultInjector(spec, np.random.default_rng(0))
        res = run_app(mixed_type_app, 2, instruments=[injector])
        assert injector.fired
        assert injector.record.extent_bytes > 0

    def test_byte_displacement_fault_reaches_memory(self):
        from repro.simmpi import SimMPIError

        point = _first_point()
        # Bit 30 of sdispls[0]: the byte displacement jumps ~1 GiB, far
        # outside the arena.
        injector = FaultInjector(FaultSpec(point, "sdispls", 30), np.random.default_rng(0))
        with pytest.raises(SimMPIError):
            run_app(mixed_type_app, 2, instruments=[injector])
        assert injector.fired
