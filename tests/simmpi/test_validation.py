"""Parameter-validation (MPI_ERR surface) tests."""

import pytest

from repro.simmpi import MPIError, SegmentationFault, run_app


def run1(app_fn, nranks=2):
    return run_app(app_fn, nranks)


def test_negative_count_is_mpi_err():
    def app(ctx):
        b = ctx.alloc(4, ctx.DOUBLE)
        yield from ctx.Bcast(b.addr, -1, ctx.DOUBLE, 0, ctx.WORLD)

    with pytest.raises(MPIError) as exc:
        run1(app)
    assert exc.value.errclass == "MPI_ERR_COUNT"


def test_root_out_of_range_is_mpi_err():
    def app(ctx):
        b = ctx.alloc(4, ctx.DOUBLE)
        yield from ctx.Bcast(b.addr, 4, ctx.DOUBLE, 9, ctx.WORLD)

    with pytest.raises(MPIError) as exc:
        run1(app)
    assert exc.value.errclass == "MPI_ERR_ROOT"


def test_negative_root_is_mpi_err():
    def app(ctx):
        b = ctx.alloc(4, ctx.DOUBLE)
        yield from ctx.Bcast(b.addr, 4, ctx.DOUBLE, -1, ctx.WORLD)

    with pytest.raises(MPIError):
        run1(app)


def test_corrupted_datatype_inside_object_is_mpi_err():
    def app(ctx):
        b = ctx.alloc(4, ctx.DOUBLE)
        yield from ctx.Bcast(b.addr, 4, ctx.DOUBLE + 8, 0, ctx.WORLD)

    with pytest.raises(MPIError) as exc:
        run1(app)
    assert "TYPE" in exc.value.errclass


def test_wild_datatype_pointer_is_segfault():
    def app(ctx):
        b = ctx.alloc(4, ctx.DOUBLE)
        yield from ctx.Bcast(b.addr, 4, ctx.DOUBLE ^ (1 << 45), 0, ctx.WORLD)

    with pytest.raises(SegmentationFault):
        run1(app)


def test_wild_comm_pointer_is_segfault():
    def app(ctx):
        b = ctx.alloc(4, ctx.DOUBLE)
        yield from ctx.Bcast(b.addr, 4, ctx.DOUBLE, 0, ctx.WORLD ^ (1 << 44))

    with pytest.raises(SegmentationFault):
        run1(app)


def test_invalid_op_is_mpi_err_or_segfault():
    def app(ctx):
        s = ctx.alloc(1, ctx.DOUBLE)
        r = ctx.alloc(1, ctx.DOUBLE)
        yield from ctx.Allreduce(s.addr, r.addr, 1, ctx.DOUBLE, ctx.SUM + 16, ctx.WORLD)

    with pytest.raises(MPIError):
        run1(app)


def test_negative_vector_count_is_mpi_err():
    import numpy as np

    def app(ctx):
        n = ctx.size
        s = ctx.alloc(n, ctx.INT)
        r = ctx.alloc(n, ctx.INT)
        counts = np.ones(n, dtype=np.int64)
        counts[0] = -5
        displs = np.arange(n, dtype=np.int64)
        yield from ctx.Alltoallv(s.addr, counts, displs, r.addr, counts, displs, ctx.INT, ctx.WORLD)

    with pytest.raises(MPIError) as exc:
        run1(app)
    assert exc.value.errclass == "MPI_ERR_COUNT"


def test_oversized_count_is_segfault_not_mpi_err():
    """Huge positive counts pass validation and die in memory access —
    the mechanism behind the paper's SEG_FAULT-heavy count faults."""

    def app(ctx):
        b = ctx.alloc(4, ctx.DOUBLE)
        yield from ctx.Bcast(b.addr, 1 << 40, ctx.DOUBLE, 0, ctx.WORLD)

    with pytest.raises(SegmentationFault):
        run1(app)


def test_truncation_is_mpi_err():
    """Receiver's buffer smaller than the incoming message."""

    def app(ctx):
        b = ctx.alloc(16, ctx.DOUBLE)
        count = 16 if ctx.rank == 0 else 2
        yield from ctx.Bcast(b.addr, count, ctx.DOUBLE, 0, ctx.WORLD)

    with pytest.raises(MPIError) as exc:
        run1(app)
    assert exc.value.errclass == "MPI_ERR_TRUNCATE"
