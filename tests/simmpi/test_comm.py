"""Communicator and CommFactory tests."""

import pytest

from repro.simmpi.comm import CommFactory
from repro.simmpi.errors import MPIError


@pytest.fixture()
def factory():
    return CommFactory()


def test_world_comm(factory):
    world, handle = factory.world(8)
    assert world.size == 8
    assert world.group == tuple(range(8))
    assert world.name == "MPI_COMM_WORLD"
    assert factory.space.resolve(handle) is world


def test_rank_mapping(factory):
    comm, _ = factory.create((3, 5, 9), name="sub")
    assert comm.rank_of(5) == 1
    assert comm.world_rank(2) == 9
    assert comm.contains(3)
    assert not comm.contains(4)


def test_rank_of_nonmember_raises(factory):
    comm, _ = factory.create((0, 1))
    with pytest.raises(MPIError):
        comm.rank_of(7)


def test_world_rank_out_of_range(factory):
    comm, _ = factory.create((0, 1))
    with pytest.raises(MPIError):
        comm.world_rank(5)


def test_context_ids_are_unique(factory):
    a, _ = factory.create((0,))
    b, _ = factory.create((0,))
    assert a.context_id != b.context_id


def test_duplicate_ranks_rejected(factory):
    with pytest.raises(ValueError):
        factory.create((0, 0, 1))


def test_split_partitions_by_colour(factory):
    parent, _ = factory.world(6)
    assignments = {r: r % 2 for r in range(6)}
    result = factory.split(parent, assignments)
    assert set(result) == {0, 1}
    even, _ = result[0]
    odd, _ = result[1]
    assert even.group == (0, 2, 4)
    assert odd.group == (1, 3, 5)


def test_split_skips_unassigned_ranks(factory):
    parent, _ = factory.world(4)
    result = factory.split(parent, {0: 0, 2: 0})
    comm, _ = result[0]
    assert comm.group == (0, 2)
