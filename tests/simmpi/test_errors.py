"""Error-taxonomy unit tests."""


from repro.simmpi import (
    AppError,
    DeadlockError,
    FiberCrashed,
    MPIError,
    SegmentationFault,
    SimMPIError,
    StepBudgetExceeded,
)


def test_hierarchy():
    for cls in (MPIError, SegmentationFault, AppError, DeadlockError, StepBudgetExceeded, FiberCrashed):
        assert issubclass(cls, SimMPIError)


def test_mpi_error_message_and_fields():
    e = MPIError("MPI_ERR_COUNT", "negative count", rank=3)
    assert e.errclass == "MPI_ERR_COUNT"
    assert e.rank == 3
    assert "MPI_ERR_COUNT" in str(e) and "rank 3" in str(e)


def test_segfault_reports_range():
    e = SegmentationFault(0x1000, 16, rank=1)
    assert "0x1000" in str(e)
    assert e.addr == 0x1000 and e.nbytes == 16


def test_deadlock_reports_blocked_ranks():
    e = DeadlockError({2: "recv(...)", 0: "recv(...)"})
    assert "rank 0" in str(e) and "rank 2" in str(e)
    assert e.blocked == {2: "recv(...)", 0: "recv(...)"}


def test_deadlock_empty():
    assert "deadlock" in str(DeadlockError())


def test_step_budget_message():
    e = StepBudgetExceeded(12345)
    assert "12345" in str(e)
    assert e.budget == 12345


def test_fibercrashed_wraps_original():
    orig = KeyError("missing")
    e = FiberCrashed(5, orig)
    assert e.original is orig
    assert e.rank == 5
    assert "KeyError" in str(e)


def test_app_error_rank_suffix():
    assert "(rank 2)" in str(AppError("boom", rank=2))
    assert "(rank" not in str(AppError("boom"))
