"""Reduction-op registry unit tests."""

import numpy as np
import pytest

from repro.simmpi.datatypes import make_datatype_space
from repro.simmpi.errors import MPIError
from repro.simmpi.ops import make_op_space


@pytest.fixture()
def env():
    ops, op_names = make_op_space()
    types, type_names = make_datatype_space()
    return ops, op_names, types, type_names


def _apply(env, op_name, a, b, dtype_name="MPI_DOUBLE"):
    ops, op_names, types, type_names = env
    op = ops.resolve(op_names[op_name])
    dt = types.resolve(type_names[dtype_name])
    av = np.asarray(a, dtype=dt.np_dtype)
    bv = np.asarray(b, dtype=dt.np_dtype)
    out = op.apply(av.tobytes(), bv.tobytes(), dt)
    return np.frombuffer(out, dtype=dt.np_dtype)


def test_sum(env):
    assert list(_apply(env, "MPI_SUM", [1.0, 2.0], [3.0, 4.0])) == [4.0, 6.0]


def test_prod(env):
    assert list(_apply(env, "MPI_PROD", [2.0, 3.0], [4.0, 5.0])) == [8.0, 15.0]


def test_max_min(env):
    assert list(_apply(env, "MPI_MAX", [1.0, 9.0], [5.0, 2.0])) == [5.0, 9.0]
    assert list(_apply(env, "MPI_MIN", [1.0, 9.0], [5.0, 2.0])) == [1.0, 2.0]


def test_logical_ops_on_ints(env):
    assert list(_apply(env, "MPI_LAND", [1, 0, 2], [1, 1, 0], "MPI_INT")) == [1, 0, 0]
    assert list(_apply(env, "MPI_LOR", [1, 0, 0], [0, 0, 2], "MPI_INT")) == [1, 0, 1]


def test_bitwise_ops_on_ints(env):
    assert list(_apply(env, "MPI_BAND", [0b110], [0b011], "MPI_INT")) == [0b010]
    assert list(_apply(env, "MPI_BOR", [0b110], [0b011], "MPI_INT")) == [0b111]
    assert list(_apply(env, "MPI_BXOR", [0b110], [0b011], "MPI_INT")) == [0b101]


def test_bitwise_on_float_is_mpi_err(env):
    with pytest.raises(MPIError) as exc:
        _apply(env, "MPI_BAND", [1.0], [2.0], "MPI_DOUBLE")
    assert "MPI_ERR_OP" in str(exc.value)


def test_mismatched_lengths_truncate_to_min(env):
    out = _apply(env, "MPI_SUM", [1.0, 2.0, 3.0], [10.0])
    assert list(out) == [11.0]


def test_sum_on_complex(env):
    out = _apply(env, "MPI_SUM", [1 + 2j], [3 + 4j], "MPI_DOUBLE_COMPLEX")
    assert out[0] == 4 + 6j
