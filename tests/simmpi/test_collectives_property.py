"""Property-based collective tests (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simmpi import run_app

SETTINGS = dict(max_examples=30, deadline=None)


@settings(**SETTINGS)
@given(
    nranks=st.integers(min_value=1, max_value=9),
    count=st.integers(min_value=1, max_value=32),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_allreduce_sum_matches_numpy(nranks, count, seed):
    data = np.random.default_rng(seed).standard_normal((nranks, count))

    def app(ctx):
        s = ctx.alloc(count, ctx.DOUBLE)
        r = ctx.alloc(count, ctx.DOUBLE)
        s.view[:] = data[ctx.rank]
        yield from ctx.Allreduce(s.addr, r.addr, count, ctx.DOUBLE, ctx.SUM, ctx.WORLD)
        return r.view.copy()

    results = run_app(app, nranks).results
    expect = data.sum(axis=0)
    for res in results:
        np.testing.assert_allclose(res, expect, rtol=1e-12, atol=1e-12)
    # Allreduce invariant: every rank holds the identical result.
    for res in results[1:]:
        np.testing.assert_array_equal(res, results[0])


@settings(**SETTINGS)
@given(
    nranks=st.integers(min_value=1, max_value=8),
    root=st.integers(min_value=0, max_value=7),
    count=st.integers(min_value=1, max_value=16),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_bcast_from_any_root(nranks, root, count, seed):
    root %= nranks
    payload = np.random.default_rng(seed).standard_normal(count)

    def app(ctx):
        buf = ctx.alloc(count, ctx.DOUBLE)
        if ctx.rank == root:
            buf.view[:] = payload
        yield from ctx.Bcast(buf.addr, count, ctx.DOUBLE, root, ctx.WORLD)
        return buf.view.copy()

    for res in run_app(app, nranks).results:
        np.testing.assert_array_equal(res, payload)


@settings(**SETTINGS)
@given(
    nranks=st.integers(min_value=1, max_value=8),
    root=st.integers(min_value=0, max_value=7),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_reduce_max_matches_numpy(nranks, root, seed):
    root %= nranks
    data = np.random.default_rng(seed).standard_normal((nranks, 8))

    def app(ctx):
        s = ctx.alloc(8, ctx.DOUBLE)
        r = ctx.alloc(8, ctx.DOUBLE)
        s.view[:] = data[ctx.rank]
        yield from ctx.Reduce(s.addr, r.addr, 8, ctx.DOUBLE, ctx.MAX, root, ctx.WORLD)
        return r.view.copy() if ctx.rank == root else None

    results = run_app(app, nranks).results
    np.testing.assert_array_equal(results[root], data.max(axis=0))


@settings(**SETTINGS)
@given(
    nranks=st.integers(min_value=1, max_value=8),
    blocks=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_allgather_alltoall_duality(nranks, blocks, seed):
    """Alltoall of replicated blocks equals allgather."""
    data = np.random.default_rng(seed).standard_normal((nranks, blocks))

    def app(ctx):
        n = ctx.size
        sg = ctx.alloc(blocks, ctx.DOUBLE)
        rg = ctx.alloc(blocks * n, ctx.DOUBLE)
        sg.view[:] = data[ctx.rank]
        yield from ctx.Allgather(sg.addr, blocks, rg.addr, blocks, ctx.DOUBLE, ctx.WORLD)

        sa = ctx.alloc(blocks * n, ctx.DOUBLE)
        ra = ctx.alloc(blocks * n, ctx.DOUBLE)
        sa.view[:] = np.tile(data[ctx.rank], n)
        yield from ctx.Alltoall(sa.addr, blocks, ra.addr, blocks, ctx.DOUBLE, ctx.WORLD)
        return rg.view.copy(), ra.view.copy()

    for rg, ra in run_app(app, nranks).results:
        np.testing.assert_array_equal(rg, ra)


@settings(**SETTINGS)
@given(
    nranks=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_reduce_then_bcast_equals_allreduce(nranks, seed):
    data = np.random.default_rng(seed).standard_normal((nranks, 4))

    def app(ctx):
        s = ctx.alloc(4, ctx.DOUBLE)
        r1 = ctx.alloc(4, ctx.DOUBLE)
        r2 = ctx.alloc(4, ctx.DOUBLE)
        s.view[:] = data[ctx.rank]
        yield from ctx.Allreduce(s.addr, r1.addr, 4, ctx.DOUBLE, ctx.SUM, ctx.WORLD)
        yield from ctx.Reduce(s.addr, r2.addr, 4, ctx.DOUBLE, ctx.SUM, 0, ctx.WORLD)
        yield from ctx.Bcast(r2.addr, 4, ctx.DOUBLE, 0, ctx.WORLD)
        return r1.view.copy(), r2.view.copy()

    for r1, r2 in run_app(app, nranks).results:
        np.testing.assert_allclose(r1, r2, rtol=1e-12)


@settings(**SETTINGS)
@given(
    nranks=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_alltoall_is_transpose(nranks, seed):
    matrix = np.random.default_rng(seed).integers(0, 1000, size=(nranks, nranks))

    def app(ctx):
        s = ctx.alloc(ctx.size, ctx.LONG)
        r = ctx.alloc(ctx.size, ctx.LONG)
        s.view[:] = matrix[ctx.rank]
        yield from ctx.Alltoall(s.addr, 1, r.addr, 1, ctx.LONG, ctx.WORLD)
        return r.view.copy()

    rows = run_app(app, nranks).results
    np.testing.assert_array_equal(np.vstack(rows), matrix.T)


@pytest.mark.parametrize("dtype_name", ["INT", "LONG", "FLOAT", "DOUBLE"])
def test_allreduce_across_datatypes(dtype_name):
    def app(ctx):
        dt = getattr(ctx, dtype_name)
        s = ctx.alloc(3, dt)
        r = ctx.alloc(3, dt)
        s.view[:] = [1, 2, 3]
        yield from ctx.Allreduce(s.addr, r.addr, 3, dt, ctx.SUM, ctx.WORLD)
        return list(r.view)

    results = run_app(app, 5).results
    assert results[0] == [5, 10, 15]
