"""Collective correctness against numpy references, at several sizes."""

import numpy as np
import pytest

from repro.simmpi import run_app

SIZES = [1, 2, 3, 4, 7, 8, 16]


def run(app_fn, nranks):
    return run_app(app_fn, nranks).results


@pytest.mark.parametrize("nranks", SIZES)
@pytest.mark.parametrize("root", [0, "last"])
def test_bcast(nranks, root):
    root = nranks - 1 if root == "last" else 0

    def app(ctx):
        buf = ctx.alloc(5, ctx.DOUBLE)
        if ctx.rank == root:
            buf.view[:] = [1.5, -2.0, 3.25, 0.0, 9.0]
        yield from ctx.Bcast(buf.addr, 5, ctx.DOUBLE, root, ctx.WORLD)
        return list(buf.view)

    for res in run(app, nranks):
        assert res == [1.5, -2.0, 3.25, 0.0, 9.0]


@pytest.mark.parametrize("nranks", SIZES)
def test_reduce_sum(nranks):
    def app(ctx):
        s = ctx.alloc(3, ctx.DOUBLE)
        r = ctx.alloc(3, ctx.DOUBLE)
        s.view[:] = [ctx.rank, 2 * ctx.rank, 1.0]
        yield from ctx.Reduce(s.addr, r.addr, 3, ctx.DOUBLE, ctx.SUM, 0, ctx.WORLD)
        return list(r.view) if ctx.rank == 0 else None

    results = run(app, nranks)
    total = sum(range(nranks))
    assert results[0] == [total, 2 * total, nranks]


@pytest.mark.parametrize("nranks", SIZES)
@pytest.mark.parametrize("opname,reducer", [("SUM", np.sum), ("MAX", np.max), ("MIN", np.min), ("PROD", np.prod)])
def test_allreduce_ops(nranks, opname, reducer):
    def app(ctx):
        s = ctx.alloc(4, ctx.DOUBLE)
        r = ctx.alloc(4, ctx.DOUBLE)
        s.view[:] = [ctx.rank + 1, ctx.rank * 0.5, -float(ctx.rank), 2.0]
        op = getattr(ctx, opname)
        yield from ctx.Allreduce(s.addr, r.addr, 4, ctx.DOUBLE, op, ctx.WORLD)
        return list(r.view)

    contributions = np.array(
        [[r + 1, r * 0.5, -float(r), 2.0] for r in range(nranks)]
    )
    expect = list(reducer(contributions, axis=0))
    for res in run(app, nranks):
        assert res == pytest.approx(expect)


@pytest.mark.parametrize("nranks", SIZES)
def test_gather(nranks):
    def app(ctx):
        s = ctx.alloc(2, ctx.INT)
        r = ctx.alloc(2 * ctx.size, ctx.INT)
        s.view[:] = [ctx.rank, ctx.rank * 10]
        yield from ctx.Gather(s.addr, 2, r.addr, 2, ctx.INT, 0, ctx.WORLD)
        return list(r.view) if ctx.rank == 0 else None

    results = run(app, nranks)
    expect = [v for r in range(nranks) for v in (r, r * 10)]
    assert results[0] == expect


@pytest.mark.parametrize("nranks", SIZES)
def test_scatter(nranks):
    def app(ctx):
        s = ctx.alloc(3 * ctx.size, ctx.INT)
        r = ctx.alloc(3, ctx.INT)
        if ctx.rank == 0:
            s.view[:] = np.arange(3 * ctx.size)
        yield from ctx.Scatter(s.addr, 3, r.addr, 3, ctx.INT, 0, ctx.WORLD)
        return list(r.view)

    for rank, res in enumerate(run(app, nranks)):
        assert res == [3 * rank, 3 * rank + 1, 3 * rank + 2]


@pytest.mark.parametrize("nranks", SIZES)
def test_allgather(nranks):
    def app(ctx):
        s = ctx.alloc(2, ctx.DOUBLE)
        r = ctx.alloc(2 * ctx.size, ctx.DOUBLE)
        s.view[:] = [float(ctx.rank), float(-ctx.rank)]
        yield from ctx.Allgather(s.addr, 2, r.addr, 2, ctx.DOUBLE, ctx.WORLD)
        return list(r.view)

    expect = [v for r in range(nranks) for v in (float(r), float(-r))]
    for res in run(app, nranks):
        assert res == expect


@pytest.mark.parametrize("nranks", SIZES)
def test_alltoall(nranks):
    def app(ctx):
        s = ctx.alloc(ctx.size, ctx.INT)
        r = ctx.alloc(ctx.size, ctx.INT)
        s.view[:] = [ctx.rank * 100 + j for j in range(ctx.size)]
        yield from ctx.Alltoall(s.addr, 1, r.addr, 1, ctx.INT, ctx.WORLD)
        return list(r.view)

    for rank, res in enumerate(run(app, nranks)):
        assert res == [src * 100 + rank for src in range(nranks)]


@pytest.mark.parametrize("nranks", SIZES)
def test_alltoallv(nranks):
    """Rank r sends r+1 copies of its id to every peer."""

    def app(ctx):
        n = ctx.size
        mycount = ctx.rank + 1
        s = ctx.alloc(mycount * n, ctx.INT)
        s.view[:] = ctx.rank
        total_in = sum(src + 1 for src in range(n))
        r = ctx.alloc(total_in, ctx.INT)
        sendcounts = np.full(n, mycount, dtype=np.int64)
        sdispls = np.arange(n, dtype=np.int64) * mycount
        recvcounts = np.array([src + 1 for src in range(n)], dtype=np.int64)
        rdispls = np.zeros(n, dtype=np.int64)
        rdispls[1:] = np.cumsum(recvcounts)[:-1]
        yield from ctx.Alltoallv(
            s.addr, sendcounts, sdispls, r.addr, recvcounts, rdispls, ctx.INT, ctx.WORLD
        )
        return list(r.view)

    for res in run(app, nranks):
        expect = [src for src in range(nranks) for _ in range(src + 1)]
        assert res == expect


@pytest.mark.parametrize("nranks", SIZES)
def test_barrier_completes(nranks):
    def app(ctx):
        yield from ctx.Barrier(ctx.WORLD)
        yield from ctx.Barrier(ctx.WORLD)
        return True

    assert all(run(app, nranks))


def test_allreduce_on_subcommunicator():
    def app(ctx):
        sub = yield from ctx.Comm_split(ctx.WORLD, ctx.rank % 2)
        s = ctx.alloc(1, ctx.INT)
        r = ctx.alloc(1, ctx.INT)
        s.view[0] = ctx.rank
        yield from ctx.Allreduce(s.addr, r.addr, 1, ctx.INT, ctx.SUM, sub)
        return int(r.view[0])

    results = run_app(app, 6).results
    assert results == [0 + 2 + 4, 1 + 3 + 5, 6, 9, 6, 9]


def test_comm_dup_isolates_traffic():
    def app(ctx):
        dup = yield from ctx.Comm_dup(ctx.WORLD)
        s = ctx.alloc(1, ctx.INT)
        r = ctx.alloc(1, ctx.INT)
        s.view[0] = 1
        yield from ctx.Allreduce(s.addr, r.addr, 1, ctx.INT, ctx.SUM, dup)
        return int(r.view[0])

    assert run_app(app, 4).results == [4, 4, 4, 4]


def test_sequential_collectives_do_not_interfere():
    def app(ctx):
        s = ctx.alloc(1, ctx.DOUBLE)
        r = ctx.alloc(1, ctx.DOUBLE)
        out = []
        for i in range(5):
            s.view[0] = float(ctx.rank + i)
            yield from ctx.Allreduce(s.addr, r.addr, 1, ctx.DOUBLE, ctx.SUM, ctx.WORLD)
            out.append(float(r.view[0]))
        return out

    n = 4
    results = run_app(app, n).results
    base = sum(range(n))
    assert results[0] == [base + n * i for i in range(5)]
