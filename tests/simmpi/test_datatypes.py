"""Datatype registry unit tests."""

import numpy as np
import pytest

from repro.simmpi.datatypes import Datatype, make_datatype_space
from repro.simmpi.errors import MPIError, SegmentationFault
from repro.simmpi.handles import OBJECT_EXTENT


@pytest.fixture()
def space():
    return make_datatype_space()


def test_all_basic_types_registered(space):
    reg, by_name = space
    assert len(reg) == len(by_name) == 10
    for name in ("MPI_INT", "MPI_DOUBLE", "MPI_LONG", "MPI_BYTE", "MPI_DOUBLE_COMPLEX"):
        assert name in by_name


def test_sizes_match_numpy(space):
    reg, by_name = space
    expect = {
        "MPI_CHAR": 1,
        "MPI_INT": 4,
        "MPI_LONG": 8,
        "MPI_FLOAT": 4,
        "MPI_DOUBLE": 8,
        "MPI_UNSIGNED": 4,
        "MPI_UNSIGNED_LONG": 8,
        "MPI_COMPLEX": 8,
        "MPI_DOUBLE_COMPLEX": 16,
        "MPI_BYTE": 1,
    }
    for name, size in expect.items():
        assert reg.resolve(by_name[name]).size == size


def test_resolve_exact_handle(space):
    reg, by_name = space
    dt = reg.resolve(by_name["MPI_DOUBLE"])
    assert dt.name == "MPI_DOUBLE"
    assert dt.np_dtype == np.dtype("f8")


def test_resolve_offset_handle_is_mpi_err(space):
    reg, by_name = space
    with pytest.raises(MPIError) as exc:
        reg.resolve(by_name["MPI_INT"] + 8)
    assert "MPI_ERR_TYPE" in str(exc.value)


def test_resolve_far_handle_is_segfault(space):
    reg, by_name = space
    with pytest.raises(SegmentationFault):
        reg.resolve(by_name["MPI_INT"] + (1 << 40))


def test_handles_are_object_extent_apart(space):
    reg, _ = space
    handles = reg.handles()
    deltas = {b - a for a, b in zip(handles, handles[1:])}
    assert deltas == {OBJECT_EXTENT}


def test_integer_float_classification(space):
    reg, by_name = space
    assert reg.resolve(by_name["MPI_INT"]).is_integer
    assert not reg.resolve(by_name["MPI_INT"]).is_float
    assert reg.resolve(by_name["MPI_DOUBLE"]).is_float
    assert reg.resolve(by_name["MPI_DOUBLE_COMPLEX"]).is_float


def test_datatype_is_frozen():
    dt = Datatype("X", np.dtype("i4"))
    with pytest.raises(AttributeError):
        dt.name = "Y"
