"""The composable fault-model layer, end to end.

Covers the model catalog contract, ``draw_spec`` byte-stability for the
default single-bit model, campaigns under every selectable model
(serial ↔ parallel ↔ stored), the snapshot engine's full-replay
fallback for non-single-site models, the per-test ``model`` column in
the store, and the TOOL_ERROR exclusion holding for model/scenario
specs.
"""

import sqlite3

import numpy as np
import pytest

from repro.apps import make_app
from repro.exec.checkpoint import campaign_digest
from repro.injection import (
    Campaign,
    FaultSpec,
    ModelSpec,
    SELECTABLE_MODELS,
    draw_spec,
    enumerate_points,
    parse_scenario,
)
from repro.injection.campaign import PointResult
from repro.injection.models import MODELS
from repro.injection.outcome import Outcome
from repro.injection.runner import TestResult as InjectionTestResult
from repro.injection.space import InjectionPoint
from repro.obs.metrics import MetricsRegistry
from repro.profiling import profile_application

SEED = 11
TESTS = 2


@pytest.fixture(scope="module")
def is_app():
    return make_app("is", "T")


@pytest.fixture(scope="module")
def is_profile(is_app):
    return profile_application(is_app)


@pytest.fixture(scope="module")
def is_points(is_profile):
    return enumerate_points(is_profile)[:3]


def signature(result):
    sig = []
    for point, pr in result.points.items():
        sig.append((
            point,
            [
                (
                    t.spec.point, getattr(t.spec, "model", "bitflip"),
                    t.spec.param, t.outcome,
                    None if t.record is None else (t.record.kind, t.record.skipped),
                )
                for t in pr.tests
            ],
            pr.error_rate,
        ))
    return sig


class TestCatalog:
    def test_every_model_is_registered_consistently(self):
        for name, model in MODELS.items():
            assert model.name == name
            assert model.kind in ("param", "wire", "rank", "scenario")
            assert callable(model.builder)

    def test_scenario_is_not_directly_selectable(self):
        assert "scenario" in MODELS
        assert "scenario" not in SELECTABLE_MODELS
        assert set(SELECTABLE_MODELS) == set(MODELS) - {"scenario"}

    def test_only_single_site_parameter_models_are_snapshot_safe(self):
        safe = {n for n, m in MODELS.items() if m.snapshot_safe}
        assert safe == {"bitflip", "multibit"}

    def test_only_the_paper_model_is_preclassifiable(self):
        assert [n for n, m in MODELS.items() if m.preclassifiable] == ["bitflip"]


class TestDrawSpec:
    """``draw_spec`` is the one shared RNG contract for every model."""

    def test_bitflip_draw_is_byte_stable(self, is_points):
        """The default model must produce the exact historical FaultSpec
        (same type, same pickle) so digests and checkpoints are stable."""
        point = is_points[0]
        a = draw_spec(point, np.random.default_rng(3), policy="all")
        b = FaultSpec(point, a.param, None)
        assert type(a) is FaultSpec
        assert a == b
        assert getattr(a, "model") == "bitflip"

    @pytest.mark.parametrize("model", [m for m in SELECTABLE_MODELS if m != "bitflip"])
    def test_model_draws_are_deterministic(self, is_points, model):
        point = is_points[0]
        a = draw_spec(point, np.random.default_rng(5), policy="all", model=model)
        b = draw_spec(point, np.random.default_rng(5), policy="all", model=model)
        assert a == b
        assert isinstance(a, ModelSpec) and a.model == model


class TestModelCampaigns:
    @pytest.mark.parametrize("model", [m for m in SELECTABLE_MODELS if m != "bitflip"])
    def test_every_model_runs_end_to_end(self, is_app, is_profile, is_points, model):
        result = Campaign(
            is_app, is_profile, tests_per_point=TESTS, param_policy="all",
            seed=SEED, fault_model=model,
        ).run(is_points[:2])
        assert result.n_tests() == 2 * TESTS
        # Every verdict is a Table-I application response — never a
        # harness error leaking out of the delivery layer.
        assert result.tool_error_count() == 0

    def test_serial_parallel_identical_for_wire_model(self, is_app, is_profile, is_points):
        runs = [
            Campaign(
                is_app, is_profile, tests_per_point=TESTS, param_policy="all",
                seed=SEED, jobs=jobs, fault_model="msg_corrupt",
            ).run(is_points)
            for jobs in (1, 2)
        ]
        assert signature(runs[0]) == signature(runs[1])

    def test_scenario_campaign_runs_on_anchor_point(self, is_app, is_profile):
        scen = parse_scenario({
            "version": 1, "name": "t-drop",
            "tasks": [{"t": 0, "model": "msg_drop", "rank": 0}],
        })
        result = Campaign(
            is_app, is_profile, tests_per_point=TESTS, seed=SEED, scenario=scen,
        ).run([scen.anchor_point()])
        hist = result.outcome_histogram()
        assert hist[Outcome.INF_LOOP] == TESTS  # starved receivers hang

    def test_unknown_model_rejected(self, is_app, is_profile):
        with pytest.raises(ValueError, match="unknown fault model"):
            Campaign(is_app, is_profile, fault_model="bogus")
        with pytest.raises(ValueError, match="unknown fault model"):
            Campaign(is_app, is_profile, fault_model="scenario")

    def test_scenario_and_model_mutually_exclusive(self, is_app, is_profile):
        scen = parse_scenario({
            "version": 1, "name": "x",
            "tasks": [{"t": 0, "model": "msg_drop", "rank": 0}],
        })
        with pytest.raises(ValueError, match="mutually exclusive"):
            Campaign(is_app, is_profile, fault_model="msg_drop", scenario=scen)

    def test_preclassifier_declines_non_bitflip_models(self, is_app, is_profile):
        with pytest.raises(ValueError, match="single-bit"):
            Campaign(is_app, is_profile, fault_model="multibit", preclassifier=object())


class TestSnapshotFallback:
    """Non-single-site models must fall back to full replays — and the
    fallback must be invisible in the results."""

    def test_wire_campaign_identical_with_and_without_snapshot(
        self, is_app, is_profile, is_points
    ):
        metrics = MetricsRegistry()
        snap = Campaign(
            is_app, is_profile, tests_per_point=TESTS, param_policy="all",
            seed=SEED, fault_model="msg_drop", snapshot=True, metrics=metrics,
        ).run(is_points[:2])
        full = Campaign(
            is_app, is_profile, tests_per_point=TESTS, param_policy="all",
            seed=SEED, fault_model="msg_drop", snapshot=False,
        ).run(is_points[:2])
        assert signature(snap) == signature(full)
        # Every test was declined by the engine, not silently forked.
        counters = metrics.to_dict()["counters"]
        assert counters.get("snapshot.fallback_tests", 0) == 2 * TESTS

    def test_multibit_is_snapshot_served(self, is_app, is_profile, is_points):
        metrics = MetricsRegistry()
        Campaign(
            is_app, is_profile, tests_per_point=TESTS, param_policy="all",
            seed=SEED, fault_model="multibit", snapshot=True, metrics=metrics,
        ).run(is_points[:1])
        counters = metrics.to_dict()["counters"]
        assert counters.get("snapshot.fallback_tests", 0) == 0


class TestStore:
    def test_model_recorded_per_test(self, tmp_path, is_app, is_profile, is_points):
        db = tmp_path / "c.sqlite"
        Campaign(
            is_app, is_profile, tests_per_point=TESTS, param_policy="all",
            seed=SEED, fault_model="msg_corrupt", db_path=str(db),
        ).run(is_points[:2])
        conn = sqlite3.connect(db)
        models = dict(
            conn.execute("SELECT model, COUNT(*) FROM results GROUP BY model")
        )
        conn.close()
        assert models == {"msg_corrupt": 2 * TESTS}

    def test_resumed_db_campaign_matches_serial(self, tmp_path, is_app, is_profile, is_points):
        db = tmp_path / "c.sqlite"
        kwargs = dict(
            tests_per_point=TESTS, param_policy="all", seed=SEED,
            fault_model="msg_corrupt",
        )
        first = Campaign(is_app, is_profile, db_path=str(db), **kwargs).run(is_points)
        resumed = Campaign(
            is_app, is_profile, db_path=str(db), resume=True, **kwargs
        ).run(is_points)
        serial = Campaign(is_app, is_profile, **kwargs).run(is_points)
        assert signature(first) == signature(resumed) == signature(serial)


class TestDigest:
    """Default campaigns digest exactly as before the model layer."""

    def test_default_model_is_omitted(self, is_app, is_points):
        base = campaign_digest(is_app, SEED, TESTS, "all", TESTS, list(is_points))
        explicit = campaign_digest(
            is_app, SEED, TESTS, "all", TESTS, list(is_points), fault_model="bitflip"
        )
        assert base == explicit

    def test_model_and_scenario_change_the_digest(self, is_app, is_points):
        base = campaign_digest(is_app, SEED, TESTS, "all", TESTS, list(is_points))
        wire = campaign_digest(
            is_app, SEED, TESTS, "all", TESTS, list(is_points), fault_model="msg_drop"
        )
        scen = campaign_digest(
            is_app, SEED, TESTS, "all", TESTS, list(is_points), scenario_fp="ab" * 8
        )
        assert len({base, wire, scen}) == 3


class TestToolErrorExclusion:
    """The harness-verdict exclusion holds for model and scenario specs."""

    def test_error_rate_excludes_tool_errors_for_model_specs(self):
        point = InjectionPoint(0, "Scenario", "scenario:x", 0)
        pr = PointResult(point)
        spec = ModelSpec(point, "msg_drop", param="payload")
        for outcome in (Outcome.INF_LOOP, Outcome.SUCCESS, Outcome.TOOL_ERROR):
            pr.add(InjectionTestResult(spec, outcome, None))
        assert pr.n_tool_errors == 1
        assert pr.error_rate == pytest.approx(1 / 2)  # not 1/3, not 2/3
