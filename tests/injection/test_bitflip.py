"""Bit-flip primitive tests (unit + hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.injection import flip_array_element, flip_int32, flip_int64, random_buffer_bit


def test_flip_int32_basic():
    assert flip_int32(0, 0) == 1
    assert flip_int32(1, 0) == 0
    assert flip_int32(0, 5) == 32


def test_flip_int32_sign_bit_goes_negative():
    assert flip_int32(0, 31) == -(2**31)
    assert flip_int32(100, 31) < 0


def test_flip_int32_rejects_out_of_range_bit():
    with pytest.raises(ValueError):
        flip_int32(0, 32)
    with pytest.raises(ValueError):
        flip_int32(0, -1)


def test_flip_int64_high_bits():
    v = flip_int64(0x7F4A_0000_0000, 44)
    assert v != 0x7F4A_0000_0000
    assert flip_int64(v, 44) == 0x7F4A_0000_0000


def test_flip_int64_rejects_out_of_range():
    with pytest.raises(ValueError):
        flip_int64(0, 64)


@settings(max_examples=100, deadline=None)
@given(value=st.integers(min_value=-(2**31), max_value=2**31 - 1), bit=st.integers(0, 31))
def test_flip_int32_is_involution(value, bit):
    assert flip_int32(flip_int32(value, bit), bit) == value


@settings(max_examples=100, deadline=None)
@given(value=st.integers(min_value=0, max_value=2**63 - 1), bit=st.integers(0, 63))
def test_flip_int64_is_involution(value, bit):
    assert flip_int64(flip_int64(value, bit), bit) == value


@settings(max_examples=100, deadline=None)
@given(value=st.integers(min_value=-(2**31), max_value=2**31 - 1), bit=st.integers(0, 30))
def test_flip_changes_value_by_power_of_two(value, bit):
    assert abs(flip_int32(value, bit) - value) == 2**bit


def test_flip_array_element():
    arr = np.array([0, 10, 20], dtype=np.int64)
    flip_array_element(arr, 1, 2)
    assert list(arr) == [0, 14, 20]


def test_random_buffer_bit_in_range():
    rng = np.random.default_rng(0)
    for _ in range(100):
        byte, bit = random_buffer_bit(rng, 16)
        assert 0 <= byte < 16
        assert 0 <= bit < 8


def test_random_buffer_bit_rejects_empty():
    with pytest.raises(ValueError):
        random_buffer_bit(np.random.default_rng(0), 0)


def test_random_buffer_bit_covers_all_bytes():
    rng = np.random.default_rng(1)
    seen = {random_buffer_bit(rng, 4)[0] for _ in range(200)}
    assert seen == {0, 1, 2, 3}
