"""The scenario file format: parsing, canonical serialization,
fingerprints, and the rejection of malformed documents."""

import pytest

from repro.injection.scenario import (
    SCENARIO_COLLECTIVE,
    SCENARIO_VERSION,
    Scenario,
    ScenarioError,
    ScenarioTask,
    load_scenario,
    parse_scenario,
    serialize_scenario,
)

VALID = {
    "version": 1,
    "name": "drop-then-flip",
    "tasks": [
        {"t": 0, "model": "msg_drop", "rank": 1},
        {"t": 2, "model": "bitflip", "rank": 0, "param": "count"},
        {"t": 3, "model": "multibit", "rank": 0, "param": "buffer", "width": 4},
        {"t": 5, "model": "rank_stall", "rank": 1, "weight": 100},
    ],
}


class TestParse:
    def test_parses_every_task_field(self):
        scen = parse_scenario(VALID)
        assert scen.name == "drop-then-flip"
        assert len(scen.tasks) == 4
        assert scen.tasks[0] == ScenarioTask(t=0, model="msg_drop", rank=1)
        assert scen.tasks[2].width == 4
        assert scen.tasks[3].weight == 100

    def test_accepts_json_text_and_bytes(self):
        import json

        text = json.dumps(VALID)
        assert parse_scenario(text) == parse_scenario(text.encode()) == parse_scenario(VALID)

    def test_round_trips_through_serialize(self):
        scen = parse_scenario(VALID)
        assert parse_scenario(serialize_scenario(scen)) == scen

    def test_serialize_omits_defaults(self):
        scen = parse_scenario(VALID)
        text = serialize_scenario(scen)
        # msg_drop task carries no param/bit/width/count/weight noise.
        assert '"bit"' not in text
        assert text == serialize_scenario(parse_scenario(text))  # canonical

    def test_fingerprint_is_content_addressed(self):
        a = parse_scenario(VALID)
        b = parse_scenario({**VALID, "name": "other"})
        assert a.fingerprint() == parse_scenario(VALID).fingerprint()
        assert a.fingerprint() != b.fingerprint()
        assert len(a.fingerprint()) == 16

    def test_anchor_point_carries_the_scenario_name(self):
        point = parse_scenario(VALID).anchor_point()
        assert point.collective == SCENARIO_COLLECTIVE
        assert point.site == "scenario:drop-then-flip"
        assert (point.rank, point.invocation) == (0, 0)


def scenario_with_task(**task):
    return {"version": 1, "name": "x", "tasks": [{"t": 0, "model": "msg_drop", "rank": 0, **task}]}


class TestRejection:
    @pytest.mark.parametrize(
        "doc, message",
        [
            ("{nope", "not valid JSON"),
            ('["list"]', "expected a JSON object"),
            ({"version": 2, "name": "x", "tasks": [{}]}, "unsupported scenario version"),
            ({"name": "x", "tasks": [{}]}, "unsupported scenario version"),
            ({"version": 1, "name": "", "tasks": [{}]}, "name must be a non-empty"),
            ({"version": 1, "name": "x", "tasks": []}, "tasks must be a non-empty list"),
            ({"version": 1, "name": "x", "tasks": [{}], "extra": 1}, "unknown top-level keys"),
        ],
    )
    def test_document_level_errors(self, doc, message):
        with pytest.raises(ScenarioError, match=message):
            parse_scenario(doc)

    @pytest.mark.parametrize(
        "task, message",
        [
            ({"model": "gamma_ray"}, "unknown model"),
            ({"model": "scenario"}, "unknown model"),  # no nesting
            ({"t": -1}, "non-negative integer"),
            ({"t": True}, "non-negative integer"),  # bools are not ints
            ({"rank": 1.5}, "non-negative integer"),
            ({"count": 0}, "count must be >= 1"),
            ({"bit": -3}, "bit must be null"),
            ({"bit": True}, "bit must be null"),
            ({"blast_radius": 9}, "unknown keys"),
            ({"param": 7}, "param must be a string"),
            ({"param": "frobnicator"}, "names no collective parameter"),
            ({"param": "count"}, "param only applies to"),  # msg_drop has no params
        ],
    )
    def test_task_level_errors(self, task, message):
        with pytest.raises(ScenarioError, match=message):
            parse_scenario(scenario_with_task(**task))

    def test_task_must_be_an_object(self):
        with pytest.raises(ScenarioError, match="expected an object"):
            parse_scenario({"version": 1, "name": "x", "tasks": ["drop"]})

    def test_missing_required_keys(self):
        with pytest.raises(ScenarioError, match="missing required key"):
            parse_scenario({"version": 1, "name": "x", "tasks": [{"t": 0}]})


class TestLoad:
    def test_load_reads_and_parses(self, tmp_path):
        path = tmp_path / "s.json"
        scen = parse_scenario(VALID)
        path.write_text(serialize_scenario(scen))
        assert load_scenario(str(path)) == scen

    def test_missing_file_is_a_scenario_error(self, tmp_path):
        with pytest.raises(ScenarioError, match="cannot read scenario file"):
            load_scenario(str(tmp_path / "absent.json"))

    def test_parse_errors_carry_the_path(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ScenarioError, match="bad.json"):
            load_scenario(str(path))


def test_version_constant_matches_format():
    assert SCENARIO_VERSION == 1
    assert Scenario("n", (ScenarioTask(0, "msg_drop", 0),)).fingerprint()
