"""Targets, outcome taxonomy, and Table II configuration tests."""

import numpy as np
import pytest

from repro.injection import (
    ConfigError,
    InjectionConfig,
    Outcome,
    OUTCOME_ORDER,
    all_targets,
    buffer_targets,
    classify_exception,
    param_kind,
    pick_target,
    targets_for_policy,
)
from repro.simmpi import (
    AppError,
    DeadlockError,
    FiberCrashed,
    MPIError,
    SegmentationFault,
    StepBudgetExceeded,
)


class TestTargets:
    def test_buffer_targets(self):
        assert buffer_targets("Allreduce") == ("sendbuf", "recvbuf")
        assert buffer_targets("Bcast") == ("buffer",)
        assert buffer_targets("Barrier") == ()

    def test_policy_buffer_falls_back_for_barrier(self):
        assert targets_for_policy("Barrier", "buffer") == ("comm",)

    def test_policy_all(self):
        assert targets_for_policy("Reduce", "all") == all_targets("Reduce")
        assert "op" in all_targets("Reduce")

    def test_policy_specific_param(self):
        assert targets_for_policy("Allreduce", "count") == ("count",)

    def test_policy_invalid_param(self):
        with pytest.raises(ValueError):
            targets_for_policy("Barrier", "count")

    def test_pick_target_deterministic_per_seed(self):
        a = pick_target(np.random.default_rng(5), "Allreduce", "all")
        b = pick_target(np.random.default_rng(5), "Allreduce", "all")
        assert a == b

    def test_param_kind(self):
        assert param_kind("sendbuf") == "buffer"
        assert param_kind("count") == "scalar"
        assert param_kind("op") == "handle"
        assert param_kind("sendcounts") == "vector"
        with pytest.raises(ValueError):
            param_kind("bogus")


class TestOutcome:
    def test_six_types(self):
        assert len(OUTCOME_ORDER) == 6
        assert [o.value for o in OUTCOME_ORDER] == [
            "SUCCESS",
            "APP_DETECTED",
            "MPI_ERR",
            "SEG_FAULT",
            "WRONG_ANS",
            "INF_LOOP",
        ]

    def test_is_error(self):
        assert not Outcome.SUCCESS.is_error
        assert all(o.is_error for o in OUTCOME_ORDER if o is not Outcome.SUCCESS)

    @pytest.mark.parametrize(
        "exc,expected",
        [
            (AppError("x"), Outcome.APP_DETECTED),
            (MPIError("MPI_ERR_COUNT"), Outcome.MPI_ERR),
            (SegmentationFault(0, 1), Outcome.SEG_FAULT),
            (DeadlockError(), Outcome.INF_LOOP),
            (StepBudgetExceeded(10), Outcome.INF_LOOP),
            (FiberCrashed(0, ValueError("x")), Outcome.SEG_FAULT),
        ],
    )
    def test_classification(self, exc, expected):
        assert classify_exception(exc) is expected

    def test_unclassifiable_raises(self):
        with pytest.raises(TypeError):
            classify_exception(KeyError("nope"))


class TestInjectionConfig:
    def test_defaults(self):
        cfg = InjectionConfig()
        assert cfg.num_inj == 1 and cfg.param_id == 0

    def test_from_env(self):
        env = {
            "FASTFIT_NUM_INJ": "100",
            "FASTFIT_INV_ID": "012",
            "FASTFIT_CALL_ID": "3",
            "FASTFIT_RANK_ID": "31",
            "FASTFIT_PARAM_ID": "2",
        }
        cfg = InjectionConfig.from_env(env)
        assert (cfg.num_inj, cfg.inv_id, cfg.call_id, cfg.rank_id, cfg.param_id) == (
            100,
            12,
            3,
            31,
            2,
        )

    def test_width_limits(self):
        with pytest.raises(ConfigError):
            InjectionConfig.from_env({"FASTFIT_INV_ID": "1234"})  # width 3
        with pytest.raises(ConfigError):
            InjectionConfig.from_env({"FASTFIT_PARAM_ID": "12"})  # width 1
        # RANK_ID and NUM_INJ are unlimited.
        cfg = InjectionConfig.from_env({"FASTFIT_RANK_ID": "123456789"})
        assert cfg.rank_id == 123456789

    def test_non_integer_rejected(self):
        with pytest.raises(ConfigError):
            InjectionConfig.from_env({"FASTFIT_NUM_INJ": "lots"})

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            InjectionConfig(inv_id=-1)

    def test_roundtrip_env(self):
        cfg = InjectionConfig(num_inj=7, inv_id=2, call_id=1, rank_id=30, param_id=4)
        assert InjectionConfig.from_env(cfg.to_env()) == cfg
