"""Property-based fuzz of the scenario parser.

Two invariants: (1) parse ∘ serialize is the identity on valid
scenarios (and serialization is canonical — a second round-trip yields
byte-identical text); (2) ill-typed corruptions of a valid document are
rejected with :class:`ScenarioError`, never an arbitrary crash.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.injection.scenario import (
    PARAM_TASK_MODELS,
    TASK_MODELS,
    ScenarioError,
    parse_scenario,
    serialize_scenario,
)
from repro.simmpi import COLLECTIVE_PARAMS

ALL_PARAMS = sorted({p for params in COLLECTIVE_PARAMS.values() for p in params})

small_int = st.integers(min_value=0, max_value=1_000)


@st.composite
def valid_tasks(draw):
    model = draw(st.sampled_from(TASK_MODELS))
    task = {
        "t": draw(small_int),
        "model": model,
        "rank": draw(st.integers(min_value=0, max_value=63)),
    }
    if draw(st.booleans()):
        task["count"] = draw(st.integers(min_value=1, max_value=8))
    if draw(st.booleans()):
        task["width"] = draw(st.integers(min_value=0, max_value=64))
    if draw(st.booleans()):
        task["weight"] = draw(small_int)
    if model in PARAM_TASK_MODELS:
        if draw(st.booleans()):
            task["param"] = draw(st.sampled_from(ALL_PARAMS))
        if draw(st.booleans()):
            task["bit"] = draw(st.integers(min_value=0, max_value=255))
    return task


valid_scenarios = st.fixed_dictionaries(
    {
        "version": st.just(1),
        "name": st.text(
            alphabet=st.characters(whitelist_categories=("L", "N"), max_codepoint=0x7F),
            min_size=1,
            max_size=24,
        ),
        "tasks": st.lists(valid_tasks(), min_size=1, max_size=6),
    }
)


@given(valid_scenarios)
@settings(max_examples=80, deadline=None)
def test_round_trip_is_identity_and_canonical(doc):
    scen = parse_scenario(doc)
    text = serialize_scenario(scen)
    again = parse_scenario(text)
    assert again == scen
    assert serialize_scenario(again) == text  # canonical fixed point
    assert again.fingerprint() == scen.fingerprint()


#: Corruptions applied to one task of a valid document; every one must
#: be rejected, whatever the rest of the scenario looks like.
CORRUPTIONS = [
    lambda task: task.update(t=-1),
    lambda task: task.update(t=0.5),
    lambda task: task.update(t=True),
    lambda task: task.update(t=None),
    lambda task: task.update(rank="zero"),
    lambda task: task.update(model="cosmic_ray"),
    lambda task: task.update(model=None),
    lambda task: task.update(count=0),
    lambda task: task.update(bit=-1),
    lambda task: task.update(warp_factor=9),
    lambda task: task.update(param=12),
    lambda task: task.update(param="no_such_parameter"),
    lambda task: task.pop("model"),
]


@given(valid_scenarios, st.sampled_from(CORRUPTIONS), st.data())
@settings(max_examples=120, deadline=None)
def test_ill_typed_tasks_are_rejected(doc, corrupt, data):
    doc = json.loads(json.dumps(doc))  # deep copy
    victim = data.draw(st.integers(min_value=0, max_value=len(doc["tasks"]) - 1))
    corrupt(doc["tasks"][victim])
    with pytest.raises(ScenarioError):
        parse_scenario(doc)


@given(st.one_of(st.integers(), st.floats(allow_nan=False), st.lists(st.integers()), st.text()))
@settings(max_examples=40, deadline=None)
def test_non_object_documents_are_rejected(value):
    with pytest.raises(ScenarioError):
        parse_scenario(value)
