"""Injection-point enumeration and fault-injector tests."""

import numpy as np
import pytest

from repro.injection import (
    FaultInjector,
    FaultSpec,
    InjectionPoint,
    buffer_extent_bytes,
    enumerate_points,
    points_per_site,
)
from repro.simmpi import CollectiveCall, Instrument, run_app


class TestSpace:
    def test_enumeration_counts(self, lu_profile):
        points = enumerate_points(lu_profile)
        assert len(points) == lu_profile.total_injection_points()

    def test_points_are_unique_and_sorted_stable(self, lu_profile):
        points = enumerate_points(lu_profile)
        assert len(set(points)) == len(points)
        assert points == sorted(points)

    def test_points_cover_all_ranks(self, lu_profile):
        ranks = {p.rank for p in enumerate_points(lu_profile)}
        assert ranks == set(range(lu_profile.nranks))

    def test_points_per_site(self, lu_profile):
        points = enumerate_points(lu_profile)
        by_site = points_per_site(points)
        assert sum(len(v) for v in by_site.values()) == len(points)

    def test_point_str(self):
        p = InjectionPoint(3, "Allreduce", "x.py:10", 2)
        assert "Allreduce" in str(p) and "rank3" in str(p)


def _first_call_point(app_fn, nranks, name):
    """Profile a quick app and return its first `name` point."""
    from repro.profiling import CommProfiler

    prof = CommProfiler()
    run_app(app_fn, nranks, instruments=[prof])
    call = next(c for c in prof.profile.calls if c.name == name and c.rank == 0)
    return InjectionPoint(0, call.name, call.site, call.invocation)


def bcast_app(ctx):
    b = ctx.alloc(8, ctx.DOUBLE)
    if ctx.rank == 0:
        b.view[:] = 1.0
    yield from ctx.Bcast(b.addr, 8, ctx.DOUBLE, 0, ctx.WORLD)
    return list(b.view)


class TestInjector:
    def test_buffer_flip_changes_payload(self):
        point = _first_call_point(bcast_app, 2, "Bcast")
        spec = FaultSpec(point, "buffer", 3)  # flip bit 3 of byte 0
        injector = FaultInjector(spec, np.random.default_rng(0))
        res = run_app(bcast_app, 2, instruments=[injector])
        assert injector.fired
        assert injector.record.param == "buffer"
        assert res.results[1] != [1.0] * 8  # corrupted value broadcast


    def test_injector_fires_once(self):
        def app(ctx):
            b = ctx.alloc(2, ctx.DOUBLE)
            for _ in range(3):
                yield from ctx.Bcast(b.addr, 2, ctx.DOUBLE, 0, ctx.WORLD)
            return 0

        point = _first_call_point(app, 2, "Bcast")
        spec = FaultSpec(point, "buffer", 0)
        injector = FaultInjector(spec, np.random.default_rng(0))
        run_app(app, 2, instruments=[injector])
        assert injector.fired

    def test_injector_respects_rank(self):
        point = InjectionPoint(1, "Bcast", "nonexistent.py:1", 0)
        injector = FaultInjector(FaultSpec(point, "buffer", 0), np.random.default_rng(0))
        run_app(bcast_app, 2, instruments=[injector])
        assert not injector.fired

    def test_scalar_flip_mutates_count(self):
        point = _first_call_point(bcast_app, 2, "Bcast")
        seen = {}

        class Spy(Instrument):
            def on_collective(self, ctx, call: CollectiveCall):
                seen.setdefault(call.rank, call.args["count"])

        injector = FaultInjector(FaultSpec(point, "count", 1), np.random.default_rng(0))
        # count 8 ^ 2 = 10 on rank 0 -> root reads more than allocated ->
        # heap read within arena (benign) or truncate on receiver.
        from repro.simmpi import MPIError

        with pytest.raises(MPIError):
            run_app(bcast_app, 2, instruments=[injector, Spy()])
        assert injector.record.bit == 1

    def test_handle_flip_uses_64_bits(self):
        point = _first_call_point(bcast_app, 2, "Bcast")
        injector = FaultInjector(FaultSpec(point, "datatype", 50), np.random.default_rng(0))
        from repro.simmpi import SegmentationFault

        with pytest.raises(SegmentationFault):
            run_app(bcast_app, 2, instruments=[injector])
        assert injector.record.kind == "handle"


class TestBufferExtent:
    @pytest.fixture()
    def capture(self):
        calls = {}

        class Grab(Instrument):
            def __init__(self, name):
                self.name = name

            def on_collective(self, ctx, call):
                if call.name == self.name and call.rank == 0:
                    calls.setdefault("ctx", ctx)
                    calls.setdefault("call", call)

        return calls, Grab

    def test_allreduce_extent(self, capture):
        calls, Grab = capture

        def app(ctx):
            s = ctx.alloc(10, ctx.DOUBLE)
            r = ctx.alloc(10, ctx.DOUBLE)
            yield from ctx.Allreduce(s.addr, r.addr, 10, ctx.DOUBLE, ctx.SUM, ctx.WORLD)

        run_app(app, 2, instruments=[Grab("Allreduce")])
        assert buffer_extent_bytes(calls["ctx"], calls["call"], "sendbuf") == 80

    def test_allgather_recv_extent_scales_with_size(self, capture):
        calls, Grab = capture

        def app(ctx):
            s = ctx.alloc(4, ctx.INT)
            r = ctx.alloc(4 * ctx.size, ctx.INT)
            yield from ctx.Allgather(s.addr, 4, r.addr, 4, ctx.INT, ctx.WORLD)

        run_app(app, 4, instruments=[Grab("Allgather")])
        assert buffer_extent_bytes(calls["ctx"], calls["call"], "sendbuf") == 16
        assert buffer_extent_bytes(calls["ctx"], calls["call"], "recvbuf") == 64

    def test_alltoallv_extent_from_displs(self, capture):
        calls, Grab = capture

        def app(ctx):
            n = ctx.size
            s = ctx.alloc(2 * n, ctx.INT)
            r = ctx.alloc(2 * n, ctx.INT)
            counts = np.full(n, 2, dtype=np.int64)
            displs = np.arange(n, dtype=np.int64) * 2
            yield from ctx.Alltoallv(s.addr, counts, displs, r.addr, counts, displs, ctx.INT, ctx.WORLD)

        run_app(app, 3, instruments=[Grab("Alltoallv")])
        assert buffer_extent_bytes(calls["ctx"], calls["call"], "sendbuf") == (4 + 2) * 4
