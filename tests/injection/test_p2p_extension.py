"""Point-to-point fault-injection extension tests (paper future work)."""

import numpy as np
import pytest

from repro.apps import make_app
from repro.injection import OUTCOME_ORDER
from repro.injection.p2p import (
    P2PFaultInjector,
    P2PFaultSpec,
    P2PInjectionPoint,
    P2PProfiler,
    enumerate_p2p_points,
    p2p_campaign,
    profile_p2p,
)
from repro.simmpi import run_app


def ring_app(ctx):
    s = ctx.alloc(4, ctx.DOUBLE)
    r = ctx.alloc(4, ctx.DOUBLE)
    s.view[:] = ctx.rank
    dst = (ctx.rank + 1) % ctx.size
    src = (ctx.rank - 1) % ctx.size
    yield from ctx.Send(s.addr, 4, ctx.DOUBLE, dst, 7, ctx.WORLD)
    yield from ctx.Recv(r.addr, 4, ctx.DOUBLE, src, 7, ctx.WORLD)
    return list(r.view)


class TestP2PProfiler:
    def test_records_sites_and_stacks(self):
        prof = P2PProfiler()
        run_app(ring_app, 3, instruments=[prof])
        kinds = {c.kind for c in prof.calls}
        assert kinds == {"Send", "Recv"}
        assert all(c.site.startswith("test_p2p_extension.py:") for c in prof.calls)
        assert all(c.stack[-1].startswith("ring_app@") for c in prof.calls)

    def test_enumeration(self):
        prof = P2PProfiler()
        run_app(ring_app, 3, instruments=[prof])
        points = enumerate_p2p_points(prof.calls)
        # One send + one recv per rank.
        assert len(points) == 6
        assert len({p.rank for p in points}) == 3

    def test_no_instrument_no_overhead_path(self):
        """Without a p2p-interested instrument the fast path is taken
        and results are identical."""
        a = run_app(ring_app, 3)
        b = run_app(ring_app, 3, instruments=[P2PProfiler()])
        assert a.results == b.results


class TestP2PInjector:
    def _point(self, kind):
        prof = P2PProfiler()
        run_app(ring_app, 2, instruments=[prof])
        call = next(c for c in prof.calls if c.kind == kind and c.rank == 0)
        return P2PInjectionPoint(0, call.kind, call.site, call.invocation)

    def test_buffer_flip_corrupts_message(self):
        point = self._point("Send")
        injector = P2PFaultInjector(
            P2PFaultSpec(point, "buf", 0), np.random.default_rng(0)
        )
        res = run_app(ring_app, 2, instruments=[injector])
        assert injector.fired
        assert res.results[1] != [0.0] * 4

    def test_tag_flip_deadlocks(self):
        from repro.simmpi import DeadlockError

        point = self._point("Send")
        injector = P2PFaultInjector(
            P2PFaultSpec(point, "tag", 3), np.random.default_rng(0)
        )
        with pytest.raises(DeadlockError):
            run_app(ring_app, 2, instruments=[injector], step_budget=50_000)

    def test_dest_flip_misroutes_or_errors(self):
        from repro.simmpi import DeadlockError, MPIError

        point = self._point("Send")
        injector = P2PFaultInjector(
            P2PFaultSpec(point, "dest", 1), np.random.default_rng(0)
        )
        # dest 1 ^ 2 = 3 -> out of range for 2 ranks -> MPI_ERR_RANK
        with pytest.raises((MPIError, DeadlockError)):
            run_app(ring_app, 2, instruments=[injector], step_budget=50_000)

    def test_datatype_flip_usually_segfaults(self):
        from repro.simmpi import SegmentationFault

        point = self._point("Send")
        injector = P2PFaultInjector(
            P2PFaultSpec(point, "datatype", 45), np.random.default_rng(0)
        )
        with pytest.raises(SegmentationFault):
            run_app(ring_app, 2, instruments=[injector])

    def test_fires_once(self):
        point = self._point("Recv")
        injector = P2PFaultInjector(
            P2PFaultSpec(point, "buf", 0), np.random.default_rng(0)
        )
        run_app(ring_app, 2, instruments=[injector])
        assert injector.fired


class TestP2PCampaign:
    @pytest.fixture(scope="class")
    def campaign(self):
        app = make_app("mg", "T")
        calls, golden, steps = profile_p2p(app)
        points = enumerate_p2p_points(calls)[:4]
        return p2p_campaign(
            app, points, tests_per_point=8, seed=1, golden=golden, golden_steps=steps
        )

    def test_all_tests_classified(self, campaign):
        hist = campaign.outcome_histogram()
        assert sum(hist.values()) == 32
        # The histogram covers the paper's application-response classes;
        # the harness-level TOOL_ERROR verdict is deliberately excluded.
        assert all(o in hist for o in OUTCOME_ORDER)

    def test_by_param_partition(self, campaign):
        per_param = campaign.by_param()
        assert sum(sum(h.values()) for h in per_param.values()) == 32

    def test_error_rate_bounds(self, campaign):
        assert 0.0 <= campaign.error_rate <= 1.0

    def test_campaign_reproducible(self):
        app = make_app("mg", "T")
        calls, golden, steps = profile_p2p(app)
        points = enumerate_p2p_points(calls)[:2]
        kw = dict(tests_per_point=4, seed=9, golden=golden, golden_steps=steps)
        a = p2p_campaign(app, points, **kw)
        b = p2p_campaign(app, points, **kw)
        assert [o for _, o in a.tests] == [o for _, o in b.tests]
