"""Harness-fault containment: TOOL_ERROR classification and alloc caps.

The robustness contract of :meth:`InjectionRunner.run_one`: a crash of
the *harness* (not the simulated application) is classified as
``TOOL_ERROR`` with forensic detail instead of aborting the campaign,
and the simmpi allocation cap turns a corrupted size reaching
application allocation code into the deterministic simulated-segfault
path.
"""

from typing import Any, Generator

import pytest

from repro.apps.base import Application
from repro.injection import Campaign, Outcome, enumerate_points
from repro.injection.outcome import OUTCOME_ORDER
from repro.injection.runner import InjectionRunner
from repro.injection.space import FaultSpec
from repro.obs.forensics import harness_failure_detail
from repro.profiling.profiler import profile_application
from repro.simmpi.memory import DEFAULT_ARENA_SIZE


def _rng(seed=0):
    import numpy as np

    return np.random.default_rng(seed)


class EchoApp(Application):
    """Minimal two-collective workload for containment tests."""

    name = "echo"
    rtol = 0.0

    @classmethod
    def class_params(cls, problem_class: str) -> dict[str, Any]:
        return dict(nranks=2, n=4)

    def main(self, ctx) -> Generator:
        n = self.params["n"]
        ctx.set_phase("input")
        a = ctx.alloc(n, ctx.LONG, "echo.a")
        b = ctx.alloc(n, ctx.LONG, "echo.b")
        a.view[:] = ctx.rank + 1
        ctx.set_phase("compute")
        yield from ctx.Allreduce(a.addr, b.addr, n, ctx.LONG, ctx.SUM, ctx.WORLD)
        ctx.set_phase("end")
        return {"sum": int(b.view.sum())}


class BadCompareApp(EchoApp):
    """An app whose golden comparison itself crashes."""

    def compare(self, golden, observed) -> bool:
        raise RuntimeError("comparison exploded")


class GreedyAllocApp(Application):
    """Broadcasts a buffer size, then allocates it — the paper's
    corrupted-``count``-drives-allocation crash surface."""

    name = "greedy-alloc"
    rtol = 0.0

    @classmethod
    def class_params(cls, problem_class: str) -> dict[str, Any]:
        return dict(nranks=2, count=8)

    def main(self, ctx) -> Generator:
        ctx.set_phase("input")
        cfg = ctx.alloc(1, ctx.LONG, "ga.cfg")
        if ctx.rank == 0:
            cfg.view[0] = self.params["count"]
        yield from ctx.Bcast(cfg.addr, 1, ctx.LONG, 0, ctx.WORLD)
        n = int(cfg.view[0])
        ctx.set_phase("compute")
        # A corrupted n allocates here: with the cap armed this is the
        # simulated segfault path, never a host-sized request.
        buf = ctx.alloc(max(n, 1), ctx.LONG, "ga.buf")
        out = ctx.alloc(max(n, 1), ctx.LONG, "ga.out")
        buf.view[:] = ctx.rank + 1
        yield from ctx.Allreduce(buf.addr, out.addr, max(n, 1), ctx.LONG, ctx.SUM, ctx.WORLD)
        ctx.set_phase("end")
        return {"sum": int(out.view.sum())}


class TestToolErrorTaxonomy:
    def test_tool_error_outside_paper_order(self):
        assert Outcome.TOOL_ERROR not in OUTCOME_ORDER
        assert not Outcome.TOOL_ERROR.is_application_response
        assert not Outcome.TOOL_ERROR.is_error

    def test_application_responses_cover_order(self):
        assert all(o.is_application_response for o in OUTCOME_ORDER)


class TestRunOneContainment:
    @pytest.fixture(scope="class")
    def echo_profile(self):
        return profile_application(EchoApp(2, n=4))

    def test_harness_crash_during_run_is_tool_error(
        self, monkeypatch, echo_profile
    ):
        """An exception outside the simulated taxonomy escaping run_app
        is contained as TOOL_ERROR with a forensic detail line."""
        app = EchoApp(2, n=4)
        runner = InjectionRunner(app, echo_profile)
        point = enumerate_points(echo_profile)[0]

        def explode(*args, **kwargs):
            raise ValueError("synthetic harness crash")

        monkeypatch.setattr("repro.injection.runner.run_app", explode)
        result = runner.run_one(FaultSpec(point, "buffer", None), _rng())
        assert result.outcome is Outcome.TOOL_ERROR
        assert "harness error: ValueError: synthetic harness crash" in result.detail
        assert "explode@" in result.detail  # innermost-frame forensics
        assert runner.last_exception is None

    def test_crashing_golden_comparison_is_tool_error(self, echo_profile):
        """A compare() crash on corrupted results is a harness fault,
        not an application response."""
        app = BadCompareApp(2, n=4)
        runner = InjectionRunner(app, echo_profile)
        point = next(
            p for p in enumerate_points(echo_profile) if p.collective == "Allreduce"
        )
        # A send-buffer flip only corrupts data, so the run completes and
        # the comparison is reached deterministically.
        result = runner.run_one(FaultSpec(point, "sendbuf", 3), _rng())
        assert result.outcome is Outcome.TOOL_ERROR
        assert "harness error: RuntimeError: comparison exploded" in result.detail

    def test_detail_names_the_armed_fault(self, echo_profile):
        app = BadCompareApp(2, n=4)
        runner = InjectionRunner(app, echo_profile)
        point = next(
            p for p in enumerate_points(echo_profile) if p.collective == "Allreduce"
        )
        result = runner.run_one(FaultSpec(point, "sendbuf", 3), _rng())
        assert "fault:" in result.detail

    def test_keyboard_interrupt_passes_through(self, monkeypatch, echo_profile):
        """The containment boundary must not swallow shutdown signals."""
        app = EchoApp(2, n=4)
        runner = InjectionRunner(app, echo_profile)
        point = enumerate_points(echo_profile)[0]

        def interrupt(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.injection.runner.run_app", interrupt)
        with pytest.raises(KeyboardInterrupt):
            runner.run_one(FaultSpec(point, "buffer", None), _rng())


class TestHarnessFailureDetail:
    def test_includes_innermost_frame(self):
        def inner():
            raise KeyError("boom")

        try:
            inner()
        except KeyError as exc:
            detail = harness_failure_detail(exc)
        assert detail.startswith("harness error: KeyError: 'boom'")
        assert "inner@test_containment.py" in detail

    def test_without_traceback(self):
        detail = harness_failure_detail(ValueError("bare"))
        assert detail == "harness error: ValueError: bare"


class TestAllocCap:
    @pytest.fixture(scope="class")
    def greedy_profile(self):
        return profile_application(GreedyAllocApp(2, count=8))

    def test_runner_defaults_to_arena_sized_cap(self, greedy_profile):
        runner = InjectionRunner(GreedyAllocApp(2, count=8), greedy_profile)
        assert runner.alloc_cap == DEFAULT_ARENA_SIZE

    def test_corrupted_count_hits_the_segfault_path(self, greedy_profile):
        """A high-bit flip in the broadcast size makes the application
        allocate petabytes; the cap maps it to SEG_FAULT."""
        app = GreedyAllocApp(2, count=8)
        runner = InjectionRunner(app, greedy_profile)
        point = next(
            p for p in enumerate_points(greedy_profile)
            if p.collective == "Bcast" and p.rank == 0
        )
        result = runner.run_one(FaultSpec(point, "buffer", 40), _rng())
        assert result.outcome is Outcome.SEG_FAULT
        assert "segmentation fault" in result.detail

    def test_campaign_outcomes_all_classified(self, greedy_profile):
        """No buffer corruption of the size escapes classification —
        every response lands in the taxonomy, none aborts the harness."""
        app = GreedyAllocApp(2, count=8)
        points = enumerate_points(greedy_profile)
        result = Campaign(
            app, greedy_profile, tests_per_point=8, param_policy="buffer", seed=3
        ).run(points)
        assert result.n_tests() == len(points) * 8
        assert sum(result.outcome_histogram().values()) + result.tool_error_count() == (
            len(points) * 8
        )

    def test_cap_breach_identical_under_jobs_1_and_4(self, greedy_profile):
        """The acceptance bar: SEG_FAULT classification of cap breaches
        is bit-identical between serial and 4-worker execution."""
        app = GreedyAllocApp(2, count=8)
        points = enumerate_points(greedy_profile)

        def signature(result):
            return [
                (point, [(t.spec.param, t.spec.bit, t.outcome, t.detail) for t in pr.tests])
                for point, pr in result.points.items()
            ]

        serial = Campaign(
            app, greedy_profile, tests_per_point=8, param_policy="buffer", seed=3
        ).run(points)
        parallel = Campaign(
            app, greedy_profile, tests_per_point=8, param_policy="buffer", seed=3, jobs=4
        ).run(points)
        assert signature(parallel) == signature(serial)
        assert serial.outcome_histogram()[Outcome.SEG_FAULT] >= 1
