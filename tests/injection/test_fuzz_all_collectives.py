"""Fault-injection fuzzing across the full collective surface.

A synthetic workload exercises every collective the simulator offers;
the fuzzer then injects random single-bit faults into every parameter
of every operation and requires that *every* run classifies into one of
the paper's six response types — no harness-level crash, no unbounded
run, no unclassifiable exception.
"""

import numpy as np
import pytest

from repro.injection import (
    Campaign,
    FaultInjector,
    FaultSpec,
    Outcome,
    enumerate_points,
)
from repro.injection.outcome import classify_exception
from repro.profiling import profile_application
from repro.simmpi import COLLECTIVE_PARAMS
from repro.simmpi import SimMPIError, run_app
from repro.apps.base import Application


class Omnibus(Application):
    """One clean pass through every collective operation."""

    name = "omnibus"
    rtol = 1e-9

    @classmethod
    def class_params(cls, problem_class):
        return {"T": dict(nranks=4), "S": dict(nranks=8), "A": dict(nranks=8)}[problem_class]

    def check_total(self, ctx, bufs, value):
        bufs["flag"].view[0] = 0 if np.isfinite(value) else 1
        yield from ctx.Allreduce(
            bufs["flag"].addr, bufs["flag_g"].addr, 1, ctx.INT, ctx.MAX, ctx.WORLD
        )
        if int(bufs["flag_g"].view[0]):
            ctx.app_error("omnibus: non-finite")

    def main(self, ctx):
        n = ctx.size
        ctx.set_phase("input")
        cfg = ctx.alloc(2, ctx.LONG)
        if ctx.rank == 0:
            cfg.view[:] = (8, 1)
        yield from ctx.Bcast(cfg.addr, 2, ctx.LONG, 0, ctx.WORLD)
        count = int(cfg.view[0])
        if not 0 < count <= 1024:
            ctx.app_error("omnibus: bad config")

        ctx.set_phase("compute")
        a = ctx.alloc(count * n, ctx.DOUBLE)
        b = ctx.alloc(count * n, ctx.DOUBLE)
        a.view[:] = np.arange(count * n) + ctx.rank
        bufs = {"flag": ctx.alloc(1, ctx.INT), "flag_g": ctx.alloc(1, ctx.INT)}

        yield from ctx.Allreduce(a.addr, b.addr, count, ctx.DOUBLE, ctx.SUM, ctx.WORLD)
        yield from ctx.Reduce(a.addr, b.addr, count, ctx.DOUBLE, ctx.MAX, 0, ctx.WORLD)
        yield from ctx.Bcast(b.addr, count, ctx.DOUBLE, 0, ctx.WORLD)
        yield from ctx.Scatter(a.addr, count, b.addr, count, ctx.DOUBLE, 0, ctx.WORLD)
        yield from ctx.Gather(b.addr, count, a.addr, count, ctx.DOUBLE, 0, ctx.WORLD)
        yield from ctx.Allgather(b.addr, count, a.addr, count, ctx.DOUBLE, ctx.WORLD)
        yield from ctx.Alltoall(a.addr, count, b.addr, count, ctx.DOUBLE, ctx.WORLD)
        counts = np.full(n, count, dtype=np.int64)
        displs = np.arange(n, dtype=np.int64) * count
        yield from ctx.Alltoallv(
            a.addr, counts, displs, b.addr, counts, displs, ctx.DOUBLE, ctx.WORLD
        )
        types = [ctx.DOUBLE] * n
        bdispls = displs * 8
        yield from ctx.Alltoallw(
            a.addr, counts, bdispls, types, b.addr, counts, bdispls, types, ctx.WORLD
        )
        yield from ctx.Scan(a.addr, b.addr, count, ctx.DOUBLE, ctx.SUM, ctx.WORLD)
        yield from ctx.Exscan(a.addr, b.addr, count, ctx.DOUBLE, ctx.SUM, ctx.WORLD)
        yield from ctx.Reduce_scatter(a.addr, b.addr, count, ctx.DOUBLE, ctx.SUM, ctx.WORLD)
        yield from ctx.Gatherv(
            b.addr, count, a.addr, counts, displs, ctx.DOUBLE, 0, ctx.WORLD
        )
        yield from ctx.Scatterv(
            a.addr, counts, displs, b.addr, count, ctx.DOUBLE, 0, ctx.WORLD
        )
        yield from ctx.Allgatherv(b.addr, count, a.addr, counts, displs, ctx.DOUBLE, ctx.WORLD)
        yield from ctx.Barrier(ctx.WORLD)
        yield from self.check_total(ctx, bufs, float(a.view.sum()))

        ctx.set_phase("end")
        return {"sum": float(a.view.sum()), "head": float(a.view[0])}


@pytest.fixture(scope="module")
def omnibus():
    app = Omnibus.from_problem_class("T")
    profile = profile_application(app)
    return app, profile


def test_omnibus_covers_every_collective(omnibus):
    _, profile = omnibus
    assert set(profile.comm.collective_mix()) == set(COLLECTIVE_PARAMS)


def test_fuzz_every_param_of_every_collective(omnibus):
    """For each collective type, flip random bits in each parameter and
    demand a valid six-way classification every time."""
    app, profile = omnibus
    golden = profile.golden_results
    budget = max(profile.golden_steps * 8, 50_000)
    points = enumerate_points(profile)
    by_type = {}
    for p in points:
        by_type.setdefault(p.collective, p)

    failures = []
    for coll, point in sorted(by_type.items()):
        for param in COLLECTIVE_PARAMS[coll]:
            for trial in range(3):
                rng = np.random.default_rng(hash((coll, param, trial)) % 2**32)
                injector = FaultInjector(FaultSpec(point, param, None), rng)
                try:
                    with np.errstate(all="ignore"):
                        res = run_app(
                            app.main, app.nranks, instruments=[injector], step_budget=budget
                        )
                    outcome = (
                        Outcome.SUCCESS
                        if app.compare(golden, res.results)
                        else Outcome.WRONG_ANS
                    )
                except SimMPIError as exc:
                    outcome = classify_exception(exc)
                except Exception as exc:  # harness bug: must never happen
                    failures.append((coll, param, trial, repr(exc)))
                    continue
                assert outcome in Outcome
    assert not failures, f"unclassifiable injections: {failures}"


def test_fuzz_campaign_over_omnibus(omnibus):
    """A short all-parameter campaign over a cross-section of points."""
    app, profile = omnibus
    points = enumerate_points(profile)
    sample = [p for p in points if p.rank == 0][:16]
    campaign = Campaign(app, profile, tests_per_point=4, param_policy="all", seed=99)
    result = campaign.run(sample)
    hist = result.outcome_histogram()
    assert sum(hist.values()) == 4 * len(sample)
    # The omnibus surface must produce response-type diversity.
    assert sum(1 for c in hist.values() if c > 0) >= 3
