"""Injection runner and campaign tests (uses session-scoped campaigns)."""

import numpy as np
import pytest

from repro.injection import (
    Campaign,
    FaultSpec,
    InjectionPoint,
    InjectionRunner,
    Outcome,
    OUTCOME_ORDER,
    enumerate_points,
)


class TestRunner:
    @pytest.fixture(scope="class")
    def runner(self, lu_app, lu_profile):
        return InjectionRunner(lu_app, lu_profile)

    def test_budget_calibrated_from_golden(self, runner, lu_profile):
        assert runner.step_budget >= lu_profile.golden_steps

    def test_recvbuf_fault_is_usually_benign(self, runner, lu_profile):
        """Faults in recvbuf are overwritten by the collective (Fig. 9)."""
        point = next(
            p for p in enumerate_points(lu_profile) if p.collective == "Allreduce"
        )
        outcomes = [
            runner.run_one(
                FaultSpec(point, "recvbuf", None), np.random.default_rng(i)
            ).outcome
            for i in range(6)
        ]
        assert outcomes.count(Outcome.SUCCESS) >= 5

    def test_handle_fault_is_fatal(self, runner, lu_profile):
        point = next(
            p for p in enumerate_points(lu_profile) if p.collective == "Allreduce"
        )
        res = runner.run_one(FaultSpec(point, "comm", 45), np.random.default_rng(0))
        assert res.outcome in (Outcome.SEG_FAULT, Outcome.MPI_ERR)
        assert res.injected

    def test_unmatched_point_reports_success_without_injection(self, runner):
        ghost = InjectionPoint(0, "Allreduce", "ghost.py:1", 0)
        res = runner.run_one(FaultSpec(ghost, "sendbuf", 0), np.random.default_rng(0))
        assert res.outcome is Outcome.SUCCESS
        assert not res.injected

    def test_same_seed_same_outcome(self, runner, lu_profile):
        point = enumerate_points(lu_profile)[0]
        spec = FaultSpec(point, "count", None)
        a = runner.run_one(spec, np.random.default_rng(123)).outcome
        b = runner.run_one(spec, np.random.default_rng(123)).outcome
        assert a == b


class TestCampaign:
    def test_point_results_have_requested_tests(self, lu_small_campaign):
        for pr in lu_small_campaign.points.values():
            assert pr.n_tests == lu_small_campaign.tests_per_point

    def test_histogram_sums_to_total(self, lu_small_campaign):
        hist = lu_small_campaign.outcome_histogram()
        assert sum(hist.values()) == len(lu_small_campaign.all_tests())
        assert set(hist) == set(OUTCOME_ORDER)

    def test_fractions_sum_to_one(self, lu_small_campaign):
        assert sum(lu_small_campaign.outcome_fractions().values()) == pytest.approx(1.0)

    def test_error_rate_consistent(self, lu_small_campaign):
        for pr in lu_small_campaign.points.values():
            errors = sum(1 for t in pr.tests if t.outcome is not Outcome.SUCCESS)
            assert pr.error_rate == pytest.approx(errors / pr.n_tests)

    def test_by_collective_partition(self, lu_small_campaign):
        split = lu_small_campaign.by_collective()
        total = sum(len(c.points) for c in split.values())
        assert total == len(lu_small_campaign.points)

    def test_by_param_covers_all_tests(self, lu_small_campaign):
        per_param = lu_small_campaign.by_param()
        assert sum(sum(h.values()) for h in per_param.values()) == len(
            lu_small_campaign.all_tests()
        )

    def test_majority_outcome_is_a_real_outcome(self, lu_small_campaign):
        for pr in lu_small_campaign.points.values():
            assert pr.majority_outcome() in OUTCOME_ORDER

    def test_campaign_is_reproducible(self, lu_app, lu_profile):
        points = enumerate_points(lu_profile)[:2]
        a = Campaign(lu_app, lu_profile, tests_per_point=6, param_policy="all", seed=9).run(points)
        b = Campaign(lu_app, lu_profile, tests_per_point=6, param_policy="all", seed=9).run(points)
        assert [t.outcome for t in a.all_tests()] == [t.outcome for t in b.all_tests()]

    def test_different_seed_differs_in_faults(self, lu_app, lu_profile):
        points = enumerate_points(lu_profile)[:1]
        a = Campaign(lu_app, lu_profile, tests_per_point=8, param_policy="all", seed=1).run(points)
        b = Campaign(lu_app, lu_profile, tests_per_point=8, param_policy="all", seed=2).run(points)
        specs_a = [(t.spec.param, t.record.bit if t.record else None) for t in a.all_tests()]
        specs_b = [(t.spec.param, t.record.bit if t.record else None) for t in b.all_tests()]
        assert specs_a != specs_b

    def test_progress_callback(self, lu_app, lu_profile):
        points = enumerate_points(lu_profile)[:2]
        seen = []
        Campaign(
            lu_app,
            lu_profile,
            tests_per_point=2,
            param_policy="buffer",
            seed=0,
            progress=lambda done, total: seen.append((done, total)),
        ).run(points)
        assert seen == [(1, 2), (2, 2)]

    def test_progress_throttled_serial(self, lu_app, lu_profile):
        points = enumerate_points(lu_profile)[:5]
        seen = []
        Campaign(
            lu_app,
            lu_profile,
            tests_per_point=2,
            param_policy="buffer",
            seed=0,
            progress=lambda done, total: seen.append((done, total)),
            progress_every=2,
        ).run(points)
        # Every 2nd point, plus the final (odd) one.
        assert seen == [(2, 5), (4, 5), (5, 5)]

    def test_incremental_tallies_survive_direct_append(self, lu_small_campaign):
        pr = next(iter(lu_small_campaign.points.values()))
        before = pr.outcomes
        extra = pr.tests[0]
        pr.tests.append(extra)  # legacy direct-append path
        after = pr.outcomes
        assert after[extra.outcome] == before[extra.outcome] + 1
        assert sum(after.values()) == len(pr.tests)
        pr.tests.pop()  # restore the shared session fixture
        assert sum(pr.outcomes.values()) == len(pr.tests)


class TestToolErrorAggregation:
    """TOOL_ERROR verdicts are excluded from every paper-facing rate."""

    @staticmethod
    def _pr(outcomes):
        from repro.injection.campaign import PointResult
        from repro.injection.runner import TestResult

        point = InjectionPoint(0, "Allreduce", "f.py:1", 0)
        pr = PointResult(point)
        for o in outcomes:
            pr.add(TestResult(FaultSpec(point, "count", None), o, None))
        return pr

    def test_error_rate_excludes_tool_errors(self):
        pr = self._pr(
            [Outcome.SUCCESS, Outcome.SEG_FAULT, Outcome.TOOL_ERROR, Outcome.TOOL_ERROR]
        )
        # 1 error out of 2 application responses — not out of 4 tests.
        assert pr.error_rate == pytest.approx(0.5)
        assert pr.n_tool_errors == 2
        assert pr.n_tests == 4

    def test_all_tool_errors_means_no_rate(self):
        pr = self._pr([Outcome.TOOL_ERROR] * 3)
        assert pr.error_rate == 0.0
        assert pr.majority_outcome() is Outcome.SUCCESS  # by absence

    def test_majority_never_returns_tool_error(self):
        pr = self._pr(
            [Outcome.TOOL_ERROR, Outcome.TOOL_ERROR, Outcome.TOOL_ERROR, Outcome.MPI_ERR]
        )
        assert pr.majority_outcome() is Outcome.MPI_ERR
        # mldriven labels index into OUTCOME_ORDER — must never raise.
        assert OUTCOME_ORDER.index(pr.majority_outcome()) >= 0

    def test_direct_append_resyncs_exclusions(self):
        from repro.injection.runner import TestResult

        pr = self._pr([Outcome.SUCCESS])
        point = pr.point
        pr.tests.append(
            TestResult(FaultSpec(point, "count", None), Outcome.TOOL_ERROR, None)
        )
        assert pr.n_tool_errors == 1
        assert pr.error_rate == 0.0

    def test_campaign_histogram_and_tool_error_count(self):
        from repro.injection.campaign import CampaignResult

        result = CampaignResult("x", 4, "buffer")
        pr = self._pr([Outcome.SUCCESS, Outcome.WRONG_ANS, Outcome.TOOL_ERROR])
        result.points[pr.point] = pr
        hist = result.outcome_histogram()
        assert Outcome.TOOL_ERROR not in hist
        assert sum(hist.values()) == 2
        assert result.tool_error_count() == 1
        assert sum(result.outcome_fractions().values()) == pytest.approx(1.0)
