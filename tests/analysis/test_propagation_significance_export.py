"""Tests for propagation, significance, and export analysis modules."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    QUARTILE_LEVELS,
    campaign_summary_from_json,
    campaign_to_csv,
    campaign_to_json,
    convergence_trace,
    level_stability,
    outcome_counts_from_summary,
    point_from_dict,
    point_to_dict,
    propagation_study,
    required_tests,
    tainted_ranks,
    tests_to_csv,
    wilson_interval,
)
from repro.injection import InjectionPoint, enumerate_points


class TestPropagation:
    @pytest.fixture(scope="class")
    def allreduce_prop(self, lu_app, lu_profile):
        point = next(
            p for p in enumerate_points(lu_profile) if p.collective == "Allreduce"
        )
        return propagation_study(
            lu_app, lu_profile, point, tests=10, param_policy="sendbuf", seed=4
        )

    def test_all_tests_recorded(self, allreduce_prop):
        assert len(allreduce_prop.tainted) == 10
        assert len(allreduce_prop.outcomes) == 10

    def test_allreduce_taints_globally_or_not_at_all(self, allreduce_prop):
        """Allreduce delivers the same (corrupted) result everywhere:
        the blast radius is all-or-nothing."""
        for taint in allreduce_prop.completed:
            assert len(taint) in (0, allreduce_prop.nranks)

    def test_rates_bounded(self, allreduce_prop):
        assert 0.0 <= allreduce_prop.global_taint_rate <= 1.0
        assert 0.0 <= allreduce_prop.containment_rate <= 1.0
        assert 0.0 <= allreduce_prop.mean_blast_radius <= allreduce_prop.nranks

    def test_tainted_ranks_helper(self, lu_app, lu_profile):
        golden = lu_profile.golden_results
        mutated = [dict(g) for g in golden]
        mutated[2] = {**mutated[2], "checksum": 1e9}
        assert tainted_ranks(lu_app, golden, mutated) == frozenset({2})
        assert tainted_ranks(lu_app, golden, golden) == frozenset()


class TestSignificance:
    def test_wilson_basic(self):
        iv = wilson_interval(30, 100)
        assert iv.low < 0.3 < iv.high
        assert iv.n == 100

    def test_wilson_edge_cases(self):
        assert wilson_interval(0, 50).low == 0.0
        assert wilson_interval(50, 50).high == 1.0
        assert wilson_interval(0, 0).n == 0
        with pytest.raises(ValueError):
            wilson_interval(5, 3)

    @settings(max_examples=50, deadline=None)
    @given(errors=st.integers(0, 100), n=st.integers(1, 100))
    def test_wilson_contains_point_estimate(self, errors, n):
        errors = min(errors, n)
        iv = wilson_interval(errors, n)
        assert iv.low - 1e-12 <= iv.rate <= iv.high + 1e-12
        assert 0.0 <= iv.low <= iv.high <= 1.0

    def test_required_tests_for_quartile_levels(self):
        """The paper's 100 tests/point comfortably cover quartile-level
        discrimination at 95 % confidence."""
        n = required_tests(half_width=0.125)
        assert n <= 100
        assert required_tests(half_width=0.05) > 100

    def test_required_tests_validates(self):
        with pytest.raises(ValueError):
            required_tests(0.0)

    def test_convergence_trace_monotone_n(self):
        rng = np.random.default_rng(0)
        outcomes = list(rng.random(60) < 0.3)
        trace = convergence_trace(outcomes)
        assert len(trace) == 60
        assert trace[-1].half_width < trace[4].half_width

    def test_level_stability(self):
        outcomes = [True] * 10 + [False] * 90  # settles to rate 0.1 (low)
        trace = convergence_trace(outcomes)
        stable = level_stability(trace, QUARTILE_LEVELS.level_of)
        assert 0 < stable <= 100
        assert QUARTILE_LEVELS.level_of(trace[-1].rate) == 0

    def test_level_stability_empty(self):
        assert level_stability([], QUARTILE_LEVELS.level_of) == 0


class TestExport:
    def test_point_roundtrip(self):
        p = InjectionPoint(3, "Allreduce", "x.py:10", 2)
        assert point_from_dict(point_to_dict(p)) == p

    def test_json_roundtrip(self, lu_small_campaign):
        text = campaign_to_json(lu_small_campaign)
        data = campaign_summary_from_json(text)
        assert data["app"] == "lu"
        assert len(data["points"]) == len(lu_small_campaign.points)

    def test_json_totals_match(self, lu_small_campaign):
        data = campaign_summary_from_json(campaign_to_json(lu_small_campaign))
        totals = outcome_counts_from_summary(data)
        assert totals == lu_small_campaign.outcome_histogram()

    def test_invalid_summary_rejected(self):
        with pytest.raises(ValueError):
            campaign_summary_from_json(json.dumps({"app": "x"}))

    def test_points_csv(self, lu_small_campaign):
        csv_text = campaign_to_csv(lu_small_campaign)
        lines = csv_text.strip().splitlines()
        assert len(lines) == 1 + len(lu_small_campaign.points)
        assert "error_rate" in lines[0]
        assert "SUCCESS" in lines[0]

    def test_tests_csv_row_count(self, lu_small_campaign):
        csv_text = tests_to_csv(lu_small_campaign)
        lines = csv_text.strip().splitlines()
        assert len(lines) == 1 + len(lu_small_campaign.all_tests())
