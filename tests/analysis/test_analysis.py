"""Sensitivity levels, statistics, and report-renderer tests."""

import numpy as np
import pytest

from repro.analysis import (
    EVEN_2_LEVELS,
    EVEN_3_LEVELS,
    PAPER_3_LEVELS,
    QUARTILE_LEVELS,
    LevelScheme,
    dispersion_summary,
    fit_error_rates,
    histogram,
    level_distribution,
    render_bars,
    render_grouped_bars,
    render_histogram,
    render_table,
)


class TestLevelScheme:
    def test_quartiles(self):
        assert QUARTILE_LEVELS.name_of(0.1) == "low"
        assert QUARTILE_LEVELS.name_of(0.3) == "medium-low"
        assert QUARTILE_LEVELS.name_of(0.6) == "medium-high"
        assert QUARTILE_LEVELS.name_of(0.9) == "high"

    def test_paper_3_levels_asymmetric(self):
        assert PAPER_3_LEVELS.name_of(0.14) == "low"
        assert PAPER_3_LEVELS.name_of(0.5) == "med"
        assert PAPER_3_LEVELS.name_of(0.86) == "high"

    def test_boundary_goes_up(self):
        assert PAPER_3_LEVELS.name_of(0.15) == "med"
        assert QUARTILE_LEVELS.level_of(0.25) == 1

    def test_even_schemes(self):
        assert EVEN_2_LEVELS.bounds == (0.5,)
        assert EVEN_3_LEVELS.level_of(0.99) == 2

    def test_invalid_schemes(self):
        with pytest.raises(ValueError):
            LevelScheme((0.5,), ("only",))
        with pytest.raises(ValueError):
            LevelScheme((0.8, 0.2), ("a", "b", "c"))

    def test_distribution_sums_to_one(self):
        rates = [0.0, 0.1, 0.5, 0.9, 1.0]
        dist = level_distribution(rates, PAPER_3_LEVELS)
        assert sum(dist.values()) == pytest.approx(1.0)
        assert dist["low"] == pytest.approx(2 / 5)

    def test_distribution_empty(self):
        dist = level_distribution([], PAPER_3_LEVELS)
        assert all(v == 0.0 for v in dist.values())


class TestStats:
    def test_gaussian_fit(self):
        rng = np.random.default_rng(0)
        rates = list(rng.normal(29.58, 7.69, size=2000))
        fit = fit_error_rates(rates)
        assert fit.mean == pytest.approx(29.58, abs=0.8)
        assert fit.std == pytest.approx(7.69, abs=0.5)
        assert fit.n == 2000

    def test_gaussian_fit_empty(self):
        fit = fit_error_rates([])
        assert fit.n == 0

    def test_pdf_peaks_at_mean(self):
        fit = fit_error_rates([10.0, 20.0, 30.0])
        xs = np.array([fit.mean - 10, fit.mean, fit.mean + 10])
        pdf = fit.pdf(xs)
        assert pdf[1] == max(pdf)

    def test_histogram_bins(self):
        edges, counts = histogram([2.0, 7.0, 7.5, 96.0], bin_width=5.0)
        assert counts[0] == 1 and counts[1] == 2
        assert counts.sum() == 4

    def test_dispersion_summary(self):
        s = dispersion_summary([25.0, 30.0, 35.0])
        assert s["mean"] == pytest.approx(30.0)
        assert s["min"] == 25.0 and s["max"] == 35.0
        assert 0 <= s["within_1sd"] <= 1

    def test_dispersion_empty(self):
        assert dispersion_summary([])["mean"] == 0.0


class TestReports:
    def test_render_table_aligns(self):
        out = render_table(["a", "bbb"], [[1, 2.5], ["xx", "y"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbb" in lines[1]
        assert len({len(l) for l in lines[2:]}) <= 2

    def test_render_bars_scales(self):
        out = render_bars({"x": 0.5, "y": 1.0}, width=10)
        assert "##########" in out
        assert "50.0%" in out

    def test_render_grouped_bars(self):
        out = render_grouped_bars({"g1": {"a": 0.25}, "g2": {"a": 0.75}})
        assert "25.0%" in out and "75.0%" in out

    def test_render_histogram(self):
        edges, counts = histogram([10.0, 12.0], bin_width=10.0, max_rate=20.0)
        out = render_histogram(edges, counts, title="H")
        assert out.startswith("H")
        assert "10.0" in out
