"""--static-prune: skipping statically proven tests must leave the
paper's metrics bit-for-bit identical to the unpruned campaign."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.apps import make_app
from repro.analyze import PreClassifier, extract_skeleton
from repro.fastfit import FastFIT
from repro.injection import Campaign, enumerate_points
from repro.profiling import profile_application


@pytest.fixture(scope="module")
def is_app():
    return make_app("is", "T")


@pytest.fixture(scope="module")
def is_profile(is_app):
    return profile_application(is_app)


@pytest.fixture(scope="module")
def is_points(is_profile):
    return enumerate_points(is_profile)


@pytest.fixture(scope="module")
def campaigns(is_app, is_profile, is_points):
    """The same campaign run twice: dynamically, and statically pruned."""
    kwargs = dict(tests_per_point=5, param_policy="all", seed=11)
    base = Campaign(is_app, is_profile, **kwargs).run(is_points)
    pre = PreClassifier(extract_skeleton(is_app), seed=11, param_policy="all")
    pruned = Campaign(is_app, is_profile, preclassifier=pre, **kwargs).run(is_points)
    return base, pruned


def _histogram(result):
    return Counter(
        t.outcome for pr in result.points.values() for t in pr.tests
    )


def test_histograms_identical(campaigns):
    base, pruned = campaigns
    assert _histogram(base) == _histogram(pruned)


def test_per_point_outcomes_identical(campaigns):
    """Not just the aggregate: every single test's outcome agrees."""
    base, pruned = campaigns
    for point, pr in base.points.items():
        outcomes = [t.outcome for t in pruned.points[point].tests]
        assert [t.outcome for t in pr.tests] == outcomes


def test_paper_metrics_identical(campaigns):
    base, pruned = campaigns
    assert base.outcome_fractions() == pruned.outcome_fractions()
    assert base.error_rates() == pruned.error_rates()


def test_nonzero_skip_fraction(campaigns):
    base, pruned = campaigns
    assert base.predicted_count() == 0
    skipped = pruned.predicted_count()
    total = sum(len(pr.tests) for pr in pruned.points.values())
    assert 0 < skipped < total


def test_predicted_results_are_marked(campaigns):
    _base, pruned = campaigns
    predicted = [
        t for pr in pruned.points.values() for t in pr.tests if t.predicted
    ]
    assert predicted
    assert all(t.record is None for t in predicted)
    assert all(t.detail.startswith("static:") for t in predicted)


def test_preclassifier_refused_with_parallel_or_store(is_app, is_profile, tmp_path):
    pre = PreClassifier(extract_skeleton(is_app), seed=0)
    with pytest.raises(ValueError, match="static pruning"):
        Campaign(is_app, is_profile, preclassifier=pre, jobs=2)
    with pytest.raises(ValueError, match="static pruning"):
        Campaign(is_app, is_profile, preclassifier=pre, db_path=tmp_path / "c.sqlite")
    with pytest.raises(ValueError, match="static pruning"):
        Campaign(is_app, is_profile, preclassifier=pre, checkpoint_dir=tmp_path / "ck")


def test_fastfit_facade_static_prune(is_app):
    ff = FastFIT(is_app, seed=3, tests_per_point=3, param_policy="all", static_prune=True)
    points = enumerate_points(ff.profile())[:10]
    result = ff.campaign(points=points)
    assert result.predicted_count() > 0
    # The analyze phase was timed, and the classifier is cached.
    assert "phase.analyze_s" in ff.metrics.to_dict()["timers"]
    assert ff.preclassifier() is ff.preclassifier()
