"""CLI contract for ``fastfit analyze`` and ``--static-prune``:
exit 0 = clean, 1 = findings, 2 = operator error."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def test_analyze_clean_app_exits_zero(capsys):
    assert main(["analyze", "--app", "is", "--tests", "3"]) == 0
    out = capsys.readouterr().out
    assert "collective-matching check" in out
    assert "lint: clean" in out
    assert "statically proven" in out


def test_analyze_with_crossval_sample(capsys):
    assert main(
        ["analyze", "--app", "is", "--tests", "3", "--sample", "0.25"]
    ) == 0
    out = capsys.readouterr().out
    assert "cross-validation" in out
    assert "mismatches: 0" in out


def test_analyze_json_summary(capsys):
    assert main(["analyze", "--app", "is", "--tests", "2", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["ok"] is True
    assert data["matching"]["ok"] is True
    assert data["preclassify"]["n_predicted"] > 0


def test_analyze_lint_only(capsys):
    assert main(["analyze", "--lint-only"]) == 0
    assert "lint: clean" in capsys.readouterr().out


def test_analyze_mutant_detected_exits_zero(capsys):
    assert main(["analyze", "--mutant", "wrong_root"]) == 0
    assert "DETECTED" in capsys.readouterr().out


def test_analyze_list_mutants(capsys):
    assert main(["analyze", "--list-mutants"]) == 0
    out = capsys.readouterr().out
    for name in ("order_swap", "wrong_root", "dtype_counts"):
        assert name in out


class TestOperatorErrors:
    """Misuse is one stderr line and exit 2, never a traceback."""

    def test_unknown_app(self):
        with pytest.raises(SystemExit) as exc:
            main(["analyze", "--app", "nosuch"])
        assert exc.value.code == 2

    def test_unknown_mutant(self, capsys):
        assert main(["analyze", "--mutant", "nosuch"]) == 2
        assert "unknown mutant" in capsys.readouterr().err

    def test_missing_app(self, capsys):
        assert main(["analyze"]) == 2
        assert "requires --app" in capsys.readouterr().err

    @pytest.mark.parametrize("sample", ["0", "-0.5", "1.5"])
    def test_bad_sample(self, sample, capsys):
        assert main(["analyze", "--app", "is", "--sample", sample]) == 2
        assert "--sample" in capsys.readouterr().err

    def test_lint_only_conflicts_with_mutant(self, capsys):
        assert main(["analyze", "--lint-only", "--mutant", "wrong_root"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_sample_conflicts_with_lint_only(self, capsys):
        assert main(["analyze", "--lint-only", "--sample", "0.5"]) == 2
        assert "--sample" in capsys.readouterr().err

    def test_static_prune_conflicts_with_jobs(self, capsys):
        assert main(
            ["campaign", "--app", "is", "--static-prune", "--jobs", "2"]
        ) == 2
        assert "--static-prune" in capsys.readouterr().err

    def test_static_prune_conflicts_with_db(self, tmp_path, capsys):
        assert main(
            ["run", "--static-prune", "--db", str(tmp_path / "c.sqlite")]
        ) == 2
        assert "--static-prune" in capsys.readouterr().err

    def test_static_prune_conflicts_with_checkpoint_dir(self, tmp_path, capsys):
        assert main(
            ["campaign", "--app", "is", "--static-prune",
             "--checkpoint-dir", str(tmp_path / "ck")]
        ) == 2
        assert "--static-prune" in capsys.readouterr().err


def test_campaign_static_prune_smoke(capsys):
    assert main(
        ["campaign", "--app", "is", "--tests", "3", "--max-points", "8",
         "--policy", "all", "--static-prune"]
    ) == 0
    out = capsys.readouterr().out
    assert "static prune:" in out
    assert "statically proven" in out
