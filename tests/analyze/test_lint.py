"""Determinism/simulator-safety lint: every rule fires on a seeded
violation, the suppression comment works, and the shipped simulator
scope is clean."""

from __future__ import annotations

import textwrap

from repro.analyze import lint_source, lint_tree
from repro.analyze.lint import DEFAULT_SCOPE, LINT_RULES


def _rules(source, hot=False):
    return {f.rule for f in lint_source(textwrap.dedent(source), "mod.py", hot=hot)}


def test_wallclock_flagged():
    assert "wallclock" in _rules(
        """
        import time

        def step():
            return time.time()
        """
    )


def test_datetime_now_flagged():
    assert "wallclock" in _rules(
        """
        import datetime

        def stamp():
            return datetime.datetime.now()
        """
    )


def test_global_rng_flagged():
    assert "global-rng" in _rules(
        """
        import random

        def pick():
            return random.random()
        """
    )


def test_numpy_legacy_global_rng_flagged():
    assert "global-rng" in _rules(
        """
        import numpy as np

        def pick():
            return np.random.rand(3)
        """
    )


def test_numpy_generator_api_allowed():
    assert not _rules(
        """
        import numpy as np

        def pick(seed):
            return np.random.default_rng(seed).integers(0, 10)
        """
    )


def test_set_iteration_flagged():
    assert "set-iteration" in _rules(
        """
        def walk(items):
            for x in {1, 2, 3}:
                yield x
        """
    )


def test_blocking_io_flagged():
    assert "blocking-io" in _rules(
        """
        def load(path):
            with open(path) as f:
                return f.read()
        """
    )


def test_socket_import_flagged():
    assert "blocking-io" in _rules(
        """
        import socket
        """
    )


def test_missing_slots_on_hot_path_flagged():
    source = """
        from dataclasses import dataclass

        @dataclass
        class Frame:
            depth: int
        """
    assert "missing-slots" in _rules(source, hot=True)
    # The same class off the hot path is fine.
    assert "missing-slots" not in _rules(source, hot=False)


def test_parse_error_is_a_finding():
    assert _rules("def broken(:\n") == {"parse-error"}


def test_suppression_comment_honored():
    assert not _rules(
        """
        import time

        def step():
            return time.time()  # lint: allow(wallclock)
        """
    )


def test_suppression_is_rule_specific():
    assert "wallclock" in _rules(
        """
        import time

        def step():
            return time.time()  # lint: allow(global-rng)
        """
    )


def test_every_rule_documented():
    assert set(LINT_RULES) >= {
        "wallclock", "global-rng", "set-iteration", "blocking-io",
        "missing-slots", "parse-error",
    }


def test_shipped_scope_is_clean():
    findings = lint_tree()
    assert findings == [], "\n".join(str(f) for f in findings)
    assert "simmpi" in DEFAULT_SCOPE and "analyze" in DEFAULT_SCOPE
