"""Collective-matching checker: clean on correct apps, and the seeded
mutant self-tests (a defect the checker cannot see is the failure)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.apps import make_app
from repro.analyze import (
    ANALYZE_MUTANTS,
    check_skeleton,
    extract_skeleton,
    mutate_op,
    replace_skeleton,
    run_mutant,
)


@pytest.mark.parametrize("name", ["is", "ft", "lu"])
def test_registered_apps_are_clean(name):
    report = check_skeleton(extract_skeleton(make_app(name, "T")))
    assert report.ok, report.describe()
    assert report.n_ops > 0
    assert report.n_comms >= 1


@pytest.mark.parametrize("name", sorted(ANALYZE_MUTANTS))
def test_every_seeded_mutant_is_detected(name):
    check = run_mutant(name)
    assert check.clean_before, "mutant baseline skeleton must be clean"
    assert check.detected, check.describe()
    for rule in check.expected:
        assert rule in check.found


def test_root_disagreement_is_flagged():
    sk = extract_skeleton(make_app("is", "T"))
    for i, op in enumerate(sk.ranks[1]):
        if op.root_world is not None:
            bad = mutate_op(sk, 1, i, root_world=(op.root_world + 1) % sk.nranks)
            break
    else:
        pytest.skip("app issues no rooted collectives")
    report = check_skeleton(bad)
    assert not report.ok
    assert any(f.rule == "root_mismatch" for f in report.errors)


def test_dropped_call_reports_structural_deadlock():
    sk = extract_skeleton(make_app("is", "T"))
    ranks = list(sk.ranks)
    ranks[0] = list(ranks[0][:-1])
    report = check_skeleton(replace_skeleton(sk, ranks))
    assert not report.ok
    assert any(f.rule == "length_mismatch" for f in report.errors)


def test_count_volume_disagreement_is_flagged():
    sk = extract_skeleton(make_app("is", "T"))
    for i, op in enumerate(sk.ranks[0]):
        if op.name == "Allreduce" and "count" in op.args:
            bad = mutate_op(
                sk, 0, i, args={**op.args, "count": int(op.args["count"]) + 1}
            )
            break
    else:
        pytest.skip("app issues no counted Allreduce")
    report = check_skeleton(bad)
    assert not report.ok
    assert any(f.rule == "count_mismatch" for f in report.errors)


def test_findings_carry_rank_attribution():
    sk = extract_skeleton(make_app("is", "T"))
    mutated = ANALYZE_MUTANTS["wrong_root"].apply(sk)
    report = check_skeleton(mutated)
    flagged = [f for f in report.errors if f.rule == "root_mismatch"]
    assert flagged and any(1 in f.ranks for f in flagged)


def test_mutants_are_value_preserving():
    """Applying a mutant must not corrupt the shared baseline skeleton."""
    sk = extract_skeleton(make_app("is", "T"))
    before = [dataclasses.replace(op) for op in sk.ranks[1]]
    ANALYZE_MUTANTS["op_swap"].apply(sk)
    assert sk.ranks[1] == before
