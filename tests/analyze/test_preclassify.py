"""Fault-outcome pre-classification: determinism, rule hygiene, and
spot-checks of individual rules against the simulator's real semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import make_app
from repro.analyze import (
    PRECLASSIFY_RULES,
    PreClassifier,
    extract_skeleton,
    predict_tests,
)
from repro.injection import FaultSpec, InjectionRunner, enumerate_points
from repro.injection.outcome import Outcome
from repro.profiling import profile_application


@pytest.fixture(scope="module")
def is_app():
    return make_app("is", "T")


@pytest.fixture(scope="module")
def is_skeleton(is_app):
    return extract_skeleton(is_app)


@pytest.fixture(scope="module")
def is_profile(is_app):
    return profile_application(is_app)


def _classifier(skeleton, seed=0, policy="all"):
    return PreClassifier(skeleton, seed=seed, param_policy=policy)


def test_predictions_use_registered_rules_only(is_skeleton, is_profile):
    pre = _classifier(is_skeleton)
    points = enumerate_points(is_profile)
    n_predicted = 0
    for _i, _t, _point, prediction in predict_tests(pre, points, 6):
        if prediction is None:
            continue
        n_predicted += 1
        assert prediction.rule in PRECLASSIFY_RULES
        assert isinstance(prediction.outcome, Outcome)
        assert prediction.param
    assert n_predicted > 0


def test_prediction_is_deterministic(is_skeleton, is_profile):
    points = enumerate_points(is_profile)
    a = list(predict_tests(_classifier(is_skeleton), points, 4))
    b = list(predict_tests(_classifier(is_skeleton), points, 4))
    assert a == b


def test_unknown_point_is_not_predicted(is_skeleton, is_profile):
    """A point the skeleton never saw must fall through to dynamic."""
    pre = _classifier(is_skeleton)
    point = enumerate_points(is_profile)[0]
    import dataclasses

    ghost = dataclasses.replace(point, site="nowhere.py:1")
    assert pre.predict(ghost, 0, 0) is None


def test_seed_changes_predictions_with_draws(is_skeleton, is_profile):
    """The classifier replays the campaign rng: different seeds pick
    different targets, so the prediction stream must differ somewhere."""
    points = enumerate_points(is_profile)
    a = [p for *_x, p in predict_tests(_classifier(is_skeleton, seed=0), points, 6)]
    b = [p for *_x, p in predict_tests(_classifier(is_skeleton, seed=9), points, 6)]
    assert a != b


def _spot_check(app, profile, skeleton, wanted_rule, seed=0, tests=12):
    """Find a prediction carrying ``wanted_rule`` and replay it live."""
    pre = _classifier(skeleton, seed=seed)
    runner = InjectionRunner(app, profile)
    points = enumerate_points(profile)
    for i, t, point, prediction in predict_tests(pre, points, tests):
        if prediction is None or prediction.rule != wanted_rule:
            continue
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=seed, spawn_key=(i, t))
        )
        from repro.injection.targets import pick_target

        param = pick_target(rng, point.collective, "all")
        assert param == prediction.param
        result = runner.run_one(FaultSpec(point, param, None), rng)
        assert result.outcome is prediction.outcome, (
            f"{wanted_rule}: predicted {prediction.outcome}, "
            f"got {result.outcome}: {result.detail}"
        )
        return
    pytest.skip(f"no {wanted_rule} prediction in the sampled slice")


@pytest.mark.parametrize(
    "rule",
    [
        "unmapped-handle",
        "corrupted-handle",
        "root-out-of-range",
        "negative-count",
        "oob-eager-read",
        "truncate-only-param",
    ],
)
def test_rule_spot_checks_against_simulator(is_app, is_profile, is_skeleton, rule):
    _spot_check(is_app, is_profile, is_skeleton, rule)
