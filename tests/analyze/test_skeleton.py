"""Skeleton extraction: the record-only dry run must agree with the
dynamic profiler about what the application does."""

from __future__ import annotations

import pytest

from repro.apps import make_app
from repro.analyze import extract_skeleton, mutate_op, replace_skeleton
from repro.injection import enumerate_points
from repro.profiling import profile_application


@pytest.fixture(scope="module")
def is_app():
    return make_app("is", "T")


@pytest.fixture(scope="module")
def is_skeleton(is_app):
    return extract_skeleton(is_app)


def test_skeleton_covers_every_rank(is_app, is_skeleton):
    assert is_skeleton.nranks == is_app.nranks
    assert len(is_skeleton.ranks) == is_app.nranks
    assert all(is_skeleton.ranks[r] for r in range(is_app.nranks))


def test_skeleton_sites_match_profile(is_app, is_skeleton):
    """Every (collective, site, invocation) the profiler observes must
    appear in the skeleton, and vice versa — the record-only stub and
    the real simulator see the same program."""
    profile = profile_application(is_app)
    profiled = {
        (p.rank, p.collective, p.site, p.invocation)
        for p in enumerate_points(profile)
    }
    skeletal = set(is_skeleton.op_index())
    assert profiled == skeletal


def test_skeleton_ops_carry_concrete_arguments(is_skeleton):
    for ops in is_skeleton.ranks:
        for op in ops:
            assert op.name
            assert op.site
            assert op.invocation >= 0
            assert isinstance(op.args, dict)


def test_op_index_is_unique(is_skeleton):
    index = is_skeleton.op_index()
    n_ops = sum(len(ops) for ops in is_skeleton.ranks)
    # One entry per (rank, collective, site, invocation): no collisions.
    assert sum(1 for _ in index) == len(index)
    assert len(index) == n_ops


def test_handle_tables_resolve_live_handles(is_skeleton):
    comms = is_skeleton.comms
    for op in is_skeleton.ranks[0]:
        handle = op.args.get("comm")
        if handle is None:
            continue
        state, resolved = comms.resolve_static(int(handle))
        assert state == "live"
        assert resolved == int(handle)


def test_datatype_table_knows_element_sizes(is_skeleton):
    sizes = is_skeleton.datatypes.sizes
    assert sizes, "datatype table must record element sizes"
    assert all(s > 0 for s in sizes.values())


def test_mutate_op_replaces_one_field(is_skeleton):
    mutated = mutate_op(is_skeleton, 0, 0, site="elsewhere:1")
    assert mutated.ranks[0][0].site == "elsewhere:1"
    # The original is untouched (skeletons are value objects).
    assert is_skeleton.ranks[0][0].site != "elsewhere:1"
    assert mutated.ranks[1] == is_skeleton.ranks[1]


def test_replace_skeleton_swaps_rank_sequences(is_skeleton):
    ranks = list(is_skeleton.ranks)
    ranks[0] = list(ranks[0][:-1])
    shorter = replace_skeleton(is_skeleton, ranks)
    assert len(shorter.ranks[0]) == len(is_skeleton.ranks[0]) - 1


def test_extraction_is_deterministic(is_app):
    a = extract_skeleton(is_app)
    b = extract_skeleton(is_app)
    assert a.op_index().keys() == b.op_index().keys()
    for ops_a, ops_b in zip(a.ranks, b.ranks):
        assert [o.args for o in ops_a] == [o.args for o in ops_b]
