"""Static-vs-dynamic cross-validation: the referee for the whole
pre-classification rule set.  Zero mismatches is the contract."""

from __future__ import annotations

import pytest

from repro.apps import make_app
from repro.analyze import cross_validate, extract_skeleton, mutate_op


@pytest.fixture(scope="module")
def is_app():
    return make_app("is", "T")


@pytest.fixture(scope="module")
def is_cv(is_app):
    return cross_validate(is_app, seed=0, tests_per_point=6, sample=1.0)


def test_zero_mismatches(is_cv):
    assert is_cv.ok
    assert is_cv.mismatches == []


def test_predictions_actually_checked(is_cv):
    assert is_cv.n_predicted > 0
    assert is_cv.n_checked == is_cv.n_predicted  # sample=1.0 checks all
    assert 0.0 < is_cv.coverage < 1.0
    assert sum(is_cv.rules.values()) == is_cv.n_predicted


def test_sampling_is_a_deterministic_stride(is_app):
    half = cross_validate(is_app, seed=0, tests_per_point=4, sample=0.5)
    full = cross_validate(is_app, seed=0, tests_per_point=4, sample=1.0)
    assert half.n_predicted == full.n_predicted
    assert 0 < half.n_checked < full.n_checked
    assert half.ok and full.ok


def test_bad_sample_rejected(is_app):
    with pytest.raises(ValueError, match="sample"):
        cross_validate(is_app, sample=0.0)
    with pytest.raises(ValueError, match="sample"):
        cross_validate(is_app, sample=1.5)


def test_dirty_skeleton_refused(is_app):
    """The truncate rules assume a checker-clean skeleton; a dirty one
    must be refused, not silently mispredicted."""
    sk = extract_skeleton(is_app)
    for i, op in enumerate(sk.ranks[1]):
        if op.root_world is not None:
            dirty = mutate_op(sk, 1, i, root_world=(op.root_world + 1) % sk.nranks)
            break
    else:
        pytest.skip("no rooted collectives")
    with pytest.raises(ValueError, match="matching checker"):
        cross_validate(is_app, skeleton=dirty)


def test_describe_is_informative(is_cv):
    text = is_cv.describe()
    assert "cross-validation" in text
    assert "mismatches: 0" in text
