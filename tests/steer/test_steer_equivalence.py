"""Trajectory equivalence: serial ↔ parallel ↔ killed-and-resumed.

The adaptive driver's contract is that scheduling is invisible: the same
(app, points, config) produces the same rounds, the same truncated test
streams, and the same predictions whether batches run in-process, across
a worker pool, through the SQLite store, or after being killed partway
and resumed.  These tests run the pinned LU campaign through each path
and compare full trajectories, not just summaries.
"""

import pytest

from repro.injection.space import enumerate_points
from repro.steer import adaptive_campaign

TESTS_PER_POINT = 12
BATCH_SIZE = 4
SEED = 7
CI_WIDTH = 0.3
N_POINTS = 12


@pytest.fixture(scope="module")
def lu_points(lu_profile):
    return enumerate_points(lu_profile)[:N_POINTS]


def run_adaptive(app, profile, points, **kw):
    return adaptive_campaign(
        app,
        profile,
        points,
        tests_per_point=TESTS_PER_POINT,
        batch_size=BATCH_SIZE,
        ci_width=CI_WIDTH,
        seed=SEED,
        param_policy="all",
        **kw,
    )


def trajectory(result):
    """Everything observable about a steering run, in comparable form."""
    return {
        "rounds": [
            (r.round_no, r.point_indices, r.tests_planned, r.tests_run,
             r.accuracy, r.mean_uncertainty)
            for r in result.rounds
        ],
        "curve": result.curve(),
        "stop_reason": result.stop_reason,
        "reached": result.reached_target,
        "predicted": {str(pt): lbl for pt, lbl in sorted(result.predicted.items())},
        "tested": {
            str(pt): [
                (t.spec.param, str(t.spec.bit), t.outcome.value)
                for t in pr.tests
            ]
            for pt, pr in sorted(result.tested.items())
        },
    }


@pytest.fixture(scope="module")
def serial_trajectory(lu_app, lu_profile, lu_points):
    return trajectory(run_adaptive(lu_app, lu_profile, lu_points))


class Killed(RuntimeError):
    """Injected mid-campaign crash."""


class KillerSink:
    """Progress sink that raises after a fixed number of snapshots."""

    def __init__(self, after: int):
        self.after = after
        self.emits = 0

    def emit(self, snap):
        self.emits += 1
        if self.emits >= self.after:
            raise Killed(f"injected kill after {self.emits} snapshots")

    def close(self):
        pass


def test_parallel_matches_serial(serial_trajectory, lu_app, lu_profile, lu_points):
    parallel = run_adaptive(lu_app, lu_profile, lu_points, jobs=2)
    assert trajectory(parallel) == serial_trajectory


def test_store_backed_matches_serial(
    serial_trajectory, lu_app, lu_profile, lu_points, tmp_path
):
    stored = run_adaptive(
        lu_app, lu_profile, lu_points, db_path=tmp_path / "steer.sqlite"
    )
    assert trajectory(stored) == serial_trajectory


def test_parallel_store_matches_serial(
    serial_trajectory, lu_app, lu_profile, lu_points, tmp_path
):
    both = run_adaptive(
        lu_app, lu_profile, lu_points, jobs=2, db_path=tmp_path / "steer.sqlite"
    )
    assert trajectory(both) == serial_trajectory


@pytest.mark.parametrize("kill_after", [1, 3])
def test_killed_and_resumed_matches_uninterrupted(
    serial_trajectory, lu_app, lu_profile, lu_points, tmp_path, kill_after
):
    # Kill the run partway through (after 1 snapshot: mid round 0;
    # after 3: deeper in), then resume from the store.  The replayed
    # units plus the freshly-run remainder must reproduce the
    # uninterrupted trajectory bit for bit.
    db = tmp_path / f"steer-{kill_after}.sqlite"
    with pytest.raises(Killed):
        run_adaptive(
            lu_app,
            lu_profile,
            lu_points,
            db_path=db,
            progress_sinks=[KillerSink(kill_after)],
        )
    assert db.exists()
    resumed = run_adaptive(lu_app, lu_profile, lu_points, db_path=db, resume=True)
    assert trajectory(resumed) == serial_trajectory
