"""Seeded end-to-end pins for the adaptive steering driver.

One module-scoped adaptive campaign over the LU kernel is pinned down to
its exact trajectory — rounds, batch composition, test counts, curve —
so any change to the sampler, the stopper, or the batch/seed plumbing
shows up as a concrete diff against known-good numbers rather than a
statistical wobble.
"""

import pytest

from repro.injection.space import enumerate_points
from repro.steer import SteeringResult, adaptive_campaign, tests_to_close

TESTS_PER_POINT = 12
BATCH_SIZE = 4
SEED = 7
CI_WIDTH = 0.3
N_POINTS = 12


@pytest.fixture(scope="module")
def lu_points(lu_profile):
    return enumerate_points(lu_profile)[:N_POINTS]


@pytest.fixture(scope="module")
def adaptive_result(lu_app, lu_profile, lu_points) -> SteeringResult:
    return adaptive_campaign(
        lu_app,
        lu_profile,
        lu_points,
        tests_per_point=TESTS_PER_POINT,
        batch_size=BATCH_SIZE,
        ci_width=CI_WIDTH,
        seed=SEED,
        param_policy="all",
    )


class TestPinnedTrajectory:
    """Exact numbers from the seeded run — the statistical pins."""

    def test_round_count_and_stop_reason(self, adaptive_result):
        assert len(adaptive_result.rounds) == 2
        assert adaptive_result.stop_reason == "accuracy"
        assert adaptive_result.reached_target

    def test_tested_predicted_split(self, adaptive_result, lu_points):
        assert len(adaptive_result.tested) == 8
        assert len(adaptive_result.predicted) == 4
        assert adaptive_result.total_points == N_POINTS
        # Disjoint cover of the candidate set.
        tested = set(adaptive_result.tested)
        predicted = set(adaptive_result.predicted)
        assert not tested & predicted
        assert tested | predicted == set(lu_points)

    def test_budget_curve_pin(self, adaptive_result):
        assert adaptive_result.tests_run == 93
        assert adaptive_result.tests_saved == 3
        assert adaptive_result.curve() == [(93, 0.75)]
        assert adaptive_result.final_accuracy == 0.75

    def test_stopper_actually_saved_tests(self, adaptive_result):
        # Every round plans the full per-point budget; the sequential
        # stopper must close at least one degenerate point early.
        for r in adaptive_result.rounds:
            assert r.tests_planned == len(r.point_indices) * TESTS_PER_POINT
        assert adaptive_result.tests_saved > 0
        # No point can close in fewer than the closed-form floor.
        floor = tests_to_close(CI_WIDTH)
        for pr in adaptive_result.tested.values():
            assert floor <= len(pr.tests) <= TESTS_PER_POINT

    def test_later_rounds_carry_uncertainty(self, adaptive_result):
        first, second = adaptive_result.rounds
        assert first.round_no == 0
        assert first.accuracy is None and first.mean_uncertainty is None
        assert second.accuracy == 0.75
        assert second.mean_uncertainty is not None
        assert 0.0 <= second.mean_uncertainty <= 1.0

    def test_batches_are_disjoint_global_indices(self, adaptive_result):
        seen = set()
        for r in adaptive_result.rounds:
            batch = set(r.point_indices)
            assert len(batch) == len(r.point_indices)
            assert not batch & seen
            assert all(0 <= i < N_POINTS for i in batch)
            seen |= batch

    def test_rerun_is_bit_identical(self, adaptive_result, lu_app, lu_profile, lu_points):
        again = adaptive_campaign(
            lu_app,
            lu_profile,
            lu_points,
            tests_per_point=TESTS_PER_POINT,
            batch_size=BATCH_SIZE,
            ci_width=CI_WIDTH,
            seed=SEED,
            param_policy="all",
        )
        assert again.rounds == adaptive_result.rounds
        assert again.curve() == adaptive_result.curve()
        assert again.predicted == adaptive_result.predicted
        assert set(again.tested) == set(adaptive_result.tested)
        for pt, pr in adaptive_result.tested.items():
            assert [t.outcome for t in again.tested[pt].tests] == [
                t.outcome for t in pr.tests
            ]


class TestBudget:
    """The budget is a hard ceiling: never exceeded, whatever the path."""

    @pytest.mark.parametrize("budget", [12, 24, 40, 60])
    def test_budget_never_exceeded(self, lu_app, lu_profile, lu_points, budget):
        r = adaptive_campaign(
            lu_app,
            lu_profile,
            lu_points,
            tests_per_point=TESTS_PER_POINT,
            batch_size=BATCH_SIZE,
            ci_width=CI_WIDTH,
            seed=SEED,
            param_policy="all",
            budget=budget,
        )
        assert r.tests_run <= budget
        assert r.stop_reason in ("budget", "accuracy", "exhausted")

    def test_tight_budget_stops_with_budget_reason(self, lu_app, lu_profile, lu_points):
        # One affordable point in round 0, none in round 1: the driver
        # must report "budget" without ever reaching verification.
        r = adaptive_campaign(
            lu_app,
            lu_profile,
            lu_points,
            tests_per_point=TESTS_PER_POINT,
            batch_size=BATCH_SIZE,
            ci_width=CI_WIDTH,
            seed=SEED,
            param_policy="all",
            budget=TESTS_PER_POINT,
        )
        assert r.stop_reason == "budget"
        assert not r.reached_target
        assert len(r.tested) == 1
        assert r.tests_run <= TESTS_PER_POINT
        assert r.curve() == []

    def test_budget_validation(self, lu_app, lu_profile, lu_points):
        with pytest.raises(ValueError):
            adaptive_campaign(
                lu_app, lu_profile, lu_points, budget=0, tests_per_point=4
            )


class TestExhaustion:
    def test_unreachable_target_degenerates_to_full_campaign(
        self, lu_app, lu_profile, lu_points
    ):
        # With an unreachable 100% target the loop tests everything —
        # the paper's worst case: adaptive degenerates to traditional.
        r = adaptive_campaign(
            lu_app,
            lu_profile,
            lu_points[:8],
            tests_per_point=TESTS_PER_POINT,
            batch_size=3,
            ci_width=CI_WIDTH,
            seed=SEED,
            param_policy="all",
            accuracy_target=1.0,
        )
        if not r.reached_target:
            assert r.stop_reason == "exhausted"
            assert len(r.tested) == 8
            assert not r.predicted
        assert set(r.tested) | set(r.predicted) == set(lu_points[:8])


class TestValidation:
    def test_bad_arguments(self, lu_app, lu_profile, lu_points):
        with pytest.raises(ValueError):
            adaptive_campaign(lu_app, lu_profile, [])
        with pytest.raises(ValueError):
            adaptive_campaign(lu_app, lu_profile, lu_points, accuracy_target=0.0)
        with pytest.raises(ValueError):
            adaptive_campaign(lu_app, lu_profile, lu_points, accuracy_target=1.5)
        with pytest.raises(ValueError):
            adaptive_campaign(lu_app, lu_profile, lu_points, sampler_mode="random")
        with pytest.raises(ValueError):
            adaptive_campaign(
                lu_app, lu_profile, lu_points, labeler=lambda pr: 0
            )  # labeler without label_names
