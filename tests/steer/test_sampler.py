"""Property tests for the uncertainty sampler.

The adaptive driver's reproducibility rests on ``select_batch`` being a
pure function of (candidates, scores) — hypothesis drives the properties
that guarantee it: determinism, uniqueness, subset-of-pool, smallest-
index tie-break, and no-starvation under without-replacement draining.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.steer import SAMPLER_MODES, select_batch, uncertainty_scores

SETTINGS = dict(max_examples=60, deadline=None, derandomize=True)


class FakeModel:
    """predict_proba stub returning a fixed row-stochastic matrix."""

    def __init__(self, proba):
        self.proba = np.asarray(proba, dtype=np.float64)

    def predict_proba(self, X):
        return self.proba[: len(X)]


# ---------------------------------------------------------------------------
# uncertainty_scores


class TestUncertaintyScores:
    def test_margin_pins(self):
        model = FakeModel([[1.0, 0.0], [0.5, 0.5], [0.75, 0.25]])
        scores = uncertainty_scores(model, np.zeros((3, 1)), "margin")
        assert scores == pytest.approx([0.0, 0.5, 0.25])

    def test_entropy_pins(self):
        model = FakeModel([[1.0, 0.0], [0.5, 0.5], [0.25, 0.25, 0.25, 0.25][:2]])
        scores = uncertainty_scores(model, np.zeros((3, 1)), "entropy")
        # Certain vote: 0 nats (0*log 0 := 0, no warnings).  Even
        # two-way split: log 2.
        assert scores[0] == pytest.approx(0.0)
        assert scores[1] == pytest.approx(math.log(2))

    def test_entropy_separates_two_way_from_four_way(self):
        # Margin cannot tell these apart (both 0.75 margin-score is
        # wrong: margin is 0.5 both ways when max prob is 0.5 vs 0.25).
        model = FakeModel([[0.5, 0.5, 0.0, 0.0], [0.25, 0.25, 0.25, 0.25]])
        scores = uncertainty_scores(model, np.zeros((2, 1)), "entropy")
        assert scores[0] == pytest.approx(math.log(2))
        assert scores[1] == pytest.approx(math.log(4))
        assert scores[1] > scores[0]

    def test_empty_candidate_matrix(self):
        model = FakeModel(np.zeros((0, 3)))
        assert uncertainty_scores(model, np.zeros((0, 2))).shape == (0,)

    def test_unknown_mode_rejected(self):
        model = FakeModel([[1.0, 0.0]])
        with pytest.raises(ValueError, match="unknown sampler mode"):
            uncertainty_scores(model, np.zeros((1, 1)), "random")

    @settings(**SETTINGS)
    @given(
        rows=st.lists(
            st.lists(st.floats(0.001, 1.0), min_size=3, max_size=3),
            min_size=1,
            max_size=12,
        ),
        mode=st.sampled_from(SAMPLER_MODES),
    )
    def test_scores_bounded_and_aligned(self, rows, mode):
        proba = np.array(rows)
        proba /= proba.sum(axis=1, keepdims=True)
        scores = uncertainty_scores(FakeModel(proba), np.zeros((len(rows), 1)), mode)
        assert scores.shape == (len(rows),)
        upper = 1.0 if mode == "margin" else math.log(3)
        assert np.all(scores >= -1e-12)
        assert np.all(scores <= upper + 1e-12)


# ---------------------------------------------------------------------------
# select_batch

pools = st.lists(st.integers(0, 200), min_size=1, max_size=30, unique=True)


class TestSelectBatch:
    def test_picks_top_scores(self):
        assert select_batch([10, 11, 12, 13], [0.1, 0.9, 0.5, 0.7], 2) == [11, 13]

    def test_tie_breaks_toward_smaller_index(self):
        assert select_batch([7, 3, 5], [0.5, 0.5, 0.5], 2) == [3, 5]

    def test_validation(self):
        with pytest.raises(ValueError):
            select_batch([1, 2], [0.1, 0.2], 0)
        with pytest.raises(ValueError):
            select_batch([1, 2], [0.1], 2)
        with pytest.raises(ValueError, match="unique"):
            select_batch([1, 1], [0.1, 0.2], 1)

    @settings(**SETTINGS)
    @given(
        pool=pools,
        batch_size=st.integers(1, 8),
        seed=st.integers(0, 2**16),
    )
    def test_deterministic_subset_without_duplicates(self, pool, batch_size, seed):
        scores = np.random.default_rng(seed).random(len(pool))
        batch = select_batch(pool, scores, batch_size)
        # Deterministic: same inputs, same output.
        assert batch == select_batch(list(pool), np.array(scores), batch_size)
        # A duplicate-free subset of the pool, at most batch_size long.
        assert len(batch) == min(batch_size, len(pool))
        assert len(set(batch)) == len(batch)
        assert set(batch) <= set(pool)

    @settings(**SETTINGS)
    @given(
        pool=pools,
        batch_size=st.integers(1, 8),
        seed=st.integers(0, 2**16),
    )
    def test_selected_scores_dominate_rest(self, pool, batch_size, seed):
        scores = np.random.default_rng(seed).random(len(pool))
        by_cand = dict(zip(pool, scores))
        batch = select_batch(pool, scores, batch_size)
        left_out = set(pool) - set(batch)
        if batch and left_out:
            assert min(by_cand[c] for c in batch) >= max(
                by_cand[c] for c in left_out
            )

    @settings(**SETTINGS)
    @given(
        pool=pools,
        batch_size=st.integers(1, 8),
        seed=st.integers(0, 2**16),
    )
    def test_no_starvation_under_drain(self, pool, batch_size, seed):
        # The driver removes each batch from the pool (selection without
        # replacement), so every candidate — even a permanently
        # zero-scored one — must be selected within ceil(n / batch)
        # rounds.  An adversarial score function pins the worst case.
        rng = np.random.default_rng(seed)
        remaining = list(pool)
        rounds = 0
        limit = math.ceil(len(pool) / batch_size)
        while remaining:
            scores = rng.random(len(remaining))
            scores[np.argmin(remaining)] = 0.0  # starve the smallest id
            batch = select_batch(remaining, scores, batch_size)
            assert batch, "drain made no progress"
            remaining = [c for c in remaining if c not in set(batch)]
            rounds += 1
        assert rounds == limit
