"""Sequential-stopping unit tests against closed-form binomial cases.

The Wilson interval has exact closed forms at the degenerate histograms
(``k = 0`` / ``k = n``) a fault-injection point usually produces; the
pins below are hand-derived from them, so any drift in the interval
arithmetic — and therefore in where every adaptive campaign truncates
its test streams — fails here with explicit numbers.
"""

import math
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.injection.outcome import Outcome
from repro.injection.runner import TestResult as InjectionTestResult
from repro.injection.space import FaultSpec, InjectionPoint
from repro.steer import (
    DEFAULT_Z,
    SequentialStopper,
    tests_to_close,
    wilson_interval,
    wilson_width,
)

SETTINGS = dict(max_examples=100, deadline=None, derandomize=True)

POINT = InjectionPoint(0, "bcast", "app.py:1", 0)


def _test(outcome: Outcome) -> InjectionTestResult:
    return InjectionTestResult(FaultSpec(POINT, "buffer", None), outcome, None)


class TestWilsonInterval:
    def test_zero_trials_is_vacuous(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_closed_form_k0(self):
        # k = 0: interval is exactly [0, z^2 / (n + z^2)].
        z = DEFAULT_Z
        for n in (1, 5, 12, 100):
            lo, hi = wilson_interval(0, n, z)
            assert lo == pytest.approx(0.0, abs=1e-12)
            assert hi == pytest.approx(z * z / (n + z * z), abs=1e-12)

    def test_closed_form_kn_symmetric(self):
        # k = n mirrors k = 0: [n / (n + z^2), 1].
        z = DEFAULT_Z
        for n in (1, 5, 12, 100):
            lo, hi = wilson_interval(n, n, z)
            assert hi == pytest.approx(1.0, abs=1e-12)
            assert lo == pytest.approx(n / (n + z * z), abs=1e-12)
            # Exact mirror of the k = 0 interval.
            lo0, hi0 = wilson_interval(0, n, z)
            assert lo == pytest.approx(1.0 - hi0, abs=1e-12)

    def test_half_split_pin(self):
        # k = 5, n = 10, z = 1.96: center = (0.5 + z^2/20) / (1 + z^2/10),
        # half = (z / (1 + z^2/10)) * sqrt(0.025 + z^2/400).
        z = DEFAULT_Z
        denom = 1.0 + z * z / 10
        center = (0.5 + z * z / 20) / denom
        half = (z / denom) * math.sqrt(0.025 + z * z / 400)
        lo, hi = wilson_interval(5, 10, z)
        assert lo == pytest.approx(center - half, abs=1e-12)
        assert hi == pytest.approx(center + half, abs=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(0, -1)
        with pytest.raises(ValueError):
            wilson_interval(3, 2)
        with pytest.raises(ValueError):
            wilson_interval(-1, 2)
        with pytest.raises(ValueError):
            wilson_interval(0, 5, z=0.0)

    @settings(**SETTINGS)
    @given(n=st.integers(0, 500), frac=st.floats(0.0, 1.0))
    def test_interval_is_valid_and_contains_p_hat(self, n, frac):
        k = int(round(n * frac))
        lo, hi = wilson_interval(k, n)
        assert 0.0 <= lo <= hi <= 1.0
        if n > 0:
            assert lo - 1e-12 <= k / n <= hi + 1e-12

    @settings(**SETTINGS)
    @given(n=st.integers(1, 400))
    def test_degenerate_width_shrinks_with_n(self, n):
        assert wilson_width(0, n + 1) < wilson_width(0, n)


class TestTestsToClose:
    def test_paper_default_pin(self):
        # z = 1.96, w = 0.25: ceil(1.96^2 * 0.75 / 0.25) = ceil(11.5248) = 12.
        assert tests_to_close(0.25) == 12

    def test_is_minimal(self):
        # n = tests_to_close(w) closes a degenerate histogram below w;
        # n - 1 does not.
        for w in (0.1, 0.2, 0.25, 0.3, 0.5):
            n = tests_to_close(w)
            assert wilson_width(0, n) <= w
            if n > 1:
                assert wilson_width(0, n - 1) > w

    def test_validation(self):
        with pytest.raises(ValueError):
            tests_to_close(0.0)
        with pytest.raises(ValueError):
            tests_to_close(1.5)
        with pytest.raises(ValueError):
            tests_to_close(0.25, z=-1.0)


class TestSequentialStopper:
    def test_degenerate_stream_stops_at_closed_form(self):
        stopper = SequentialStopper(ci_width=0.25, min_tests=1)
        tests = []
        stopped_at = None
        for i in range(50):
            tests.append(_test(Outcome.SUCCESS))
            if stopper.should_stop(tests):
                stopped_at = len(tests)
                break
        assert stopped_at == tests_to_close(0.25) == 12

    def test_all_errors_stream_stops_symmetrically(self):
        stopper = SequentialStopper(ci_width=0.25, min_tests=1)
        tests = []
        for _ in range(tests_to_close(0.25)):
            tests.append(_test(Outcome.SEG_FAULT))
        assert stopper.should_stop(tests)

    def test_min_tests_guard(self):
        # Even a width-1.0 stopper (always closed) waits for min_tests.
        stopper = SequentialStopper(ci_width=1.0, min_tests=6)
        tests = []
        for i in range(1, 10):
            tests.append(_test(Outcome.SUCCESS))
            assert stopper.should_stop(tests) == (i >= 6)

    def test_tool_errors_are_excluded(self):
        # TOOL_ERROR contributes to neither n nor k: a stream of harness
        # failures never converges, mirroring PointResult.error_rate.
        stopper = SequentialStopper(ci_width=0.25, min_tests=1)
        tests = [_test(Outcome.TOOL_ERROR) for _ in range(100)]
        assert not stopper.should_stop(tests)
        # Interleaved tool errors delay the stop to the same response
        # count as a clean stream.
        mixed = []
        responses = 0
        for i in range(100):
            mixed.append(_test(Outcome.TOOL_ERROR if i % 2 else Outcome.SUCCESS))
            if i % 2 == 0:
                responses += 1
            if stopper.should_stop(mixed):
                break
        assert responses == tests_to_close(0.25)

    def test_mixed_stream_needs_more_tests(self):
        # An even SUCCESS/SEG_FAULT split has the widest interval; it
        # must not stop where the degenerate stream does.
        stopper = SequentialStopper(ci_width=0.25, min_tests=1)
        n = tests_to_close(0.25)
        tests = [
            _test(Outcome.SUCCESS if i % 2 else Outcome.SEG_FAULT)
            for i in range(n)
        ]
        assert not stopper.should_stop(tests)

    def test_decision_is_pure_function_of_prefix(self):
        stopper = SequentialStopper(ci_width=0.3, min_tests=2)
        stream = [
            _test(Outcome.SUCCESS if i % 3 else Outcome.WRONG_ANS)
            for i in range(30)
        ]
        decisions = [stopper.should_stop(stream[: i + 1]) for i in range(30)]
        again = [stopper.should_stop(stream[: i + 1]) for i in range(30)]
        assert decisions == again

    def test_validation(self):
        with pytest.raises(ValueError):
            SequentialStopper(ci_width=0.0)
        with pytest.raises(ValueError):
            SequentialStopper(ci_width=1.5)
        with pytest.raises(ValueError):
            SequentialStopper(ci_width=0.25, min_tests=0)
        with pytest.raises(ValueError):
            SequentialStopper(ci_width=0.25, z=0.0)

    def test_frozen_hashable_picklable(self):
        # Workers receive the stopper inside the pickled payload.
        stopper = SequentialStopper(ci_width=0.25, min_tests=6)
        assert hash(stopper) == hash(SequentialStopper(ci_width=0.25, min_tests=6))
        assert pickle.loads(pickle.dumps(stopper)) == stopper
        with pytest.raises(Exception):
            stopper.ci_width = 0.5

    def test_fingerprint_is_json_stable(self):
        import json

        fp = SequentialStopper(ci_width=0.25).fingerprint()
        assert json.loads(json.dumps(fp)) == {
            "ci_width": 0.25, "min_tests": 6, "z": DEFAULT_Z,
        }
