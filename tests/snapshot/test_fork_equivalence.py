"""Forked test streams must be bit-identical to from-scratch replays.

The contract under test is the engine's whole reason to exist: a test
served by forking a parked fault-free prefix is indistinguishable —
spec, outcome, injection record, detail string — from the same test
replayed from t=0.  Checked through every integration layer: the
fork-equivalence oracle itself, serial campaigns, ``--jobs 4``, and a
killed-then-resumed DB-backed campaign, plus the seeded engine mutants
that prove the oracle can fail.
"""

import pytest

from repro.injection import Campaign, enumerate_points
from repro.snapshot import SNAPSHOT_MUTANTS, snapshot_supported
from repro.store import CampaignDB
from repro.verify import fork_equivalence

from tests.store.test_equivalence import stream_signature

pytestmark = pytest.mark.skipif(
    not snapshot_supported(), reason="snapshot-and-fork needs os.fork"
)

TESTS_PER_POINT = 6
SEED = 17


@pytest.fixture(scope="module")
def points(lu_profile):
    return enumerate_points(lu_profile)[:5]


def run_campaign(lu_app, lu_profile, points, **kwargs):
    return Campaign(
        lu_app, lu_profile, tests_per_point=TESTS_PER_POINT,
        param_policy="all", seed=SEED, **kwargs,
    ).run(points)


@pytest.fixture(scope="module")
def scratch_reference(lu_app, lu_profile, points):
    """The snapshot-free serial stream every other run must equal."""
    return run_campaign(lu_app, lu_profile, points, snapshot=False)


def test_oracle_reports_identical_streams(lu_app, lu_profile):
    report = fork_equivalence(lu_app, profile=lu_profile, seed=3, tests_per_point=3)
    assert report.identical, report.describe()
    assert report.ok
    assert report.mismatches == []


def test_serial_snapshot_campaign_bit_identical(
    scratch_reference, lu_app, lu_profile, points
):
    forked = run_campaign(lu_app, lu_profile, points, snapshot=True)
    assert stream_signature(forked) == stream_signature(scratch_reference)


def test_jobs4_snapshot_campaign_bit_identical(
    scratch_reference, lu_app, lu_profile, points
):
    forked = run_campaign(lu_app, lu_profile, points, snapshot=True, jobs=4)
    assert stream_signature(forked) == stream_signature(scratch_reference)


def test_killed_then_resumed_snapshot_campaign_bit_identical(
    scratch_reference, lu_app, lu_profile, points, tmp_path
):
    """Kill a snapshot-serving DB campaign halfway, resume it: the merged
    stream still equals the snapshot-free reference."""
    db = tmp_path / "killed.sqlite"

    class Killed(RuntimeError):
        pass

    def killer(done, total):
        if done >= total // 2:
            raise Killed(f"{done}/{total}")

    with pytest.raises(Killed):
        run_campaign(
            lu_app, lu_profile, points, snapshot=True, db_path=db, progress=killer
        )
    with CampaignDB(db) as cdb:
        assert cdb.campaign()["complete"] == 0

    resumed = run_campaign(
        lu_app, lu_profile, points, snapshot=True, db_path=db, resume=True
    )
    assert stream_signature(resumed) == stream_signature(scratch_reference)


@pytest.mark.parametrize("mutant", sorted(SNAPSHOT_MUTANTS))
def test_seeded_engine_mutants_are_detected(lu_app, lu_profile, mutant):
    report = fork_equivalence(
        lu_app, profile=lu_profile, seed=3, tests_per_point=3, mutant=mutant
    )
    assert not report.identical, report.describe()
    assert report.ok


def test_mutant_spread_includes_late_invocations(lu_profile):
    """`snapshot_wrong_invocation` shifts the park only when the target
    invocation is > 0 — the oracle's point spread must include one."""
    from repro.verify.snapshot_check import fork_equivalence as fe  # noqa: F401
    space = enumerate_points(lu_profile)
    n = min(4, len(space))
    idx = sorted({round(i * (len(space) - 1) / max(1, n - 1)) for i in range(n)})
    assert any(space[i].invocation > 0 for i in idx)
