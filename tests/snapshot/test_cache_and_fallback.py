"""Snapshot cache bounds and the engine's full-replay fallbacks.

The LRU cache is byte-budgeted (arena copies dominate), and every path
the fork engine cannot serve must degrade to a plain ``run_one`` replay
with the correct telemetry — never a wrong result.
"""

import dataclasses

import numpy as np
import pytest

from repro.injection import enumerate_points
from repro.injection.runner import InjectionRunner
from repro.injection.space import FaultSpec, InjectionPoint
from repro.injection.targets import pick_target
from repro.obs.metrics import MetricsRegistry
from repro.snapshot import SnapshotCache, SnapshotEngine, snapshot_supported
from repro.snapshot.snapshot import SimSnapshot

pytestmark = pytest.mark.skipif(
    not snapshot_supported(), reason="snapshot-and-fork needs os.fork"
)


def _fake_snapshot(point, size):
    return SimSnapshot(
        point=point,
        nranks=1,
        arenas=(bytes(size),),
        brks=(0,),
        seg_counts=(0,),
        mailbox={},
        waiting={},
        ready_ranks=(0,),
        steps=0,
        fibers=(),
        inbound=((),),
        target_pending=None,
    )


def _point(i):
    return InjectionPoint(0, "Allreduce", f"site.py:{i}", 0)


class TestSnapshotCacheLRU:
    def test_eviction_under_byte_budget(self):
        cache = SnapshotCache(max_bytes=250)
        for i in range(3):
            cache.put(_point(i), _fake_snapshot(_point(i), 100))
        # Third insert exceeds 250 bytes: the least recent entry goes.
        assert len(cache) == 2
        assert cache.evictions == 1
        assert _point(0) not in cache
        assert _point(1) in cache and _point(2) in cache
        assert cache.nbytes == 200

    def test_get_refreshes_recency(self):
        cache = SnapshotCache(max_bytes=250)
        cache.put(_point(0), _fake_snapshot(_point(0), 100))
        cache.put(_point(1), _fake_snapshot(_point(1), 100))
        assert cache.get(_point(0)) is not None  # 0 becomes most recent
        cache.put(_point(2), _fake_snapshot(_point(2), 100))
        assert _point(1) not in cache
        assert _point(0) in cache

    def test_oversized_snapshot_not_retained(self):
        cache = SnapshotCache(max_bytes=50)
        cache.put(_point(0), _fake_snapshot(_point(0), 100))
        assert len(cache) == 0
        assert cache.nbytes == 0

    def test_pop_releases_bytes(self):
        cache = SnapshotCache(max_bytes=1000)
        cache.put(_point(0), _fake_snapshot(_point(0), 100))
        cache.pop(_point(0))
        assert cache.nbytes == 0
        assert _point(0) not in cache


@pytest.fixture(scope="module")
def runner(lu_app, lu_profile):
    return InjectionRunner(lu_app, lu_profile)


@pytest.fixture(scope="module")
def late_point(lu_profile):
    points = enumerate_points(lu_profile)
    return max(points, key=lambda p: p.invocation)


def _tasks(point, n=3, seed=5):
    tasks = []
    for t in range(n):
        rng = np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=(t,)))
        tasks.append((FaultSpec(point, pick_target(rng, point.collective, "buffer"), None), rng))
    return tasks


def _scratch(runner, point, n=3, seed=5):
    return [runner.run_one(spec, rng) for spec, rng in _tasks(point, n, seed)]


def _sig(tests):
    return [
        (repr(t.spec.point), t.spec.param, t.spec.bit, t.outcome.name, t.detail)
        for t in tests
    ]


class TestEngineFallbacks:
    def test_ff_divergence_falls_back_to_fresh_prefix(self, runner, late_point):
        """Tamper with the cached snapshot: the byte-exact re-park check
        must catch it, drop the entry, and re-serve from t=0 — with the
        stream still identical to scratch."""
        m = MetricsRegistry()
        engine = SnapshotEngine(runner, metrics=m)
        first = engine.serve_point(late_point, _tasks(late_point))
        snap = engine.cache.get(late_point)
        assert snap is not None
        bad = bytearray(snap.arenas[0])
        bad[len(bad) // 2] ^= 0xFF
        engine.cache.put(
            late_point,
            dataclasses.replace(snap, arenas=(bytes(bad),) + snap.arenas[1:]),
        )
        second = engine.serve_point(late_point, _tasks(late_point))
        assert _sig(second) == _sig(first) == _sig(_scratch(runner, late_point))
        assert m.counter("snapshot.ff_divergence").value == 1
        # The poisoned snapshot was dropped and a clean one re-captured.
        assert engine.cache.get(late_point) is not None

    def test_nondeterministic_app_served_by_full_replay(self, runner, late_point):
        m = MetricsRegistry()
        engine = SnapshotEngine(runner, metrics=m)
        deterministic = runner.app.deterministic
        try:
            runner.app.deterministic = False
            results = engine.serve_point(late_point, _tasks(late_point))
        finally:
            runner.app.deterministic = deterministic
        assert _sig(results) == _sig(_scratch(runner, late_point))
        assert m.counter("snapshot.fallback_tests").value == 3
        assert m.counter("snapshot.forks").value == 0

    def test_unreachable_site_served_by_full_replay(self, runner, lu_profile):
        """A park that never fires (invocation beyond the app's horizon)
        must degrade to scratch replays, not hang or die."""
        point = enumerate_points(lu_profile)[0]
        ghost = dataclasses.replace(point, invocation=point.invocation + 10_000)
        m = MetricsRegistry()
        engine = SnapshotEngine(runner, metrics=m)
        results = engine.serve_point(ghost, _tasks(ghost))
        assert _sig(results) == _sig(_scratch(runner, ghost))
        assert m.counter("snapshot.fallback_tests").value == 3

    def test_metrics_flow_through_serve(self, runner, late_point):
        m = MetricsRegistry()
        engine = SnapshotEngine(runner, metrics=m)
        engine.serve_point(late_point, _tasks(late_point))
        engine.serve_point(late_point, _tasks(late_point))
        counters = m.to_dict()["counters"]
        assert counters["snapshot.misses"] == 1
        assert counters["snapshot.hits"] == 1
        assert counters["snapshot.forks"] == 6
        assert m.gauge("snapshot.bytes").value == engine.cache.nbytes > 0
        assert m.timer("snapshot.fastforward_s").count == 1
