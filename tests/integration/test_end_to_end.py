"""End-to-end integration: paper-shaped behaviours on tiny workloads.

These tests assert the qualitative *shapes* the paper reports, on
problem class T so the suite stays fast; the full 32-rank versions live
in the benchmark harness.
"""

import numpy as np
import pytest

from repro import FastFIT
from repro.analysis import PAPER_3_LEVELS, level_distribution
from repro.injection import Campaign, Outcome, enumerate_points
from repro.ml import correlation_table
from repro.pruning import select_context, select_semantic


@pytest.fixture(scope="module")
def lammps_reps(lammps_profile):
    sem = select_semantic(lammps_profile)
    ctx = select_context(lammps_profile, sem.selected_points_list)
    return ctx.selected_points_list


@pytest.fixture(scope="module")
def lammps_campaign_all(lammps_app, lammps_profile, lammps_reps):
    campaign = Campaign(
        lammps_app, lammps_profile, tests_per_point=12, param_policy="buffer", seed=5
    )
    return campaign.run(lammps_reps)


def test_pruning_shrinks_space_substantially(lammps_profile, lammps_reps):
    total = len(enumerate_points(lammps_profile))
    assert len(lammps_reps) < total * 0.5


def test_lammps_success_dominates(lammps_campaign_all):
    """Paper Fig. 10: ~65 % of LAMMPS buffer-fault tests succeed."""
    fractions = lammps_campaign_all.outcome_fractions()
    assert fractions[Outcome.SUCCESS] > 0.4
    assert max(fractions, key=fractions.get) is Outcome.SUCCESS


def test_lammps_inf_loop_is_rare(lammps_campaign_all):
    fractions = lammps_campaign_all.outcome_fractions()
    assert fractions[Outcome.INF_LOOP] <= min(
        fractions[Outcome.SUCCESS], 0.25
    )


def test_lammps_allreduce_low_error_rate(lammps_campaign_all):
    """Paper Fig. 11: MPI_Allreduce shows a low error rate despite
    dominating the collective mix."""
    per_coll = lammps_campaign_all.by_collective()
    rates = {name: np.mean(c.error_rates()) for name, c in per_coll.items()}
    assert rates["Allreduce"] <= 0.75
    dist = level_distribution(per_coll["Allreduce"].error_rates(), PAPER_3_LEVELS)
    assert dist["low"] + dist["med"] >= dist["high"]


def test_correlation_table_in_unit_interval(lammps_profile, lammps_campaign_all):
    table = correlation_table(lammps_profile, lammps_campaign_all)
    assert all(0.0 <= v <= 1.0 for v in table.values())


def test_fastfit_total_reduction_grows_with_stages(lammps_app):
    ff = FastFIT(lammps_app, seed=0, tests_per_point=4)
    report = ff.run(threshold=0.4, batch_size=6)
    row = report.table3_row()
    assert row["Total"] >= report.pruning.combined_reduction - 1e-9
    assert 0.0 < row["Total"] < 1.0


def test_barrier_faults_are_severe(lu_app, lu_profile):
    """Paper Figs. 8/11: faulty MPI_Barrier is lethal (its only
    parameter is the communicator)."""
    points = [p for p in enumerate_points(lu_profile) if p.collective == "Barrier"]
    campaign = Campaign(lu_app, lu_profile, tests_per_point=15, param_policy="buffer", seed=2)
    result = campaign.run(points[:2])
    rates = result.error_rates()
    assert np.mean(rates) > 0.5
