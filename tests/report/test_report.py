"""HTML report builder: sections, anchors, and content checks."""

import pytest

from repro.injection import Campaign, enumerate_points
from repro.report import SECTIONS, build_report
from repro.store import CampaignDB, CampaignStoreError


@pytest.fixture(scope="module")
def campaign_db(tmp_path_factory, lu_app, lu_profile):
    """A small completed DB-backed campaign (with progress telemetry)."""
    db_path = tmp_path_factory.mktemp("report") / "c.sqlite"
    points = enumerate_points(lu_profile)[:5]
    result = Campaign(
        lu_app, lu_profile, tests_per_point=5, param_policy="all", seed=17,
        db_path=db_path,
    ).run(points)
    return db_path, result


@pytest.fixture(scope="module")
def report(campaign_db, tmp_path_factory):
    db_path, result = campaign_db
    out = tmp_path_factory.mktemp("report_out")
    index = build_report(db_path, out)
    return index, index.read_text(), result


def test_index_written(report):
    index, html, _ = report
    assert index.name == "index.html"
    assert html.lstrip().startswith("<!DOCTYPE html>")


def test_all_section_anchors_present(report):
    _, html, _ = report
    for anchor, title in SECTIONS:
        assert f'id="{anchor}"' in html, f"missing section {anchor}"
        assert title in html


def test_per_campaign_page_written(report, campaign_db):
    index, _, _ = report
    pages = list(index.parent.glob("campaign-*.html"))
    assert len(pages) == 1
    with CampaignDB(campaign_db[0]) as db:
        digest = db.campaign()["digest"]
    assert pages[0].name == f"campaign-{digest[:12]}.html"


def test_summary_reflects_campaign_config(report):
    _, html, result = report
    assert "lu" in html
    total = len(result.all_tests())
    assert str(total) in html


def test_heatmap_has_every_point_row(report):
    _, html, result = report
    for point in result.points:
        assert point.collective in html
    # heat cells carry the white->red inline background
    assert html.count("rgb(255,") >= len(result.points)


def test_outcome_breakdown_lists_outcomes(report):
    _, html, result = report
    seen = {t.outcome.name for t in result.all_tests()}
    for name in seen:
        assert name in html


def test_timeline_present_for_db_backed_run(report):
    """The DB progress sink fed snapshots, so the timeline has an SVG."""
    _, html, _ = report
    assert "<svg" in html
    assert "tests/sec" in html


def test_sensitivity_levels_rendered(report):
    _, html, _ = report
    assert "low" in html and "high" in html


def test_report_on_empty_db_is_store_error(tmp_path):
    db_path = tmp_path / "empty.sqlite"
    CampaignDB(db_path).open().close()
    with pytest.raises(CampaignStoreError):
        build_report(db_path, tmp_path / "out")


def test_report_unknown_digest_is_store_error(campaign_db, tmp_path):
    with pytest.raises(CampaignStoreError):
        build_report(campaign_db[0], tmp_path / "out", digest="0123456789ab")


def test_html_escapes_untrusted_text(tmp_path, lu_app, lu_profile):
    """Detail strings flow into the page; markup in them must not."""
    from repro.report.html import esc, table

    assert esc("<script>alert(1)</script>") == (
        "&lt;script&gt;alert(1)&lt;/script&gt;"
    )
    out = table(["a"], [["<b>raw</b>"]])
    assert "<b>" not in out
