"""ML-driven injection loop tests (§ III-C)."""

import pytest

from repro.injection import OUTCOME_ORDER
from repro.pruning import level_labeler, ml_driven_campaign, outcome_labeler
from repro.pruning.semantic import select_semantic
from repro.pruning.context import select_context


@pytest.fixture(scope="module")
def lu_points(lu_profile):
    sem = select_semantic(lu_profile)
    ctx = select_context(lu_profile, sem.selected_points_list)
    return ctx.selected_points_list


@pytest.fixture(scope="module")
def ml_result(lu_app, lu_profile, lu_points):
    return ml_driven_campaign(
        lu_app,
        lu_profile,
        lu_points,
        threshold=0.5,
        tests_per_point=8,
        batch_size=4,
        param_policy="all",
        seed=0,
    )


def test_every_point_tested_or_predicted(ml_result, lu_points):
    assert ml_result.total_points == len(lu_points)
    tested = set(ml_result.tested)
    predicted = set(ml_result.predicted)
    assert tested | predicted == set(lu_points)
    assert tested & predicted == set()


def test_reduction_in_unit_interval(ml_result):
    assert 0.0 <= ml_result.test_reduction < 1.0


def test_model_trained(ml_result):
    assert ml_result.model is not None
    assert ml_result.model.trees


def test_accuracy_history_recorded(ml_result):
    if ml_result.reached_threshold:
        assert ml_result.accuracy_history[-1] >= ml_result.threshold


def test_predicted_labels_valid(ml_result):
    n_labels = len(ml_result.label_names)
    assert all(0 <= v < n_labels for v in ml_result.predicted.values())


def test_threshold_one_tests_everything(lu_app, lu_profile, lu_points):
    """An unreachable threshold degenerates to the traditional
    campaign: every point is tested, none predicted."""
    result = ml_driven_campaign(
        lu_app,
        lu_profile,
        lu_points[:8],
        threshold=1.01,
        tests_per_point=4,
        batch_size=4,
        param_policy="all",
        seed=0,
    )
    assert len(result.predicted) == 0
    assert len(result.tested) == 8
    assert not result.reached_threshold


def test_labelers():
    lab, names = level_labeler()
    assert names == ("low", "medium-low", "medium-high", "high")
    lab2, names2 = outcome_labeler()
    assert names2 == tuple(o.value for o in OUTCOME_ORDER)


def test_custom_labeler_requires_names(lu_app, lu_profile, lu_points):
    with pytest.raises(ValueError):
        ml_driven_campaign(
            lu_app, lu_profile, lu_points, labeler=lambda pr: 0, label_names=None
        )


def test_deterministic_given_seed(lu_app, lu_profile, lu_points):
    kw = dict(threshold=0.5, tests_per_point=4, batch_size=4, param_policy="all", seed=11)
    a = ml_driven_campaign(lu_app, lu_profile, lu_points[:8], **kw)
    b = ml_driven_campaign(lu_app, lu_profile, lu_points[:8], **kw)
    assert a.predicted == b.predicted
    assert a.accuracy_history == b.accuracy_history
