"""Pruning behaviour at the paper's 32-rank scale.

Pruning is pure profiling (no injection), so running it at class S is
cheap — these tests pin the Table III regime: semantic reduction ≥ 90 %
at 32 ranks, totals ≥ 95 %.
"""

import pytest

from repro import FastFIT
from repro.apps import make_app
from repro.pruning import equivalence_classes


@pytest.mark.parametrize("name", ["ft", "lammps"])
def test_semantic_reduction_at_32_ranks(name):
    ff = FastFIT(make_app(name, "S"))
    pr = ff.prune()
    assert pr.semantic_reduction >= 0.9
    assert pr.combined_reduction >= 0.95


def test_lu_semantic_reduction_at_32_ranks():
    # LU's pipeline ends keep 3 equivalence classes -> slightly lower.
    ff = FastFIT(make_app("lu", "S"))
    pr = ff.prune()
    assert pr.semantic_reduction >= 0.85


def test_equivalence_classes_scale_sublinearly():
    """The number of equivalence classes does not grow with rank count
    for SPMD codes — the property that makes semantic pruning scale."""
    from repro.profiling import profile_application

    small = len(equivalence_classes(profile_application(make_app("ft", "T"))))
    large = len(equivalence_classes(profile_application(make_app("ft", "S"))))
    assert large <= small + 1


def test_representative_points_cover_every_site():
    ff = FastFIT(make_app("lammps", "S"))
    pr = ff.prune()
    rep_sites = {p.site_key for p in pr.representative_points}
    all_sites = {key for (_, key) in ff.profile().summaries}
    assert rep_sites == all_sites


def test_pruned_set_much_smaller_than_space():
    ff = FastFIT(make_app("mg", "S"))
    pr = ff.prune()
    assert len(pr.representative_points) < pr.total_points * 0.05
