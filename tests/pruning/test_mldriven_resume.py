"""Resume and scheduling equivalence for the ML-driven campaign.

``ml_driven_campaign`` batches through ``Campaign.run`` with global
point indices and a whole-candidate-list digest, so a run killed between
batches and resumed from the SQLite store must replay to exactly the
``MLDrivenResult`` an uninterrupted run produces — as must a ``--jobs``
run of the same configuration.
"""

import pytest

from repro.injection.space import enumerate_points
from repro.pruning.mldriven import level_labeler, ml_driven_campaign

TESTS_PER_POINT = 6
BATCH_SIZE = 4
SEED = 7
THRESHOLD = 0.5
N_POINTS = 12


@pytest.fixture(scope="module")
def lu_points(lu_profile):
    return enumerate_points(lu_profile)[:N_POINTS]


def run_ml(app, profile, points, **kw):
    return ml_driven_campaign(
        app,
        profile,
        points,
        threshold=THRESHOLD,
        tests_per_point=TESTS_PER_POINT,
        batch_size=BATCH_SIZE,
        param_policy="all",
        seed=SEED,
        **kw,
    )


def fingerprint(result):
    return {
        "threshold": result.threshold,
        "reached": result.reached_threshold,
        "history": result.accuracy_history,
        "predicted": {str(pt): lbl for pt, lbl in sorted(result.predicted.items())},
        "tested": {
            str(pt): [
                (t.spec.param, str(t.spec.bit), t.outcome.value)
                for t in pr.tests
            ]
            for pt, pr in sorted(result.tested.items())
        },
    }


@pytest.fixture(scope="module")
def serial_fingerprint(lu_app, lu_profile, lu_points):
    result = run_ml(lu_app, lu_profile, lu_points)
    # Sanity: the configuration actually exercises the early stop, so
    # resume equivalence is tested on a run with a predicted remainder.
    assert result.reached_threshold
    assert result.predicted
    return fingerprint(result)


class Killed(RuntimeError):
    """Injected mid-train crash."""


def make_killer_labeler(kill_after: int):
    """A level labeler that dies on its ``kill_after``-th invocation —
    i.e. partway through computing the training labels."""
    base, names = level_labeler()
    calls = {"n": 0}

    def labeler(pr):
        calls["n"] += 1
        if calls["n"] >= kill_after:
            raise Killed(f"injected kill at labeler call {calls['n']}")
        return base(pr)

    return labeler, names


def test_jobs_matches_serial(serial_fingerprint, lu_app, lu_profile, lu_points):
    parallel = run_ml(lu_app, lu_profile, lu_points, jobs=2)
    assert fingerprint(parallel) == serial_fingerprint


def test_store_backed_matches_serial(
    serial_fingerprint, lu_app, lu_profile, lu_points, tmp_path
):
    stored = run_ml(
        lu_app, lu_profile, lu_points, db_path=tmp_path / "ml.sqlite"
    )
    assert fingerprint(stored) == serial_fingerprint


def test_killed_mid_train_resumes_identically(
    serial_fingerprint, lu_app, lu_profile, lu_points, tmp_path
):
    # The first batch's tests complete and land in the store; the crash
    # hits while labelling them for training.  The resumed run replays
    # the recorded units and continues to the same result.
    db = tmp_path / "ml.sqlite"
    labeler, names = make_killer_labeler(kill_after=3)
    with pytest.raises(Killed):
        run_ml(
            lu_app,
            lu_profile,
            lu_points,
            labeler=labeler,
            label_names=names,
            db_path=db,
        )
    assert db.exists()
    resumed = run_ml(lu_app, lu_profile, lu_points, db_path=db, resume=True)
    assert fingerprint(resumed) == serial_fingerprint


def test_killed_during_verification_resumes_identically(
    serial_fingerprint, lu_app, lu_profile, lu_points, tmp_path
):
    # Batch 0 labels 4 points for training; killing on call 6 lands in
    # batch 1's verification labelling, after both batches' tests are in
    # the store.
    db = tmp_path / "ml2.sqlite"
    labeler, names = make_killer_labeler(kill_after=6)
    with pytest.raises(Killed):
        run_ml(
            lu_app,
            lu_profile,
            lu_points,
            labeler=labeler,
            label_names=names,
            db_path=db,
        )
    resumed = run_ml(lu_app, lu_profile, lu_points, db_path=db, resume=True)
    assert fingerprint(resumed) == serial_fingerprint
