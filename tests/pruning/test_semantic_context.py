"""Semantic- and context-driven pruning tests (§ III-A, § III-B)."""

import pytest

from repro.apps import make_app
from repro.injection import enumerate_points
from repro.profiling import profile_application
from repro.pruning import (
    equivalence_classes,
    rank_signature,
    representative_of,
    select_context,
    select_semantic,
)
from repro.simmpi import ROOTED_COLLECTIVES


class TestEquivalence:
    def test_lu_pipeline_classes(self, lu_profile):
        """LU's wavefront makes the first and last rank special; the
        interior ranks are mutually equivalent."""
        classes = equivalence_classes(lu_profile)
        nranks = lu_profile.nranks
        by_rank = {r: representative_of(classes, r) for r in range(nranks)}
        assert by_rank[0] == 0
        assert by_rank[nranks - 1] == nranks - 1
        interior = {by_rank[r] for r in range(1, nranks - 1)}
        assert len(interior) == 1

    def test_signatures_stable(self, lu_profile):
        assert rank_signature(lu_profile, 1) == rank_signature(lu_profile, 1)

    def test_unknown_rank_raises(self, lu_profile):
        with pytest.raises(KeyError):
            representative_of(equivalence_classes(lu_profile), 999)

    def test_symmetric_app_collapses_to_one_class(self):
        """FT is fully symmetric (same alltoall everywhere) except for
        the root's checksum bookkeeping — non-root ranks collapse."""
        app = make_app("ft", "T")
        profile = profile_application(app)
        classes = equivalence_classes(profile)
        assert len(classes) <= 2


class TestSemantic:
    def test_reduction_bounds(self, lu_profile):
        sel = select_semantic(lu_profile)
        assert 0.0 <= sel.reduction < 1.0
        assert sel.selected_points == len(sel.selected_points_list)
        assert sel.total_points == len(enumerate_points(lu_profile))

    def test_rooted_sites_keep_root_and_one_nonroot(self, lammps_profile):
        sel = select_semantic(lammps_profile)
        for site_key, ranks in sel.selected_ranks.items():
            name = site_key[0]
            if name in ROOTED_COLLECTIVES:
                summaries = [
                    s
                    for (r, k), s in lammps_profile.summaries.items()
                    if k == site_key
                ]
                roots = {s.root_world for s in summaries if s.root_world is not None}
                assert roots <= set(ranks)
                assert len(ranks) >= min(2, lammps_profile.nranks)

    def test_nonrooted_selects_class_representatives(self, lammps_profile):
        sel = select_semantic(lammps_profile)
        reps = {members[0] for members in sel.classes}
        for site_key, ranks in sel.selected_ranks.items():
            if site_key[0] not in ROOTED_COLLECTIVES:
                assert set(ranks) <= reps

    def test_selected_points_subset_of_space(self, lu_profile):
        sel = select_semantic(lu_profile)
        space = set(enumerate_points(lu_profile))
        assert set(sel.selected_points_list) <= space

    def test_reduction_grows_with_ranks(self):
        """More ranks, same structure → more pruning (Table III is run
        at 32 ranks, where reduction reaches ~96 %)."""
        small = select_semantic(profile_application(make_app("ft", "T")))
        assert small.reduction > 0.0


class TestContext:
    def test_representatives_cover_all_points(self, lu_profile):
        sel_sem = select_semantic(lu_profile)
        sel = select_context(lu_profile, sel_sem.selected_points_list)
        covered = {p for rep in sel.representatives.values() for p in rep}
        assert covered == set(sel_sem.selected_points_list)

    def test_representative_is_first_invocation_of_its_stack(self, lu_profile):
        sel_sem = select_semantic(lu_profile)
        sel = select_context(lu_profile, sel_sem.selected_points_list)
        for rep, members in sel.representatives.items():
            assert rep == min(members)
            assert rep.invocation == min(m.invocation for m in members)

    def test_same_stack_grouped(self, lammps_profile):
        """Mini-LAMMPS thermo allreduce runs every step with the same
        stack: many invocations collapse to few representatives."""
        points = enumerate_points(lammps_profile)
        thermo = [
            p
            for p in points
            if p.collective == "Allreduce" and p.rank == 0
        ]
        sel = select_context(lammps_profile, thermo)
        assert sel.selected_points < len(thermo)
        assert sel.reduction > 0.3

    def test_empty_input(self, lu_profile):
        sel = select_context(lu_profile, [])
        assert sel.reduction == 0.0
        assert sel.selected_points == 0

    def test_expand(self, lu_profile):
        sel_sem = select_semantic(lu_profile)
        sel = select_context(lu_profile, sel_sem.selected_points_list)
        rep = sel.selected_points_list[0]
        assert rep in sel.expand(rep)
