"""CLI plumbing for the campaign store: ``run --db``, ``stats --db``,
``report``, ``migrate``, and the operator-error hygiene around them."""

import json
import sqlite3

import pytest

from repro.cli import main

CAMPAIGN_ARGS = [
    "--app", "lu", "--problem-class", "T", "--tests", "3", "--max-points", "4",
]


@pytest.fixture(scope="module")
def db_path(tmp_path_factory):
    """One small DB-backed campaign shared by the read-only commands."""
    path = tmp_path_factory.mktemp("cli") / "c.sqlite"
    assert main(["run", *CAMPAIGN_ARGS, "--db", str(path)]) == 0
    return path


def test_run_is_a_campaign_alias(db_path, capsys):
    capsys.readouterr()
    assert main(["run", *CAMPAIGN_ARGS, "--db", str(db_path), "--resume"]) == 0
    out = capsys.readouterr().out
    assert "response types" in out


def test_run_defaults_to_lu(capsys):
    assert main(["run", "--tests", "2", "--max-points", "2"]) == 0
    assert "response types" in capsys.readouterr().out


def test_stats_db_text(db_path, capsys):
    assert main(["stats", "--db", str(db_path)]) == 0
    out = capsys.readouterr().out
    assert "campaign" in out and "lu" in out
    assert "complete" in out
    assert "response types (stored)" in out


def test_stats_db_json_matches_sqlite(db_path, capsys):
    assert main(["stats", "--db", str(db_path), "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["campaign"]["app"] == "lu"
    assert data["campaign"]["complete"] is True

    # the acceptance-criteria query: raw sqlite3 agrees with the CLI
    conn = sqlite3.connect(db_path)
    hist = dict(
        conn.execute("SELECT outcome, COUNT(*) FROM results GROUP BY outcome")
    )
    conn.close()
    assert data["outcomes"] == hist
    assert data["campaign"]["recorded_tests"] == sum(hist.values())


def test_stats_db_digest_prefix(db_path, capsys):
    assert main(["stats", "--db", str(db_path), "--json"]) == 0
    digest = json.loads(capsys.readouterr().out)["campaign"]["digest"]
    assert main(["stats", "--db", str(db_path), "--digest", digest[:10]]) == 0
    assert digest[:12] in capsys.readouterr().out


def test_report_command(db_path, tmp_path, capsys):
    out_dir = tmp_path / "report"
    assert main(["report", "--db", str(db_path), "--out", str(out_dir)]) == 0
    assert "report written to" in capsys.readouterr().out
    html = (out_dir / "index.html").read_text()
    for anchor in ("summary", "heatmap", "sensitivity", "forensics"):
        assert f'id="{anchor}"' in html


def test_progress_jsonl_flag(tmp_path, capsys):
    prog = tmp_path / "prog.jsonl"
    assert (
        main(["run", *CAMPAIGN_ARGS, "--progress-jsonl", str(prog)]) == 0
    )
    records = [json.loads(ln) for ln in prog.read_text().splitlines()]
    assert records
    assert records[-1]["done_tests"] == records[-1]["total_tests"]


def test_migrate_command(tmp_path, capsys):
    ckdir = tmp_path / "ck"
    assert main(["campaign", *CAMPAIGN_ARGS, "--checkpoint-dir", str(ckdir)]) == 0
    capsys.readouterr()

    db = tmp_path / "migrated.sqlite"
    assert main(["migrate", "--checkpoint-dir", str(ckdir), "--db", str(db)]) == 0
    out = capsys.readouterr().out
    assert "migrated campaign" in out and "complete" in out

    # stored stats and the report work on the migrated database
    assert main(["stats", "--db", str(db)]) == 0
    assert "response types (stored)" in capsys.readouterr().out


class TestErrorHygiene:
    """Operator errors exit 2 with one line on stderr, no tracebacks."""

    def test_resume_message_names_both_stores(self, capsys):
        assert main(["campaign", "--app", "lu", "--resume"]) == 2
        err = capsys.readouterr().err
        assert "--resume requires --checkpoint-dir or --db" in err

    def test_checkpoint_dir_and_db_are_exclusive(self, tmp_path, capsys):
        assert (
            main(
                ["campaign", "--app", "lu",
                 "--checkpoint-dir", str(tmp_path / "ck"),
                 "--db", str(tmp_path / "c.sqlite")]
            )
            == 2
        )
        err = capsys.readouterr().err
        assert "mutually exclusive" in err
        assert "Traceback" not in err

    def test_bad_progress_every(self, capsys):
        assert main(["campaign", "--app", "lu", "--progress-every", "0"]) == 2
        assert "--progress-every must be >= 1" in capsys.readouterr().err

    def test_stats_without_app_or_db(self, capsys):
        assert main(["stats"]) == 2
        err = capsys.readouterr().err
        assert "--app" in err and "--db" in err

    def test_stats_unknown_digest(self, db_path, capsys):
        assert main(["stats", "--db", str(db_path), "--digest", "ffffffff"]) == 2
        err = capsys.readouterr().err
        assert "ffffffff" in err
        assert "Traceback" not in err

    def test_report_empty_db_is_one_line(self, tmp_path, capsys):
        from repro.store import CampaignDB

        empty = tmp_path / "empty.sqlite"
        CampaignDB(empty).open().close()
        assert main(["report", "--db", str(empty), "--out", str(tmp_path / "o")]) == 2
        err = capsys.readouterr().err
        assert "Traceback" not in err and err.strip()

    def test_migrate_missing_checkpoint_is_one_line(self, tmp_path, capsys):
        assert (
            main(
                ["migrate", "--checkpoint-dir", str(tmp_path / "nope"),
                 "--db", str(tmp_path / "c.sqlite")]
            )
            == 2
        )
        err = capsys.readouterr().err
        assert "Traceback" not in err and err.strip()
