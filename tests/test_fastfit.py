"""FastFIT facade integration tests."""

import pytest

from repro import FastFIT


@pytest.fixture(scope="module")
def ff(lu_app):
    return FastFIT(lu_app, seed=1, tests_per_point=6, param_policy="all")


def test_profile_cached(ff):
    assert ff.profile() is ff.profile()


def test_prune_report(ff):
    rep = ff.prune()
    assert rep.total_points > 0
    assert 0 <= rep.semantic_reduction < 1
    assert 0 <= rep.context_reduction < 1
    assert rep.combined_reduction >= max(0.0, rep.semantic_reduction)
    assert len(rep.representative_points) <= rep.total_points


def test_for_app_constructor():
    ff2 = FastFIT.for_app("mg", "T", tests_per_point=2)
    assert ff2.app.name == "mg"


def test_run_without_ml(ff):
    report = ff.run(threshold=None)
    assert report.ml is None
    assert report.campaign is not None
    row = report.table3_row()
    assert row["ML"] is None
    assert 0 <= row["Total"] <= 1
    assert "NA" in report.describe()


def test_run_with_ml(lu_app):
    ff = FastFIT(lu_app, seed=2, tests_per_point=4, param_policy="all")
    report = ff.run(threshold=0.4, batch_size=4)
    assert report.ml is not None
    row = report.table3_row()
    assert row["ML"] is not None
    # Total reduction must dominate the static pruning when ML skips tests.
    assert row["Total"] >= report.pruning.combined_reduction - 1e-9
    assert "lu" in report.describe()


def test_campaign_over_custom_points(ff):
    points = ff.prune().representative_points[:3]
    result = ff.campaign(points=points, tests_per_point=3)
    assert len(result.points) == 3
