"""Shared fixtures for the FastFIT reproduction test suite.

Campaign-level artefacts are expensive (each injection test is a full
simulated job), so they are session-scoped and shared across test
modules.
"""

from __future__ import annotations

import pytest

from repro.apps import make_app
from repro.injection import Campaign, enumerate_points
from repro.profiling import profile_application


def run_rank0(gen_fn, nranks=1, **kwargs):
    """Run a generator app function and return rank 0's result."""
    from repro.simmpi import run_app

    return run_app(gen_fn, nranks, **kwargs).results[0]


@pytest.fixture(scope="session")
def lu_app():
    return make_app("lu", "T")


@pytest.fixture(scope="session")
def lu_profile(lu_app):
    return profile_application(lu_app)


@pytest.fixture(scope="session")
def lammps_app():
    return make_app("lammps", "T")


@pytest.fixture(scope="session")
def lammps_profile(lammps_app):
    return profile_application(lammps_app)


@pytest.fixture(scope="session")
def lu_small_campaign(lu_app, lu_profile):
    """A small but real campaign over the first few LU points."""
    points = enumerate_points(lu_profile)[:8]
    campaign = Campaign(lu_app, lu_profile, tests_per_point=12, param_policy="all", seed=7)
    return campaign.run(points)


@pytest.fixture(scope="session")
def lammps_buffer_campaign(lammps_app, lammps_profile):
    """Buffer-policy campaign over a slice of mini-LAMMPS points."""
    points = enumerate_points(lammps_profile)
    # A spread of collectives: take every 5th point, capped.
    selected = points[::5][:10]
    campaign = Campaign(
        lammps_app, lammps_profile, tests_per_point=10, param_policy="buffer", seed=3
    )
    return campaign.run(selected)
