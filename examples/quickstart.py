"""Quickstart: profile, prune, inject, and summarise in ~30 lines.

Runs the full FastFIT pipeline on the LU kernel (tiny problem class)
and prints the Table III-style reduction summary plus the response mix.

Usage::

    python examples/quickstart.py
"""

from repro import FastFIT
from repro.analysis import render_bars

def main() -> None:
    # 1. Pick a workload and build the tool around it.
    ff = FastFIT.for_app("lu", "T", tests_per_point=15, param_policy="all")

    # 2. Profiling phase: one clean run collects call sites, stacks,
    #    call graphs, and the golden results (a one-time cost).
    profile = ff.profile()
    print(f"profiled {profile.app_name}: {profile.total_injection_points()} "
          f"injection points across {profile.nranks} ranks")

    # 3. Pruning: semantic (MPI) + application-context reduction.
    pruning = ff.prune()
    print(f"semantic reduction:  {pruning.semantic_reduction:.1%}")
    print(f"context reduction:   {pruning.context_reduction:.1%}")
    print(f"representative points: {len(pruning.representative_points)}")

    # 4. Fault-injection campaign over the representatives.
    campaign = ff.campaign()
    print()
    print(render_bars(
        {o.value: f for o, f in campaign.outcome_fractions().items()},
        title="response types (Table I)",
    ))

    # 5. The Table III row for this study.
    report = ff.run(threshold=None)
    print()
    print(report.describe())


if __name__ == "__main__":
    main()
