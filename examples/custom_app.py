"""Bring your own workload: write an Application and study it.

Shows the full surface a downstream user touches to study their own
code: the generator-style SPMD programming model of ``repro.simmpi``,
the :class:`~repro.apps.base.Application` contract (phases, ``check_``
error-handling convention, golden comparison), and the FastFIT pipeline
on top.

The example app is a distributed dot-product solver: scatter chunks of
two vectors from rank 0, allreduce partial dot products, iterate with a
relaxation update, and gather the result — touching Scatter, Allreduce,
Gather, and Barrier.

Usage::

    python examples/custom_app.py
"""

from typing import Any, Generator

import numpy as np

from repro import FastFIT
from repro.analysis import render_bars
from repro.apps.base import Application
from repro.simmpi import Context


class DotSolver(Application):
    """Iterative distributed dot-product relaxation."""

    name = "dotsolver"
    rtol = 1e-9

    @classmethod
    def class_params(cls, problem_class: str) -> dict[str, Any]:
        return {
            "T": dict(nranks=4, chunk=64, iterations=5, seed=3),
            "S": dict(nranks=16, chunk=128, iterations=8, seed=3),
            "A": dict(nranks=32, chunk=512, iterations=12, seed=3),
        }[problem_class]

    def check_partial(self, ctx: Context, value: float, out) -> Generator:
        """Error-handling collective (the ``check_`` convention makes it
        visible to the ErrHal feature)."""
        flag = ctx.alloc(1, ctx.INT, "dot.flag")
        gflag = ctx.alloc(1, ctx.INT, "dot.gflag")
        flag.view[0] = 0 if np.isfinite(value) else 1
        yield from ctx.Allreduce(flag.addr, gflag.addr, 1, ctx.INT, ctx.MAX, ctx.WORLD)
        if int(gflag.view[0]):
            ctx.app_error("dot product went non-finite")

    def main(self, ctx: Context) -> Generator:
        p = self.params
        chunk, iterations = p["chunk"], p["iterations"]
        n = ctx.size

        ctx.set_phase("input")
        full_x = ctx.alloc(chunk * n, ctx.DOUBLE, "dot.fullx")
        full_y = ctx.alloc(chunk * n, ctx.DOUBLE, "dot.fully")
        if ctx.rank == 0:
            rng = np.random.default_rng(p["seed"])
            full_x.view[:] = rng.standard_normal(chunk * n)
            full_y.view[:] = rng.standard_normal(chunk * n)

        ctx.set_phase("init")
        x = ctx.alloc(chunk, ctx.DOUBLE, "dot.x")
        y = ctx.alloc(chunk, ctx.DOUBLE, "dot.y")
        yield from ctx.Scatter(full_x.addr, chunk, x.addr, chunk, ctx.DOUBLE, 0, ctx.WORLD)
        yield from ctx.Scatter(full_y.addr, chunk, y.addr, chunk, ctx.DOUBLE, 0, ctx.WORLD)
        yield from ctx.Barrier(ctx.WORLD)

        ctx.set_phase("compute")
        partial = ctx.alloc(1, ctx.DOUBLE, "dot.partial")
        total = ctx.alloc(1, ctx.DOUBLE, "dot.total")
        dot = 0.0
        for _ in range(iterations):
            yield from ctx.progress(chunk // 16 + 1)
            partial.view[0] = float(x.view @ y.view)
            yield from ctx.Allreduce(
                partial.addr, total.addr, 1, ctx.DOUBLE, ctx.SUM, ctx.WORLD
            )
            dot = float(total.view[0])
            yield from self.check_partial(ctx, dot, total)
            # Relaxation: nudge x toward y scaled by the global dot.
            x.view[:] = 0.9 * x.view + 0.1 * np.tanh(dot) * y.view

        ctx.set_phase("end")
        result = ctx.alloc(chunk * n, ctx.DOUBLE, "dot.result")
        yield from ctx.Gather(x.addr, chunk, result.addr, chunk, ctx.DOUBLE, 0, ctx.WORLD)
        signature = float(result.view.sum()) if ctx.rank == 0 else None
        return {"dot": dot, "gathered_sum": signature}


def main() -> None:
    app = DotSolver.from_problem_class("T")
    ff = FastFIT(app, tests_per_point=12, param_policy="all")

    pruning = ff.prune()
    print(
        f"{app.describe()}: {pruning.total_points} points -> "
        f"{len(pruning.representative_points)} representatives"
    )

    campaign = ff.campaign()
    print()
    print(render_bars(
        {o.value: f for o, f in campaign.outcome_fractions().items()},
        title="response types for the custom app",
    ))
    print()
    print(ff.run(threshold=None).describe())


if __name__ == "__main__":
    main()
