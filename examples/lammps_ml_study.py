"""Mini-LAMMPS ML-driven study: the paper's learning loop end to end.

Demonstrates the coupled injection/learning phases (§ IV-C/D): inject a
batch, train the random forest, verify on the next batch, stop at the
accuracy threshold, and predict the untested points.  Then prints the
feature ↔ sensitivity correlations (Table IV style) and an example
decision tree (Fig. 4 style).

Usage::

    python examples/lammps_ml_study.py [--threshold 0.65]
"""

import argparse

from repro import FastFIT
from repro.analysis import QUARTILE_LEVELS, render_table
from repro.ml import (
    FEATURE_NAMES,
    TABLE4_FEATURES,
    build_level_dataset,
    correlation_table,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--threshold", type=float, default=0.65)
    parser.add_argument("--tests", type=int, default=10)
    args = parser.parse_args()

    ff = FastFIT.for_app("lammps", "T", tests_per_point=args.tests, param_policy="buffer")
    pruning = ff.prune()
    print(
        f"pruned {pruning.total_points} points to "
        f"{len(pruning.representative_points)} representatives"
    )

    # The ML-driven campaign: inject -> learn -> verify -> predict.
    ml = ff.learn(threshold=args.threshold, batch_size=4)
    print(f"accuracy trajectory: {[f'{a:.0%}' for a in ml.accuracy_history]}")
    print(
        f"tested {len(ml.tested)} points, predicted {len(ml.predicted)} "
        f"({ml.test_reduction:.1%} of tests skipped)"
    )
    if ml.predicted:
        sample = list(ml.predicted.items())[:5]
        rows = [[str(pt), ml.label_names[label]] for pt, label in sample]
        print(render_table(["predicted point", "sensitivity"], rows))

    # Feature ↔ sensitivity correlations (Table IV style).
    campaign = ff.campaign(points=sorted(ml.tested), tests_per_point=args.tests)
    table = correlation_table(ff.profile(), campaign)
    print()
    print(
        render_table(
            list(TABLE4_FEATURES),
            [[f"{table[k]:.2f}" for k in TABLE4_FEATURES]],
            title="feature vs sensitivity correlation (Eq. 1, Table IV style)",
        )
    )

    # One tree of the forest, rendered (Fig. 4 style).
    if ml.model is not None and ml.model.trees:
        ds = build_level_dataset(ff.profile(), campaign, QUARTILE_LEVELS)
        print()
        print("example decision tree (Fig. 4 style):")
        print(ml.model.trees[0].render(list(FEATURE_NAMES), list(ds.label_names)))


if __name__ == "__main__":
    main()
