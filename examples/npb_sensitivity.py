"""NPB sensitivity study: the paper's § V-C analysis on the four kernels.

For each of IS / FT / MG / LU:

* prune the injection space (semantic + context),
* run a buffer-fault campaign over the representatives,
* report the response-type mix (Fig. 7 style) and per-collective
  error-rate levels (Fig. 8 style).

Usage::

    python examples/npb_sensitivity.py [--class T|S] [--tests N]
"""

import argparse

from repro import FastFIT
from repro.analysis import PAPER_3_LEVELS, level_distribution, render_grouped_bars
from repro.apps import NPB_NAMES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--problem-class", default="T", choices=("T", "S", "A"))
    parser.add_argument("--tests", type=int, default=12, help="tests per injection point")
    args = parser.parse_args()

    type_groups = {}
    rates_by_collective: dict[str, list[float]] = {}

    for name in NPB_NAMES:
        ff = FastFIT.for_app(
            name, args.problem_class, tests_per_point=args.tests, param_policy="buffer"
        )
        pruning = ff.prune()
        campaign = ff.campaign()
        print(
            f"{name.upper():6s}: {pruning.total_points:5d} points -> "
            f"{len(pruning.representative_points):3d} representatives "
            f"({pruning.combined_reduction:.1%} pruned)"
        )
        type_groups[name.upper()] = {
            o.value: f for o, f in campaign.outcome_fractions().items()
        }
        for coll, sub in campaign.by_collective().items():
            rates_by_collective.setdefault(coll, []).extend(sub.error_rates())

    print()
    print(render_grouped_bars(type_groups, title="NPB response types (Fig. 7 style)"))
    print()
    level_groups = {
        coll: level_distribution(rates, PAPER_3_LEVELS)
        for coll, rates in sorted(rates_by_collective.items())
    }
    print(
        render_grouped_bars(
            level_groups, title="error-rate levels per collective (Fig. 8 style)"
        )
    )


if __name__ == "__main__":
    main()
