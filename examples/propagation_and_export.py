"""Error propagation and result export.

Two capabilities beyond the paper's evaluation:

1. **blast radius** — for faults that don't crash the job, how many
   ranks end up with corrupted results?  Collective semantics predict
   the pattern (allreduce: all-or-nothing; rooted gathers: contained).
2. **export** — campaign results as JSON/CSV artefacts, plus the
   statistical adequacy of the chosen test count (Wilson intervals).

Usage::

    python examples/propagation_and_export.py [--out-dir /tmp/fastfit]
"""

import argparse
import pathlib

from repro import FastFIT
from repro.analysis import (
    campaign_to_csv,
    campaign_to_json,
    propagation_study,
    required_tests,
    wilson_interval,
)
from repro.analysis.reports import render_table
from repro.injection import enumerate_points


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out-dir", default=None, help="write JSON/CSV artefacts here")
    parser.add_argument("--tests", type=int, default=15)
    args = parser.parse_args()

    ff = FastFIT.for_app("cg", "T", tests_per_point=args.tests, param_policy="buffer")
    profile = ff.profile()

    # -- propagation: compare collective semantics ---------------------
    points = enumerate_points(profile)
    rows = []
    for coll in ("Allreduce", "Reduce_scatter", "Gatherv"):
        point = next((p for p in points if p.collective == coll), None)
        if point is None:
            continue
        prop = propagation_study(
            ff.app, profile, point, tests=args.tests, param_policy="sendbuf", seed=2
        )
        rows.append(
            [
                coll,
                f"{prop.mean_blast_radius:.2f}/{prop.nranks}",
                f"{prop.global_taint_rate:.0%}",
                f"{prop.containment_rate:.0%}",
            ]
        )
    print(
        render_table(
            ["collective", "mean blast radius", "global taint", "contained"],
            rows,
            title="fault propagation by collective semantics",
        )
    )

    # -- campaign + statistical adequacy --------------------------------
    campaign = ff.campaign()
    n = args.tests
    sample = next(iter(campaign.points.values()))
    iv = wilson_interval(sum(1 for t in sample.tests if t.outcome.is_error), n)
    print()
    print(
        f"example point error rate {iv.rate:.2f}, 95% CI [{iv.low:.2f}, {iv.high:.2f}] "
        f"at n={n}; quartile-level discrimination needs n≥{required_tests(0.125)}"
    )

    # -- export ----------------------------------------------------------
    if args.out_dir:
        out = pathlib.Path(args.out_dir)
        out.mkdir(parents=True, exist_ok=True)
        (out / "campaign.json").write_text(campaign_to_json(campaign))
        (out / "points.csv").write_text(campaign_to_csv(campaign))
        print(f"wrote {out / 'campaign.json'} and {out / 'points.csv'}")
    else:
        print()
        print(campaign_to_csv(campaign).splitlines()[0])
        print(f"({len(campaign.points)} point rows; pass --out-dir to write files)")


if __name__ == "__main__":
    main()
