"""The campaign report builder: SQLite store → static HTML tree.

``fastfit report --db campaigns.sqlite --out report/`` renders one
``index.html`` (campaign list + the focused campaign's full report) and
one ``campaign-<digest>.html`` per stored campaign.  Everything is
computed from the database — the builder never re-runs anything — so a
report can be (re)built long after the campaign machine is gone.

Per-campaign sections (each with a stable anchor for CI checks):

``summary``      configuration, outcome histogram, totals
``timeline``     progress telemetry (tests over time, throughput)
``heatmap``      per-point outcome heat map with error rates
``sensitivity``  error-rate level distributions (paper Figs. 8/11)
``breakdown``    outcomes by collective and by injected parameter
``steering``     adaptive-steering rounds and the accuracy-vs-budget curve
``forensics``    quarantined units, tool errors, deadlock wait-for graphs
"""

from __future__ import annotations

import os
import sqlite3
from pathlib import Path

from ..analysis.sensitivity import PAPER_3_LEVELS, QUARTILE_LEVELS, LevelScheme
from ..injection.outcome import OUTCOME_ORDER, Outcome
from ..store.db import CampaignDB, CampaignStoreError
from .html import Raw, fraction_bar, heat_cell, nav, page, section, svg_timeline, table

SECTIONS = (
    ("summary", "Summary"),
    ("timeline", "Campaign timeline"),
    ("heatmap", "Per-point outcome heatmap"),
    ("sensitivity", "Sensitivity levels"),
    ("breakdown", "Outcome breakdown"),
    ("steering", "Adaptive steering"),
    ("forensics", "Forensics"),
)

#: Deadlock details rendered in full in the forensics section.
MAX_WAIT_FOR_SAMPLES = 10


def _point_rows(db: CampaignDB, campaign_id: int) -> list[dict]:
    """Per-point aggregate: identity, outcome counts, error rate."""
    points: dict[int, dict] = {}
    for row in db.point_tallies(campaign_id):
        entry = points.setdefault(
            row["point_index"],
            {
                "point_index": row["point_index"],
                "rank": row["rank"],
                "collective": row["collective"],
                "site": row["site"],
                "invocation": row["invocation"],
                "outcomes": {},
            },
        )
        entry["outcomes"][row["outcome"]] = row["n"]
    if not points:
        # Tallies are written at assembly; an interrupted campaign only
        # has raw results. Rebuild the same view from those.
        for row in db.conn.execute(
            "SELECT point_index, rank, collective, site, invocation, outcome,"
            " COUNT(*) AS n FROM results WHERE campaign_id = ?"
            " GROUP BY point_index, outcome ORDER BY point_index",
            (campaign_id,),
        ):
            entry = points.setdefault(
                row["point_index"],
                {
                    "point_index": row["point_index"],
                    "rank": row["rank"],
                    "collective": row["collective"],
                    "site": row["site"],
                    "invocation": row["invocation"],
                    "outcomes": {},
                },
            )
            entry["outcomes"][row["outcome"]] = row["n"]
    out = []
    for idx in sorted(points):
        entry = points[idx]
        counts = entry["outcomes"]
        responses = sum(
            n for o, n in counts.items() if o != Outcome.TOOL_ERROR.name
        )
        errors = sum(
            n
            for o, n in counts.items()
            if o not in (Outcome.SUCCESS.name, Outcome.TOOL_ERROR.name)
        )
        entry["error_rate"] = errors / responses if responses else 0.0
        out.append(entry)
    return out


def _summary_section(db: CampaignDB, c: sqlite3.Row) -> str:
    hist = db.outcome_histogram(c["id"])
    total = sum(hist.values())
    n_quarantined = len(db.quarantine_records(c["id"]))
    status = (
        '<span class="ok">complete</span>'
        if c["complete"]
        else '<span class="bad">incomplete</span>'
    )
    config = table(
        ("key", "value"),
        [
            ("digest", c["digest"]),
            ("status", Raw(status)),
            ("app", c["app"]),
            ("ranks", c["nranks"]),
            ("seed", c["seed"]),
            ("tests / point", c["tests_per_point"]),
            ("param policy", c["param_policy"]),
            ("points", c["n_points"]),
            ("work units", c["total_units"]),
            ("recorded tests", total),
            ("quarantined units", n_quarantined),
            ("code version", c["code_version"]),
        ],
    )
    order = [o.name for o in OUTCOME_ORDER] + [Outcome.TOOL_ERROR.name]
    rows = [
        (name, hist.get(name, 0), fraction_bar(hist.get(name, 0) / total if total else 0.0))
        for name in order
        if name in hist or name in {o.name for o in OUTCOME_ORDER}
    ]
    histogram = table(("outcome", "tests", "fraction"), rows, numeric=(1,))
    return section(
        "summary", "Summary", config + histogram + _snapshot_engine_summary(db, c)
    )


def _snapshot_engine_summary(db: CampaignDB, c: sqlite3.Row) -> str:
    """One-line snapshot-and-fork telemetry (empty when --no-snapshot or
    no final metrics were stored)."""
    metrics = db.metrics_snapshot(c["id"], "final")
    if not metrics:
        return ""
    counters = metrics.get("counters", {})
    forks = counters.get("snapshot.forks", 0)
    fallbacks = counters.get("snapshot.fallback_tests", 0)
    if not forks and not fallbacks:
        return ""
    hits = counters.get("snapshot.hits", 0)
    misses = counters.get("snapshot.misses", 0)
    nbytes = metrics.get("gauges", {}).get("snapshot.bytes", 0)
    ff_s = metrics.get("timers", {}).get("snapshot.fastforward_s", {}).get("total", 0.0)
    return (
        '<p class="muted">snapshot engine: '
        f"{forks} forked tests, {fallbacks} full replays, "
        f"{hits} snapshot hits / {misses} misses, "
        f"{nbytes / (1 << 20):.1f} MiB cached, "
        f"{ff_s:.3f}s fast-forwarding</p>"
    )


def _timeline_section(db: CampaignDB, c: sqlite3.Row) -> str:
    rows = db.progress_rows(c["id"])
    if not rows:
        return section(
            "timeline",
            "Campaign timeline",
            '<p class="muted">no progress telemetry recorded '
            "(run with --db to collect it live)</p>",
        )
    series = [(r["elapsed_s"], r["done_tests"]) for r in rows]
    chart = svg_timeline(series, label="completed tests over elapsed seconds")
    last = rows[-1]
    eta = "—" if last["eta_s"] is None else f"{last['eta_s']:.1f}s"
    stats = table(
        ("snapshot", "elapsed", "tests", "units", "tests/sec", "ETA",
         "workers", "deaths", "retries", "quarantined"),
        [
            (
                f"{last['seq']} (final)",
                f"{last['elapsed_s']:.1f}s",
                f"{last['done_tests']}/{last['total_tests']}",
                f"{last['done_units']}/{last['total_units']}",
                f"{last['tests_per_sec']:.1f}",
                eta,
                last["workers"],
                last["worker_deaths"],
                last["retries"],
                last["quarantined"],
            )
        ],
    )
    return section("timeline", "Campaign timeline", chart + stats)


def _heatmap_section(points: list[dict]) -> str:
    if not points:
        return section(
            "heatmap", "Per-point outcome heatmap",
            '<p class="muted">no per-point results recorded</p>',
        )
    order = [o.name for o in OUTCOME_ORDER]
    headers = ["point", "rank", "collective", "site", "inv"] + order + ["error rate"]
    rows = []
    for p in points:
        counts = p["outcomes"]
        total = sum(n for o, n in counts.items() if o != Outcome.TOOL_ERROR.name)
        cells: list[object] = [
            p["point_index"], p["rank"], p["collective"], p["site"], p["invocation"],
        ]
        for name in order:
            n = counts.get(name, 0)
            cells.append(heat_cell(n / total if total else 0.0, str(n)))
        cells.append(heat_cell(p["error_rate"]))
        rows.append(cells)
    return section(
        "heatmap",
        "Per-point outcome heatmap",
        table(headers, rows, numeric=(0, 1, 4)),
    )


def _sensitivity_section(points: list[dict]) -> str:
    rates = [p["error_rate"] for p in points]
    if not rates:
        return section(
            "sensitivity", "Sensitivity levels",
            '<p class="muted">no per-point error rates recorded</p>',
        )
    # Import here keeps module import light; level_distribution pulls numpy.
    from ..analysis.sensitivity import level_distribution

    def level_table(scheme: LevelScheme, caption: str) -> str:
        dist = level_distribution(rates, scheme)
        rows = [(name, fraction_bar(frac)) for name, frac in dist.items()]
        return f"<h3>{caption}</h3>" + table(("level", "fraction of points"), rows)

    body = level_table(
        PAPER_3_LEVELS, "Three levels (paper Figs. 8/11: low ≤ 15%, high ≥ 85%)"
    ) + level_table(QUARTILE_LEVELS, "Quartile levels (prediction model)")
    return section("sensitivity", "Sensitivity levels", body)


def _breakdown_section(db: CampaignDB, c: sqlite3.Row) -> str:
    order = [o.name for o in OUTCOME_ORDER]

    def matrix(group_col: str, label: str) -> str:
        data: dict[str, dict[str, int]] = {}
        for row in db.conn.execute(
            f"SELECT {group_col} AS g, outcome, COUNT(*) AS n FROM results "
            "WHERE campaign_id = ? GROUP BY g, outcome ORDER BY g",
            (c["id"],),
        ):
            data.setdefault(row["g"], {})[row["outcome"]] = row["n"]
        if not data:
            return f'<h3>{label}</h3><p class="muted">no results</p>'
        rows = []
        for g, counts in sorted(data.items()):
            total = sum(n for o, n in counts.items() if o != Outcome.TOOL_ERROR.name)
            cells: list[object] = [g]
            for name in order:
                n = counts.get(name, 0)
                cells.append(heat_cell(n / total if total else 0.0, str(n)))
            rows.append(cells)
        return f"<h3>{label}</h3>" + table([label.lower()] + order, rows)

    body = (
        matrix("collective", "By collective")
        + matrix("param", "By injected parameter")
        + matrix("model", "By fault model")
    )
    return section("breakdown", "Outcome breakdown", body)


def _steering_section(db: CampaignDB, c: sqlite3.Row) -> str:
    rows = db.steering_rounds(c["id"])
    if not rows:
        return section(
            "steering", "Adaptive steering",
            '<p class="muted">not an adaptive campaign '
            "(run with --adaptive --db to record steering rounds)</p>",
        )
    curve = [
        (r["budget_used"], r["accuracy"])
        for r in rows
        if r["accuracy"] is not None
    ]
    chart = (
        svg_timeline(curve, label="verification accuracy over injected tests")
        if len(curve) >= 2
        else ""
    )
    body_rows = []
    for r in rows:
        body_rows.append(
            (
                r["round"],
                r["n_points"],
                r["tests_run"],
                r["tests_saved"],
                r["budget_used"],
                "—" if r["accuracy"] is None else f"{r['accuracy']:.0%}",
                "—"
                if r["mean_uncertainty"] is None
                else f"{r['mean_uncertainty']:.3f}",
                r["stop_reason"] or "—",
            )
        )
    rounds = table(
        ("round", "points", "tests", "saved", "budget used", "accuracy",
         "mean uncertainty", "stop reason"),
        body_rows,
        numeric=(0, 1, 2, 3, 4),
    )
    return section("steering", "Adaptive steering", chart + rounds)


def _forensics_section(db: CampaignDB, c: sqlite3.Row) -> str:
    parts = []
    quarantined = db.quarantine_records(c["id"])
    if quarantined:
        parts.append(
            "<h3>Quarantined units</h3>"
            + table(
                ("unit", "reason"),
                [(q["unit_id"], q["reason"] or "—") for q in quarantined],
            )
        )
    else:
        parts.append('<h3>Quarantined units</h3><p class="muted ok">none</p>')

    metrics = db.metrics_snapshot(c["id"], "final")
    if metrics:
        counters = metrics.get("counters", {})
        interesting = {
            k: v
            for k, v in counters.items()
            if k.startswith("exec.") or k == "campaign.tests"
        }
        if interesting:
            parts.append(
                "<h3>Supervision counters</h3>"
                + table(("counter", "value"), sorted(interesting.items()), numeric=(1,))
            )

    hangs = db.conn.execute(
        "SELECT point_index, test_index, detail FROM results "
        "WHERE campaign_id = ? AND outcome = ? AND detail != '' "
        "ORDER BY point_index, test_index LIMIT ?",
        (c["id"], Outcome.INF_LOOP.name, MAX_WAIT_FOR_SAMPLES),
    ).fetchall()
    if hangs:
        n_hangs = db.outcome_histogram(c["id"]).get(Outcome.INF_LOOP.name, 0)
        blocks = "\n".join(
            f"<h4>point {h['point_index']}, test {h['test_index']}</h4>"
            f"<pre>{_pre(h['detail'])}</pre>"
            for h in hangs
        )
        parts.append(
            f"<h3>Deadlock wait-for graphs ({min(n_hangs, MAX_WAIT_FOR_SAMPLES)} "
            f"of {n_hangs} INF_LOOP tests)</h3>" + blocks
        )
    else:
        parts.append(
            '<h3>Deadlock wait-for graphs</h3><p class="muted">no INF_LOOP tests</p>'
        )
    return section("forensics", "Forensics", "".join(parts))


def _pre(detail: str) -> str:
    from html import escape

    # Details pack wait-for edges on one line; break on the separators
    # forensics uses so graphs read as one edge per line.
    return escape(detail).replace("; ", ";\n")


def _campaign_body(db: CampaignDB, c: sqlite3.Row) -> str:
    points = _point_rows(db, c["id"])
    return (
        nav(SECTIONS)
        + _summary_section(db, c)
        + _timeline_section(db, c)
        + _heatmap_section(points)
        + _sensitivity_section(points)
        + _breakdown_section(db, c)
        + _steering_section(db, c)
        + _forensics_section(db, c)
    )


def _campaign_filename(digest: str) -> str:
    return f"campaign-{digest[:12]}.html"


def build_report(
    db_path: str | os.PathLike,
    out_dir: str | os.PathLike,
    digest: str | None = None,
) -> Path:
    """Render the report tree; returns the ``index.html`` path.

    ``digest`` (full or prefix) focuses the index page on one campaign;
    default is the most recently updated one.  Every stored campaign
    additionally gets its own page.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    with CampaignDB(db_path) as db:
        campaigns = db.campaigns()
        if not campaigns:
            raise CampaignStoreError(f"no campaigns stored in {db.path}")
        focus = db.campaign(digest)
        if focus is None:
            raise CampaignStoreError(
                f"no campaign matching digest {digest!r} in {db.path}"
            )

        listing_rows = []
        for c in campaigns:
            hist = db.outcome_histogram(c["id"])
            listing_rows.append(
                (
                    Raw(
                        f'<a href="{_campaign_filename(c["digest"])}">'
                        f'<code>{c["digest"][:12]}</code></a>'
                    ),
                    c["app"],
                    c["n_points"],
                    c["tests_per_point"],
                    sum(hist.values()),
                    "yes" if c["complete"] else "no",
                )
            )
        listing = section(
            "campaigns",
            "Stored campaigns",
            table(
                ("campaign", "app", "points", "tests/point", "recorded tests",
                 "complete"),
                listing_rows,
                numeric=(2, 3, 4),
            ),
        )

        for c in campaigns:
            doc = page(
                f"FastFIT campaign {c['digest'][:12]} — {c['app']}",
                _campaign_body(db, c),
            )
            (out / _campaign_filename(c["digest"])).write_text(doc, encoding="utf-8")

        index = page(
            f"FastFIT campaign report — {focus['app']} {focus['digest'][:12]}",
            listing + _campaign_body(db, focus),
        )
        index_path = out / "index.html"
        index_path.write_text(index, encoding="utf-8")
    return index_path
