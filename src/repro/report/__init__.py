"""Static HTML campaign reports built from the SQLite store.

``fastfit report --db campaigns.sqlite --out report/`` →
:func:`build_report`.
"""

from .builder import SECTIONS, build_report

__all__ = ["SECTIONS", "build_report"]
