"""Minimal HTML rendering helpers for the campaign report.

Stdlib-only, no templating engine: the report builder composes pages
from these small string functions.  Every page is self-contained (CSS
inlined, charts as inline SVG) so a report directory can be archived,
attached to CI, or opened from ``file://`` with zero infrastructure.
"""

from __future__ import annotations

from html import escape as esc
from typing import Iterable, Sequence

#: One stylesheet for every page, inlined into each document.
CSS = """
:root { color-scheme: light; }
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 72rem;
       padding: 0 1rem; color: #1a1a2e; }
h1 { font-size: 1.5rem; border-bottom: 2px solid #30336b; padding-bottom: .3rem; }
h2 { font-size: 1.15rem; margin-top: 2rem; border-bottom: 1px solid #ccd;
     padding-bottom: .2rem; }
table { border-collapse: collapse; margin: .8rem 0; }
th, td { border: 1px solid #ccd; padding: .25rem .6rem; text-align: left; }
th { background: #f0f1fa; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
code, pre { font: 12px/1.45 ui-monospace, monospace; }
pre { background: #f7f7fc; border: 1px solid #e0e0ee; padding: .6rem;
      overflow-x: auto; }
nav a { margin-right: 1rem; }
.bar { display: inline-block; height: .8em; background: #30336b;
       vertical-align: baseline; }
.muted { color: #667; }
.ok { color: #1b7f3b; } .bad { color: #b3301a; }
"""


def page(title: str, body: str) -> str:
    """A complete, self-contained HTML document."""
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{esc(title)}</title>\n"
        f"<style>{CSS}</style>\n"
        f"</head><body>\n<h1>{esc(title)}</h1>\n{body}\n</body></html>\n"
    )


def section(anchor: str, title: str, body: str) -> str:
    """An ``<h2 id=...>`` section — the anchors CI greps for."""
    return f'<section id="{esc(anchor)}">\n<h2>{esc(title)}</h2>\n{body}\n</section>\n'


def nav(anchors: Sequence[tuple[str, str]]) -> str:
    links = " ".join(f'<a href="#{esc(a)}">{esc(t)}</a>' for a, t in anchors)
    return f"<nav>{links}</nav>\n"


def table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    numeric: Sequence[int] = (),
) -> str:
    """A plain table; column indexes in ``numeric`` get right alignment.

    Cells are escaped unless already marked raw via :class:`Raw`.
    """
    head = "".join(f"<th>{esc(h)}</th>" for h in headers)
    body_rows = []
    for row in rows:
        cells = []
        for i, cell in enumerate(row):
            cls = ' class="num"' if i in numeric else ""
            content = cell.text if isinstance(cell, Raw) else esc(str(cell))
            cells.append(f"<td{cls}>{content}</td>")
        body_rows.append("<tr>" + "".join(cells) + "</tr>")
    return (
        f"<table><thead><tr>{head}</tr></thead>\n<tbody>\n"
        + "\n".join(body_rows)
        + "\n</tbody></table>\n"
    )


class Raw:
    """Marks a table cell as pre-rendered HTML (heat cells, bars)."""

    __slots__ = ("text",)

    def __init__(self, text: str):
        self.text = text


def heat_cell(fraction: float, label: str | None = None) -> Raw:
    """A table cell colored white → red by ``fraction`` ∈ [0, 1]."""
    f = min(1.0, max(0.0, fraction))
    # White (low) to saturated red (high); text flips for contrast.
    light = int(255 - 130 * f)
    bg = f"rgb(255,{light},{light})"
    text = label if label is not None else f"{fraction:.2f}"
    return Raw(
        f'<span style="display:block;background:{bg};padding:0 .3em;'
        f'text-align:right">{esc(text)}</span>'
    )


def fraction_bar(fraction: float, width_px: int = 120) -> Raw:
    """A labelled horizontal bar for level-distribution tables."""
    f = min(1.0, max(0.0, fraction))
    return Raw(
        f'<span class="bar" style="width:{f * width_px:.0f}px"></span> '
        f"{100 * f:.1f}%"
    )


def svg_timeline(
    series: Sequence[tuple[float, float]],
    *,
    width: int = 640,
    height: int = 160,
    y_max: float | None = None,
    label: str = "",
) -> str:
    """An inline SVG polyline of ``(x, y)`` samples (campaign timeline)."""
    if not series:
        return '<p class="muted">no telemetry recorded</p>'
    xs = [p[0] for p in series]
    ys = [p[1] for p in series]
    x_max = max(xs) or 1.0
    top = y_max if y_max is not None else (max(ys) or 1.0)
    pad = 6
    pts = " ".join(
        f"{pad + (width - 2 * pad) * x / x_max:.1f},"
        f"{height - pad - (height - 2 * pad) * min(y, top) / top:.1f}"
        for x, y in series
    )
    return (
        f'<svg viewBox="0 0 {width} {height}" width="{width}" height="{height}" '
        f'role="img" aria-label="{esc(label)}">\n'
        f'<rect x="0" y="0" width="{width}" height="{height}" fill="#f7f7fc" '
        f'stroke="#ccd"/>\n'
        f'<polyline points="{pts}" fill="none" stroke="#30336b" '
        f'stroke-width="1.5"/>\n'
        f'<text x="{pad}" y="{pad + 10}" font-size="10" fill="#667">'
        f"{esc(label)} (max {top:g})</text>\n"
        "</svg>\n"
    )
