"""Snapshot-and-fork injection serving (prefix amortization).

Every test at one injection point shares a bit-identical fault-free
prefix; this package runs that prefix once, parks the job at the target
collective entry, and serves each test by forking the parked parent —
the ZOFI fork model applied to the simulated-MPI campaign engine, with
a :class:`SimSnapshot` + deterministic fast-forward restore path (the
DAVOS ``ColdRestore`` analogue) so re-served points skip the scheduler
entirely.

Entry point: :class:`SnapshotEngine` (used by ``Campaign`` and the
parallel workers whenever ``snapshot=True``, the default).
"""

from .cache import DEFAULT_CACHE_BYTES, SnapshotCache
from .engine import SnapshotEngine, snapshot_supported
from .mutants import SNAPSHOT_MUTANTS, active_mutant, seeded_snapshot_mutant
from .snapshot import (
    FastForwardDiverged,
    FiberLog,
    FiberSnap,
    RestoredJob,
    SimSnapshot,
    fast_forward,
    instrument_fibers,
    take_snapshot,
    verify_restored,
)

__all__ = [
    "DEFAULT_CACHE_BYTES",
    "SNAPSHOT_MUTANTS",
    "FastForwardDiverged",
    "FiberLog",
    "FiberSnap",
    "RestoredJob",
    "SimSnapshot",
    "SnapshotCache",
    "SnapshotEngine",
    "active_mutant",
    "fast_forward",
    "instrument_fibers",
    "seeded_snapshot_mutant",
    "snapshot_supported",
    "take_snapshot",
    "verify_restored",
]
