"""Park-and-fork serving of injection tests sharing a fault-free prefix.

The engine runs the fault-free prefix **once per injection point**: a
park instrument stops the job at the target collective entry (exactly
where the fault injector would fire), and every test at that point is
then served by ``os.fork()`` — the child arms its injector at the parked
call, resumes the inherited scheduler stack, classifies its own
continuation with the *same* :class:`~repro.injection.runner.InjectionRunner`
classification helpers the from-scratch path uses, and ships the
:class:`~repro.injection.runner.TestResult` back over a pipe.  The
parent's runtime is never perturbed, so forked results are
fingerprint-identical to from-scratch runs by construction.

At park time the parent also captures a :class:`SimSnapshot` into an
LRU cache; re-serving the same point later in the process fast-forwards
from the snapshot instead of replaying the prefix from t=0.

Fallbacks (always to a plain ``runner.run_one`` full replay):

* platforms without ``os.fork`` (the engine reports unsupported);
* apps flagged ``deterministic = False``;
* the park never fires (site unreachable) or the prefix itself fails;
* fast-forward divergence (stale snapshot / determinism violation);
* a forked child dying without delivering a result.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import replace
from typing import Any

import numpy as np

from ..injection.injector import FaultInjector
from ..injection.models import MODELS, build_injector
from ..injection.runner import InjectionRunner, TestResult
from ..injection.space import FaultSpec, InjectionPoint
from ..simmpi.calls import Instrument
from ..simmpi.errors import SchedulerInterrupt, SimMPIError
from ..simmpi.runtime import SimMPI
from . import mutants
from .cache import SnapshotCache
from .snapshot import (
    FastForwardDiverged,
    fast_forward,
    instrument_fibers,
    take_snapshot,
    verify_restored,
)

#: One test handed to :meth:`SnapshotEngine.serve_point`: the fault spec
#: (parameter already drawn) and the post-draw RNG that will pick the bit.
Task = tuple[FaultSpec, np.random.Generator]


def snapshot_supported() -> bool:
    """True when the platform can serve tests by forking a parked job."""
    return hasattr(os, "fork")


class _PrefixAbandoned(SchedulerInterrupt):
    """Parent-side unwind after every forked test has been served."""


class _FastForwardMismatch(SchedulerInterrupt):
    """The restored job failed the byte-exact re-park check; the
    snapshot is stale — rebuild the prefix from t=0."""


class _SnapshotUnusable(Exception):
    """This point cannot be served from a parked prefix; fall back."""


class _ParkInstrument(Instrument):
    """Stops the job at one collective entry by invoking a callback.

    Fires at exactly the ``(rank, collective, site, invocation)`` match
    the fault injector would use, *before* validation — the parked state
    is the state an injector sees.
    """

    def __init__(self, point: InjectionPoint):
        self.point = point
        self.on_park = None
        self.armed = True

    def on_collective(self, ctx, call) -> None:
        if not self.armed or self.on_park is None:
            return
        p = self.point
        if (
            call.rank == p.rank
            and call.name == p.collective
            and call.site == p.site
            and call.invocation == p.invocation
        ):
            self.armed = False
            self.on_park(ctx, call)


class SnapshotEngine:
    """Serves batches of injection tests at one point from one prefix.

    Parameters
    ----------
    runner:
        The :class:`InjectionRunner` whose configuration (step budget,
        algorithms, alloc cap) and classification rules define a test.
        Fallback full replays go through ``runner.run_one`` verbatim.
    cache:
        Snapshot LRU; a fresh default-budget cache when omitted.
    metrics:
        Default :class:`~repro.obs.metrics.MetricsRegistry` for the
        ``snapshot.*`` counters (overridable per ``serve_point`` call).
    """

    def __init__(
        self,
        runner: InjectionRunner,
        cache: SnapshotCache | None = None,
        metrics=None,
    ):
        self.runner = runner
        self.cache = cache if cache is not None else SnapshotCache()
        self.metrics = metrics

    # -- public API ----------------------------------------------------

    def serve_point(
        self, point: InjectionPoint, tasks: list[Task], metrics=None
    ) -> list[TestResult]:
        """Run every task at ``point``, amortizing the fault-free prefix.

        Tasks are ``(spec, rng)`` pairs with the fault parameter already
        drawn — the rng state handed in is exactly what ``run_one``
        would receive, and the forked child inherits it bit-for-bit.
        Results come back in task order; any test the fork path cannot
        serve is transparently re-run from scratch.
        """
        m = metrics if metrics is not None else self.metrics
        if not tasks:
            return []
        if not snapshot_supported() or not getattr(self.runner.app, "deterministic", True):
            self._inc(m, "snapshot.fallback_tests", len(tasks))
            return [self.runner.run_one(spec, rng) for spec, rng in tasks]
        if not MODELS[getattr(tasks[0][0], "model", "bitflip")].snapshot_safe:
            # Wire, rank, and timeline faults are not single-site
            # parameter corruptions: the fault-free-prefix assumption
            # the fork amortization rests on does not hold, so the
            # whole batch replays from scratch.
            self._inc(m, "snapshot.fallback_tests", len(tasks))
            return [self.runner.run_one(spec, rng) for spec, rng in tasks]

        park = _ParkInstrument(self._park_point(point))
        job, snapshot = self._restore(point, park, m)
        try:
            try:
                results = self._serve(point, park, tasks, job, snapshot, m)
            except _FastForwardMismatch:
                # The restored state failed the byte-exact re-park check
                # (stale snapshot / determinism violation): drop it and
                # serve from a fresh t=0 prefix.  No child forked yet, so
                # every task RNG is still pristine.
                self.cache.pop(point)
                self._inc(m, "snapshot.ff_divergence")
                park = _ParkInstrument(self._park_point(point))
                results = self._serve(point, park, tasks, None, None, m)
        except _SnapshotUnusable:
            self._inc(m, "snapshot.fallback_tests", len(tasks))
            results = [self.runner.run_one(spec, rng) for spec, rng in tasks]
        if m is not None:
            m.gauge("snapshot.bytes").set(self.cache.nbytes)
        return results

    # -- internals -----------------------------------------------------

    @staticmethod
    def _inc(m, name: str, n: int = 1) -> None:
        if m is not None and n:
            m.counter(name).inc(n)

    @staticmethod
    def _park_point(point: InjectionPoint) -> InjectionPoint:
        if mutants.active_mutant() == "snapshot_wrong_invocation" and point.invocation > 0:
            return replace(point, invocation=point.invocation - 1)
        return point

    def _restore(self, point, park, m):
        """Fast-forward a cached snapshot to the park.

        Returns ``(job, snapshot)`` on success, ``(None, None)`` on a
        cache miss or a replay-time divergence.
        """
        snapshot = self.cache.get(point)
        if snapshot is None:
            self._inc(m, "snapshot.misses")
            return None, None
        self._inc(m, "snapshot.hits")
        runner = self.runner
        try:
            if m is not None:
                with m.time("snapshot.fastforward_s"):
                    job = self._fast_forward(snapshot, park)
            else:
                job = self._fast_forward(snapshot, park)
        except FastForwardDiverged:
            # Stale or wrong snapshot: drop it and rebuild from t=0.
            self.cache.pop(point)
            self._inc(m, "snapshot.ff_divergence")
            return None, None
        return job, snapshot

    def _fast_forward(self, snapshot, park):
        runner = self.runner
        return fast_forward(
            runner.app.main,
            snapshot,
            step_budget=runner.step_budget,
            algorithms=runner.algorithms,
            alloc_cap=runner.alloc_cap,
            instruments=[park],
        )

    def _serve(self, point, park, tasks, job, snapshot, m) -> list:
        runner = self.runner
        results: list[TestResult | None] = [None] * len(tasks)
        #: Populated only inside a forked child, between the fork and the
        #: child's classification of its own continuation.
        child: dict[str, Any] = {}

        if job is not None:
            contexts, fibers = job.contexts, job.fibers
            scheduler, logs = job.scheduler, job.logs
        else:
            sim = SimMPI(
                runner.app.nranks,
                step_budget=runner.step_budget,
                algorithms=runner.algorithms,
                alloc_cap=runner.alloc_cap,
            )
            contexts, fibers, scheduler = sim.prepare(runner.app.main, [park])
            logs = instrument_fibers(fibers)

        def on_park(ctx, call):
            if job is not None:
                # The restored job is back at the very instant the
                # snapshot was captured: now the states are comparable.
                try:
                    verify_restored(job, snapshot)
                except FastForwardDiverged as exc:
                    raise _FastForwardMismatch(str(exc)) from exc
            elif mutants.active_mutant() is None and point not in self.cache:
                try:
                    self.cache.put(
                        point, take_snapshot(point, scheduler, contexts, fibers, logs)
                    )
                except Exception:
                    # Capture is an optimisation; serving must not die on it.
                    pass
            if mutants.active_mutant() == "snapshot_stale_prefix":
                for stale_ctx in contexts:
                    mem = stale_ctx.memory
                    for seg in mem.segments:
                        mem.raw[seg.addr - mem.base] ^= 1
            for i, (spec, rng) in enumerate(tasks):
                if mutants.active_mutant() == "snapshot_rng_desync":
                    rng.integers(0, 1 << 16)
                injector = build_injector(spec, rng)
                rfd, wfd = os.pipe()
                self._inc(m, "snapshot.forks")
                pid = os.fork()
                if pid == 0:
                    # -- child: arm the fault at the parked call and let
                    # the inherited scheduler stack resume.
                    os.close(rfd)
                    child["wfd"] = wfd
                    child["spec"] = spec
                    child["injector"] = injector
                    injector._inject(ctx, call)
                    return
                os.close(wfd)
                results[i] = self._reap(pid, rfd)
            raise _PrefixAbandoned

        park.on_park = on_park
        try:
            # Corrupted data legitimately overflows in application
            # arithmetic (run_one does the same for scratch runs).
            with np.errstate(all="ignore"):
                run_results = scheduler.run()
        except _PrefixAbandoned:
            pass  # parent: every task forked (some may need re-runs)
        except SimMPIError as exc:
            if child:
                spec, injector = child["spec"], child["injector"]
                self._child_exit(child, lambda: runner.classify_error(spec, injector, exc))
            raise _SnapshotUnusable(f"fault-free prefix aborted: {exc!r}") from exc
        except Exception as exc:
            if child:
                spec, injector = child["spec"], child["injector"]
                self._child_exit(
                    child, lambda: runner.classify_harness_error(spec, injector, exc)
                )
            raise _SnapshotUnusable(f"prefix run failed in the harness: {exc!r}") from exc
        except BaseException:
            if child:  # pragma: no cover - interrupt containment
                os._exit(1)
            raise
        else:
            if child:
                spec, injector = child["spec"], child["injector"]
                self._child_exit(
                    child, lambda: runner.classify_completion(spec, injector, run_results)
                )
            # Parent, and the park never fired: the site is unreachable
            # under this configuration.
            raise _SnapshotUnusable(f"injection site never reached: {point}")

        for i, result in enumerate(results):
            if result is None:
                # The child died without delivering: full-replay this
                # test on the parent's untouched post-draw RNG.
                self._inc(m, "snapshot.fallback_tests")
                spec, rng = tasks[i]
                results[i] = runner.run_one(spec, rng)
        return results

    @staticmethod
    def _child_exit(child: dict, build_result) -> None:
        """Classify, ship the result to the parent, and exit the child
        without running any inherited teardown (``os._exit``)."""
        try:
            payload = pickle.dumps(build_result(), protocol=pickle.HIGHEST_PROTOCOL)
            view = memoryview(payload)
            wfd = child["wfd"]
            while view:
                view = view[os.write(wfd, view):]
            os.close(wfd)
            os._exit(0)
        except BaseException:  # pragma: no cover - child containment
            os._exit(1)

    @staticmethod
    def _reap(pid: int, rfd: int) -> TestResult | None:
        """Collect one child's pickled result; None on any failure."""
        chunks = []
        try:
            while True:
                block = os.read(rfd, 1 << 16)
                if not block:
                    break
                chunks.append(block)
        finally:
            os.close(rfd)
        _, status = os.waitpid(pid, 0)
        if not (os.WIFEXITED(status) and os.WEXITSTATUS(status) == 0):
            return None
        if not chunks:
            return None
        try:
            result = pickle.loads(b"".join(chunks))
        except Exception:
            return None
        return result if isinstance(result, TestResult) else None
