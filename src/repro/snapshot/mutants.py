"""Seeded defects in the snapshot-and-fork engine (self-test).

Mirrors :mod:`repro.verify.mutants`: each mutant plants a realistic bug
in the serving path that the fork-equivalence oracle (forked and
from-scratch per-test streams must fingerprint identically) is
*required* to catch.  The defects deliberately bypass the engine's own
internal divergence checks — a bug those checks catch is silently
repaired by the full-replay fallback and proves nothing about the
oracle.

Activation is a module-level flag consulted by the engine at the three
places a real implementation bug would live: the per-test RNG handoff,
the parked prefix state, and the park-site match.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class SnapshotMutant:
    """A seeded snapshot-engine defect and the check that must catch it."""

    name: str
    description: str
    detected_by: str


SNAPSHOT_MUTANTS: dict[str, SnapshotMutant] = {
    m.name: m
    for m in (
        SnapshotMutant(
            name="snapshot_rng_desync",
            description=(
                "the engine burns one extra RNG draw before handing the "
                "per-test generator to the forked child, desynchronising "
                "fault-bit selection from the from-scratch stream"
            ),
            detected_by="fork-equivalence fingerprint (verify phase 5)",
        ),
        SnapshotMutant(
            name="snapshot_stale_prefix",
            description=(
                "one byte of every heap allocation on every rank is corrupted "
                "in the parked parent after capture — every forked test "
                "inherits a prefix that never existed in the from-scratch run"
            ),
            detected_by="fork-equivalence fingerprint (verify phase 5)",
        ),
        SnapshotMutant(
            name="snapshot_wrong_invocation",
            description=(
                "the engine parks one invocation early at the target site, "
                "so forked faults fire at the wrong dynamic call"
            ),
            detected_by="fork-equivalence fingerprint (verify phase 5)",
        ),
    )
}

_active: str | None = None


def active_mutant() -> str | None:
    """Name of the armed snapshot mutant, or None."""
    return _active


@contextmanager
def seeded_snapshot_mutant(name: str) -> Iterator[SnapshotMutant]:
    """Arm one seeded engine defect for the duration of the context."""
    global _active
    if name not in SNAPSHOT_MUTANTS:
        raise KeyError(
            f"unknown snapshot mutant {name!r}; known: {sorted(SNAPSHOT_MUTANTS)}"
        )
    if _active is not None:  # pragma: no cover - defensive
        raise RuntimeError(f"snapshot mutant {_active!r} already armed")
    _active = name
    try:
        yield SNAPSHOT_MUTANTS[name]
    finally:
        _active = None
