"""Prefix snapshots of a live simulated job + deterministic fast-forward.

A :class:`SimSnapshot` captures everything needed to re-materialise a job
*parked* at an injection site after its fault-free prefix: per-rank arena
bytes (``bytes(memoryview(...))`` copies), the scheduler's mailbox and
ready/waiting queues, the communicator handle table, and every fiber's
*position* — how many times it has been advanced, plus the exact inbound
payloads it consumed along the way.

Generator frames cannot be pickled or copied, so restore is a
**deterministic fast-forward** (:func:`fast_forward`): build a fresh
runtime and re-drive each fiber, independently, to its recorded advance
count, feeding the recorded inbound payloads at every receive.  No
scheduler runs and no messages move — collective data-movement is elided
because the recorded payloads *are* the data that moved.  Because fibers
are pure functions of their resume values (apps are deterministic and
wall-clock-free by construction), the rebuilt state is value-identical to
the original; the rebuild is verified byte-for-byte against the snapshot
arenas before it is trusted, and any mismatch raises
:class:`FastForwardDiverged` so callers fall back to a full from-scratch
replay.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from ..injection.space import InjectionPoint
from ..simmpi.context import Context
from ..simmpi.fiber import Fiber, FiberState, Progress, Recv
from ..simmpi.runtime import SimMPI
from ..simmpi.scheduler import Scheduler

#: Sentinel marking "no advance in flight" in a :class:`FiberLog`.
_IDLE = object()


class FastForwardDiverged(RuntimeError):
    """Fast-forward reconstruction did not reproduce the snapshot state.

    Raised when a fiber finishes early, exhausts (or leaves unconsumed)
    its inbound payload log, or the rebuilt arenas/handle tables differ
    from the captured bytes — the app violated the determinism contract,
    or the snapshot is stale.  Callers fall back to full replay.
    """


class FiberLog:
    """Per-fiber advance log recorded by :func:`instrument_fibers`.

    ``yields`` counts completed ``gen.send`` calls, ``inbound`` holds the
    non-``None`` resume values (received payloads) in consumption order,
    and ``weight`` accumulates each yielded syscall's step-budget cost so
    a snapshot can reconstruct the scheduler's event counter exactly.
    ``pending`` is the resume value of an advance currently executing
    (the park instrument fires *mid*-advance), ``_IDLE`` otherwise.
    """

    __slots__ = ("yields", "inbound", "weight", "pending")

    def __init__(self) -> None:
        self.yields = 0
        self.inbound: list[bytes] = []
        self.weight = 0
        self.pending: Any = _IDLE

    @property
    def in_flight(self) -> bool:
        return self.pending is not _IDLE


def instrument_fibers(fibers: list[Fiber]) -> dict[int, FiberLog]:
    """Wrap every fiber's cached ``send`` with advance/payload logging.

    The scheduler advances fibers through the ``fiber.send`` attribute
    (a cached ``gen.send``), so wrapping that attribute observes every
    advance without touching the scheduler hot path for uninstrumented
    runs.  Returns the logs keyed by rank.
    """
    logs: dict[int, FiberLog] = {}
    for fiber in fibers:
        log = FiberLog()
        logs[fiber.rank] = log

        def send(value, _real=fiber.gen.send, _log=log):
            _log.pending = value
            _log.yields += 1
            if value is not None:
                _log.inbound.append(value)
            call = _real(value)  # StopIteration/errors propagate
            _log.weight += call.weight if isinstance(call, Progress) else 1
            _log.pending = _IDLE
            return call

        fiber.send = send
    return logs


@dataclass(frozen=True)
class FiberSnap:
    """One fiber's position and scheduler-visible state at park time."""

    rank: int
    #: Completed advances (the parked fiber's in-flight advance excluded).
    yields: int
    #: ``FiberState.value`` at park time.
    state: str
    #: Pending ``resume_value`` for a READY fiber whose matched payload
    #: was delivered but not yet consumed (``None`` otherwise).
    pending_resume: bytes | None
    #: Human-readable block reason (deadlock-report fidelity).
    wait_reason: str = ""


@dataclass(frozen=True)
class SimSnapshot:
    """Copyable state of a job parked at an injection site.

    Everything is plain bytes/ints/tuples — no live generators, views,
    or numpy arrays — so a snapshot is immutable, hashable-free data
    that can be retained in an LRU cache and restored any number of
    times.
    """

    point: InjectionPoint
    nranks: int
    #: Per-rank arena contents up to the bump-allocator break — bytes
    #: beyond ``brk`` were never handed out, so copying (and later
    #: verifying) them would only bloat the cache.
    arenas: tuple[bytes, ...]
    #: Per-rank bump-allocator break and allocation count.
    brks: tuple[int, ...]
    seg_counts: tuple[int, ...]
    #: Unconsumed messages: match key -> payload FIFO.
    mailbox: dict[tuple, tuple[bytes, ...]]
    #: Blocked receivers: match key -> rank.
    waiting: dict[tuple, int]
    #: Ready-queue ranks in order; the parked fiber is at the front so
    #: the restored run re-executes the parked advance first.
    ready_ranks: tuple[int, ...]
    #: Scheduler event counter at park time.
    steps: int
    fibers: tuple[FiberSnap, ...]
    #: Per-rank consumed inbound payloads, in order (the parked fiber's
    #: in-flight value is held out in ``target_pending`` instead).
    inbound: tuple[tuple[bytes, ...], ...]
    #: Resume value of the parked advance (re-fed on restore).
    target_pending: bytes | None
    #: Communicator handle table (divergence check for the rebuild).
    comm_map: dict = field(default_factory=dict)

    @property
    def nbytes(self) -> int:
        """Retained-size estimate: arenas + captured payload bytes."""
        n = sum(len(a) for a in self.arenas)
        for queue in self.mailbox.values():
            n += sum(len(p) for p in queue)
        for payloads in self.inbound:
            n += sum(len(p) for p in payloads)
        if self.target_pending is not None:
            n += len(self.target_pending)
        return n


def take_snapshot(
    point: InjectionPoint,
    scheduler: Scheduler,
    contexts: list[Context],
    fibers: list[Fiber],
    logs: dict[int, FiberLog],
) -> SimSnapshot:
    """Capture the parked job.  Must be called from inside the park
    instrument, i.e. while the target fiber is mid-advance in the
    collective entry of ``point`` — the in-flight advance is rolled back
    to "about to execute" so the restored run re-enters (and re-parks at)
    the same collective.
    """
    target = fibers[point.rank]
    tlog = logs[target.rank]
    if not tlog.in_flight:
        raise RuntimeError("take_snapshot must be called while the target fiber is parked")

    inbound: list[tuple[bytes, ...]] = []
    snaps: list[FiberSnap] = []
    for fiber in fibers:
        log = logs[fiber.rank]
        values = list(log.inbound)
        yields = log.yields
        if fiber is target:
            # The parked advance is in flight: count it as not-yet-run
            # and hold its resume value out of the log so the restored
            # schedule re-executes it first.
            yields -= 1
            if log.pending is not None:
                values.pop()
        inbound.append(tuple(values))
        snaps.append(
            FiberSnap(
                rank=fiber.rank,
                yields=yields,
                state=fiber.state.value,
                pending_resume=fiber.resume_value,
                wait_reason=fiber.wait_reason,
            )
        )

    comm_map = dict(scheduler.comm_lookup()) if scheduler.comm_lookup is not None else {}
    return SimSnapshot(
        point=point,
        nranks=len(fibers),
        arenas=tuple(
            bytes(memoryview(ctx.memory.raw)[: ctx.memory._brk - ctx.memory.base])
            for ctx in contexts
        ),
        brks=tuple(ctx.memory._brk for ctx in contexts),
        seg_counts=tuple(len(ctx.memory.segments) for ctx in contexts),
        mailbox={key: tuple(queue) for key, queue in scheduler.mailbox.items()},
        waiting={key: fiber.rank for key, fiber in scheduler.waiting.items()},
        ready_ranks=(target.rank,) + tuple(f.rank for f in scheduler._ready),
        steps=sum(log.weight for log in logs.values()),
        fibers=tuple(snaps),
        inbound=tuple(inbound),
        target_pending=tlog.pending,
        comm_map=comm_map,
    )


@dataclass
class RestoredJob:
    """A fresh runtime fast-forwarded to a snapshot's park point.

    ``scheduler.run()`` resumes exactly where the captured run was: the
    first advance re-enters the parked collective, so an attached park
    instrument fires again immediately.
    """

    sim: SimMPI
    contexts: list[Context]
    fibers: list[Fiber]
    scheduler: Scheduler
    logs: dict[int, FiberLog]


def _redrive(fiber: Fiber, snap: FiberSnap, payloads: tuple[bytes, ...]) -> None:
    """Re-drive one fiber to its recorded position, feeding recorded
    inbound payloads at every receive.  Raises FastForwardDiverged when
    the replay does not line up with the log."""
    inbound = deque(payloads)
    value: bytes | None = None
    for i in range(snap.yields):
        try:
            call = fiber.send(value)
        except StopIteration as stop:
            if i != snap.yields - 1 or snap.state != FiberState.DONE.value:
                raise FastForwardDiverged(
                    f"rank {fiber.rank}: fiber finished at advance {i + 1}, "
                    f"expected {snap.yields} advances"
                ) from None
            fiber.state = FiberState.DONE
            fiber.result = stop.value
            break
        if i == snap.yields - 1:
            # The payload for the *next* advance (if any) is not ours to
            # consume: it is either the snapshot's pending resume value
            # or the parked advance's held-out value.
            break
        if isinstance(call, Recv):
            if not inbound:
                raise FastForwardDiverged(
                    f"rank {fiber.rank}: inbound log exhausted at advance {i + 1}"
                )
            value = inbound.popleft()
        else:
            value = None
    if inbound:
        raise FastForwardDiverged(
            f"rank {fiber.rank}: {len(inbound)} recorded payloads left unconsumed"
        )


def fast_forward(
    app_fn,
    snapshot: SimSnapshot,
    *,
    step_budget: int,
    algorithms: dict[str, str] | None = None,
    alloc_cap: int | None = None,
    arena_size: int | None = None,
    instruments=(),
) -> RestoredJob:
    """Restore a snapshot into a fresh runtime by deterministic replay.

    The rebuild is verified against the snapshot (arena bytes, allocator
    break, allocation counts, fiber terminal states, communicator handle
    table) before the scheduler is primed; any mismatch raises
    :class:`FastForwardDiverged` and the partially-built job is
    discarded.
    """
    kwargs: dict[str, Any] = dict(
        step_budget=step_budget, algorithms=algorithms, alloc_cap=alloc_cap
    )
    if arena_size is not None:
        kwargs["arena_size"] = arena_size
    sim = SimMPI(snapshot.nranks, **kwargs)
    contexts, fibers, scheduler = sim.prepare(app_fn, instruments)
    logs = instrument_fibers(fibers)

    for fiber in fibers:
        _redrive(fiber, snapshot.fibers[fiber.rank], snapshot.inbound[fiber.rank])

    # -- restore scheduler-visible fiber state + queues ----------------
    for fiber in fibers:
        snap = snapshot.fibers[fiber.rank]
        if (fiber.state is FiberState.DONE) != (snap.state == FiberState.DONE.value):
            raise FastForwardDiverged(
                f"rank {fiber.rank}: terminal state differs after fast-forward"
            )
        fiber.state = FiberState(snap.state)
        fiber.resume_value = snap.pending_resume
        fiber.wait_reason = snap.wait_reason
    target = fibers[snapshot.point.rank]
    target.resume_value = snapshot.target_pending

    scheduler.mailbox = {key: deque(queue) for key, queue in snapshot.mailbox.items()}
    scheduler.waiting = {key: fibers[rank] for key, rank in snapshot.waiting.items()}
    scheduler.prime([fibers[rank] for rank in snapshot.ready_ranks], steps=snapshot.steps)
    return RestoredJob(sim=sim, contexts=contexts, fibers=fibers, scheduler=scheduler, logs=logs)


def verify_restored(job: RestoredJob, snapshot: SimSnapshot) -> None:
    """Byte-exact comparison of a restored job against its snapshot.

    Must be called when the restored job has *re-reached the park* — the
    snapshot was captured mid-advance, inside the parked collective
    entry, so only at that same instant are the two states comparable
    (comparing right after :func:`fast_forward` would flag the parked
    advance's own partial heap writes as divergence).  Any mismatch
    raises :class:`FastForwardDiverged`.
    """
    for rank, ctx in enumerate(job.contexts):
        mem = ctx.memory
        if mem._brk != snapshot.brks[rank] or len(mem.segments) != snapshot.seg_counts[rank]:
            raise FastForwardDiverged(
                f"rank {rank}: allocator state differs after fast-forward "
                f"(brk {mem._brk:#x} vs {snapshot.brks[rank]:#x}, "
                f"{len(mem.segments)} vs {snapshot.seg_counts[rank]} segments)"
            )
        if bytes(memoryview(mem.raw)[: len(snapshot.arenas[rank])]) != snapshot.arenas[rank]:
            raise FastForwardDiverged(f"rank {rank}: arena bytes differ after fast-forward")
    if dict(job.sim.comm_factory.context_map()) != snapshot.comm_map:
        raise FastForwardDiverged("communicator handle table differs after fast-forward")
