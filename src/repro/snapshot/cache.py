"""Byte-bounded LRU cache of prefix snapshots, keyed by injection point.

The budget bounds retained :attr:`SimSnapshot.nbytes` (dominated by the
per-rank arena copies, trimmed to each rank's allocator break), not
entry count: snapshots of big jobs still add up over a long campaign,
and an unbounded cache would also inflate every subsequent
``os.fork`` — the parent's resident set is what the kernel clones.
Insertion and lookup refresh recency; the least-recently-used snapshots
are evicted first.
"""

from __future__ import annotations

from collections import OrderedDict

from ..injection.space import InjectionPoint
from .snapshot import SimSnapshot

#: Default retained-bytes budget: a handful of 8-rank snapshots.
DEFAULT_CACHE_BYTES = 256 * 1024 * 1024


class SnapshotCache:
    """LRU mapping of :class:`InjectionPoint` -> :class:`SimSnapshot`."""

    def __init__(self, max_bytes: int = DEFAULT_CACHE_BYTES):
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.max_bytes = max_bytes
        self._entries: OrderedDict[InjectionPoint, SimSnapshot] = OrderedDict()
        self.nbytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, point: InjectionPoint) -> bool:
        return point in self._entries

    def get(self, point: InjectionPoint) -> SimSnapshot | None:
        """Return the cached snapshot (refreshing recency), or None."""
        snapshot = self._entries.get(point)
        if snapshot is None:
            self.misses += 1
            return None
        self._entries.move_to_end(point)
        self.hits += 1
        return snapshot

    def put(self, point: InjectionPoint, snapshot: SimSnapshot) -> None:
        """Insert (or refresh) a snapshot, evicting LRU entries to stay
        within the byte budget.  A snapshot larger than the whole budget
        is not retained at all."""
        old = self._entries.pop(point, None)
        if old is not None:
            self.nbytes -= old.nbytes
        if snapshot.nbytes > self.max_bytes:
            return
        self._entries[point] = snapshot
        self.nbytes += snapshot.nbytes
        while self.nbytes > self.max_bytes and self._entries:
            _, evicted = self._entries.popitem(last=False)
            self.nbytes -= evicted.nbytes
            self.evictions += 1

    def pop(self, point: InjectionPoint) -> None:
        """Drop a snapshot (e.g. after a fast-forward divergence)."""
        snapshot = self._entries.pop(point, None)
        if snapshot is not None:
            self.nbytes -= snapshot.nbytes

    def clear(self) -> None:
        self._entries.clear()
        self.nbytes = 0
