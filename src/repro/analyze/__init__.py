"""Static analysis for the fault-injection pipeline.

Three cooperating passes that resolve questions about an application's
fault space *before* any simulator execution:

* :mod:`repro.analyze.skeleton` — dry-runs an app under a record-only
  runtime stub and extracts its per-rank collective **skeleton**
  (symbolic call sequences with concrete clean arguments).
* :mod:`repro.analyze.matching` — MPI-Checker-style cross-rank
  collective-matching verification over a skeleton: order, roots,
  counts/dtypes, reduction ops, structural deadlocks.
* :mod:`repro.analyze.preclassify` — provable fault-outcome
  pre-classification for ``InjectionPoint × test`` pairs, replaying the
  campaign's exact per-test randomness; predictions feed ``--static-
  prune`` (see :mod:`repro.injection.campaign`) and the semantic pruner.
* :mod:`repro.analyze.crossval` — the referee: every prediction class
  is validated against live simulator runs; CI fails on one mismatch.
* :mod:`repro.analyze.lint` — determinism/simulator-safety lint the
  replay log depends on.
* :mod:`repro.analyze.mutants` — seeded skeleton defects the matching
  checker must catch (self-test).

CLI: ``fastfit analyze`` (and ``--static-prune`` on ``fastfit run``).
"""

from .crossval import CrossValidation, Mismatch, cross_validate
from .lint import LINT_RULES, LintFinding, lint_source, lint_tree
from .matching import Finding, MatchReport, check_skeleton
from .mutants import ANALYZE_MUTANTS, MutantCheck, SkeletonMutant, run_mutant
from .preclassify import (
    PRECLASSIFY_RULES,
    PreClassifier,
    Prediction,
    StaticPruneError,
    predict_tests,
)
from .skeleton import (
    HandleTable,
    Skeleton,
    SkeletonExtractionError,
    SkeletonOp,
    extract_skeleton,
    mutate_op,
    replace_skeleton,
    snapshot_tables,
)

__all__ = [
    "ANALYZE_MUTANTS",
    "CrossValidation",
    "Finding",
    "HandleTable",
    "LINT_RULES",
    "LintFinding",
    "MatchReport",
    "Mismatch",
    "MutantCheck",
    "PRECLASSIFY_RULES",
    "PreClassifier",
    "Prediction",
    "Skeleton",
    "SkeletonExtractionError",
    "SkeletonMutant",
    "SkeletonOp",
    "StaticPruneError",
    "check_skeleton",
    "cross_validate",
    "extract_skeleton",
    "lint_source",
    "lint_tree",
    "mutate_op",
    "predict_tests",
    "replace_skeleton",
    "run_mutant",
    "snapshot_tables",
]
