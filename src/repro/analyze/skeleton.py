"""Record-only skeleton extraction (static pass 1, input to the others).

A *skeleton* is the per-rank sequence of collective invocations an
application performs, captured symbolically: collective name, call site,
communicator group, root, counts, datatypes, reduction ops, and buffer
addresses — everything the matching checker and the fault-outcome
pre-classifier need, and nothing payload-specific.

Extraction dry-runs the application under a :class:`RecordingContext`, a
``Context`` subclass whose collective methods *record and meet* instead
of expanding into point-to-point schedules: each rank parks at an
arrival marker, and once every communicator member has arrived the data
effect is applied in one shot with the independent reference model from
``repro.verify.reference``.  No scheduler, no fibers, no per-message
traffic — the trampoline below is a simple round-robin resumption loop,
so a skeleton run is both faster than a simulated run and structurally
transparent: if ranks disagree about the next collective, extraction
stops with the exact per-rank disagreement.

Point-to-point traffic (``Send``/``Recv``/``Sendrecv``/``Isend``…) is
supported through the *inherited* context methods: the trampoline speaks
the fiber syscall protocol directly, with the same eager-send /
blocking-receive semantics as the production scheduler.

Because ``RecordingContext`` reuses the real ``Context._enter`` plumbing
(with a stack-capture filter extended to this package), skeleton call
sites, invocation counters, and sequence numbers are *identical* to the
ones a profiled run produces — a skeleton op can be joined to an
:class:`~repro.injection.space.InjectionPoint` by key.
"""

from __future__ import annotations

import os
import sys
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any, Generator, Mapping, Sequence

import numpy as np

from ..apps.base import Application
from ..simmpi import COLLECTIVE_PARAMS, CollectiveCall
from ..simmpi import context as _context_mod
from ..simmpi.calls import (
    BUFFER_PARAMS,
    HANDLE_VECTOR_PARAMS,
    SCALAR_PARAMS,
    VECTOR_PARAMS,
)
from ..simmpi.comm import Communicator
from ..simmpi.context import Context
from ..simmpi.datatypes import Datatype
from ..simmpi.fiber import Progress, Recv, Send
from ..simmpi.handles import OBJECT_EXTENT, HandleSpace
from ..simmpi.memory import Memory
from ..simmpi.ops import ReduceOp
from ..simmpi.runtime import SimMPI
from ..simmpi.validation import (
    check_addr,
    check_count,
    check_counts_array,
    check_root,
    resolve_comm,
    resolve_datatype,
    resolve_op,
)
from ..verify import reference as ref

_THIS_FILE = os.path.abspath(__file__)
_ANALYZE_DIR = os.path.dirname(_THIS_FILE)
_SIMMPI_DIR = os.path.dirname(os.path.abspath(_context_mod.__file__))

#: Resumption-count guard for the extraction trampoline: a dry run that
#: exceeds it is declared non-terminating (clean apps finish far below).
DEFAULT_RESUME_LIMIT = 20_000_000


class SkeletonExtractionError(RuntimeError):
    """The dry run could not complete — structural bug in the app.

    Raised with per-rank state when ranks disagree about the next
    collective on a communicator or the run wedges with pending
    receives: exactly the class of defect the matching checker exists
    to report, surfaced at extraction time.
    """


@dataclass(frozen=True, slots=True)
class SkeletonOp:
    """One rank's symbolic record of one collective invocation."""

    rank: int
    name: str
    site: str
    invocation: int
    seq: int
    phase: str
    comm_group: tuple[int, ...]
    comm_context: int
    me: int
    root_world: int | None
    dtype: str | None
    dtype_size: int
    op: str | None
    op_commutative: bool | None
    args: Mapping[str, Any]
    stack: tuple[str, ...] = ()

    @property
    def point_key(self) -> tuple[int, str, str, int]:
        """Join key against :class:`~repro.injection.space.InjectionPoint`."""
        return (self.rank, self.name, self.site, self.invocation)


@dataclass(frozen=True, slots=True)
class HandleTable:
    """Static snapshot of one pointer-like handle space.

    ``resolve_static`` mirrors :meth:`repro.simmpi.handles.HandleSpace.resolve`
    without executing anything: the three outcomes (live object /
    corrupted-but-alive / unmapped) are decidable from the layout alone.
    """

    kind: str
    base: int
    top: int
    descr: Mapping[int, str]
    groups: Mapping[int, tuple[int, ...]] = field(default_factory=dict)
    #: Datatype table only: handle -> element size in bytes.
    sizes: Mapping[int, int] = field(default_factory=dict)

    @property
    def live(self) -> tuple[int, ...]:
        return tuple(sorted(self.descr))

    def resolve_static(self, handle: int) -> tuple[str, int | None]:
        """Classify ``handle`` as ``("live", h)``, ``("corrupt", base)``,
        or ``("segfault", None)`` — exactly like the runtime would."""
        if handle in self.descr:
            return ("live", handle)
        offset = handle - self.base
        if 0 <= offset < self.top - self.base and handle % OBJECT_EXTENT != 0:
            aligned = handle - (handle % OBJECT_EXTENT)
            if aligned in self.descr:
                return ("corrupt", aligned)
        return ("segfault", None)


@dataclass
class Skeleton:
    """The full symbolic communication skeleton of one application run."""

    app_name: str
    nranks: int
    arena_base: int
    arena_size: int
    algorithms: dict[str, str]
    datatypes: HandleTable
    reduce_ops: HandleTable
    comms: HandleTable
    ranks: list[list[SkeletonOp]]
    results: list[Any] = field(default_factory=list)

    @property
    def n_ops(self) -> int:
        return sum(len(seq) for seq in self.ranks)

    @property
    def arena_end(self) -> int:
        return self.arena_base + self.arena_size

    def op_index(self) -> dict[tuple[int, str, str, int], SkeletonOp]:
        """``(rank, collective, site, invocation) -> op`` lookup."""
        index: dict[tuple[int, str, str, int], SkeletonOp] = {}
        for seq in self.ranks:
            for op in seq:
                index[op.point_key] = op
        return index

    def site_invocations(self) -> dict[tuple[int, tuple[str, str]], int]:
        """Per ``(rank, (name, site))`` invocation counts — the same key
        shape as ``ApplicationProfile.summaries``."""
        counts: dict[tuple[int, tuple[str, str]], int] = {}
        for seq in self.ranks:
            for op in seq:
                key = (op.rank, (op.name, op.site))
                counts[key] = counts.get(key, 0) + 1
        return counts


@dataclass(slots=True)
class _Arrival:
    """Yielded by a recording collective; parks the rank until the meet."""

    op: SkeletonOp
    call: CollectiveCall
    comm: Communicator
    dtype: Datatype | None
    rop: ReduceOp | None
    stypes: tuple[Datatype, ...] | None = None
    rtypes: tuple[Datatype, ...] | None = None


class RecordingContext(Context):
    """A per-rank context that records collectives instead of running them.

    Everything application-facing — allocation, phases, predefined
    handles, point-to-point methods — is inherited unchanged from the
    real :class:`~repro.simmpi.context.Context`; only the collective
    entry points are replaced by :meth:`_record`.
    """

    def __init__(self, runtime: SimMPI, rank: int, ops_out: list[SkeletonOp]):
        super().__init__(runtime, rank, instruments=())
        self._ops_out = ops_out

    # -- stack capture --------------------------------------------------

    def _capture_stack(self) -> tuple[tuple[str, ...], str]:
        """Like ``Context._capture_stack`` but for the recording
        trampoline: frames from this package are harness frames too, and
        the stack ends at ``_step_fiber`` instead of the scheduler."""
        raw: list[tuple[str, str, int]] = []
        frame = sys._getframe(1)
        while frame is not None:
            code = frame.f_code
            if code.co_filename == _THIS_FILE and code.co_name == "_step_fiber":
                break
            raw.append((code.co_filename, code.co_name, frame.f_lineno))
            frame = frame.f_back
        app_frames = [
            (fn, name, lineno)
            for fn, name, lineno in raw
            if not fn.startswith(_SIMMPI_DIR) and not fn.startswith(_ANALYZE_DIR)
        ]
        if not app_frames:
            return ("<unknown>",), "<unknown>"
        site_fn, _, site_lineno = app_frames[0]
        site = f"{os.path.basename(site_fn)}:{site_lineno}"
        stack = tuple(
            f"{name}@{os.path.basename(fn)}:{lineno}"
            for fn, name, lineno in reversed(app_frames)
        )
        return stack, site

    # -- the generic recording collective -------------------------------

    def _record(self, name: str, args: dict[str, Any]) -> Generator:
        call = self._enter(name, args)
        a = call.args
        comm_obj = resolve_comm(self.runtime, a["comm"], rank=self.rank)
        dtype = rop = None
        stypes = rtypes = None
        if "datatype" in a:
            dtype = resolve_datatype(self.runtime, a["datatype"], rank=self.rank)
        if "op" in a:
            rop = resolve_op(self.runtime, a["op"], rank=self.rank)
        if "sendtypes" in a:
            stypes = tuple(
                resolve_datatype(self.runtime, h, rank=self.rank) for h in a["sendtypes"]
            )
            rtypes = tuple(
                resolve_datatype(self.runtime, h, rank=self.rank) for h in a["recvtypes"]
            )
        # Mirror the per-parameter validation of the real entry points.
        # Clean applications pass; a dirty one fails here exactly as it
        # would on the fiber's first step.
        for param in COLLECTIVE_PARAMS[name]:
            if param == "root":
                check_root(a["root"], comm_obj, rank=self.rank)
            elif param in SCALAR_PARAMS:
                check_count(a[param], rank=self.rank, what=param)
            elif param in ("sendcounts", "recvcounts"):
                check_counts_array(a[param], rank=self.rank, what=param)
            elif param in BUFFER_PARAMS:
                check_addr(a[param], rank=self.rank)
        norm: dict[str, Any] = {}
        for param in COLLECTIVE_PARAMS[name]:
            value = a[param]
            if param in VECTOR_PARAMS or param in HANDLE_VECTOR_PARAMS:
                norm[param] = tuple(int(x) for x in value)
            else:
                norm[param] = int(value)
        root_world = None
        if "root" in a:
            root_world = comm_obj.group[int(a["root"])]
        op = SkeletonOp(
            rank=self.rank,
            name=name,
            site=call.site,
            invocation=call.invocation,
            seq=call.seq,
            phase=call.phase,
            comm_group=comm_obj.group,
            comm_context=comm_obj.context_id,
            me=comm_obj.rank_of(self.rank),
            root_world=root_world,
            dtype=dtype.name if dtype is not None else None,
            dtype_size=dtype.size if dtype is not None else 1,
            op=rop.name if rop is not None else None,
            op_commutative=rop.commutative if rop is not None else None,
            args=norm,
            stack=call.stack,
        )
        self._ops_out.append(op)
        yield _Arrival(op, call, comm_obj, dtype, rop, stypes, rtypes)
        self._complete(call)

    # -- collective entry points (signatures match Context) -------------

    def Bcast(self, buffer: int, count: int, datatype: int, root: int, comm: int) -> Generator:
        return self._record("Bcast", dict(zip(COLLECTIVE_PARAMS["Bcast"],
                                              (buffer, count, datatype, root, comm))))

    def Reduce(
        self, sendbuf: int, recvbuf: int, count: int, datatype: int, op: int, root: int, comm: int
    ) -> Generator:
        return self._record("Reduce", dict(zip(COLLECTIVE_PARAMS["Reduce"],
                                               (sendbuf, recvbuf, count, datatype, op, root, comm))))

    def Allreduce(
        self, sendbuf: int, recvbuf: int, count: int, datatype: int, op: int, comm: int
    ) -> Generator:
        return self._record("Allreduce", dict(zip(COLLECTIVE_PARAMS["Allreduce"],
                                                  (sendbuf, recvbuf, count, datatype, op, comm))))

    def Scatter(
        self, sendbuf: int, sendcount: int, recvbuf: int, recvcount: int, datatype: int, root: int,
        comm: int
    ) -> Generator:
        return self._record("Scatter", dict(zip(COLLECTIVE_PARAMS["Scatter"],
                                                (sendbuf, sendcount, recvbuf, recvcount,
                                                 datatype, root, comm))))

    def Gather(
        self, sendbuf: int, sendcount: int, recvbuf: int, recvcount: int, datatype: int, root: int,
        comm: int
    ) -> Generator:
        return self._record("Gather", dict(zip(COLLECTIVE_PARAMS["Gather"],
                                               (sendbuf, sendcount, recvbuf, recvcount,
                                                datatype, root, comm))))

    def Allgather(
        self, sendbuf: int, sendcount: int, recvbuf: int, recvcount: int, datatype: int, comm: int
    ) -> Generator:
        return self._record("Allgather", dict(zip(COLLECTIVE_PARAMS["Allgather"],
                                                  (sendbuf, sendcount, recvbuf, recvcount,
                                                   datatype, comm))))

    def Alltoall(
        self, sendbuf: int, sendcount: int, recvbuf: int, recvcount: int, datatype: int, comm: int
    ) -> Generator:
        return self._record("Alltoall", dict(zip(COLLECTIVE_PARAMS["Alltoall"],
                                                 (sendbuf, sendcount, recvbuf, recvcount,
                                                  datatype, comm))))

    def Alltoallv(
        self, sendbuf: int, sendcounts: Sequence[int], sdispls: Sequence[int], recvbuf: int,
        recvcounts: Sequence[int], rdispls: Sequence[int], datatype: int, comm: int
    ) -> Generator:
        return self._record("Alltoallv", dict(zip(COLLECTIVE_PARAMS["Alltoallv"],
                                                  (sendbuf, sendcounts, sdispls, recvbuf,
                                                   recvcounts, rdispls, datatype, comm))))

    def Barrier(self, comm: int) -> Generator:
        return self._record("Barrier", {"comm": comm})

    def Scan(self, sendbuf: int, recvbuf: int, count: int, datatype: int, op: int, comm: int) -> Generator:
        return self._record("Scan", dict(zip(COLLECTIVE_PARAMS["Scan"],
                                             (sendbuf, recvbuf, count, datatype, op, comm))))

    def Exscan(self, sendbuf: int, recvbuf: int, count: int, datatype: int, op: int, comm: int) -> Generator:
        return self._record("Exscan", dict(zip(COLLECTIVE_PARAMS["Exscan"],
                                               (sendbuf, recvbuf, count, datatype, op, comm))))

    def Reduce_scatter(
        self, sendbuf: int, recvbuf: int, recvcount: int, datatype: int, op: int, comm: int
    ) -> Generator:
        return self._record("Reduce_scatter", dict(zip(COLLECTIVE_PARAMS["Reduce_scatter"],
                                                       (sendbuf, recvbuf, recvcount,
                                                        datatype, op, comm))))

    def Gatherv(
        self, sendbuf: int, sendcount: int, recvbuf: int, recvcounts: Sequence[int],
        displs: Sequence[int], datatype: int, root: int, comm: int
    ) -> Generator:
        return self._record("Gatherv", dict(zip(COLLECTIVE_PARAMS["Gatherv"],
                                                (sendbuf, sendcount, recvbuf, recvcounts,
                                                 displs, datatype, root, comm))))

    def Scatterv(
        self, sendbuf: int, sendcounts: Sequence[int], displs: Sequence[int], recvbuf: int,
        recvcount: int, datatype: int, root: int, comm: int
    ) -> Generator:
        return self._record("Scatterv", dict(zip(COLLECTIVE_PARAMS["Scatterv"],
                                                 (sendbuf, sendcounts, displs, recvbuf,
                                                  recvcount, datatype, root, comm))))

    def Allgatherv(
        self, sendbuf: int, sendcount: int, recvbuf: int, recvcounts: Sequence[int],
        displs: Sequence[int], datatype: int, comm: int
    ) -> Generator:
        return self._record("Allgatherv", dict(zip(COLLECTIVE_PARAMS["Allgatherv"],
                                                   (sendbuf, sendcount, recvbuf, recvcounts,
                                                    displs, datatype, comm))))

    def Alltoallw(
        self, sendbuf: int, sendcounts: Sequence[int], sdispls: Sequence[int],
        sendtypes: Sequence[int], recvbuf: int, recvcounts: Sequence[int], rdispls: Sequence[int],
        recvtypes: Sequence[int], comm: int
    ) -> Generator:
        return self._record("Alltoallw", dict(zip(COLLECTIVE_PARAMS["Alltoallw"],
                                                  (sendbuf, sendcounts, sdispls, sendtypes,
                                                   recvbuf, recvcounts, rdispls, recvtypes,
                                                   comm))))


# -- reference-model data effects at the meet point -------------------------


def _read(mem: Memory, addr: int, count: int, np_dtype: np.dtype) -> np.ndarray:
    if count <= 0:
        return np.empty(0, dtype=np_dtype)
    data = mem.read(int(addr), int(count) * np_dtype.itemsize)
    return np.frombuffer(data, dtype=np_dtype).copy()


def _write(mem: Memory, addr: int, img: np.ndarray) -> None:
    if img.size:
        mem.write(int(addr), np.ascontiguousarray(img).tobytes())


def _vspan(counts: Sequence[int], displs: Sequence[int]) -> int:
    return max((int(d) + int(c) for c, d in zip(counts, displs)), default=0)


def _apply_collective(arrivals: list[_Arrival], mems: list[Memory]) -> None:
    """Apply one met collective's data effect with the reference model.

    ``arrivals``/``mems`` are indexed by comm-local rank.  Reads and
    writes touch exactly the regions the production drivers would, so a
    skeleton run leaves every rank's memory bit-identical to a simulated
    run (the reference model was differentially pinned against the
    drivers by ``repro.verify``).
    """
    a0 = arrivals[0]
    name = a0.op.name
    n = len(arrivals)
    if name == "Barrier":
        return
    dt = a0.dtype.np_dtype if a0.dtype is not None else np.dtype("u1")
    args = [arr.op.args for arr in arrivals]

    if name == "Bcast":
        root = int(args[0]["root"])
        count = int(args[root]["count"])
        imgs = [_read(mems[r], args[r]["buffer"], count, dt) for r in range(n)]
        out = ref.ref_bcast(imgs, root)
        for r in range(n):
            _write(mems[r], args[r]["buffer"], out[r])
    elif name in ("Reduce",):
        root = int(args[0]["root"])
        count = int(args[root]["count"])
        sends = [_read(mems[r], args[r]["sendbuf"], count, dt) for r in range(n)]
        recvs = [
            _read(mems[r], args[r]["recvbuf"], count, dt) if r == root
            else np.empty(0, dtype=dt)
            for r in range(n)
        ]
        out = ref.ref_reduce(sends, recvs, a0.rop, dt, root)
        _write(mems[root], args[root]["recvbuf"], out[root])
    elif name == "Allreduce":
        count = int(args[0]["count"])
        sends = [_read(mems[r], args[r]["sendbuf"], count, dt) for r in range(n)]
        recvs = [_read(mems[r], args[r]["recvbuf"], count, dt) for r in range(n)]
        out = ref.ref_allreduce(sends, recvs, a0.rop, dt)
        for r in range(n):
            _write(mems[r], args[r]["recvbuf"], out[r])
    elif name == "Scatter":
        root = int(args[0]["root"])
        count = int(args[0]["recvcount"])
        rootsend = _read(mems[root], args[root]["sendbuf"], int(args[root]["sendcount"]) * n, dt)
        recvs = [_read(mems[r], args[r]["recvbuf"], count, dt) for r in range(n)]
        out = ref.ref_scatter(rootsend, recvs, count, root)
        for r in range(n):
            _write(mems[r], args[r]["recvbuf"], out[r])
    elif name == "Gather":
        root = int(args[0]["root"])
        count = int(args[0]["sendcount"])
        sends = [_read(mems[r], args[r]["sendbuf"], count, dt) for r in range(n)]
        recvs = [
            _read(mems[r], args[r]["recvbuf"], int(args[r]["recvcount"]) * n, dt)
            if r == root else np.empty(0, dtype=dt)
            for r in range(n)
        ]
        out = ref.ref_gather(sends, recvs, count, root)
        _write(mems[root], args[root]["recvbuf"], out[root])
    elif name == "Allgather":
        count = int(args[0]["sendcount"])
        sends = [_read(mems[r], args[r]["sendbuf"], count, dt) for r in range(n)]
        recvs = [_read(mems[r], args[r]["recvbuf"], count * n, dt) for r in range(n)]
        out = ref.ref_allgather(sends, recvs, count)
        for r in range(n):
            _write(mems[r], args[r]["recvbuf"], out[r])
    elif name == "Alltoall":
        count = int(args[0]["sendcount"])
        sends = [_read(mems[r], args[r]["sendbuf"], count * n, dt) for r in range(n)]
        recvs = [_read(mems[r], args[r]["recvbuf"], count * n, dt) for r in range(n)]
        out = ref.ref_alltoall(sends, recvs, count)
        for r in range(n):
            _write(mems[r], args[r]["recvbuf"], out[r])
    elif name == "Alltoallv":
        sends = [
            _read(mems[r], args[r]["sendbuf"], _vspan(args[r]["sendcounts"], args[r]["sdispls"]), dt)
            for r in range(n)
        ]
        recvs = [
            _read(mems[r], args[r]["recvbuf"], _vspan(args[r]["recvcounts"], args[r]["rdispls"]), dt)
            for r in range(n)
        ]
        out = ref.ref_alltoallv(
            sends, recvs,
            [args[r]["sendcounts"] for r in range(n)],
            [args[r]["sdispls"] for r in range(n)],
            [args[r]["recvcounts"] for r in range(n)],
            [args[r]["rdispls"] for r in range(n)],
        )
        for r in range(n):
            _write(mems[r], args[r]["recvbuf"], out[r])
    elif name == "Alltoallw":
        byte = np.dtype("u1")
        ssizes = [[t.size for t in arr.stypes or ()] for arr in arrivals]
        rsizes = [[t.size for t in arr.rtypes or ()] for arr in arrivals]
        sspans = [
            max((int(d) + int(c) * s for c, d, s in
                 zip(args[r]["sendcounts"], args[r]["sdispls"], ssizes[r])), default=0)
            for r in range(n)
        ]
        rspans = [
            max((int(d) + int(c) * s for c, d, s in
                 zip(args[r]["recvcounts"], args[r]["rdispls"], rsizes[r])), default=0)
            for r in range(n)
        ]
        sends = [_read(mems[r], args[r]["sendbuf"], sspans[r], byte) for r in range(n)]
        recvs = [_read(mems[r], args[r]["recvbuf"], rspans[r], byte) for r in range(n)]
        out = ref.ref_alltoallw(
            sends, recvs,
            [args[r]["sendcounts"] for r in range(n)],
            [args[r]["sdispls"] for r in range(n)],
            ssizes,
            [args[r]["recvcounts"] for r in range(n)],
            [args[r]["rdispls"] for r in range(n)],
            rsizes,
        )
        for r in range(n):
            _write(mems[r], args[r]["recvbuf"], out[r])
    elif name == "Reduce_scatter":
        count = int(args[0]["recvcount"])
        sends = [_read(mems[r], args[r]["sendbuf"], count * n, dt) for r in range(n)]
        recvs = [_read(mems[r], args[r]["recvbuf"], count, dt) for r in range(n)]
        out = ref.ref_reduce_scatter_block(sends, recvs, a0.rop, dt, count)
        for r in range(n):
            _write(mems[r], args[r]["recvbuf"], out[r])
    elif name == "Scan":
        count = int(args[0]["count"])
        sends = [_read(mems[r], args[r]["sendbuf"], count, dt) for r in range(n)]
        recvs = [_read(mems[r], args[r]["recvbuf"], count, dt) for r in range(n)]
        out = ref.ref_scan(sends, recvs, a0.rop, dt)
        for r in range(n):
            _write(mems[r], args[r]["recvbuf"], out[r])
    elif name == "Exscan":
        count = int(args[0]["count"])
        sends = [_read(mems[r], args[r]["sendbuf"], count, dt) for r in range(n)]
        recvs = [_read(mems[r], args[r]["recvbuf"], count, dt) for r in range(n)]
        out = ref.ref_exscan(sends, recvs, a0.rop, dt)
        for r in range(1, n):
            _write(mems[r], args[r]["recvbuf"], out[r])
    elif name == "Gatherv":
        root = int(args[0]["root"])
        sends = [_read(mems[r], args[r]["sendbuf"], int(args[r]["sendcount"]), dt) for r in range(n)]
        span = _vspan(args[root]["recvcounts"], args[root]["displs"])
        recvs = [
            _read(mems[r], args[r]["recvbuf"], span, dt) if r == root
            else np.empty(0, dtype=dt)
            for r in range(n)
        ]
        out = ref.ref_gatherv(sends, recvs, args[root]["recvcounts"], args[root]["displs"], root)
        _write(mems[root], args[root]["recvbuf"], out[root])
    elif name == "Scatterv":
        root = int(args[0]["root"])
        span = _vspan(args[root]["sendcounts"], args[root]["displs"])
        rootsend = _read(mems[root], args[root]["sendbuf"], span, dt)
        recvs = [_read(mems[r], args[r]["recvbuf"], int(args[r]["recvcount"]), dt) for r in range(n)]
        out = ref.ref_scatterv(rootsend, recvs, args[root]["sendcounts"], args[root]["displs"], root)
        for r in range(n):
            _write(mems[r], args[r]["recvbuf"], out[r])
    elif name == "Allgatherv":
        sends = [_read(mems[r], args[r]["sendbuf"], int(args[r]["sendcount"]), dt) for r in range(n)]
        recvs = [
            _read(mems[r], args[r]["recvbuf"], _vspan(args[r]["recvcounts"], args[r]["displs"]), dt)
            for r in range(n)
        ]
        out = ref.ref_allgatherv(
            sends, recvs, args[0]["recvcounts"], args[0]["displs"]
        )
        for r in range(n):
            _write(mems[r], args[r]["recvbuf"], out[r])
    else:  # pragma: no cover - every collective above is exhaustive
        raise SkeletonExtractionError(f"no reference semantics for {name}")


# -- the trampoline ---------------------------------------------------------


def _step_fiber(gen: Generator, value: Any) -> tuple[str, Any]:
    """Advance one rank's generator; ``("yield", item)`` or ``("done", result)``.

    The name and file of this function are the stack-capture barrier in
    :meth:`RecordingContext._capture_stack` — do not rename it without
    updating the filter.
    """
    try:
        return ("yield", gen.send(value))
    except StopIteration as stop:
        return ("done", stop.value)


def _snapshot(space: HandleSpace, descr: dict[int, str],
              groups: dict[int, tuple[int, ...]] | None = None,
              sizes: dict[int, int] | None = None) -> HandleTable:
    live = space.handles()
    top = (max(live) + OBJECT_EXTENT) if live else space.base
    return HandleTable(space.name, space.base, top, descr, groups or {}, sizes or {})


def snapshot_tables(runtime: SimMPI) -> tuple[HandleTable, HandleTable, HandleTable]:
    """Static handle tables (datatype / op / comm) of a runtime."""
    dt = _snapshot(
        runtime.type_space,
        {h: runtime.type_space.resolve(h).name for h in runtime.type_space.handles()},
        sizes={h: runtime.type_space.resolve(h).size for h in runtime.type_space.handles()},
    )
    op = _snapshot(
        runtime.op_space,
        {h: runtime.op_space.resolve(h).name for h in runtime.op_space.handles()},
    )
    comm_space = runtime.comm_factory.space
    comm = _snapshot(
        comm_space,
        {h: comm_space.resolve(h).name for h in comm_space.handles()},
        {h: comm_space.resolve(h).group for h in comm_space.handles()},
    )
    return dt, op, comm


def extract_skeleton(
    app: Application,
    algorithms: dict[str, str] | None = None,
    resume_limit: int = DEFAULT_RESUME_LIMIT,
) -> Skeleton:
    """Dry-run ``app`` under the recording stub and return its skeleton."""
    runtime = SimMPI(app.nranks, algorithms=algorithms)
    n = app.nranks
    ops: list[list[SkeletonOp]] = [[] for _ in range(n)]
    contexts = [RecordingContext(runtime, r, ops[r]) for r in range(n)]
    gens = [app.main(c) for c in contexts]
    mems = [c.memory for c in contexts]

    results: list[Any] = [None] * n
    done = [False] * n
    runnable: deque[tuple[int, Any]] = deque((r, None) for r in range(n))
    # Pending collective arrivals, keyed by communicator context id.
    parked_coll: dict[int, dict[int, _Arrival]] = {}
    # Blocked receives: world rank -> the Recv syscall it waits on.
    parked_recv: dict[int, Recv] = {}
    # Eager-send mailbox, FIFO per (context_id, src, dst, tag).
    mailbox: dict[tuple[int, int, int, int], deque[bytes]] = {}
    resumes = 0

    def _meet(ctx_id: int) -> None:
        arrivals_by_me = parked_coll.pop(ctx_id)
        ordered = [arrivals_by_me[me] for me in range(len(arrivals_by_me))]
        names = {arr.op.name for arr in ordered}
        sites = {arr.op.site for arr in ordered}
        if len(names) != 1:
            detail = ", ".join(
                f"rank {arr.op.rank}: {arr.op.name}@{arr.op.site}" for arr in ordered
            )
            raise SkeletonExtractionError(
                f"ranks disagree about the current collective on comm "
                f"{ctx_id}: {detail}"
            )
        if len(sites) > 1:
            # Legal SPMD code can reach one collective from several call
            # sites; the matching checker reports it, extraction proceeds.
            pass
        comm_mems = [mems[arr.op.rank] for arr in ordered]
        _apply_collective(ordered, comm_mems)
        for arr in ordered:
            runnable.append((arr.op.rank, None))

    while runnable:
        rank, value = runnable.popleft()
        status, item = _step_fiber(gens[rank], value)
        while True:
            resumes += 1
            if resumes > resume_limit:
                raise SkeletonExtractionError(
                    f"dry run exceeded {resume_limit} resumptions; "
                    f"the application appears not to terminate"
                )
            if status == "done":
                results[rank] = item
                done[rank] = True
                break
            if isinstance(item, _Arrival):
                ctx_id = item.comm.context_id
                slot = parked_coll.setdefault(ctx_id, {})
                if item.op.me in slot:
                    raise SkeletonExtractionError(
                        f"rank {rank} arrived twice at comm {ctx_id} "
                        f"without a meet — corrupted communicator state"
                    )
                slot[item.op.me] = item
                if len(slot) == item.comm.size:
                    _meet(ctx_id)
                break
            if isinstance(item, Progress):
                status, item = _step_fiber(gens[rank], None)
                continue
            if isinstance(item, Send):
                key = (item.context_id, item.src, item.dst, item.tag)
                mailbox.setdefault(key, deque()).append(item.payload)
                # Wake a matching parked receiver, if any.
                for waiter, recv in list(parked_recv.items()):
                    if (recv.context_id, recv.src, recv.dst, recv.tag) == key:
                        del parked_recv[waiter]
                        payload = mailbox[key].popleft()
                        if not mailbox[key]:
                            del mailbox[key]
                        runnable.append((waiter, payload))
                        break
                status, item = _step_fiber(gens[rank], None)
                continue
            if isinstance(item, Recv):
                key = (item.context_id, item.src, item.dst, item.tag)
                queue = mailbox.get(key)
                if queue:
                    payload = queue.popleft()
                    if not queue:
                        del mailbox[key]
                    status, item = _step_fiber(gens[rank], payload)
                    continue
                parked_recv[rank] = item
                break
            raise SkeletonExtractionError(
                f"rank {rank} yielded unsupported syscall {item!r} during "
                f"skeleton extraction"
            )

    if not all(done):
        stuck = []
        for r in range(n):
            if done[r]:
                continue
            if r in parked_recv:
                recv = parked_recv[r]
                stuck.append(f"rank {r}: blocked Recv(src={recv.src}, tag={recv.tag})")
            else:
                for ctx_id, slot in parked_coll.items():
                    for arr in slot.values():
                        if arr.op.rank == r:
                            stuck.append(
                                f"rank {r}: waiting in {arr.op.name}@{arr.op.site} "
                                f"on comm {ctx_id} ({len(slot)}/{arr.comm.size} arrived)"
                            )
        raise SkeletonExtractionError(
            "dry run wedged — structurally possible deadlock:\n  " + "\n  ".join(stuck)
        )

    dt_table, op_table, comm_table = snapshot_tables(runtime)
    return Skeleton(
        app_name=app.name,
        nranks=n,
        arena_base=mems[0].base,
        arena_size=runtime.arena_size,
        algorithms=dict(runtime.algorithms),
        datatypes=dt_table,
        reduce_ops=op_table,
        comms=comm_table,
        ranks=ops,
        results=results,
    )


def mutate_op(skeleton: Skeleton, rank: int, index: int, **changes: Any) -> Skeleton:
    """Return a copy of ``skeleton`` with one op replaced (mutant helper)."""
    ranks = [list(seq) for seq in skeleton.ranks]
    ranks[rank][index] = replace(ranks[rank][index], **changes)
    return replace_skeleton(skeleton, ranks)


def replace_skeleton(skeleton: Skeleton, ranks: list[list[SkeletonOp]]) -> Skeleton:
    return Skeleton(
        app_name=skeleton.app_name,
        nranks=skeleton.nranks,
        arena_base=skeleton.arena_base,
        arena_size=skeleton.arena_size,
        algorithms=dict(skeleton.algorithms),
        datatypes=skeleton.datatypes,
        reduce_ops=skeleton.reduce_ops,
        comms=skeleton.comms,
        ranks=ranks,
        results=list(skeleton.results),
    )
