"""Seeded skeleton defects the matching checker must catch.

Mirror of the ``repro.verify`` mutant self-test pattern: each named
mutant plants one realistic cross-rank bug into an otherwise-clean
extracted skeleton — the shapes a real SPMD bug would produce (a rank
taking a divergent branch, disagreeing about a root, posting a
different datatype) — and :func:`run_mutant` asserts the static checker
reports the expected rule.  A mutant the checker cannot see is the
failure (CI exit convention: detected ⇒ exit 0).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable

from ..apps.base import Application
from ..apps.registry import make_app
from .matching import check_skeleton
from .skeleton import Skeleton, extract_skeleton, mutate_op, replace_skeleton


def _swap_adjacent_collectives(sk: Skeleton) -> Skeleton:
    """Rank 1 issues two adjacent collectives in the opposite order."""
    seq = list(sk.ranks[1])
    for i in range(len(seq) - 1):
        a, b = seq[i], seq[i + 1]
        if a.name != b.name and a.comm_context == b.comm_context:
            seq[i] = dataclasses.replace(b, seq=a.seq)
            seq[i + 1] = dataclasses.replace(a, seq=b.seq)
            ranks = list(sk.ranks)
            ranks[1] = seq
            return replace_skeleton(sk, ranks)
    raise RuntimeError("app has no adjacent differing collectives to swap")


def _shift_root(sk: Skeleton) -> Skeleton:
    """Rank 1 believes a rooted collective is rooted one rank over."""
    for i, op in enumerate(sk.ranks[1]):
        if op.root_world is not None:
            return mutate_op(
                sk, 1, i, root_world=(op.root_world + 1) % sk.nranks
            )
    raise RuntimeError("app issues no rooted collectives")


def _widen_dtype(sk: Skeleton) -> Skeleton:
    """Rank 0 posts the same element count of a twice-as-wide datatype —
    element counts agree, byte volumes don't."""
    for i, op in enumerate(sk.ranks[0]):
        if op.dtype is not None and op.name in (
            "Bcast", "Reduce", "Allreduce", "Scan", "Exscan",
            "Scatter", "Gather", "Allgather", "Alltoall", "Reduce_scatter",
        ):
            return mutate_op(
                sk, 0, i,
                dtype="MPI_DOUBLE" if op.dtype != "MPI_DOUBLE" else "MPI_FLOAT",
                dtype_size=op.dtype_size * 2,
            )
    raise RuntimeError("app issues no fixed-count typed collectives")


def _drop_last_call(sk: Skeleton) -> Skeleton:
    """Rank 0 returns early, skipping its final collective."""
    if not sk.ranks[0]:
        raise RuntimeError("rank 0 issues no collectives")
    ranks = list(sk.ranks)
    ranks[0] = list(sk.ranks[0][:-1])
    return replace_skeleton(sk, ranks)


def _swap_reduce_op(sk: Skeleton) -> Skeleton:
    """Rank 1 reduces with a different operation than its peers."""
    for i, op in enumerate(sk.ranks[1]):
        if op.op is not None:
            return mutate_op(
                sk, 1, i, op="MPI_MAX" if op.op != "MPI_MAX" else "MPI_SUM"
            )
    raise RuntimeError("app issues no reductions")


@dataclass(frozen=True)
class SkeletonMutant:
    """One installable skeleton defect."""

    name: str
    description: str
    apply: Callable[[Skeleton], Skeleton]
    #: Matching-checker rules that must appear as errors.
    detected_by: tuple[str, ...]


ANALYZE_MUTANTS: dict[str, SkeletonMutant] = {
    m.name: m
    for m in (
        SkeletonMutant(
            "order_swap",
            "rank 1 issues two adjacent collectives in the opposite order",
            _swap_adjacent_collectives,
            detected_by=("order_mismatch",),
        ),
        SkeletonMutant(
            "wrong_root",
            "rank 1 disagrees with its peers about a collective's root",
            _shift_root,
            detected_by=("root_mismatch",),
        ),
        SkeletonMutant(
            "dtype_counts",
            "rank 0 posts the same count of a wider datatype (byte volumes differ)",
            _widen_dtype,
            detected_by=("dtype_mismatch", "count_mismatch"),
        ),
        SkeletonMutant(
            "dropped_call",
            "rank 0 skips its final collective (structural deadlock)",
            _drop_last_call,
            detected_by=("length_mismatch",),
        ),
        SkeletonMutant(
            "op_swap",
            "rank 1 reduces with a different operation than its peers",
            _swap_reduce_op,
            detected_by=("op_mismatch",),
        ),
    )
}


@dataclass(frozen=True)
class MutantCheck:
    """Outcome of one mutant self-test."""

    name: str
    detected: bool
    expected: tuple[str, ...]
    found: tuple[str, ...]
    clean_before: bool

    def describe(self) -> str:
        verdict = "DETECTED" if self.detected else "MISSED"
        return (
            f"mutant {self.name}: {verdict} "
            f"(expected {', '.join(self.expected)}; "
            f"found {', '.join(self.found) or 'nothing'})"
        )


def run_mutant(name: str, app: Application | None = None) -> MutantCheck:
    """Plant one mutant and check the static checker flags it.

    Also asserts the unmutated skeleton is clean — a checker that cries
    wolf on correct code would trivially "detect" everything.
    """
    mutant = ANALYZE_MUTANTS[name]
    if app is None:
        app = make_app("is", "T")
    sk = extract_skeleton(app)
    clean_before = check_skeleton(sk).ok
    mutated = mutant.apply(sk)
    report = check_skeleton(mutated)
    found = tuple(sorted({f.rule for f in report.errors}))
    detected = clean_before and all(rule in found for rule in mutant.detected_by)
    return MutantCheck(name, detected, mutant.detected_by, found, clean_before)
