"""Static collective-matching checker (pass 2) — MPI-Checker style.

Operates purely on an extracted :class:`~repro.analyze.skeleton.Skeleton`:
no scheduler, no fibers, no data.  Per communicator, every member's
ordered sequence of collective operations is aligned position-by-position
and checked for the MPI matching rules:

* same collective operation, in the same order, on every member
  (an order mismatch is a structurally possible deadlock);
* sequences of equal length (a member with extra trailing collectives
  blocks forever — again a deadlock shape);
* a consistent root, resolved to world ranks, on rooted collectives;
* compatible type signatures: equal byte volumes contributed by every
  member, and the same datatype;
* one reduction op per reduction, with consistent commutativity (a
  non-commutative op mixed with a commutative one changes fold order on
  some ranks but not others).

Findings are structured (:class:`Finding`) and ranked by severity so the
CLI can gate on errors while still reporting informational drift (e.g.
the same collective reached from different call sites — legal SPMD, but
worth surfacing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..simmpi import ROOTED_COLLECTIVES
from .skeleton import Skeleton, SkeletonOp

#: Finding rules, in the order the checks run.
RULES = (
    "order_mismatch",
    "length_mismatch",
    "root_mismatch",
    "dtype_mismatch",
    "count_mismatch",
    "op_mismatch",
    "commutativity_mismatch",
    "site_drift",
)

_ERROR_RULES = frozenset(RULES) - {"site_drift"}


@dataclass(frozen=True, slots=True)
class Finding:
    """One checker diagnosis, anchored at a comm-sequence position."""

    rule: str
    severity: str  # "error" | "info"
    comm_context: int
    position: int
    message: str
    ranks: tuple[int, ...] = ()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.severity}] {self.rule} @comm{self.comm_context}#{self.position}: {self.message}"


@dataclass
class MatchReport:
    """All findings of one skeleton check."""

    app_name: str
    n_ops: int
    n_comms: int
    findings: list[Finding] = field(default_factory=list)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def describe(self) -> str:
        lines = [
            f"collective-matching check: {self.app_name} "
            f"({self.n_ops} ops, {self.n_comms} comm(s))"
        ]
        if not self.findings:
            lines.append("  clean: every rank's collective sequence matches")
        for f in self.findings:
            lines.append(f"  {f}")
        return "\n".join(lines)


def _volume(op: SkeletonOp) -> int | None:
    """Bytes this member contributes to / receives from the collective.

    ``None`` means the collective has no per-member fixed volume to
    compare (vector variants are checked pairwise instead).
    """
    a = op.args
    es = op.dtype_size
    n = len(op.comm_group)
    name = op.name
    if name in ("Bcast",):
        return int(a["count"]) * es
    if name in ("Reduce", "Allreduce", "Scan", "Exscan"):
        return int(a["count"]) * es
    if name == "Reduce_scatter":
        return int(a["recvcount"]) * n * es
    if name in ("Scatter", "Gather"):
        # The wire volume both sides must agree on is the per-block size.
        key = "sendcount" if (name == "Scatter") == (op.rank == op.root_world) else "recvcount"
        return int(a[key]) * es
    if name in ("Allgather", "Alltoall"):
        return int(a["sendcount"]) * es
    return None


def _pairwise_vector_findings(
    ops: list[SkeletonOp], ctx: int, pos: int
) -> Iterator[Finding]:
    """Cross-rank count compatibility for the vector collectives."""
    name = ops[0].name
    es = {op.me: op.dtype_size for op in ops}
    if name == "Alltoallv":
        for dst in ops:
            for src in ops:
                sent = int(src.args["sendcounts"][dst.me]) * es[src.me]
                recvd = int(dst.args["recvcounts"][src.me]) * es[dst.me]
                if sent != recvd:
                    yield Finding(
                        "count_mismatch", "error", ctx, pos,
                        f"{name}: rank {src.rank} sends {sent} B to rank "
                        f"{dst.rank}, which posts {recvd} B",
                        (src.rank, dst.rank),
                    )
                    return  # one finding per position is enough
    elif name == "Alltoallw":
        for dst in ops:
            for src in ops:
                sent = int(src.args["sendcounts"][dst.me])
                recvd = int(dst.args["recvcounts"][src.me])
                if sent != recvd:
                    yield Finding(
                        "count_mismatch", "error", ctx, pos,
                        f"{name}: rank {src.rank} sends {sent} elements to "
                        f"rank {dst.rank}, which posts {recvd}",
                        (src.rank, dst.rank),
                    )
                    return
    elif name in ("Gatherv", "Scatterv"):
        root_world = ops[0].root_world
        root_op = next((op for op in ops if op.rank == root_world), None)
        if root_op is None:
            return
        counts_key = "recvcounts" if name == "Gatherv" else "sendcounts"
        peer_key = "sendcount" if name == "Gatherv" else "recvcount"
        for op in ops:
            root_side = int(root_op.args[counts_key][op.me]) * root_op.dtype_size
            peer_side = int(op.args[peer_key]) * op.dtype_size
            if root_side != peer_side:
                yield Finding(
                    "count_mismatch", "error", ctx, pos,
                    f"{name}: root posts {root_side} B for rank {op.rank}, "
                    f"which contributes {peer_side} B",
                    (root_world if root_world is not None else -1, op.rank),
                )
                return
    elif name == "Allgatherv":
        # Every member must agree on the recvcounts layout, and each
        # member's sendcount must equal its own slot.
        base = ops[0]
        for op in ops:
            if tuple(op.args["recvcounts"]) != tuple(base.args["recvcounts"]):
                yield Finding(
                    "count_mismatch", "error", ctx, pos,
                    f"{name}: rank {op.rank} disagrees with rank {base.rank} "
                    f"about recvcounts",
                    (base.rank, op.rank),
                )
                return
            own = int(op.args["recvcounts"][op.me]) * op.dtype_size
            send = int(op.args["sendcount"]) * op.dtype_size
            if own != send:
                yield Finding(
                    "count_mismatch", "error", ctx, pos,
                    f"{name}: rank {op.rank} sends {send} B but its "
                    f"recvcounts slot holds {own} B",
                    (op.rank,),
                )
                return


def _check_position(ops: list[SkeletonOp], ctx: int, pos: int) -> Iterator[Finding]:
    """All checks for one aligned position of one communicator."""
    base = ops[0]
    names = {op.name for op in ops}
    if len(names) > 1:
        by_name = ", ".join(
            f"rank {op.rank}: {op.name}@{op.site}" for op in ops
        )
        yield Finding(
            "order_mismatch", "error", ctx, pos,
            f"collective order differs across ranks ({by_name}) — "
            f"structurally possible deadlock",
            tuple(op.rank for op in ops),
        )
        return  # further comparisons are meaningless at this position
    if base.name in ROOTED_COLLECTIVES:
        roots = {op.root_world for op in ops}
        if len(roots) > 1:
            yield Finding(
                "root_mismatch", "error", ctx, pos,
                f"{base.name}: ranks disagree about the root "
                f"(world ranks {sorted(r for r in roots if r is not None)})",
                tuple(op.rank for op in ops),
            )
    dtypes = {op.dtype for op in ops if op.dtype is not None}
    if len(dtypes) > 1:
        yield Finding(
            "dtype_mismatch", "error", ctx, pos,
            f"{base.name}: mixed datatypes across ranks ({sorted(dtypes)})",
            tuple(op.rank for op in ops),
        )
    volumes = {op.rank: _volume(op) for op in ops}
    concrete = {v for v in volumes.values() if v is not None}
    if len(concrete) > 1:
        yield Finding(
            "count_mismatch", "error", ctx, pos,
            f"{base.name}: byte volumes differ across ranks "
            f"({ {r: v for r, v in sorted(volumes.items())} })",
            tuple(op.rank for op in ops),
        )
    yield from _pairwise_vector_findings(ops, ctx, pos)
    red_ops = {op.op for op in ops if op.op is not None}
    if len(red_ops) > 1:
        yield Finding(
            "op_mismatch", "error", ctx, pos,
            f"{base.name}: mixed reduction ops across ranks ({sorted(red_ops)})",
            tuple(op.rank for op in ops),
        )
    commut = {op.op_commutative for op in ops if op.op_commutative is not None}
    if len(commut) > 1:
        yield Finding(
            "commutativity_mismatch", "error", ctx, pos,
            f"{base.name}: commutative and non-commutative reduction ops "
            f"mixed in one reduction",
            tuple(op.rank for op in ops),
        )
    sites = {op.site for op in ops}
    if len(sites) > 1:
        yield Finding(
            "site_drift", "info", ctx, pos,
            f"{base.name} reached from different call sites ({sorted(sites)}) "
            f"— legal, but review rank-dependent control flow",
            tuple(op.rank for op in ops),
        )


def check_skeleton(skeleton: Skeleton) -> MatchReport:
    """Run every static matching check over one skeleton."""
    # Group each rank's ops per communicator, preserving program order.
    per_comm: dict[int, dict[int, list[SkeletonOp]]] = {}
    groups: dict[int, tuple[int, ...]] = {}
    for seq in skeleton.ranks:
        for op in seq:
            per_comm.setdefault(op.comm_context, {}).setdefault(op.me, []).append(op)
            groups[op.comm_context] = op.comm_group
    report = MatchReport(skeleton.app_name, skeleton.n_ops, len(per_comm))
    for ctx in sorted(per_comm):
        by_me = per_comm[ctx]
        group = groups[ctx]
        lengths = {me: len(seq) for me, seq in by_me.items()}
        depth = min(lengths.values()) if len(by_me) == len(group) else 0
        missing = [group[me] for me in range(len(group)) if me not in by_me]
        if missing or len(set(lengths.values())) > 1:
            detail = {group[me]: n for me, n in sorted(lengths.items())}
            for w in missing:
                detail[w] = 0
            report.findings.append(
                Finding(
                    "length_mismatch", "error", ctx, depth,
                    f"members disagree on the number of collectives "
                    f"(per world rank: {dict(sorted(detail.items()))}) — "
                    f"trailing calls can never complete",
                    tuple(sorted(detail)),
                )
            )
        depth = min(lengths.values()) if lengths else 0
        if len(by_me) != len(group):
            continue
        for pos in range(depth):
            ops = [by_me[me][pos] for me in range(len(group))]
            report.findings.extend(_check_position(ops, ctx, pos))
    report.findings.sort(key=lambda f: (f.severity != "error", f.comm_context, f.position))
    return report
