"""Determinism / simulator-safety lint.

The replay log (`repro.verify.replay`), the per-test ``SeedSequence``
scheme, and the snapshot/fork roadmap item all assume one property:
**a run is a pure function of (app, seed, algorithms)**.  This module
enforces the source-level rules that property rests on, over the
simulator-resident packages (``simmpi``, ``apps``, ``injection``, and
``analyze`` itself — anything that executes inside or feeds the fiber
scheduler):

* ``wallclock`` — no ``time.time()``/``monotonic()``/``datetime.now()``
  in fiber-reachable code; timestamps would diverge across replays.
  (Host-side layers — ``exec`` supervision deadlines, ``obs``
  telemetry — are deliberately out of scope.)
* ``global-rng`` — no module-level ``random``/``np.random`` draws; all
  randomness must flow through an explicit ``np.random.Generator``
  seeded by the campaign (``default_rng``/``SeedSequence`` are allowed).
* ``set-iteration`` — no iteration over set displays/constructors:
  hash-order iteration varies with interning and is the classic silent
  nondeterminism.
* ``blocking-io`` — no ``open()``/``input()``/socket/subprocess in app
  step functions or collective drivers; a fiber that blocks the host
  thread wedges every simulated rank and breaks the step-budget hang
  detector.
* ``missing-slots`` — ``@dataclass`` on hot-path records (the fiber
  syscall types) must declare ``slots=True``; attribute dict churn on
  the trampoline is a measured cost (see ROADMAP PR 2).

A finding can be waived in place with ``# lint: allow(<rule>)`` on the
offending line.  Runs standalone (``fastfit analyze --lint-only``) and
as a CI gate.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

#: rule id -> human description
LINT_RULES = {
    "wallclock": "wall-clock reads break replay determinism",
    "global-rng": "global RNG state is not replayable; use np.random.Generator",
    "set-iteration": "set iteration order is nondeterministic",
    "blocking-io": "blocking I/O wedges the fiber scheduler",
    "missing-slots": "hot-path dataclasses must declare slots=True",
    "parse-error": "file does not parse",
}

#: Package-relative directories the determinism rules apply to.
DEFAULT_SCOPE = ("simmpi", "apps", "injection", "analyze")

#: Package-relative files whose dataclasses must be slotted.
DEFAULT_HOT_PATH = ("simmpi/fiber.py",)

_WALLCLOCK = {
    "time": {
        "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
        "perf_counter_ns", "process_time", "process_time_ns", "clock",
    },
    "datetime": {"now", "utcnow", "today"},
    "date": {"today"},
}

_RANDOM_MODULE_FNS = {
    "random", "randint", "uniform", "choice", "choices", "shuffle",
    "sample", "seed", "randrange", "getrandbits", "gauss", "betavariate",
    "expovariate", "normalvariate", "vonmisesvariate",
}

#: np.random attributes that are replay-safe to *construct*.
_NP_RANDOM_OK = {
    "Generator", "BitGenerator", "SeedSequence", "default_rng",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
}

_IO_CALLS = {"open", "input"}
_IO_MODULES = {"socket", "subprocess", "requests", "http", "urllib"}


@dataclass(frozen=True, slots=True)
class LintFinding:
    """One determinism-lint diagnosis."""

    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` attribute chains as a string, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _Visitor(ast.NodeVisitor):
    def __init__(self, rel: str, source_lines: list[str], hot: bool) -> None:
        self.rel = rel
        self.lines = source_lines
        self.hot = hot
        self.findings: list[LintFinding] = []

    # -- helpers --------------------------------------------------------

    def _allowed(self, line: int, rule: str) -> bool:
        if 1 <= line <= len(self.lines):
            return f"lint: allow({rule})" in self.lines[line - 1]
        return False

    def _add(self, node: ast.AST, rule: str, message: str) -> None:
        line = getattr(node, "lineno", 0)
        if not self._allowed(line, rule):
            self.findings.append(LintFinding(self.rel, line, rule, message))

    # -- rules ----------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is not None:
            parts = dotted.split(".")
            if len(parts) >= 2:
                base, attr = parts[-2], parts[-1]
                if attr in _WALLCLOCK.get(base, ()):
                    self._add(node, "wallclock", f"{dotted}() in simulator scope")
                if base == "random" and attr in _RANDOM_MODULE_FNS and len(parts) == 2:
                    self._add(node, "global-rng", f"{dotted}() uses global RNG state")
                if (
                    len(parts) >= 3
                    and parts[-2] == "random"
                    and parts[-3] in ("np", "numpy")
                    and attr not in _NP_RANDOM_OK
                ):
                    self._add(node, "global-rng", f"{dotted}() uses the legacy global numpy RNG")
        if isinstance(node.func, ast.Name) and node.func.id in _IO_CALLS:
            self._add(node, "blocking-io", f"{node.func.id}() in simulator scope")
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in _IO_MODULES:
                self._add(node, "blocking-io", f"import {alias.name} in simulator scope")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        root = (node.module or "").split(".")[0]
        if root in _IO_MODULES:
            self._add(node, "blocking-io", f"from {node.module} import ... in simulator scope")
        if root == "random":
            self._add(node, "global-rng", "from random import ... uses global RNG state")
        self.generic_visit(node)

    def _check_iter(self, iter_node: ast.AST) -> None:
        if isinstance(iter_node, ast.Set) or (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Name)
            and iter_node.func.id in ("set", "frozenset")
        ):
            self._add(iter_node, "set-iteration", "iteration over a set has no stable order")

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comp(self, node: ast.ListComp | ast.SetComp | ast.DictComp | ast.GeneratorExp) -> None:
        for gen in node.generators:
            self._check_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self.hot:
            for deco in node.decorator_list:
                target = deco.func if isinstance(deco, ast.Call) else deco
                name = _dotted(target) or (
                    target.id if isinstance(target, ast.Name) else ""
                )
                if name is None or not name.endswith("dataclass"):
                    continue
                slotted = isinstance(deco, ast.Call) and any(
                    kw.arg == "slots"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in deco.keywords
                )
                if not slotted:
                    self._add(
                        node, "missing-slots",
                        f"dataclass {node.name} on a hot-path module lacks slots=True",
                    )
        self.generic_visit(node)


def lint_source(source: str, rel: str, hot: bool = False) -> list[LintFinding]:
    """Lint one module's source text."""
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=rel)
    except SyntaxError as exc:
        return [LintFinding(rel, exc.lineno or 0, "parse-error", str(exc.msg))]
    visitor = _Visitor(rel, lines, hot)
    visitor.visit(tree)
    return visitor.findings


def iter_scope_files(
    package_root: Path | None = None, scope: Iterable[str] = DEFAULT_SCOPE
) -> Iterator[Path]:
    """Every python file the determinism rules apply to."""
    root = package_root if package_root is not None else Path(__file__).resolve().parent.parent
    for sub in scope:
        base = root / sub
        if base.is_dir():
            yield from sorted(base.rglob("*.py"))
        elif base.is_file():  # pragma: no cover - config convenience
            yield base


def lint_tree(
    package_root: Path | None = None,
    scope: Iterable[str] = DEFAULT_SCOPE,
    hot_path: Iterable[str] = DEFAULT_HOT_PATH,
) -> list[LintFinding]:
    """Lint the whole simulator scope; returns findings sorted by file."""
    root = package_root if package_root is not None else Path(__file__).resolve().parent.parent
    hot = {str((root / h).resolve()) for h in hot_path}
    findings: list[LintFinding] = []
    for path in iter_scope_files(root, scope):
        rel = str(path.relative_to(root.parent)) if root.parent in path.parents else str(path)
        findings.extend(
            lint_source(path.read_text(), rel, hot=str(path.resolve()) in hot)
        )
    findings.sort(key=lambda f: (f.path, f.line))
    return findings
