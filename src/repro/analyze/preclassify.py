"""Static fault-outcome pre-classification (pass 3).

For one ``InjectionPoint × test`` the campaign draws a parameter and a
bit from a per-test ``SeedSequence`` and runs the whole simulator to
find out what the flip does.  A large slice of that fault space is
*provably determined* before execution: the flipped value, the clean
call arguments (from the skeleton), the arena layout, and the handle
tables decide the outcome on the faulty rank's first few deterministic
actions, before any genuine cross-rank interaction.

:class:`PreClassifier` replays exactly the campaign's randomness
(``SeedSequence(seed, spawn_key=(point_index, test_index))``, the
``pick_target`` draw, then the injector's bit draw — see
``repro.injection.campaign`` / ``repro.injection.injector``) and applies
a rule table derived from the collective drivers:

* ``null-fault`` — the injector provably skips (empty count vector,
  zero-extent buffer): the run is fault-free ⇒ SUCCESS.
* ``negative-count`` — a count flipped negative fails ``check_count`` /
  ``check_counts_array`` on the faulty rank's first step ⇒ MPI_ERR.
* ``root-out-of-range`` — a flipped root outside ``[0, comm.size)``
  fails ``check_root`` ⇒ MPI_ERR.
* ``unmapped-handle`` / ``corrupted-handle`` / ``alias-nonmember-comm``
  — handle flips classified by a static mirror of
  ``HandleSpace.resolve`` (⇒ SEG_FAULT / MPI_ERR / MPI_ERR).
* ``oob-eager-read`` / ``oob-block-read`` / ``oob-strided-write`` /
  ``oob-displaced-read`` / ``oob-displaced-write`` — a count or
  displacement flip that drives the driver's first buffer access out of
  the arena ⇒ SEG_FAULT (the arena bounds are static).
* ``recv-truncate`` / ``oversize-truncate`` — ``check_truncate`` raises
  iff a payload exceeds the posted receive size; with exactly one
  corrupted rank both sides of the comparison are statically known
  ⇒ MPI_ERR.
* ``ignored-param`` / ``truncate-only-param`` — the algorithm provably
  never reads the parameter on this rank (e.g. ``recvcount`` away from
  a Gather root), or only compares it against a smaller payload that is
  then written verbatim ⇒ masked SUCCESS.

Soundness contract: every rule assumes the *clean* run is the skeleton
run (deterministic apps — enforced by :mod:`repro.analyze.lint`) and
that the skeleton passed :func:`repro.analyze.matching.check_skeleton`
(cross-rank count/dtype equalities several truncate rules rely on).
:class:`PreClassifier` refuses to classify when the op is unknown, and
returns ``None`` — "not provable, run it" — everywhere a rule would
need dynamic information.  Every prediction is cross-validated against
the live simulator by :mod:`repro.analyze.crossval` and the analyze CI
job; a single mismatch there is a bug in this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..injection.bitflip import flip_int32, flip_int64
from ..injection.outcome import Outcome
from ..injection.space import InjectionPoint
from ..injection.targets import param_kind, pick_target
from ..simmpi.collectives.binomial import bcast_children, bcast_parent, vrank
from .skeleton import HandleTable, Skeleton, SkeletonOp

#: Every rule name a Prediction can carry, for reporting and tests.
PRECLASSIFY_RULES = (
    "null-fault",
    "negative-count",
    "root-out-of-range",
    "unmapped-handle",
    "corrupted-handle",
    "alias-nonmember-comm",
    "oob-eager-read",
    "oob-block-read",
    "oob-strided-write",
    "oob-displaced-read",
    "oob-displaced-write",
    "recv-truncate",
    "oversize-truncate",
    "ignored-param",
    "truncate-only-param",
)

_COUNT_PARAMS = frozenset({"count", "sendcount", "recvcount"})


class StaticPruneError(RuntimeError):
    """Static pruning was requested for an application whose skeleton the
    matching checker rejects.

    The truncate/volume rules assume cross-rank agreement on byte
    volumes; without a clean :func:`repro.analyze.check_skeleton` report
    those proofs are unsound, so the campaign refuses to prune."""


@dataclass(frozen=True, slots=True)
class Prediction:
    """One provably-determined test outcome."""

    outcome: Outcome
    rule: str
    param: str
    kind: str
    bit: int
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.outcome.value} [{self.rule}] {self.param} bit={self.bit}"


class PreClassifier:
    """Replays the campaign's per-test randomness and classifies the
    provably-determined slice of the fault space."""

    def __init__(
        self, skeleton: Skeleton, *, seed: int, param_policy: str = "buffer"
    ) -> None:
        self.skeleton = skeleton
        self.seed = seed
        self.param_policy = param_policy
        self._index = skeleton.op_index()

    # -- campaign-facing entry points -----------------------------------

    def predict(
        self, point: InjectionPoint, point_index: int, test_index: int
    ) -> Prediction | None:
        """The campaign's test ``(point_index, test_index)``, classified.

        ``None`` means "not provable — run it dynamically".
        """
        op = self._index.get(
            (point.rank, point.collective, point.site, point.invocation)
        )
        if op is None:
            return None
        rng = np.random.default_rng(
            np.random.SeedSequence(
                entropy=self.seed, spawn_key=(point_index, test_index)
            )
        )
        param = pick_target(rng, point.collective, self.param_policy)
        return self.classify(op, param, rng)

    def classify(
        self,
        op: SkeletonOp,
        param: str,
        rng: np.random.Generator | None = None,
        bit: int | None = None,
    ) -> Prediction | None:
        """Classify one ``(op, param)`` fault; draw the bit like the
        injector would when ``bit`` is not given."""
        kind = param_kind(param)
        if kind == "scalar":
            if bit is None:
                bit = int(rng.integers(0, 32))
            clean = int(op.args[param])
            return self._scalar(op, param, clean, flip_int32(clean, bit), bit)
        if kind == "handle":
            if bit is None:
                bit = int(rng.integers(0, 64))
            return self._handle(op, param, flip_int64(int(op.args[param]), bit), bit)
        if kind == "vector":
            vec = op.args[param]
            if len(vec) == 0:
                return Prediction(
                    Outcome.SUCCESS, "null-fault", param, kind, -1,
                    "empty vector: the injector skips, the run is clean",
                )
            if bit is None:
                bit = int(rng.integers(0, len(vec) * 32))
            elem = bit // 32
            clean = int(vec[elem])
            return self._vector(op, param, elem, clean, flip_int32(clean, bit % 32), bit)
        if kind == "handle_vector":
            vec = op.args[param]
            if len(vec) == 0:
                return Prediction(
                    Outcome.SUCCESS, "null-fault", param, kind, -1,
                    "empty type vector: the injector skips, the run is clean",
                )
            if bit is None:
                bit = int(rng.integers(0, len(vec) * 64))
            flipped = flip_int64(int(vec[bit // 64]), bit % 64)
            return self._resolve_static(
                self.skeleton.datatypes, op, param, "handle_vector", flipped, bit,
                allow_alias=True,
            )
        # buffer: a data flip never changes control flow by itself —
        # only the zero-extent case (injector skips) is provable.
        extent = self._buffer_extent(op, param)
        if extent <= 0:
            return Prediction(
                Outcome.SUCCESS, "null-fault", param, kind, -1,
                "zero-extent buffer: the injector skips, the run is clean",
            )
        return None

    # -- rule groups ----------------------------------------------------

    def _oob(self, addr: int, nbytes: int) -> bool:
        """Mirror of ``Memory._check``: would this access segfault?"""
        off = addr - self.skeleton.arena_base
        return off < 0 or off + nbytes > self.skeleton.arena_size

    def _p(
        self, outcome: Outcome, rule: str, param: str, kind: str, bit: int, detail: str
    ) -> Prediction:
        return Prediction(outcome, rule, param, kind, bit, detail)

    def _scalar(
        self, op: SkeletonOp, param: str, clean: int, flipped: int, bit: int
    ) -> Prediction | None:
        name = op.name
        n = len(op.comm_group)
        es = op.dtype_size or 1
        a = op.args
        if param == "root":
            if not 0 <= flipped < n:
                return self._p(
                    Outcome.MPI_ERR, "root-out-of-range", param, "scalar", bit,
                    f"root {clean} -> {flipped} outside [0, {n})",
                )
            return None  # a live wrong root mis-coordinates: dynamic
        if param not in _COUNT_PARAMS:  # pragma: no cover - exhaustive
            return None
        if flipped < 0:
            return self._p(
                Outcome.MPI_ERR, "negative-count", param, "scalar", bit,
                f"{param} {clean} -> {flipped} fails check_count",
            )
        at_root = op.root_world is not None and op.rank == op.root_world

        if name in ("Reduce", "Allreduce", "Scan", "Exscan") and param == "count":
            if self._oob(int(a["sendbuf"]), flipped * es):
                return self._p(
                    Outcome.SEG_FAULT, "oob-eager-read", param, "scalar", bit,
                    f"first action reads sendbuf[{flipped}×{es}B] out of the arena",
                )
            if name in ("Scan", "Exscan"):
                # Linear chain: rank 0 only sends, others recv the clean
                # prefix first (scan.py).
                if op.me > 0 and flipped < clean:
                    return self._p(
                        Outcome.MPI_ERR, "recv-truncate", param, "scalar", bit,
                        f"clean {clean}-element prefix exceeds posted {flipped}",
                    )
                if op.me == 0 and n > 1 and flipped > clean:
                    return self._p(
                        Outcome.MPI_ERR, "oversize-truncate", param, "scalar", bit,
                        f"rank {op.comm_group[1]} posts {clean} elements, got {flipped}",
                    )
            return None
        if name == "Bcast" and param == "count":
            return self._bcast_count(op, clean, flipped, bit)
        if name == "Reduce_scatter" and param == "recvcount":
            # reduce_scatter_block's first reduce eagerly reads block 0.
            if self._oob(int(a["sendbuf"]), flipped * es):
                return self._p(
                    Outcome.SEG_FAULT, "oob-eager-read", param, "scalar", bit,
                    f"block-0 reduce reads sendbuf[{flipped}×{es}B] out of the arena",
                )
            return None
        if name in ("Gather", "Gatherv", "Allgatherv") and param == "sendcount":
            # Every rank reads its full send buffer (gather.py,
            # vvariants.py); the receiving side posts the clean size.
            if self._oob(int(a["sendbuf"]), flipped * es):
                return self._p(
                    Outcome.SEG_FAULT, "oob-eager-read", param, "scalar", bit,
                    f"reads sendbuf[{flipped}×{es}B] out of the arena",
                )
            if flipped > clean:
                return self._p(
                    Outcome.MPI_ERR, "oversize-truncate", param, "scalar", bit,
                    f"receiver posts {clean} elements, contribution is {flipped}",
                )
            return None
        if name == "Gather" and param == "recvcount":
            if not at_root:
                return self._p(
                    Outcome.SUCCESS, "ignored-param", param, "scalar", bit,
                    "recvcount is significant only at the Gather root",
                )
            if flipped < clean:
                return self._p(
                    Outcome.MPI_ERR, "recv-truncate", param, "scalar", bit,
                    f"block 0 carries {clean} elements, root posts {flipped}",
                )
            recvaddr = int(a["recvbuf"])
            for r in range(n):
                if self._oob(recvaddr + r * flipped * es, clean * es):
                    return self._p(
                        Outcome.SEG_FAULT, "oob-strided-write", param, "scalar", bit,
                        f"block {r} write at stride {flipped}×{es}B leaves the arena",
                    )
            return None
        if name == "Scatter" and param == "recvcount":
            # recvcount is only ever compared against the (clean) block
            # and the payload is written verbatim (scatter.py).
            if flipped < clean:
                return self._p(
                    Outcome.MPI_ERR, "recv-truncate", param, "scalar", bit,
                    f"clean {clean}-element block exceeds posted {flipped}",
                )
            return self._p(
                Outcome.SUCCESS, "truncate-only-param", param, "scalar", bit,
                "oversized recvcount only relaxes the truncate bound",
            )
        if name == "Scatterv" and param == "recvcount":
            if flipped < clean:
                return self._p(
                    Outcome.MPI_ERR, "recv-truncate", param, "scalar", bit,
                    f"clean {clean}-element block exceeds posted {flipped}",
                )
            return self._p(
                Outcome.SUCCESS, "truncate-only-param", param, "scalar", bit,
                "oversized recvcount only relaxes the truncate bound",
            )
        if name == "Scatter" and param == "sendcount":
            if not at_root:
                return self._p(
                    Outcome.SUCCESS, "ignored-param", param, "scalar", bit,
                    "sendcount is significant only at the Scatter root",
                )
            return self._scatter_sendcount(op, clean, flipped, bit)
        return None

    def _bcast_count(
        self, op: SkeletonOp, clean: int, flipped: int, bit: int
    ) -> Prediction | None:
        """Bcast trees are computed per rank from static parameters, so
        the faulty rank's parent/children set is static too."""
        n = len(op.comm_group)
        es = op.dtype_size or 1
        root = int(op.args["root"]) % n if n else 0
        v = vrank(op.me, root, n)
        if self.skeleton.algorithms.get("bcast", "binomial") == "chain":
            has_parent = v > 0
            has_children = v + 1 < n
        else:
            parent, _ = bcast_parent(v, n)
            has_parent = parent is not None
            has_children = bool(bcast_children(v, n))
        addr = int(op.args["buffer"])
        if has_parent and flipped < clean:
            return self._p(
                Outcome.MPI_ERR, "recv-truncate", "count", "scalar", bit,
                f"clean {clean}-element payload exceeds posted {flipped}",
            )
        if not has_children:
            # Leaf (or singleton root): after the guarded recv the count
            # is never used again — recv path identical to the clean run.
            return self._p(
                Outcome.SUCCESS,
                "truncate-only-param" if has_parent else "ignored-param",
                "count", "scalar", bit,
                "no children in the broadcast tree: count is never read",
            )
        if self._oob(addr, flipped * es):
            return self._p(
                Outcome.SEG_FAULT, "oob-eager-read", "count", "scalar", bit,
                f"forwarding read of {flipped}×{es}B leaves the arena",
            )
        if flipped > clean:
            return self._p(
                Outcome.MPI_ERR, "oversize-truncate", "count", "scalar", bit,
                f"children post {clean} elements, forwarded payload is {flipped}",
            )
        return None  # root shrinking the payload: propagates, dynamic

    def _scatter_sendcount(
        self, op: SkeletonOp, clean: int, flipped: int, bit: int
    ) -> Prediction | None:
        """Scatter root: ``n`` strided block reads race the ``r == me``
        self-truncate; both sides are static (scatter.py)."""
        n = len(op.comm_group)
        es = op.dtype_size or 1
        blockbytes = flipped * es
        sendaddr = int(op.args["sendbuf"])
        r_fail: int | None = None
        if blockbytes > 0:
            for r in range(n):
                if self._oob(sendaddr + r * blockbytes, blockbytes):
                    r_fail = r
                    break
        truncates = blockbytes > int(op.args["recvcount"]) * es
        if r_fail is not None and (not truncates or r_fail <= op.me):
            return self._p(
                Outcome.SEG_FAULT, "oob-block-read", "sendcount", "scalar", bit,
                f"block {r_fail} read at stride {blockbytes}B leaves the arena",
            )
        if truncates and (r_fail is None or op.me < r_fail):
            return self._p(
                Outcome.MPI_ERR, "recv-truncate", "sendcount", "scalar", bit,
                f"own {flipped}-element block exceeds posted recvcount",
            )
        return None

    def _vector(
        self,
        op: SkeletonOp,
        param: str,
        elem: int,
        clean: int,
        flipped: int,
        bit: int,
    ) -> Prediction | None:
        name = op.name
        es = op.dtype_size or 1
        a = op.args
        at_root = op.root_world is not None and op.rank == op.root_world
        if param in ("sendcounts", "recvcounts") and flipped < 0:
            # check_counts_array runs on every rank for every collective
            # that takes count vectors (context.py).
            return self._p(
                Outcome.MPI_ERR, "negative-count", param, "vector", bit,
                f"{param}[{elem}] {clean} -> {flipped} fails check_counts_array",
            )
        if name == "Gatherv":
            if param == "recvcounts":
                if not at_root:
                    return self._p(
                        Outcome.SUCCESS, "ignored-param", param, "vector", bit,
                        "recvcounts are significant only at the Gatherv root",
                    )
                if flipped < clean:
                    return self._p(
                        Outcome.MPI_ERR, "recv-truncate", param, "vector", bit,
                        f"rank {elem} contributes {clean} elements, root posts {flipped}",
                    )
                return self._p(
                    Outcome.SUCCESS, "truncate-only-param", param, "vector", bit,
                    "payload is written verbatim; the count only bounds truncate",
                )
            if param == "displs":
                if not at_root:
                    return self._p(
                        Outcome.SUCCESS, "ignored-param", param, "vector", bit,
                        "displs are significant only at the Gatherv root",
                    )
                nb = int(a["recvcounts"][elem]) * es
                if self._oob(int(a["recvbuf"]) + flipped * es, nb):
                    return self._p(
                        Outcome.SEG_FAULT, "oob-displaced-write", param, "vector", bit,
                        f"block {elem} write at displacement {flipped} leaves the arena",
                    )
                return None
        if name == "Scatterv":
            if param == "sendcounts":
                if not at_root:
                    return self._p(
                        Outcome.SUCCESS, "ignored-param", param, "vector", bit,
                        "sendcounts are significant only at the Scatterv root",
                    )
                addr = int(a["sendbuf"]) + int(a["displs"][elem]) * es
                if self._oob(addr, flipped * es):
                    return self._p(
                        Outcome.SEG_FAULT, "oob-displaced-read", param, "vector", bit,
                        f"block {elem} read of {flipped}×{es}B leaves the arena",
                    )
                if flipped > clean:
                    return self._p(
                        Outcome.MPI_ERR, "oversize-truncate", param, "vector", bit,
                        f"rank {elem} posts {clean} elements, block is {flipped}",
                    )
                return None
            if param == "displs":
                if not at_root:
                    return self._p(
                        Outcome.SUCCESS, "ignored-param", param, "vector", bit,
                        "displs are significant only at the Scatterv root",
                    )
                nb = int(a["sendcounts"][elem]) * es
                if self._oob(int(a["sendbuf"]) + flipped * es, nb):
                    return self._p(
                        Outcome.SEG_FAULT, "oob-displaced-read", param, "vector", bit,
                        f"block {elem} read at displacement {flipped} leaves the arena",
                    )
                return None
        if name == "Allgatherv":
            # Only the own-slot prologue (read, truncate, write before
            # any ring step) is provably ordered.
            if param == "recvcounts" and elem == op.me and flipped < clean:
                return self._p(
                    Outcome.MPI_ERR, "recv-truncate", param, "vector", bit,
                    f"own {clean}-element contribution exceeds posted {flipped}",
                )
            if param == "displs" and elem == op.me:
                nb = int(a["recvcounts"][op.me]) * es
                if self._oob(int(a["recvbuf"]) + flipped * es, nb):
                    return self._p(
                        Outcome.SEG_FAULT, "oob-displaced-write", param, "vector", bit,
                        f"own block write at displacement {flipped} leaves the arena",
                    )
            return None
        return None

    def _handle(
        self, op: SkeletonOp, param: str, flipped: int, bit: int
    ) -> Prediction | None:
        if param == "comm":
            table = self.skeleton.comms
        elif param == "op":
            table = self.skeleton.reduce_ops
        else:
            table = self.skeleton.datatypes
        return self._resolve_static(
            table, op, param, "handle", flipped, bit, allow_alias=(param != "comm")
        )

    def _resolve_static(
        self,
        table: HandleTable,
        op: SkeletonOp,
        param: str,
        kind: str,
        flipped: int,
        bit: int,
        allow_alias: bool,
    ) -> Prediction | None:
        status, live = table.resolve_static(flipped)
        if status == "segfault":
            return self._p(
                Outcome.SEG_FAULT, "unmapped-handle", param, kind, bit,
                f"{flipped:#x} dereferences outside the {table.kind} space",
            )
        if status == "corrupt":
            return self._p(
                Outcome.MPI_ERR, "corrupted-handle", param, kind, bit,
                f"{flipped:#x} lands inside live object {live:#x}",
            )
        if not allow_alias:  # comm: membership is static too
            group = table.groups.get(live, ())
            if op.rank not in group:
                return self._p(
                    Outcome.MPI_ERR, "alias-nonmember-comm", param, kind, bit,
                    f"aliased {table.descr.get(live, hex(live))} excludes rank {op.rank}",
                )
        return None  # live alias: semantics change, outcome is dynamic

    # -- static mirror of injector.buffer_extent_bytes ------------------

    def _buffer_extent(self, op: SkeletonOp, param: str) -> int:
        a = op.args
        name = op.name
        n = len(op.comm_group)
        es = op.dtype_size or 1

        def vspan(counts_key: str, displs_key: str) -> int:
            counts = np.asarray(a[counts_key], dtype=np.int64)
            displs = np.asarray(a[displs_key], dtype=np.int64)
            if counts.size == 0:
                return 0
            return int((displs + counts).max()) * es

        if name in ("Bcast", "Reduce", "Allreduce", "Scan", "Exscan"):
            return int(a["count"]) * es
        if name == "Alltoallv":
            if param == "sendbuf":
                return vspan("sendcounts", "sdispls")
            return vspan("recvcounts", "rdispls")
        if name == "Alltoallw":
            side = "send" if param == "sendbuf" else "recv"
            counts = np.asarray(a[f"{side}counts"], dtype=np.int64)
            displs = np.asarray(
                a["sdispls" if side == "send" else "rdispls"], dtype=np.int64
            )
            sizes = np.asarray(
                [self.skeleton.datatypes.sizes.get(int(h), 0) for h in a[f"{side}types"]],
                dtype=np.int64,
            )
            if counts.size == 0:
                return 0
            return int((displs + counts * sizes).max())
        if name == "Reduce_scatter":
            per = int(a["recvcount"]) * es
            return per * n if param == "sendbuf" else per
        if name == "Gatherv":
            if param == "sendbuf":
                return int(a["sendcount"]) * es
            return vspan("recvcounts", "displs")
        if name == "Scatterv":
            if param == "sendbuf":
                return vspan("sendcounts", "displs")
            return int(a["recvcount"]) * es
        if name == "Allgatherv":
            if param == "sendbuf":
                return int(a["sendcount"]) * es
            return vspan("recvcounts", "displs")
        per_rank = int(a["sendcount" if param == "sendbuf" else "recvcount"])
        if name == "Scatter":
            return per_rank * (n if param == "sendbuf" else 1) * es
        if name in ("Gather", "Allgather", "Alltoall"):
            return per_rank * (1 if param == "sendbuf" else n) * es
        return 0  # Barrier has no buffer parameters


def predict_tests(
    pre: PreClassifier,
    points: Sequence[InjectionPoint] | Iterable[InjectionPoint],
    tests_per_point: int,
) -> Iterator[tuple[int, int, InjectionPoint, Prediction | None]]:
    """Classify every test of a campaign, in campaign order."""
    for i, point in enumerate(points):
        for t in range(tests_per_point):
            yield i, t, point, pre.predict(point, i, t)
