"""Static-vs-dynamic cross-validation of the pre-classifier.

Every :class:`~repro.analyze.preclassify.Prediction` claims a test's
outcome is provable without running it.  This module is the referee: it
replays the exact campaign randomness for a sampled subset of predicted
tests, runs them for real through :class:`repro.injection.runner.
InjectionRunner` (the same harness the campaign uses), and reports any
disagreement.  The analyze CI job fails on a single mismatch — an
unsound rule in :mod:`repro.analyze.preclassify` is a correctness bug,
not a tolerable approximation.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from ..apps.base import Application
from ..injection.outcome import Outcome
from ..injection.runner import InjectionRunner
from ..injection.space import FaultSpec, InjectionPoint, enumerate_points
from ..injection.targets import pick_target
from ..profiling.profiler import profile_application
from .matching import MatchReport, check_skeleton
from .preclassify import PreClassifier, predict_tests
from .skeleton import Skeleton, extract_skeleton


@dataclass(frozen=True, slots=True)
class Mismatch:
    """A prediction the live simulator contradicted."""

    point: InjectionPoint
    test_index: int
    param: str
    rule: str
    predicted: Outcome
    actual: Outcome
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.point.collective}@{self.point.site} rank {self.point.rank} "
            f"inv {self.point.invocation} test {self.test_index} ({self.param}): "
            f"predicted {self.predicted.value} [{self.rule}], got {self.actual.value}"
        )


@dataclass
class CrossValidation:
    """Result of one cross-validation sweep over an app's fault space."""

    app_name: str
    tests_per_point: int
    param_policy: str
    seed: int
    sample: float
    n_points: int = 0
    n_tests: int = 0
    n_predicted: int = 0
    n_checked: int = 0
    rules: Counter = field(default_factory=Counter)
    mismatches: list[Mismatch] = field(default_factory=list)
    match_report: MatchReport | None = None

    @property
    def coverage(self) -> float:
        """Fraction of the fault space resolved without execution."""
        return self.n_predicted / self.n_tests if self.n_tests else 0.0

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def describe(self) -> str:
        lines = [
            f"cross-validation: {self.app_name} "
            f"({self.n_points} points × {self.tests_per_point} tests, "
            f"policy={self.param_policy!r}, seed={self.seed})",
            f"  statically resolved: {self.n_predicted}/{self.n_tests} "
            f"tests ({self.coverage:.1%})",
            f"  dynamically checked: {self.n_checked} "
            f"(sample={self.sample:g})",
        ]
        for rule, n in self.rules.most_common():
            lines.append(f"    {rule}: {n}")
        if self.mismatches:
            lines.append(f"  MISMATCHES: {len(self.mismatches)}")
            lines.extend(f"    {m}" for m in self.mismatches)
        else:
            lines.append("  mismatches: 0")
        return "\n".join(lines)


def cross_validate(
    app: Application,
    *,
    seed: int = 0,
    tests_per_point: int = 25,
    param_policy: str = "all",
    sample: float = 1.0,
    algorithms: dict[str, str] | None = None,
    skeleton: Skeleton | None = None,
) -> CrossValidation:
    """Classify the app's whole fault space and verify a sampled subset.

    ``sample`` is the fraction of *predicted* tests to re-run
    dynamically (1.0 = every one); sampling is a deterministic stride,
    so two runs with the same arguments check the same tests.
    """
    if not 0.0 < sample <= 1.0:
        raise ValueError(f"sample must be in (0, 1], got {sample}")
    if skeleton is None:
        skeleton = extract_skeleton(app, algorithms=algorithms)
    report = check_skeleton(skeleton)
    cv = CrossValidation(
        app.name, tests_per_point, param_policy, seed, sample,
        match_report=report,
    )
    if not report.ok:
        # The pre-classifier's truncate rules assume cross-rank count
        # equalities that only hold for a checker-clean skeleton.
        raise ValueError(
            f"skeleton of {app.name!r} fails the matching checker; "
            f"refusing to pre-classify:\n{report.describe()}"
        )
    profile = profile_application(app, algorithms=algorithms)
    points = enumerate_points(profile)
    cv.n_points = len(points)
    runner = InjectionRunner(app, profile, algorithms=algorithms)
    pre = PreClassifier(skeleton, seed=seed, param_policy=param_policy)

    stride = max(1, round(1.0 / sample))
    for i, t, point, prediction in predict_tests(pre, points, tests_per_point):
        cv.n_tests += 1
        if prediction is None:
            continue
        cv.n_predicted += 1
        cv.rules[prediction.rule] += 1
        if (cv.n_predicted - 1) % stride:
            continue
        # Rebuild the campaign's rng stream from scratch so the dynamic
        # run consumes draws exactly like Campaign.run_point does.
        rng = _campaign_rng(seed, i, t)
        param = pick_target(rng, point.collective, param_policy)
        assert param == prediction.param, "draw replay diverged"
        result = runner.run_one(FaultSpec(point, param, None), rng)
        cv.n_checked += 1
        if result.outcome is not prediction.outcome:
            cv.mismatches.append(
                Mismatch(
                    point, t, param, prediction.rule,
                    prediction.outcome, result.outcome, result.detail,
                )
            )
    return cv


def _campaign_rng(seed: int, point_index: int, test_index: int) -> np.random.Generator:
    """Exactly ``Campaign._rng_for``: the per-test replayable stream."""
    return np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=(point_index, test_index))
    )
