"""Classification metrics for the sensitivity-prediction evaluation."""

from __future__ import annotations

import numpy as np


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correct predictions."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if len(y_true) == 0:
        return 0.0
    return float((y_true == y_pred).mean())


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray, n_classes: int) -> np.ndarray:
    """``cm[i, j]`` counts true class ``i`` predicted as ``j``."""
    cm = np.zeros((n_classes, n_classes), dtype=np.int64)
    for t, p in zip(np.asarray(y_true), np.asarray(y_pred)):
        if 0 <= t < n_classes and 0 <= p < n_classes:
            cm[int(t), int(p)] += 1
    return cm


def per_class_accuracy(
    y_true: np.ndarray, y_pred: np.ndarray, n_classes: int
) -> np.ndarray:
    """Recall per class — the quantity the paper's Figs. 12/13 report
    (prediction accuracy *for* each error type / rate level).

    Classes absent from ``y_true`` report NaN.
    """
    cm = confusion_matrix(y_true, y_pred, n_classes)
    totals = cm.sum(axis=1)
    with np.errstate(invalid="ignore", divide="ignore"):
        out = np.where(totals > 0, np.diag(cm) / totals, np.nan)
    return out
