"""The six application features of the prediction model (paper § III-C).

========== =====================================================
Feature     Meaning
========== =====================================================
Type        Collective type + root/non-root role of the rank
Phase       Execution phase at the invocation
ErrHal      Whether the call sits in error-handling code
nInv        Invocation count of the call site
StackDep    Average call-stack depth of the site
nDiffStack  Number of distinct call stacks at the site
========== =====================================================

Error-handling code is identified by the ``check_`` function-name
convention (our stand-in for the paper's manual classification of, e.g.,
LAMMPS' error-checking allreduces).
"""

from __future__ import annotations

import numpy as np

from ..injection.space import InjectionPoint
from ..profiling.phases import encode_phase
from ..profiling.profiler import ApplicationProfile, SiteSummary
from ..simmpi import COLLECTIVE_TYPE_IDS

FEATURE_NAMES: tuple[str, ...] = (
    "Type",
    "Phase",
    "ErrHal",
    "nInv",
    "StackDep",
    "nDiffStack",
)

#: Function-name prefix marking error-handling code.
ERRHAL_PREFIX = "check_"


def stack_is_errhal(stack: tuple[str, ...]) -> bool:
    """True when any active function is error-handling code."""
    return any(frame.split("@")[0].startswith(ERRHAL_PREFIX) for frame in stack)


def invocation_stack(summary: SiteSummary, invocation: int) -> tuple[str, ...]:
    """The call stack of one invocation of a site."""
    for stack, invs in summary.stack_groups.items():
        if invocation in invs:
            return stack
    raise KeyError(f"invocation {invocation} not profiled at {summary.site_key}")


def encode_type(profile: ApplicationProfile, point: InjectionPoint) -> int:
    """Collective type id, doubled, plus 1 when the rank is the root —
    the paper's "root versus non-root" refinement of the Type feature."""
    summary = profile.summary(point.rank, point.site_key)
    is_root = int(summary.root_world == point.rank)
    return COLLECTIVE_TYPE_IDS[point.collective] * 2 + is_root


def point_features(profile: ApplicationProfile, point: InjectionPoint) -> np.ndarray:
    """Feature vector of one injection point, in FEATURE_NAMES order."""
    summary = profile.summary(point.rank, point.site_key)
    stack = invocation_stack(summary, point.invocation)
    phase = summary.phases.get(point.invocation, "compute")
    return np.array(
        [
            encode_type(profile, point),
            encode_phase(phase),
            int(stack_is_errhal(stack)),
            summary.n_invocations,
            summary.avg_stack_depth,
            summary.n_diff_stacks,
        ],
        dtype=np.float64,
    )


def features_matrix(
    profile: ApplicationProfile, points: list[InjectionPoint]
) -> np.ndarray:
    """Stacked feature vectors for many points."""
    if not points:
        return np.zeros((0, len(FEATURE_NAMES)))
    return np.vstack([point_features(profile, p) for p in points])
