"""CART decision-tree classifier (from scratch, numpy only).

scikit-learn is not available in this environment, so the paper's
random-forest learner is rebuilt from first principles: binary splits on
numeric features chosen by Gini-impurity gain.  Trees expose their
structure for rendering (the paper's Fig. 4 shows one as a worked
example).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class TreeNode:
    """One node of a fitted tree.

    Leaves have ``feature == -1`` and carry class counts; internal nodes
    route ``x[feature] <= threshold`` left, else right.
    """

    feature: int = -1
    threshold: float = 0.0
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None
    counts: np.ndarray = field(default_factory=lambda: np.zeros(0))
    impurity: float = 0.0
    n_samples: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0

    @property
    def prediction(self) -> int:
        return int(np.argmax(self.counts))


def gini(counts: np.ndarray) -> float:
    """Gini impurity of a class-count vector."""
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - (p * p).sum())


class DecisionTreeClassifier:
    """A minimal CART classifier.

    Parameters
    ----------
    max_depth:
        Depth limit (root is depth 0).
    min_samples_split / min_samples_leaf:
        Pre-pruning limits.
    max_features:
        Features examined per split (``None`` = all) — supply together
        with ``rng`` to build randomised forest members.
    """

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng
        self.root: TreeNode | None = None
        self.n_classes = 0
        self.n_features = 0
        self.feature_importances_: np.ndarray | None = None

    # -- fitting --------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if X.ndim != 2 or len(X) != len(y):
            raise ValueError("X must be (n, d) and aligned with y")
        if len(y) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.n_classes = int(y.max()) + 1 if len(y) else 0
        self.n_features = X.shape[1]
        self._importance = np.zeros(self.n_features)
        self.root = self._build(X, y, depth=0)
        total = self._importance.sum()
        self.feature_importances_ = (
            self._importance / total if total > 0 else np.zeros(self.n_features)
        )
        return self

    def _class_counts(self, y: np.ndarray) -> np.ndarray:
        return np.bincount(y, minlength=self.n_classes).astype(np.float64)

    def _candidate_features(self) -> np.ndarray:
        if self.max_features is None or self.max_features >= self.n_features:
            return np.arange(self.n_features)
        rng = self.rng if self.rng is not None else np.random.default_rng(0)
        return rng.choice(self.n_features, size=self.max_features, replace=False)

    def _best_split(self, X: np.ndarray, y: np.ndarray) -> tuple[int, float, float] | None:
        """Best (feature, threshold, gain); ``None`` when nothing splits."""
        n = len(y)
        parent_counts = self._class_counts(y)
        parent_gini = gini(parent_counts)
        best: tuple[int, float, float] | None = None
        # Zero-gain splits are allowed on impure nodes (depth-capped):
        # XOR-like interactions have no first-split gain, yet the
        # children become separable.
        best_gain = -1e-12

        for f in self._candidate_features():
            order = np.argsort(X[:, f], kind="stable")
            xs = X[order, f]
            ys = y[order]
            # Class counts left of each split position, via prefix sums.
            onehot = np.zeros((n, self.n_classes))
            onehot[np.arange(n), ys] = 1.0
            prefix = np.cumsum(onehot, axis=0)
            # Valid split positions: value changes between i-1 and i.
            for i in range(self.min_samples_leaf, n - self.min_samples_leaf + 1):
                if i < n and xs[i] == xs[i - 1]:
                    continue
                if i == n:
                    continue
                left_counts = prefix[i - 1]
                right_counts = parent_counts - left_counts
                gain = parent_gini - (
                    i / n * gini(left_counts) + (n - i) / n * gini(right_counts)
                )
                if gain > best_gain:
                    best_gain = gain
                    threshold = 0.5 * (xs[i - 1] + xs[i])
                    best = (int(f), float(threshold), float(gain))
        return best

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> TreeNode:
        counts = self._class_counts(y)
        node = TreeNode(counts=counts, impurity=gini(counts), n_samples=len(y))
        if (
            depth >= self.max_depth
            or len(y) < self.min_samples_split
            or node.impurity == 0.0
        ):
            return node
        split = self._best_split(X, y)
        if split is None:
            return node
        f, thr, gain = split
        mask = X[:, f] <= thr
        self._importance[f] += max(gain, 0.0) * len(y)
        node.feature = f
        node.threshold = thr
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    # -- inference --------------------------------------------------------

    def _leaf_for(self, x: np.ndarray) -> TreeNode:
        node = self.root
        if node is None:
            raise RuntimeError("tree is not fitted")
        while not node.is_leaf:
            node = node.left if x[node.feature] <= node.threshold else node.right
        return node

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        return np.array([self._leaf_for(x).prediction for x in X], dtype=np.int64)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        out = np.zeros((len(X), self.n_classes))
        for i, x in enumerate(X):
            counts = self._leaf_for(x).counts
            total = counts.sum()
            # Leaf counts keep their fit-time width; n_classes may have
            # been widened afterwards (a forest aligning its members to
            # the full label set), so write into the prefix.
            out[i, : len(counts)] = counts / total if total else counts
        return out

    # -- introspection ------------------------------------------------------

    def render(self, feature_names: list[str], class_names: list[str]) -> str:
        """ASCII rendering of the tree (the paper's Fig. 4 style)."""
        lines: list[str] = []

        def walk(node: TreeNode, indent: str) -> None:
            if node.is_leaf:
                lines.append(f"{indent}-> {class_names[node.prediction]} (n={node.n_samples})")
                return
            lines.append(
                f"{indent}[{feature_names[node.feature]} <= {node.threshold:.3g}]"
            )
            walk(node.left, indent + "  ")
            lines.append(f"{indent}[{feature_names[node.feature]} > {node.threshold:.3g}]")
            walk(node.right, indent + "  ")

        if self.root is not None:
            walk(self.root, "")
        return "\n".join(lines)
