"""``repro.ml`` — the machine-learning substrate (no sklearn offline,
so CART trees and random forests are built from scratch on numpy)."""

from .correlation import TABLE4_FEATURES, correlation_table, eq1_correlation, table4_features
from .dataset import (
    Dataset,
    build_level_dataset,
    build_outcome_dataset,
    level_labels,
    merge_datasets,
    outcome_labels,
)
from .decision_tree import DecisionTreeClassifier, TreeNode, gini
from .features import (
    ERRHAL_PREFIX,
    FEATURE_NAMES,
    encode_type,
    features_matrix,
    invocation_stack,
    point_features,
    stack_is_errhal,
)
from .metrics import accuracy, confusion_matrix, per_class_accuracy
from .model_selection import EvaluationResult, evaluate_model, train_test_split
from .random_forest import RandomForestClassifier

__all__ = [
    "Dataset",
    "DecisionTreeClassifier",
    "ERRHAL_PREFIX",
    "EvaluationResult",
    "FEATURE_NAMES",
    "RandomForestClassifier",
    "TABLE4_FEATURES",
    "TreeNode",
    "accuracy",
    "build_level_dataset",
    "build_outcome_dataset",
    "confusion_matrix",
    "correlation_table",
    "encode_type",
    "eq1_correlation",
    "evaluate_model",
    "features_matrix",
    "gini",
    "invocation_stack",
    "level_labels",
    "merge_datasets",
    "outcome_labels",
    "per_class_accuracy",
    "point_features",
    "stack_is_errhal",
    "table4_features",
    "train_test_split",
]
