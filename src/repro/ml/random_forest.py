"""Random-forest classifier: bagged CART trees with majority vote.

The learner FastFIT uses to predict application sensitivity
(paper § III-C).  "FastFIT is not tied to the random forest algorithm"
— and neither is this module's caller: anything with ``fit``/``predict``
works in its place.
"""

from __future__ import annotations

import numpy as np

from .decision_tree import DecisionTreeClassifier


class RandomForestClassifier:
    """Bootstrap-aggregated decision trees.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_features:
        Features per split; ``None`` means ``ceil(sqrt(d))``.
    """

    def __init__(
        self,
        n_estimators: int = 32,
        max_depth: int = 8,
        min_samples_leaf: int = 1,
        max_features: int | None = None,
        seed: int = 0,
    ):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.trees: list[DecisionTreeClassifier] = []
        self.n_classes = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        n, d = X.shape
        self.n_classes = int(y.max()) + 1 if len(y) else 0
        max_features = (
            self.max_features
            if self.max_features is not None
            else max(1, int(np.ceil(np.sqrt(d))))
        )
        root_rng = np.random.default_rng(self.seed)
        self.trees = []
        for _ in range(self.n_estimators):
            rng = np.random.default_rng(root_rng.integers(0, 2**63))
            idx = rng.integers(0, n, size=n)  # bootstrap sample
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                rng=rng,
            )
            tree.fit(X[idx], y[idx])
            tree.n_classes = max(tree.n_classes, self.n_classes)
            self.trees.append(tree)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Mean of the member trees' leaf distributions."""
        if not self.trees:
            raise RuntimeError("forest is not fitted")
        X = np.asarray(X, dtype=np.float64)
        acc = np.zeros((len(X), self.n_classes))
        for tree in self.trees:
            proba = tree.predict_proba(X)
            acc[:, : proba.shape[1]] += proba
        return acc / len(self.trees)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Majority decision over the trees (paper: "the decision of a
        random forest is a majority decision")."""
        if not self.trees:
            raise RuntimeError("forest is not fitted")
        X = np.asarray(X, dtype=np.float64)
        votes = np.zeros((len(X), self.n_classes), dtype=np.int64)
        for tree in self.trees:
            pred = tree.predict(X)
            votes[np.arange(len(X)), pred] += 1
        return np.argmax(votes, axis=1)

    @property
    def feature_importances_(self) -> np.ndarray:
        imps = np.array([t.feature_importances_ for t in self.trees])
        return imps.mean(axis=0)
