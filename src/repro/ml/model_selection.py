"""Train/test protocols for the prediction-accuracy evaluation.

The paper's § V-D protocol: randomly divide the labelled set into a
training and a testing class, repeat the random division five times, and
average the per-class accuracies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .metrics import accuracy, per_class_accuracy


def train_test_split(
    rng: np.random.Generator, n: int, test_fraction: float = 0.5
) -> tuple[np.ndarray, np.ndarray]:
    """Index split; the test side gets ``round(n * test_fraction)``."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    perm = rng.permutation(n)
    n_test = max(1, int(round(n * test_fraction))) if n > 1 else 0
    return np.sort(perm[n_test:]), np.sort(perm[:n_test])


@dataclass
class EvaluationResult:
    """Averaged repeated-random-split evaluation."""

    overall_accuracy: float
    per_class: np.ndarray  # mean recall per class (NaN = class unseen)
    label_names: tuple[str, ...]
    repeats: int

    def as_dict(self) -> dict[str, float]:
        """Per-class recalls by label name.  Classes unseen across every
        split (their ``per_class`` entry is NaN) are omitted entirely, so
        the NaN never propagates into downstream aggregation."""
        return {
            name: float(v)
            for name, v in zip(self.label_names, self.per_class)
            if not np.isnan(v)
        }


def evaluate_model(
    model_factory,
    X: np.ndarray,
    y: np.ndarray,
    label_names: tuple[str, ...],
    repeats: int = 5,
    test_fraction: float = 0.5,
    seed: int = 0,
) -> EvaluationResult:
    """Repeated random-split evaluation (the paper repeats five times).

    ``model_factory(split_index)`` must return a fresh unfitted model.
    """
    n_classes = len(label_names)
    accs: list[float] = []
    per_class_runs: list[np.ndarray] = []
    rng = np.random.default_rng(seed)
    for rep in range(repeats):
        train_idx, test_idx = train_test_split(rng, len(y), test_fraction)
        if len(train_idx) == 0 or len(test_idx) == 0:
            continue
        model = model_factory(rep)
        model.fit(X[train_idx], y[train_idx])
        pred = model.predict(X[test_idx])
        accs.append(accuracy(y[test_idx], pred))
        per_class_runs.append(per_class_accuracy(y[test_idx], pred, n_classes))
    if not accs:
        return EvaluationResult(0.0, np.full(n_classes, np.nan), label_names, 0)
    # Mean over the splits that actually saw each class.  Computed from
    # explicit seen-counts rather than nanmean so a class absent from
    # every split yields NaN without ever *raising* a mean-of-empty
    # RuntimeWarning — callers running with warnings-as-errors included.
    stacked = np.vstack(per_class_runs)
    seen = ~np.isnan(stacked)
    counts = seen.sum(axis=0)
    sums = np.where(seen, stacked, 0.0).sum(axis=0)
    per_class = np.divide(
        sums, counts, out=np.full(n_classes, np.nan), where=counts > 0
    )
    return EvaluationResult(float(np.mean(accs)), per_class, label_names, len(accs))
