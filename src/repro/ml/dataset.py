"""Dataset assembly: injection points + campaign results → (X, y).

Two label schemes, matching the paper's two prediction targets:

* ``outcome_labels`` — the majority response type of a point (Fig. 12);
* ``level_labels`` — the discretised error-rate level of a point
  (Figs. 13a/13b and the decision tree of Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.sensitivity import LevelScheme
from ..injection.campaign import CampaignResult
from ..injection.outcome import OUTCOME_ORDER
from ..injection.space import InjectionPoint
from ..profiling.profiler import ApplicationProfile
from .features import FEATURE_NAMES, features_matrix

OUTCOME_LABEL_NAMES: tuple[str, ...] = tuple(o.value for o in OUTCOME_ORDER)


@dataclass
class Dataset:
    """A supervised dataset over injection points."""

    X: np.ndarray
    y: np.ndarray
    points: list[InjectionPoint]
    feature_names: tuple[str, ...]
    label_names: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.y)

    def subset(self, idx: np.ndarray) -> "Dataset":
        return Dataset(
            self.X[idx],
            self.y[idx],
            [self.points[i] for i in np.atleast_1d(idx)],
            self.feature_names,
            self.label_names,
        )


def outcome_labels(campaign: CampaignResult) -> tuple[list[InjectionPoint], np.ndarray]:
    """Points and their majority-outcome label indices."""
    points = sorted(campaign.points)
    y = np.array(
        [OUTCOME_ORDER.index(campaign.points[p].majority_outcome()) for p in points],
        dtype=np.int64,
    )
    return points, y


def level_labels(
    campaign: CampaignResult, scheme: LevelScheme
) -> tuple[list[InjectionPoint], np.ndarray]:
    """Points and their error-rate-level label indices."""
    points = sorted(campaign.points)
    y = np.array(
        [scheme.level_of(campaign.points[p].error_rate) for p in points],
        dtype=np.int64,
    )
    return points, y


def build_outcome_dataset(
    profile: ApplicationProfile, campaign: CampaignResult
) -> Dataset:
    points, y = outcome_labels(campaign)
    return Dataset(
        features_matrix(profile, points), y, points, FEATURE_NAMES, OUTCOME_LABEL_NAMES
    )


def build_level_dataset(
    profile: ApplicationProfile, campaign: CampaignResult, scheme: LevelScheme
) -> Dataset:
    points, y = level_labels(campaign, scheme)
    return Dataset(
        features_matrix(profile, points), y, points, FEATURE_NAMES, tuple(scheme.names)
    )


def merge_datasets(datasets: list[Dataset]) -> Dataset:
    """Concatenate compatible datasets (e.g. NPB + LAMMPS points)."""
    if not datasets:
        raise ValueError("nothing to merge")
    first = datasets[0]
    for d in datasets[1:]:
        if d.feature_names != first.feature_names or d.label_names != first.label_names:
            raise ValueError("datasets have incompatible schemas")
    return Dataset(
        np.vstack([d.X for d in datasets]),
        np.concatenate([d.y for d in datasets]),
        [p for d in datasets for p in d.points],
        first.feature_names,
        first.label_names,
    )
