"""Feature ↔ sensitivity correlation (paper Eq. 1 and Table IV).

The paper maps Pearson's correlation into [0, 1]::

    Correlation(X, Y) = (r(X, Y) + 1) / 2

so 1 means the feature varies with sensitivity, 0 means it varies
oppositely, and 0.5 means no effect.  (The denominator of Eq. 1 as
typeset is read as the usual product-of-variances normalisation.)
"""

from __future__ import annotations

import numpy as np

from ..injection.campaign import CampaignResult
from ..ml.features import invocation_stack, stack_is_errhal
from ..profiling.profiler import ApplicationProfile

#: Column order of the paper's Table IV.
TABLE4_FEATURES: tuple[str, ...] = (
    "Init Phase",
    "Input Phase",
    "Compute Phase",
    "End Phase",
    "ErrHdl",
    "Non-ErrHdl",
    "nInv",
    "nDiffGraph",
    "StackDepth",
)


def eq1_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """The paper's Eq. 1: Pearson's r mapped into [0, 1].

    Degenerate (constant) series have no direction, so they return the
    neutral value 0.5.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if len(x) != len(y) or len(x) < 2:
        return 0.5
    xc = x - x.mean()
    yc = y - y.mean()
    denom = np.sqrt((xc * xc).sum() * (yc * yc).sum())
    if denom == 0.0:
        return 0.5
    r = float((xc * yc).sum() / denom)
    return 0.5 * (r + 1.0)


def table4_features(
    profile: ApplicationProfile, campaign: CampaignResult
) -> tuple[np.ndarray, np.ndarray, list[str]]:
    """Feature matrix and error-rate vector for the Table IV study.

    One row per tested injection point, with the phase and error-handling
    indicators one-hot encoded (that is how the paper can report a
    per-phase correlation).
    """
    rows: list[list[float]] = []
    rates: list[float] = []
    for point, pr in sorted(campaign.points.items()):
        summary = profile.summary(point.rank, point.site_key)
        phase = summary.phases.get(point.invocation, "compute")
        errhal = stack_is_errhal(invocation_stack(summary, point.invocation))
        rows.append(
            [
                float(phase == "init"),
                float(phase == "input"),
                float(phase == "compute"),
                float(phase == "end"),
                float(errhal),
                float(not errhal),
                float(summary.n_invocations),
                float(summary.n_diff_stacks),
                float(summary.avg_stack_depth),
            ]
        )
        rates.append(pr.error_rate)
    X = np.array(rows) if rows else np.zeros((0, len(TABLE4_FEATURES)))
    return X, np.array(rates), list(TABLE4_FEATURES)


def correlation_table(
    profile: ApplicationProfile, campaign: CampaignResult
) -> dict[str, float]:
    """Eq. 1 correlation of every Table IV feature with the error rate."""
    X, rates, names = table4_features(profile, campaign)
    return {
        name: eq1_correlation(X[:, j], rates) if len(rates) else 0.5
        for j, name in enumerate(names)
    }
