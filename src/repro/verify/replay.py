"""Deterministic replay: record a run's scheduling, then prove it again.

The simulator's claim to determinism is load-bearing — campaign resume,
parallel sharding, and ML feature extraction all assume a run is a pure
function of its seed — and every hot-path optimisation in the scheduler
is a chance to quietly break it.  This module turns the claim into a
checkable artifact:

* :func:`record_run` executes an app with the scheduler's *recorder*
  attached, capturing every decision the scheduler makes — fiber
  scheduling (``"S"``/``"P"``/``"D"``), receive posting and blocking
  (``"R"``/``"B"``), and message-match order (``"M"``) — plus a
  canonical fingerprint of the per-rank results.
* :func:`replay_run` executes the same app again and diffs the two logs
  entry by entry; the report pinpoints the first divergent decision.

Logs are plain tuples of ints/strings, JSON-serialisable, so a recorded
run can be shipped in a bug report and replayed elsewhere.
"""

from __future__ import annotations

import hashlib
import json
import struct
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..simmpi.runtime import RunResult, run_app

Entry = tuple  # one scheduler decision, e.g. ("M", rank, ctx, src, dst, tag, nbytes)


def fingerprint(obj: Any) -> str:
    """Canonical content hash: equal structures hash equal, bit-for-bit.

    Floats hash their IEEE bits (no repr rounding), numpy arrays their
    shape + dtype + raw bytes, containers recurse.  Anything exotic
    falls back to ``repr``.
    """
    h = hashlib.sha256()
    _canon(obj, h)
    return h.hexdigest()


def _canon(obj: Any, h: "hashlib._Hash") -> None:
    if obj is None or isinstance(obj, (bool, int, str)):
        h.update(f"{type(obj).__name__}:{obj!r};".encode())
    elif isinstance(obj, float):
        h.update(b"f" + struct.pack("<d", obj))
    elif isinstance(obj, complex):
        h.update(b"c" + struct.pack("<dd", obj.real, obj.imag))
    elif isinstance(obj, (bytes, bytearray)):
        h.update(b"b" + bytes(obj))
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        h.update(f"a{arr.shape}{arr.dtype.str}".encode())
        h.update(arr.tobytes())
    elif isinstance(obj, np.generic):
        _canon(obj.item(), h)
    elif isinstance(obj, (list, tuple)):
        h.update(f"l{len(obj)}".encode())
        for item in obj:
            _canon(item, h)
    elif isinstance(obj, dict):
        h.update(f"d{len(obj)}".encode())
        for key in sorted(obj, key=repr):
            _canon(key, h)
            _canon(obj[key], h)
    else:
        h.update(f"o:{obj!r};".encode())


@dataclass
class ReplayLog:
    """Everything needed to re-verify one run's scheduling decisions."""

    nranks: int
    entries: list[Entry]
    steps: int
    results_fingerprint: str

    def to_json(self) -> str:
        return json.dumps(
            {
                "nranks": self.nranks,
                "steps": self.steps,
                "results_fingerprint": self.results_fingerprint,
                "entries": [list(e) for e in self.entries],
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "ReplayLog":
        data = json.loads(text)
        return cls(
            nranks=data["nranks"],
            entries=[tuple(e) for e in data["entries"]],
            steps=data["steps"],
            results_fingerprint=data["results_fingerprint"],
        )


@dataclass
class ReplayReport:
    """Outcome of replaying a recorded run."""

    identical: bool
    entries_match: bool
    steps_match: bool
    results_match: bool
    #: Index of the first divergent log entry (None when logs agree).
    first_divergence: int | None
    detail: str
    recorded: ReplayLog = field(repr=False)
    replayed: ReplayLog = field(repr=False)


def record_run(
    app_fn: Callable, nranks: int, **run_kwargs: Any
) -> tuple[RunResult, ReplayLog]:
    """Run ``app_fn`` with the scheduler recorder attached."""
    recorder: list[Entry] = []
    result = run_app(app_fn, nranks, recorder=recorder, **run_kwargs)
    log = ReplayLog(
        nranks=nranks,
        entries=recorder,
        steps=result.steps,
        results_fingerprint=fingerprint(result.results),
    )
    return result, log


def replay_run(
    app_fn: Callable, nranks: int, log: ReplayLog, **run_kwargs: Any
) -> ReplayReport:
    """Re-execute and diff against a recorded log, decision by decision."""
    _, fresh = record_run(app_fn, nranks, **run_kwargs)

    first = None
    for i, (a, b) in enumerate(zip(log.entries, fresh.entries)):
        if tuple(a) != tuple(b):
            first = i
            break
    if first is None and len(log.entries) != len(fresh.entries):
        first = min(len(log.entries), len(fresh.entries))

    entries_match = first is None
    steps_match = log.steps == fresh.steps
    results_match = log.results_fingerprint == fresh.results_fingerprint
    identical = entries_match and steps_match and results_match

    if identical:
        detail = f"bit-identical: {len(log.entries)} decisions, {log.steps} steps"
    elif not entries_match:
        rec = log.entries[first] if first < len(log.entries) else "<end of log>"
        got = fresh.entries[first] if first < len(fresh.entries) else "<end of log>"
        detail = f"first divergence at decision {first}: recorded {rec}, replayed {got}"
    elif not steps_match:
        detail = f"step counts differ: recorded {log.steps}, replayed {fresh.steps}"
    else:
        detail = "scheduling identical but per-rank results differ"

    return ReplayReport(
        identical=identical,
        entries_match=entries_match,
        steps_match=steps_match,
        results_match=results_match,
        first_divergence=first,
        detail=detail,
        recorded=log,
        replayed=fresh,
    )
