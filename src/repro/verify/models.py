"""Model-conformance witnesses for the composable fault-model layer.

Every fault model in :data:`repro.injection.models.MODELS` claims a
Table-I response: a dropped message starves a receiver (``INF_LOOP``), a
duplicated one is absorbed by matched receives (``SUCCESS``), a crash is
the simulated process failure (``MPI_ERR``), and so on.  This module
pins each claim to a purpose-built two-rank *witness* — a micro-app
whose golden behaviour makes the expected response unambiguous — and
:func:`model_conformance` runs the full catalog.

Like :mod:`repro.verify.mutants` for the simulator, the witnesses only
prove something because they can fail: :data:`MODEL_MUTANTS` seeds
plausible defects into the delivery helpers of
:mod:`repro.injection.wire` (a drop that silently retries, a reorder
that preserves FIFO, a stall shorter than the deadline) and the
self-test requires the witness sweep to fail under each.
"""

from __future__ import annotations

import importlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator

import numpy as np

from ..injection.outcome import Outcome, classify_exception
from ..injection.models import build_injector
from ..injection.scenario import parse_scenario
from ..injection.space import FaultSpec, InjectionPoint, ModelSpec
from ..simmpi import Instrument, SimMPIError, run_app

#: Generous deadline for the tiny witness apps; stalls charge past it.
WITNESS_STEP_BUDGET = 20_000


# -- witness micro-apps -------------------------------------------------

def _bcast_app(ctx):
    """Root broadcasts eight known ints; every rank returns them.

    The one-message (two-rank binomial) broadcast makes every wire fault
    legible: drop starves rank 1, dup leaves one absorbed clone, corrupt
    and parameter bursts show up in the returned payload.
    """
    buf = ctx.alloc(8, ctx.INT, "witness.buf")
    if ctx.rank == 0:
        buf.view[:] = np.arange(1, 9, dtype=np.int32)
    yield from ctx.Bcast(buf.addr, 8, ctx.INT, 0, ctx.WORLD)
    return [int(x) for x in buf.view]


def _reorder_app(ctx):
    """Rank 1 sends two same-tag values; rank 0 returns them in
    arrival order.

    The two sends share one mailbox key (same context/src/dst/tag), so
    the reorder arm can hold the first back and release it behind the
    second — the only witness whose golden answer encodes FIFO order.
    """
    flag = ctx.alloc(1, ctx.INT, "witness.flag")
    yield from ctx.Bcast(flag.addr, 1, ctx.INT, 0, ctx.WORLD)
    a = ctx.alloc(1, ctx.INT, "witness.a")
    b = ctx.alloc(1, ctx.INT, "witness.b")
    if ctx.rank == 1:
        a.view[0] = 11
        b.view[0] = 22
        yield from ctx.Send(a.addr, 1, ctx.INT, 0, 7, ctx.WORLD)
        yield from ctx.Send(b.addr, 1, ctx.INT, 0, 7, ctx.WORLD)
        return []
    yield from ctx.Recv(a.addr, 1, ctx.INT, 1, 7, ctx.WORLD)
    yield from ctx.Recv(b.addr, 1, ctx.INT, 1, 7, ctx.WORLD)
    return [int(a.view[0]), int(b.view[0])]


class _Probe(Instrument):
    """Records every collective entry so witnesses can address the
    injection point without the full profiling stack."""

    def __init__(self) -> None:
        self.calls: list[tuple[int, str, str, int]] = []

    def on_collective(self, ctx, call) -> None:
        self.calls.append((call.rank, call.name, call.site, call.invocation))

    def point(self, rank: int, collective: str) -> InjectionPoint:
        for r, name, site, invocation in self.calls:
            if r == rank and name == collective:
                return InjectionPoint(r, name, site, invocation)
        raise LookupError(
            f"witness never called {collective} on rank {rank}"
        )  # pragma: no cover - witness bug


# -- witness catalog ----------------------------------------------------

@dataclass(frozen=True)
class ModelWitness:
    """One fault model pinned to its expected Table-I response."""

    name: str
    model: str
    description: str
    app: Callable
    #: The collective entry the fault arms on: (world rank, collective).
    arm: tuple[int, str]
    #: Builds the concrete spec once the probe located the arm point.
    spec: Callable[[InjectionPoint], Any]
    #: Acceptable outcomes (usually exactly one).
    expected: tuple[Outcome, ...]
    nranks: int = 2


_SCENARIO_DROP = parse_scenario({
    "version": 1, "name": "witness-drop",
    "tasks": [{"t": 0, "model": "msg_drop", "rank": 0}],
})
_SCENARIO_MIX = parse_scenario({
    "version": 1, "name": "witness-mix",
    "tasks": [
        {"t": 0, "model": "msg_dup", "rank": 0},
        {"t": 0, "model": "bitflip", "rank": 0, "param": "buffer"},
    ],
})


WITNESSES: dict[str, ModelWitness] = {
    w.name: w
    for w in (
        ModelWitness(
            "bitflip", "bitflip",
            "flipped broadcast payload differs from golden",
            _bcast_app, (0, "Bcast"),
            lambda p: FaultSpec(p, "buffer", None),
            (Outcome.WRONG_ANS,),
        ),
        ModelWitness(
            "multibit", "multibit",
            "burst-flipped broadcast payload differs from golden",
            _bcast_app, (0, "Bcast"),
            lambda p: ModelSpec(p, "multibit", param="buffer"),
            (Outcome.WRONG_ANS,),
        ),
        ModelWitness(
            "msg_drop", "msg_drop",
            "dropped broadcast message starves rank 1",
            _bcast_app, (0, "Bcast"),
            lambda p: ModelSpec(p, "msg_drop", param="payload"),
            (Outcome.INF_LOOP,),
        ),
        ModelWitness(
            "msg_dup", "msg_dup",
            "duplicated broadcast message is absorbed",
            _bcast_app, (0, "Bcast"),
            lambda p: ModelSpec(p, "msg_dup", param="payload"),
            (Outcome.SUCCESS,),
        ),
        ModelWitness(
            "msg_corrupt", "msg_corrupt",
            "corrupted broadcast payload reaches rank 1",
            _bcast_app, (0, "Bcast"),
            lambda p: ModelSpec(p, "msg_corrupt", param="payload"),
            (Outcome.WRONG_ANS,),
        ),
        ModelWitness(
            "msg_reorder", "msg_reorder",
            "two same-key messages arrive swapped",
            _reorder_app, (1, "Bcast"),
            lambda p: ModelSpec(p, "msg_reorder", param="payload"),
            (Outcome.WRONG_ANS,),
        ),
        ModelWitness(
            "rank_crash", "rank_crash",
            "rank fails entering the broadcast",
            _bcast_app, (0, "Bcast"),
            lambda p: ModelSpec(p, "rank_crash", param="rank"),
            (Outcome.MPI_ERR,),
        ),
        ModelWitness(
            "rank_stall", "rank_stall",
            "stalled rank charges past the deadline budget",
            _bcast_app, (0, "Bcast"),
            lambda p: ModelSpec(p, "rank_stall", param="rank"),
            (Outcome.INF_LOOP,),
        ),
        ModelWitness(
            "scenario_drop", "scenario",
            "one-task drop scenario starves rank 1",
            _bcast_app, (0, "Bcast"),
            lambda p: ModelSpec(p, "scenario", scenario=_SCENARIO_DROP),
            (Outcome.INF_LOOP,),
        ),
        ModelWitness(
            "scenario_mix", "scenario",
            "overlapping dup+bitflip timeline: dup absorbed, flip visible",
            _bcast_app, (0, "Bcast"),
            lambda p: ModelSpec(p, "scenario", scenario=_SCENARIO_MIX),
            (Outcome.WRONG_ANS,),
        ),
    )
}


# -- the sweep ----------------------------------------------------------

@dataclass(frozen=True)
class WitnessResult:
    """Outcome of one witness run against its expectation."""

    witness: str
    model: str
    expected: tuple[str, ...]
    got: str
    ok: bool
    detail: str = ""

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL"
        want = "|".join(self.expected)
        return f"{status:4s} {self.witness:14s} {self.model:12s} expected {want}, got {self.got}"


@dataclass(frozen=True)
class ModelConformanceReport:
    """Result of the full witness sweep."""

    results: tuple[WitnessResult, ...]

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def failures(self) -> tuple[WitnessResult, ...]:
        return tuple(r for r in self.results if not r.ok)

    def describe(self) -> str:
        lines = [r.describe() for r in self.results]
        n_bad = len(self.failures)
        lines.append(
            f"model conformance: {len(self.results)} witnesses, "
            + ("all expected responses observed" if not n_bad else f"{n_bad} FAILED")
        )
        return "\n".join(lines)


def run_witness(witness: ModelWitness, seed: int = 0) -> WitnessResult:
    """Run one witness: golden run, probe the arm point, inject, classify."""
    probe = _Probe()
    golden = run_app(
        witness.app, witness.nranks,
        instruments=[probe], step_budget=WITNESS_STEP_BUDGET,
    ).results
    spec = witness.spec(probe.point(*witness.arm))
    rng = np.random.default_rng(seed)
    injector = build_injector(spec, rng)
    detail = ""
    try:
        with np.errstate(all="ignore"):
            result = run_app(
                witness.app, witness.nranks,
                instruments=[injector], step_budget=WITNESS_STEP_BUDGET,
                tap=getattr(injector, "tap", None),
            )
    except SimMPIError as exc:
        got = classify_exception(exc)
        detail = f"{type(exc).__name__}: {exc}"
    else:
        got = Outcome.SUCCESS if result.results == golden else Outcome.WRONG_ANS
    return WitnessResult(
        witness.name, witness.model,
        tuple(o.value for o in witness.expected), got.value,
        got in witness.expected, detail,
    )


def model_conformance(seed: int = 0, mutant: str | None = None) -> ModelConformanceReport:
    """Sweep every witness; with ``mutant`` the defect is installed first
    (the sweep is then *expected* to fail — see ``fastfit verify``)."""
    if mutant is not None:
        with seeded_model_mutant(mutant):
            return model_conformance(seed)
    return ModelConformanceReport(
        tuple(run_witness(w, seed) for w in WITNESSES.values())
    )


# -- seeded fault-model mutants -----------------------------------------

@dataclass(frozen=True)
class ModelMutant:
    """One installable fault-model defect (patched into
    :mod:`repro.injection.wire`'s delivery helpers)."""

    name: str
    description: str
    patches: tuple[tuple[str, str, Callable[[Any], Any]], ...]
    #: Witnesses whose sweep must fail under this mutant.
    detected_by: tuple[str, ...]


MODEL_MUTANTS: dict[str, ModelMutant] = {
    m.name: m
    for m in (
        ModelMutant(
            "wire_drop_retries",
            "msg_drop silently retries: the dropped message is delivered anyway",
            (("repro.injection.wire", "drop_payloads",
              lambda orig: (lambda payload: [payload])),),
            detected_by=("msg_drop", "scenario_drop"),
        ),
        ModelMutant(
            "wire_reorder_fifo",
            "msg_reorder preserves FIFO: held message released in order",
            (("repro.injection.wire", "reorder_release",
              lambda orig: (lambda held, new: [held, new])),),
            detected_by=("msg_reorder",),
        ),
        ModelMutant(
            "stall_under_deadline",
            "rank_stall charges one step instead of blowing the deadline",
            (("repro.injection.wire", "resolve_stall_weight",
              lambda orig: (lambda explicit, step_budget: 1)),),
            detected_by=("rank_stall",),
        ),
    )
}


@contextmanager
def seeded_model_mutant(name: str) -> Iterator[ModelMutant]:
    """Install the named fault-model mutant for the ``with`` block."""
    try:
        mutant = MODEL_MUTANTS[name]
    except KeyError:
        raise ValueError(
            f"unknown model mutant {name!r}; choices: {', '.join(sorted(MODEL_MUTANTS))}"
        ) from None
    saved: list[tuple[Any, str, Any]] = []
    try:
        for module_name, attr, factory in mutant.patches:
            module = importlib.import_module(module_name)
            original = getattr(module, attr)
            saved.append((module, attr, original))
            setattr(module, attr, factory(original))
        yield mutant
    finally:
        for module, attr, original in reversed(saved):
            setattr(module, attr, original)
