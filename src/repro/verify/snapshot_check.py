"""Fork-equivalence oracle for the snapshot-and-fork engine.

The snapshot engine (:mod:`repro.snapshot`) promises that a test served
by forking a parked fault-free prefix is indistinguishable from the same
test replayed from t=0.  This module reifies that promise: it runs the
same batch of tests both ways, reduces each stream to a content
fingerprint (every fault spec, outcome, injection record, and detail
string participates), and compares.

With a seeded snapshot mutant armed (:mod:`repro.snapshot.mutants`) the
expectation inverts — the defect must *change* the forked fingerprint,
proving the oracle can see a broken engine.  A mutant the comparison
cannot detect is itself a verification failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..apps.base import Application
from ..injection.runner import InjectionRunner, TestResult
from ..injection.space import FaultSpec, InjectionPoint, enumerate_points
from ..injection.targets import pick_target
from ..profiling.profiler import ApplicationProfile, profile_application
from ..snapshot import SnapshotEngine, seeded_snapshot_mutant
from .replay import fingerprint


def _test_signature(t: TestResult) -> tuple:
    rec = t.record
    record = (
        None
        if rec is None
        else (rec.param, rec.kind, rec.bit, rec.skipped, rec.before, rec.after)
    )
    return (repr(t.spec.point), t.spec.param, t.spec.bit, t.outcome.name,
            record, t.detail)


def _stream_signature(stream: list[list[TestResult]]) -> list[list[tuple]]:
    return [[_test_signature(t) for t in tests] for tests in stream]


@dataclass
class ForkEquivalenceReport:
    """Outcome of one fork-equivalence comparison."""

    app_name: str
    n_points: int
    n_tests: int
    scratch_fingerprint: str
    forked_fingerprint: str
    #: Armed engine defect, or None for the plain equivalence check.
    mutant: str | None = None
    #: Human-readable divergences (first few points that differ).
    mismatches: list[str] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        return self.scratch_fingerprint == self.forked_fingerprint

    @property
    def ok(self) -> bool:
        """Clean run ⇒ streams must match; mutant run ⇒ must differ."""
        return self.identical if self.mutant is None else not self.identical

    def describe(self) -> str:
        base = (
            f"fork-equivalence: {self.app_name}, {self.n_points} points × "
            f"{self.n_tests} tests"
        )
        if self.mutant is not None:
            verdict = (
                "DETECTED (oracle has teeth)"
                if not self.identical
                else "NOT DETECTED — oracle failure"
            )
            return f"{base}, mutant {self.mutant!r}: {verdict}"
        verdict = "forked == scratch (bit-identical)" if self.identical else "DIVERGED"
        lines = [f"{base}: {verdict}"]
        lines.extend(f"  {m}" for m in self.mismatches[:10])
        return "\n".join(lines)


def fork_equivalence(
    app: Application,
    *,
    seed: int = 0,
    tests_per_point: int = 4,
    max_points: int = 4,
    param_policy: str = "buffer",
    mutant: str | None = None,
    profile: ApplicationProfile | None = None,
) -> ForkEquivalenceReport:
    """Compare forked and from-scratch test streams over one workload.

    Points are a deterministic spread over the enumerated space (first,
    last, and evenly between — early and late invocations both
    represented).  Every point is served through the engine **twice**,
    so both the cold path (park + capture) and the snapshot fast-forward
    path are covered by the comparison.
    """
    if profile is None:
        profile = profile_application(app)
    runner = InjectionRunner(app, profile)
    space = enumerate_points(profile)
    if not space:
        raise ValueError(f"no injection points for {app.name}")
    n = min(max_points, len(space))
    idx = sorted({round(i * (len(space) - 1) / max(1, n - 1)) for i in range(n)})
    points: list[InjectionPoint] = [space[i] for i in idx]

    def tasks_for(pi: int) -> list[tuple[FaultSpec, np.random.Generator]]:
        tasks = []
        for t in range(tests_per_point):
            seq = np.random.SeedSequence(entropy=seed, spawn_key=(pi, t))
            rng = np.random.default_rng(seq)
            param = pick_target(rng, points[pi].collective, param_policy)
            tasks.append((FaultSpec(points[pi], param, None), rng))
        return tasks

    scratch = [
        [runner.run_one(spec, rng) for spec, rng in tasks_for(pi)]
        for pi in range(len(points))
    ]

    engine = SnapshotEngine(runner)

    def serve_all() -> list[list[TestResult]]:
        out = []
        for _pass in range(2):  # cold park, then snapshot fast-forward
            out = [
                engine.serve_point(points[pi], tasks_for(pi))
                for pi in range(len(points))
            ]
        return out

    if mutant is not None:
        with seeded_snapshot_mutant(mutant):
            forked = serve_all()
    else:
        forked = serve_all()

    scratch_sig = _stream_signature(scratch)
    forked_sig = _stream_signature(forked)
    mismatches = [
        f"{points[pi]}: forked stream differs from scratch"
        for pi in range(len(points))
        if scratch_sig[pi] != forked_sig[pi]
    ]
    return ForkEquivalenceReport(
        app_name=app.name,
        n_points=len(points),
        n_tests=tests_per_point,
        scratch_fingerprint=fingerprint(scratch_sig),
        forked_fingerprint=fingerprint(forked_sig),
        mutant=mutant,
        mismatches=mismatches,
    )
