"""Seeded defects that the conformance harness must catch.

A verifier that cannot fail a broken simulator verifies nothing, so each
named mutant here installs a realistic bug — wrong block bookkeeping in
a ring schedule, a swapped operand in a fold, a shifted root — and the
self-test (``tests/verify/test_mutant_selftest.py``, also ``fastfit
verify --mutant``) asserts :func:`repro.verify.conformance.run_conformance`
reports failures with the mutant installed and none without.

Patching targets the *consuming* modules: drivers bind schedules with
``from .ring import ring_allgather_steps``, so replacing the attribute
in :mod:`repro.simmpi.collectives.ring` alone would mutate nothing.
``Context`` dispatches ``coll.scan`` / ``coll.bcast`` through the
package namespace at call time, so those patch the package attribute.
"""

from __future__ import annotations

import importlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator


def _ring_wrong_block(rank: int, n: int) -> list[tuple[int, int, int, int, int]]:
    """Ring allgather with the received block filed one slot too low.

    Messages still pair up exactly (same peers, same steps), so nothing
    deadlocks and no sanitizer fires for the equal-count Allgather — the
    data is simply in the wrong place, which only a semantic oracle
    sees.
    """
    right = (rank + 1) % n
    left = (rank - 1) % n
    return [
        (right, left, (rank - s) % n, (rank - s - 2) % n, s)
        for s in range(n - 1)
    ]


def _scan_swapped_operands(orig: Callable) -> Callable:
    """``Scan`` folding ``op(mine, prefix)`` instead of ``op(prefix, mine)``.

    Invisible for every commutative op — only the non-commutative test
    ops (``FF_TAKELEFT``/``FF_TAKERIGHT``) distinguish the two, which is
    exactly what they are in the fuzzer to prove.
    """

    def scan(env, sendaddr, recvaddr, count, dtype, op):
        nbytes = count * dtype.size
        mine = env.memory.read(sendaddr, nbytes)
        if env.me > 0:
            prefix = yield from env.recv(env.me - 1, 0)
            env.check_truncate(prefix, nbytes)
            mine = op.apply(mine, prefix, dtype, rank=env.rank)
        env.memory.write(recvaddr, mine)
        if env.me + 1 < env.size:
            yield from env.send(env.me + 1, 0, mine)

    return scan


def _bcast_shifted_root(orig: Callable) -> Callable:
    """``Bcast`` sourcing from ``root + 1`` — every rank agrees on the
    wrong root, so the traffic is self-consistent and only the payload
    betrays the bug."""

    def bcast(env, addr, count, dtype, root, algorithm="binomial", step_base=0):
        yield from orig(
            env, addr, count, dtype, (root + 1) % env.size,
            algorithm=algorithm, step_base=step_base,
        )

    return bcast


@dataclass(frozen=True)
class Mutant:
    """One installable defect.

    ``patches`` maps ``(module, attribute)`` to a factory taking the
    original attribute and returning its replacement.
    """

    name: str
    description: str
    patches: tuple[tuple[str, str, Callable[[Any], Any]], ...]
    #: Collectives whose conformance sweep must fail under this mutant.
    detected_by: tuple[str, ...]


MUTANTS: dict[str, Mutant] = {
    m.name: m
    for m in (
        Mutant(
            "ring_wrong_block",
            "ring allgather stores received blocks one slot too low",
            (
                (
                    "repro.simmpi.collectives.allgather",
                    "ring_allgather_steps",
                    lambda orig: _ring_wrong_block,
                ),
                (
                    "repro.simmpi.collectives.vvariants",
                    "ring_allgather_steps",
                    lambda orig: _ring_wrong_block,
                ),
            ),
            detected_by=("Allgather", "Allgatherv"),
        ),
        Mutant(
            "scan_swapped_operands",
            "Scan folds op(mine, prefix) instead of op(prefix, mine)",
            (("repro.simmpi.collectives", "scan", _scan_swapped_operands),),
            detected_by=("Scan",),
        ),
        Mutant(
            "bcast_shifted_root",
            "Bcast broadcasts from (root + 1) mod size",
            (("repro.simmpi.collectives", "bcast", _bcast_shifted_root),),
            detected_by=("Bcast",),
        ),
    )
}


@contextmanager
def seeded_mutant(name: str) -> Iterator[Mutant]:
    """Install the named mutant for the duration of the ``with`` block."""
    try:
        mutant = MUTANTS[name]
    except KeyError:
        raise ValueError(
            f"unknown mutant {name!r}; choices: {', '.join(sorted(MUTANTS))}"
        ) from None
    saved: list[tuple[Any, str, Any]] = []
    try:
        for module_name, attr, factory in mutant.patches:
            module = importlib.import_module(module_name)
            original = getattr(module, attr)
            saved.append((module, attr, original))
            setattr(module, attr, factory(original))
        yield mutant
    finally:
        for module, attr, original in reversed(saved):
            setattr(module, attr, original)
