"""Sanitizer soak: run every registered workload golden, sanitizers armed.

The conformance fuzzer exercises single collectives; this sweep runs the
*real* applications — full phase structure, sub-communicators,
nonblocking halo exchanges — under every sanitizer tripwire.  A clean
tree must produce **zero** violations here (the sanitizers' false-
positive contract); a refactor that starts leaking requests or
truncating collective payloads fails this sweep before it ever skews a
campaign histogram.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..apps.registry import APPLICATIONS, make_app
from ..simmpi.runtime import run_app


@dataclass
class SweepResult:
    """Sanitizer findings for one golden application run."""

    app: str
    problem_class: str
    nranks: int
    steps: int
    violations: list[str] = field(default_factory=list)
    error: str | None = None

    @property
    def ok(self) -> bool:
        return not self.violations and self.error is None

    def describe(self) -> str:
        status = "clean" if self.ok else (self.error or f"{len(self.violations)} violations")
        return f"{self.app}/{self.problem_class} nranks={self.nranks}: {status}"


def sanitize_sweep(
    apps: Sequence[str] | None = None, problem_class: str = "T"
) -> list[SweepResult]:
    """Golden-run each registered app with ``sanitize=True``.

    Returns one :class:`SweepResult` per app; a crash is reported in
    ``error`` rather than raised, so one broken workload cannot mask
    the others' findings.
    """
    names = list(apps) if apps is not None else sorted(APPLICATIONS)
    results: list[SweepResult] = []
    for name in names:
        app = make_app(name, problem_class)
        entry = SweepResult(
            app=name, problem_class=problem_class, nranks=app.nranks, steps=0
        )
        try:
            run = run_app(app.main, app.nranks, sanitize=True)
            entry.steps = run.steps
            if run.sanitizer is not None:
                entry.violations = [v.describe() for v in run.sanitizer.violations]
        except Exception as exc:
            entry.error = f"{type(exc).__name__}: {exc}"
        results.append(entry)
    return results
