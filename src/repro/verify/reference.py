"""Pure-numpy reference semantics for every simulated collective.

Each function here states what a collective *means* — dense array
slicing and canonical rank-ordered folds — with no schedule, no
point-to-point decomposition, and no shared code with
:mod:`repro.simmpi.collectives`.  That independence is the point: the
conformance harness (:mod:`repro.verify.conformance`) runs the real
drivers and diffs their buffer images against these functions, so a bug
has to appear in *both* implementations, in the same way, to slip by.

Conventions
-----------
* Inputs are per-rank numpy arrays: ``sendimgs[r]`` is rank ``r``'s send
  buffer *image* at entry, ``recvimgs[r]`` its receive buffer image
  (the sentinel-filled allocation).  All functions return the expected
  final receive images — including buffers MPI leaves untouched
  (non-root receive buffers, rank 0's Exscan output), which must come
  back byte-identical to the sentinel.  That also catches stray writes.
* Reductions fold strictly in comm rank order, ``(((r0 ∘ r1) ∘ r2) ∘ …)``,
  the canonical order the MPI standard guarantees for non-commutative
  ops, re-applying the datatype after every combine exactly as
  :meth:`repro.simmpi.ops.ReduceOp.apply` does.
* ``Alltoallw`` works on raw *byte* images (displacements are in bytes
  and datatypes vary per peer).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..simmpi.ops import ReduceOp

Array = np.ndarray


def fold(op: ReduceOp, operands: Sequence[Array], np_dtype: np.dtype) -> Array:
    """Canonical left fold of ``operands`` (already in comm rank order)."""
    if not operands:
        raise ValueError("fold of zero operands")
    acc = np.array(operands[0], dtype=np_dtype, copy=True)
    for nxt in operands[1:]:
        with np.errstate(all="ignore"):
            acc = op.fn(acc, np.asarray(nxt, dtype=np_dtype)).astype(np_dtype, copy=False)
    return acc


def _copies(imgs: Sequence[Array]) -> list[Array]:
    return [np.array(img, copy=True) for img in imgs]


# -- data-movement collectives ---------------------------------------------


def ref_bcast(bufimgs: Sequence[Array], root: int) -> list[Array]:
    """Every rank's buffer becomes the root's."""
    return [np.array(bufimgs[root], copy=True) for _ in bufimgs]


def ref_scatter(
    rootsend: Array, recvimgs: Sequence[Array], count: int, root: int
) -> list[Array]:
    """Rank ``r`` receives block ``r`` of the root's send buffer."""
    out = _copies(recvimgs)
    for r in range(len(recvimgs)):
        out[r][:count] = rootsend[r * count : (r + 1) * count]
    return out


def ref_gather(
    sendimgs: Sequence[Array], recvimgs: Sequence[Array], count: int, root: int
) -> list[Array]:
    """The root's receive buffer becomes the rank-ordered concatenation."""
    out = _copies(recvimgs)
    for r, send in enumerate(sendimgs):
        out[root][r * count : (r + 1) * count] = send[:count]
    return out


def ref_allgather(
    sendimgs: Sequence[Array], recvimgs: Sequence[Array], count: int
) -> list[Array]:
    out = _copies(recvimgs)
    for dst in range(len(recvimgs)):
        for r, send in enumerate(sendimgs):
            out[dst][r * count : (r + 1) * count] = send[:count]
    return out


def ref_alltoall(
    sendimgs: Sequence[Array], recvimgs: Sequence[Array], count: int
) -> list[Array]:
    """Block transpose: dst's block ``src`` is src's block ``dst``."""
    out = _copies(recvimgs)
    for dst in range(len(recvimgs)):
        for src in range(len(sendimgs)):
            out[dst][src * count : (src + 1) * count] = sendimgs[src][
                dst * count : (dst + 1) * count
            ]
    return out


def ref_gatherv(
    sendimgs: Sequence[Array],
    recvimgs: Sequence[Array],
    counts: Sequence[int],
    displs: Sequence[int],
    root: int,
) -> list[Array]:
    """Rank ``r``'s ``counts[r]`` elements land at ``displs[r]`` on root."""
    out = _copies(recvimgs)
    for r, send in enumerate(sendimgs):
        c, d = counts[r], displs[r]
        out[root][d : d + c] = send[:c]
    return out


def ref_scatterv(
    rootsend: Array,
    recvimgs: Sequence[Array],
    counts: Sequence[int],
    displs: Sequence[int],
    root: int,
) -> list[Array]:
    out = _copies(recvimgs)
    for r in range(len(recvimgs)):
        c, d = counts[r], displs[r]
        out[r][:c] = rootsend[d : d + c]
    return out


def ref_allgatherv(
    sendimgs: Sequence[Array],
    recvimgs: Sequence[Array],
    counts: Sequence[int],
    displs: Sequence[int],
) -> list[Array]:
    out = _copies(recvimgs)
    for dst in range(len(recvimgs)):
        for r, send in enumerate(sendimgs):
            c, d = counts[r], displs[r]
            out[dst][d : d + c] = send[:c]
    return out


def ref_alltoallv(
    sendimgs: Sequence[Array],
    recvimgs: Sequence[Array],
    sendcounts: Sequence[Sequence[int]],
    sdispls: Sequence[Sequence[int]],
    recvcounts: Sequence[Sequence[int]],
    rdispls: Sequence[Sequence[int]],
) -> list[Array]:
    """``sendcounts[src][dst]`` elements flow from src's ``sdispls[src][dst]``
    to dst's ``rdispls[dst][src]`` (all in elements of the one datatype)."""
    out = _copies(recvimgs)
    for dst in range(len(recvimgs)):
        for src in range(len(sendimgs)):
            c = sendcounts[src][dst]
            sd = sdispls[src][dst]
            rd = rdispls[dst][src]
            out[dst][rd : rd + c] = sendimgs[src][sd : sd + c]
    return out


def ref_alltoallw(
    sendbytes: Sequence[Array],
    recvbytes: Sequence[Array],
    sendcounts: Sequence[Sequence[int]],
    sdispls: Sequence[Sequence[int]],
    sendsizes: Sequence[Sequence[int]],
    recvcounts: Sequence[Sequence[int]],
    rdispls: Sequence[Sequence[int]],
    recvsizes: Sequence[Sequence[int]],
) -> list[Array]:
    """Byte-image semantics: displacements in bytes, per-peer datatypes.

    ``sendsizes[src][dst]`` is the element size of ``sendtypes[dst]`` on
    ``src``; the pairwise byte volumes must agree (clean-draw invariant).
    """
    out = _copies(recvbytes)
    for dst in range(len(recvbytes)):
        for src in range(len(sendbytes)):
            nbytes = sendcounts[src][dst] * sendsizes[src][dst]
            assert nbytes == recvcounts[dst][src] * recvsizes[dst][src], (
                "conformance draws must pair matching byte volumes"
            )
            sd = sdispls[src][dst]
            rd = rdispls[dst][src]
            out[dst][rd : rd + nbytes] = sendbytes[src][sd : sd + nbytes]
    return out


# -- reductions -------------------------------------------------------------


def ref_reduce(
    sendimgs: Sequence[Array],
    recvimgs: Sequence[Array],
    op: ReduceOp,
    np_dtype: np.dtype,
    root: int,
) -> list[Array]:
    """Only the root's receive buffer is written (canonical fold)."""
    out = _copies(recvimgs)
    count = min(len(img) for img in sendimgs)
    out[root][:count] = fold(op, [img[:count] for img in sendimgs], np_dtype)
    return out


def ref_allreduce(
    sendimgs: Sequence[Array],
    recvimgs: Sequence[Array],
    op: ReduceOp,
    np_dtype: np.dtype,
) -> list[Array]:
    out = _copies(recvimgs)
    count = min(len(img) for img in sendimgs)
    total = fold(op, [img[:count] for img in sendimgs], np_dtype)
    for r in range(len(recvimgs)):
        out[r][:count] = total
    return out


def ref_reduce_scatter_block(
    sendimgs: Sequence[Array],
    recvimgs: Sequence[Array],
    op: ReduceOp,
    np_dtype: np.dtype,
    recvcount: int,
) -> list[Array]:
    """Full fold, then rank ``r`` keeps block ``r``."""
    out = _copies(recvimgs)
    total = fold(op, sendimgs, np_dtype)
    for r in range(len(recvimgs)):
        out[r][:recvcount] = total[r * recvcount : (r + 1) * recvcount]
    return out


def ref_scan(
    sendimgs: Sequence[Array],
    recvimgs: Sequence[Array],
    op: ReduceOp,
    np_dtype: np.dtype,
) -> list[Array]:
    """Inclusive prefix: rank ``r`` gets the fold of ranks ``0..r``."""
    out = _copies(recvimgs)
    count = min(len(img) for img in sendimgs)
    for r in range(len(sendimgs)):
        out[r][:count] = fold(op, [img[:count] for img in sendimgs[: r + 1]], np_dtype)
    return out


def ref_exscan(
    sendimgs: Sequence[Array],
    recvimgs: Sequence[Array],
    op: ReduceOp,
    np_dtype: np.dtype,
) -> list[Array]:
    """Exclusive prefix: rank ``r`` gets the fold of ranks ``0..r-1``;
    rank 0's receive buffer is untouched (MPI leaves it undefined; the
    simulator's defined behaviour is "unwritten")."""
    out = _copies(recvimgs)
    count = min(len(img) for img in sendimgs)
    for r in range(1, len(sendimgs)):
        out[r][:count] = fold(op, [img[:count] for img in sendimgs[:r]], np_dtype)
    return out
