"""``repro.verify`` — the independent oracle for the simulator stack.

Every paper figure rests on :mod:`repro.simmpi` faithfully reproducing
MPI collective semantics, and every scaling PR rewrites some hot part
of it.  This package is the cross-check that keeps those two facts
compatible:

* :mod:`repro.verify.reference` — a pure-numpy, schedule-free model of
  each collective's mathematical semantics;
* :mod:`repro.verify.conformance` — a differential harness fuzzing
  every algorithm variant against the reference;
* :mod:`repro.verify.replay` — deterministic scheduler replay logs and
  a bit-identical replayer;
* :mod:`repro.verify.mutants` — seeded defects proving the harness has
  teeth (a verifier that cannot fail a broken simulator verifies
  nothing);
* :mod:`repro.verify.models` — model-conformance witnesses pinning every
  composable fault model to its expected Table-I response, plus seeded
  delivery-layer mutants the witness sweep must catch;
* :mod:`repro.verify.snapshot_check` — the fork-equivalence oracle for
  the snapshot-and-fork engine (forked test streams must fingerprint
  identically to from-scratch replays; seeded engine mutants must be
  caught);
* sanitizers live in :mod:`repro.simmpi.sanitize` (they are wired
  through the runtime) and are re-exported here.
"""

from ..simmpi.sanitize import Sanitizer, SanitizerViolation, Violation
from .conformance import (
    CaseFailure,
    CollectiveReport,
    ConformanceReport,
    FUZZED_COLLECTIVES,
    run_conformance,
)
from .models import (
    MODEL_MUTANTS,
    WITNESSES,
    ModelConformanceReport,
    ModelMutant,
    ModelWitness,
    WitnessResult,
    model_conformance,
    run_witness,
    seeded_model_mutant,
)
from .mutants import MUTANTS, seeded_mutant
from .replay import ReplayLog, ReplayReport, record_run, replay_run
from .sanitize_sweep import SweepResult, sanitize_sweep
from .snapshot_check import ForkEquivalenceReport, fork_equivalence

__all__ = [
    "ForkEquivalenceReport",
    "CaseFailure",
    "CollectiveReport",
    "ConformanceReport",
    "FUZZED_COLLECTIVES",
    "MODEL_MUTANTS",
    "MUTANTS",
    "ModelConformanceReport",
    "ModelMutant",
    "ModelWitness",
    "ReplayLog",
    "ReplayReport",
    "Sanitizer",
    "SanitizerViolation",
    "SweepResult",
    "Violation",
    "WITNESSES",
    "WitnessResult",
    "fork_equivalence",
    "model_conformance",
    "record_run",
    "replay_run",
    "run_conformance",
    "run_witness",
    "sanitize_sweep",
    "seeded_model_mutant",
    "seeded_mutant",
]
