"""Differential conformance: fuzz every collective against the reference.

For each collective the harness draws randomized cases — rank counts
mixing powers of two and odd sizes (including single-rank communicators),
every basic datatype, zero and ragged counts, adversarial displacement
layouts, all roots, and every reduction op legal for the drawn datatype,
including two *non-commutative* test ops — runs the real simulator
drivers under **every algorithm variant**, and diffs the resulting
buffer images against :mod:`repro.verify.reference`.

Every fuzz run also executes with the sanitizer armed, so the
conformance sweep doubles as a sanitizer soak: a clean draw that trips
``unmatched_message`` or ``short_recv`` is reported as a failure even
when the data comes out right.

Values are drawn as small integers cast into the target datatype, so
every reduction is exact in every dtype (float sums of small integers
round nowhere) and comparisons are **bit-exact** — no tolerance to hide
a real divergence behind.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from ..simmpi.ops import ReduceOp, make_op_space
from ..simmpi.runtime import run_app
from . import reference as ref

#: Non-commutative (but associative) test ops.  ``TAKELEFT`` folds to the
#: first operand in canonical order, ``TAKERIGHT`` to the last — any
#: driver that reorders operands returns the wrong rank's contribution.
NONCOMMUTATIVE_OPS: tuple[ReduceOp, ...] = (
    ReduceOp("FF_TAKELEFT", lambda a, b: a, commutative=False),
    ReduceOp("FF_TAKERIGHT", lambda a, b: b, commutative=False),
)

_OP_SPACE, _OP_HANDLES = make_op_space(extra_ops=NONCOMMUTATIVE_OPS)
OP_BY_NAME: dict[str, ReduceOp] = {
    name: _OP_SPACE.resolve(handle) for name, handle in _OP_HANDLES.items()
}

#: Basic datatypes the fuzzer draws from (name → numpy dtype).
_DTYPES: dict[str, np.dtype] = {
    "MPI_CHAR": np.dtype("i1"),
    "MPI_INT": np.dtype("i4"),
    "MPI_LONG": np.dtype("i8"),
    "MPI_FLOAT": np.dtype("f4"),
    "MPI_DOUBLE": np.dtype("f8"),
    "MPI_UNSIGNED": np.dtype("u4"),
    "MPI_UNSIGNED_LONG": np.dtype("u8"),
    "MPI_COMPLEX": np.dtype("c8"),
    "MPI_DOUBLE_COMPLEX": np.dtype("c16"),
    "MPI_BYTE": np.dtype("u1"),
}

#: Small per-run arena: fuzz buffers are tiny and a fresh default-size
#: arena per case would dominate the harness runtime.
_ARENA = 1 << 16


# -- reports ----------------------------------------------------------------


@dataclass(frozen=True)
class CaseFailure:
    """One divergence between a driver and the reference model."""

    collective: str
    algorithm: str
    case: int
    detail: str

    def describe(self) -> str:
        return f"{self.collective}[{self.algorithm}] case {self.case}: {self.detail}"


@dataclass
class CollectiveReport:
    """Conformance outcome for one collective."""

    name: str
    cases: int = 0
    checks: int = 0
    failures: list[CaseFailure] = field(default_factory=list)
    #: Failures beyond the per-collective retention cap.
    suppressed: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures and not self.suppressed


@dataclass
class ConformanceReport:
    """Aggregate result of one conformance sweep."""

    seed: int
    draws_per_collective: int
    mutant: str | None
    reports: dict[str, CollectiveReport] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.reports.values())

    @property
    def total_cases(self) -> int:
        return sum(r.cases for r in self.reports.values())

    @property
    def total_checks(self) -> int:
        return sum(r.checks for r in self.reports.values())

    @property
    def failures(self) -> list[CaseFailure]:
        return [f for r in self.reports.values() for f in r.failures]

    def describe(self) -> str:
        head = f"conformance seed={self.seed} draws={self.draws_per_collective}"
        if self.mutant:
            head += f" mutant={self.mutant}"
        lines = [head]
        for name, rep in self.reports.items():
            status = "ok" if rep.ok else f"{len(rep.failures) + rep.suppressed} FAILURES"
            lines.append(f"  {name:<16} {rep.cases:>4} cases {rep.checks:>6} checks  {status}")
        for f in self.failures[:20]:
            lines.append(f"  !! {f.describe()}")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "draws_per_collective": self.draws_per_collective,
            "mutant": self.mutant,
            "ok": self.ok,
            "total_cases": self.total_cases,
            "total_checks": self.total_checks,
            "collectives": {
                name: {
                    "cases": r.cases,
                    "checks": r.checks,
                    "ok": r.ok,
                    "failures": [f.describe() for f in r.failures],
                    "suppressed": r.suppressed,
                }
                for name, r in self.reports.items()
            },
        }


# -- drawing helpers --------------------------------------------------------


def _draw_n(rng: np.random.Generator) -> int:
    """Communicator size: 1..8, mixing powers of two and odd sizes."""
    return int(rng.integers(1, 9))


def _draw_dtype(rng: np.random.Generator) -> tuple[str, np.dtype]:
    names = list(_DTYPES)
    name = names[int(rng.integers(0, len(names)))]
    return name, _DTYPES[name]


def _draw_op(rng: np.random.Generator, np_dtype: np.dtype) -> ReduceOp:
    names = ["MPI_SUM", "MPI_PROD", "FF_TAKELEFT", "FF_TAKERIGHT"]
    if np_dtype.kind != "c":
        names += ["MPI_MAX", "MPI_MIN", "MPI_LAND", "MPI_LOR"]
    if np_dtype.kind in "iu":
        names += ["MPI_BAND", "MPI_BOR", "MPI_BXOR"]
    return OP_BY_NAME[names[int(rng.integers(0, len(names)))]]


def _draw_values(rng: np.random.Generator, count: int, np_dtype: np.dtype) -> np.ndarray:
    """Small-integer payloads: exact in every dtype, any fold order."""
    if np_dtype.kind == "c":
        re_part = rng.integers(-4, 5, size=count)
        im_part = rng.integers(-4, 5, size=count)
        return (re_part + 1j * im_part).astype(np_dtype)
    if np_dtype.kind == "u":
        return rng.integers(0, 9, size=count).astype(np_dtype)
    return rng.integers(-4, 5, size=count).astype(np_dtype)


def _sentinel(count: int, np_dtype: np.dtype) -> np.ndarray:
    """Receive-buffer fill that no drawn payload can equal."""
    base = np.arange(count) % 23 + 101
    if np_dtype.kind == "c":
        return (base + 7j).astype(np_dtype)
    return base.astype(np_dtype)


def _draw_layout(
    rng: np.random.Generator, counts: Sequence[int]
) -> tuple[list[int], int]:
    """Non-overlapping displacements in a random block order with random
    gaps; returns ``(displs, buffer_size)`` in elements."""
    displs = [0] * len(counts)
    pos = int(rng.integers(0, 3))
    for i in rng.permutation(len(counts)):
        displs[int(i)] = pos
        pos += int(counts[int(i)]) + int(rng.integers(0, 3))
    return displs, pos + int(rng.integers(0, 4))


def _op_attr(op: ReduceOp) -> str:
    return op.name.removeprefix("MPI_")


def _dt_attr(name: str) -> str:
    return name.removeprefix("MPI_")


def _mismatch(key: str, rank: int, expected: np.ndarray, got: np.ndarray) -> str:
    exp_s = np.array2string(expected, threshold=24)
    got_s = np.array2string(got, threshold=24)
    return f"rank {rank} {key}: expected {exp_s}, got {got_s}"


# -- per-collective case generators ----------------------------------------
#
# Each generator draws one randomized case and returns a ``_Case``: the
# rank count, an app generator-function closing over the drawn images,
# the expected final images per rank (dict key → array, matching the
# app's return dict), and the (label, algorithms) variants to execute.


@dataclass
class _Case:
    nranks: int
    app: Callable
    expected: list[dict[str, np.ndarray]]
    variants: tuple[tuple[str, dict[str, str] | None], ...] = (("default", None),)


def _case_bcast(rng: np.random.Generator) -> _Case:
    n = _draw_n(rng)
    dt_name, np_dt = _draw_dtype(rng)
    count = int(rng.integers(0, 13))
    root = int(rng.integers(0, n))
    imgs = [_draw_values(rng, count, np_dt) for _ in range(n)]

    def app(ctx):
        buf = ctx.alloc(count, getattr(ctx, _dt_attr(dt_name)), "buf")
        buf.view[:] = imgs[ctx.rank]
        yield from ctx.Bcast(buf.addr, count, getattr(ctx, _dt_attr(dt_name)), root, ctx.WORLD)
        return {"buf": np.array(buf.view, copy=True)}

    expected = [{"buf": img} for img in ref.ref_bcast(imgs, root)]
    return _Case(
        n, app, expected,
        variants=(("binomial", {"bcast": "binomial"}), ("chain", {"bcast": "chain"})),
    )


def _reduction_case(rng: np.random.Generator, which: str) -> _Case:
    n = _draw_n(rng)
    dt_name, np_dt = _draw_dtype(rng)
    op = _draw_op(rng, np_dt)
    count = int(rng.integers(0, 13))
    root = int(rng.integers(0, n))
    sends = [_draw_values(rng, count, np_dt) for _ in range(n)]
    recvs = [_sentinel(count, np_dt) for _ in range(n)]

    def app(ctx):
        dt = getattr(ctx, _dt_attr(dt_name))
        sbuf = ctx.alloc(count, dt, "send")
        rbuf = ctx.alloc(count, dt, "recv")
        sbuf.view[:] = sends[ctx.rank]
        rbuf.view[:] = recvs[ctx.rank]
        oph = getattr(ctx, _op_attr(op))
        if which == "Reduce":
            yield from ctx.Reduce(sbuf.addr, rbuf.addr, count, dt, oph, root, ctx.WORLD)
        elif which == "Allreduce":
            yield from ctx.Allreduce(sbuf.addr, rbuf.addr, count, dt, oph, ctx.WORLD)
        elif which == "Scan":
            yield from ctx.Scan(sbuf.addr, rbuf.addr, count, dt, oph, ctx.WORLD)
        else:
            yield from ctx.Exscan(sbuf.addr, rbuf.addr, count, dt, oph, ctx.WORLD)
        return {
            "send": np.array(sbuf.view, copy=True),
            "recv": np.array(rbuf.view, copy=True),
        }

    if which == "Reduce":
        out = ref.ref_reduce(sends, recvs, op, np_dt, root)
    elif which == "Allreduce":
        out = ref.ref_allreduce(sends, recvs, op, np_dt)
    elif which == "Scan":
        out = ref.ref_scan(sends, recvs, op, np_dt)
    else:
        out = ref.ref_exscan(sends, recvs, op, np_dt)
    expected = [{"send": sends[r], "recv": out[r]} for r in range(n)]

    variants: tuple[tuple[str, dict[str, str] | None], ...] = (("default", None),)
    if which == "Allreduce":
        vlist = [("reduce_bcast", {"allreduce": "reduce_bcast"})]
        if n & (n - 1) == 0:
            vlist.append(("recursive_doubling", {"allreduce": "recursive_doubling"}))
        variants = tuple(vlist)
    return _Case(n, app, expected, variants=variants)


def _case_reduce(rng):
    return _reduction_case(rng, "Reduce")


def _case_allreduce(rng):
    return _reduction_case(rng, "Allreduce")


def _case_scan(rng):
    return _reduction_case(rng, "Scan")


def _case_exscan(rng):
    return _reduction_case(rng, "Exscan")


def _case_reduce_scatter(rng: np.random.Generator) -> _Case:
    n = _draw_n(rng)
    dt_name, np_dt = _draw_dtype(rng)
    op = _draw_op(rng, np_dt)
    recvcount = int(rng.integers(0, 7))
    total = n * recvcount
    sends = [_draw_values(rng, total, np_dt) for _ in range(n)]
    recvs = [_sentinel(recvcount, np_dt) for _ in range(n)]

    def app(ctx):
        dt = getattr(ctx, _dt_attr(dt_name))
        sbuf = ctx.alloc(total, dt, "send")
        rbuf = ctx.alloc(recvcount, dt, "recv")
        sbuf.view[:] = sends[ctx.rank]
        rbuf.view[:] = recvs[ctx.rank]
        yield from ctx.Reduce_scatter(
            sbuf.addr, rbuf.addr, recvcount, dt, getattr(ctx, _op_attr(op)), ctx.WORLD
        )
        return {
            "send": np.array(sbuf.view, copy=True),
            "recv": np.array(rbuf.view, copy=True),
        }

    out = ref.ref_reduce_scatter_block(sends, recvs, op, np_dt, recvcount)
    expected = [{"send": sends[r], "recv": out[r]} for r in range(n)]
    return _Case(n, app, expected)


def _case_scatter(rng: np.random.Generator) -> _Case:
    n = _draw_n(rng)
    dt_name, np_dt = _draw_dtype(rng)
    count = int(rng.integers(0, 13))
    root = int(rng.integers(0, n))
    rootsend = _draw_values(rng, n * count, np_dt)
    recvs = [_sentinel(count, np_dt) for _ in range(n)]

    def app(ctx):
        dt = getattr(ctx, _dt_attr(dt_name))
        sbuf = ctx.alloc(n * count, dt, "send")
        rbuf = ctx.alloc(count, dt, "recv")
        if ctx.rank == root:
            sbuf.view[:] = rootsend
        rbuf.view[:] = recvs[ctx.rank]
        yield from ctx.Scatter(sbuf.addr, count, rbuf.addr, count, dt, root, ctx.WORLD)
        return {"recv": np.array(rbuf.view, copy=True)}

    out = ref.ref_scatter(rootsend, recvs, count, root)
    return _Case(n, app, [{"recv": out[r]} for r in range(n)])


def _case_gather(rng: np.random.Generator) -> _Case:
    n = _draw_n(rng)
    dt_name, np_dt = _draw_dtype(rng)
    count = int(rng.integers(0, 13))
    root = int(rng.integers(0, n))
    sends = [_draw_values(rng, count, np_dt) for _ in range(n)]
    recvs = [_sentinel(n * count, np_dt) for _ in range(n)]

    def app(ctx):
        dt = getattr(ctx, _dt_attr(dt_name))
        sbuf = ctx.alloc(count, dt, "send")
        rbuf = ctx.alloc(n * count, dt, "recv")
        sbuf.view[:] = sends[ctx.rank]
        rbuf.view[:] = recvs[ctx.rank]
        yield from ctx.Gather(sbuf.addr, count, rbuf.addr, count, dt, root, ctx.WORLD)
        return {"recv": np.array(rbuf.view, copy=True)}

    out = ref.ref_gather(sends, recvs, count, root)
    return _Case(n, app, [{"recv": out[r]} for r in range(n)])


def _case_allgather(rng: np.random.Generator) -> _Case:
    n = _draw_n(rng)
    dt_name, np_dt = _draw_dtype(rng)
    count = int(rng.integers(0, 13))
    sends = [_draw_values(rng, count, np_dt) for _ in range(n)]
    recvs = [_sentinel(n * count, np_dt) for _ in range(n)]

    def app(ctx):
        dt = getattr(ctx, _dt_attr(dt_name))
        sbuf = ctx.alloc(count, dt, "send")
        rbuf = ctx.alloc(n * count, dt, "recv")
        sbuf.view[:] = sends[ctx.rank]
        rbuf.view[:] = recvs[ctx.rank]
        yield from ctx.Allgather(sbuf.addr, count, rbuf.addr, count, dt, ctx.WORLD)
        return {"recv": np.array(rbuf.view, copy=True)}

    out = ref.ref_allgather(sends, recvs, count)
    return _Case(n, app, [{"recv": out[r]} for r in range(n)])


def _case_alltoall(rng: np.random.Generator) -> _Case:
    n = _draw_n(rng)
    dt_name, np_dt = _draw_dtype(rng)
    count = int(rng.integers(0, 13))
    sends = [_draw_values(rng, n * count, np_dt) for _ in range(n)]
    recvs = [_sentinel(n * count, np_dt) for _ in range(n)]

    def app(ctx):
        dt = getattr(ctx, _dt_attr(dt_name))
        sbuf = ctx.alloc(n * count, dt, "send")
        rbuf = ctx.alloc(n * count, dt, "recv")
        sbuf.view[:] = sends[ctx.rank]
        rbuf.view[:] = recvs[ctx.rank]
        yield from ctx.Alltoall(sbuf.addr, count, rbuf.addr, count, dt, ctx.WORLD)
        return {"recv": np.array(rbuf.view, copy=True)}

    out = ref.ref_alltoall(sends, recvs, count)
    return _Case(n, app, [{"recv": out[r]} for r in range(n)])


def _case_gatherv(rng: np.random.Generator) -> _Case:
    n = _draw_n(rng)
    dt_name, np_dt = _draw_dtype(rng)
    root = int(rng.integers(0, n))
    counts = [int(rng.integers(0, 7)) for _ in range(n)]
    displs, rsize = _draw_layout(rng, counts)
    sends = [_draw_values(rng, counts[r], np_dt) for r in range(n)]
    recvs = [_sentinel(rsize, np_dt) for _ in range(n)]

    def app(ctx):
        dt = getattr(ctx, _dt_attr(dt_name))
        me = ctx.rank
        sbuf = ctx.alloc(counts[me], dt, "send")
        rbuf = ctx.alloc(rsize, dt, "recv")
        sbuf.view[:] = sends[me]
        rbuf.view[:] = recvs[me]
        yield from ctx.Gatherv(
            sbuf.addr, counts[me], rbuf.addr, counts, displs, dt, root, ctx.WORLD
        )
        return {"recv": np.array(rbuf.view, copy=True)}

    out = ref.ref_gatherv(sends, recvs, counts, displs, root)
    return _Case(n, app, [{"recv": out[r]} for r in range(n)])


def _case_scatterv(rng: np.random.Generator) -> _Case:
    n = _draw_n(rng)
    dt_name, np_dt = _draw_dtype(rng)
    root = int(rng.integers(0, n))
    counts = [int(rng.integers(0, 7)) for _ in range(n)]
    displs, ssize = _draw_layout(rng, counts)
    rootsend = _draw_values(rng, ssize, np_dt)
    recvs = [_sentinel(counts[r], np_dt) for r in range(n)]

    def app(ctx):
        dt = getattr(ctx, _dt_attr(dt_name))
        me = ctx.rank
        sbuf = ctx.alloc(ssize, dt, "send")
        rbuf = ctx.alloc(counts[me], dt, "recv")
        if me == root:
            sbuf.view[:] = rootsend
        rbuf.view[:] = recvs[me]
        yield from ctx.Scatterv(
            sbuf.addr, counts, displs, rbuf.addr, counts[me], dt, root, ctx.WORLD
        )
        return {"recv": np.array(rbuf.view, copy=True)}

    out = ref.ref_scatterv(rootsend, recvs, counts, displs, root)
    return _Case(n, app, [{"recv": out[r]} for r in range(n)])


def _case_allgatherv(rng: np.random.Generator) -> _Case:
    n = _draw_n(rng)
    dt_name, np_dt = _draw_dtype(rng)
    counts = [int(rng.integers(0, 7)) for _ in range(n)]
    displs, rsize = _draw_layout(rng, counts)
    sends = [_draw_values(rng, counts[r], np_dt) for r in range(n)]
    recvs = [_sentinel(rsize, np_dt) for _ in range(n)]

    def app(ctx):
        dt = getattr(ctx, _dt_attr(dt_name))
        me = ctx.rank
        sbuf = ctx.alloc(counts[me], dt, "send")
        rbuf = ctx.alloc(rsize, dt, "recv")
        sbuf.view[:] = sends[me]
        rbuf.view[:] = recvs[me]
        yield from ctx.Allgatherv(
            sbuf.addr, counts[me], rbuf.addr, counts, displs, dt, ctx.WORLD
        )
        return {"recv": np.array(rbuf.view, copy=True)}

    out = ref.ref_allgatherv(sends, recvs, counts, displs)
    return _Case(n, app, [{"recv": out[r]} for r in range(n)])


def _case_alltoallv(rng: np.random.Generator) -> _Case:
    n = _draw_n(rng)
    dt_name, np_dt = _draw_dtype(rng)
    # counts[src][dst]: src sends counts[src][dst] elements to dst.
    counts = [[int(rng.integers(0, 6)) for _ in range(n)] for _ in range(n)]
    sdispls, ssizes, rdispls, rsizes = [], [], [], []
    for r in range(n):
        sd, ss = _draw_layout(rng, counts[r])
        sdispls.append(sd)
        ssizes.append(ss)
        rcounts_r = [counts[src][r] for src in range(n)]
        rd, rs = _draw_layout(rng, rcounts_r)
        rdispls.append(rd)
        rsizes.append(rs)
    recvcounts = [[counts[src][dst] for src in range(n)] for dst in range(n)]
    sends = [_draw_values(rng, ssizes[r], np_dt) for r in range(n)]
    recvs = [_sentinel(rsizes[r], np_dt) for r in range(n)]

    def app(ctx):
        dt = getattr(ctx, _dt_attr(dt_name))
        me = ctx.rank
        sbuf = ctx.alloc(ssizes[me], dt, "send")
        rbuf = ctx.alloc(rsizes[me], dt, "recv")
        sbuf.view[:] = sends[me]
        rbuf.view[:] = recvs[me]
        yield from ctx.Alltoallv(
            sbuf.addr, counts[me], sdispls[me],
            rbuf.addr, recvcounts[me], rdispls[me], dt, ctx.WORLD,
        )
        return {"recv": np.array(rbuf.view, copy=True)}

    out = ref.ref_alltoallv(sends, recvs, counts, sdispls, recvcounts, rdispls)
    return _Case(n, app, [{"recv": out[r]} for r in range(n)])


def _case_alltoallw(rng: np.random.Generator) -> _Case:
    n = _draw_n(rng)
    dt_names = list(_DTYPES)
    # types[src][dst]: the one datatype used for the (src → dst) pair.
    types = [
        [dt_names[int(rng.integers(0, len(dt_names)))] for _ in range(n)]
        for _ in range(n)
    ]
    counts = [[int(rng.integers(0, 5)) for _ in range(n)] for _ in range(n)]
    sizes = [[_DTYPES[types[s][d]].itemsize for d in range(n)] for s in range(n)]

    # Byte-granular displacement layouts over byte buffers.
    sdispls, ssizes, rdispls, rsizes = [], [], [], []
    for r in range(n):
        sbytes = [counts[r][d] * sizes[r][d] for d in range(n)]
        sd, ss = _draw_layout(rng, sbytes)
        sdispls.append(sd)
        ssizes.append(ss)
        rbytes = [counts[src][r] * sizes[src][r] for src in range(n)]
        rd, rs = _draw_layout(rng, rbytes)
        rdispls.append(rd)
        rsizes.append(rs)
    recvcounts = [[counts[src][dst] for src in range(n)] for dst in range(n)]
    recvsizes = [[sizes[src][dst] for src in range(n)] for dst in range(n)]
    recvtypes = [[types[src][dst] for src in range(n)] for dst in range(n)]
    u1 = np.dtype("u1")
    sends = [rng.integers(0, 256, size=ssizes[r]).astype(u1) for r in range(n)]
    recvs = [_sentinel(rsizes[r], u1) for r in range(n)]

    def app(ctx):
        me = ctx.rank
        sbuf = ctx.alloc(ssizes[me], ctx.BYTE, "send")
        rbuf = ctx.alloc(rsizes[me], ctx.BYTE, "recv")
        sbuf.view[:] = sends[me]
        rbuf.view[:] = recvs[me]
        stypes = [getattr(ctx, _dt_attr(name)) for name in types[me]]
        rtypes = [getattr(ctx, _dt_attr(name)) for name in recvtypes[me]]
        yield from ctx.Alltoallw(
            sbuf.addr, counts[me], sdispls[me], stypes,
            rbuf.addr, recvcounts[me], rdispls[me], rtypes, ctx.WORLD,
        )
        return {"recv": np.array(rbuf.view, copy=True)}

    out = ref.ref_alltoallw(
        sends, recvs, counts, sdispls, sizes, recvcounts, rdispls, recvsizes
    )
    return _Case(n, app, [{"recv": out[r]} for r in range(n)])


def _case_barrier(rng: np.random.Generator) -> _Case:
    n = _draw_n(rng)
    rounds = int(rng.integers(1, 4))

    def app(ctx):
        for _ in range(rounds):
            yield from ctx.Barrier(ctx.WORLD)
        return {"done": np.array([rounds])}

    return _Case(n, app, [{"done": np.array([rounds])} for _ in range(n)])


_CASES: dict[str, Callable[[np.random.Generator], _Case]] = {
    "Bcast": _case_bcast,
    "Reduce": _case_reduce,
    "Allreduce": _case_allreduce,
    "Scatter": _case_scatter,
    "Gather": _case_gather,
    "Allgather": _case_allgather,
    "Alltoall": _case_alltoall,
    "Alltoallv": _case_alltoallv,
    "Alltoallw": _case_alltoallw,
    "Gatherv": _case_gatherv,
    "Scatterv": _case_scatterv,
    "Allgatherv": _case_allgatherv,
    "Scan": _case_scan,
    "Exscan": _case_exscan,
    "Reduce_scatter": _case_reduce_scatter,
    "Barrier": _case_barrier,
}

#: Every collective the fuzzer covers (all of the simulator's 16).
FUZZED_COLLECTIVES: tuple[str, ...] = tuple(_CASES)

#: Retain at most this many failure records per collective.
_MAX_FAILURES = 10


def run_conformance(
    seed: int = 0,
    draws_per_collective: int = 200,
    collectives: Sequence[str] | None = None,
    mutant: str | None = None,
    progress: Callable[[str, CollectiveReport], None] | None = None,
) -> ConformanceReport:
    """Fuzz every collective (or the named subset) against the reference.

    Each draw derives its RNG from ``SeedSequence(seed, spawn_key=
    (collective_index, draw))``, so any failing case can be re-run in
    isolation.  ``mutant`` installs a named seeded defect (see
    :mod:`repro.verify.mutants`) for the duration of the sweep — the
    self-test that proves the harness can fail.
    """
    from .mutants import seeded_mutant  # local to keep module deps one-way

    names = list(collectives) if collectives is not None else list(FUZZED_COLLECTIVES)
    for name in names:
        if name not in _CASES:
            raise ValueError(
                f"unknown collective {name!r}; choices: {', '.join(FUZZED_COLLECTIVES)}"
            )

    report = ConformanceReport(
        seed=seed, draws_per_collective=draws_per_collective, mutant=mutant
    )
    guard = seeded_mutant(mutant) if mutant else nullcontext()
    with guard:
        for name in names:
            ci = FUZZED_COLLECTIVES.index(name)
            rep = CollectiveReport(name=name)
            for draw in range(draws_per_collective):
                rng = np.random.default_rng(
                    np.random.SeedSequence(seed, spawn_key=(ci, draw))
                )
                case = _CASES[name](rng)
                for label, algorithms in case.variants:
                    rep.cases += 1
                    _run_one(name, label, draw, case, algorithms, rep)
            report.reports[name] = rep
            if progress is not None:
                progress(name, rep)
    return report


def _record_failure(rep: CollectiveReport, failure: CaseFailure) -> None:
    if len(rep.failures) < _MAX_FAILURES:
        rep.failures.append(failure)
    else:
        rep.suppressed += 1


def _run_one(
    name: str,
    label: str,
    draw: int,
    case: _Case,
    algorithms: dict[str, str] | None,
    rep: CollectiveReport,
) -> None:
    try:
        result = run_app(
            case.app,
            case.nranks,
            algorithms=algorithms,
            arena_size=_ARENA,
            sanitize=True,
            extra_ops=NONCOMMUTATIVE_OPS,
        )
    except Exception as exc:  # any abort is a conformance failure
        rep.checks += 1
        _record_failure(
            rep, CaseFailure(name, label, draw, f"{type(exc).__name__}: {exc}")
        )
        return

    if result.sanitizer is not None and result.sanitizer.violations:
        _record_failure(
            rep,
            CaseFailure(
                name, label, draw,
                "sanitizer: " + "; ".join(
                    v.describe() for v in result.sanitizer.violations[:3]
                ),
            ),
        )
    for rank, (exp, act) in enumerate(zip(case.expected, result.results)):
        for key, earr in exp.items():
            rep.checks += 1
            aarr = act[key]
            if not np.array_equal(earr, aarr):
                _record_failure(
                    rep,
                    CaseFailure(name, label, draw, _mismatch(key, rank, earr, aarr)),
                )
