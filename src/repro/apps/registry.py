"""Workload registry: name → application factory."""

from __future__ import annotations

from .base import Application
from .lammps.minimd import MiniMD
from .npb.cg_kernel import CGKernel
from .npb.ft_kernel import FTKernel
from .npb.is_kernel import ISKernel
from .npb.lu_kernel import LUKernel
from .npb.mg_kernel import MGKernel

#: All registered applications, keyed by registry name.
APPLICATIONS: dict[str, type[Application]] = {
    cls.name: cls for cls in (ISKernel, FTKernel, MGKernel, LUKernel, CGKernel, MiniMD)
}

#: The NPB subset the paper evaluates (Figs. 7–9, Table III).  CG is an
#: extension workload and deliberately not part of the paper set.
NPB_NAMES = ("is", "ft", "mg", "lu")


def make_app(name: str, problem_class: str = "T") -> Application:
    """Instantiate a registered application by name and problem class."""
    try:
        cls = APPLICATIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; registered: {sorted(APPLICATIONS)}"
        ) from None
    return cls.from_problem_class(problem_class)
