"""``repro.apps`` — fault-injection workloads.

Miniature but faithful reconstructions of the paper's benchmarks: four
NPB kernels (IS, FT, MG, LU) and a mini-LAMMPS molecular-dynamics code,
all written against the :mod:`repro.simmpi` API.
"""

from .base import PROBLEM_CLASSES, Application, signatures_match
from .lammps.minimd import MiniMD
from .npb.cg_kernel import CGKernel
from .npb.ft_kernel import FTKernel
from .npb.is_kernel import ISKernel
from .npb.lu_kernel import LUKernel
from .npb.mg_kernel import MGKernel
from .registry import APPLICATIONS, NPB_NAMES, make_app

__all__ = [
    "APPLICATIONS",
    "Application",
    "CGKernel",
    "FTKernel",
    "ISKernel",
    "LUKernel",
    "MGKernel",
    "MiniMD",
    "NPB_NAMES",
    "PROBLEM_CLASSES",
    "make_app",
    "signatures_match",
]
