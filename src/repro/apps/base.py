"""Application interface for fault-injection workloads.

An :class:`Application` bundles an entry point (a generator function in
the :mod:`repro.simmpi` style), its problem parameters, and the
app-specific *golden comparison* used to detect silent data corruption
(``WRONG_ANS``).

Workloads follow the conventions FastFIT's analysis relies on:

* they call :meth:`~repro.simmpi.context.Context.set_phase` at phase
  transitions (``input`` → ``init`` → ``compute`` → ``end``), feeding the
  ``Phase`` ML feature;
* error-handling collectives live in helper functions whose names start
  with ``check_`` — the convention the ``ErrHal`` feature detects, our
  stand-in for the paper's manual identification of error-handling code;
* application self-checks abort via ``ctx.app_error(...)``
  (``APP_DETECTED``), and the final per-rank return value is the result
  signature compared against a golden run.
"""

from __future__ import annotations

import abc
from typing import Any, Generator

import numpy as np

from ..simmpi import Context

#: Problem classes: "T" (tiny — unit tests), "S" (small — campaign
#: benchmarks, 32 ranks as in the paper), "A" (bigger, for profiling).
PROBLEM_CLASSES = ("T", "S", "A")


def signatures_match(golden: Any, observed: Any, rtol: float, atol: float = 1e-12) -> bool:
    """Recursively compare result signatures with a tolerance.

    Handles nested lists/tuples/dicts of floats, ints, strings, and numpy
    arrays.  NaNs never match (a NaN result differs from a clean run).
    """
    if isinstance(golden, dict):
        return (
            isinstance(observed, dict)
            and golden.keys() == observed.keys()
            and all(signatures_match(golden[k], observed[k], rtol, atol) for k in golden)
        )
    if isinstance(golden, (list, tuple)):
        return (
            isinstance(observed, (list, tuple))
            and len(golden) == len(observed)
            and all(signatures_match(g, o, rtol, atol) for g, o in zip(golden, observed))
        )
    if isinstance(golden, (float, np.floating)) or isinstance(golden, np.ndarray):
        try:
            return bool(
                np.allclose(
                    np.asarray(golden, dtype=np.float64),
                    np.asarray(observed, dtype=np.float64),
                    rtol=rtol,
                    atol=atol,
                )
            )
        except (TypeError, ValueError):
            return False
    return bool(golden == observed)


class Application(abc.ABC):
    """A workload that can be profiled and fault-injected.

    Subclasses define ``name``, the per-class parameter presets
    (:meth:`class_params`), and :meth:`main`.
    """

    #: Registry name, e.g. ``"lu"``.
    name: str = ""
    #: Relative tolerance for the golden comparison (loose for
    #: statistically verified codes like molecular dynamics).
    rtol: float = 1e-9
    #: Whether identical inputs always produce an identical execution.
    #: Every shipped workload is deterministic by construction (no
    #: wall-clock, seeded RNG); an app that breaks that contract must set
    #: this False, which disables prefix snapshot-and-fork serving
    #: (:mod:`repro.snapshot`) in favour of full from-scratch replays.
    deterministic: bool = True

    def __init__(self, nranks: int, **params: Any):
        self.nranks = nranks
        self.params = dict(params)

    # -- construction ---------------------------------------------------

    @classmethod
    @abc.abstractmethod
    def class_params(cls, problem_class: str) -> dict[str, Any]:
        """Parameter preset for a problem class, including ``nranks``."""

    @classmethod
    def from_problem_class(cls, problem_class: str = "T") -> "Application":
        if problem_class not in PROBLEM_CLASSES:
            raise ValueError(
                f"unknown problem class {problem_class!r}; expected one of {PROBLEM_CLASSES}"
            )
        params = cls.class_params(problem_class)
        nranks = params.pop("nranks")
        return cls(nranks, **params)

    # -- execution --------------------------------------------------------

    @abc.abstractmethod
    def main(self, ctx: Context) -> Generator:
        """The per-rank entry point (generator function)."""

    def compare(self, golden: list[Any], observed: list[Any]) -> bool:
        """True when ``observed`` matches the golden signatures."""
        return signatures_match(golden, observed, self.rtol)

    # -- metadata ---------------------------------------------------------

    def describe(self) -> str:
        items = ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.name}(nranks={self.nranks}, {items})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()
