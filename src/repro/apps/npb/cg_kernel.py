"""CG — conjugate gradient on a synthetic SPD system, NPB-CG shaped.

An extension workload beyond the paper's four kernels: its column-block
decomposition exercises the collectives the others don't —
``Reduce_scatter`` distributes the matvec partial sums, ``Gatherv``
collects the solution at the root — alongside the usual ``Allreduce``
dot products and config ``Bcast``.

Each rank owns a column block of the (replicated, deterministically
generated) SPD matrix; ``y = A p`` is computed as full-length partials
reduced-and-scattered back to block ownership.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from ...simmpi import Context
from ..base import Application


class CGKernel(Application):
    """Conjugate gradient with column-block matvec."""

    name = "cg"
    rtol = 1e-8

    @classmethod
    def class_params(cls, problem_class: str) -> dict[str, Any]:
        return {
            "T": dict(nranks=4, n_per_rank=24, iterations=12, shift=8.0, seed=17),
            "S": dict(nranks=32, n_per_rank=8, iterations=15, shift=10.0, seed=17),
            "A": dict(nranks=32, n_per_rank=32, iterations=25, shift=12.0, seed=17),
        }[problem_class]

    def check_scalars(self, ctx: Context, bufs: dict, *values: float) -> Generator:
        """Error-handling collective: abort when any CG scalar went
        non-finite anywhere (breakdown detection)."""
        flag, gflag = bufs["flag"], bufs["flag_g"]
        flag.view[0] = 0 if all(np.isfinite(v) for v in values) else 1
        yield from ctx.Allreduce(flag.addr, gflag.addr, 1, ctx.INT, ctx.MAX, ctx.WORLD)
        if int(gflag.view[0]):
            ctx.app_error("CG: non-finite scalar (breakdown)")

    def _dot(self, ctx: Context, bufs: dict, a: np.ndarray, b: np.ndarray) -> Generator:
        loc, glob = bufs["dot"], bufs["dot_g"]
        loc.view[0] = float(a @ b)
        yield from ctx.Allreduce(loc.addr, glob.addr, 1, ctx.DOUBLE, ctx.SUM, ctx.WORLD)
        return float(glob.view[0])

    def main(self, ctx: Context) -> Generator:
        p = self.params
        nranks = ctx.size

        ctx.set_phase("input")
        cfg = ctx.alloc(5, ctx.LONG, "cg.cfg")
        if ctx.rank == 0:
            cfg.view[:] = (
                p["n_per_rank"],
                p["iterations"],
                int(p["shift"] * 1e6),
                p["seed"],
                0,
            )
        yield from ctx.Bcast(cfg.addr, 5, ctx.LONG, 0, ctx.WORLD)
        n_loc, iterations, shift_fx, seed = (int(v) for v in cfg.view[:4])
        if not (0 < n_loc <= 4096 and 0 < iterations <= 4096):
            ctx.app_error("CG: implausible configuration after broadcast")
        shift = shift_fx / 1e6

        ctx.set_phase("init")
        n = n_loc * nranks
        rng = np.random.default_rng(seed)  # same matrix on every rank
        base = rng.standard_normal((n, n)) / np.sqrt(n)
        a_full = base @ base.T + shift * np.eye(n)
        cols = slice(ctx.rank * n_loc, (ctx.rank + 1) * n_loc)
        a_cols = np.ascontiguousarray(a_full[:, cols])
        rhs_full = np.sin(np.arange(n) * 0.7) + 1.0
        b_loc = rhs_full[cols].copy()

        x = np.zeros(n_loc)
        r = b_loc.copy()
        pvec = ctx.alloc(n_loc, ctx.DOUBLE, "cg.p")
        pvec.view[:] = r
        partial = ctx.alloc(n, ctx.DOUBLE, "cg.partial")
        y = ctx.alloc(n_loc, ctx.DOUBLE, "cg.y")
        bufs = {
            "dot": ctx.alloc(1, ctx.DOUBLE, "cg.dot"),
            "dot_g": ctx.alloc(1, ctx.DOUBLE, "cg.dot_g"),
            "flag": ctx.alloc(1, ctx.INT, "cg.flag"),
            "flag_g": ctx.alloc(1, ctx.INT, "cg.flag_g"),
        }
        rho = yield from self._dot(ctx, bufs, r, r)
        rho0 = rho

        ctx.set_phase("compute")
        for it in range(iterations):
            yield from ctx.progress(n_loc)
            # Matvec: full-length partial from my columns, then
            # reduce-scatter back to block ownership.
            partial.view[:] = a_cols @ pvec.view
            yield from ctx.Reduce_scatter(
                partial.addr, y.addr, n_loc, ctx.DOUBLE, ctx.SUM, ctx.WORLD
            )
            denom = yield from self._dot(ctx, bufs, pvec.view, y.view)
            yield from self.check_scalars(ctx, bufs, rho, denom)
            if denom == 0.0:
                ctx.app_error("CG: zero curvature (breakdown)")
            alpha = rho / denom
            x = x + alpha * pvec.view
            r = r - alpha * y.view
            rho_new = yield from self._dot(ctx, bufs, r, r)
            beta = rho_new / rho if rho else 0.0
            pvec.view[:] = r + beta * pvec.view
            rho = rho_new

        if not np.isfinite(rho) or rho > 10.0 * rho0:
            ctx.app_error("CG: residual diverged")

        ctx.set_phase("end")
        counts = np.full(nranks, n_loc, dtype=np.int64)
        displs = np.arange(nranks, dtype=np.int64) * n_loc
        xbuf = ctx.alloc(n_loc, ctx.DOUBLE, "cg.x")
        xbuf.view[:] = x
        xfull = ctx.alloc(n, ctx.DOUBLE, "cg.xfull")
        yield from ctx.Gatherv(
            xbuf.addr, n_loc, xfull.addr, counts, displs, ctx.DOUBLE, 0, ctx.WORLD
        )
        return {
            "rnorm": float(np.sqrt(max(rho, 0.0))),
            "x_sum": float(xfull.view.sum()) if ctx.rank == 0 else None,
        }
