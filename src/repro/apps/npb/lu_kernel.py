"""LU — pipelined SSOR solver, NPB-LU shaped.

Communication skeleton, as in NPB LU: config broadcast, *wavefront*
pipelining — during the forward sweep each rank waits for the freshly
updated boundary row from the rank below it, sweeps its own rows, and
forwards its last row upward (the reverse sweep runs the pipeline the
other way) — a per-iteration ``Allreduce`` of the five residual norms
(NPB's five equations, here five column-strided components), and
periodic ``Barrier`` synchronisation.

This is the workload whose ``MPI_Allreduce`` the paper injects for
Fig. 1 (all ranks equivalent for a non-rooted collective).
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from ...simmpi import Context
from ..base import Application


class LUKernel(Application):
    """SSOR iteration for a 2-D Poisson problem, row-block decomposed."""

    name = "lu"
    rtol = 1e-9

    @classmethod
    def class_params(cls, problem_class: str) -> dict[str, Any]:
        return {
            "T": dict(nranks=4, rows_per_rank=8, ncols=32, iterations=8, omega=1.2, seed=99),
            "S": dict(nranks=32, rows_per_rank=4, ncols=64, iterations=10, omega=1.2, seed=99),
            "A": dict(nranks=32, rows_per_rank=16, ncols=128, iterations=25, omega=1.2, seed=99),
        }[problem_class]

    # -- helpers ---------------------------------------------------------

    def check_norms(self, ctx: Context, partial: np.ndarray, bufs: dict) -> Generator:
        """Allreduce the five residual-norm components and sanity-check
        them (NPB LU aborts on non-finite RSD norms)."""
        s, g = bufs["nrm"], bufs["nrm_g"]
        s.view[:] = partial
        yield from ctx.Allreduce(s.addr, g.addr, 5, ctx.DOUBLE, ctx.SUM, ctx.WORLD)
        norms = np.sqrt(np.maximum(g.view.copy(), 0.0))
        if not np.isfinite(norms).all():
            ctx.app_error("LU: residual norms are not finite")
        return norms

    @staticmethod
    def _residual(u: np.ndarray, f: np.ndarray, h2: float, below: np.ndarray, above: np.ndarray) -> np.ndarray:
        padded = np.zeros((u.shape[0] + 2, u.shape[1] + 2))
        padded[1:-1, 1:-1] = u
        padded[0, 1:-1] = below
        padded[-1, 1:-1] = above
        lap = (
            4.0 * padded[1:-1, 1:-1]
            - padded[:-2, 1:-1]
            - padded[2:, 1:-1]
            - padded[1:-1, :-2]
            - padded[1:-1, 2:]
        )
        return f - lap / h2

    # -- entry point -------------------------------------------------------

    def main(self, ctx: Context) -> Generator:
        p = self.params
        nranks = ctx.size
        me = ctx.rank

        ctx.set_phase("input")
        cfg = ctx.alloc(6, ctx.LONG, "lu.cfg")
        if ctx.rank == 0:
            cfg.view[:] = (
                p["rows_per_rank"],
                p["ncols"],
                p["iterations"],
                int(p["omega"] * 1000),
                p["seed"],
                0,
            )
        yield from ctx.Bcast(cfg.addr, 6, ctx.LONG, 0, ctx.WORLD)
        nrows, ncols, iterations, omega_fx, seed = (int(x) for x in cfg.view[:5])
        if not (0 < nrows <= 4096 and 0 < ncols <= 4096 and 0 < iterations <= 1024):
            ctx.app_error("LU: implausible configuration after broadcast")
        omega = omega_fx / 1000.0

        ctx.set_phase("init")
        n_global_rows = nrows * nranks
        h = 1.0 / (max(n_global_rows, ncols) + 1)
        h2 = h * h
        rng = np.random.default_rng(seed * 7907 + me)
        f = 1.0 + 0.1 * rng.standard_normal((nrows, ncols))
        u = ctx.alloc(nrows * ncols, ctx.DOUBLE, "lu.u")
        u.view[:] = 0.0
        row_dn_s = ctx.alloc(ncols, ctx.DOUBLE, "lu.row_dn_s")
        row_up_s = ctx.alloc(ncols, ctx.DOUBLE, "lu.row_up_s")
        row_dn_r = ctx.alloc(ncols, ctx.DOUBLE, "lu.row_dn_r")
        row_up_r = ctx.alloc(ncols, ctx.DOUBLE, "lu.row_up_r")
        bufs = {
            "nrm": ctx.alloc(5, ctx.DOUBLE, "lu.nrm"),
            "nrm_g": ctx.alloc(5, ctx.DOUBLE, "lu.nrm_g"),
        }
        yield from ctx.Barrier(ctx.WORLD)

        def partial_norms(r: np.ndarray) -> np.ndarray:
            return np.array([float((r[:, k::5] ** 2).sum()) for k in range(5)])

        ctx.set_phase("compute")
        grid = u.view.reshape(nrows, ncols)
        zero = np.zeros(ncols)
        below = zero.copy()
        above = zero.copy()
        r = self._residual(grid, f, h2, below, above)
        norms0 = yield from self.check_norms(ctx, partial_norms(r), bufs)
        norms = norms0.copy()

        for it in range(iterations):
            yield from ctx.progress(nrows)
            # Forward wavefront: wait for the updated boundary row from
            # the rank below, sweep upward, forward our top row.
            if me > 0:
                yield from ctx.Recv(row_dn_r.addr, ncols, ctx.DOUBLE, me - 1, 2 * it, ctx.WORLD)
                below = row_dn_r.view.copy()
            else:
                below = zero
            g = grid
            for i in range(nrows):
                lower = below if i == 0 else g[i - 1]
                upper = g[i + 1] if i + 1 < nrows else above
                left = np.concatenate(([0.0], g[i, :-1]))
                right = np.concatenate((g[i, 1:], [0.0]))
                gs = 0.25 * (lower + upper + left + right + h2 * f[i])
                g[i] = g[i] + omega * (gs - g[i])
            if me + 1 < nranks:
                row_up_s.view[:] = g[-1]
                yield from ctx.Send(row_up_s.addr, ncols, ctx.DOUBLE, me + 1, 2 * it, ctx.WORLD)

            # Reverse wavefront.
            if me + 1 < nranks:
                yield from ctx.Recv(
                    row_up_r.addr, ncols, ctx.DOUBLE, me + 1, 2 * it + 1, ctx.WORLD
                )
                above = row_up_r.view.copy()
            else:
                above = zero
            for i in range(nrows - 1, -1, -1):
                lower = below if i == 0 else g[i - 1]
                upper = g[i + 1] if i + 1 < nrows else above
                left = np.concatenate(([0.0], g[i, :-1]))
                right = np.concatenate((g[i, 1:], [0.0]))
                gs = 0.25 * (lower + upper + left + right + h2 * f[i])
                g[i] = g[i] + omega * (gs - g[i])
            if me > 0:
                row_dn_s.view[:] = g[0]
                yield from ctx.Send(row_dn_s.addr, ncols, ctx.DOUBLE, me - 1, 2 * it + 1, ctx.WORLD)

            r = self._residual(g, f, h2, below, above)
            norms = yield from self.check_norms(ctx, partial_norms(r), bufs)
            if (it + 1) % 5 == 0:
                yield from ctx.Barrier(ctx.WORLD)

        if float(norms.sum()) > 10.0 * float(norms0.sum()) + 1e-30:
            ctx.app_error("LU: SSOR diverged")

        ctx.set_phase("end")
        s = ctx.alloc(1, ctx.DOUBLE, "lu.sum")
        gsum = ctx.alloc(1, ctx.DOUBLE, "lu.sum_g")
        s.view[0] = float(grid.sum())
        yield from ctx.Allreduce(s.addr, gsum.addr, 1, ctx.DOUBLE, ctx.SUM, ctx.WORLD)
        yield from ctx.Barrier(ctx.WORLD)
        return {
            "norms": [float(x) for x in norms],
            "checksum": float(gsum.view[0]),
        }
