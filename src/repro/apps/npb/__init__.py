"""NPB-shaped kernels: IS, FT, MG, LU — plus the CG extension."""

from .cg_kernel import CGKernel
from .ft_kernel import FTKernel
from .is_kernel import ISKernel
from .lu_kernel import LUKernel
from .mg_kernel import MGKernel

__all__ = ["CGKernel", "FTKernel", "ISKernel", "LUKernel", "MGKernel"]
