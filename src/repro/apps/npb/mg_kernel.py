"""MG — distributed multigrid V-cycle on a 1-D Poisson problem.

Communication skeleton, as in NPB MG: config broadcast, halo exchange
with neighbour ranks (point-to-point ``Sendrecv``), an ``Allreduce`` of
the residual L2 norm per V-cycle plus an ``Allreduce`` MAX diagnostic,
and convergence-driven iteration — which is what makes MG a natural
``INF_LOOP`` producer under data corruption: a corrupted field may never
converge, and the run is killed by the step budget, exactly like the
paper's timeout.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from ...simmpi import Context
from ..base import Application


class MGKernel(Application):
    """Multigrid V-cycle solver for -u'' = f with homogeneous Dirichlet BCs."""

    name = "mg"
    rtol = 1e-8

    @classmethod
    def class_params(cls, problem_class: str) -> dict[str, Any]:
        return {
            "T": dict(nranks=4, points_per_rank=64, levels=5, tol=1e-5, max_cycles=40, seed=7),
            "S": dict(nranks=32, points_per_rank=64, levels=5, tol=1e-5, max_cycles=40, seed=7),
            "A": dict(nranks=32, points_per_rank=256, levels=7, tol=1e-7, max_cycles=80, seed=7),
        }[problem_class]

    # -- numerics -------------------------------------------------------

    @staticmethod
    def _smooth(u: np.ndarray, f: np.ndarray, h2: float, left: float, right: float) -> np.ndarray:
        """One weighted-Jacobi sweep with halo values ``left``/``right``."""
        full = np.empty(u.size + 2)
        full[0], full[-1] = left, right
        full[1:-1] = u
        jac = 0.5 * (full[:-2] + full[2:] + h2 * f)
        return u + 0.8 * (jac - u)

    @staticmethod
    def _residual(u: np.ndarray, f: np.ndarray, h2: float, left: float, right: float) -> np.ndarray:
        full = np.empty(u.size + 2)
        full[0], full[-1] = left, right
        full[1:-1] = u
        return f - (2.0 * u - full[:-2] - full[2:]) / h2

    def _halo(self, ctx: Context, u: np.ndarray, bufs: dict, tag: int) -> Generator:
        """Exchange boundary values with neighbours; returns (left, right).

        Domain boundaries use the Dirichlet value 0.
        """
        me, n = ctx.rank, ctx.size
        sl, sr, rl, rr = bufs["sl"], bufs["sr"], bufs["rl"], bufs["rr"]
        sl.view[0] = u[0]
        sr.view[0] = u[-1]
        left = right = 0.0
        if me + 1 < n:
            yield from ctx.Send(sr.addr, 1, ctx.DOUBLE, me + 1, tag, ctx.WORLD)
        if me > 0:
            yield from ctx.Send(sl.addr, 1, ctx.DOUBLE, me - 1, tag, ctx.WORLD)
        if me > 0:
            yield from ctx.Recv(rl.addr, 1, ctx.DOUBLE, me - 1, tag, ctx.WORLD)
            left = float(rl.view[0])
        if me + 1 < n:
            yield from ctx.Recv(rr.addr, 1, ctx.DOUBLE, me + 1, tag, ctx.WORLD)
            right = float(rr.view[0])
        return left, right

    def check_norm(self, ctx: Context, local_sq: float, bufs: dict) -> Generator:
        """Global residual norms: Allreduce SUM of squares + MAX diagnostic.

        Aborts on non-finite norms (NPB MG's norm sanity checking).
        """
        s, g = bufs["nrm"], bufs["nrm_g"]
        s.view[0] = local_sq
        s.view[1] = local_sq
        yield from ctx.Allreduce(s.addr, g.addr, 2, ctx.DOUBLE, ctx.SUM, ctx.WORLD)
        total = float(g.view[0])
        yield from ctx.Allreduce(s.addr, g.addr, 1, ctx.DOUBLE, ctx.MAX, ctx.WORLD)
        if not np.isfinite(total) or not np.isfinite(float(g.view[0])):
            ctx.app_error("MG: residual norm is not finite")
        return float(np.sqrt(max(total, 0.0)))

    # -- entry point ------------------------------------------------------

    def main(self, ctx: Context) -> Generator:
        p = self.params
        nranks = ctx.size

        ctx.set_phase("input")
        cfg = ctx.alloc(6, ctx.LONG, "mg.cfg")
        if ctx.rank == 0:
            cfg.view[:] = (
                p["points_per_rank"],
                p["levels"],
                int(p["tol"] * 1e16),
                p["max_cycles"],
                p["seed"],
                0,
            )
        yield from ctx.Bcast(cfg.addr, 6, ctx.LONG, 0, ctx.WORLD)
        npts, levels, tol_fx, max_cycles, seed = (int(x) for x in cfg.view[:5])
        if not (2 <= npts <= 1 << 20 and 1 <= levels <= 12 and 0 < max_cycles <= 10_000):
            ctx.app_error("MG: implausible configuration after broadcast")
        tol = tol_fx / 1e16
        if npts >> (levels - 1) < 2:
            ctx.app_error("MG: too many levels for the local grid")

        ctx.set_phase("init")
        n_global = npts * nranks
        h = 1.0 / (n_global + 1)
        xs = (np.arange(npts) + ctx.rank * npts + 1) * h
        rng = np.random.default_rng(seed * 31337 + ctx.rank)
        f = np.sin(np.pi * xs) + 0.1 * rng.standard_normal(npts)
        u = ctx.alloc(npts, ctx.DOUBLE, "mg.u")
        u.view[:] = 0.0
        bufs = {
            "sl": ctx.alloc(1, ctx.DOUBLE, "mg.sl"),
            "sr": ctx.alloc(1, ctx.DOUBLE, "mg.sr"),
            "rl": ctx.alloc(1, ctx.DOUBLE, "mg.rl"),
            "rr": ctx.alloc(1, ctx.DOUBLE, "mg.rr"),
            "nrm": ctx.alloc(2, ctx.DOUBLE, "mg.nrm"),
            "nrm_g": ctx.alloc(2, ctx.DOUBLE, "mg.nrm_g"),
        }
        yield from ctx.Barrier(ctx.WORLD)

        ctx.set_phase("compute")
        left, right = yield from self._halo(ctx, u.view, bufs, tag=0)
        r = self._residual(u.view, f, h * h, left, right)
        r0 = yield from self.check_norm(ctx, float(r @ r), bufs)
        norm = r0
        cycles = 0
        tag = 1
        while norm > tol * max(r0, 1e-300) and cycles < max_cycles:
            yield from ctx.progress(npts // 4 + 1)
            u.view[:] = yield from self._vcycle(
                ctx, u.view.copy(), f, h, levels, bufs, tag
            )
            tag += levels * 16 + 16
            left, right = yield from self._halo(ctx, u.view, bufs, tag=tag)
            tag += 1
            r = self._residual(u.view, f, h * h, left, right)
            norm = yield from self.check_norm(ctx, float(r @ r), bufs)
            cycles += 1

        if norm > 1e3 * r0:
            ctx.app_error("MG: solver diverged")

        ctx.set_phase("end")
        local_sum = float(u.view.sum())
        s = ctx.alloc(1, ctx.DOUBLE, "mg.sum")
        g = ctx.alloc(1, ctx.DOUBLE, "mg.sum_g")
        s.view[0] = local_sum
        yield from ctx.Allreduce(s.addr, g.addr, 1, ctx.DOUBLE, ctx.SUM, ctx.WORLD)
        return {
            "cycles": cycles,
            "final_norm": norm,
            "solution_sum": float(g.view[0]),
        }

    def _coarse_solve(self, ctx: Context, f: np.ndarray, h2: float, bufs: dict) -> Generator:
        """Exact coarsest-grid solve: Gather → Thomas → Scatter."""
        m = f.size
        nranks = ctx.size
        fl = ctx.alloc(m, ctx.DOUBLE, "mg.coarse_f")
        fg = ctx.alloc(m * nranks, ctx.DOUBLE, "mg.coarse_fg")
        ul = ctx.alloc(m, ctx.DOUBLE, "mg.coarse_u")
        ug = ctx.alloc(m * nranks, ctx.DOUBLE, "mg.coarse_ug")
        fl.view[:] = f
        yield from ctx.Gather(fl.addr, m, fg.addr, m, ctx.DOUBLE, 0, ctx.WORLD)
        if ctx.rank == 0:
            rhs = fg.view.copy() * h2
            n = rhs.size
            # Thomas algorithm for the tridiagonal (-1, 2, -1) system.
            c = np.empty(n)
            d = np.empty(n)
            c[0] = -0.5
            d[0] = rhs[0] / 2.0
            for i in range(1, n):
                denom = 2.0 + c[i - 1]
                c[i] = -1.0 / denom
                d[i] = (rhs[i] + d[i - 1]) / denom
            x = np.empty(n)
            x[-1] = d[-1]
            for i in range(n - 2, -1, -1):
                x[i] = d[i] - c[i] * x[i + 1]
            ug.view[:] = x
        yield from ctx.Scatter(ug.addr, m, ul.addr, m, ctx.DOUBLE, 0, ctx.WORLD)
        return ul.view.copy()

    def _vcycle(
        self,
        ctx: Context,
        u: np.ndarray,
        f: np.ndarray,
        h: float,
        levels: int,
        bufs: dict,
        tag: int,
    ) -> Generator:
        """One V-cycle over ``levels`` grids (recursive, with halos).

        The coarsest grid is gathered to rank 0, solved exactly with the
        Thomas algorithm, and scattered back.
        """
        h2 = h * h
        if levels == 1 or u.size < 4:
            u = yield from self._coarse_solve(ctx, f, h2, bufs)
            return u

        for s in range(3):  # pre-smooth
            left, right = yield from self._halo(ctx, u, bufs, tag=tag + s)
            u = self._smooth(u, f, h2, left, right)

        left, right = yield from self._halo(ctx, u, bufs, tag=tag + 3)
        res = self._residual(u, f, h2, left, right)

        # Restriction: adjoint of the linear prolongation (needs the
        # neighbours' boundary residuals).
        lres, rres = yield from self._halo(ctx, res, bufs, tag=tag + 4)
        ext = np.empty(res.size + 2)
        ext[0], ext[-1] = lres, rres
        ext[1:-1] = res
        coarse_f = 0.5 * (
            0.75 * ext[1:-1:2]
            + 0.75 * ext[2::2]
            + 0.25 * ext[:-2:2]
            + 0.25 * ext[3::2]
        )
        coarse_u = np.zeros(coarse_f.size)
        coarse_u = yield from self._vcycle(
            ctx, coarse_u, coarse_f, 2 * h, levels - 1, bufs, tag + 16
        )

        # Linear prolongation; coarse ghosts come from the neighbours.
        lc, rc = yield from self._halo(ctx, coarse_u, bufs, tag=tag + 5)
        cext = np.empty(coarse_u.size + 2)
        cext[0], cext[-1] = lc, rc
        cext[1:-1] = coarse_u
        corr = np.empty(u.size)
        corr[0::2] = 0.75 * coarse_u + 0.25 * cext[:-2]
        corr[1::2] = 0.75 * coarse_u + 0.25 * cext[2:]
        u = u + corr

        for s in range(3):  # post-smooth
            left, right = yield from self._halo(ctx, u, bufs, tag=tag + 6 + s)
            u = self._smooth(u, f, h2, left, right)
        return u
