"""FT — distributed 2-D spectral solver, NPB-FT shaped.

Communication skeleton, as in NPB FT: config broadcast, per-iteration
global transpose via ``Alltoall`` of complex blocks, time-evolution in
spectral space, and a per-iteration ``Reduce`` of a complex checksum to
the root (the collective the paper injects for Fig. 2).

The grid is row-decomposed; the transpose packs the local block
rank-major, exchanges, and reassembles the transposed layout.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from ...simmpi import Context
from ..base import Application


class FTKernel(Application):
    """2-D FFT evolution with per-iteration checksum reduction."""

    name = "ft"
    rtol = 1e-9

    @classmethod
    def class_params(cls, problem_class: str) -> dict[str, Any]:
        return {
            "T": dict(nranks=4, nx=16, ny=16, iterations=3, seed=42),
            "S": dict(nranks=32, nx=64, ny=64, iterations=4, seed=42),
            "A": dict(nranks=32, nx=128, ny=128, iterations=6, seed=42),
        }[problem_class]

    def check_field(self, ctx: Context, field: np.ndarray) -> Generator:
        """Per-iteration global sanity check of the evolving field."""
        flag = ctx.alloc(1, ctx.INT, "ft.flag")
        out = ctx.alloc(1, ctx.INT, "ft.flag_g")
        flag.view[0] = 0 if np.isfinite(field).all() else 1
        yield from ctx.Allreduce(flag.addr, out.addr, 1, ctx.INT, ctx.MAX, ctx.WORLD)
        if int(out.view[0]):
            ctx.app_error("FT: non-finite values detected in the field")

    def main(self, ctx: Context) -> Generator:
        p = self.params
        nranks = ctx.size

        ctx.set_phase("input")
        cfg = ctx.alloc(4, ctx.LONG, "ft.cfg")
        if ctx.rank == 0:
            cfg.view[:] = (p["nx"], p["ny"], p["iterations"], p["seed"])
        yield from ctx.Bcast(cfg.addr, 4, ctx.LONG, 0, ctx.WORLD)
        nx, ny, iterations, seed = (int(x) for x in cfg.view)
        if not (0 < nx <= 1 << 14 and 0 < ny <= 1 << 14 and 0 < iterations <= 64):
            ctx.app_error("FT: implausible configuration after broadcast")
        if nx % nranks or ny % nranks:
            ctx.app_error("FT: grid not divisible by communicator size")

        ctx.set_phase("init")
        rloc = nx // nranks  # local rows of the nx × ny grid
        cloc = ny // nranks  # local columns after transpose
        rng = np.random.default_rng(seed * 104729 + ctx.rank)
        u = ctx.alloc(rloc * ny, ctx.DOUBLE_COMPLEX, "ft.u")
        u.view[:] = (
            rng.random(rloc * ny) + 1j * rng.random(rloc * ny)
        ).astype(np.complex128)
        sendbuf = ctx.alloc(rloc * ny, ctx.DOUBLE_COMPLEX, "ft.sendbuf")
        recvbuf = ctx.alloc(cloc * nx, ctx.DOUBLE_COMPLEX, "ft.recvbuf")
        csum = ctx.alloc(1, ctx.DOUBLE_COMPLEX, "ft.csum")
        gsum = ctx.alloc(1, ctx.DOUBLE_COMPLEX, "ft.gsum")

        # Spectral evolution factors for this rank's transposed columns.
        kx = np.arange(cloc * nx).reshape(cloc, nx) % nx
        factor = np.exp(-4e-6 * (kx.astype(np.float64) ** 2 + 1.0))

        ctx.set_phase("compute")
        checksums: list[complex] = []
        for it in range(iterations):
            yield from ctx.progress(rloc)
            grid = u.view.reshape(rloc, ny)
            f1 = np.fft.fft(grid, axis=1)

            # Pack rank-major: block j holds my rows' columns for rank j.
            blocks = f1.reshape(rloc, nranks, cloc).transpose(1, 0, 2)
            sendbuf.view[:] = np.ascontiguousarray(blocks).reshape(-1)
            yield from ctx.Alltoall(
                sendbuf.addr, rloc * cloc, recvbuf.addr, rloc * cloc, ctx.DOUBLE_COMPLEX, ctx.WORLD
            )

            # Reassemble the transposed layout (cloc × nx) and transform.
            t = np.empty((cloc, nx), dtype=np.complex128)
            incoming = recvbuf.view.reshape(nranks, rloc, cloc)
            for r in range(nranks):
                t[:, r * rloc : (r + 1) * rloc] = incoming[r].T
            f2 = np.fft.fft(t, axis=1)
            f2 *= factor ** (it + 1)
            yield from self.check_field(ctx, f2)

            # Checksum: strided sample, reduced to root (NPB style).
            csum.view[0] = complex(f2.reshape(-1)[:: max(1, (cloc * nx) // 97)].sum())
            yield from ctx.Reduce(
                csum.addr, gsum.addr, 1, ctx.DOUBLE_COMPLEX, ctx.SUM, 0, ctx.WORLD
            )
            if ctx.rank == 0:
                total = complex(gsum.view[0])
                if not np.isfinite(total.real) or abs(total) > 1e12:
                    ctx.app_error("FT: checksum diverged")
                checksums.append(total)

            # Inverse path back to the row layout for the next iteration.
            ib = np.fft.ifft(f2, axis=1)
            outgoing = np.empty((nranks, cloc, rloc), dtype=np.complex128)
            for r in range(nranks):
                outgoing[r] = ib[:, r * rloc : (r + 1) * rloc]
            sendbuf.view[:] = outgoing.reshape(-1)
            yield from ctx.Alltoall(
                sendbuf.addr, rloc * cloc, recvbuf.addr, rloc * cloc, ctx.DOUBLE_COMPLEX, ctx.WORLD
            )
            back = recvbuf.view.reshape(nranks, cloc, rloc)
            rows = np.empty((rloc, ny), dtype=np.complex128)
            for r in range(nranks):
                rows[:, r * cloc : (r + 1) * cloc] = back[r].T
            u.view[:] = np.fft.ifft(rows, axis=1).reshape(-1)

        ctx.set_phase("end")
        local_energy = float(np.vdot(u.view, u.view).real)
        e = ctx.alloc(1, ctx.DOUBLE, "ft.energy")
        ge = ctx.alloc(1, ctx.DOUBLE, "ft.energy_g")
        e.view[0] = local_energy
        yield from ctx.Allreduce(e.addr, ge.addr, 1, ctx.DOUBLE, ctx.SUM, ctx.WORLD)
        return {
            "energy": float(ge.view[0]),
            "checksums": [(c.real, c.imag) for c in checksums],
        }
