"""IS — parallel integer (bucket) sort, NPB-IS shaped.

Communication skeleton, as in NPB IS: a config broadcast, per-iteration
``Alltoall`` of bucket counts followed by ``Alltoallv`` of the keys, an
``Allreduce`` checksum for conservation checking, and partial
verification each iteration.

Fault characteristics (why IS is the paper's most crash-prone kernel,
Fig. 7): keys are *used as indices* — a corrupted key indexes the bucket
histogram out of range, and corrupted counts/displacements drive the
``Alltoallv`` straight into unmapped memory.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from ...simmpi import Context
from ..base import Application


class ISKernel(Application):
    """Parallel bucket sort of uniformly random integer keys."""

    name = "is"
    rtol = 0.0  # integer results: exact comparison

    @classmethod
    def class_params(cls, problem_class: str) -> dict[str, Any]:
        return {
            "T": dict(nranks=4, keys_per_rank=128, max_key=1 << 10, iterations=2, seed=1201),
            "S": dict(nranks=32, keys_per_rank=256, max_key=1 << 14, iterations=3, seed=1201),
            "A": dict(nranks=32, keys_per_rank=2048, max_key=1 << 16, iterations=5, seed=1201),
        }[problem_class]

    # -- helpers (named per the ErrHal convention) ---------------------

    def check_config(self, ctx: Context, cfg: np.ndarray) -> Generator:
        """Validate the broadcast configuration on every rank."""
        flag = ctx.alloc(1, ctx.INT, "is.cfgflag")
        out = ctx.alloc(1, ctx.INT, "is.cfgflag_g")
        bad = not (
            0 < int(cfg[0]) <= 1 << 20 and 0 < int(cfg[1]) <= 1 << 30 and 0 < int(cfg[2]) <= 64
        )
        flag.view[0] = 1 if bad else 0
        yield from ctx.Allreduce(flag.addr, out.addr, 1, ctx.INT, ctx.MAX, ctx.WORLD)
        if int(out.view[0]):
            ctx.app_error("IS: implausible configuration after broadcast")

    def check_conservation(
        self, ctx: Context, local_sum: int, expected: int | None
    ) -> Generator:
        """Global key-sum conservation check (NPB's full verification).

        With ``expected=None`` only computes and returns the global sum.
        """
        s = ctx.alloc(1, ctx.LONG, "is.csum")
        g = ctx.alloc(1, ctx.LONG, "is.csum_g")
        s.view[0] = local_sum
        yield from ctx.Allreduce(s.addr, g.addr, 1, ctx.LONG, ctx.SUM, ctx.WORLD)
        total = int(g.view[0])
        if expected is not None and total != expected:
            ctx.app_error(f"IS: key checksum {total} != expected {expected}")
        return total

    # -- entry point -----------------------------------------------------

    def main(self, ctx: Context) -> Generator:
        p = self.params
        nranks = ctx.size

        ctx.set_phase("input")
        cfg = ctx.alloc(4, ctx.LONG, "is.cfg")
        if ctx.rank == 0:
            cfg.view[:] = (p["keys_per_rank"], p["max_key"], p["iterations"], p["seed"])
        yield from ctx.Bcast(cfg.addr, 4, ctx.LONG, 0, ctx.WORLD)
        yield from self.check_config(ctx, cfg.view)
        nkeys, max_key, iterations, seed = (int(x) for x in cfg.view)

        ctx.set_phase("init")
        rng = np.random.default_rng(seed * 7919 + ctx.rank)
        keys = ctx.alloc(nkeys, ctx.INT, "is.keys")
        keys.view[:] = rng.integers(0, max_key, size=nkeys, dtype=np.int32)
        capacity = 4 * nkeys
        sendbuf = ctx.alloc(capacity, ctx.INT, "is.sendbuf")
        recvbuf = ctx.alloc(capacity, ctx.INT, "is.recvbuf")
        scounts = ctx.alloc(nranks, ctx.INT, "is.scounts")
        rcounts = ctx.alloc(nranks, ctx.INT, "is.rcounts")
        base_sum = int(keys.view.astype(np.int64).sum())
        yield from self.check_conservation(ctx, base_sum, None)

        ctx.set_phase("compute")
        sorted_keys = np.empty(0, dtype=np.int32)
        for it in range(iterations):
            # NPB-style perturbation: two keys change every iteration.
            keys.view[it % nkeys] = it
            keys.view[(it + nkeys // 2) % nkeys] = max_key - 1 - it
            yield from ctx.progress(nkeys // 8)

            # Bucket histogram: keys used as indices (crash surface).
            buckets = (keys.view.astype(np.int64) * nranks) // max_key
            counts = np.zeros(nranks, dtype=np.int64)
            np.add.at(counts, buckets, 1)  # IndexError on corrupted keys
            scounts.view[:] = counts.astype(np.int32)

            # Pack keys bucket-major.
            order = np.argsort(buckets, kind="stable")
            sendbuf.view[:nkeys] = keys.view[order]

            yield from ctx.Alltoall(scounts.addr, 1, rcounts.addr, 1, ctx.INT, ctx.WORLD)

            rc = rcounts.view.astype(np.int64)
            total_recv = int(rc.sum())
            if total_recv < 0 or total_recv > capacity:
                ctx.app_error(f"IS: implausible incoming key count {total_recv}")

            sdispls = np.zeros(nranks, dtype=np.int64)
            sdispls[1:] = np.cumsum(counts)[:-1]
            rdispls = np.zeros(nranks, dtype=np.int64)
            rdispls[1:] = np.cumsum(rc)[:-1]
            yield from ctx.Alltoallv(
                sendbuf.addr,
                counts.copy(),
                sdispls,
                recvbuf.addr,
                rc.copy(),
                rdispls,
                ctx.INT,
                ctx.WORLD,
            )

            received = recvbuf.view[: max(0, min(total_recv, capacity))]
            # Partial verification (as in NPB IS): every received key must
            # belong to this rank's bucket range.
            lo = (ctx.rank * max_key) // nranks
            hi = ((ctx.rank + 1) * max_key) // nranks
            if received.size and (int(received.min()) < lo or int(received.max()) >= hi):
                ctx.app_error(
                    f"IS: received key outside bucket [{lo}, {hi}) at iteration {it}"
                )
            sorted_keys = np.sort(received)
            # Conservation: globally, keys received must sum to keys sent.
            local_sum = int(sorted_keys.astype(np.int64).sum())
            my_before = int(keys.view.astype(np.int64).sum())
            yield from self.check_conservation(ctx, local_sum - my_before, 0)

        ctx.set_phase("end")
        mn = ctx.alloc(2, ctx.LONG, "is.minmax")
        gmn = ctx.alloc(2 * nranks, ctx.LONG, "is.minmax_g")
        if sorted_keys.size:
            mn.view[:] = (int(sorted_keys[0]), int(sorted_keys[-1]))
        else:
            mn.view[:] = (-1, -1)
        yield from ctx.Allgather(mn.addr, 2, gmn.addr, 2, ctx.LONG, ctx.WORLD)
        pairs = gmn.view.reshape(nranks, 2)
        prev_max = -1
        for r in range(nranks):
            lo_r, hi_r = int(pairs[r, 0]), int(pairs[r, 1])
            if lo_r < 0:
                continue
            if lo_r < prev_max:
                ctx.app_error("IS: global ordering violated across ranks")
            prev_max = hi_r

        sig_xor = int(np.bitwise_xor.reduce(sorted_keys)) if sorted_keys.size else 0
        return {
            "count": int(sorted_keys.size),
            "sum": int(sorted_keys.astype(np.int64).sum()),
            "xor": sig_xor,
        }
