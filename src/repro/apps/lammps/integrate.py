"""Velocity-Verlet integration for the mini molecular-dynamics code."""

from __future__ import annotations

import numpy as np


def half_kick(vel: np.ndarray, forces: np.ndarray, dt: float) -> np.ndarray:
    """First/second half of the velocity update (unit mass)."""
    return vel + 0.5 * dt * forces


def drift(pos: np.ndarray, vel: np.ndarray, dt: float) -> np.ndarray:
    """Position update."""
    return pos + dt * vel


def init_velocities(rng: np.random.Generator, n: int, temperature: float) -> np.ndarray:
    """Gaussian velocities at the requested reduced temperature, with the
    local centre-of-mass drift removed (LAMMPS ``velocity create`` style)."""
    vel = rng.normal(0.0, np.sqrt(temperature), size=(n, 3))
    if n:
        vel -= vel.mean(axis=0)
    return vel
