"""Thermodynamic output and consistency checks for the mini-MD code.

These are the ``MPI_Allreduce``-dominated routines that make LAMMPS'
collective mix what the paper measures: thermo reductions every step,
and error-handling reductions (``check_*``) on a large fraction of them
(the paper counts 40.32 % of LAMMPS allreduces as error handling).
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ...simmpi import Context


def alloc_thermo_buffers(ctx: Context) -> dict:
    return {
        "loc": ctx.alloc(4, ctx.DOUBLE, "md.thermo_loc"),
        "glob": ctx.alloc(4, ctx.DOUBLE, "md.thermo_glob"),
        "flag": ctx.alloc(1, ctx.INT, "md.flag"),
        "flag_g": ctx.alloc(1, ctx.INT, "md.flag_g"),
    }


def compute_thermo(
    ctx: Context, bufs: dict, pe: float, ke: float, natoms: int
) -> Generator:
    """Global PE/KE/temperature via Allreduce (LAMMPS ``thermo`` style).

    Returns ``(total_pe, total_ke, total_atoms)``.
    """
    loc, glob = bufs["loc"], bufs["glob"]
    loc.view[:] = (pe, ke, float(natoms), 0.0)
    yield from ctx.Allreduce(loc.addr, glob.addr, 4, ctx.DOUBLE, ctx.SUM, ctx.WORLD)
    return float(glob.view[0]), float(glob.view[1]), int(round(float(glob.view[2])))


def check_atoms(
    ctx: Context, bufs: dict, pos: np.ndarray, vel: np.ndarray, n_lost: int, vmax: float
) -> Generator:
    """Global error-handling check (LAMMPS "lost/ejected atoms").

    Raises ``APP_DETECTED`` when any rank sees non-finite state, a
    runaway velocity, or lost atoms.
    """
    flag, flag_g = bufs["flag"], bufs["flag_g"]
    bad = (
        (not np.isfinite(pos).all())
        or (not np.isfinite(vel).all())
        or (vel.size > 0 and float(np.abs(vel).max()) > vmax)
        or n_lost > 0
    )
    flag.view[0] = 1 if bad else 0
    yield from ctx.Allreduce(flag.addr, flag_g.addr, 1, ctx.INT, ctx.MAX, ctx.WORLD)
    if int(flag_g.view[0]):
        ctx.app_error("MD: lost or unphysical atoms detected")


def check_atom_count(ctx: Context, bufs: dict, local_n: int, expected_total: int) -> Generator:
    """Global atom-count conservation check after migration."""
    flag, flag_g = bufs["flag"], bufs["flag_g"]
    loc, glob = bufs["loc"], bufs["glob"]
    loc.view[0] = float(local_n)
    yield from ctx.Allreduce(loc.addr, glob.addr, 1, ctx.DOUBLE, ctx.SUM, ctx.WORLD)
    total = int(round(float(glob.view[0])))
    if total != expected_total:
        ctx.app_error(f"MD: atom count changed ({total} != {expected_total})")
    del flag, flag_g
    return total
