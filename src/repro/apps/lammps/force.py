"""Lennard-Jones force and energy evaluation (reduced units).

Vectorised over the full local × (local + ghost) pair matrix — at the
per-rank atom counts this mini app uses, the dense distance matrix beats
any list-based neighbour structure in numpy.
"""

from __future__ import annotations

import numpy as np


def lj_forces(
    pos: np.ndarray,
    ghosts: np.ndarray,
    cutoff: float,
    ly: float,
    lz: float,
) -> tuple[np.ndarray, float]:
    """Forces on local atoms and the local potential-energy share.

    ``pos`` is ``(n, 3)`` local positions; ``ghosts`` is ``(m, 3)``
    neighbour-slab images already shifted to unwrapped x coordinates.
    y/z use minimum-image convention; x never wraps because ghosts carry
    the shift.  Local-local pairs contribute full energy (counted once),
    local-ghost pairs half (the owning rank of the other atom counts the
    other half).
    """
    n = pos.shape[0]
    if n == 0:
        return np.zeros((0, 3)), 0.0
    all_pos = np.vstack([pos, ghosts]) if ghosts.size else pos
    delta = pos[:, None, :] - all_pos[None, :, :]
    delta[:, :, 1] -= ly * np.round(delta[:, :, 1] / ly)
    delta[:, :, 2] -= lz * np.round(delta[:, :, 2] / lz)
    r2 = np.einsum("ijk,ijk->ij", delta, delta)

    # Mask self-pairs and pairs beyond the cutoff.
    np.fill_diagonal(r2[:, :n], np.inf)
    mask = r2 < cutoff * cutoff
    r2 = np.where(mask, r2, np.inf)

    inv_r2 = 1.0 / r2
    inv_r6 = inv_r2 * inv_r2 * inv_r2
    # F(r)/r = 24 eps (2 (s/r)^12 - (s/r)^6) / r^2, sigma = eps = 1.
    fmag = 24.0 * inv_r2 * inv_r6 * (2.0 * inv_r6 - 1.0)
    forces = np.einsum("ij,ijk->ik", fmag, delta)

    pair_e = np.where(mask, 4.0 * inv_r6 * (inv_r6 - 1.0), 0.0)
    # Local-local once (each appears twice in the matrix -> 0.5), and
    # local-ghost half -> also 0.5.  One uniform factor does both.
    pe = 0.5 * float(pair_e.sum())
    return forces, pe


def kinetic_energy(vel: np.ndarray) -> float:
    """Kinetic energy with unit mass."""
    return 0.5 * float((vel * vel).sum())
