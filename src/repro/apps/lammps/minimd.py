"""Mini-LAMMPS: a Lennard-Jones molecular-dynamics application.

Mirrors the MPI usage profile the paper measures for LAMMPS (rhodopsin):

* ``MPI_Allreduce`` dominates (> 84 % of collective calls): thermo
  reductions, error-handling checks, and reneighbour decisions — all
  every timestep;
* a large fraction of the allreduces are error-handling (``check_*``);
* plus ``Bcast`` of the input deck, ``Allgather`` of per-rank counts at
  every reneighbour, ``Barrier`` after setup, and a final ``Reduce``;
* verification is *statistical* (energy conservation with a loose
  tolerance), so small perturbations are masked — the reason the paper
  sees ~65 % SUCCESS and almost no WRONG_ANS for LAMMPS.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from ...simmpi import Context
from ..base import Application
from .domain import Domain
from .force import kinetic_energy, lj_forces
from .integrate import drift, half_kick, init_velocities
from .neighbor import alloc_comm_buffers, exchange_ghosts, migrate
from .thermo import alloc_thermo_buffers, check_atom_count, check_atoms, compute_thermo

#: Ghost-selection skin beyond the force cutoff, as in LAMMPS.
SKIN = 0.3


class MiniMD(Application):
    """Lennard-Jones MD with 1-D slab decomposition."""

    name = "lammps"
    rtol = 1e-2  # statistical verification: small perturbations are masked

    @classmethod
    def class_params(cls, problem_class: str) -> dict[str, Any]:
        return {
            "T": dict(nranks=4, cells=(3, 4, 4), spacing=1.25, steps=12, dt=0.005,
                      temperature=0.6, cutoff=2.5, reneighbor=4, seed=2015),
            "S": dict(nranks=32, cells=(3, 4, 4), spacing=1.25, steps=20, dt=0.005,
                      temperature=0.6, cutoff=2.5, reneighbor=5, seed=2015),
            "A": dict(nranks=32, cells=(4, 6, 6), spacing=1.25, steps=60, dt=0.005,
                      temperature=0.7, cutoff=2.5, reneighbor=5, seed=2015),
        }[problem_class]

    def check_config(self, ctx: Context, cfg: np.ndarray) -> Generator:
        """Validate the broadcast input deck on every rank."""
        flag = ctx.alloc(1, ctx.INT, "md.cfgflag")
        out = ctx.alloc(1, ctx.INT, "md.cfgflag_g")
        cx, cy, cz = (int(cfg[0]), int(cfg[1]), int(cfg[2]))
        spacing = float(cfg[3]) / 1e6
        steps = int(cfg[4])
        cutoff = float(cfg[6]) / 1e6
        bad = not (
            0 < cx <= 64
            and 0 < cy <= 64
            and 0 < cz <= 64
            and 0.5 <= spacing <= 10.0
            and 0 < steps <= 100_000
            and 0.5 <= cutoff <= 10.0
            and cx * spacing > cutoff  # slab must exceed the cutoff
        )
        flag.view[0] = 1 if bad else 0
        yield from ctx.Allreduce(flag.addr, out.addr, 1, ctx.INT, ctx.MAX, ctx.WORLD)
        if int(out.view[0]):
            ctx.app_error("MD: implausible input deck after broadcast")

    def main(self, ctx: Context) -> Generator:
        p = self.params
        nranks = ctx.size

        # ---- input: broadcast of the input deck ----------------------
        ctx.set_phase("input")
        cfg = ctx.alloc(10, ctx.LONG, "md.cfg")
        if ctx.rank == 0:
            cx, cy, cz = p["cells"]
            cfg.view[:] = (
                cx, cy, cz,
                int(p["spacing"] * 1e6),
                p["steps"],
                int(p["dt"] * 1e6),
                int(p["cutoff"] * 1e6),
                p["reneighbor"],
                int(p["temperature"] * 1e6),
                p["seed"],
            )
        yield from ctx.Bcast(cfg.addr, 10, ctx.LONG, 0, ctx.WORLD)
        yield from self.check_config(ctx, cfg.view)
        cx, cy, cz = (int(cfg.view[0]), int(cfg.view[1]), int(cfg.view[2]))
        spacing = float(cfg.view[3]) / 1e6
        steps = int(cfg.view[4])
        dt = float(cfg.view[5]) / 1e6
        cutoff = float(cfg.view[6]) / 1e6
        reneighbor = max(1, int(cfg.view[7]))
        temperature = float(cfg.view[8]) / 1e6
        seed = int(cfg.view[9])

        # ---- init: lattice, velocities, first force evaluation -------
        ctx.set_phase("init")
        domain = Domain(
            rank=ctx.rank,
            nranks=nranks,
            slab_w=cx * spacing,
            ly=cy * spacing,
            lz=cz * spacing,
        )
        ix, iy, iz = np.meshgrid(np.arange(cx), np.arange(cy), np.arange(cz), indexing="ij")
        pos = np.column_stack(
            [
                (ix.ravel() + 0.5) * spacing + domain.xlo,
                (iy.ravel() + 0.5) * spacing,
                (iz.ravel() + 0.5) * spacing,
            ]
        ).astype(np.float64)
        n_local = pos.shape[0]
        total_atoms = n_local * nranks
        rng = np.random.default_rng(seed * 6007 + ctx.rank)
        vel = init_velocities(rng, n_local, temperature)

        capacity = max(4 * n_local, 64)
        comm_bufs = alloc_comm_buffers(ctx, capacity)
        thermo_bufs = alloc_thermo_buffers(ctx)
        counts = ctx.alloc(1, ctx.INT, "md.count")
        counts_g = ctx.alloc(nranks, ctx.INT, "md.counts_g")

        tag = 0
        ghosts = yield from exchange_ghosts(ctx, domain, pos, cutoff + SKIN, comm_bufs, tag)
        tag += 8
        forces, pe = lj_forces(pos, ghosts, cutoff, domain.ly, domain.lz)
        pe0, ke0, n0 = yield from compute_thermo(
            ctx, thermo_bufs, pe, kinetic_energy(vel), n_local
        )
        e0 = pe0 + ke0
        yield from ctx.Barrier(ctx.WORLD)

        # ---- compute: velocity-Verlet timestepping --------------------
        ctx.set_phase("compute")
        thermo_history: list[tuple[float, float]] = []
        pe_g, ke_g = pe0, ke0
        for step in range(steps):
            yield from ctx.progress(max(1, n_local // 8))
            vel = half_kick(vel, forces, dt)
            pos = drift(pos, vel, dt)

            n_lost = 0
            if (step + 1) % reneighbor == 0:
                pos, vel, n_lost = yield from migrate(ctx, domain, pos, vel, comm_bufs, tag)
                tag += 8
                n_local = pos.shape[0]
                # Per-rank counts feed load-balance diagnostics (LAMMPS
                # publishes them at every reneighbour).
                counts.view[0] = n_local
                yield from ctx.Allgather(counts.addr, 1, counts_g.addr, 1, ctx.INT, ctx.WORLD)
                yield from check_atom_count(ctx, thermo_bufs, n_local, total_atoms)

            ghosts = yield from exchange_ghosts(
                ctx, domain, pos, cutoff + SKIN, comm_bufs, tag
            )
            tag += 8
            forces, pe = lj_forces(pos, ghosts, cutoff, domain.ly, domain.lz)
            vel = half_kick(vel, forces, dt)

            pe_g, ke_g, _ = yield from compute_thermo(
                ctx, thermo_bufs, pe, kinetic_energy(vel), n_local
            )
            thermo_history.append((pe_g, ke_g))
            if step % 2 == 0 or n_lost:
                yield from check_atoms(ctx, thermo_bufs, pos, vel, n_lost, vmax=75.0)

        # ---- end: final verification and output reduction -------------
        ctx.set_phase("end")
        e_final = pe_g + ke_g
        drift_rel = abs(e_final - e0) / max(abs(e0), 1.0)
        if not np.isfinite(drift_rel) or drift_rel > 0.05:
            ctx.app_error(f"MD: total energy drifted by {drift_rel:.3%}")

        out = ctx.alloc(2, ctx.DOUBLE, "md.out")
        out_g = ctx.alloc(2, ctx.DOUBLE, "md.out_g")
        out.view[:] = (float(pos.sum()), float(n_local))
        yield from ctx.Reduce(out.addr, out_g.addr, 2, ctx.DOUBLE, ctx.SUM, 0, ctx.WORLD)
        return {
            "energy": e_final,
            "natoms": int(n_local),
            "temperature": 2.0 * ke_g / (3.0 * max(total_atoms, 1)),
        }
