"""Ghost-atom exchange and atom migration (LAMMPS ``comm`` style).

Both use the classic two-message protocol per direction: a count, then
the packed payload.  Everything flows through pre-allocated arena
staging buffers so the MPI layer sees real simulated memory.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ...simmpi import Context
from .domain import Domain


def alloc_comm_buffers(ctx: Context, capacity: int) -> dict:
    """Pre-allocate staging buffers for ghost exchange and migration.

    ``capacity`` is the maximum atom count per message.
    """
    bufs = {"cap": capacity}
    for name in ("cnt_sl", "cnt_sr", "cnt_rl", "cnt_rr"):
        bufs[name] = ctx.alloc(1, ctx.INT, f"md.{name}")
    for name in ("pay_sl", "pay_sr", "pay_rl", "pay_rr"):
        bufs[name] = ctx.alloc(capacity * 6, ctx.DOUBLE, f"md.{name}")
    return bufs


def _exchange(
    ctx: Context,
    domain: Domain,
    pack_left: np.ndarray,
    pack_right: np.ndarray,
    width: int,
    bufs: dict,
    tag: int,
) -> Generator:
    """Exchange packed per-atom records with both slab neighbours.

    ``pack_left``/``pack_right`` are ``(k, width)`` float arrays bound
    for the lower/higher slab; returns ``(from_left, from_right)`` in the
    same layout.  Raises the application-level "comm buffer overflow"
    check when an incoming count is implausible.
    """
    n = domain.nranks
    left = (domain.rank - 1) % n
    right = (domain.rank + 1) % n
    cap = bufs["cap"]

    bufs["cnt_sl"].view[0] = len(pack_left)
    bufs["cnt_sr"].view[0] = len(pack_right)
    yield from ctx.Send(bufs["cnt_sl"].addr, 1, ctx.INT, left, tag, ctx.WORLD)
    yield from ctx.Send(bufs["cnt_sr"].addr, 1, ctx.INT, right, tag + 1, ctx.WORLD)
    yield from ctx.Recv(bufs["cnt_rr"].addr, 1, ctx.INT, right, tag, ctx.WORLD)
    yield from ctx.Recv(bufs["cnt_rl"].addr, 1, ctx.INT, left, tag + 1, ctx.WORLD)
    n_from_right = int(bufs["cnt_rr"].view[0])
    n_from_left = int(bufs["cnt_rl"].view[0])
    if not (0 <= n_from_right <= cap and 0 <= n_from_left <= cap):
        ctx.app_error(
            f"MD: implausible incoming atom count ({n_from_left}/{n_from_right})"
        )

    if len(pack_left):
        bufs["pay_sl"].view[: pack_left.size] = pack_left.reshape(-1)
    yield from ctx.Send(bufs["pay_sl"].addr, len(pack_left) * width, ctx.DOUBLE, left, tag + 2, ctx.WORLD)
    if len(pack_right):
        bufs["pay_sr"].view[: pack_right.size] = pack_right.reshape(-1)
    yield from ctx.Send(bufs["pay_sr"].addr, len(pack_right) * width, ctx.DOUBLE, right, tag + 3, ctx.WORLD)
    yield from ctx.Recv(bufs["pay_rr"].addr, cap * width, ctx.DOUBLE, right, tag + 2, ctx.WORLD)
    yield from ctx.Recv(bufs["pay_rl"].addr, cap * width, ctx.DOUBLE, left, tag + 3, ctx.WORLD)
    from_right = bufs["pay_rr"].view[: n_from_right * width].reshape(-1, width).copy()
    from_left = bufs["pay_rl"].view[: n_from_left * width].reshape(-1, width).copy()
    return from_left, from_right


def exchange_ghosts(
    ctx: Context,
    domain: Domain,
    pos: np.ndarray,
    cutoff: float,
    bufs: dict,
    tag: int,
) -> Generator:
    """Collect neighbour-slab ghost positions within ``cutoff`` of our
    faces, with x already shifted into this rank's unwrapped frame."""
    if domain.nranks == 1:
        shift = np.array([domain.lx, 0.0, 0.0])
        return np.vstack([pos - shift, pos + shift])

    x = pos[:, 0]
    to_left = pos[domain.near_left(x, cutoff)].copy()
    if domain.rank == 0:
        to_left[:, 0] += domain.lx  # wraps to the top slab
    to_right = pos[domain.near_right(x, cutoff)].copy()
    if domain.rank == domain.nranks - 1:
        to_right[:, 0] -= domain.lx
    from_left, from_right = yield from _exchange(
        ctx, domain, to_left, to_right, 3, bufs, tag
    )
    return np.vstack([from_left, from_right]) if (len(from_left) or len(from_right)) else np.zeros((0, 3))


def migrate(
    ctx: Context,
    domain: Domain,
    pos: np.ndarray,
    vel: np.ndarray,
    bufs: dict,
    tag: int,
) -> Generator:
    """Reassign atoms that crossed a slab boundary to their new owner.

    Atoms that moved more than one slab in a reneighbour interval are
    *dropped* — exactly LAMMPS' "lost atoms" behaviour; the caller's
    global count check turns that into ``APP_DETECTED``.
    Returns ``(pos, vel, n_lost)``.
    """
    pos = domain.wrap(pos)
    if domain.nranks == 1:
        return pos, vel, 0
    off = domain.owner_offsets(pos[:, 0])
    stay = off == 0
    go_left = off == -1
    go_right = off == 1
    n_lost = int((~(stay | go_left | go_right)).sum())

    rec_left = np.hstack([pos[go_left], vel[go_left]])
    rec_right = np.hstack([pos[go_right], vel[go_right]])
    from_left, from_right = yield from _exchange(
        ctx, domain, rec_left, rec_right, 6, bufs, tag
    )
    incoming = [r for r in (from_left, from_right) if len(r)]
    new_pos = [pos[stay]] + [r[:, :3] for r in incoming]
    new_vel = [vel[stay]] + [r[:, 3:] for r in incoming]
    return np.vstack(new_pos), np.vstack(new_vel), n_lost
