"""Mini-LAMMPS: a Lennard-Jones molecular-dynamics workload."""

from .domain import Domain
from .minimd import MiniMD

__all__ = ["Domain", "MiniMD"]
