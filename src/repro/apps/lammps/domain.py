"""Spatial decomposition for the mini molecular-dynamics code.

LAMMPS-style 1-D slab decomposition along x with periodic boundaries in
all three dimensions.  Each rank owns the atoms whose (wrapped) x
coordinate falls in its slab; atoms near a slab face are communicated to
the neighbouring rank as ghosts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Domain:
    """The global simulation box and this rank's slab of it.

    Attributes
    ----------
    nranks / rank:
        Decomposition geometry.
    slab_w:
        Slab width along x; must exceed the interaction cutoff so only
        adjacent slabs exchange ghosts.
    ly, lz:
        Box extents in the undecomposed dimensions.
    """

    rank: int
    nranks: int
    slab_w: float
    ly: float
    lz: float

    @property
    def lx(self) -> float:
        return self.slab_w * self.nranks

    @property
    def xlo(self) -> float:
        return self.rank * self.slab_w

    @property
    def xhi(self) -> float:
        return (self.rank + 1) * self.slab_w

    def wrap(self, pos: np.ndarray) -> np.ndarray:
        """Wrap positions into the periodic box (in place-safe copy)."""
        box = np.array([self.lx, self.ly, self.lz])
        return pos - np.floor(pos / box) * box

    def owner_offsets(self, x: np.ndarray) -> np.ndarray:
        """Slab offsets of the owners of wrapped x coordinates, relative
        to this rank: 0 = mine, ±1 = neighbour, anything else = the atom
        moved more than one slab in one step ("lost atom")."""
        owner = np.floor(x / self.slab_w).astype(np.int64)
        diff = (owner - self.rank) % self.nranks
        diff = np.where(diff > self.nranks // 2, diff - self.nranks, diff)
        return diff

    def near_left(self, x: np.ndarray, cutoff: float) -> np.ndarray:
        """Mask of atoms within ``cutoff`` of the slab's low-x face."""
        return x < self.xlo + cutoff

    def near_right(self, x: np.ndarray, cutoff: float) -> np.ndarray:
        return x >= self.xhi - cutoff
