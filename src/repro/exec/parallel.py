"""The sharded campaign engine: a supervised pool with deterministic results.

Execution model
---------------
The campaign is cut into :class:`~repro.exec.sharding.WorkUnit` slices
(`(point_index, test_range)`).  Each worker process is initialised
exactly once with a pickled ``(app, profile, config)`` payload — the
expensive :class:`~repro.profiling.profiler.ApplicationProfile` is
never re-profiled — and then executes units streamed to it, rebuilding
every test's RNG from ``SeedSequence(seed, spawn_key=(point_index,
test_index))``.  Because the RNG derivation depends only on the unit's
coordinates, the assembled result is **bit-identical to the serial
run** regardless of worker count, unit size, or completion order.

Execution is *supervised* (:class:`~repro.exec.supervisor.SupervisedPool`):
a worker that dies or wedges mid-unit is respawned and its unit retried
with backoff; a unit that keeps taking workers down is quarantined —
its tests are recorded as synthetic ``TOOL_ERROR`` results (excluded
from every paper-facing outcome rate) and the campaign finishes instead
of aborting.  Retried units reproduce exactly what an undisturbed run
would have produced, so supervision never perturbs determinism for
successfully-executed units.

Workers record into private :class:`MetricsRegistry` snapshots that the
parent merges (`campaign.tests`, `campaign.outcome.*`, `exec.unit_s`);
point-level metrics (`campaign.points`, `campaign.point_error_rate`)
are recorded by the parent at assembly time so the merged registry
matches what a serial campaign would have recorded.

With a checkpoint directory attached, every successfully completed unit
is persisted through :class:`~repro.exec.checkpoint.CheckpointStore`;
with ``db_path`` set, through the SQLite-backed
:class:`~repro.store.DBCheckpointStore` instead (same lifecycle, same
torn-tail tolerance, plus queryable per-test rows, per-point tallies,
and progress telemetry).  Quarantined units are deliberately *not*
persisted: a later ``resume=True`` run retries them from scratch —
self-healing across restarts when the fault was environmental.
``KeyboardInterrupt`` tears the pool down, flushes the checkpoint
manifest, and re-raises, so an interrupted campaign is always
resumable.

Progress telemetry: when any :class:`~repro.obs.progress.ProgressSink`
is attached (explicitly, or implicitly by the campaign database), the
supervisor loop feeds a :class:`~repro.obs.progress.ProgressTracker`
that emits periodic snapshots — tests/sec, outcome histogram, worker
health, ETA — alongside the classic ``progress(done, total)`` callback.
"""

from __future__ import annotations

import pickle
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from .. import __version__
from ..apps.base import Application
from ..injection.outcome import Outcome
from ..injection.runner import TestResult
from ..injection.models import draw_spec
from ..injection.space import InjectionPoint
from ..obs.metrics import MetricsRegistry
from ..obs.progress import ProgressTracker
from ..profiling.profiler import ApplicationProfile
from .checkpoint import CheckpointStore, campaign_digest
from .sharding import WorkUnit, default_unit_tests, make_units, units_of_point
from .supervisor import SupervisedPool, SupervisorConfig, WorkerState

if TYPE_CHECKING:  # pragma: no cover
    from ..injection.campaign import Campaign, CampaignResult
    from ..obs.events import Tracer


class ParallelCampaign:
    """Sharded, resumable, fault-contained campaign execution.

    Drop-in engine behind :class:`repro.injection.campaign.Campaign`:
    ``Campaign(jobs=4).run(points)`` delegates here and returns a
    :class:`CampaignResult` bit-identical to ``jobs=1`` for every unit
    that executed successfully.
    """

    def __init__(
        self,
        app: Application,
        profile: ApplicationProfile,
        tests_per_point: int = 100,
        param_policy: str = "buffer",
        seed: int = 0,
        jobs: int = 1,
        unit_tests: int | None = None,
        progress: Callable[[int, int], None] | None = None,
        progress_every: int = 1,
        checkpoint_dir=None,
        db_path=None,
        resume: bool = False,
        checkpoint_every: int = 1,
        algorithms: dict[str, str] | None = None,
        metrics: MetricsRegistry | None = None,
        unit_timeout: float | None = None,
        max_retries: int = 2,
        quarantine: bool = True,
        tracer: "Tracer | None" = None,
        progress_sinks: Sequence | None = None,
        snapshot: bool = True,
        fault_model: str = "bitflip",
        scenario=None,
        stopper=None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if checkpoint_dir is not None and db_path is not None:
            raise ValueError("checkpoint_dir and db_path are mutually exclusive")
        self.app = app
        self.profile = profile
        self.tests_per_point = tests_per_point
        self.param_policy = param_policy
        self.seed = seed
        self.jobs = jobs
        self.unit_tests = unit_tests
        self.progress = progress
        self.progress_every = max(1, progress_every)
        self.checkpoint_dir = checkpoint_dir
        self.db_path = db_path
        self.resume = resume
        self.checkpoint_every = checkpoint_every
        #: Extra :class:`~repro.obs.progress.ProgressSink` consumers fed
        #: by the supervisor loop (the campaign database adds its own).
        self.progress_sinks = list(progress_sinks or [])
        self.algorithms = algorithms
        self.metrics = metrics
        self.supervisor_config = SupervisorConfig(
            unit_timeout=unit_timeout,
            max_retries=max_retries,
            quarantine=quarantine,
        )
        self.tracer = tracer
        #: Snapshot-and-fork serving in the workers (:mod:`repro.snapshot`).
        #: Also selects the unit layout: with no explicit ``unit_tests``,
        #: snapshot campaigns use the site-major ``"s1"`` layout (one
        #: prefix park per point, site-adjacent ordering).
        self.snapshot = snapshot
        #: Fault-model name / optional scenario timeline (see
        #: :mod:`repro.injection.models`), forwarded to every worker.
        self.fault_model = fault_model
        self.scenario = scenario
        #: Optional :class:`~repro.steer.SequentialStopper`, forwarded
        #: to every worker.  Forces whole-point units: the stop decision
        #: consumes the ordered per-point test prefix, which only one
        #: owner can observe.
        self.stopper = stopper
        #: Unit ids given up on during the last :meth:`run` (their tests
        #: carry synthetic ``TOOL_ERROR`` verdicts).
        self.quarantined: list[str] = []

    @classmethod
    def from_campaign(cls, campaign: "Campaign") -> "ParallelCampaign":
        return cls(
            app=campaign.app,
            profile=campaign.profile,
            tests_per_point=campaign.tests_per_point,
            param_policy=campaign.param_policy,
            seed=campaign.seed,
            jobs=campaign.jobs,
            progress=campaign.progress,
            progress_every=campaign.progress_every,
            checkpoint_dir=campaign.checkpoint_dir,
            db_path=campaign.db_path,
            resume=campaign.resume,
            algorithms=campaign.algorithms,
            metrics=campaign.metrics,
            unit_timeout=campaign.unit_timeout,
            max_retries=campaign.max_retries,
            quarantine=campaign.quarantine,
            tracer=campaign.tracer,
            progress_sinks=campaign.progress_sinks,
            snapshot=campaign.snapshot,
            fault_model=campaign.fault_model,
            scenario=campaign.scenario,
            stopper=campaign.stopper,
        )

    # -- quarantine synthesis ------------------------------------------

    def _synthesize_quarantined(
        self, unit: WorkUnit, point: InjectionPoint, reason: str
    ) -> list[TestResult]:
        """Synthetic ``TOOL_ERROR`` results for a given-up unit.

        The fault specs are rebuilt through the same deterministic RNG
        derivation the worker would have used, so the result records
        *which* injections were abandoned — only the verdicts are
        synthetic.
        """
        tests: list[TestResult] = []
        for t in range(unit.test_start, unit.test_stop):
            seq = np.random.SeedSequence(
                entropy=self.seed, spawn_key=(unit.point_index, t)
            )
            rng = np.random.default_rng(seq)
            spec = draw_spec(
                point, rng,
                policy=self.param_policy,
                model=self.fault_model,
                scenario=self.scenario,
            )
            tests.append(
                TestResult(
                    spec,
                    Outcome.TOOL_ERROR,
                    None,
                    detail=f"unit {unit.unit_id} quarantined: {reason}",
                )
            )
        return tests

    # -- execution -----------------------------------------------------

    def run(
        self,
        points: Sequence[InjectionPoint],
        point_indices: Sequence[int] | None = None,
        digest: str | None = None,
    ) -> "CampaignResult":
        from ..injection.campaign import CampaignResult, PointResult

        points = list(points)
        # Global point indices: drive the SeedSequence spawn keys and the
        # unit ids, so a batch driver running a subset gets exactly the
        # units a full campaign would have produced at those points.
        if point_indices is None:
            point_indices = list(range(len(points)))
        else:
            point_indices = [int(i) for i in point_indices]
            if len(point_indices) != len(points):
                raise ValueError(
                    f"{len(point_indices)} point_indices for {len(points)} points"
                )
            if len(set(point_indices)) != len(point_indices):
                raise ValueError("point_indices must be unique")
        pos_of = {g: p for p, g in enumerate(point_indices)}
        # Site-major layout only when the snapshot engine will serve the
        # units and the caller did not pin an explicit unit size.
        layout = "s1" if (self.snapshot and self.unit_tests is None) else "p1"
        if self.stopper is not None:
            # Whole-point units regardless of layout: the stop decision
            # is a function of the ordered per-point prefix, so exactly
            # one worker must own all of a point's tests.
            unit_tests = max(1, self.tests_per_point)
        elif layout == "s1":
            unit_tests = max(1, self.tests_per_point)
        else:
            unit_tests = (
                self.unit_tests
                if self.unit_tests is not None
                else default_unit_tests(self.tests_per_point)
            )
        units = [
            WorkUnit(point_indices[u.point_index], u.test_start, u.test_stop)
            for u in make_units(
                len(points), self.tests_per_point, unit_tests,
                points=points, layout=layout,
            )
        ]
        total_tests = len(points) * self.tests_per_point
        self.quarantined = []

        store = None
        results: dict[str, list[TestResult]] = {}
        if self.checkpoint_dir is not None or self.db_path is not None:
            if digest is None:
                digest = campaign_digest(
                    self.app,
                    self.seed,
                    self.tests_per_point,
                    self.param_policy,
                    unit_tests,
                    points,
                    algorithms=self.algorithms,
                    layout=layout,
                    fault_model=self.fault_model,
                    scenario_fp=(
                        None if self.scenario is None else self.scenario.fingerprint()
                    ),
                )
            if self.db_path is not None:
                # Lazy import: repro.store depends on repro.exec.sharding.
                from ..store import DBCheckpointStore

                store = DBCheckpointStore(
                    self.db_path,
                    digest,
                    campaign_info=dict(
                        app=self.app.name,
                        nranks=self.app.nranks,
                        seed=self.seed,
                        tests_per_point=self.tests_per_point,
                        param_policy=self.param_policy,
                        unit_tests=unit_tests,
                        algorithms=self.algorithms,
                        code_version=__version__,
                        n_points=len(points),
                        total_units=len(units),
                    ),
                )
            else:
                store = CheckpointStore(
                    self.checkpoint_dir, digest,
                    flush_every=self.checkpoint_every, layout=layout,
                )
            for unit_id, (tests, registry) in store.load(resume=self.resume).items():
                results[unit_id] = tests
                if self.metrics is not None and registry is not None:
                    self.metrics.merge(registry)
                if self.metrics is not None:
                    self.metrics.counter("exec.units_resumed").inc()

        known = {u.unit_id for u in units}
        pending = [u for u in units if u.unit_id not in results]
        done_tests = sum(len(results[uid]) for uid in results if uid in known)
        done_units = 0
        last_reported = -1

        sinks = list(self.progress_sinks)
        if store is not None and self.db_path is not None:
            sinks.append(store.progress_sink())
        tracker: ProgressTracker | None = None
        if sinks:
            tracker = ProgressTracker(
                total_tests,
                len(units),
                sinks=sinks,
                every_units=self.progress_every,
                workers=self.jobs,
                metrics=self.metrics,
            )
            for unit_id, tests in results.items():
                if unit_id in known:
                    tracker.seed(tests)

        def report(force: bool = False) -> None:
            nonlocal last_reported
            if self.progress is None:
                return
            if force or done_units % self.progress_every == 0:
                if done_tests != last_reported:
                    self.progress(done_tests, total_tests)
                    last_reported = done_tests

        def complete(unit_id: str, tests: list[TestResult], registry: MetricsRegistry) -> None:
            nonlocal done_tests, done_units
            results[unit_id] = tests
            done_tests += len(tests)
            done_units += 1
            if store is not None:
                store.record(unit_id, tests, registry)
            if self.metrics is not None:
                self.metrics.merge(registry)
                # Counted here, not in the worker snapshot, so replaying a
                # checkpointed unit never inflates the executed-unit count.
                self.metrics.counter("exec.units").inc()
            if tracker is not None:
                tracker.unit_done(tests)
            report()

        def give_up(unit: WorkUnit, point: InjectionPoint, reason: str) -> None:
            """Record a quarantined unit: synthetic results, no checkpoint.

            Skipping the checkpoint is deliberate — a ``resume=True``
            restart retries the unit from scratch, which heals campaigns
            whose failure cause was environmental.
            """
            nonlocal done_tests, done_units
            tests = self._synthesize_quarantined(unit, point, reason)
            results[unit.unit_id] = tests
            self.quarantined.append(unit.unit_id)
            done_tests += len(tests)
            done_units += 1
            if store is not None:
                store.record_quarantine(unit.unit_id, reason)
            if self.metrics is not None:
                self.metrics.counter("campaign.tests").inc(len(tests))
                self.metrics.counter(
                    f"campaign.outcome.{Outcome.TOOL_ERROR.name}"
                ).inc(len(tests))
            if tracker is not None:
                tracker.unit_quarantined(tests)
            report()

        try:
            if pending:
                if self.jobs == 1:
                    state = WorkerState(
                        self.app, self.profile, self.param_policy, self.seed,
                        self.algorithms, self.snapshot,
                        self.fault_model, self.scenario, self.stopper,
                    )
                    for unit in pending:
                        complete(*state.execute(unit, points[pos_of[unit.point_index]]))
                else:
                    payload = pickle.dumps(
                        (self.app, self.profile, self.param_policy, self.seed,
                         self.algorithms, self.snapshot,
                         self.fault_model, self.scenario, self.stopper),
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                    tasks = [(u, points[pos_of[u.point_index]]) for u in pending]
                    pool = SupervisedPool(
                        payload,
                        jobs=min(self.jobs, max(1, len(pending))),
                        config=self.supervisor_config,
                        metrics=self.metrics,
                        tracer=self.tracer,
                    )
                    events = pool.run(tasks)
                    try:
                        for event in events:
                            if event[0] == "done":
                                _, att, (unit_id, tests, registry) = event
                                complete(unit_id, tests, registry)
                            else:  # "quarantined"
                                _, att, reason = event
                                give_up(att.unit, att.point, reason)
                    finally:
                        # Tears the workers down on *any* exit from the
                        # consuming loop, KeyboardInterrupt included.
                        events.close()
        except BaseException:
            # Interrupted or failed: the pool is already down (generator
            # close above); emit the final telemetry snapshot and flush a
            # resumable manifest before propagating.
            if tracker is not None:
                tracker.finish()
            if store is not None and not store.closed:
                store.write_manifest(
                    total_units=len(units), complete=False, quarantined=self.quarantined
                )
                store.close()
            raise

        report(force=True)

        # -- deterministic assembly: point order, then test order ------
        result = CampaignResult(self.app.name, self.tests_per_point, self.param_policy)
        grouped = units_of_point(units)
        tallies: list[tuple] = []
        for i, point in enumerate(points):
            g = point_indices[i]
            pr = PointResult(point)
            for unit in grouped.get(g, ()):
                for test in results[unit.unit_id]:
                    pr.add(test)
            result.points[point] = pr
            for outcome, n in sorted(
                pr._synced_counts().items(), key=lambda kv: kv[0].name
            ):
                tallies.append(
                    (g, point.rank, point.collective, point.site,
                     point.invocation, outcome.name, n)
                )
            if self.metrics is not None:
                self.metrics.counter("campaign.points").inc()
                self.metrics.histogram("campaign.point_error_rate").observe(pr.error_rate)

        if tracker is not None:
            tracker.finish()
        if store is not None and not store.closed:
            store.record_point_tallies(tallies)
            if self.metrics is not None:
                store.record_metrics("final", self.metrics)
            finished = all(u.unit_id in store.completed for u in units)
            store.write_manifest(
                total_units=len(units),
                complete=finished,
                quarantined=self.quarantined,
            )
            store.close()
        return result
