"""Campaign checkpoint/resume: digests and the on-disk store.

An interrupted campaign should restart where it left off — but only if
it is *the same campaign*.  :func:`campaign_digest` hashes everything a
campaign's results are a function of (application identity and
parameters, rank count, seed, tests per point, target policy, unit
layout, the exact point list, algorithm selection, and the code
version); the store refuses to resume from a checkpoint whose digest
does not match.

The store keeps two files in its directory:

* ``units.pkl`` — an append-only stream of pickled records, one per
  completed work unit (its id, its :class:`TestResult` list, and the
  worker's metrics snapshot), headed by a digest record.  Appends are
  flushed *and fsynced* per unit, so a completed unit survives host
  power loss, not just process death; a torn final record (the process
  died mid-write) is detected and dropped on load.
* ``manifest.json`` — a periodically rewritten, atomically replaced
  summary (digest, completed unit ids, quarantined unit ids, totals)
  for humans and tooling; the rename is followed by a directory fsync
  so the replacement itself is durable.  The pickle stream remains the
  source of truth.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Any

from .. import __version__
from ..apps.base import Application
from ..injection.runner import TestResult
from ..injection.space import InjectionPoint
from ..obs.metrics import MetricsRegistry

UNITS_FILE = "units.pkl"
MANIFEST_FILE = "manifest.json"


class CheckpointMismatch(RuntimeError):
    """Resume requested against a checkpoint of a different campaign."""


def campaign_digest(
    app: Application,
    seed: int,
    tests_per_point: int,
    param_policy: str,
    unit_tests: int,
    points: list[InjectionPoint],
    algorithms: dict[str, str] | None = None,
    code_version: str = __version__,
    layout: str = "p1",
    fault_model: str = "bitflip",
    scenario_fp: str | None = None,
    extra: dict | None = None,
) -> str:
    """Hash of everything the campaign's results are a function of.

    ``layout`` is the unit-layout version tag
    (:data:`repro.exec.sharding.LAYOUTS`).  The classic point-major
    layout (``"p1"``) is deliberately omitted from the payload so every
    digest computed before the tag existed stays byte-identical —
    pre-existing checkpoints keep resuming.  The same omit-when-default
    rule applies to ``fault_model`` (``"bitflip"``), ``scenario_fp``
    (``None``), and ``extra`` (``None``): single-bit campaigns digest
    exactly as they always have.

    ``extra`` is a JSON-serialisable dict for drivers whose results
    depend on more than the plain campaign axes — the adaptive steering
    loop hashes its batching/stopping parameters here so a resumed
    steering run refuses units from a differently-steered campaign.
    """
    fields = {
        "app": app.name,
        "params": {k: repr(v) for k, v in sorted(app.params.items())},
        "nranks": app.nranks,
        "seed": seed,
        "tests_per_point": tests_per_point,
        "param_policy": param_policy,
        "unit_tests": unit_tests,
        "points": [
            [p.rank, p.collective, p.site, p.invocation] for p in points
        ],
        "algorithms": dict(sorted((algorithms or {}).items())),
        "code_version": code_version,
    }
    if layout != "p1":
        fields["layout"] = layout
    if fault_model != "bitflip":
        fields["fault_model"] = fault_model
    if scenario_fp is not None:
        fields["scenario"] = scenario_fp
    if extra:
        fields["extra"] = extra
    payload = json.dumps(fields, sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


class CheckpointStore:
    """Completed-unit persistence for one campaign run."""

    def __init__(
        self,
        directory: str | os.PathLike,
        digest: str,
        flush_every: int = 1,
        layout: str = "p1",
    ):
        self.directory = Path(directory)
        self.digest = digest
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.flush_every = flush_every
        #: Unit-layout version tag recorded in the stream header; a
        #: layout change alters the digest, and the header lets the
        #: mismatch message say *why* instead of just "different".
        self.layout = layout
        self.completed: dict[str, tuple[list[TestResult], MetricsRegistry | None]] = {}
        self._fh = None
        self._since_manifest = 0

    @property
    def units_path(self) -> Path:
        return self.directory / UNITS_FILE

    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_FILE

    # -- lifecycle -----------------------------------------------------

    def load(self, resume: bool) -> dict[str, tuple[list[TestResult], MetricsRegistry | None]]:
        """Read completed units from disk and open the stream for appends.

        ``resume=False`` discards any existing checkpoint and starts a
        fresh stream.  ``resume=True`` replays a matching stream — a
        digest mismatch raises :class:`CheckpointMismatch` instead of
        silently throwing away (or worse, reusing) a different
        campaign's results.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        self.completed = {}
        if resume and self.units_path.exists():
            with self.units_path.open("rb") as fh:
                try:
                    header = pickle.load(fh)
                except (EOFError, pickle.UnpicklingError):
                    header = None
                if header is not None:
                    found = header.get("digest") if isinstance(header, dict) else None
                    if found != self.digest:
                        found_layout = (
                            header.get("layout", "p1")
                            if isinstance(header, dict)
                            else "p1"
                        )
                        hint = "delete it or run without --resume"
                        if found_layout != self.layout:
                            hint = (
                                f"it was written with unit layout "
                                f"{found_layout!r}, this run uses "
                                f"{self.layout!r} (the --snapshot/--no-snapshot "
                                "setting selects the layout) — rerun with the "
                                "original setting, or delete the checkpoint"
                            )
                        raise CheckpointMismatch(
                            f"checkpoint in {self.directory} belongs to a different "
                            f"campaign (digest {found!r}, expected {self.digest!r}); "
                            + hint
                        )
                    while True:
                        try:
                            record = pickle.load(fh)
                        except (EOFError, pickle.UnpicklingError, AttributeError):
                            break  # clean end of stream or torn final record
                        if record.get("type") == "unit":
                            self.completed[record["unit_id"]] = (
                                record["tests"],
                                record.get("metrics"),
                            )
        if self.completed:
            # Append to the verified stream.
            self._fh = self.units_path.open("ab")
        else:
            self._fh = self.units_path.open("wb")
            pickle.dump(
                {"digest": self.digest, "format": 1, "layout": self.layout},
                self._fh,
            )
            self._sync_stream()
        return self.completed

    def _sync_stream(self) -> None:
        """Flush and fsync the append stream: the unit is durable once
        this returns, even against host power loss."""
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def record(
        self,
        unit_id: str,
        tests: list[TestResult],
        metrics: MetricsRegistry | None = None,
    ) -> None:
        """Persist one completed unit (flushed and fsynced immediately)."""
        if self._fh is None:
            raise RuntimeError("CheckpointStore.load() must be called before record()")
        self.completed[unit_id] = (tests, metrics)
        pickle.dump(
            {"type": "unit", "unit_id": unit_id, "tests": tests, "metrics": metrics},
            self._fh,
        )
        self._sync_stream()
        self._since_manifest += 1
        if self._since_manifest >= self.flush_every:
            self.write_manifest()

    def write_manifest(
        self,
        total_units: int | None = None,
        complete: bool = False,
        quarantined: list[str] | None = None,
    ) -> None:
        """Atomically rewrite the JSON manifest (tmp + rename + dir fsync).

        ``quarantined`` records units the supervisor gave up on; they
        are *not* in ``completed`` (their results are synthetic), so a
        resumed campaign retries them.
        """
        manifest: dict[str, Any] = {
            "digest": self.digest,
            "completed": sorted(self.completed),
            "n_completed": len(self.completed),
            "complete": complete,
        }
        if total_units is not None:
            manifest["total_units"] = total_units
        if quarantined is not None:
            manifest["quarantined"] = sorted(quarantined)
        tmp = self.manifest_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True))
        os.replace(tmp, self.manifest_path)
        # Durability of the rename itself: fsync the containing directory
        # so a crash cannot resurrect the old manifest.
        dir_fd = os.open(self.directory, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
        self._since_manifest = 0

    # -- store extensions (no-ops here) ---------------------------------
    #
    # The SQLite sibling (:class:`repro.store.DBCheckpointStore`) keeps
    # richer, queryable state than the pickle stream can express.  The
    # campaign engine drives both through one interface, so the extra
    # hooks exist here as deliberate no-ops: the stream records completed
    # units only, and the manifest already names quarantined unit ids.

    def record_quarantine(self, unit_id: str, reason: str) -> None:
        """No-op: quarantine reasons are not persisted in the pickle
        format (the manifest lists the unit ids)."""

    def record_point_tallies(self, tallies: list[tuple]) -> None:
        """No-op: per-point tallies are recomputed from the stream."""

    def record_metrics(self, label: str, registry: MetricsRegistry) -> None:
        """No-op: per-unit metrics snapshots already live in the stream."""

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran (or before :meth:`load`)."""
        return self._fh is None

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CheckpointStore":  # pragma: no cover - convenience
        return self

    def __exit__(self, *exc) -> None:  # pragma: no cover - convenience
        self.close()
