"""Deterministic sharding of a campaign into work units.

A *work unit* is a contiguous slice of test indices at one injection
point: ``(point_index, test_start, test_stop)``.  The unit layout is a
pure function of ``(n_points, tests_per_point, unit_tests)`` — it never
depends on the worker count — so checkpoints written by a 4-worker run
resume cleanly under 1 worker and vice versa, and unit ids are stable
keys for the checkpoint store.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_UNIT_ID_RE = re.compile(r"p(\d+):t(\d+)-(\d+)\Z")


@dataclass(frozen=True, order=True)
class WorkUnit:
    """One schedulable slice of a campaign: tests
    ``[test_start, test_stop)`` of point ``point_index``."""

    point_index: int
    test_start: int
    test_stop: int

    @property
    def n_tests(self) -> int:
        return self.test_stop - self.test_start

    @property
    def unit_id(self) -> str:
        """Stable string key used by the checkpoint store."""
        return f"p{self.point_index}:t{self.test_start}-{self.test_stop}"

    @classmethod
    def from_unit_id(cls, unit_id: str) -> "WorkUnit":
        """Invert :attr:`unit_id` — the key format is bidirectional so
        stores can recover a unit's coordinates from its string key."""
        m = _UNIT_ID_RE.match(unit_id)
        if m is None:
            raise ValueError(f"not a work-unit id: {unit_id!r}")
        return cls(int(m.group(1)), int(m.group(2)), int(m.group(3)))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.unit_id


#: Target number of units per point: fine enough that a pool stays busy
#: even when there are fewer points than workers, coarse enough that one
#: unit amortises the per-unit IPC round trip over several full
#: simulated jobs.
UNITS_PER_POINT = 4


def default_unit_tests(tests_per_point: int) -> int:
    """Default tests per unit — deliberately independent of the worker
    count so unit layout (and checkpoint keys) survive ``--jobs``
    changes."""
    return max(1, -(-tests_per_point // UNITS_PER_POINT))


def make_units(
    n_points: int, tests_per_point: int, unit_tests: int | None = None
) -> list[WorkUnit]:
    """Enumerate the campaign's work units in canonical order."""
    if n_points < 0:
        raise ValueError(f"n_points must be >= 0, got {n_points}")
    if tests_per_point < 0:
        raise ValueError(f"tests_per_point must be >= 0, got {tests_per_point}")
    if unit_tests is None:
        unit_tests = default_unit_tests(tests_per_point)
    if unit_tests < 1:
        raise ValueError(f"unit_tests must be >= 1, got {unit_tests}")
    units: list[WorkUnit] = []
    for pi in range(n_points):
        for start in range(0, tests_per_point, unit_tests):
            units.append(WorkUnit(pi, start, min(start + unit_tests, tests_per_point)))
    return units


def units_of_point(units: list[WorkUnit]) -> dict[int, list[WorkUnit]]:
    """Group units by point index, each group in test order."""
    grouped: dict[int, list[WorkUnit]] = {}
    for u in units:
        grouped.setdefault(u.point_index, []).append(u)
    for group in grouped.values():
        group.sort(key=lambda u: u.test_start)
    return grouped
