"""Deterministic sharding of a campaign into work units.

A *work unit* is a contiguous slice of test indices at one injection
point: ``(point_index, test_start, test_stop)``.  The unit layout is a
pure function of ``(n_points, tests_per_point, unit_tests, layout)`` —
it never depends on the worker count — so checkpoints written by a
4-worker run resume cleanly under 1 worker and vice versa, and unit ids
are stable keys for the checkpoint store.

Two layouts exist, named by a version tag that participates in the
campaign digest (:func:`repro.exec.checkpoint.campaign_digest`):

* ``"p1"`` — classic point-major: each point is cut into
  ``UNITS_PER_POINT`` slices, enumerated in point order.  Best when
  tests are independent full replays (``--no-snapshot``).
* ``"s1"`` — site-major: one unit carries *all* tests of its point, and
  units are ordered by ``(site_key, point_index)`` so every invocation
  of one static call site is served consecutively.  This is the layout
  the snapshot-and-fork engine (:mod:`repro.snapshot`) wants: the
  fault-free prefix is parked once per unit and amortised over the
  whole test batch, and consecutive units share prefix structure.

Unit *ids* are layout-independent (``p<i>:t<a>-<b>``); only the slicing
and ordering differ, which is why the tag must be part of the digest —
resuming a ``p1`` checkpoint under ``s1`` would silently mix unit
geometries.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Sequence

_UNIT_ID_RE = re.compile(r"p(\d+):t(\d+)-(\d+)\Z")


@dataclass(frozen=True, order=True)
class WorkUnit:
    """One schedulable slice of a campaign: tests
    ``[test_start, test_stop)`` of point ``point_index``."""

    point_index: int
    test_start: int
    test_stop: int

    @property
    def n_tests(self) -> int:
        return self.test_stop - self.test_start

    @property
    def unit_id(self) -> str:
        """Stable string key used by the checkpoint store."""
        return f"p{self.point_index}:t{self.test_start}-{self.test_stop}"

    @classmethod
    def from_unit_id(cls, unit_id: str) -> "WorkUnit":
        """Invert :attr:`unit_id` — the key format is bidirectional so
        stores can recover a unit's coordinates from its string key."""
        m = _UNIT_ID_RE.match(unit_id)
        if m is None:
            raise ValueError(f"not a work-unit id: {unit_id!r}")
        return cls(int(m.group(1)), int(m.group(2)), int(m.group(3)))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.unit_id


#: Target number of units per point: fine enough that a pool stays busy
#: even when there are fewer points than workers, coarse enough that one
#: unit amortises the per-unit IPC round trip over several full
#: simulated jobs.
UNITS_PER_POINT = 4


def default_unit_tests(tests_per_point: int) -> int:
    """Default tests per unit — deliberately independent of the worker
    count so unit layout (and checkpoint keys) survive ``--jobs``
    changes."""
    return max(1, -(-tests_per_point // UNITS_PER_POINT))


#: Recognised unit-layout version tags (see module docstring).
LAYOUTS = ("p1", "s1")


def make_units(
    n_points: int,
    tests_per_point: int,
    unit_tests: int | None = None,
    *,
    points: Sequence | None = None,
    layout: str = "p1",
) -> list[WorkUnit]:
    """Enumerate the campaign's work units in canonical order.

    ``layout="s1"`` (site-major) requires the point list itself: units
    are ordered by each point's ``site_key`` so all invocations of one
    call site run consecutively, and ``unit_tests`` defaults to
    ``tests_per_point`` (one prefix park serves the whole point).
    """
    if n_points < 0:
        raise ValueError(f"n_points must be >= 0, got {n_points}")
    if tests_per_point < 0:
        raise ValueError(f"tests_per_point must be >= 0, got {tests_per_point}")
    if layout not in LAYOUTS:
        raise ValueError(f"unknown unit layout {layout!r}; known: {LAYOUTS}")
    if layout == "s1":
        if points is None:
            raise ValueError("layout='s1' requires the points sequence")
        if len(points) != n_points:
            raise ValueError(
                f"points sequence has {len(points)} entries, expected {n_points}"
            )
        if unit_tests is None:
            unit_tests = max(1, tests_per_point)
    if unit_tests is None:
        unit_tests = default_unit_tests(tests_per_point)
    if unit_tests < 1:
        raise ValueError(f"unit_tests must be >= 1, got {unit_tests}")
    order = range(n_points)
    if layout == "s1":
        order = sorted(order, key=lambda pi: (points[pi].site_key, pi))
    units: list[WorkUnit] = []
    for pi in order:
        for start in range(0, tests_per_point, unit_tests):
            units.append(WorkUnit(pi, start, min(start + unit_tests, tests_per_point)))
    return units


def units_of_point(units: list[WorkUnit]) -> dict[int, list[WorkUnit]]:
    """Group units by point index, each group in test order."""
    grouped: dict[int, list[WorkUnit]] = {}
    for u in units:
        grouped.setdefault(u.point_index, []).append(u)
    for group in grouped.values():
        group.sort(key=lambda u: u.test_start)
    return grouped
