"""``repro.exec`` — the parallel, resumable campaign execution engine.

A fault-injection campaign is a pure function of ``(app, nranks, seed,
config)``: every test rebuilds its RNG from ``SeedSequence(seed,
spawn_key=(point_index, test_index))``.  That purity is what this
package exploits — work units of ``(point_index, test_range)`` can be
sharded across a process pool in any order, on any number of workers,
and the assembled :class:`~repro.injection.campaign.CampaignResult` is
bit-identical to the serial run.

Layers:

* :mod:`repro.exec.sharding` — deterministic work-unit enumeration;
* :mod:`repro.exec.checkpoint` — campaign digests and the atomic
  checkpoint/resume store;
* :mod:`repro.exec.parallel` — the :class:`ParallelCampaign` engine
  (worker pool, result streaming, metrics merging).
"""

from .checkpoint import CheckpointMismatch, CheckpointStore, campaign_digest
from .parallel import ParallelCampaign
from .sharding import WorkUnit, default_unit_tests, make_units, units_of_point

__all__ = [
    "CheckpointMismatch",
    "CheckpointStore",
    "ParallelCampaign",
    "WorkUnit",
    "campaign_digest",
    "default_unit_tests",
    "make_units",
    "units_of_point",
]
