"""``repro.exec`` — the parallel, resumable campaign execution engine.

A fault-injection campaign is a pure function of ``(app, nranks, seed,
config)``: every test rebuilds its RNG from ``SeedSequence(seed,
spawn_key=(point_index, test_index))``.  That purity is what this
package exploits — work units of ``(point_index, test_range)`` can be
sharded across a process pool in any order, on any number of workers,
and the assembled :class:`~repro.injection.campaign.CampaignResult` is
bit-identical to the serial run.

Layers:

* :mod:`repro.exec.sharding` — deterministic work-unit enumeration;
* :mod:`repro.exec.checkpoint` — campaign digests and the atomic,
  fsync-durable checkpoint/resume store;
* :mod:`repro.exec.supervisor` — the fault-contained worker pool
  (death/wedge detection, respawn, retries, quarantine);
* :mod:`repro.exec.parallel` — the :class:`ParallelCampaign` engine
  (unit scheduling, result streaming, metrics merging, quarantine
  synthesis).
"""

from .checkpoint import CheckpointMismatch, CheckpointStore, campaign_digest
from .parallel import ParallelCampaign
from .sharding import WorkUnit, default_unit_tests, make_units, units_of_point
from .supervisor import SupervisedPool, SupervisorConfig, UnitFailedError

__all__ = [
    "CheckpointMismatch",
    "CheckpointStore",
    "ParallelCampaign",
    "SupervisedPool",
    "SupervisorConfig",
    "UnitFailedError",
    "WorkUnit",
    "campaign_digest",
    "default_unit_tests",
    "make_units",
    "units_of_point",
]
