"""Worker supervision: the fault-contained campaign execution core.

FastFIT's premise is millions of unattended injection tests, which makes
the harness itself a fault domain: a worker process can die (a real
segfault in a native library, an ``os._exit`` in application code under
test), wedge (runaway allocation, a pathological sim), or crash with a
Python error the in-worker containment could not absorb.  A blind
``Pool.imap_unordered`` loop turns any of those into a lost campaign.

:class:`SupervisedPool` replaces it with an explicit supervision state
machine.  Each worker slot is a dedicated process joined to the parent
by a duplex pipe, so the parent always knows *which* unit a worker owns:

* **death detection** — a worker's pipe hitting EOF (the kernel closes
  it when the process dies, however it dies) immediately surfaces the
  lost unit; the slot is respawned and the unit re-queued;
* **wedge detection** — every dispatch carries a wall-clock deadline
  (``unit_timeout``); a worker that blows it is killed, respawned, and
  the unit re-queued;
* **bounded retries** — each unit gets ``max_retries`` re-dispatches
  with exponential backoff; because every test's RNG derives only from
  ``(seed, point, test)``, a retried unit reproduces the exact results
  an undisturbed run would have produced;
* **quarantine** — a unit that keeps taking the harness down is
  reported to the caller instead of aborting the campaign; the caller
  records synthetic ``TOOL_ERROR`` results (kept out of all
  paper-metric outcome rates) and carries on.

Everything is observable: ``exec.retries`` / ``exec.worker_deaths`` /
``exec.quarantined`` counters, and ``unit_retry`` / ``unit_quarantined``
tracer events.

The module also hosts the chaos hooks (``FASTFIT_CHAOS_*`` environment
variables) that the chaos tests and the CI chaos smoke job use to make
workers crash, raise, or hang deterministically.  They are read inside
the worker only, never in the parent.
"""

from __future__ import annotations

import heapq
import os
import pickle
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing import get_context
from multiprocessing.connection import Connection, wait as connection_wait
from typing import TYPE_CHECKING, Iterator, Sequence

import numpy as np

from ..apps.base import Application
from ..injection.runner import InjectionRunner, TestResult
from ..injection.models import draw_spec
from ..injection.space import FaultSpec, InjectionPoint
from ..obs.metrics import MetricsRegistry
from ..profiling.profiler import ApplicationProfile
from .sharding import WorkUnit

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.events import Tracer


class UnitFailedError(RuntimeError):
    """A work unit exhausted its retries and quarantine is disabled."""

    def __init__(self, unit_id: str, attempts: int, reason: str):
        self.unit_id = unit_id
        self.attempts = attempts
        self.reason = reason
        super().__init__(
            f"work unit {unit_id} failed {attempts} attempt(s) "
            f"and quarantine is disabled: {reason}"
        )


@dataclass(frozen=True)
class SupervisorConfig:
    """Policy knobs of the supervision state machine.

    Attributes
    ----------
    unit_timeout:
        Wall-clock seconds one dispatch attempt may take before the
        worker is declared wedged and killed (``None`` = no deadline).
    max_retries:
        Re-dispatches granted per unit after its first failure.
    quarantine:
        ``True``: exhausted units are reported as quarantined and the
        campaign continues; ``False``: raise :class:`UnitFailedError`.
    backoff_base / backoff_factor / backoff_max:
        Exponential backoff between re-dispatches of the same unit:
        attempt *n* waits ``min(backoff_max, backoff_base *
        backoff_factor**(n-1))`` seconds.  Other units keep executing
        during the wait.
    poll_interval:
        Upper bound on one supervision wait, so deadlines and backoff
        promotions are checked even when no worker produces events.
    """

    unit_timeout: float | None = None
    max_retries: int = 2
    quarantine: bool = True
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    poll_interval: float = 0.5

    def __post_init__(self) -> None:
        if self.unit_timeout is not None and self.unit_timeout <= 0:
            raise ValueError(f"unit_timeout must be > 0, got {self.unit_timeout}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.poll_interval <= 0:
            raise ValueError(f"poll_interval must be > 0, got {self.poll_interval}")

    def backoff(self, attempt: int) -> float:
        """Delay before re-dispatch number ``attempt`` (1-based)."""
        return min(self.backoff_max, self.backoff_base * self.backoff_factor ** (attempt - 1))


# -- worker side -------------------------------------------------------


class WorkerState:
    """Per-process campaign state, built once per worker (or once for
    the whole campaign when ``jobs == 1``)."""

    def __init__(
        self,
        app: Application,
        profile: ApplicationProfile,
        param_policy: str,
        seed: int,
        algorithms: dict[str, str] | None,
        snapshot: bool = True,
        fault_model: str = "bitflip",
        scenario=None,
        stopper=None,
    ):
        self.app = app
        self.param_policy = param_policy
        self.seed = seed
        self.fault_model = fault_model
        self.scenario = scenario
        #: Optional :class:`~repro.steer.SequentialStopper`.  Units then
        #: carry a whole point each (the engine guarantees it) and the
        #: worker serves tests one at a time, truncating the stream at
        #: the same index any other scheduling would.
        self.stopper = stopper
        # The profile arrives pickled; the runner derives its hang budget
        # from it without re-running the golden job.
        self.runner = InjectionRunner(app, profile, algorithms=algorithms)
        self.engine = None
        if snapshot:
            # Lazy import: repro.snapshot depends on repro.injection.
            from ..snapshot import SnapshotEngine

            self.engine = SnapshotEngine(self.runner)

    def execute(
        self, unit: WorkUnit, point: InjectionPoint
    ) -> tuple[str, list[TestResult], MetricsRegistry]:
        """Run one work unit; return its results and metrics snapshot."""
        registry = MetricsRegistry()
        tests: list[TestResult] = []
        with registry.time("exec.unit_s"):
            if self.stopper is not None:
                tests = self._execute_sequential(unit, point, registry)
            else:
                tasks: list[tuple[FaultSpec, np.random.Generator]] = []
                for t in range(unit.test_start, unit.test_stop):
                    seq = np.random.SeedSequence(
                        entropy=self.seed, spawn_key=(unit.point_index, t)
                    )
                    rng = np.random.default_rng(seq)
                    spec = draw_spec(
                        point, rng,
                        policy=self.param_policy,
                        model=self.fault_model,
                        scenario=self.scenario,
                    )
                    tasks.append((spec, rng))
                if self.engine is not None:
                    tests = self.engine.serve_point(point, tasks, metrics=registry)
                else:
                    tests = [self.runner.run_one(spec, rng) for spec, rng in tasks]
        registry.counter("campaign.tests").inc(len(tests))
        saved = unit.n_tests - len(tests)
        if saved > 0:
            registry.counter("campaign.tests_saved").inc(saved)
        for test in tests:
            registry.counter(f"campaign.outcome.{test.outcome.name}").inc()
        return unit.unit_id, tests, registry

    def _execute_sequential(
        self, unit: WorkUnit, point: InjectionPoint, registry: MetricsRegistry
    ) -> list[TestResult]:
        """Serve tests one at a time, truncating at the stopper's index.

        The decision is a pure function of the ordered result prefix, so
        this truncates exactly where a serial loop would.  Under the
        snapshot engine the point stays parked across calls, so the
        per-test ``serve_point`` only pays the fork, not the warm-up.
        """
        tests: list[TestResult] = []
        for t in range(unit.test_start, unit.test_stop):
            seq = np.random.SeedSequence(
                entropy=self.seed, spawn_key=(unit.point_index, t)
            )
            rng = np.random.default_rng(seq)
            spec = draw_spec(
                point, rng,
                policy=self.param_policy,
                model=self.fault_model,
                scenario=self.scenario,
            )
            if self.engine is not None:
                [res] = self.engine.serve_point(point, [(spec, rng)], metrics=registry)
            else:
                res = self.runner.run_one(spec, rng)
            tests.append(res)
            if self.stopper.should_stop(tests):
                break
        return tests


@dataclass(frozen=True)
class _Chaos:
    """Deterministic harness-fault injection, armed via environment.

    ``FASTFIT_CHAOS_MODE``   — ``exit`` | ``raise`` | ``hang``;
    ``FASTFIT_CHAOS_UNITS``  — comma-separated unit ids, or ``*``;
    ``FASTFIT_CHAOS_ATTEMPTS`` — fire while ``attempt < N`` (default 1,
    so only the first dispatch fails and retries heal), or ``all``.

    Test/CI-only: read in worker processes, never in the parent, so the
    profiling and assembly phases are unaffected.
    """

    mode: str = ""
    units: frozenset[str] | None = None  # None = every unit
    attempts: int | None = 1             # None = every attempt

    @classmethod
    def from_env(cls) -> "_Chaos":
        mode = os.environ.get("FASTFIT_CHAOS_MODE", "").strip().lower()
        if mode not in ("exit", "raise", "hang"):
            return cls()
        raw_units = os.environ.get("FASTFIT_CHAOS_UNITS", "*").strip()
        units = None if raw_units == "*" else frozenset(
            u.strip() for u in raw_units.split(",") if u.strip()
        )
        raw_attempts = os.environ.get("FASTFIT_CHAOS_ATTEMPTS", "1").strip().lower()
        attempts = None if raw_attempts == "all" else int(raw_attempts)
        return cls(mode=mode, units=units, attempts=attempts)

    def fire(self, unit_id: str, attempt: int) -> None:
        if not self.mode:
            return
        if self.units is not None and unit_id not in self.units:
            return
        if self.attempts is not None and attempt >= self.attempts:
            return
        if self.mode == "exit":
            os._exit(43)
        if self.mode == "raise":
            raise RuntimeError(f"chaos: injected harness crash in {unit_id}")
        while True:  # hang: wedge until the supervisor's deadline kills us
            time.sleep(60)


def _worker_main(payload: bytes, conn: Connection) -> None:
    """Worker loop: build state once, then execute streamed tasks.

    Protocol (parent → worker): ``("task", unit, point, attempt)`` or
    ``("stop",)``.  Worker → parent: ``("ok", unit_id, tests, registry)``
    or ``("error", unit_id, summary)``.  Any uncaught failure — or the
    process dying outright — is observed by the parent as pipe EOF.
    """
    state = WorkerState(*pickle.loads(payload))
    chaos = _Chaos.from_env()
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if msg[0] == "stop":
            return
        _, unit, point, attempt = msg
        try:
            chaos.fire(unit.unit_id, attempt)
            out = state.execute(unit, point)
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            return
        except Exception as exc:
            # In-worker boundary for harness code outside run_one's own
            # containment (target picking, RNG rebuild, ...): report the
            # crash instead of dying, so the slot survives for other
            # units while this one is retried or quarantined.
            conn.send(("error", unit.unit_id, f"{type(exc).__name__}: {exc}"))
        else:
            conn.send(("ok",) + out)


# -- parent side -------------------------------------------------------


@dataclass
class _Attempt:
    """One unit's journey through the retry state machine."""

    unit: WorkUnit
    point: InjectionPoint
    failures: int = 0
    last_reason: str = ""


@dataclass
class _Slot:
    """One supervised worker: process + pipe + the unit it owns."""

    proc: object
    conn: Connection
    task: _Attempt | None = None
    deadline: float | None = None


#: Supervision event tuples yielded by :meth:`SupervisedPool.run`.
DONE = "done"
QUARANTINED = "quarantined"


class SupervisedPool:
    """A self-healing worker pool executing campaign work units.

    Usage::

        pool = SupervisedPool(payload, jobs=4, config=SupervisorConfig(...))
        for event in pool.run(tasks):
            if event[0] == "done":
                _, attempt, (unit_id, tests, registry) = event
            else:  # "quarantined"
                _, attempt, reason = event

    ``run`` is a generator so the caller checkpoints and merges metrics
    as units land; its ``finally`` tears the workers down on any exit,
    including ``KeyboardInterrupt`` raised in the consuming loop.
    """

    def __init__(
        self,
        payload: bytes,
        jobs: int,
        config: SupervisorConfig,
        metrics: MetricsRegistry | None = None,
        tracer: "Tracer | None" = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.payload = payload
        self.jobs = jobs
        self.config = config
        self.metrics = metrics
        self.tracer = tracer
        self._ctx = get_context()
        self._slots: list[_Slot] = []

    # -- slot lifecycle ------------------------------------------------

    def _spawn_slot(self) -> _Slot:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main, args=(self.payload, child_conn), daemon=True
        )
        proc.start()
        child_conn.close()  # parent keeps only its end; EOF then tracks the child
        slot = _Slot(proc=proc, conn=parent_conn)
        return slot

    def _discard_slot(self, slot: _Slot, kill: bool = False) -> None:
        try:
            slot.conn.close()
        except OSError:  # pragma: no cover - already gone
            pass
        proc = slot.proc
        if kill and proc.is_alive():
            proc.terminate()
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - terminate resisted
                proc.kill()
        proc.join(timeout=5.0)

    def _respawn(self, slot: _Slot, kill: bool = False) -> None:
        self._discard_slot(slot, kill=kill)
        fresh = self._spawn_slot()
        slot.proc, slot.conn = fresh.proc, fresh.conn
        slot.task, slot.deadline = None, None

    def _shutdown(self) -> None:
        for slot in self._slots:
            if slot.task is None and slot.proc.is_alive():
                try:
                    slot.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
        for slot in self._slots:
            self._discard_slot(slot, kill=True)
        self._slots = []

    # -- accounting ----------------------------------------------------

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    def _emit(self, kind: str, att: _Attempt, reason: str) -> None:
        if self.tracer is not None:
            # Supervision events are parent-side: rank -1 marks "no rank".
            self.tracer.emit(
                kind, -1,
                unit=att.unit.unit_id, attempt=att.failures, reason=reason,
            )

    # -- the supervision loop ------------------------------------------

    def run(self, tasks: Sequence[tuple[WorkUnit, InjectionPoint]]) -> Iterator[tuple]:
        """Supervised execution of ``tasks``; yields completion events.

        Yields ``("done", attempt, (unit_id, tests, registry))`` for each
        finished unit and ``("quarantined", attempt, reason)`` for each
        unit given up on (quarantine mode only).  Order follows
        completion, not submission — the caller re-assembles
        deterministically by unit id.
        """
        cfg = self.config
        pending: deque[_Attempt] = deque(_Attempt(u, p) for u, p in tasks)
        backoff: list[tuple[float, int, _Attempt]] = []  # (eligible_at, tiebreak, att)
        backoff_seq = 0
        in_flight = 0

        self._slots = [
            self._spawn_slot() for _ in range(min(self.jobs, max(1, len(pending))))
        ]

        def fail(att: _Attempt, reason: str) -> tuple | None:
            """Retry-or-quarantine; returns an event to yield, if any."""
            nonlocal backoff_seq
            att.failures += 1
            att.last_reason = reason
            if att.failures > cfg.max_retries:
                self._count("exec.quarantined")
                self._emit("unit_quarantined", att, reason)
                if not cfg.quarantine:
                    raise UnitFailedError(att.unit.unit_id, att.failures, reason)
                return (QUARANTINED, att, reason)
            self._count("exec.retries")
            self._emit("unit_retry", att, reason)
            delay = cfg.backoff(att.failures)
            backoff_seq += 1
            heapq.heappush(
                backoff, (time.monotonic() + delay, backoff_seq, att)
            )
            return None

        def dispatch(slot: _Slot, att: _Attempt) -> tuple | None:
            """Hand a unit to a worker; a send failure is a worker death."""
            nonlocal in_flight
            try:
                slot.conn.send(("task", att.unit, att.point, att.failures))
            except (BrokenPipeError, OSError):
                self._count("exec.worker_deaths")
                self._respawn(slot)
                return fail(att, "worker died before dispatch")
            slot.task = att
            slot.deadline = (
                None if cfg.unit_timeout is None
                else time.monotonic() + cfg.unit_timeout
            )
            in_flight += 1
            return None

        try:
            while pending or backoff or in_flight:
                now = time.monotonic()
                while backoff and backoff[0][0] <= now:
                    pending.append(heapq.heappop(backoff)[2])
                for slot in self._slots:
                    if slot.task is None and pending:
                        event = dispatch(slot, pending.popleft())
                        if event is not None:
                            yield event

                # How long may we sleep? Until the nearest deadline or
                # backoff promotion, bounded by the poll interval.
                timeout = cfg.poll_interval
                now = time.monotonic()
                for slot in self._slots:
                    if slot.deadline is not None and slot.task is not None:
                        timeout = min(timeout, max(0.0, slot.deadline - now))
                if backoff:
                    timeout = min(timeout, max(0.0, backoff[0][0] - now))

                busy = {
                    slot.conn: slot for slot in self._slots if slot.task is not None
                }
                if busy:
                    for conn in connection_wait(list(busy), timeout):
                        slot = busy[conn]
                        att = slot.task
                        try:
                            msg = conn.recv()
                        except (EOFError, OSError):
                            # Pipe EOF: the worker died mid-unit, however
                            # it died (os._exit, signal, native crash).
                            self._count("exec.worker_deaths")
                            in_flight -= 1
                            self._respawn(slot)
                            event = fail(att, "worker process died mid-unit")
                            if event is not None:
                                yield event
                            continue
                        in_flight -= 1
                        slot.task, slot.deadline = None, None
                        if msg[0] == "ok":
                            yield (DONE, att, msg[1:])
                        else:  # ("error", unit_id, summary)
                            event = fail(att, f"worker crashed: {msg[2]}")
                            if event is not None:
                                yield event
                elif backoff:
                    # Nothing running, everything in backoff: sleep it off.
                    time.sleep(max(0.0, backoff[0][0] - time.monotonic()))

                # Deadline enforcement: kill wedged workers.
                now = time.monotonic()
                for slot in self._slots:
                    if (
                        slot.task is not None
                        and slot.deadline is not None
                        and now >= slot.deadline
                    ):
                        att = slot.task
                        self._count("exec.worker_deaths")
                        in_flight -= 1
                        self._respawn(slot, kill=True)
                        event = fail(
                            att,
                            f"unit exceeded its {cfg.unit_timeout:.1f}s deadline; "
                            "worker killed",
                        )
                        if event is not None:
                            yield event
        finally:
            self._shutdown()
