"""``python -m repro`` — the FastFIT command-line interface."""

import sys

from .cli import main

sys.exit(main())
