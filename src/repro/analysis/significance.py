"""Statistical adequacy of the per-point test count.

The paper uses "at least 100 fault injection tests at each fault
injection point to ensure statistical significance" and asserts that
"100 random fault injection tests are sufficient".  This module makes
that adequacy checkable: Wilson confidence intervals for the measured
error rate, the minimum test count for a target half-width, and a
convergence trace of the estimate as tests accumulate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps


@dataclass(frozen=True)
class RateInterval:
    """A binomial proportion with its Wilson confidence interval."""

    rate: float
    low: float
    high: float
    n: int
    confidence: float

    @property
    def half_width(self) -> float:
        return (self.high - self.low) / 2.0


def wilson_interval(errors: int, n: int, confidence: float = 0.95) -> RateInterval:
    """Wilson score interval for an error rate (robust near 0 and 1)."""
    if n <= 0:
        return RateInterval(0.0, 0.0, 1.0, 0, confidence)
    if not 0 <= errors <= n:
        raise ValueError(f"errors={errors} out of range for n={n}")
    z = float(sps.norm.ppf(0.5 + confidence / 2.0))
    p = errors / n
    denom = 1.0 + z * z / n
    centre = (p + z * z / (2 * n)) / denom
    margin = (z / denom) * np.sqrt(p * (1 - p) / n + z * z / (4 * n * n))
    return RateInterval(p, max(0.0, centre - margin), min(1.0, centre + margin), n, confidence)


def required_tests(half_width: float, confidence: float = 0.95, worst_p: float = 0.5) -> int:
    """Minimum tests for the target CI half-width (normal approx.).

    With the paper's implicit target of distinguishing the four quartile
    sensitivity levels (half-width ≈ 0.125), ~62 tests suffice at 95 %
    confidence — the paper's 100 is comfortably adequate.
    """
    if not 0 < half_width < 1:
        raise ValueError(f"half_width must be in (0, 1), got {half_width}")
    z = float(sps.norm.ppf(0.5 + confidence / 2.0))
    return int(np.ceil(worst_p * (1 - worst_p) * (z / half_width) ** 2))


def convergence_trace(outcomes_are_errors: list[bool], confidence: float = 0.95) -> list[RateInterval]:
    """The running error-rate estimate after 1, 2, …, n tests."""
    trace = []
    errors = 0
    for i, is_err in enumerate(outcomes_are_errors, start=1):
        errors += int(is_err)
        trace.append(wilson_interval(errors, i, confidence))
    return trace


def level_stability(
    trace: list[RateInterval], level_of, final_level: int | None = None
) -> int:
    """The test count after which the assigned sensitivity level never
    changes again (how early the paper's qualification stabilises).

    ``level_of`` maps a rate to a level index (e.g.
    ``QUARTILE_LEVELS.level_of``).  Returns ``len(trace)`` when the
    level is still unstable at the end.
    """
    if not trace:
        return 0
    if final_level is None:
        final_level = level_of(trace[-1].rate)
    stable_from = len(trace)
    for i in range(len(trace) - 1, -1, -1):
        if level_of(trace[i].rate) != final_level:
            break
        stable_from = i + 1
    return stable_from
