"""Error-propagation analysis: the blast radius of a faulty collective.

The paper's introduction motivates FastFIT with "how errors propagate
between the application processes is largely unexplored"; the tool's
outcome taxonomy answers *whether* the application failed, and this
module adds *how far* the corruption travelled.

For a run that exits cleanly, the per-rank results are compared to the
golden run rank by rank: the **blast radius** of a fault injected on one
rank is the number of ranks whose result signature diverged.  Because
collectives are global, a single corrupted contribution can taint every
rank (allreduce) or exactly one (the root of a gather) — the propagation
pattern mirrors the collective's semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..apps.base import Application, signatures_match
from ..injection.outcome import Outcome, classify_exception
from ..injection.space import FaultSpec, InjectionPoint
from ..injection.targets import pick_target
from ..injection.injector import FaultInjector
from ..profiling.profiler import ApplicationProfile
from ..simmpi import SimMPIError, run_app


@dataclass
class PropagationResult:
    """Blast-radius observations for one injection point."""

    point: InjectionPoint
    nranks: int
    #: Per test: set of ranks whose final signature diverged (empty for
    #: clean-and-correct runs); ``None`` when the run aborted (the fault
    #: killed the job before results existed).
    tainted: list[frozenset[int] | None] = field(default_factory=list)
    outcomes: list[Outcome] = field(default_factory=list)

    @property
    def completed(self) -> list[frozenset[int]]:
        return [t for t in self.tainted if t is not None]

    @property
    def mean_blast_radius(self) -> float:
        """Average number of tainted ranks over completed runs."""
        done = self.completed
        if not done:
            return 0.0
        return float(np.mean([len(t) for t in done]))

    @property
    def global_taint_rate(self) -> float:
        """Fraction of completed runs where *every* rank diverged."""
        done = self.completed
        if not done:
            return 0.0
        return sum(1 for t in done if len(t) == self.nranks) / len(done)

    @property
    def containment_rate(self) -> float:
        """Fraction of completed runs with no divergence at all."""
        done = self.completed
        if not done:
            return 0.0
        return sum(1 for t in done if not t) / len(done)


def tainted_ranks(
    app: Application, golden: list[Any], observed: list[Any]
) -> frozenset[int]:
    """Ranks whose result signature differs from the golden run."""
    return frozenset(
        r
        for r, (g, o) in enumerate(zip(golden, observed))
        if not signatures_match(g, o, app.rtol)
    )


def propagation_study(
    app: Application,
    profile: ApplicationProfile,
    point: InjectionPoint,
    tests: int = 20,
    param_policy: str = "sendbuf",
    seed: int = 0,
    budget_factor: int = 8,
) -> PropagationResult:
    """Measure how far faults injected at ``point`` propagate."""
    golden = profile.golden_results
    budget = max(profile.golden_steps * budget_factor, 50_000)
    result = PropagationResult(point, app.nranks)
    for t in range(tests):
        rng = np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=(t,)))
        param = pick_target(rng, point.collective, param_policy)
        injector = FaultInjector(FaultSpec(point, param, None), rng)
        try:
            with np.errstate(all="ignore"):
                run = run_app(
                    app.main, app.nranks, instruments=[injector], step_budget=budget
                )
        except SimMPIError as exc:
            result.tainted.append(None)
            result.outcomes.append(classify_exception(exc))
            continue
        taint = tainted_ranks(app, golden, run.results)
        result.tainted.append(taint)
        result.outcomes.append(Outcome.SUCCESS if not taint else Outcome.WRONG_ANS)
    return result
