"""``repro.analysis`` — sensitivity levels, statistics, propagation,
significance, reporting, and result export."""

from .export import (
    campaign_summary_from_json,
    campaign_to_csv,
    campaign_to_dict,
    campaign_to_json,
    metrics_to_json,
    outcome_counts_from_summary,
    point_from_dict,
    point_to_dict,
    tests_to_csv,
    trace_from_jsonl,
    trace_to_jsonl,
)
from .propagation import PropagationResult, propagation_study, tainted_ranks
from .reports import render_bars, render_grouped_bars, render_histogram, render_table
from .sensitivity import (
    EVEN_2_LEVELS,
    EVEN_3_LEVELS,
    PAPER_3_LEVELS,
    QUARTILE_LEVELS,
    LevelScheme,
    level_distribution,
)
from .significance import (
    RateInterval,
    convergence_trace,
    level_stability,
    required_tests,
    wilson_interval,
)
from .stats import GaussianFit, dispersion_summary, fit_error_rates, histogram

__all__ = [
    "EVEN_2_LEVELS",
    "PropagationResult",
    "RateInterval",
    "campaign_summary_from_json",
    "campaign_to_csv",
    "campaign_to_dict",
    "campaign_to_json",
    "convergence_trace",
    "level_stability",
    "metrics_to_json",
    "outcome_counts_from_summary",
    "point_from_dict",
    "point_to_dict",
    "propagation_study",
    "required_tests",
    "tainted_ranks",
    "tests_to_csv",
    "trace_from_jsonl",
    "trace_to_jsonl",
    "wilson_interval",
    "EVEN_3_LEVELS",
    "GaussianFit",
    "LevelScheme",
    "PAPER_3_LEVELS",
    "QUARTILE_LEVELS",
    "dispersion_summary",
    "fit_error_rates",
    "histogram",
    "level_distribution",
    "render_bars",
    "render_grouped_bars",
    "render_histogram",
    "render_table",
]
