"""Result serialisation: campaigns and reports to JSON/CSV.

A fault-injection campaign on a production machine is expensive; its
results should outlive the Python session.  These helpers produce
stable, diff-friendly artefacts (sorted keys, one record per point).
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any

from ..injection.campaign import CampaignResult
from ..injection.outcome import OUTCOME_ORDER, Outcome
from ..injection.space import InjectionPoint
from ..obs.events import TraceEvent
from ..obs.metrics import MetricsRegistry


def point_to_dict(point: InjectionPoint) -> dict[str, Any]:
    return {
        "rank": point.rank,
        "collective": point.collective,
        "site": point.site,
        "invocation": point.invocation,
    }


def point_from_dict(data: dict[str, Any]) -> InjectionPoint:
    return InjectionPoint(
        int(data["rank"]), data["collective"], data["site"], int(data["invocation"])
    )


def campaign_to_dict(campaign: CampaignResult) -> dict[str, Any]:
    """A JSON-ready representation of a campaign (per-point outcome
    histograms plus one representative failure detail per outcome;
    individual test records are summarised, not dumped)."""
    return {
        "app": campaign.app_name,
        "tests_per_point": campaign.tests_per_point,
        "param_policy": campaign.param_policy,
        "points": [
            {
                **point_to_dict(point),
                "n_tests": pr.n_tests,
                "error_rate": pr.error_rate,
                "outcomes": {o.value: pr.outcomes.get(o, 0) for o in OUTCOME_ORDER},
                "details": {
                    o.value: d for o, d in sorted(pr.detail_samples().items())
                },
            }
            for point, pr in sorted(campaign.points.items())
        ],
    }


def campaign_to_json(campaign: CampaignResult, indent: int = 2) -> str:
    return json.dumps(campaign_to_dict(campaign), indent=indent, sort_keys=True)


def campaign_summary_from_json(text: str) -> dict[str, Any]:
    """Load a serialised campaign summary (round-trip of the JSON)."""
    data = json.loads(text)
    for key in ("app", "tests_per_point", "param_policy", "points"):
        if key not in data:
            raise ValueError(f"not a campaign summary: missing {key!r}")
    return data


def campaign_to_csv(campaign: CampaignResult) -> str:
    """One CSV row per injection point."""
    buf = io.StringIO()
    fields = [
        "rank",
        "collective",
        "site",
        "invocation",
        "n_tests",
        "error_rate",
        *[o.value for o in OUTCOME_ORDER],
    ]
    writer = csv.DictWriter(buf, fieldnames=fields)
    writer.writeheader()
    for point, pr in sorted(campaign.points.items()):
        row = {
            **point_to_dict(point),
            "n_tests": pr.n_tests,
            "error_rate": f"{pr.error_rate:.6f}",
        }
        for o in OUTCOME_ORDER:
            row[o.value] = pr.outcomes.get(o, 0)
        writer.writerow(row)
    return buf.getvalue()


def tests_to_csv(campaign: CampaignResult) -> str:
    """One CSV row per individual test (the full record)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(
        ["rank", "collective", "site", "invocation", "param", "bit", "outcome"]
    )
    for point, pr in sorted(campaign.points.items()):
        for t in pr.tests:
            writer.writerow(
                [
                    point.rank,
                    point.collective,
                    point.site,
                    point.invocation,
                    t.spec.param,
                    t.record.bit if t.record else "",
                    t.outcome.value,
                ]
            )
    return buf.getvalue()


def outcome_counts_from_summary(data: dict[str, Any]) -> dict[Outcome, int]:
    """Aggregate outcome histogram from a loaded summary."""
    totals = {o: 0 for o in OUTCOME_ORDER}
    for rec in data["points"]:
        for o in OUTCOME_ORDER:
            totals[o] += int(rec["outcomes"].get(o.value, 0))
    return totals


# -- observability artefacts -------------------------------------------


def trace_to_jsonl(events) -> str:
    """Serialise trace events, one JSON object per line.

    Accepts any iterable of :class:`~repro.obs.events.TraceEvent` (a
    :class:`~repro.obs.events.Tracer` is itself iterable).
    """
    return "\n".join(
        json.dumps(e.to_dict(), sort_keys=True, default=str) for e in events
    )


def trace_from_jsonl(text: str) -> list[TraceEvent]:
    """Parse events serialised by :func:`trace_to_jsonl`.

    Lines carrying a ``type`` field other than ``"event"`` (the meta and
    result envelopes of ``fastfit trace --json``) are skipped, so the
    CLI's full output stream round-trips too.
    """
    events: list[TraceEvent] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        data = json.loads(line)
        if data.get("type") not in (None, "event"):
            continue
        data.pop("type", None)
        seq = int(data.pop("seq"))
        kind = data.pop("kind")
        rank = int(data.pop("rank"))
        events.append(TraceEvent(seq, kind, rank, data))
    return events


def metrics_to_json(registry: MetricsRegistry, indent: int = 2) -> str:
    """Serialise a metrics registry (counters, gauges, timers,
    histograms) as stable JSON."""
    return json.dumps(registry.to_dict(), indent=indent, sort_keys=True)
