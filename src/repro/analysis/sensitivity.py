"""Error-rate levels — qualifying application sensitivity.

The paper deliberately *qualifies* sensitivity into levels instead of
predicting raw error rates (§ III-C): four quartile levels for the
decision model (low / medium-low / medium-high / high), the asymmetric
(15 %, 85 %) three-level scheme of Figs. 8/11, and even two-level
splits for Fig. 13a.  :class:`LevelScheme` captures all of these.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LevelScheme:
    """A discretisation of the error-rate range [0, 1].

    ``bounds`` are the inner cut points; rates land in
    ``len(bounds) + 1`` levels.  A rate equal to a bound belongs to the
    upper level.
    """

    bounds: tuple[float, ...]
    names: tuple[str, ...]

    def __post_init__(self):
        if len(self.names) != len(self.bounds) + 1:
            raise ValueError("need exactly one more name than bounds")
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError(f"bounds must be ascending, got {self.bounds}")

    @property
    def n_levels(self) -> int:
        return len(self.names)

    def level_of(self, rate: float) -> int:
        """Level index of an error rate."""
        return int(np.searchsorted(np.asarray(self.bounds), rate, side="right"))

    def name_of(self, rate: float) -> str:
        return self.names[self.level_of(rate)]

    @classmethod
    def even(cls, n_levels: int, names: tuple[str, ...] | None = None) -> "LevelScheme":
        """Evenly divided levels (the paper's Fig. 13 configuration)."""
        bounds = tuple((i + 1) / n_levels for i in range(n_levels - 1))
        if names is None:
            names = tuple(f"level{i}" for i in range(n_levels))
        return cls(bounds, names)


#: Four quartile levels used by the prediction model (Fig. 4).
QUARTILE_LEVELS = LevelScheme(
    (0.25, 0.50, 0.75), ("low", "medium-low", "medium-high", "high")
)

#: The asymmetric scheme of Figs. 8 and 11: low ≤ 15 %, high ≥ 85 %.
PAPER_3_LEVELS = LevelScheme((0.15, 0.85), ("low", "med", "high"))

#: Even two- and three-level schemes of Figs. 13a/13b.
EVEN_2_LEVELS = LevelScheme.even(2, ("low", "high"))
EVEN_3_LEVELS = LevelScheme.even(3, ("low", "med", "high"))


def level_distribution(rates: list[float], scheme: LevelScheme) -> dict[str, float]:
    """Fraction of points per level (the bars of Figs. 8/11)."""
    if not rates:
        return {name: 0.0 for name in scheme.names}
    counts = np.zeros(scheme.n_levels)
    for r in rates:
        counts[scheme.level_of(r)] += 1
    return {name: float(c / len(rates)) for name, c in zip(scheme.names, counts)}
