"""Statistical helpers for the sensitivity study.

Chiefly the Gaussian characterisation of per-invocation error rates the
paper uses to justify context-driven pruning (Fig. 3: mean 29.58 %,
standard deviation 7.69 over 100 same-stack invocations).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps


@dataclass(frozen=True)
class GaussianFit:
    """A fitted normal distribution over error rates (in percent)."""

    mean: float
    std: float
    n: int

    def pdf(self, x: np.ndarray) -> np.ndarray:
        return sps.norm.pdf(x, loc=self.mean, scale=max(self.std, 1e-12))


def fit_error_rates(rates_percent: list[float]) -> GaussianFit:
    """Fit a Gaussian to error rates given in percent (Fig. 3 style)."""
    arr = np.asarray(rates_percent, dtype=np.float64)
    if arr.size == 0:
        return GaussianFit(0.0, 0.0, 0)
    return GaussianFit(float(arr.mean()), float(arr.std()), int(arr.size))


def histogram(
    rates_percent: list[float], bin_width: float = 5.0, max_rate: float = 100.0
) -> tuple[np.ndarray, np.ndarray]:
    """Counts per error-rate bin (the bars of Fig. 3).

    Returns ``(bin_edges, counts)`` with edges every ``bin_width``
    percent.
    """
    edges = np.arange(0.0, max_rate + bin_width, bin_width)
    counts, _ = np.histogram(np.asarray(rates_percent), bins=edges)
    return edges, counts


def dispersion_summary(rates_percent: list[float]) -> dict[str, float]:
    """Mean/std/min/max plus the fraction within one standard deviation —
    how "focused in a limited range" the distribution is (§ III-B)."""
    arr = np.asarray(rates_percent, dtype=np.float64)
    if arr.size == 0:
        return {"mean": 0.0, "std": 0.0, "min": 0.0, "max": 0.0, "within_1sd": 0.0}
    fit = fit_error_rates(list(arr))
    within = np.abs(arr - fit.mean) <= max(fit.std, 1e-12)
    return {
        "mean": fit.mean,
        "std": fit.std,
        "min": float(arr.min()),
        "max": float(arr.max()),
        "within_1sd": float(within.mean()),
    }
