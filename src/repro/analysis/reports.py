"""ASCII renderers for the benchmark harness's tables and figures.

Every benchmark regenerating a paper table/figure prints through these,
so the harness output reads like the paper's evaluation section.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """A fixed-width ASCII table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_bars(
    data: Mapping[str, float], width: int = 40, title: str = "", unit: str = "%"
) -> str:
    """Horizontal bar chart over label → value (values in [0, 1] render
    as percentages by default)."""
    lines = [title] if title else []
    scale = 100.0 if unit == "%" else 1.0
    label_w = max((len(k) for k in data), default=0)
    vmax = max((v for v in data.values()), default=1.0) or 1.0
    for label, value in data.items():
        bar = "#" * int(round(width * value / vmax))
        lines.append(f"{label.ljust(label_w)} | {bar} {value * scale:.1f}{unit}")
    return "\n".join(lines)


def render_grouped_bars(
    groups: Mapping[str, Mapping[str, float]], title: str = ""
) -> str:
    """Stacked summary per group: one table row per group, one column
    per series (the Figs. 7/8/10/11 layout)."""
    series = sorted({s for g in groups.values() for s in g})
    rows = [
        [group] + [f"{groups[group].get(s, 0.0) * 100:.1f}%" for s in series]
        for group in groups
    ]
    return render_table(["group"] + series, rows, title=title)


def render_histogram(
    edges: Sequence[float], counts: Sequence[int], title: str = "", width: int = 40
) -> str:
    """Binned histogram with one line per bin (the Fig. 3 layout)."""
    lines = [title] if title else []
    cmax = max(max(counts, default=0), 1)
    for lo, hi, c in zip(edges, edges[1:], counts):
        bar = "#" * int(round(width * c / cmax))
        lines.append(f"{lo:5.1f}-{hi:5.1f}% | {bar} {c}")
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)
