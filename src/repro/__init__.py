"""FastFIT reproduction: fast fault injection and sensitivity analysis
for collective communications (Feng et al., IEEE CLUSTER 2015).

Public entry points:

* :class:`repro.FastFIT` — the end-to-end tool facade;
* :mod:`repro.simmpi` — the simulated MPI substrate;
* :mod:`repro.apps` — the NPB-shaped kernels and mini-LAMMPS workloads;
* :mod:`repro.profiling`, :mod:`repro.injection`, :mod:`repro.pruning`,
  :mod:`repro.ml`, :mod:`repro.analysis` — the component layers;
* :mod:`repro.exec` — the parallel, resumable campaign engine;
* :mod:`repro.obs` — tracing, metrics, forensics, progress telemetry;
* :mod:`repro.store` — the SQLite campaign store behind ``--db``;
* :mod:`repro.report` — the static HTML campaign report builder.
"""

__version__ = "1.0.0"

from . import analysis, apps, injection, ml, obs, profiling, pruning, simmpi
from . import exec as exec_  # noqa: F401 - also importable as repro.exec
from . import report, store
from .fastfit import FastFIT, FastFITReport, PruningReport

__all__ = [
    "FastFIT",
    "FastFITReport",
    "PruningReport",
    "analysis",
    "apps",
    "injection",
    "ml",
    "obs",
    "profiling",
    "pruning",
    "report",
    "simmpi",
    "store",
    "__version__",
]
