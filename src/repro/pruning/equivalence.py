"""Process-equivalence analysis (paper § III-A, second half).

Two MPI processes are treated as equivalent when they have the same
computation pattern *and* the same communication pattern: identical call
graphs and identical communication traces.  Among an equivalence class,
one process represents the others in the fault-injection study.
"""

from __future__ import annotations

from ..profiling.callgraph import callgraph_signature
from ..profiling.profiler import ApplicationProfile


def rank_signature(profile: ApplicationProfile, rank: int) -> tuple:
    """The equivalence key of one rank: call graph + collective sequence
    + direction-normalised p2p trace."""
    return (
        callgraph_signature(profile.callgraphs[rank]),
        profile.comm.collective_sequence(rank),
        profile.comm.p2p_signature(rank),
    )


def equivalence_classes(profile: ApplicationProfile) -> list[list[int]]:
    """Partition ranks into equivalence classes.

    Classes are sorted by their smallest member; members are sorted, so
    ``classes[i][0]`` is the canonical representative.
    """
    by_sig: dict[tuple, list[int]] = {}
    for rank in range(profile.nranks):
        by_sig.setdefault(rank_signature(profile, rank), []).append(rank)
    classes = [sorted(members) for members in by_sig.values()]
    return sorted(classes, key=lambda c: c[0])


def representative_of(classes: list[list[int]], rank: int) -> int:
    """The canonical representative of ``rank``'s class."""
    for members in classes:
        if rank in members:
            return members[0]
    raise KeyError(f"rank {rank} not in any equivalence class")
