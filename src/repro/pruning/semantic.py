"""Semantic-driven fault injection (paper § III-A).

MPI collective semantics already identify which processes can respond
differently:

* rooted collectives (Bcast, Reduce, Scatter, Gather): the root's
  communication pattern differs from every non-root's, while non-roots
  mirror each other → inject into the root and one representative
  non-root per participating communicator;
* non-rooted collectives: all members share the pattern → one
  representative per participating communicator.

On top of the semantic rule, ranks must also be *empirically*
equivalent (same call graph and traces — :mod:`.equivalence`), so a
representative is chosen per (equivalence class ∩ semantic role).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..profiling.profiler import ApplicationProfile
from ..simmpi import ROOTED_COLLECTIVES
from ..injection.space import InjectionPoint
from .equivalence import equivalence_classes


@dataclass
class SemanticSelection:
    """Result of semantic-driven pruning."""

    #: site key -> the ranks selected to represent it.
    selected_ranks: dict[tuple[str, str], tuple[int, ...]] = field(default_factory=dict)
    #: rank equivalence classes used.
    classes: list[list[int]] = field(default_factory=list)
    total_points: int = 0
    selected_points_list: list[InjectionPoint] = field(default_factory=list)

    @property
    def selected_points(self) -> int:
        return len(self.selected_points_list)

    @property
    def reduction(self) -> float:
        """Fraction of injection points eliminated (the "MPI" column of
        the paper's Table III)."""
        if self.total_points == 0:
            return 0.0
        return 1.0 - self.selected_points / self.total_points


def select_semantic(profile: ApplicationProfile, metrics=None) -> SemanticSelection:
    """Apply semantic-driven pruning to a profiled application.

    ``metrics`` is an optional
    :class:`~repro.obs.metrics.MetricsRegistry`; the selection sizes and
    reduction are recorded under ``prune.semantic.*``.
    """
    sel = SemanticSelection(classes=equivalence_classes(profile))
    by_site: dict[tuple[str, str], list] = {}
    for (rank, site_key), summary in profile.summaries.items():
        by_site.setdefault(site_key, []).append(summary)

    for site_key, summaries in sorted(by_site.items()):
        name = site_key[0]
        participants = sorted(s.rank for s in summaries)
        roots = {s.root_world for s in summaries if s.root_world is not None}

        chosen: set[int] = set()
        if name in ROOTED_COLLECTIVES:
            # The root(s) observed at this site, plus one representative
            # non-root per equivalence class that has non-root members.
            chosen |= {r for r in roots if r in participants}
            non_roots = set(participants) - roots
            for members in sel.classes:
                members_here = sorted(set(members) & non_roots)
                if members_here:
                    chosen.add(members_here[0])
        else:
            # Non-rooted: one representative per equivalence class among
            # the participants.
            for members in sel.classes:
                members_here = [r for r in members if r in participants]
                if members_here:
                    chosen.add(members_here[0])

        sel.selected_ranks[site_key] = tuple(sorted(chosen))

    for (rank, site_key), summary in sorted(profile.summaries.items()):
        sel.total_points += summary.n_invocations
        if rank in sel.selected_ranks.get(site_key, ()):
            for inv in range(summary.n_invocations):
                sel.selected_points_list.append(
                    InjectionPoint(rank, site_key[0], site_key[1], inv)
                )
    if metrics is not None:
        metrics.gauge("prune.semantic.total_points").set(sel.total_points)
        metrics.gauge("prune.semantic.selected_points").set(sel.selected_points)
        metrics.gauge("prune.semantic.reduction").set(sel.reduction)
    return sel
