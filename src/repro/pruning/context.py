"""Application-context-driven fault injection (paper § III-B).

A call site may be invoked thousands of times, but invocations that
share the same call stack share the same application context, and the
application responds to their corruption the same way (the paper
demonstrates a tight Gaussian over same-stack invocations, Fig. 3).  So
one representative invocation stands in for every invocation with the
same stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..injection.space import InjectionPoint
from ..profiling.profiler import ApplicationProfile


@dataclass
class ContextSelection:
    """Result of context-driven pruning over a set of points."""

    #: representative point -> all points it stands for (itself included).
    representatives: dict[InjectionPoint, list[InjectionPoint]] = field(default_factory=dict)
    total_points: int = 0

    @property
    def selected_points_list(self) -> list[InjectionPoint]:
        return sorted(self.representatives)

    @property
    def selected_points(self) -> int:
        return len(self.representatives)

    @property
    def reduction(self) -> float:
        """Fraction of points eliminated (the "App" column of Table III)."""
        if self.total_points == 0:
            return 0.0
        return 1.0 - self.selected_points / self.total_points

    def expand(self, point: InjectionPoint) -> list[InjectionPoint]:
        """All points a representative stands for."""
        return self.representatives[point]


def select_context(
    profile: ApplicationProfile, points: Iterable[InjectionPoint], metrics=None
) -> ContextSelection:
    """Collapse ``points`` to one representative per (rank, site, stack).

    The representative is the earliest invocation of each stack class,
    matching the paper's "choose one representative invocation to
    represent all other invocations that share the same call stack".
    ``metrics`` optionally records the sizes under ``prune.context.*``.
    """
    sel = ContextSelection()
    by_group: dict[tuple, list[InjectionPoint]] = {}
    for pt in points:
        sel.total_points += 1
        summary = profile.summary(pt.rank, pt.site_key)
        stack = None
        for s, invs in summary.stack_groups.items():
            if pt.invocation in invs:
                stack = s
                break
        by_group.setdefault((pt.rank, pt.site_key, stack), []).append(pt)

    for _, members in sorted(by_group.items(), key=lambda kv: str(kv[0])):
        members.sort()
        sel.representatives[members[0]] = members
    if metrics is not None:
        metrics.gauge("prune.context.total_points").set(sel.total_points)
        metrics.gauge("prune.context.selected_points").set(sel.selected_points)
        metrics.gauge("prune.context.reduction").set(sel.reduction)
    return sel
