"""``repro.pruning`` — FastFIT's three exploration-space reducers.

Semantic-driven (§ III-A), application-context-driven (§ III-B), and
machine-learning-driven (§ III-C) fault injection.
"""

from .context import ContextSelection, select_context
from .equivalence import equivalence_classes, rank_signature, representative_of
from .mldriven import (
    MLDrivenResult,
    level_labeler,
    ml_driven_campaign,
    outcome_labeler,
)
from .semantic import SemanticSelection, select_semantic

__all__ = [
    "ContextSelection",
    "MLDrivenResult",
    "SemanticSelection",
    "equivalence_classes",
    "level_labeler",
    "ml_driven_campaign",
    "outcome_labeler",
    "rank_signature",
    "representative_of",
    "select_context",
    "select_semantic",
]
