"""Machine-learning-driven fault injection (paper § III-C / § IV-D).

The injection and learning phases alternate: inject a batch of points,
use the next batch to *verify* the current model, and stop as soon as
the verification accuracy reaches the user's threshold — every point not
yet tested then gets its sensitivity *predicted* instead of measured.
In the worst case the loop runs out of points and degenerates to the
traditional campaign, exactly as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..analysis.sensitivity import QUARTILE_LEVELS, LevelScheme
from ..apps.base import Application
from ..injection.campaign import Campaign, PointResult
from ..injection.outcome import OUTCOME_ORDER
from ..injection.space import InjectionPoint
from ..ml.features import features_matrix
from ..ml.metrics import accuracy
from ..ml.random_forest import RandomForestClassifier
from ..profiling.profiler import ApplicationProfile

Labeler = Callable[[PointResult], int]


def level_labeler(scheme: LevelScheme = QUARTILE_LEVELS) -> tuple[Labeler, tuple[str, ...]]:
    """Label points by error-rate level (the paper's default target)."""
    return (lambda pr: scheme.level_of(pr.error_rate)), tuple(scheme.names)


def outcome_labeler() -> tuple[Labeler, tuple[str, ...]]:
    """Label points by majority response type."""
    return (
        lambda pr: OUTCOME_ORDER.index(pr.majority_outcome()),
        tuple(o.value for o in OUTCOME_ORDER),
    )


@dataclass
class MLDrivenResult:
    """Outcome of one ML-driven injection campaign."""

    threshold: float
    label_names: tuple[str, ...]
    tested: dict[InjectionPoint, PointResult] = field(default_factory=dict)
    predicted: dict[InjectionPoint, int] = field(default_factory=dict)
    accuracy_history: list[float] = field(default_factory=list)
    model: RandomForestClassifier | None = None
    reached_threshold: bool = False

    @property
    def total_points(self) -> int:
        return len(self.tested) + len(self.predicted)

    @property
    def test_reduction(self) -> float:
        """Fraction of points whose tests were *skipped* thanks to the
        prediction model — the "ML" column of Table III."""
        total = self.total_points
        return len(self.predicted) / total if total else 0.0

    @property
    def final_accuracy(self) -> float:
        return self.accuracy_history[-1] if self.accuracy_history else 0.0


def ml_driven_campaign(
    app: Application,
    profile: ApplicationProfile,
    points: Sequence[InjectionPoint],
    labeler: Labeler | None = None,
    label_names: tuple[str, ...] | None = None,
    threshold: float = 0.65,
    tests_per_point: int = 40,
    batch_size: int | None = None,
    param_policy: str = "buffer",
    seed: int = 0,
    n_estimators: int = 24,
    metrics=None,
    jobs: int = 1,
    db_path=None,
    resume: bool = False,
    snapshot: bool = True,
) -> MLDrivenResult:
    """Run the inject → learn → verify loop of FastFIT's learning phase.

    ``threshold`` is the user's prediction-accuracy target; smaller
    thresholds stop earlier and skip more tests (the trade-off of
    Fig. 6).  ``metrics`` optionally records per-batch verification
    accuracy and the final tested/predicted split under ``ml.*`` (the
    inner campaign also records ``campaign.*``).

    ``jobs``/``db_path``/``resume`` route each batch through the
    sharded engine and/or the SQLite store with bit-identical results:
    batches carry their global point indices (the ``SeedSequence``
    contract), share one digest computed over the full candidate list,
    and a killed-and-resumed run replays recorded units to the same
    :class:`MLDrivenResult` an uninterrupted one produces.
    """
    if labeler is None:
        labeler, label_names = level_labeler()
    if label_names is None:
        raise ValueError("label_names required when passing a custom labeler")

    rng = np.random.default_rng(seed)
    points = list(points)
    order = list(rng.permutation(len(points)))
    shuffled = [points[i] for i in order]
    if batch_size is None:
        batch_size = max(4, len(shuffled) // 8)

    digest = None
    if db_path is not None:
        from ..exec.checkpoint import campaign_digest
        from ..exec.sharding import default_unit_tests

        layout = "s1" if snapshot else "p1"
        unit_tests = (
            max(1, tests_per_point)
            if layout == "s1"
            else default_unit_tests(tests_per_point)
        )
        digest = campaign_digest(
            app,
            seed,
            tests_per_point,
            param_policy,
            unit_tests,
            points,
            layout=layout,
            extra={
                "ml": {
                    "threshold": threshold,
                    "batch_size": batch_size,
                    "n_estimators": n_estimators,
                }
            },
        )

    campaign = Campaign(
        app,
        profile,
        tests_per_point=tests_per_point,
        param_policy=param_policy,
        seed=seed,
        metrics=metrics,
        jobs=jobs,
        db_path=db_path,
        resume=resume,
        snapshot=snapshot,
    )
    result = MLDrivenResult(threshold=threshold, label_names=label_names)

    def labels_of(prs: dict[InjectionPoint, PointResult]) -> tuple[list[InjectionPoint], np.ndarray]:
        pts = sorted(prs)
        return pts, np.array([labeler(prs[p]) for p in pts], dtype=np.int64)

    model: RandomForestClassifier | None = None
    idx = 0
    batch_no = 0
    while idx < len(shuffled):
        batch = shuffled[idx : idx + batch_size]
        idx += len(batch)
        batch_indices = [order[idx - len(batch) + j] for j in range(len(batch))]
        if jobs != 1 or db_path is not None:
            # Sharded/persistent path: one Campaign.run per batch, global
            # indices preserved, all batches in one store campaign row.
            sub = campaign.run(batch, point_indices=batch_indices, digest=digest)
            measured = {pt: sub.points[pt] for pt in batch}
            if db_path is not None:
                # Later batches must not cascade-wipe the campaign row.
                campaign.resume = True
        else:
            measured = {
                pt: campaign.run_point(pt, point_index=pi)
                for pt, pi in zip(batch, batch_indices)
            }

        if model is not None:
            # Verification: predict the fresh batch, compare to reality.
            pts, y_true = labels_of(measured)
            y_pred = model.predict(features_matrix(profile, pts))
            acc = accuracy(y_true, y_pred)
            result.accuracy_history.append(acc)
            if metrics is not None:
                metrics.histogram("ml.batch_accuracy").observe(acc)
            result.tested.update(measured)
            if acc >= threshold:
                result.reached_threshold = True
                break
        else:
            result.tested.update(measured)

        pts, y = labels_of(result.tested)
        model = RandomForestClassifier(
            n_estimators=n_estimators, seed=seed + batch_no
        ).fit(features_matrix(profile, pts), y)
        batch_no += 1

    result.model = model
    remaining = shuffled[idx:]
    if remaining and model is not None:
        preds = model.predict(features_matrix(profile, remaining))
        result.predicted = {pt: int(p) for pt, p in zip(remaining, preds)}
    if metrics is not None:
        metrics.gauge("ml.tested_points").set(len(result.tested))
        metrics.gauge("ml.predicted_points").set(len(result.predicted))
        metrics.gauge("ml.test_reduction").set(result.test_reduction)
        metrics.gauge("ml.final_accuracy").set(result.final_accuracy)
    return result
