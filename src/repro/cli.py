"""Command-line interface for FastFIT.

Usage (``python -m repro`` or the ``fastfit`` entry point)::

    fastfit apps
    fastfit profile  --app lammps --problem-class T
    fastfit prune    --app lu     --problem-class S
    fastfit campaign --app mg     --tests 20 --policy buffer
    fastfit learn    --app lammps --threshold 0.65
    fastfit study    --app lammps --threshold 0.65

Every subcommand prints ASCII tables in the style of the paper's
evaluation section.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .analysis import PAPER_3_LEVELS, level_distribution, render_bars, render_grouped_bars, render_table
from .apps import APPLICATIONS, make_app
from .fastfit import FastFIT


def _add_app_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--app", required=True, choices=sorted(APPLICATIONS))
    p.add_argument("--problem-class", default="T", choices=("T", "S", "A"))
    p.add_argument("--seed", type=int, default=0)


def _add_campaign_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--tests", type=int, default=20, help="tests per injection point")
    p.add_argument(
        "--policy",
        default="buffer",
        help='fault target policy: "buffer", "all", or a parameter name',
    )
    p.add_argument("--max-points", type=int, default=None, help="cap representative points")


def _tool(args: argparse.Namespace) -> FastFIT:
    return FastFIT(
        make_app(args.app, args.problem_class),
        seed=args.seed,
        tests_per_point=getattr(args, "tests", 20),
        param_policy=getattr(args, "policy", "buffer"),
    )


def cmd_apps(_args: argparse.Namespace) -> int:
    rows = []
    for name, cls in sorted(APPLICATIONS.items()):
        for klass in ("T", "S", "A"):
            params = cls.class_params(klass)
            nranks = params.pop("nranks")
            rows.append([name, klass, nranks, ", ".join(f"{k}={v}" for k, v in sorted(params.items()))])
    print(render_table(["app", "class", "ranks", "parameters"], rows, title="registered workloads"))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    ff = _tool(args)
    profile = ff.profile()
    print(
        f"{profile.app_name} ({args.problem_class}): {profile.nranks} ranks, "
        f"{profile.total_injection_points()} injection points, "
        f"{profile.golden_steps} golden events"
    )
    mix = profile.comm.collective_mix()
    total = sum(mix.values()) or 1
    print()
    print(render_bars({k: v / total for k, v in sorted(mix.items())}, title="collective mix"))
    rows = [
        [s.site_key[0], s.site_key[1], s.n_invocations, s.n_diff_stacks, f"{s.avg_stack_depth:.1f}"]
        for s in profile.sites_of_rank(0)
    ]
    print()
    print(render_table(["collective", "site", "nInv", "nDiffStack", "StackDep"], rows, title="rank 0 call sites"))
    return 0


def cmd_prune(args: argparse.Namespace) -> int:
    ff = _tool(args)
    pr = ff.prune()
    print(
        render_table(
            ["total points", "MPI (semantic)", "App (context)", "representatives"],
            [
                [
                    pr.total_points,
                    f"{pr.semantic_reduction:.2%}",
                    f"{pr.context_reduction:.2%}",
                    len(pr.representative_points),
                ]
            ],
            title=f"pruning report for {args.app}/{args.problem_class}",
        )
    )
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    ff = _tool(args)
    points = ff.prune().representative_points
    if args.max_points is not None:
        points = points[: args.max_points]
    campaign = ff.campaign(points=points)
    print(
        render_bars(
            {o.value: f for o, f in campaign.outcome_fractions().items()},
            title=f"response types ({len(points)} points × {args.tests} tests, policy={args.policy})",
        )
    )
    print()
    groups = {
        coll: level_distribution(sub.error_rates(), PAPER_3_LEVELS)
        for coll, sub in sorted(campaign.by_collective().items())
    }
    print(render_grouped_bars(groups, title="error-rate levels per collective"))
    return 0


def cmd_learn(args: argparse.Namespace) -> int:
    ff = _tool(args)
    ml = ff.learn(threshold=args.threshold, batch_size=args.batch_size)
    print(
        f"tested {len(ml.tested)} points, predicted {len(ml.predicted)} "
        f"({ml.test_reduction:.1%} of tests skipped); "
        f"threshold {'reached' if ml.reached_threshold else 'NOT reached'}"
    )
    if ml.accuracy_history:
        print("verification accuracy per batch: " + ", ".join(f"{a:.0%}" for a in ml.accuracy_history))
    return 0


def cmd_study(args: argparse.Namespace) -> int:
    ff = _tool(args)
    threshold = None if args.no_ml else args.threshold
    report = ff.run(threshold=threshold)
    print(report.describe())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fastfit", description="Fast fault injection and sensitivity analysis"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list registered workloads").set_defaults(fn=cmd_apps)

    p = sub.add_parser("profile", help="profiling phase: sites, stacks, mix")
    _add_app_args(p)
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser("prune", help="semantic + context pruning report")
    _add_app_args(p)
    p.set_defaults(fn=cmd_prune)

    p = sub.add_parser("campaign", help="fault-injection campaign over representatives")
    _add_app_args(p)
    _add_campaign_args(p)
    p.set_defaults(fn=cmd_campaign)

    p = sub.add_parser("learn", help="ML-driven campaign (inject → learn → predict)")
    _add_app_args(p)
    _add_campaign_args(p)
    p.add_argument("--threshold", type=float, default=0.65)
    p.add_argument("--batch-size", type=int, default=None)
    p.set_defaults(fn=cmd_learn)

    p = sub.add_parser("study", help="full study: profile → prune → campaign/learn")
    _add_app_args(p)
    _add_campaign_args(p)
    p.add_argument("--threshold", type=float, default=0.65)
    p.add_argument("--no-ml", action="store_true", help="skip the ML stage (NPB-style rows)")
    p.set_defaults(fn=cmd_study)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
