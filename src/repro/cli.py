"""Command-line interface for FastFIT.

Usage (``python -m repro`` or the ``fastfit`` entry point)::

    fastfit apps
    fastfit profile  --app lammps --problem-class T
    fastfit prune    --app lu     --problem-class S
    fastfit campaign --app mg     --tests 20 --policy buffer
    fastfit campaign --app is     --tests 20 --static-prune
    fastfit run      --db campaigns.sqlite --tests 20
    fastfit run      --adaptive --ci-width 0.25 --budget 2000 --jobs 4
    fastfit analyze  --app lu     --tests 10 --sample 0.2
    fastfit analyze  --lint-only
    fastfit analyze  --mutant wrong_root
    fastfit learn    --app lammps --threshold 0.65
    fastfit study    --app lammps --threshold 0.65
    fastfit trace    --app lu     --find-outcome INF_LOOP
    fastfit stats    --app is     --tests 5 --max-points 8
    fastfit stats    --db campaigns.sqlite
    fastfit report   --db campaigns.sqlite --out report/
    fastfit migrate  --checkpoint-dir ck/ --db campaigns.sqlite

Every subcommand prints ASCII tables in the style of the paper's
evaluation section; ``trace --json`` and ``stats --json`` emit
machine-readable JSONL/JSON instead.  All subcommands accept ``-v`` /
``-vv`` (info / debug diagnostics on stderr) and ``-q`` (errors only).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from .analysis import (
    PAPER_3_LEVELS,
    level_distribution,
    metrics_to_json,
    point_to_dict,
    render_bars,
    render_grouped_bars,
    render_table,
)
from .analyze import StaticPruneError
from .apps import APPLICATIONS, make_app
from .exec.checkpoint import CheckpointMismatch
from .fastfit import FastFIT
from .store import CampaignStoreError, MigrationError
from .injection.campaign import Campaign
from .injection.models import SELECTABLE_MODELS
from .injection.outcome import OUTCOME_ORDER, Outcome
from .injection.scenario import ScenarioError, load_scenario
from .injection.space import FaultSpec
from .injection.targets import all_targets, pick_target
from .obs import (
    DEFAULT_CAPACITY,
    Tracer,
    build_wait_for_graph,
    format_event,
    setup_logging,
)


def _add_app_args(
    p: argparse.ArgumentParser, required: bool = True, default: str | None = None
) -> None:
    p.add_argument(
        "--app", required=required, default=default, choices=sorted(APPLICATIONS)
    )
    p.add_argument("--problem-class", default="T", choices=("T", "S", "A"))
    p.add_argument("--seed", type=int, default=0)


def _add_campaign_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--tests", type=int, default=20, help="tests per injection point")
    p.add_argument(
        "--policy",
        default="buffer",
        help='fault target policy: "buffer", "all", or a parameter name',
    )
    p.add_argument("--max-points", type=int, default=None, help="cap representative points")
    p.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the campaign (results are bit-identical "
        "to --jobs 1; default 1)",
    )
    p.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="persist completed work units here so an interrupted campaign "
        "can be resumed",
    )
    p.add_argument(
        "--db", default=None, metavar="PATH",
        help="SQLite campaign database: persists completed units (resumable "
        "like --checkpoint-dir), queryable per-test rows, and progress "
        "telemetry; feeds 'fastfit report' and 'fastfit stats --db'",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="resume a matching interrupted campaign from --checkpoint-dir "
        "or --db",
    )
    p.add_argument(
        "--progress-jsonl", default=None, metavar="PATH",
        help="append live progress snapshots (tests/sec, outcome histogram, "
        "worker health, ETA) as JSON lines to this file",
    )
    p.add_argument(
        "--progress-every", type=int, default=1, metavar="N",
        help="emit progress (callbacks and telemetry snapshots) at most "
        "every N completed work units (default 1)",
    )
    p.add_argument(
        "--unit-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock deadline per work-unit attempt; a worker that "
        "blows it is killed and the unit retried (parallel runs only)",
    )
    p.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="re-dispatches granted to a work unit whose worker died, "
        "wedged, or crashed (default 2)",
    )
    p.add_argument(
        "--no-quarantine", dest="quarantine", action="store_false",
        help="abort the campaign when a unit exhausts its retries instead "
        "of quarantining it with TOOL_ERROR verdicts",
    )
    p.add_argument(
        "--static-prune", action="store_true",
        help="skip tests whose outcome the static pre-classifier proves "
        "(see 'fastfit analyze'); serial in-memory campaigns only — "
        "incompatible with --jobs > 1, --db, and --checkpoint-dir",
    )
    p.add_argument(
        "--snapshot", action=argparse.BooleanOptionalAction, default=True,
        help="snapshot-and-fork serving: run the fault-free prefix once "
        "per injection point and fork every test from the parked state "
        "(bit-identical results, default on); --no-snapshot forces "
        "classic full replays and the point-major unit layout",
    )
    p.add_argument(
        "--fault-model", default="bitflip", metavar="NAME",
        help="fault model drawn at every test (default 'bitflip'; one of: "
        + ", ".join(SELECTABLE_MODELS) + ")",
    )
    p.add_argument(
        "--scenario", default=None, metavar="PATH",
        help="timeline-driven multi-fault scenario file (JSON); replaces "
        "the per-point fault draw with the scenario's task list — "
        "incompatible with --fault-model and --static-prune",
    )
    p.add_argument(
        "--batch-size", type=int, default=None, metavar="N",
        help="points per batch for the ML-driven and adaptive loops "
        "(default: len(points) // 8, at least 4)",
    )
    p.add_argument(
        "--adaptive", action="store_true",
        help="adaptive steering: inject in uncertainty-sampled batches "
        "with per-point sequential stopping (campaign/run only; "
        "incompatible with --scenario, --static-prune, and "
        "--checkpoint-dir)",
    )
    p.add_argument(
        "--ci-width", type=float, default=None, metavar="W",
        help="with --adaptive: stop a point's tests once the Wilson "
        "interval over its error rate is narrower than W "
        "(default 0.25; must be in (0, 1])",
    )
    p.add_argument(
        "--budget", type=int, default=None, metavar="TESTS",
        help="with --adaptive: hard cap on total injected tests "
        "(never exceeded; default unlimited)",
    )
    p.add_argument(
        "--accuracy-target", type=float, default=None, metavar="ACC",
        help="with --adaptive: stop steering once the model predicts a "
        "fresh uncertainty-sampled batch this accurately "
        "(default 0.65; must be in (0, 1])",
    )


def _tool(args: argparse.Namespace) -> FastFIT:
    sinks = []
    if getattr(args, "progress_jsonl", None):
        from .obs.progress import JsonlProgressSink

        sinks.append(JsonlProgressSink(args.progress_jsonl))
    scenario = None
    if getattr(args, "scenario", None):
        # ScenarioError (malformed file, bad task list) propagates to
        # main()'s operator-error handler: one line, exit 2.
        scenario = load_scenario(args.scenario)
    return FastFIT(
        make_app(args.app, args.problem_class),
        seed=args.seed,
        tests_per_point=getattr(args, "tests", 20),
        param_policy=getattr(args, "policy", "buffer"),
        jobs=getattr(args, "jobs", 1),
        checkpoint_dir=getattr(args, "checkpoint_dir", None),
        db_path=getattr(args, "db", None),
        resume=getattr(args, "resume", False),
        unit_timeout=getattr(args, "unit_timeout", None),
        max_retries=getattr(args, "max_retries", 2),
        quarantine=getattr(args, "quarantine", True),
        progress_sinks=sinks,
        progress_every=getattr(args, "progress_every", 1),
        static_prune=getattr(args, "static_prune", False),
        snapshot=getattr(args, "snapshot", True),
        fault_model=getattr(args, "fault_model", "bitflip"),
        scenario=scenario,
    )


def cmd_apps(_args: argparse.Namespace) -> int:
    rows = []
    for name, cls in sorted(APPLICATIONS.items()):
        for klass in ("T", "S", "A"):
            params = cls.class_params(klass)
            nranks = params.pop("nranks")
            rows.append([name, klass, nranks, ", ".join(f"{k}={v}" for k, v in sorted(params.items()))])
    print(render_table(["app", "class", "ranks", "parameters"], rows, title="registered workloads"))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    ff = _tool(args)
    profile = ff.profile()
    print(
        f"{profile.app_name} ({args.problem_class}): {profile.nranks} ranks, "
        f"{profile.total_injection_points()} injection points, "
        f"{profile.golden_steps} golden events"
    )
    mix = profile.comm.collective_mix()
    total = sum(mix.values()) or 1
    print()
    print(render_bars({k: v / total for k, v in sorted(mix.items())}, title="collective mix"))
    rows = [
        [s.site_key[0], s.site_key[1], s.n_invocations, s.n_diff_stacks, f"{s.avg_stack_depth:.1f}"]
        for s in profile.sites_of_rank(0)
    ]
    print()
    print(render_table(["collective", "site", "nInv", "nDiffStack", "StackDep"], rows, title="rank 0 call sites"))
    return 0


def cmd_prune(args: argparse.Namespace) -> int:
    ff = _tool(args)
    pr = ff.prune()
    print(
        render_table(
            ["total points", "MPI (semantic)", "App (context)", "representatives"],
            [
                [
                    pr.total_points,
                    f"{pr.semantic_reduction:.2%}",
                    f"{pr.context_reduction:.2%}",
                    len(pr.representative_points),
                ]
            ],
            title=f"pruning report for {args.app}/{args.problem_class}",
        )
    )
    return 0


def _cmd_adaptive(args: argparse.Namespace, ff: FastFIT) -> int:
    """The ``--adaptive`` branch of campaign/run: steer, then report the
    per-round trajectory and the accuracy-vs-budget summary."""
    points = ff.prune().representative_points
    if args.max_points is not None:
        points = points[: args.max_points]
    res = ff.steer(
        accuracy_target=(
            0.65 if args.accuracy_target is None else args.accuracy_target
        ),
        ci_width=0.25 if args.ci_width is None else args.ci_width,
        budget=args.budget,
        batch_size=args.batch_size,
        points=points,
    )
    rows = []
    spent = 0
    for r in res.rounds:
        spent += r.tests_run
        rows.append([
            r.round_no,
            len(r.point_indices),
            r.tests_run,
            r.tests_saved,
            spent,
            "-" if r.accuracy is None else f"{r.accuracy:.0%}",
            "-" if r.mean_uncertainty is None else f"{r.mean_uncertainty:.3f}",
        ])
    print(
        render_table(
            ["round", "points", "tests", "saved", "budget", "accuracy", "uncertainty"],
            rows,
            title=f"adaptive steering over {len(points)} candidate points",
        )
    )
    print(
        f"\nstopped: {res.stop_reason} "
        f"(target {res.accuracy_target:.0%} "
        f"{'reached' if res.reached_target else 'NOT reached'})"
    )
    print(
        f"tested {len(res.tested)} points ({res.tests_run} tests, "
        f"{res.tests_saved} saved by sequential stopping), "
        f"predicted {len(res.predicted)} ({res.test_reduction:.1%} of "
        f"points never injected)"
    )
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    ff = _tool(args)
    if getattr(args, "adaptive", False):
        return _cmd_adaptive(args, ff)
    if ff.scenario is not None:
        # A scenario brings its own timeline; pruning the parameter
        # fault space would be meaningless.  FastFIT.campaign() resolves
        # the scenario's anchor point when given no point list.
        campaign = ff.campaign()
        points = list(campaign.points)
    else:
        points = ff.prune().representative_points
        if args.max_points is not None:
            points = points[: args.max_points]
        campaign = ff.campaign(points=points)
    print(
        render_bars(
            {o.value: f for o, f in campaign.outcome_fractions().items()},
            title=f"response types ({len(points)} points × {args.tests} tests, policy={args.policy})",
        )
    )
    if args.static_prune:
        total = len(points) * args.tests
        skipped = campaign.predicted_count()
        frac = skipped / total if total else 0.0
        print(
            f"\nstatic prune: {skipped}/{total} tests "
            f"({frac:.1%}) statically proven, dynamic run skipped"
        )
    print()
    groups = {
        coll: level_distribution(sub.error_rates(), PAPER_3_LEVELS)
        for coll, sub in sorted(campaign.by_collective().items())
    }
    print(render_grouped_bars(groups, title="error-rate levels per collective"))
    return 0


def cmd_learn(args: argparse.Namespace) -> int:
    ff = _tool(args)
    ml = ff.learn(threshold=args.threshold, batch_size=args.batch_size)
    print(
        f"tested {len(ml.tested)} points, predicted {len(ml.predicted)} "
        f"({ml.test_reduction:.1%} of tests skipped); "
        f"threshold {'reached' if ml.reached_threshold else 'NOT reached'}"
    )
    if ml.accuracy_history:
        print("verification accuracy per batch: " + ", ".join(f"{a:.0%}" for a in ml.accuracy_history))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run one injection test with full tracing and print/export it."""
    ff = _tool(args)
    points = ff.prune().representative_points
    if not points:
        print("no injection points for this workload", file=sys.stderr)
        return 1
    if not 0 <= args.point < len(points):
        print(
            f"--point {args.point} out of range (0..{len(points) - 1})",
            file=sys.stderr,
        )
        return 2
    point = points[args.point]
    if args.param is not None:
        valid = all_targets(point.collective)
        if args.param not in valid:
            print(
                f"--param {args.param!r} is not a parameter of "
                f"{point.collective} (one of: {', '.join(valid)})",
                file=sys.stderr,
            )
            return 2
    camp = Campaign(
        ff.app,
        ff.profile(),
        tests_per_point=1,
        param_policy=args.policy,
        seed=args.seed,
    )
    runner = camp.runner

    def spec_for(test_index: int):
        # Rebuilding the rng from (point, test) indices replays the exact
        # parameter pick and bit choice of any test of the campaign.
        rng = camp._rng_for(args.point, test_index)
        param = args.param or pick_target(rng, point.collective, args.policy)
        return FaultSpec(point, param, args.bit), rng

    test_index = args.test
    if args.find_outcome is not None:
        want = args.find_outcome.upper()
        if want not in {o.name for o in OUTCOME_ORDER}:
            print(f"unknown outcome {args.find_outcome!r}", file=sys.stderr)
            return 2
        found = None
        for t in range(args.max_search):
            spec, rng = spec_for(t)
            if runner.run_one(spec, rng).outcome.name == want:
                found = t
                break
        if found is None:
            print(
                f"no {want} response within {args.max_search} tests at point "
                f"{args.point}; try another --point or raise --max-search",
                file=sys.stderr,
            )
            return 1
        test_index = found

    tracer = Tracer(capacity=args.capacity)
    spec, rng = spec_for(test_index)
    result = runner.run_one(spec, rng, tracer=tracer)
    graph = None
    if result.outcome is Outcome.INF_LOOP and runner.last_exception is not None:
        graph = build_wait_for_graph(runner.last_exception)

    if args.json:
        print(
            json.dumps(
                {
                    "type": "meta",
                    "app": args.app,
                    "problem_class": args.problem_class,
                    "seed": args.seed,
                    "test_index": test_index,
                    "point": point_to_dict(point),
                    "param": spec.param,
                    "bit": spec.bit,
                },
                sort_keys=True,
            )
        )
        for e in tracer:
            print(json.dumps({"type": "event", **e.to_dict()}, sort_keys=True, default=str))
        print(
            json.dumps(
                {
                    "type": "result",
                    "outcome": result.outcome.value,
                    "detail": result.detail,
                    "injected": result.injected,
                    "events_emitted": tracer.emitted,
                    "events_dropped": tracer.dropped,
                    "wait_for": graph.to_dict() if graph is not None else None,
                },
                sort_keys=True,
            )
        )
        return 0

    print(
        f"trace: {args.app}/{args.problem_class} point #{args.point} "
        f"(rank {point.rank}, {point.collective}@{point.site}#inv{point.invocation}), "
        f"param {spec.param}, test {test_index}"
    )
    print(f"outcome: {result.outcome.value}")
    if result.detail:
        print(f"detail: {result.detail}")
    shown = list(tracer)[: args.limit] if args.limit else list(tracer)
    print(f"\n{tracer.emitted} events ({tracer.dropped} dropped by the ring buffer):")
    for e in shown:
        print("  " + format_event(e))
    if len(shown) < len(tracer):
        print(f"  ... {len(tracer) - len(shown)} more (raise --limit or use --json)")
    if graph is not None:
        print("\nwait-for graph:")
        for line in graph.describe().splitlines():
            print("  " + line)
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Build the static HTML report tree from a campaign database."""
    from .report import build_report

    index = build_report(args.db, args.out, digest=args.digest)
    print(f"report written to {index}")
    return 0


def cmd_migrate(args: argparse.Namespace) -> int:
    """Convert a pickle checkpoint directory into the SQLite schema."""
    from .store import migrate_checkpoint

    summary = migrate_checkpoint(
        args.checkpoint_dir, args.db, overwrite=args.overwrite
    )
    print(
        f"migrated campaign {summary['digest'][:12]} into {args.db}: "
        f"{summary['units']} units, {summary['tests']} tests, "
        f"{summary['quarantined']} quarantined, "
        f"{'complete' if summary['complete'] else 'incomplete'}"
    )
    return 0


def _stats_from_db(args: argparse.Namespace) -> int:
    """The ``stats --db`` path: recompute aggregates from the store."""
    from .store import CampaignDB

    if args.db is None:
        print("stats requires --app (live run) or --db (stored campaign)",
              file=sys.stderr)
        return 2
    with CampaignDB(args.db) as db:
        c = db.campaign(args.digest)
        if c is None:
            what = f"digest {args.digest!r}" if args.digest else "campaigns"
            print(f"error: no {what} in {args.db}", file=sys.stderr)
            return 2
        hist = db.outcome_histogram(c["id"])
        total = sum(hist.values())
        n_quarantined = len(db.quarantine_records(c["id"]))
        metrics = db.metrics_snapshot(c["id"], "final")

        if args.json:
            print(
                json.dumps(
                    {
                        "campaign": {
                            "digest": c["digest"],
                            "app": c["app"],
                            "n_points": c["n_points"],
                            "tests_per_point": c["tests_per_point"],
                            "param_policy": c["param_policy"],
                            "seed": c["seed"],
                            "complete": bool(c["complete"]),
                            "recorded_tests": total,
                            "quarantined_units": n_quarantined,
                        },
                        "outcomes": hist,
                        "metrics": metrics,
                    },
                    sort_keys=True,
                )
            )
            return 0

        # Config fields are unknown ("?") for campaigns migrated from
        # pickle checkpoints, whose headers carry only the digest.
        cfg = {k: "?" if c[k] is None else c[k]
               for k in ("app", "n_points", "tests_per_point", "param_policy", "seed")}
        print(
            f"campaign {c['digest'][:12]}: {cfg['app']}, "
            f"{cfg['n_points']} points × {cfg['tests_per_point']} tests "
            f"(policy={cfg['param_policy']}, seed={cfg['seed']}), "
            f"{'complete' if c['complete'] else 'INCOMPLETE'}"
        )
        print(f"recorded tests: {total}, quarantined units: {n_quarantined}")
        print()
        order = [o.name for o in OUTCOME_ORDER] + [Outcome.TOOL_ERROR.name]
        fractions = {
            name: hist.get(name, 0) / total if total else 0.0
            for name in order
            if name in hist or name in {o.name for o in OUTCOME_ORDER}
        }
        print(render_bars(fractions, title="response types (stored)"))
        if metrics:
            timers = metrics.get("timers", {})
            rows = [
                [name, t["count"], f"{t['total']:.3f}", f"{t['mean']:.3f}"]
                for name, t in sorted(timers.items())
            ]
            if rows:
                print()
                print(
                    render_table(
                        ["phase", "count", "total_s", "mean_s"],
                        rows,
                        title="phase timings (stored)",
                    )
                )
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Run a campaign and report the collected metrics — or, with
    ``--db`` and no live run, recompute them from a stored campaign."""
    if args.app is None:
        return _stats_from_db(args)
    ff = _tool(args)
    if ff.scenario is not None:
        campaign = ff.campaign()
        points = list(campaign.points)
    else:
        points = ff.prune().representative_points
        if args.max_points is not None:
            points = points[: args.max_points]
        campaign = ff.campaign(points=points)
    registry = ff.metrics

    if args.json:
        print(metrics_to_json(registry))
        return 0

    data = registry.to_dict()
    rows = [
        [name, t["count"], f"{t['total']:.3f}", f"{t['mean']:.3f}"]
        for name, t in sorted(data["timers"].items())
    ]
    print(render_table(["phase", "count", "total_s", "mean_s"], rows, title="phase timings"))

    n_tests = data["counters"].get("campaign.tests", 0)
    campaign_s = data["timers"].get("phase.campaign_s", {}).get("total", 0.0)
    if campaign_s > 0:
        print(f"\nthroughput: {n_tests} tests in {campaign_s:.3f}s "
              f"({n_tests / campaign_s:.1f} tests/sec)")
    n_predicted = data["counters"].get("campaign.tests_predicted", 0)
    if n_predicted:
        print(f"static prune: {n_predicted} of {n_tests} tests statically "
              f"proven ({n_predicted / n_tests:.1%} skipped)")

    print()
    print(
        render_bars(
            {o.value: f for o, f in campaign.outcome_fractions().items()},
            title=f"response types ({len(points)} points × {campaign.tests_per_point} tests)",
        )
    )

    gauges = {k: v for k, v in sorted(data["gauges"].items()) if k.startswith("prune.")}
    if gauges:
        print()
        print(
            render_table(
                ["metric", "value"],
                [[k, f"{v:.4g}"] for k, v in gauges.items()],
                title="pruning reductions",
            )
        )

    details = campaign.detail_samples()
    if details:
        print("\nsample failure details:")
        for outcome in OUTCOME_ORDER:
            if outcome in details:
                print(f"  {outcome.value}: {details[outcome]}")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    """Run the verification suite: conformance, sanitizers, replay,
    campaign determinism, snapshot fork-equivalence.  Exit 0 only when
    every phase is clean."""
    from .injection import enumerate_points
    from .snapshot import SNAPSHOT_MUTANTS
    from .verify import (
        MODEL_MUTANTS,
        MUTANTS,
        fork_equivalence,
        model_conformance,
        record_run,
        replay_run,
        run_conformance,
        sanitize_sweep,
    )

    if args.list_mutants:
        rows = [[m.name, ", ".join(m.detected_by), m.description] for m in MUTANTS.values()]
        rows += [[m.name, m.detected_by, m.description] for m in SNAPSHOT_MUTANTS.values()]
        rows += [[m.name, ", ".join(m.detected_by), m.description] for m in MODEL_MUTANTS.values()]
        print(render_table(["mutant", "detected by", "description"], rows, title="seeded mutants"))
        return 0
    if (
        args.mutant is not None
        and args.mutant not in MUTANTS
        and args.mutant not in SNAPSHOT_MUTANTS
        and args.mutant not in MODEL_MUTANTS
    ):
        choices = ", ".join(sorted(MUTANTS) + sorted(SNAPSHOT_MUTANTS) + sorted(MODEL_MUTANTS))
        print(f"unknown mutant {args.mutant!r}; choices: {choices}", file=sys.stderr)
        return 2

    summary: dict = {"ok": True, "phases": {}}

    def phase(name: str, ok: bool, payload: dict) -> None:
        summary["phases"][name] = {"ok": ok, **payload}
        summary["ok"] = summary["ok"] and ok

    # A fault-model mutant routes straight to the witness sweep (phase
    # 6): the defect lives in the delivery helpers and only the
    # witnesses exercise them with known expectations.
    if args.mutant in MODEL_MUTANTS:
        report = model_conformance(seed=args.seed, mutant=args.mutant)
        expected = set(MODEL_MUTANTS[args.mutant].detected_by)
        failed = {r.witness for r in report.failures}
        detected = expected <= failed
        phase("models", detected, {
            "mutant": args.mutant, "detected": detected,
            "failed_witnesses": sorted(failed),
        })
        if args.json:
            print(json.dumps(summary, sort_keys=True))
        else:
            print(report.describe())
            print(
                f"mutant {args.mutant!r}: "
                + ("DETECTED (witnesses have teeth)" if detected else "NOT DETECTED — harness failure")
            )
        return 0 if summary["ok"] else 1

    # A snapshot mutant routes straight to the fork-equivalence oracle
    # (phase 5): the other phases never touch the snapshot engine and
    # could not possibly observe the defect.
    if args.mutant in SNAPSHOT_MUTANTS:
        report = fork_equivalence(
            make_app(args.app, args.problem_class),
            seed=args.seed, tests_per_point=args.tests,
            max_points=args.max_points, mutant=args.mutant,
        )
        phase("snapshot", report.ok, {
            "mutant": args.mutant, "detected": not report.identical,
            "points": report.n_points, "tests": report.n_tests,
        })
        if args.json:
            print(json.dumps(summary, sort_keys=True))
        else:
            print(report.describe())
        return 0 if summary["ok"] else 1

    # 1. differential conformance (optionally with a seeded mutant, in
    # which case the harness is expected to FAIL — see --mutant help).
    conf = run_conformance(
        seed=args.seed,
        draws_per_collective=args.draws,
        collectives=args.collective or None,
        mutant=args.mutant,
    )
    if args.mutant is not None:
        ok = not conf.ok  # a mutant the harness cannot see is the failure
        phase("conformance", ok, {"mutant": args.mutant, "detected": not conf.ok,
                                  "failures": [f.describe() for f in conf.failures[:20]]})
        if not args.json:
            print(conf.describe())
            print(
                f"mutant {args.mutant!r}: "
                + ("DETECTED (harness has teeth)" if not conf.ok else "NOT DETECTED — harness failure")
            )
    else:
        phase("conformance", conf.ok, {
            "cases": conf.total_cases, "checks": conf.total_checks,
            "failures": [f.describe() for f in conf.failures[:20]],
        })
        if not args.json:
            print(conf.describe())

    # 2. sanitizer soak over the registered workloads.
    if not args.skip_sanitize and args.mutant is None:
        sweep = sanitize_sweep()
        ok = all(r.ok for r in sweep)
        phase("sanitize", ok, {"apps": {r.app: r.ok for r in sweep},
                               "violations": [v for r in sweep for v in r.violations]})
        if not args.json:
            print()
            for r in sweep:
                print("sanitize: " + r.describe())

    # 3. deterministic replay of golden application runs.
    if not args.skip_replay and args.mutant is None:
        replay_info, ok = {}, True
        for name in ("is", "lu"):
            app = make_app(name, "T")
            _, log = record_run(app.main, app.nranks)
            report = replay_run(app.main, app.nranks, log)
            replay_info[name] = report.detail
            ok = ok and report.identical
            if not args.json:
                print(f"replay: {name}/T {report.detail}")
        phase("replay", ok, {"apps": replay_info})

    # 4. campaign determinism: the same small campaign, serial then
    # sharded, must produce bit-identical TestResult streams.
    if not args.skip_campaign and args.mutant is None:
        ff = _tool(args)
        points = enumerate_points(ff.profile())[: args.max_points]
        sigs = []
        for jobs in (1, 2):
            campaign = Campaign(
                ff.app, ff.profile(), tests_per_point=args.tests,
                param_policy="all", seed=args.seed, jobs=jobs,
            ).run(points)
            sigs.append(_campaign_signature(campaign))
        ok = sigs[0] == sigs[1]
        phase("campaign", ok, {
            "app": args.app, "points": len(points), "tests": args.tests,
            "identical": ok,
        })
        if not args.json:
            print(
                f"campaign: {args.app}/T {len(points)} points × {args.tests} tests, "
                f"serial vs --jobs 2: " + ("bit-identical" if ok else "DIVERGED")
            )

    # 5. snapshot fork-equivalence: tests served by forking a parked
    # fault-free prefix must fingerprint identically to full replays.
    if not args.skip_snapshot and args.mutant is None:
        report = fork_equivalence(
            make_app(args.app, args.problem_class),
            seed=args.seed, tests_per_point=args.tests,
            max_points=args.max_points,
        )
        phase("snapshot", report.ok, {
            "app": args.app, "points": report.n_points,
            "tests": report.n_tests, "identical": report.identical,
            "mismatches": report.mismatches[:10],
        })
        if not args.json:
            print(report.describe())

    # 6. fault-model conformance: every composable fault model must
    # produce its expected Table-I response on its witness app.
    if not args.skip_models and args.mutant is None:
        report = model_conformance(seed=args.seed)
        phase("models", report.ok, {
            "witnesses": {r.witness: r.ok for r in report.results},
            "failures": [r.describe() for r in report.failures],
        })
        if not args.json:
            print()
            print(report.describe())

    if args.json:
        print(json.dumps(summary, sort_keys=True))
    elif summary["ok"]:
        print("\nverify: all phases clean")
    else:
        bad = [k for k, v in summary["phases"].items() if not v["ok"]]
        print(f"\nverify: FAILURES in {', '.join(bad)}", file=sys.stderr)
    return 0 if summary["ok"] else 1


def _campaign_signature(result) -> list:
    """The determinism guarantee, reified: point order, per-test fault
    specs, outcomes, injection records, derived rates."""
    sig = []
    for point, pr in result.points.items():
        sig.append(
            (
                point,
                [
                    (
                        t.spec.point, t.spec.param, t.spec.bit, t.outcome,
                        None if t.record is None else (t.record.bit, t.record.skipped),
                    )
                    for t in pr.tests
                ],
                pr.error_rate,
            )
        )
    return sig


def cmd_analyze(args: argparse.Namespace) -> int:
    """Static analysis over an application's fault space: the
    collective-matching checker, the provable fault-outcome
    pre-classifier (optionally cross-validated against live runs), and
    the determinism/simulator-safety lint.  Exit 0 = clean, 1 =
    findings/mismatches, 2 = operator error."""
    from collections import Counter

    from .analyze import (
        ANALYZE_MUTANTS,
        PreClassifier,
        check_skeleton,
        cross_validate,
        extract_skeleton,
        lint_tree,
        predict_tests,
        run_mutant,
    )
    from .injection import enumerate_points
    from .profiling import profile_application

    # -- operator-error hygiene (exit 2, one line, no traceback) --------
    if args.mutant is not None and args.mutant not in ANALYZE_MUTANTS:
        print(
            f"unknown mutant {args.mutant!r}; choices: "
            f"{', '.join(sorted(ANALYZE_MUTANTS))}",
            file=sys.stderr,
        )
        return 2
    if args.lint_only and (args.mutant is not None or args.list_mutants):
        print("--lint-only and --mutant/--list-mutants are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.sample is not None and not 0.0 < args.sample <= 1.0:
        print(f"--sample must be in (0, 1], got {args.sample}", file=sys.stderr)
        return 2
    if args.sample is not None and (args.lint_only or args.mutant is not None):
        print("--sample only applies to the full analysis", file=sys.stderr)
        return 2

    if args.list_mutants:
        rows = [
            [m.name, ", ".join(m.detected_by), m.description]
            for m in ANALYZE_MUTANTS.values()
        ]
        print(render_table(["mutant", "detected by", "description"], rows,
                           title="seeded skeleton mutants"))
        return 0

    if args.mutant is not None:
        # Self-test: plant the defect, require the checker to flag it.
        app = make_app(args.app, args.problem_class) if args.app else None
        check = run_mutant(args.mutant, app)
        if args.json:
            print(json.dumps({
                "mutant": check.name, "detected": check.detected,
                "expected": list(check.expected), "found": list(check.found),
                "clean_before": check.clean_before,
            }))
        else:
            print(check.describe())
        return 0 if check.detected else 1

    lint_findings = lint_tree()
    if args.lint_only:
        for f in lint_findings:
            print(f"{f.path}:{f.line}: {f.rule}: {f.message}")
        if args.json:
            print(json.dumps([
                {"path": f.path, "line": f.line, "rule": f.rule,
                 "message": f.message}
                for f in lint_findings
            ]))
        elif not lint_findings:
            print("lint: clean")
        return 1 if lint_findings else 0

    if args.app is None:
        print("analyze requires --app (unless --lint-only or --list-mutants)",
              file=sys.stderr)
        return 2

    app = make_app(args.app, args.problem_class)
    skeleton = extract_skeleton(app)
    match = check_skeleton(skeleton)

    summary: dict = {
        "app": app.name,
        "lint": [
            {"path": f.path, "line": f.line, "rule": f.rule, "message": f.message}
            for f in lint_findings
        ],
        "matching": {
            "ok": match.ok,
            "n_ops": match.n_ops,
            "n_comms": match.n_comms,
            "findings": [
                {"rule": f.rule, "severity": f.severity, "message": f.message}
                for f in match.findings
            ],
        },
    }
    ok = match.ok and not lint_findings

    cv = None
    if match.ok and args.sample is not None:
        # Referee mode: re-run a deterministic stride of the predicted
        # tests in the live simulator; one mismatch fails the analysis.
        cv = cross_validate(
            app, seed=args.seed, tests_per_point=args.tests,
            param_policy=args.policy, sample=args.sample, skeleton=skeleton,
        )
        ok = ok and cv.ok
        summary["crossval"] = {
            "ok": cv.ok, "n_tests": cv.n_tests, "n_predicted": cv.n_predicted,
            "n_checked": cv.n_checked, "coverage": cv.coverage,
            "rules": dict(cv.rules),
            "mismatches": [
                {"param": m.param, "rule": m.rule,
                 "predicted": m.predicted.value, "actual": m.actual.value,
                 "detail": m.detail}
                for m in cv.mismatches
            ],
        }
    elif match.ok:
        # Static-only pass: classify the whole campaign, run nothing.
        pre = PreClassifier(skeleton, seed=args.seed, param_policy=args.policy)
        points = enumerate_points(profile_application(app))
        rules: Counter = Counter()
        n_tests = n_predicted = 0
        for _i, _t, _point, prediction in predict_tests(pre, points, args.tests):
            n_tests += 1
            if prediction is not None:
                n_predicted += 1
                rules[prediction.rule] += 1
        summary["preclassify"] = {
            "n_tests": n_tests, "n_predicted": n_predicted,
            "coverage": n_predicted / n_tests if n_tests else 0.0,
            "rules": dict(rules),
        }

    if args.json:
        summary["ok"] = ok
        print(json.dumps(summary, indent=2))
        return 0 if ok else 1

    print(match.describe())
    for f in lint_findings:
        print(f"{f.path}:{f.line}: {f.rule}: {f.message}")
    print(f"lint: {len(lint_findings)} finding(s)"
          if lint_findings else "lint: clean")
    if cv is not None:
        print()
        print(cv.describe())
    elif "preclassify" in summary:
        pc = summary["preclassify"]
        print()
        rows = [[rule, n] for rule, n in sorted(
            pc["rules"].items(), key=lambda kv: -kv[1])]
        print(render_table(
            ["rule", "tests"], rows,
            title=f"statically proven: {pc['n_predicted']}/{pc['n_tests']} "
            f"tests ({pc['coverage']:.1%}) — not cross-validated "
            f"(use --sample)",
        ))
    return 0 if ok else 1


def cmd_study(args: argparse.Namespace) -> int:
    ff = _tool(args)
    threshold = None if args.no_ml else args.threshold
    report = ff.run(threshold=threshold)
    print(report.describe())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fastfit", description="Fast fault injection and sensitivity analysis"
    )
    # Shared verbosity flags, attached to every subcommand so they can
    # go after the command name (fastfit trace -v ...).
    verbosity = argparse.ArgumentParser(add_help=False)
    verbosity.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="diagnostics on stderr (-v info, -vv debug)",
    )
    verbosity.add_argument(
        "-q", "--quiet", action="store_true", help="errors only"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("apps", help="list registered workloads", parents=[verbosity])
    p.set_defaults(fn=cmd_apps)

    p = sub.add_parser("profile", help="profiling phase: sites, stacks, mix", parents=[verbosity])
    _add_app_args(p)
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser("prune", help="semantic + context pruning report", parents=[verbosity])
    _add_app_args(p)
    p.set_defaults(fn=cmd_prune)

    p = sub.add_parser(
        "campaign", help="fault-injection campaign over representatives", parents=[verbosity]
    )
    _add_app_args(p)
    _add_campaign_args(p)
    p.set_defaults(fn=cmd_campaign)

    # 'run' = 'campaign' with a default app, the natural spelling for
    # store-backed runs: fastfit run --db campaigns.sqlite
    p = sub.add_parser(
        "run", help="alias for 'campaign' (default --app lu)", parents=[verbosity]
    )
    _add_app_args(p, required=False, default="lu")
    _add_campaign_args(p)
    p.set_defaults(fn=cmd_campaign)

    p = sub.add_parser(
        "learn", help="ML-driven campaign (inject → learn → predict)", parents=[verbosity]
    )
    _add_app_args(p)
    _add_campaign_args(p)
    p.add_argument("--threshold", type=float, default=0.65)
    p.set_defaults(fn=cmd_learn)

    p = sub.add_parser(
        "analyze",
        help="static analysis: collective-matching checker, provable "
        "fault-outcome pre-classification (cross-validated), and the "
        "determinism lint",
        parents=[verbosity],
    )
    _add_app_args(p, required=False)
    p.add_argument(
        "--tests", type=int, default=10,
        help="tests per injection point to classify (default 10)",
    )
    p.add_argument(
        "--policy", default="all",
        help='fault target policy to classify under (default "all")',
    )
    p.add_argument(
        "--sample", type=float, default=None, metavar="FRACTION",
        help="cross-validate this fraction of the statically predicted "
        "tests against live simulator runs (exit 1 on any mismatch); "
        "must be in (0, 1]",
    )
    p.add_argument(
        "--lint-only", action="store_true",
        help="run only the determinism/simulator-safety lint over the "
        "repro package",
    )
    p.add_argument(
        "--mutant", default=None, metavar="NAME",
        help="plant a seeded skeleton defect and require the matching "
        "checker to catch it (exit 0 = detected); see --list-mutants",
    )
    p.add_argument(
        "--list-mutants", action="store_true",
        help="list seeded skeleton mutants and exit",
    )
    p.add_argument("--json", action="store_true", help="machine-readable summary")
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser(
        "study", help="full study: profile → prune → campaign/learn", parents=[verbosity]
    )
    _add_app_args(p)
    _add_campaign_args(p)
    p.add_argument("--threshold", type=float, default=0.65)
    p.add_argument("--no-ml", action="store_true", help="skip the ML stage (NPB-style rows)")
    p.set_defaults(fn=cmd_study)

    p = sub.add_parser(
        "trace", help="trace one injection test (events + failure forensics)",
        parents=[verbosity],
    )
    _add_app_args(p)
    p.add_argument(
        "--point", type=int, default=0,
        help="index into the pruned representative points (see 'prune')",
    )
    p.add_argument("--param", default=None, help="fault parameter (default: policy pick)")
    p.add_argument(
        "--policy", default="buffer",
        help='fault target policy when --param is not given',
    )
    p.add_argument("--bit", type=int, default=None, help="bit to flip (default: random)")
    p.add_argument("--test", type=int, default=0, help="test index within the point")
    p.add_argument(
        "--find-outcome", default=None, metavar="OUTCOME",
        help="search test indices until this response type occurs (e.g. INF_LOOP)",
    )
    p.add_argument(
        "--max-search", type=int, default=200,
        help="max tests to try with --find-outcome",
    )
    p.add_argument(
        "--capacity", type=int, default=DEFAULT_CAPACITY,
        help="trace ring-buffer capacity (events)",
    )
    p.add_argument("--limit", type=int, default=100, help="max events to pretty-print (0 = all)")
    p.add_argument("--json", action="store_true", help="emit JSONL instead of text")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser(
        "verify",
        help="verification suite: conformance fuzzing, sanitizers, replay, "
        "campaign determinism, snapshot fork-equivalence",
        parents=[verbosity],
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--draws", type=int, default=200,
        help="fuzzed draws per collective for the conformance sweep",
    )
    p.add_argument(
        "--collective", action="append", default=None, metavar="NAME",
        help="restrict conformance to this collective (repeatable)",
    )
    p.add_argument(
        "--mutant", default=None, metavar="NAME",
        help="install a seeded defect and require the harness to catch it "
        "(exit 0 = detected); see --list-mutants",
    )
    p.add_argument(
        "--list-mutants", action="store_true", help="list seeded mutants and exit"
    )
    p.add_argument("--skip-sanitize", action="store_true", help="skip the sanitizer soak")
    p.add_argument("--skip-replay", action="store_true", help="skip the replay check")
    p.add_argument(
        "--skip-campaign", action="store_true",
        help="skip the serial-vs-parallel campaign determinism check",
    )
    p.add_argument(
        "--skip-snapshot", action="store_true",
        help="skip the snapshot fork-equivalence check",
    )
    p.add_argument(
        "--skip-models", action="store_true",
        help="skip the fault-model conformance witnesses",
    )
    p.add_argument(
        "--app", default="lu", choices=sorted(APPLICATIONS),
        help="workload for the campaign determinism check",
    )
    p.add_argument("--problem-class", default="T", choices=("T", "S", "A"))
    p.add_argument("--tests", type=int, default=3, help="tests per point for the campaign check")
    p.add_argument("--max-points", type=int, default=4, help="points for the campaign check")
    p.add_argument("--json", action="store_true", help="machine-readable summary")
    p.set_defaults(fn=cmd_verify)

    p = sub.add_parser(
        "stats", help="campaign with metrics: phase timings, tests/sec, outcomes "
        "(or recompute them from a stored campaign with --db)",
        parents=[verbosity],
    )
    _add_app_args(p, required=False)
    _add_campaign_args(p)
    p.add_argument(
        "--digest", default=None, metavar="HEX",
        help="campaign digest (or prefix) to read with --db "
        "(default: most recent)",
    )
    p.add_argument("--json", action="store_true", help="dump the metrics registry as JSON")
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser(
        "report", help="build the static HTML report tree from a campaign database",
        parents=[verbosity],
    )
    p.add_argument("--db", required=True, metavar="PATH", help="campaign database")
    p.add_argument("--out", default="report", metavar="DIR", help="output directory")
    p.add_argument(
        "--digest", default=None, metavar="HEX",
        help="campaign digest (or prefix) to focus index.html on "
        "(default: most recent)",
    )
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser(
        "migrate", help="convert a pickle checkpoint directory into the SQLite schema",
        parents=[verbosity],
    )
    p.add_argument(
        "--checkpoint-dir", required=True, metavar="DIR",
        help="pickle checkpoint directory to convert",
    )
    p.add_argument("--db", required=True, metavar="PATH", help="target campaign database")
    p.add_argument(
        "--overwrite", action="store_true",
        help="replace an already-migrated campaign with the same digest",
    )
    p.set_defaults(fn=cmd_migrate)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    setup_logging(verbose=getattr(args, "verbose", 0), quiet=getattr(args, "quiet", False))
    if getattr(args, "resume", False) and not (
        getattr(args, "checkpoint_dir", None) or getattr(args, "db", None)
    ):
        print("--resume requires --checkpoint-dir or --db", file=sys.stderr)
        return 2
    if (
        args.command != "migrate"
        and getattr(args, "checkpoint_dir", None)
        and getattr(args, "db", None)
    ):
        print("--checkpoint-dir and --db are mutually exclusive", file=sys.stderr)
        return 2
    jobs = getattr(args, "jobs", 1)
    if jobs < 1:
        print(f"--jobs must be >= 1, got {jobs}", file=sys.stderr)
        return 2
    if getattr(args, "static_prune", False) and (
        jobs != 1
        or getattr(args, "db", None)
        or getattr(args, "checkpoint_dir", None)
    ):
        print(
            "--static-prune requires a serial in-memory campaign "
            "(incompatible with --jobs > 1, --db, and --checkpoint-dir)",
            file=sys.stderr,
        )
        return 2
    fault_model = getattr(args, "fault_model", "bitflip")
    if fault_model not in SELECTABLE_MODELS:
        print(
            f"unknown fault model {fault_model!r}; choices: "
            + ", ".join(SELECTABLE_MODELS),
            file=sys.stderr,
        )
        return 2
    if getattr(args, "scenario", None):
        if getattr(args, "static_prune", False):
            print(
                "--scenario is incompatible with --static-prune: the "
                "pre-classifier only understands single-bit parameter flips",
                file=sys.stderr,
            )
            return 2
        if fault_model != "bitflip":
            print(
                "--scenario and --fault-model are mutually exclusive "
                "(the scenario's tasks name their own models)",
                file=sys.stderr,
            )
            return 2
    if fault_model != "bitflip" and getattr(args, "static_prune", False):
        print(
            f"--static-prune only understands the single-bit 'bitflip' "
            f"fault model, not {fault_model!r}",
            file=sys.stderr,
        )
        return 2
    adaptive = getattr(args, "adaptive", False)
    if not adaptive:
        for flag, name in (
            ("ci_width", "--ci-width"),
            ("budget", "--budget"),
            ("accuracy_target", "--accuracy-target"),
        ):
            if getattr(args, flag, None) is not None:
                print(f"{name} requires --adaptive", file=sys.stderr)
                return 2
    else:
        if args.command not in ("campaign", "run"):
            print(
                "--adaptive only applies to 'campaign' and 'run'",
                file=sys.stderr,
            )
            return 2
        if getattr(args, "scenario", None):
            print("--adaptive and --scenario are mutually exclusive",
                  file=sys.stderr)
            return 2
        if getattr(args, "static_prune", False):
            print(
                "--adaptive is incompatible with --static-prune "
                "(sequential stopping needs every test slot executed)",
                file=sys.stderr,
            )
            return 2
        if getattr(args, "checkpoint_dir", None):
            print(
                "--adaptive persists through --db only, not "
                "--checkpoint-dir (steering rounds need the store)",
                file=sys.stderr,
            )
            return 2
        ci_width = getattr(args, "ci_width", None)
        if ci_width is not None and not 0.0 < ci_width <= 1.0:
            print(f"--ci-width must be in (0, 1], got {ci_width}",
                  file=sys.stderr)
            return 2
        budget = getattr(args, "budget", None)
        if budget is not None and budget < 1:
            print(f"--budget must be >= 1 test, got {budget}", file=sys.stderr)
            return 2
        accuracy_target = getattr(args, "accuracy_target", None)
        if accuracy_target is not None and not 0.0 < accuracy_target <= 1.0:
            print(
                f"--accuracy-target must be in (0, 1], got {accuracy_target}",
                file=sys.stderr,
            )
            return 2
    batch_size = getattr(args, "batch_size", None)
    if batch_size is not None and batch_size < 1:
        print(f"--batch-size must be >= 1, got {batch_size}", file=sys.stderr)
        return 2
    unit_timeout = getattr(args, "unit_timeout", None)
    if unit_timeout is not None and unit_timeout <= 0:
        print(f"--unit-timeout must be > 0 seconds, got {unit_timeout}", file=sys.stderr)
        return 2
    max_retries = getattr(args, "max_retries", 2)
    if max_retries < 0:
        print(f"--max-retries must be >= 0, got {max_retries}", file=sys.stderr)
        return 2
    progress_every = getattr(args, "progress_every", 1)
    if progress_every < 1:
        print(f"--progress-every must be >= 1, got {progress_every}", file=sys.stderr)
        return 2
    try:
        return args.fn(args)
    except (
        CheckpointMismatch, CampaignStoreError, MigrationError,
        StaticPruneError, ScenarioError,
    ) as exc:
        # A stale/foreign checkpoint, locked database, or unconvertible
        # directory is an operator error, not a crash: one line, exit 2,
        # no traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
