"""Profiling-phase orchestration (FastFIT architecture, § IV-B).

``profile_application`` runs the workload once with the communication
profiler attached — using the *same problem* as the later fault
injection runs, as the paper requires — and assembles an
:class:`ApplicationProfile`: call records, per-rank call graphs,
communication traces, and per-site summaries.  The profiling cost is a
one-time cost reused by every injection campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import networkx as nx

from ..apps.base import Application
from ..simmpi import run_app
from .callgraph import build_callgraph
from .callstack import average_depth, distinct_stacks, group_by_stack
from .comm_profile import CallInfo, CommProfile, CommProfiler


@dataclass
class SiteSummary:
    """Per-(rank, site) aggregate used for features and pruning."""

    rank: int
    name: str
    site: str
    n_invocations: int
    n_diff_stacks: int
    avg_stack_depth: float
    stack_groups: dict[tuple[str, ...], list[int]]
    phases: dict[int, str]  # invocation -> phase
    comm_group: tuple[int, ...]
    root_world: int | None

    @property
    def site_key(self) -> tuple[str, str]:
        return (self.name, self.site)


@dataclass
class ApplicationProfile:
    """The complete profiling-phase output."""

    app_name: str
    nranks: int
    comm: CommProfile
    callgraphs: dict[int, nx.DiGraph] = field(default_factory=dict)
    summaries: dict[tuple[int, tuple[str, str]], SiteSummary] = field(default_factory=dict)
    golden_results: list[Any] = field(default_factory=list)
    golden_steps: int = 0

    def summary(self, rank: int, site_key: tuple[str, str]) -> SiteSummary:
        return self.summaries[(rank, site_key)]

    def sites_of_rank(self, rank: int) -> list[SiteSummary]:
        return sorted(
            (s for (r, _), s in self.summaries.items() if r == rank),
            key=lambda s: s.site_key,
        )

    def total_injection_points(self) -> int:
        """The unpruned exploration-space size: every invocation of every
        call site on every rank (paper § II)."""
        return sum(s.n_invocations for s in self.summaries.values())


def _summarise(calls: list[CallInfo]) -> SiteSummary:
    stacks = [c.stack for c in calls]
    first = calls[0]
    return SiteSummary(
        rank=first.rank,
        name=first.name,
        site=first.site,
        n_invocations=len(calls),
        n_diff_stacks=distinct_stacks(stacks),
        avg_stack_depth=average_depth(stacks),
        stack_groups=group_by_stack((c.invocation, c.stack) for c in calls),
        phases={c.invocation: c.phase for c in calls},
        comm_group=first.comm_group,
        root_world=first.root_world,
    )


def profile_application(
    app: Application,
    step_budget: int | None = None,
    algorithms: dict[str, str] | None = None,
) -> ApplicationProfile:
    """Run ``app`` once under the profiler and build its profile.

    The run doubles as the golden run: its per-rank results are the
    reference for ``WRONG_ANS`` classification, and its event count
    calibrates the injection runs' hang budget.  ``algorithms`` selects
    collective implementations (must match the later injection runs).
    """
    profiler = CommProfiler()
    kwargs = {} if step_budget is None else {"step_budget": step_budget}
    result = run_app(
        app.main, app.nranks, instruments=[profiler], algorithms=algorithms, **kwargs
    )

    profile = ApplicationProfile(
        app_name=app.name,
        nranks=app.nranks,
        comm=profiler.profile,
        golden_results=result.results,
        golden_steps=result.steps,
    )

    by_rank_site: dict[tuple[int, tuple[str, str]], list[CallInfo]] = {}
    for call in profiler.profile.calls:
        by_rank_site.setdefault((call.rank, call.site_key), []).append(call)
    for key, calls in by_rank_site.items():
        calls.sort(key=lambda c: c.invocation)
        profile.summaries[key] = _summarise(calls)

    for rank in range(app.nranks):
        stacks = [c.stack for c in profiler.profile.calls_by_rank(rank)]
        profile.callgraphs[rank] = build_callgraph(stacks)

    return profile
