"""Application-phase bookkeeping (the ``Phase`` ML feature).

The paper orders phases input → initialisation → compute → finalisation
and finds the input/init phases most strongly correlated with fault
sensitivity (Table IV).
"""

from __future__ import annotations

#: Canonical phase order used for numeric encoding.
PHASE_ORDER: tuple[str, ...] = ("input", "init", "compute", "end")

PHASE_IDS: dict[str, int] = {name: i for i, name in enumerate(PHASE_ORDER)}


def encode_phase(phase: str) -> int:
    """Numeric id of a phase; unknown phases map after the known ones."""
    return PHASE_IDS.get(phase, len(PHASE_ORDER))


def phase_indicator(phase: str) -> dict[str, int]:
    """One-hot encoding, used by the Table IV correlation study."""
    return {name: int(name == phase) for name in PHASE_ORDER}
