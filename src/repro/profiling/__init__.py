"""``repro.profiling`` — the profiling-phase substrate.

Stand-ins for the paper's profiling stack: mpiP (communication profile),
Callgrind/gprof (call graphs), and ``backtrace()`` (call stacks).
"""

from .callgraph import (
    build_callgraph,
    callgraph_signature,
    frame_function,
    graph_similarity,
    graphs_equivalent,
)
from .callstack import (
    average_depth,
    distinct_stacks,
    group_by_stack,
    stack_depth,
    stack_digest,
    stack_histogram,
)
from .comm_profile import CallInfo, CommProfile, CommProfiler, P2PEvent
from .phases import PHASE_IDS, PHASE_ORDER, encode_phase, phase_indicator
from .profiler import ApplicationProfile, SiteSummary, profile_application

__all__ = [
    "ApplicationProfile",
    "CallInfo",
    "CommProfile",
    "CommProfiler",
    "P2PEvent",
    "PHASE_IDS",
    "PHASE_ORDER",
    "SiteSummary",
    "average_depth",
    "build_callgraph",
    "callgraph_signature",
    "distinct_stacks",
    "encode_phase",
    "frame_function",
    "graph_similarity",
    "graphs_equivalent",
    "group_by_stack",
    "phase_indicator",
    "profile_application",
    "stack_depth",
    "stack_digest",
    "stack_histogram",
]
