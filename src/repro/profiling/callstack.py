"""Call-stack utilities — the ``backtrace()`` equivalent.

The runtime already captures canonical stacks (``func@file:lineno``
frames, outermost first) at every collective entry; this module supplies
the equivalence and summary operations FastFIT's context-driven pruning
needs (paper § III-B: "the same call stack means that the active
functions are the same and called in the same order").
"""

from __future__ import annotations

import hashlib
from collections import Counter
from typing import Iterable


def stack_depth(stack: tuple[str, ...]) -> int:
    """Nesting depth from the entry point (the ``StackDep`` feature)."""
    return len(stack)


def stack_digest(stack: tuple[str, ...]) -> str:
    """A stable short digest of a canonical stack."""
    h = hashlib.sha1("|".join(stack).encode()).hexdigest()
    return h[:12]


def group_by_stack(
    invocations: Iterable[tuple[int, tuple[str, ...]]]
) -> dict[tuple[str, ...], list[int]]:
    """Group ``(invocation_index, stack)`` pairs into equivalence classes.

    Returns ``stack -> sorted invocation indices``; the first index of
    each class is the class representative.
    """
    groups: dict[tuple[str, ...], list[int]] = {}
    for inv, stack in invocations:
        groups.setdefault(stack, []).append(inv)
    for members in groups.values():
        members.sort()
    return groups


def distinct_stacks(stacks: Iterable[tuple[str, ...]]) -> int:
    """Number of distinct stacks (the ``nDiffStack`` feature)."""
    return len(set(stacks))


def average_depth(stacks: Iterable[tuple[str, ...]]) -> float:
    """Average stack depth (the ``StackDep`` feature)."""
    depths = [len(s) for s in stacks]
    return sum(depths) / len(depths) if depths else 0.0


def stack_histogram(stacks: Iterable[tuple[str, ...]]) -> Counter:
    """Occurrence counts per distinct stack."""
    return Counter(stacks)
