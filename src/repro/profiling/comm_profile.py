"""Communication profiler — the mpiP equivalent.

A :class:`CommProfiler` instrument records every collective call (site,
invocation, phase, call stack, communicator group, resolved root) and
the point-to-point trace of every rank.  The result feeds all three of
FastFIT's pruning techniques.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..simmpi import CollectiveCall, Instrument
from ..simmpi.validation import resolve_comm


@dataclass(frozen=True)
class CallInfo:
    """One collective invocation, as recorded during profiling.

    ``comm_group`` is the world-rank membership of the communicator and
    ``root_world`` the world rank of the root (``None`` for non-rooted
    collectives) — the inputs of semantic-driven pruning.
    """

    rank: int
    name: str
    site: str
    invocation: int
    seq: int
    phase: str
    stack: tuple[str, ...]
    comm_group: tuple[int, ...]
    root_world: int | None

    @property
    def site_key(self) -> tuple[str, str]:
        return (self.name, self.site)


@dataclass(frozen=True)
class P2PEvent:
    """One point-to-point operation (communication-trace element)."""

    kind: str  # "send" | "recv"
    src: int
    dst: int
    tag: int
    nbytes: int


@dataclass
class CommProfile:
    """Everything the communication profiler collected."""

    nranks: int = 0
    calls: list[CallInfo] = field(default_factory=list)
    p2p: dict[int, list[P2PEvent]] = field(default_factory=dict)

    # -- mpiP-style summaries -----------------------------------------

    def calls_by_rank(self, rank: int) -> list[CallInfo]:
        return [c for c in self.calls if c.rank == rank]

    def calls_at(self, rank: int, site_key: tuple[str, str]) -> list[CallInfo]:
        return [c for c in self.calls if c.rank == rank and c.site_key == site_key]

    def site_keys(self) -> list[tuple[str, str]]:
        """All distinct (collective, location) call sites, sorted."""
        return sorted({c.site_key for c in self.calls})

    def collective_mix(self) -> dict[str, int]:
        """Invocation counts per collective type (across all ranks)."""
        mix: dict[str, int] = {}
        for c in self.calls:
            mix[c.name] = mix.get(c.name, 0) + 1
        return mix

    def n_invocations(self, rank: int, site_key: tuple[str, str]) -> int:
        return len(self.calls_at(rank, site_key))

    def collective_sequence(self, rank: int) -> tuple[tuple[str, str], ...]:
        """The ordered collective-call sequence of one rank (used to
        compare process communication behaviour)."""
        return tuple(c.site_key for c in sorted(self.calls_by_rank(rank), key=lambda c: c.seq))

    def p2p_signature(self, rank: int) -> tuple[tuple[str, int, int], ...]:
        """Direction-normalised p2p trace of one rank.

        Peers are recorded relative to the rank (offset in world size) so
        that translation-equivalent ranks compare equal.
        """
        out = []
        for ev in self.p2p.get(rank, ()):
            peer = ev.dst if ev.kind == "send" else ev.src
            out.append((ev.kind, (peer - rank) % max(self.nranks, 1), ev.nbytes))
        return tuple(out)


class CommProfiler(Instrument):
    """Instrument that builds a :class:`CommProfile` during a run."""

    def __init__(self):
        self.profile = CommProfile()

    def on_collective(self, ctx, call: CollectiveCall) -> None:
        self.profile.nranks = ctx.size
        comm_group: tuple[int, ...] = ()
        root_world: int | None = None
        try:
            comm = resolve_comm(ctx.runtime, call.args["comm"], rank=ctx.rank)
            comm_group = comm.group
            if "root" in call.args:
                root_world = comm.world_rank(int(call.args["root"]))
        except Exception:  # profiling runs are clean; stay defensive
            pass
        self.profile.calls.append(
            CallInfo(
                rank=call.rank,
                name=call.name,
                site=call.site,
                invocation=call.invocation,
                seq=call.seq,
                phase=call.phase,
                stack=call.stack,
                comm_group=comm_group,
                root_world=root_world,
            )
        )

    def on_p2p(self, ctx, kind: str, src: int, dst: int, tag: int, nbytes: int) -> None:
        self.profile.nranks = ctx.size
        self.profile.p2p.setdefault(ctx.rank, []).append(
            P2PEvent(kind, src, dst, tag, nbytes)
        )
