"""Dynamic call-graph capture — the Callgrind/gprof equivalent.

Call graphs are reconstructed from the call stacks observed at
communication events: every adjacent frame pair contributes a
caller → callee edge weighted by occurrence count.  Semantic-driven
pruning compares the per-rank graphs to decide process equivalence
(paper § III-A: "we collect application function call graphs … and then
compare their similarity").
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx


def frame_function(frame: str) -> str:
    """The function identity of a canonical stack frame.

    Frames are ``func@file:lineno``; the call graph keys on
    ``func@file`` so that different call *lines* of the same function
    collapse into one node.
    """
    head, _, _ = frame.rpartition(":")
    return head or frame


def build_callgraph(stacks: Iterable[tuple[str, ...]]) -> nx.DiGraph:
    """Build a weighted call graph from canonical stacks."""
    g = nx.DiGraph()
    for stack in stacks:
        funcs = [frame_function(f) for f in stack]
        for node in funcs:
            if not g.has_node(node):
                g.add_node(node, count=0)
        if funcs:
            g.nodes[funcs[-1]]["count"] += 1
        for caller, callee in zip(funcs, funcs[1:]):
            if g.has_edge(caller, callee):
                g[caller][callee]["count"] += 1
            else:
                g.add_edge(caller, callee, count=1)
    return g


def callgraph_signature(g: nx.DiGraph) -> tuple:
    """A hashable signature: sorted weighted edge and node sets."""
    nodes = tuple(sorted((n, d.get("count", 0)) for n, d in g.nodes(data=True)))
    edges = tuple(sorted((u, v, d.get("count", 0)) for u, v, d in g.edges(data=True)))
    return (nodes, edges)


def graphs_equivalent(a: nx.DiGraph, b: nx.DiGraph) -> bool:
    """True when two ranks' call graphs match exactly (nodes, edges,
    and counts) — the empirical equivalence test of § III-A."""
    return callgraph_signature(a) == callgraph_signature(b)


def graph_similarity(a: nx.DiGraph, b: nx.DiGraph) -> float:
    """Jaccard similarity over weighted edges, in [0, 1].

    Used for reporting how close two non-equivalent processes are.
    """
    ea = {(u, v): d.get("count", 0) for u, v, d in a.edges(data=True)}
    eb = {(u, v): d.get("count", 0) for u, v, d in b.edges(data=True)}
    if not ea and not eb:
        return 1.0
    keys = set(ea) | set(eb)
    inter = sum(min(ea.get(k, 0), eb.get(k, 0)) for k in keys)
    union = sum(max(ea.get(k, 0), eb.get(k, 0)) for k in keys)
    return inter / union if union else 1.0
