"""Shared logging configuration for the CLI and library consumers.

The library itself only ever calls ``logging.getLogger(...)`` — it never
configures handlers (standard library-package etiquette).  The CLI (and
any embedding application) calls :func:`setup_logging` once to map its
``--verbose``/``--quiet`` flags onto root-logger levels.
"""

from __future__ import annotations

import logging
import sys
from typing import IO

#: -v count -> level for the ``repro`` logger hierarchy.
_LEVELS = (logging.WARNING, logging.INFO, logging.DEBUG)

LOG_FORMAT = "%(levelname)s %(name)s: %(message)s"


def verbosity_level(verbose: int = 0, quiet: bool = False) -> int:
    """The logging level implied by CLI flags (quiet wins)."""
    if quiet:
        return logging.ERROR
    return _LEVELS[min(max(verbose, 0), len(_LEVELS) - 1)]


def setup_logging(
    verbose: int = 0, quiet: bool = False, stream: IO[str] | None = None
) -> int:
    """Configure root logging for a CLI invocation; returns the level.

    Idempotent (``force=True``): safe to call once per ``main()`` even
    when several CLI invocations share a process, as in the test suite.
    Diagnostics go to stderr so stdout stays parseable (tables, JSONL).
    """
    level = verbosity_level(verbose, quiet)
    logging.basicConfig(
        level=level,
        format=LOG_FORMAT,
        stream=stream if stream is not None else sys.stderr,
        force=True,
    )
    return level
