"""Structured simulator tracing: typed events in a bounded ring buffer.

The tracer is the evidence layer behind every FastFIT verdict: a run
classified ``INF_LOOP`` or ``SEG_FAULT`` is only a label until the event
record shows *which* sends never matched or *which* corrupted parameter
walked off the arena.  Events are emitted from the scheduler (message
matching), the per-rank contexts (collective entry/exit), the memory
arenas (allocations), and the fault injector (arm/fire).

Design constraints:

* **bounded** — a ring buffer (``collections.deque`` with ``maxlen``)
  so a runaway INF_LOOP run cannot exhaust host memory; the *newest*
  events are kept, which is exactly the window that explains a hang;
* **cheap when off** — every emission site guards with a single
  ``tracer is not None`` check, so the untraced hot path pays one
  attribute load per event (see ``bench_simmpi_throughput``);
* **deterministic** — events carry a monotonic sequence number, never a
  wall-clock timestamp, preserving the simulator's reproducibility.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator

#: Every event kind the simulator stack emits, in no particular order.
EVENT_KINDS = (
    "send",          # scheduler: a message entered the match space
    "recv",          # scheduler: a fiber posted a receive
    "match",         # scheduler: a send/recv pair matched
    "rank_blocked",  # scheduler: a fiber blocked on an unmatched receive
    "coll_enter",    # context: a rank entered a collective
    "coll_exit",     # context: a rank's collective completed
    "alloc",         # memory: a buffer was allocated in a rank arena
    "fault_armed",   # injector: a fault spec is armed for this run
    "fault_fired",   # injector: the bit flip actually happened
    "unit_retry",    # supervisor: a work unit is being re-dispatched
    "unit_quarantined",  # supervisor: a unit gave up and was quarantined
    "sanitize_violation",  # sanitizer: a semantic tripwire fired
)

#: Default ring-buffer capacity (events).
DEFAULT_CAPACITY = 65_536


@dataclass(frozen=True)
class TraceEvent:
    """One typed simulator event.

    ``data`` holds the kind-specific payload (match keys, call sites,
    byte counts, ...) with JSON-safe scalar values only.
    """

    seq: int
    kind: str
    rank: int
    data: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """Flat, JSON-ready representation (one JSONL record)."""
        return {"seq": self.seq, "kind": self.kind, "rank": self.rank, **self.data}


class Tracer:
    """A bounded ring buffer of :class:`TraceEvent` records.

    Parameters
    ----------
    capacity:
        Maximum number of events retained; older events are dropped
        (and counted in :attr:`dropped`) once the buffer is full.
    enabled:
        When False, :meth:`emit` is a no-op — useful for toggling
        tracing without unthreading the tracer from the runtime.
    """

    __slots__ = ("capacity", "enabled", "_events", "_seq")

    def __init__(self, capacity: int = DEFAULT_CAPACITY, enabled: bool = True):
        if capacity < 1:
            raise ValueError(f"tracer capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.enabled = enabled
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self._seq = 0

    def emit(self, kind: str, rank: int, **data: Any) -> None:
        """Record one event (dropped silently when disabled)."""
        if not self.enabled:
            return
        self._events.append(TraceEvent(self._seq, kind, rank, data))
        self._seq += 1

    # -- inspection ---------------------------------------------------

    @property
    def emitted(self) -> int:
        """Total events emitted over the tracer's lifetime."""
        return self._seq

    @property
    def dropped(self) -> int:
        """Events pushed out of the ring by newer ones."""
        return self._seq - len(self._events)

    def events(self, *kinds: str) -> list[TraceEvent]:
        """Retained events in emission order, optionally filtered by kind."""
        if not kinds:
            return list(self._events)
        wanted = set(kinds)
        return [e for e in self._events if e.kind in wanted]

    def clear(self) -> None:
        """Drop all retained events and reset the counters."""
        self._events.clear()
        self._seq = 0

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Tracer({len(self)}/{self.capacity} events, "
            f"{self.dropped} dropped, {'on' if self.enabled else 'off'})"
        )


def format_event(event: TraceEvent) -> str:
    """One human-readable line per event (the ``fastfit trace`` view)."""
    d = event.data
    if event.kind in ("send", "recv", "match", "rank_blocked"):
        body = f"ctx={d.get('ctx')} src={d.get('src')} dst={d.get('dst')} tag={d.get('tag', 0):#x}"
        if "nbytes" in d:
            body += f" nbytes={d['nbytes']}"
    elif event.kind in ("coll_enter", "coll_exit"):
        body = f"{d.get('name')}@{d.get('site')}#inv{d.get('invocation')}"
        if "phase" in d:
            body += f" phase={d['phase']}"
    elif event.kind == "alloc":
        body = f"addr={d.get('addr', 0):#x} nbytes={d.get('nbytes')} label={d.get('label') or '-'}"
    elif event.kind in ("fault_armed", "fault_fired"):
        body = f"{d.get('collective')}@{d.get('site')}#inv{d.get('invocation')} param={d.get('param')} bit={d.get('bit')}"
        if d.get("before"):
            body += f" {d['before']} -> {d['after']}"
    elif event.kind in ("unit_retry", "unit_quarantined"):
        body = f"unit={d.get('unit')} attempt={d.get('attempt')} reason={d.get('reason')}"
    elif event.kind == "sanitize_violation":
        extras = " ".join(f"{k}={v}" for k, v in sorted(d.items()) if k != "kind")
        body = f"{d.get('kind')} {extras}".rstrip()
    else:  # pragma: no cover - future kinds
        body = " ".join(f"{k}={v}" for k, v in d.items())
    return f"{event.seq:>7}  {event.kind:<12} rank {event.rank:<3} {body}"
