"""Live campaign progress telemetry.

A long campaign should be observable while it runs, not only after:
the supervisor loop feeds a :class:`ProgressTracker`, which rates-limits
per-unit completions into periodic :class:`ProgressSnapshot` records and
fans them out to any number of :class:`ProgressSink` consumers — a JSONL
stream for the CLI's ``--progress-jsonl``, the campaign database's
``progress`` table (rendered as the report's campaign timeline), or
anything else implementing the two-method protocol.

Snapshots carry throughput (tests/sec over the whole run), a running
outcome histogram, worker-health counters (live workers, deaths,
retries, quarantines), and a naive rate-based ETA.  They are derived
purely from completion events, so emitting them costs nothing on the
test hot path.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from typing import IO, Protocol, runtime_checkable


@dataclass(frozen=True)
class ProgressSnapshot:
    """One point-in-time view of a running campaign."""

    seq: int
    ts: float
    elapsed_s: float
    done_tests: int
    total_tests: int
    done_units: int
    total_units: int
    tests_per_sec: float
    eta_s: float | None
    outcomes: dict[str, int] = field(default_factory=dict)
    workers: int = 1
    worker_deaths: int = 0
    retries: int = 0
    quarantined: int = 0
    #: Snapshot-and-fork engine telemetry (zero when --no-snapshot).
    snapshot_hits: int = 0
    snapshot_misses: int = 0
    snapshot_bytes: int = 0
    snapshot_fastforward_s: float = 0.0

    @property
    def fraction(self) -> float:
        return self.done_tests / self.total_tests if self.total_tests else 1.0

    def to_dict(self) -> dict:
        d = asdict(self)
        d["outcomes"] = dict(sorted(self.outcomes.items()))
        return d

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)


@runtime_checkable
class ProgressSink(Protocol):
    """Anything that consumes progress snapshots."""

    def emit(self, snap: ProgressSnapshot) -> None: ...

    def close(self) -> None: ...


class JsonlProgressSink:
    """Writes one JSON object per snapshot to a file or stream.

    Lines are flushed per emit so ``tail -f`` (or a dashboard polling
    the file) sees snapshots as they happen.
    """

    def __init__(self, target: str | IO[str]):
        if hasattr(target, "write"):
            self._fh: IO[str] = target  # type: ignore[assignment]
            self._owned = False
        else:
            self._fh = open(target, "a", encoding="utf-8")
            self._owned = True

    def emit(self, snap: ProgressSnapshot) -> None:
        self._fh.write(snap.to_json() + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._owned and not self._fh.closed:
            self._fh.close()


class ProgressTracker:
    """Aggregates unit completions into rate-limited snapshots.

    The campaign engine calls :meth:`unit_done` /
    :meth:`unit_quarantined` per completed unit and :meth:`finish` at the
    end; a snapshot is emitted every ``every_units`` completions plus
    always at the end, so even a short campaign leaves a timeline.
    Resumed units are seeded through :meth:`seed` and counted as done
    without polluting throughput (elapsed time starts at tracker
    creation, after the resume load).
    """

    def __init__(
        self,
        total_tests: int,
        total_units: int,
        sinks: list[ProgressSink] | None = None,
        every_units: int = 1,
        workers: int = 1,
        metrics=None,
    ):
        if every_units < 1:
            raise ValueError(f"every_units must be >= 1, got {every_units}")
        self.total_tests = total_tests
        self.total_units = total_units
        self.sinks: list[ProgressSink] = list(sinks or [])
        self.every_units = every_units
        self.workers = workers
        #: Optional :class:`~repro.obs.metrics.MetricsRegistry` to read
        #: supervision counters (worker deaths, retries) from.
        self.metrics = metrics
        self._start = time.monotonic()
        self._seq = 0
        self._done_tests = 0
        self._done_units = 0
        self._fresh_tests = 0  # executed this run (excludes resumed)
        self._outcomes: dict[str, int] = {}
        self._quarantined = 0
        self._since_emit = 0

    # -- event intake ----------------------------------------------------

    def seed(self, tests) -> None:
        """Account for a unit restored from a checkpoint/database."""
        self._done_tests += len(tests)
        self._done_units += 1
        for t in tests:
            name = t.outcome.name
            self._outcomes[name] = self._outcomes.get(name, 0) + 1

    def unit_done(self, tests) -> None:
        """Account for a unit executed this run; maybe emit."""
        self._done_tests += len(tests)
        self._fresh_tests += len(tests)
        self._done_units += 1
        for t in tests:
            name = t.outcome.name
            self._outcomes[name] = self._outcomes.get(name, 0) + 1
        self._maybe_emit()

    def unit_quarantined(self, tests) -> None:
        """Account for a given-up unit (synthetic TOOL_ERROR results)."""
        self._quarantined += 1
        self.unit_done(tests)

    # -- snapshot assembly -------------------------------------------------

    def _counter(self, name: str) -> int:
        if self.metrics is None:
            return 0
        return self.metrics.counter(name).value

    def _gauge(self, name: str) -> int:
        if self.metrics is None:
            return 0
        return int(self.metrics.gauge(name).value)

    def _timer_total(self, name: str) -> float:
        if self.metrics is None:
            return 0.0
        return self.metrics.timer(name).total

    def snapshot(self) -> ProgressSnapshot:
        elapsed = time.monotonic() - self._start
        rate = self._fresh_tests / elapsed if elapsed > 0 else 0.0
        remaining = self.total_tests - self._done_tests
        eta = remaining / rate if rate > 0 and remaining > 0 else None
        self._seq += 1
        return ProgressSnapshot(
            seq=self._seq,
            ts=time.time(),
            elapsed_s=elapsed,
            done_tests=self._done_tests,
            total_tests=self.total_tests,
            done_units=self._done_units,
            total_units=self.total_units,
            tests_per_sec=rate,
            eta_s=eta,
            outcomes=dict(sorted(self._outcomes.items())),
            workers=self.workers,
            worker_deaths=self._counter("exec.worker_deaths"),
            retries=self._counter("exec.retries"),
            quarantined=self._quarantined,
            snapshot_hits=self._counter("snapshot.hits"),
            snapshot_misses=self._counter("snapshot.misses"),
            snapshot_bytes=self._gauge("snapshot.bytes"),
            snapshot_fastforward_s=self._timer_total("snapshot.fastforward_s"),
        )

    def _emit(self) -> None:
        snap = self.snapshot()
        for sink in self.sinks:
            sink.emit(snap)
        self._since_emit = 0

    def _maybe_emit(self) -> None:
        self._since_emit += 1
        if self.sinks and self._since_emit >= self.every_units:
            self._emit()

    def finish(self) -> None:
        """Emit the final snapshot (if anything happened since the last
        one) and close every sink."""
        if self.sinks and (self._since_emit or self._seq == 0):
            self._emit()
        for sink in self.sinks:
            sink.close()
