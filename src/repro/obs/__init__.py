"""``repro.obs`` — the observability layer.

Three concerns, one subsystem:

* **tracing** (:mod:`.events`) — a bounded ring buffer of typed
  simulator events (message matching, collective entry/exit,
  allocations, fault arm/fire), threaded through the runtime as an
  optional ``tracer`` so the untraced hot path stays fast;
* **metrics** (:mod:`.metrics`) — counters, gauges, wall-clock/step
  timers, and histograms recorded by the injection engine, the pruners,
  and the facade, exportable as JSON;
* **forensics** (:mod:`.forensics`) — wait-for graphs for deadlocks and
  one-line fault descriptions that populate ``TestResult.detail``;
* **progress** (:mod:`.progress`) — live campaign telemetry: periodic
  :class:`ProgressSnapshot` records (tests/sec, outcome histogram,
  worker health, ETA) fanned out to :class:`ProgressSink` consumers.

Plus :mod:`.logconf`, the CLI's leveled-logging setup.
"""

from .events import DEFAULT_CAPACITY, EVENT_KINDS, TraceEvent, Tracer, format_event
from .forensics import (
    WaitEdge,
    WaitForGraph,
    build_wait_for_graph,
    describe_fault,
    failure_detail,
)
from .logconf import setup_logging, verbosity_level
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, Timer
from .progress import JsonlProgressSink, ProgressSink, ProgressSnapshot, ProgressTracker

__all__ = [
    "Counter",
    "DEFAULT_CAPACITY",
    "EVENT_KINDS",
    "Gauge",
    "Histogram",
    "JsonlProgressSink",
    "MetricsRegistry",
    "ProgressSink",
    "ProgressSnapshot",
    "ProgressTracker",
    "Timer",
    "TraceEvent",
    "Tracer",
    "WaitEdge",
    "WaitForGraph",
    "build_wait_for_graph",
    "describe_fault",
    "failure_detail",
    "format_event",
    "setup_logging",
    "verbosity_level",
]
