"""Campaign and phase metrics: counters, gauges, timers, histograms.

A :class:`MetricsRegistry` is the single sink the whole stack records
into — the injection runner counts outcomes, the campaign driver tracks
tests/sec, the pruners report their reductions, and the facade times
every phase.  Registries are cheap plain-Python objects; everything is
exportable as JSON next to the existing campaign export formats.

No global state: a registry is created per :class:`~repro.FastFIT`
instance (or explicitly) and threaded down, so concurrent studies never
share metric storage.
"""

from __future__ import annotations

import json
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Iterator


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counters only increase; got {n}")
        self.value += n

    def merge(self, other: "Counter") -> None:
        self.value += other.value


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def merge(self, other: "Gauge") -> None:
        """Last-value-wins: the merged-in gauge is the newer reading."""
        self.value = other.value


class Timer:
    """Accumulated durations — wall-clock seconds or abstract steps.

    ``unit`` is purely descriptive ("s" for wall-clock, "steps" for
    scheduler-event counts); :meth:`record` accepts any non-negative
    magnitude in that unit.
    """

    __slots__ = ("unit", "count", "total", "min", "max")

    def __init__(self, unit: str = "s") -> None:
        self.unit = unit
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def record(self, magnitude: float) -> None:
        magnitude = float(magnitude)
        if magnitude < 0:
            raise ValueError(f"negative duration {magnitude}")
        self.count += 1
        self.total += magnitude
        self.min = min(self.min, magnitude)
        self.max = max(self.max, magnitude)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Timer") -> None:
        """Fold another timer's durations into this one.

        Both timers must measure the same unit; count/total add, min/max
        widen, so the merge is exactly what sequential recording of both
        streams would have produced.
        """
        if other.unit != self.unit:
            raise ValueError(
                f"cannot merge timer in {other.unit!r} into timer in {self.unit!r}"
            )
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @contextmanager
    def time(self) -> Iterator[None]:
        """Context manager recording wall-clock elapsed seconds."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(time.perf_counter() - start)

    def to_dict(self) -> dict[str, Any]:
        return {
            "unit": self.unit,
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max,
        }


#: Sample-reservoir size for histogram quantiles.
_HIST_SAMPLE = 1024


class Histogram:
    """Streaming summary of observed values.

    Tracks exact count/total/min/max and keeps the most recent
    ``_HIST_SAMPLE`` observations for quantile estimates — enough for
    per-point error-rate and duration distributions without unbounded
    memory.
    """

    __slots__ = ("count", "total", "min", "max", "_sample")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._sample: deque[float] = deque(maxlen=_HIST_SAMPLE)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        self._sample.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one.

        Exact aggregates (count/total/min/max) merge losslessly; the
        quantile sample window is extended with the other histogram's
        retained sample, bounded by the usual reservoir size.
        """
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self._sample.extend(other._sample)

    def quantile(self, q: float) -> float:
        """Approximate quantile over the retained sample window."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._sample:
            return 0.0
        ordered = sorted(self._sample)
        idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
        return ordered[idx]

    def to_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.quantile(0.5),
            "p90": self.quantile(0.9),
        }


class MetricsRegistry:
    """Named metrics, created on first use.

    ``registry.counter("outcome.SEG_FAULT").inc()`` — the name is the
    identity; asking twice returns the same instrument.  Names use
    dotted paths by convention (``phase.profile``, ``campaign.tests``).
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._timers: dict[str, Timer] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            c = self._counters[name] = Counter()
            return c

    def gauge(self, name: str) -> Gauge:
        try:
            return self._gauges[name]
        except KeyError:
            g = self._gauges[name] = Gauge()
            return g

    def timer(self, name: str, unit: str = "s") -> Timer:
        try:
            return self._timers[name]
        except KeyError:
            t = self._timers[name] = Timer(unit)
            return t

    def histogram(self, name: str) -> Histogram:
        try:
            return self._histograms[name]
        except KeyError:
            h = self._histograms[name] = Histogram()
            return h

    def time(self, name: str) -> Any:
        """Shorthand for ``timer(name).time()``."""
        return self.timer(name).time()

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's metrics into this one, by name.

        Used by the parallel campaign engine: each worker records into a
        private registry, and the parent merges the snapshots so the
        final registry matches what a serial run would have recorded.
        Counters add, timers and histograms fold their aggregates
        (min/max widen, samples concatenate under the reservoir bound),
        and gauges take the merged-in value (last write wins).
        """
        for name, c in other._counters.items():
            self.counter(name).merge(c)
        for name, g in other._gauges.items():
            self.gauge(name).merge(g)
        for name, t in other._timers.items():
            self.timer(name, unit=t.unit).merge(t)
        for name, h in other._histograms.items():
            self.histogram(name).merge(h)

    # -- export -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready snapshot of every metric, sorted by name."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "timers": {k: t.to_dict() for k, t in sorted(self._timers.items())},
            "histograms": {k: h.to_dict() for k, h in sorted(self._histograms.items())},
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MetricsRegistry({len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, {len(self._timers)} timers, "
            f"{len(self._histograms)} histograms)"
        )
