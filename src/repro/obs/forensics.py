"""Failure forensics: wait-for graphs and fault descriptions.

Turns the structured evidence attached to run-aborting exceptions into
the artefacts a sensitivity analyst actually needs:

* for ``INF_LOOP`` deadlocks — the **wait-for graph**: which ranks are
  blocked, on which ``(comm, src, tag)`` each one waits, and *why the
  match can never happen* (source finished without sending, source is
  itself blocked in a cycle, a near-miss message with a different tag
  sits in the mailbox, or the context id belongs to no live
  communicator because the handle was corrupted);
* for ``SEG_FAULT``/``MPI_ERR``/``WRONG_ANS`` — a one-line description
  of the injected fault: the faulting call, the corrupted parameter,
  the flipped bit, and the value transition.

Everything here consumes plain data hung off the exceptions by the
scheduler (see :mod:`repro.simmpi.scheduler`), so forensics work even
after the runtime object is gone.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any

from ..simmpi.context import P2P_CONTEXT_OFFSET
from ..simmpi.errors import DeadlockError, StepBudgetExceeded


@dataclass(frozen=True)
class WaitEdge:
    """One blocked rank's unsatisfiable receive."""

    rank: int              #: world rank of the blocked fiber
    waits_on: int | None   #: world rank it waits on (None if unresolvable)
    comm: str              #: communicator name (or ``ctx#N`` if unknown)
    src: int               #: comm-local source rank of the posted receive
    dst: int               #: comm-local destination rank (the waiter)
    tag: int               #: message tag
    space: str             #: "collective" or "p2p" matching space
    reason: str            #: why the receive can never match

    def describe(self) -> str:
        line = (
            f"rank {self.rank} waits on recv(comm={self.comm}, "
            f"src={self.src}, tag={self.tag:#x})"
        )
        return f"{line} — {self.reason}"


@dataclass
class WaitForGraph:
    """The wait-for graph of a deadlocked (or stalled) run."""

    edges: list[WaitEdge] = field(default_factory=list)
    #: World ranks forming a wait cycle, in cycle order (empty if none).
    cycle: list[int] = field(default_factory=list)

    @property
    def blocked_ranks(self) -> list[int]:
        return sorted(e.rank for e in self.edges)

    def describe(self) -> str:
        """Multi-line report, one edge per line plus the cycle if any."""
        lines = [e.describe() for e in sorted(self.edges, key=lambda e: e.rank)]
        if self.cycle:
            ring = " -> ".join(str(r) for r in self.cycle + self.cycle[:1])
            lines.append(f"wait cycle: {ring}")
        return "\n".join(lines)

    def summary(self) -> str:
        """Compact single-line form for ``TestResult.detail``."""
        parts = [
            f"rank {e.rank}<-src {e.src}@{e.comm} tag {e.tag:#x} ({e.reason})"
            for e in sorted(self.edges, key=lambda e: e.rank)
        ]
        return "; ".join(parts)

    def to_dict(self) -> dict[str, Any]:
        return {
            "edges": [
                {
                    "rank": e.rank,
                    "waits_on": e.waits_on,
                    "comm": e.comm,
                    "src": e.src,
                    "dst": e.dst,
                    "tag": e.tag,
                    "space": e.space,
                    "reason": e.reason,
                }
                for e in self.edges
            ],
            "cycle": list(self.cycle),
        }


def _resolve_context(ctx_id: int, comms: dict[int, tuple[str, tuple[int, ...]]]):
    """Map a matching-space context id to (comm name, group, space)."""
    space = "collective"
    base = ctx_id
    if ctx_id >= P2P_CONTEXT_OFFSET:
        space = "p2p"
        base = ctx_id - P2P_CONTEXT_OFFSET
    info = comms.get(base)
    if info is None:
        return f"ctx#{base}", None, space
    name, group = info
    return name or f"ctx#{base}", tuple(group), space


def _edge_reason(
    src_world: int | None,
    group: tuple[int, ...] | None,
    key: tuple[int, int, int, int],
    fiber_states: dict[int, str],
    mailbox: list[tuple[tuple[int, int, int, int], int]],
) -> str:
    ctx, src, dst, tag = key
    if group is None:
        return "no live communicator owns this context id (corrupted comm handle?)"
    if src_world is None:
        return f"source rank {src} is outside the {len(group)}-rank communicator"
    near = [
        (k, n)
        for k, n in mailbox
        if k[0] == ctx and k[1] == src and k[2] == dst and k[3] != tag
    ]
    if near:
        other_tag = near[0][0][3]
        return (
            f"a message from rank {src_world} is queued with tag "
            f"{other_tag:#x}, not the awaited {tag:#x}"
        )
    state = fiber_states.get(src_world, "")
    if state == "done":
        return f"source rank {src_world} finished without a matching send"
    if state == "failed":
        return f"source rank {src_world} crashed before sending"
    if state == "blocked":
        return f"source rank {src_world} is itself blocked (possible wait cycle)"
    return f"source rank {src_world} never sends a matching message"


def _find_cycle(waits: dict[int, int | None]) -> list[int]:
    """First cycle in the rank -> rank wait mapping, if any."""
    seen: set[int] = set()
    for start in sorted(waits):
        if start in seen:
            continue
        path: list[int] = []
        pos: dict[int, int] = {}
        node: int | None = start
        while node is not None and node in waits and node not in seen:
            if node in pos:
                return path[pos[node]:]
            pos[node] = len(path)
            path.append(node)
            node = waits[node]
        seen.update(path)
    return []


def build_wait_for_graph(exc: DeadlockError | StepBudgetExceeded) -> WaitForGraph:
    """Construct the wait-for graph from a run-aborting hang exception.

    Works on the structured forensic data the scheduler attaches; an
    exception raised without it (e.g. constructed by hand) yields an
    empty graph.
    """
    waiting: dict[int, tuple[int, int, int, int]] = getattr(exc, "waiting", {}) or {}
    fiber_states: dict[int, str] = getattr(exc, "fiber_states", {}) or {}
    mailbox = list(getattr(exc, "mailbox", ()) or ())
    comms: dict[int, tuple[str, tuple[int, ...]]] = getattr(exc, "comms", {}) or {}

    graph = WaitForGraph()
    waits: dict[int, int | None] = {}
    for rank, key in sorted(waiting.items()):
        ctx, src, dst, tag = key
        name, group, space = _resolve_context(ctx, comms)
        src_world = None
        if group is not None and 0 <= src < len(group):
            src_world = group[src]
        reason = _edge_reason(src_world, group, key, fiber_states, mailbox)
        waits[rank] = src_world
        graph.edges.append(
            WaitEdge(rank, src_world, name, src, dst, tag, space, reason)
        )
    blocked = set(waits)
    graph.cycle = _find_cycle(
        {r: w for r, w in waits.items() if w in blocked}
    )
    return graph


# -- fault descriptions ------------------------------------------------


def describe_fault(record: Any) -> str:
    """One-line description of what an armed injector actually did.

    ``record`` is an :class:`~repro.injection.injector.InjectionRecord`
    (duck-typed here to keep :mod:`repro.obs` free of injection-layer
    imports).  Returns ``""`` when no fault fired.
    """
    if record is None:
        return ""
    where = ""
    if getattr(record, "collective", ""):
        where = f" in {record.collective}@{record.site}#inv{record.invocation}"
    if getattr(record, "skipped", False):
        return f"{record.kind} '{record.param}'{where} skipped (empty target)"
    desc = f"bit {record.bit} of {record.kind} '{record.param}'{where}"
    before = getattr(record, "before", "")
    after = getattr(record, "after", "")
    if before or after:
        desc += f" ({before} -> {after})"
    return desc


def failure_detail(exc: BaseException, record: Any = None) -> str:
    """The ``TestResult.detail`` string for a run-aborting exception.

    Couples the failure evidence (wait-for graph for hangs, the
    exception message otherwise) with the injected-fault description.
    """
    if isinstance(exc, DeadlockError):
        graph = build_wait_for_graph(exc)
        base = f"deadlock: {graph.summary()}" if graph.edges else str(exc)
    elif isinstance(exc, StepBudgetExceeded):
        graph = build_wait_for_graph(exc)
        base = f"runaway execution: {exc}"
        if graph.edges:
            base += f"; blocked at kill time: {graph.summary()}"
    else:
        base = str(exc)
    fault = describe_fault(record)
    return f"{base}; fault: {fault}" if fault else base


def harness_failure_detail(exc: BaseException, record: Any = None) -> str:
    """The ``TestResult.detail`` string for a *harness-level* crash.

    Used when an exception outside the simulated failure taxonomy (a
    ``MemoryError``, ``RecursionError``, a numpy failure on a corrupted
    ``count``, ...) escapes a run: the test is classified ``TOOL_ERROR``
    and this string preserves the forensic trail — exception type and
    message, the innermost traceback location, and the injected fault
    that provoked it.
    """
    base = f"harness error: {type(exc).__name__}: {exc}"
    tb = exc.__traceback__
    if tb is not None:
        while tb.tb_next is not None:
            tb = tb.tb_next
        code = tb.tb_frame.f_code
        base += (
            f" (at {code.co_name}@"
            f"{os.path.basename(code.co_filename)}:{tb.tb_lineno})"
        )
    fault = describe_fault(record)
    return f"{base}; fault: {fault}" if fault else base
