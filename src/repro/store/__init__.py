"""Persistent campaign storage: the SQLite store behind ``--db``.

See :mod:`repro.store.schema` for the data model and
:mod:`repro.store.db` for the engine-facing adapter.
"""

from .db import CampaignDB, CampaignStoreError, DBCheckpointStore, DBProgressSink
from .migrate import MigrationError, migrate_checkpoint
from .schema import SCHEMA, SCHEMA_VERSION

__all__ = [
    "CampaignDB",
    "CampaignStoreError",
    "DBCheckpointStore",
    "DBProgressSink",
    "MigrationError",
    "SCHEMA",
    "SCHEMA_VERSION",
    "migrate_checkpoint",
]
