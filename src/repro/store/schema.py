"""The campaign database schema.

One SQLite file holds any number of campaigns, keyed by the existing
:func:`~repro.exec.checkpoint.campaign_digest` — the same hash the
pickle checkpoint store uses, so ``--resume`` against the database is
the same identity check, just spelled as a query.

Tables
------
``campaigns``
    One row per campaign digest: the configuration axes the digest was
    computed over (app, ranks, seed, tests/point, policy, unit layout),
    progress totals, and the completion flag.
``units``
    One row per *completed* work unit.  ``payload``/``metrics`` are the
    pickled ``TestResult`` list and worker ``MetricsRegistry`` snapshot
    — the byte-exact resume source of truth, mirroring ``units.pkl``.
``results``
    One row per individual injection test, denormalised from the unit
    payloads at record time so campaigns are queryable with plain SQL
    (``select outcome, count(*) from results group by outcome``).
``point_tallies``
    Per-injection-point outcome histogram, written at campaign assembly
    — the report builder's heatmap/sensitivity input.
``quarantine``
    Units the supervisor gave up on, with the give-up reason.  Their
    tests are synthetic ``TOOL_ERROR`` verdicts and are deliberately
    *not* in ``units``, so a resumed campaign retries them.
``metrics_snapshots``
    Labelled JSON dumps of a :class:`~repro.obs.metrics.MetricsRegistry`
    (the ``final`` snapshot carries phase timings and supervision
    counters).
``progress``
    Live telemetry snapshots from the supervisor loop (tests/sec,
    outcome histogram, worker health, ETA) — the report's campaign
    timeline.
``steering_rounds``
    One row per adaptive-steering round (see :mod:`repro.steer`): which
    points the round injected, the test budget it planned versus spent,
    the verification accuracy measured on the round's fresh batch, and
    why the driver eventually stopped.  The report's accuracy-vs-budget
    curve reads straight off this table.

Durability model: the connection runs in WAL mode and every
``record()`` is one transaction, so a unit is either fully present
(its row *and* all its result rows) or absent.  A process killed
mid-write — the pickle store's "torn tail" — simply loses the
uncommitted transaction; everything previously committed survives.
"""

from __future__ import annotations

#: Bump when the DDL below changes incompatibly; stored in ``schema_meta``.
#: v2 added ``results.model`` (the fault-model name per test); v3 added
#: the ``steering_rounds`` table.  Older databases are migrated in place
#: on open, one version at a time (see ``CampaignDB.open``).
SCHEMA_VERSION = 3

SCHEMA = """
CREATE TABLE IF NOT EXISTS schema_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS campaigns (
    id              INTEGER PRIMARY KEY,
    digest          TEXT NOT NULL UNIQUE,
    app             TEXT,
    nranks          INTEGER,
    seed            INTEGER,
    tests_per_point INTEGER,
    param_policy    TEXT,
    unit_tests      INTEGER,
    algorithms      TEXT,            -- JSON object, '{}' when default
    code_version    TEXT,
    n_points        INTEGER,
    total_units     INTEGER,
    complete        INTEGER NOT NULL DEFAULT 0,
    created_at      REAL NOT NULL,
    updated_at      REAL NOT NULL
);

CREATE TABLE IF NOT EXISTS units (
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id) ON DELETE CASCADE,
    unit_id     TEXT NOT NULL,
    point_index INTEGER NOT NULL,
    test_start  INTEGER NOT NULL,
    test_stop   INTEGER NOT NULL,
    n_tests     INTEGER NOT NULL,
    payload     BLOB NOT NULL,       -- pickled list[TestResult]
    metrics     BLOB,                -- pickled MetricsRegistry or NULL
    recorded_at REAL NOT NULL,
    PRIMARY KEY (campaign_id, unit_id)
);

CREATE TABLE IF NOT EXISTS results (
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id) ON DELETE CASCADE,
    unit_id     TEXT NOT NULL,
    point_index INTEGER NOT NULL,
    test_index  INTEGER NOT NULL,
    rank        INTEGER NOT NULL,
    collective  TEXT NOT NULL,
    site        TEXT NOT NULL,
    invocation  INTEGER NOT NULL,
    param       TEXT NOT NULL,
    bit         INTEGER,             -- flipped bit (NULL: no fault fired)
    model       TEXT NOT NULL DEFAULT 'bitflip',
    outcome     TEXT NOT NULL,
    injected    INTEGER NOT NULL,
    detail      TEXT NOT NULL DEFAULT '',
    PRIMARY KEY (campaign_id, point_index, test_index)
);
CREATE INDEX IF NOT EXISTS idx_results_outcome
    ON results (campaign_id, outcome);
CREATE INDEX IF NOT EXISTS idx_results_collective
    ON results (campaign_id, collective);

CREATE TABLE IF NOT EXISTS point_tallies (
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id) ON DELETE CASCADE,
    point_index INTEGER NOT NULL,
    rank        INTEGER NOT NULL,
    collective  TEXT NOT NULL,
    site        TEXT NOT NULL,
    invocation  INTEGER NOT NULL,
    outcome     TEXT NOT NULL,
    n           INTEGER NOT NULL,
    PRIMARY KEY (campaign_id, point_index, outcome)
);

CREATE TABLE IF NOT EXISTS quarantine (
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id) ON DELETE CASCADE,
    unit_id     TEXT NOT NULL,
    reason      TEXT NOT NULL DEFAULT '',
    recorded_at REAL NOT NULL,
    PRIMARY KEY (campaign_id, unit_id)
);

CREATE TABLE IF NOT EXISTS metrics_snapshots (
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id) ON DELETE CASCADE,
    label       TEXT NOT NULL,
    payload     TEXT NOT NULL,       -- MetricsRegistry.to_dict() as JSON
    recorded_at REAL NOT NULL,
    PRIMARY KEY (campaign_id, label)
);

CREATE TABLE IF NOT EXISTS progress (
    campaign_id   INTEGER NOT NULL REFERENCES campaigns(id) ON DELETE CASCADE,
    seq           INTEGER NOT NULL,
    ts            REAL NOT NULL,
    elapsed_s     REAL NOT NULL,
    done_tests    INTEGER NOT NULL,
    total_tests   INTEGER NOT NULL,
    done_units    INTEGER NOT NULL,
    total_units   INTEGER NOT NULL,
    tests_per_sec REAL NOT NULL,
    eta_s         REAL,
    outcomes      TEXT NOT NULL,     -- JSON {outcome: count}
    workers       INTEGER NOT NULL,
    worker_deaths INTEGER NOT NULL,
    retries       INTEGER NOT NULL,
    quarantined   INTEGER NOT NULL,
    PRIMARY KEY (campaign_id, seq)
);

CREATE TABLE IF NOT EXISTS steering_rounds (
    campaign_id      INTEGER NOT NULL REFERENCES campaigns(id) ON DELETE CASCADE,
    round            INTEGER NOT NULL,
    point_indices    TEXT NOT NULL,   -- JSON list of global point indices
    n_points         INTEGER NOT NULL,
    tests_planned    INTEGER NOT NULL,
    tests_run        INTEGER NOT NULL,
    tests_saved      INTEGER NOT NULL,
    budget_used      INTEGER NOT NULL, -- cumulative tests through this round
    accuracy         REAL,            -- verification accuracy (NULL: round 0)
    mean_uncertainty REAL,            -- mean acquisition score (NULL: round 0)
    stop_reason      TEXT NOT NULL DEFAULT '',
    recorded_at      REAL NOT NULL,
    PRIMARY KEY (campaign_id, round)
);
"""
