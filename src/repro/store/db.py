"""The SQLite campaign store.

:class:`CampaignDB` owns one database file (any number of campaigns,
keyed by digest) and the low-level query surface; :class:`DBCheckpointStore`
is the :class:`~repro.exec.checkpoint.CheckpointStore`-shaped adapter the
campaign engines drive — same ``load``/``record``/``write_manifest``
lifecycle, same torn-tail tolerance, but resume is a query instead of a
pickle replay, and every recorded unit is simultaneously denormalised
into queryable per-test ``results`` rows.

Unlike the pickle store, a digest mismatch is impossible here: the
database keys campaigns *by* digest, so resuming a changed configuration
simply starts (or continues) a different campaign row in the same file.
"""

from __future__ import annotations

import json
import os
import pickle
import sqlite3
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

from ..injection.runner import TestResult
from ..obs.metrics import MetricsRegistry
from ..exec.sharding import WorkUnit
from .schema import SCHEMA, SCHEMA_VERSION

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.progress import ProgressSnapshot


class CampaignStoreError(RuntimeError):
    """The campaign database could not be opened or written (typically a
    concurrent writer holding the lock past the busy timeout)."""


def _locked(exc: sqlite3.Error) -> bool:
    return "locked" in str(exc) or "busy" in str(exc)


class CampaignDB:
    """One campaign database file: connection, schema, queries.

    The connection runs in WAL mode with ``synchronous=FULL`` so a
    committed unit survives host power loss — the same durability bar
    the fsync-per-unit pickle store sets.
    """

    def __init__(self, path: str | os.PathLike, timeout: float = 30.0):
        self.path = Path(path)
        self.timeout = timeout
        self._conn: sqlite3.Connection | None = None

    # -- lifecycle -----------------------------------------------------

    def open(self) -> "CampaignDB":
        if self._conn is not None:
            return self
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            conn = sqlite3.connect(
                self.path, timeout=self.timeout, isolation_level=None
            )
            conn.row_factory = sqlite3.Row
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=FULL")
            conn.execute("PRAGMA foreign_keys=ON")
            conn.execute(f"PRAGMA busy_timeout={int(self.timeout * 1000)}")
            conn.executescript(SCHEMA)
            conn.execute(
                "INSERT OR IGNORE INTO schema_meta (key, value) VALUES (?, ?)",
                ("schema_version", str(SCHEMA_VERSION)),
            )
        except sqlite3.Error as exc:
            raise CampaignStoreError(
                f"cannot open campaign database {self.path}: {exc}"
            ) from exc
        found = conn.execute(
            "SELECT value FROM schema_meta WHERE key = 'schema_version'"
        ).fetchone()
        if found is not None and int(found["value"]) < SCHEMA_VERSION:
            # Chained in-place migrations, one version at a time.
            version = int(found["value"])
            try:
                conn.execute("BEGIN IMMEDIATE")
                while version < SCHEMA_VERSION:
                    if version == 1:
                        # v1 -> v2: results grew a per-test fault-model
                        # column.  Every pre-existing row was necessarily
                        # a single-bit test, which is exactly the column
                        # default — migrate in place.
                        conn.execute(
                            "ALTER TABLE results "
                            "ADD COLUMN model TEXT NOT NULL DEFAULT 'bitflip'"
                        )
                    elif version == 2:
                        # v2 -> v3: the steering_rounds table, already
                        # created by the CREATE TABLE IF NOT EXISTS pass
                        # above; older campaigns simply have no rounds.
                        pass
                    version += 1
                conn.execute(
                    "UPDATE schema_meta SET value = ? WHERE key = 'schema_version'",
                    (str(SCHEMA_VERSION),),
                )
                conn.execute("COMMIT")
            except sqlite3.Error as exc:
                conn.close()
                raise CampaignStoreError(
                    f"cannot migrate campaign database {self.path} "
                    f"from schema v{found['value']} to v{SCHEMA_VERSION}: {exc}"
                ) from exc
            found = {"value": str(SCHEMA_VERSION)}
        if found is not None and int(found["value"]) != SCHEMA_VERSION:
            conn.close()
            raise CampaignStoreError(
                f"campaign database {self.path} has schema version "
                f"{found['value']}, this build expects {SCHEMA_VERSION}"
            )
        self._conn = conn
        return self

    @property
    def conn(self) -> sqlite3.Connection:
        if self._conn is None:
            raise RuntimeError("CampaignDB.open() must be called first")
        return self._conn

    @property
    def closed(self) -> bool:
        return self._conn is None

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "CampaignDB":
        return self.open()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- transactions ---------------------------------------------------

    def _transaction(self) -> "_Transaction":
        return _Transaction(self.conn)

    # -- campaign rows ---------------------------------------------------

    def create_campaign(
        self,
        digest: str,
        *,
        fresh: bool = False,
        app: str | None = None,
        nranks: int | None = None,
        seed: int | None = None,
        tests_per_point: int | None = None,
        param_policy: str | None = None,
        unit_tests: int | None = None,
        algorithms: dict[str, str] | None = None,
        code_version: str | None = None,
        n_points: int | None = None,
        total_units: int | None = None,
    ) -> int:
        """Get-or-create the campaign row for ``digest``; returns its id.

        ``fresh=True`` drops any prior row (and, via cascade, all its
        units/results/telemetry) first — the DB analogue of starting a
        new pickle stream without ``--resume``.
        """
        now = time.time()
        try:
            with self._transaction():
                if fresh:
                    self.conn.execute(
                        "DELETE FROM campaigns WHERE digest = ?", (digest,)
                    )
                row = self.conn.execute(
                    "SELECT id FROM campaigns WHERE digest = ?", (digest,)
                ).fetchone()
                if row is not None:
                    return int(row["id"])
                cur = self.conn.execute(
                    """
                    INSERT INTO campaigns (
                        digest, app, nranks, seed, tests_per_point,
                        param_policy, unit_tests, algorithms, code_version,
                        n_points, total_units, complete, created_at, updated_at
                    ) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, 0, ?, ?)
                    """,
                    (
                        digest, app, nranks, seed, tests_per_point,
                        param_policy, unit_tests,
                        json.dumps(dict(sorted((algorithms or {}).items()))),
                        code_version, n_points, total_units, now, now,
                    ),
                )
                return int(cur.lastrowid)
        except sqlite3.Error as exc:
            if _locked(exc):
                raise CampaignStoreError(
                    f"campaign database {self.path} is locked by another "
                    f"process (waited {self.timeout:g}s)"
                ) from exc
            raise

    def campaign_id(self, digest: str) -> int | None:
        row = self.conn.execute(
            "SELECT id FROM campaigns WHERE digest = ?", (digest,)
        ).fetchone()
        return None if row is None else int(row["id"])

    def campaigns(self) -> list[sqlite3.Row]:
        """All campaign rows, most recently updated first."""
        return self.conn.execute(
            "SELECT * FROM campaigns ORDER BY updated_at DESC, id DESC"
        ).fetchall()

    def campaign(self, digest: str | None = None) -> sqlite3.Row | None:
        """One campaign row: by digest (prefix match allowed), or the most
        recently updated one when ``digest`` is None."""
        if digest is None:
            rows = self.campaigns()
            return rows[0] if rows else None
        row = self.conn.execute(
            "SELECT * FROM campaigns WHERE digest = ?", (digest,)
        ).fetchone()
        if row is None:
            rows = self.conn.execute(
                "SELECT * FROM campaigns WHERE digest LIKE ? || '%'", (digest,)
            ).fetchall()
            if len(rows) > 1:
                raise CampaignStoreError(
                    f"digest prefix {digest!r} is ambiguous "
                    f"({len(rows)} campaigns match)"
                )
            row = rows[0] if rows else None
        return row

    # -- units & results --------------------------------------------------

    def record_unit(
        self,
        campaign_id: int,
        unit_id: str,
        tests: list[TestResult],
        metrics: MetricsRegistry | None = None,
    ) -> None:
        """Persist one completed unit: its pickled payload *and* the
        denormalised per-test rows, atomically.

        A process killed inside this call loses the whole unit (the
        transaction rolls back) and nothing else — the same guarantee the
        pickle store's torn-tail drop provides, without the scan.
        """
        unit = WorkUnit.from_unit_id(unit_id)
        rows = []
        for offset, t in enumerate(tests):
            p = t.spec.point
            rows.append(
                (
                    campaign_id, unit_id, unit.point_index,
                    unit.test_start + offset,
                    p.rank, p.collective, p.site, p.invocation,
                    t.spec.param,
                    None if t.record is None or t.record.skipped else t.record.bit,
                    getattr(t.spec, "model", "bitflip"),
                    t.outcome.name, int(t.injected), t.detail,
                )
            )
        try:
            with self._transaction():
                self.conn.execute(
                    """
                    INSERT OR REPLACE INTO units (
                        campaign_id, unit_id, point_index, test_start,
                        test_stop, n_tests, payload, metrics, recorded_at
                    ) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)
                    """,
                    (
                        campaign_id, unit_id, unit.point_index,
                        unit.test_start, unit.test_stop, len(tests),
                        pickle.dumps(tests, protocol=pickle.HIGHEST_PROTOCOL),
                        None
                        if metrics is None
                        else pickle.dumps(metrics, protocol=pickle.HIGHEST_PROTOCOL),
                        time.time(),
                    ),
                )
                self.conn.executemany(
                    """
                    INSERT OR REPLACE INTO results (
                        campaign_id, unit_id, point_index, test_index,
                        rank, collective, site, invocation, param, bit,
                        model, outcome, injected, detail
                    ) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                    """,
                    rows,
                )
        except sqlite3.Error as exc:
            if _locked(exc):
                raise CampaignStoreError(
                    f"campaign database {self.path} is locked by another "
                    f"process (waited {self.timeout:g}s)"
                ) from exc
            raise

    def load_units(
        self, campaign_id: int
    ) -> dict[str, tuple[list[TestResult], MetricsRegistry | None]]:
        """All recorded units of a campaign — the resume query."""
        out: dict[str, tuple[list[TestResult], MetricsRegistry | None]] = {}
        for row in self.conn.execute(
            "SELECT unit_id, payload, metrics FROM units "
            "WHERE campaign_id = ? ORDER BY point_index, test_start",
            (campaign_id,),
        ):
            out[row["unit_id"]] = (
                pickle.loads(row["payload"]),
                None if row["metrics"] is None else pickle.loads(row["metrics"]),
            )
        return out

    def outcome_histogram(self, campaign_id: int) -> dict[str, int]:
        """``select outcome, count(*) from results group by outcome``."""
        return {
            row["outcome"]: row["n"]
            for row in self.conn.execute(
                "SELECT outcome, COUNT(*) AS n FROM results "
                "WHERE campaign_id = ? GROUP BY outcome ORDER BY outcome",
                (campaign_id,),
            )
        }

    def results(self, campaign_id: int) -> Iterator[sqlite3.Row]:
        """Every test row in canonical (point, test) order."""
        return self.conn.execute(
            "SELECT * FROM results WHERE campaign_id = ? "
            "ORDER BY point_index, test_index",
            (campaign_id,),
        )

    # -- assembly-time aggregates ------------------------------------------

    def record_point_tallies(
        self, campaign_id: int, tallies: list[tuple[Any, ...]]
    ) -> None:
        """Replace the per-point outcome tallies.  Each entry is
        ``(point_index, rank, collective, site, invocation, outcome, n)``."""
        with self._transaction():
            self.conn.execute(
                "DELETE FROM point_tallies WHERE campaign_id = ?", (campaign_id,)
            )
            self.conn.executemany(
                "INSERT INTO point_tallies (campaign_id, point_index, rank, "
                "collective, site, invocation, outcome, n) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                [(campaign_id, *t) for t in tallies],
            )

    def point_tallies(self, campaign_id: int) -> list[sqlite3.Row]:
        return self.conn.execute(
            "SELECT * FROM point_tallies WHERE campaign_id = ? "
            "ORDER BY point_index, outcome",
            (campaign_id,),
        ).fetchall()

    def record_metrics(
        self, campaign_id: int, label: str, registry: MetricsRegistry
    ) -> None:
        with self._transaction():
            self.conn.execute(
                "INSERT OR REPLACE INTO metrics_snapshots "
                "(campaign_id, label, payload, recorded_at) VALUES (?, ?, ?, ?)",
                (campaign_id, label, registry.to_json(indent=0), time.time()),
            )

    def metrics_snapshot(self, campaign_id: int, label: str) -> dict | None:
        row = self.conn.execute(
            "SELECT payload FROM metrics_snapshots "
            "WHERE campaign_id = ? AND label = ?",
            (campaign_id, label),
        ).fetchone()
        return None if row is None else json.loads(row["payload"])

    def record_quarantine(self, campaign_id: int, unit_id: str, reason: str) -> None:
        with self._transaction():
            self.conn.execute(
                "INSERT OR REPLACE INTO quarantine "
                "(campaign_id, unit_id, reason, recorded_at) VALUES (?, ?, ?, ?)",
                (campaign_id, unit_id, reason, time.time()),
            )

    def quarantine_records(self, campaign_id: int) -> list[sqlite3.Row]:
        return self.conn.execute(
            "SELECT * FROM quarantine WHERE campaign_id = ? ORDER BY unit_id",
            (campaign_id,),
        ).fetchall()

    def record_progress(self, campaign_id: int, snap: "ProgressSnapshot") -> None:
        with self._transaction():
            self.conn.execute(
                """
                INSERT OR REPLACE INTO progress (
                    campaign_id, seq, ts, elapsed_s, done_tests, total_tests,
                    done_units, total_units, tests_per_sec, eta_s, outcomes,
                    workers, worker_deaths, retries, quarantined
                ) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                """,
                (
                    campaign_id, snap.seq, snap.ts, snap.elapsed_s,
                    snap.done_tests, snap.total_tests, snap.done_units,
                    snap.total_units, snap.tests_per_sec, snap.eta_s,
                    json.dumps(snap.outcomes, sort_keys=True),
                    snap.workers, snap.worker_deaths, snap.retries,
                    snap.quarantined,
                ),
            )

    def record_steering_round(
        self,
        campaign_id: int,
        round_no: int,
        *,
        point_indices: list[int],
        tests_planned: int,
        tests_run: int,
        budget_used: int,
        accuracy: float | None = None,
        mean_uncertainty: float | None = None,
        stop_reason: str = "",
    ) -> None:
        """Persist one adaptive-steering round (idempotent: a resumed
        driver re-records the rounds it replays, byte-identically)."""
        with self._transaction():
            self.conn.execute(
                """
                INSERT OR REPLACE INTO steering_rounds (
                    campaign_id, round, point_indices, n_points,
                    tests_planned, tests_run, tests_saved, budget_used,
                    accuracy, mean_uncertainty, stop_reason, recorded_at
                ) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                """,
                (
                    campaign_id, round_no,
                    json.dumps([int(i) for i in point_indices]),
                    len(point_indices), tests_planned, tests_run,
                    max(0, tests_planned - tests_run), budget_used,
                    accuracy, mean_uncertainty, stop_reason, time.time(),
                ),
            )

    def steering_rounds(self, campaign_id: int) -> list[sqlite3.Row]:
        return self.conn.execute(
            "SELECT * FROM steering_rounds WHERE campaign_id = ? ORDER BY round",
            (campaign_id,),
        ).fetchall()

    def progress_rows(self, campaign_id: int) -> list[sqlite3.Row]:
        return self.conn.execute(
            "SELECT * FROM progress WHERE campaign_id = ? ORDER BY seq",
            (campaign_id,),
        ).fetchall()

    def update_campaign(
        self,
        campaign_id: int,
        *,
        complete: bool | None = None,
        total_units: int | None = None,
        quarantined: list[str] | None = None,
        quarantine_reasons: dict[str, str] | None = None,
    ) -> None:
        """Manifest-equivalent update: completion flag, totals, and the
        authoritative quarantine set (stale rows from a previous attempt
        whose unit has since succeeded are removed)."""
        with self._transaction():
            sets, vals = ["updated_at = ?"], [time.time()]
            if complete is not None:
                sets.append("complete = ?")
                vals.append(int(complete))
            if total_units is not None:
                sets.append("total_units = ?")
                vals.append(total_units)
            self.conn.execute(
                f"UPDATE campaigns SET {', '.join(sets)} WHERE id = ?",
                (*vals, campaign_id),
            )
            if quarantined is not None:
                keep = sorted(set(quarantined))
                placeholders = ",".join("?" * len(keep)) or "''"
                self.conn.execute(
                    f"DELETE FROM quarantine WHERE campaign_id = ? "
                    f"AND unit_id NOT IN ({placeholders})",
                    (campaign_id, *keep),
                )
                reasons = quarantine_reasons or {}
                now = time.time()
                self.conn.executemany(
                    "INSERT OR IGNORE INTO quarantine "
                    "(campaign_id, unit_id, reason, recorded_at) "
                    "VALUES (?, ?, ?, ?)",
                    [(campaign_id, uid, reasons.get(uid, ""), now) for uid in keep],
                )


class _Transaction:
    """``BEGIN IMMEDIATE``/``COMMIT`` scope (rollback on exception)."""

    __slots__ = ("conn",)

    def __init__(self, conn: sqlite3.Connection):
        self.conn = conn

    def __enter__(self) -> sqlite3.Connection:
        if not self.conn.in_transaction:
            self.conn.execute("BEGIN IMMEDIATE")
        return self.conn

    def __exit__(self, exc_type, *exc) -> None:
        if self.conn.in_transaction:
            if exc_type is None:
                self.conn.execute("COMMIT")
            else:
                self.conn.execute("ROLLBACK")


class DBCheckpointStore:
    """A :class:`~repro.exec.checkpoint.CheckpointStore`-shaped adapter
    over :class:`CampaignDB` — what ``--db`` plugs into the campaign
    engines.

    Same lifecycle (``load`` → ``record``\\* → ``write_manifest`` →
    ``close``), same torn-tail tolerance (a unit is committed atomically
    or not at all), but many campaigns share one file and resume is a
    query.  Extra hooks (:meth:`record_metrics`, :meth:`progress_sink`)
    feed the report builder's forensics and timeline sections.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        digest: str,
        *,
        campaign_info: dict[str, Any] | None = None,
        timeout: float = 30.0,
    ):
        self.db = CampaignDB(path, timeout=timeout)
        self.digest = digest
        self.campaign_info = dict(campaign_info or {})
        self.campaign_id: int | None = None
        self.completed: dict[str, tuple[list[TestResult], MetricsRegistry | None]] = {}
        self._quarantine_reasons: dict[str, str] = {}

    @property
    def path(self) -> Path:
        return self.db.path

    # -- CheckpointStore interface ---------------------------------------

    def load(
        self, resume: bool
    ) -> dict[str, tuple[list[TestResult], MetricsRegistry | None]]:
        """Open the database and return previously completed units.

        ``resume=False`` drops any existing campaign with this digest and
        starts clean; ``resume=True`` returns its recorded units — there
        is no mismatch case, because the digest *is* the key.
        """
        self.db.open()
        self.campaign_id = self.db.create_campaign(
            self.digest, fresh=not resume, **self.campaign_info
        )
        self.completed = self.db.load_units(self.campaign_id) if resume else {}
        return self.completed

    def record(
        self,
        unit_id: str,
        tests: list[TestResult],
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if self.campaign_id is None:
            raise RuntimeError("DBCheckpointStore.load() must be called before record()")
        self.completed[unit_id] = (tests, metrics)
        self.db.record_unit(self.campaign_id, unit_id, tests, metrics)

    def write_manifest(
        self,
        total_units: int | None = None,
        complete: bool = False,
        quarantined: list[str] | None = None,
    ) -> None:
        if self.campaign_id is None:
            raise RuntimeError("DBCheckpointStore.load() must be called first")
        self.db.update_campaign(
            self.campaign_id,
            complete=complete,
            total_units=total_units,
            quarantined=quarantined,
            quarantine_reasons=self._quarantine_reasons,
        )

    @property
    def closed(self) -> bool:
        return self.db.closed

    def close(self) -> None:
        self.db.close()

    def __enter__(self) -> "DBCheckpointStore":  # pragma: no cover - convenience
        return self

    def __exit__(self, *exc) -> None:  # pragma: no cover - convenience
        self.close()

    # -- store-only extensions --------------------------------------------

    def record_quarantine(self, unit_id: str, reason: str) -> None:
        """Attach the give-up reason to a quarantined unit (forensics —
        the unit itself stays unrecorded so a resume retries it)."""
        self._quarantine_reasons[unit_id] = reason
        if self.campaign_id is not None:
            self.db.record_quarantine(self.campaign_id, unit_id, reason)

    def record_point_tallies(self, tallies: list[tuple[Any, ...]]) -> None:
        if self.campaign_id is not None:
            self.db.record_point_tallies(self.campaign_id, tallies)

    def record_metrics(self, label: str, registry: MetricsRegistry) -> None:
        if self.campaign_id is not None:
            self.db.record_metrics(self.campaign_id, label, registry)

    def progress_sink(self) -> "DBProgressSink":
        if self.campaign_id is None:
            raise RuntimeError("DBCheckpointStore.load() must be called first")
        return DBProgressSink(self.db, self.campaign_id)


class DBProgressSink:
    """A :class:`~repro.obs.progress.ProgressSink` writing snapshots into
    the ``progress`` table — the report's campaign-timeline source."""

    def __init__(self, db: CampaignDB, campaign_id: int):
        self.db = db
        self.campaign_id = campaign_id

    def emit(self, snap: "ProgressSnapshot") -> None:
        if not self.db.closed:
            self.db.record_progress(self.campaign_id, snap)

    def close(self) -> None:  # the owning store manages the connection
        pass
