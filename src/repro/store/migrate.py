"""Pickle checkpoint directory → SQLite campaign database.

Old campaigns checkpointed through the pickle
:class:`~repro.exec.checkpoint.CheckpointStore` stay analyzable: this
reads the ``units.pkl`` stream (torn tail dropped, exactly like a
resume) plus the JSON manifest, and replays every unit through the
database writer — so the migrated campaign has the same queryable
``results`` rows, quarantine records, and completion state a ``--db``
run would have produced.
"""

from __future__ import annotations

import json
import os
import pickle
from pathlib import Path

from ..exec.checkpoint import MANIFEST_FILE, UNITS_FILE
from .db import CampaignDB


class MigrationError(RuntimeError):
    """The checkpoint directory cannot be converted."""


def migrate_checkpoint(
    checkpoint_dir: str | os.PathLike,
    db_path: str | os.PathLike,
    *,
    overwrite: bool = False,
) -> dict:
    """Convert one pickle checkpoint directory into ``db_path``.

    Returns a summary dict: ``digest``, ``units``, ``tests``,
    ``quarantined``, ``complete``.  ``overwrite=True`` replaces an
    existing campaign with the same digest; otherwise a duplicate digest
    raises :class:`MigrationError`.
    """
    directory = Path(checkpoint_dir)
    units_path = directory / UNITS_FILE
    if not units_path.exists():
        raise MigrationError(f"no checkpoint stream at {units_path}")

    digest: str | None = None
    units: dict[str, tuple] = {}
    with units_path.open("rb") as fh:
        try:
            header = pickle.load(fh)
        except (EOFError, pickle.UnpicklingError) as exc:
            raise MigrationError(f"unreadable checkpoint header in {units_path}") from exc
        if not isinstance(header, dict) or "digest" not in header:
            raise MigrationError(f"{units_path} does not start with a digest header")
        digest = header["digest"]
        while True:
            try:
                record = pickle.load(fh)
            except (EOFError, pickle.UnpicklingError, AttributeError):
                break  # clean end of stream or torn final record
            if record.get("type") == "unit":
                units[record["unit_id"]] = (record["tests"], record.get("metrics"))

    manifest: dict = {}
    manifest_path = directory / MANIFEST_FILE
    if manifest_path.exists():
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError):
            manifest = {}  # stream is the source of truth; manifest is advisory

    with CampaignDB(db_path) as db:
        existing = db.campaign_id(digest)
        if existing is not None and not overwrite:
            raise MigrationError(
                f"campaign {digest[:12]} already exists in {db.path}; "
                "pass --overwrite to replace it"
            )
        campaign_id = db.create_campaign(digest, fresh=overwrite)
        n_tests = 0
        merged = None
        for unit_id, (tests, registry) in sorted(units.items()):
            db.record_unit(campaign_id, unit_id, tests, registry)
            n_tests += len(tests)
            if registry is not None:
                if merged is None:
                    from ..obs.metrics import MetricsRegistry

                    merged = MetricsRegistry()
                merged.merge(registry)
        if merged is not None:
            db.record_metrics(campaign_id, "migrated", merged)
        quarantined = list(manifest.get("quarantined", []))
        db.update_campaign(
            campaign_id,
            complete=bool(manifest.get("complete", False)),
            total_units=manifest.get("total_units"),
            quarantined=quarantined,
        )
    return {
        "digest": digest,
        "units": len(units),
        "tests": n_tests,
        "quarantined": len(quarantined),
        "complete": bool(manifest.get("complete", False)),
    }
